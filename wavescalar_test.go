package wavescalar

import (
	"strings"
	"testing"
)

const demoSrc = `
global a[32];

func main() {
	var s = 0;
	for var i = 0; i < 32; i = i + 1 {
		a[i] = i * i;
	}
	for var i = 0; i < 32; i = i + 1 {
		s = s + a[i];
	}
	return s;
}
`

const demoWant = 10416 // sum of squares 0..31

func TestCompileAndAllEngines(t *testing.T) {
	prog, err := Compile(demoSrc, DefaultCompileConfig())
	if err != nil {
		t.Fatal(err)
	}
	ir, err := prog.Interpret()
	if err != nil {
		t.Fatal(err)
	}
	if ir.Value != demoWant {
		t.Fatalf("interpret = %d, want %d", ir.Value, demoWant)
	}
	if ir.Fired == 0 || ir.Steers == 0 || ir.WaveAdvances == 0 || ir.MemoryOps == 0 {
		t.Errorf("interpret stats look empty: %+v", ir)
	}

	sim, err := prog.Simulate(DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sim.Value != demoWant {
		t.Fatalf("simulate = %d, want %d", sim.Value, demoWant)
	}
	if sim.Cycles <= 0 || sim.IPC <= 0 || sim.PEsUsed == 0 {
		t.Errorf("simulate stats look empty: %+v", sim)
	}

	base, err := prog.SimulateBaseline(DefaultBaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if base.Value != demoWant {
		t.Fatalf("baseline = %d, want %d", base.Value, demoWant)
	}
	if base.Cycles <= 0 || base.IPC <= 0 {
		t.Errorf("baseline stats look empty: %+v", base)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("this is not wsl", DefaultCompileConfig()); err == nil {
		t.Error("garbage source accepted")
	}
	if _, err := Compile(`func f() { return 0; }`, DefaultCompileConfig()); err == nil {
		t.Error("program without main accepted")
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	prog, err := Compile(demoSrc, DefaultCompileConfig())
	if err != nil {
		t.Fatal(err)
	}
	text := prog.Disassemble()
	if !strings.Contains(text, "func main") || !strings.Contains(text, "mem=") {
		t.Fatalf("disassembly looks wrong:\n%s", text[:200])
	}
	back, err := ParseAssembly(text)
	if err != nil {
		t.Fatal(err)
	}
	ir, err := back.Interpret()
	if err != nil {
		t.Fatal(err)
	}
	if ir.Value != demoWant {
		t.Fatalf("round-tripped program computes %d, want %d", ir.Value, demoWant)
	}
	if _, err := back.SimulateBaseline(DefaultBaselineConfig()); err != ErrNoBaseline {
		t.Errorf("expected ErrNoBaseline, got %v", err)
	}
}

func TestSimConfigVariants(t *testing.T) {
	prog, err := Compile(demoSrc, DefaultCompileConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []SimConfig{
		{GridW: 1, GridH: 1},
		{MemoryMode: "serialized"},
		{MemoryMode: "ideal"},
		{Placement: "random"},
		{Density: 4, PEStore: 8},
		{L1Words: 64},
	} {
		res, err := prog.Simulate(sc)
		if err != nil {
			t.Fatalf("%+v: %v", sc, err)
		}
		if res.Value != demoWant {
			t.Errorf("%+v: value %d", sc, res.Value)
		}
	}
	if _, err := prog.Simulate(SimConfig{MemoryMode: "nope"}); err == nil {
		t.Error("bad memory mode accepted")
	}
	if _, err := prog.Simulate(SimConfig{Placement: "nope"}); err == nil {
		t.Error("bad placement accepted")
	}
}

func TestUseSelectVariant(t *testing.T) {
	cfg := DefaultCompileConfig()
	cfg.UseSelect = true
	prog, err := Compile(demoSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ir, err := prog.Interpret()
	if err != nil {
		t.Fatal(err)
	}
	if ir.Value != demoWant {
		t.Fatalf("select variant computes %d", ir.Value)
	}
}

func TestPlacementPolicies(t *testing.T) {
	if len(PlacementPolicies()) < 6 {
		t.Error("expected at least 6 placement policies")
	}
}

func TestExportDotAndBinary(t *testing.T) {
	prog, err := Compile(demoSrc, DefaultCompileConfig())
	if err != nil {
		t.Fatal(err)
	}
	dot, err := prog.ExportDot("")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "digraph") {
		t.Error("dot output missing digraph")
	}
	if _, err := prog.ExportDot("nope"); err == nil {
		t.Error("unknown function accepted")
	}
	data := prog.EncodeBinary()
	back, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := back.Interpret()
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != demoWant {
		t.Fatalf("binary round trip computes %d, want %d", res.Value, demoWant)
	}
	if _, err := DecodeBinary([]byte("junk")); err == nil {
		t.Error("junk binary accepted")
	}
}
