module wavescalar

go 1.24
