# CI entry points. `make ci` is the full gate: vet, build, the whole
# test suite, and the race-detector pass over the concurrent packages
# (the parallel pool, the harness cell fan-out, and the simulators whose
# Run contracts promise read-only program sharing).

GO ?= go

.PHONY: ci check vet build test race race-shards soak bench bench-base bench-cmp bench-shards bench-opt bench-spec fuzz fuzz-diff corpus

ci: vet build test race

# check is the fast pre-commit gate: vet + build + tests (no full race
# pass), plus a targeted race pass over the shard-engine invariance
# tests, the short service soak under -race, and a corpus-differential
# fuzz smoke.
check: vet build test race-shards soak fuzz-diff

# race-shards runs the sharded-engine tests plus the MemSpec speculation
# tests under the race detector with worker dispatch forced on (the tests
# pin the dispatch threshold themselves), so the fast gate still
# exercises cross-goroutine batch execution at shards >= 2 and the
# coordinator-owned speculation state alongside it. The full `make race`
# covers the same packages exhaustively.
race-shards:
	$(GO) test -race -run 'TestShard|TestSpec' ./internal/wavecache ./internal/harness

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The harness package alone runs ~10 minutes under the race detector (the
# full experiment suite at race-instrumented speed), so the pass needs more
# than go test's default 10-minute per-package timeout.
race:
	$(GO) test -race -timeout 30m ./internal/parallel ./internal/harness ./internal/wavecache ./internal/ooo ./internal/fault ./internal/noc ./internal/waveorder ./internal/trace ./internal/tagtable ./internal/serve ./internal/cfgir ./internal/placemodel

# soak hammers the waved service layer under the race detector: hundreds
# of concurrent mixed requests across multiple tenants against an
# undersized server, asserting byte-identical results, structured
# shedding, prompt deadline cancellation, a clean drain, and no goroutine
# leaks (see internal/serve/soak_test.go). SOAKFLAGS=-short runs the
# abbreviated version.
SOAKFLAGS ?=

soak:
	$(GO) test -race -run 'TestSoak' -v $(SOAKFLAGS) ./internal/serve

# fuzz runs the native fuzz targets for a short burst — a smoke pass, not
# a soak; crashes land in testdata/fuzz/ as usual.
FUZZTIME ?= 10s

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/asm

# fuzz-diff is the corpus-differential smoke: generated programs across
# all workload families, each checked for agreement across all ten
# engines (see internal/testprogs/differential_fuzz_test.go).
DIFFFUZZTIME ?= 20s

fuzz-diff:
	$(GO) test -run='^$$' -fuzz=FuzzDifferential -fuzztime=$(DIFFFUZZTIME) ./internal/testprogs

# corpus runs the E13 sweep in miniature: 250 generated programs (50
# seeds per family). The full acceptance sweep is
#   go run ./cmd/waveexp -corpus 500 -corpus-seed 1
# and CORPUS/CORPUSFLAGS parameterize either (e.g.
#   make corpus CORPUSFLAGS='-cache-dir .corpus-cache -resume').
CORPUS ?= 250
CORPUSFLAGS ?=

corpus:
	$(GO) run ./cmd/waveexp -corpus $(CORPUS) -corpus-seed 1 $(CORPUSFLAGS)

# bench regenerates the reduced-configuration experiment benchmarks,
# including the harness worker-pool wall-clock comparison
# (BenchmarkHarnessCells{Sequential,Parallel}).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Before/after benchmark comparison workflow for performance work:
#   make bench-base            # on the baseline commit: writes bench.base.txt
#   ...apply the optimization...
#   make bench-cmp             # writes bench.new.txt and compares
# COUNT >= 5 gives benchstat-grade samples; comparison uses benchstat when
# installed and falls back to a side-by-side diff otherwise. The .txt files
# are scratch output — do not commit them.
COUNT ?= 5
BENCHRE ?= BenchmarkE[0-9]+_

bench-base:
	$(GO) test -bench='$(BENCHRE)' -benchtime=1x -count=$(COUNT) -benchmem -run=^$$ . | tee bench.base.txt

bench-cmp:
	$(GO) test -bench='$(BENCHRE)' -benchtime=1x -count=$(COUNT) -benchmem -run=^$$ . | tee bench.new.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench.base.txt bench.new.txt; \
	else \
		echo "benchstat not installed; raw comparison:"; \
		grep '^Benchmark' bench.base.txt | sort > bench.base.sorted.txt; \
		grep '^Benchmark' bench.new.txt | sort > bench.new.sorted.txt; \
		paste bench.base.sorted.txt bench.new.sorted.txt | column -t; \
		rm -f bench.base.sorted.txt bench.new.sorted.txt; \
	fi

# bench-opt is the compiler memory-optimization tier's A/B gate: one
# prebuilt test binary, run with the tier off (WAVEOPT=0) and on
# (WAVEOPT=1) in strictly interleaved passes so host drift cancels (the
# same methodology as BENCH_8 — back-to-back medians on a noisy host
# would be dominated by drift). The regex focuses on the memory-bound
# tables, where eliminating memory-chain slots pays in simulated cycles;
# scripts/benchjson.py renders the record to BENCH_9.json.
OPTBENCHRE ?= BenchmarkE1b_|BenchmarkE4_|BenchmarkE7_
OPTCOUNT ?= 5

bench-opt:
	$(GO) test -c -o bench.opt.test .
	rm -f bench.opt0.txt bench.opt1.txt
	for i in $$(seq $(OPTCOUNT)); do \
		WAVEOPT=0 ./bench.opt.test -test.bench='$(OPTBENCHRE)' -test.benchtime=1x -test.benchmem -test.run='^$$' >> bench.opt0.txt || exit 1; \
		WAVEOPT=1 ./bench.opt.test -test.bench='$(OPTBENCHRE)' -test.benchtime=1x -test.benchmem -test.run='^$$' >> bench.opt1.txt || exit 1; \
	done
	python3 scripts/benchjson.py bench.opt0.txt bench.opt1.txt \
		"compiler memory-optimization tier: -O0 (before) vs -O1 (after), same engine binary; AIPC tables byte-stable per tier, wall-clock and simulated cycles move" \
		"WAVEOPT={0,1} ./bench.opt.test -test.bench='$(OPTBENCHRE)' -test.benchtime=1x -test.benchmem -test.run='^$$' (interleaved passes of one prebuilt binary)" \
		> BENCH_9.json
	rm -f bench.opt.test
	@echo wrote BENCH_9.json

# bench-spec is the speculative-memory A/B gate: one prebuilt test
# binary, run with wave-ordered memory (WAVEMEM=wave-ordered) and
# speculative memory (WAVEMEM=spec) in strictly interleaved passes so
# host drift cancels (the bench-opt methodology). The regex picks tables
# whose cells all honor the machine-wide memory mode — E4/E15 sweep modes
# per cell and would dilute the comparison; E1b and E7 are the
# memory-bound tables where hidden stall cycles pay. scripts/benchjson.py
# renders the record to BENCH_10.json.
SPECBENCHRE ?= BenchmarkE1b_|BenchmarkE7_
SPECCOUNT ?= 5

bench-spec:
	$(GO) test -c -o bench.spec.test .
	rm -f bench.spec0.txt bench.spec1.txt
	for i in $$(seq $(SPECCOUNT)); do \
		WAVEMEM=wave-ordered ./bench.spec.test -test.bench='$(SPECBENCHRE)' -test.benchtime=1x -test.benchmem -test.run='^$$' >> bench.spec0.txt || exit 1; \
		WAVEMEM=spec ./bench.spec.test -test.bench='$(SPECBENCHRE)' -test.benchtime=1x -test.benchmem -test.run='^$$' >> bench.spec1.txt || exit 1; \
	done
	python3 scripts/benchjson.py bench.spec0.txt bench.spec1.txt \
		"speculative transactional wave-ordered memory: WAVEMEM=wave-ordered (before) vs WAVEMEM=spec (after), same engine binary; simulated cycles drop on memory-bound tables, wall-clock carries the speculation bookkeeping" \
		"WAVEMEM={wave-ordered,spec} ./bench.spec.test -test.bench='$(SPECBENCHRE)' -test.benchtime=1x -test.benchmem -test.run='^$$' (interleaved passes of one prebuilt binary)" \
		> BENCH_10.json
	rm -f bench.spec.test
	@echo wrote BENCH_10.json

# bench-shards compares the experiment benchmarks with the event engine
# sequential (shards=1) vs sharded (shards=$(SHARDS)) inside every
# simulation cell. Tables are bit-identical either way — the comparison is
# wall-clock only. On a single hardware thread worker dispatch can never
# pay for itself, so the engine collapses both runs to the sequential
# loop and the comparison degenerates to noise.
SHARDS ?= 4

bench-shards:
	WAVESHARDS=1 $(GO) test -bench='$(BENCHRE)' -benchtime=1x -count=$(COUNT) -benchmem -run=^$$ . | tee bench.shards1.txt
	WAVESHARDS=$(SHARDS) $(GO) test -bench='$(BENCHRE)' -benchtime=1x -count=$(COUNT) -benchmem -run=^$$ . | tee bench.shardsN.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench.shards1.txt bench.shardsN.txt; \
	else \
		echo "benchstat not installed; raw comparison:"; \
		grep '^Benchmark' bench.shards1.txt | sort > bench.s1.sorted.txt; \
		grep '^Benchmark' bench.shardsN.txt | sort > bench.sN.sorted.txt; \
		paste bench.s1.sorted.txt bench.sN.sorted.txt | column -t; \
		rm -f bench.s1.sorted.txt bench.sN.sorted.txt; \
	fi
