# CI entry points. `make ci` is the full gate: vet, build, the whole
# test suite, and the race-detector pass over the concurrent packages
# (the parallel pool, the harness cell fan-out, and the simulators whose
# Run contracts promise read-only program sharing).

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/parallel ./internal/harness ./internal/wavecache ./internal/ooo

# bench regenerates the reduced-configuration experiment benchmarks,
# including the harness worker-pool wall-clock comparison
# (BenchmarkHarnessCells{Sequential,Parallel}).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
