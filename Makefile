# CI entry points. `make ci` is the full gate: vet, build, the whole
# test suite, and the race-detector pass over the concurrent packages
# (the parallel pool, the harness cell fan-out, and the simulators whose
# Run contracts promise read-only program sharing).

GO ?= go

.PHONY: ci check vet build test race bench fuzz

ci: vet build test race

# check is the fast pre-commit gate: vet + build + tests, no race pass.
check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/parallel ./internal/harness ./internal/wavecache ./internal/ooo ./internal/fault ./internal/noc ./internal/waveorder ./internal/trace

# fuzz runs the native fuzz targets for a short burst — a smoke pass, not
# a soak; crashes land in testdata/fuzz/ as usual.
FUZZTIME ?= 10s

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/asm

# bench regenerates the reduced-configuration experiment benchmarks,
# including the harness worker-pool wall-clock comparison
# (BenchmarkHarnessCells{Sequential,Parallel}).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
