package wavescalar

// This file holds the benchmark harness entry points: one testing.B
// benchmark per reconstructed table/figure of the MICRO 2003 evaluation
// (experiments E1–E11; see DESIGN.md for the index and EXPERIMENTS.md for
// the recorded results). Each benchmark regenerates its table on a reduced
// configuration (three kernels, 2x2 cluster grid) so `go test -bench=.`
// terminates in minutes; the full-suite tables are produced by
// `go run ./cmd/waveexp`. The set includes ammp because it is the kernel
// where the compiler memory-optimization tier fires (see `make bench-opt`).

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"wavescalar/internal/harness"
	"wavescalar/internal/wavecache"
)

var (
	benchOnce sync.Once
	benchSet  []*harness.Compiled
	benchErr  error
)

// benchCompileOptions returns the benchmark suite's compile options.
// WAVEOPT selects the optimizer tier (`make bench-opt` drives it with 0
// and 1 for the before/after passes); unset keeps the default tier.
func benchCompileOptions() harness.CompileOptions {
	o := harness.DefaultCompileOptions()
	if n, err := strconv.Atoi(os.Getenv("WAVEOPT")); err == nil && n >= 0 {
		o.OptLevel = n
	}
	return o
}

// benchSuite compiles the reduced benchmark set once for all benchmarks.
func benchSuite(b *testing.B) []*harness.Compiled {
	b.Helper()
	benchOnce.Do(func() {
		benchSet, benchErr = harness.Suite([]string{"lu", "fft", "ammp"}, benchCompileOptions())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSet
}

func benchMachine() harness.MachineOptions {
	m := harness.DefaultMachineOptions()
	m.GridW, m.GridH = 2, 2
	// WAVESHARDS sets the event-engine shard count inside every simulation
	// cell (`make bench-shards` drives it). Results are bit-identical at
	// any setting; only wall-clock moves.
	if n, err := strconv.Atoi(os.Getenv("WAVESHARDS")); err == nil && n > 0 {
		m.Shards = n
	}
	// WAVEMEM sets the memory ordering mode inside every simulation cell
	// (`make bench-spec` drives it with wave-ordered and spec for the A/B).
	// Experiments that sweep memory modes themselves (E4, E15) override it
	// per cell and are insensitive to it.
	if v := os.Getenv("WAVEMEM"); v != "" {
		mode, err := wavecache.ParseMemoryMode(v)
		if err != nil {
			panic(err)
		}
		m.MemMode = mode
	}
	return m
}

// runExperiment executes one experiment table per benchmark iteration and
// reports the headline cell as a custom metric where meaningful.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	set := benchSuite(b)
	e := harness.ExperimentByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	m := benchMachine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(set, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1_SpeedupVsSuperscalar regenerates the headline comparison:
// WaveCache vs. out-of-order superscalar vs. ideal dataflow.
func BenchmarkE1_SpeedupVsSuperscalar(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkE1b_MemoryPressure regenerates the memory-regime sweep — the
// most memory-bound table, and with E4 the one `make bench-opt` uses to
// measure the compiler memory-optimization tier's simulation-side win.
func BenchmarkE1b_MemoryPressure(b *testing.B) { runExperiment(b, "E1b") }

// BenchmarkE2_PECapacity regenerates the PE instruction-store capacity
// sweep (swap thrashing at small stores).
func BenchmarkE2_PECapacity(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkE3_GridSize regenerates the cluster-grid scaling sweep.
func BenchmarkE3_GridSize(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkE4_MemoryOrdering regenerates the wave-ordered vs. serialized
// vs. oracle memory comparison — the paper's central claim.
func BenchmarkE4_MemoryOrdering(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkE5_OperandLatency regenerates the operand-network latency
// sensitivity sweep.
func BenchmarkE5_OperandLatency(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkE6_InputQueue regenerates the PE input-queue capacity sweep.
func BenchmarkE6_InputQueue(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkE7_CacheSize regenerates the L1 size / coherence traffic sweep.
func BenchmarkE7_CacheSize(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkE8_Placement regenerates the placement-algorithm comparison.
func BenchmarkE8_Placement(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkE9_SteerVsSelect regenerates the steer (φ⁻¹) vs. select (φ)
// control ablation.
func BenchmarkE9_SteerVsSelect(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkE10_SwapCost regenerates the instruction swap-penalty sweep.
func BenchmarkE10_SwapCost(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkE11_Unrolling regenerates the loop-unrolling ablation.
func BenchmarkE11_Unrolling(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkE12_FaultInjection regenerates the fault-injection sweep
// (defect maps, message loss, recovery costs).
func BenchmarkE12_FaultInjection(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkE14_OptFeedback regenerates the optimizer-tier x placement
// feedback matrix. It compiles both tiers internally, so unlike E1b/E4
// it is insensitive to WAVEOPT — measure it for its own wall-clock, not
// in the bench-opt A/B.
func BenchmarkE14_OptFeedback(b *testing.B) { runExperiment(b, "E14") }

// BenchmarkE15_SpecScope regenerates the speculation-scope sweep. Like
// E4 it sets its memory modes per cell, so it sits outside the WAVEMEM
// A/B — measure it for its own wall-clock.
func BenchmarkE15_SpecScope(b *testing.B) { runExperiment(b, "E15") }

// benchExperimentWorkers reports the harness wall-clock for one
// experiment at a fixed worker count; comparing the Sequential and
// Parallel variants below shows the speedup of the cell pool (identical
// tables either way — see harness.MachineOptions.Workers).
func benchExperimentWorkers(b *testing.B, id string, workers int) {
	b.Helper()
	set := benchSuite(b)
	e := harness.ExperimentByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	m := benchMachine()
	m.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(set, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHarnessCellsSequential runs E1's simulation cells on one
// worker goroutine; BenchmarkHarnessCellsParallel fans the same cells
// across one worker per CPU.
func BenchmarkHarnessCellsSequential(b *testing.B) { benchExperimentWorkers(b, "E1", 1) }
func BenchmarkHarnessCellsParallel(b *testing.B)  { benchExperimentWorkers(b, "E1", 0) }

// BenchmarkSuiteCompileSequential / Parallel measure whole-suite
// compilation at one worker vs one per CPU.
func benchSuiteCompile(b *testing.B, workers int) {
	b.Helper()
	opts := benchCompileOptions()
	opts.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Suite([]string{"lu", "fft", "adpcm"}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteCompileSequential(b *testing.B) { benchSuiteCompile(b, 1) }
func BenchmarkSuiteCompileParallel(b *testing.B)   { benchSuiteCompile(b, 0) }

// BenchmarkCompile measures the full compilation pipeline (frontend, IR,
// optimizer, both backends) on one kernel.
func BenchmarkCompile(b *testing.B) {
	src := benchSuiteSource
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src, DefaultCompileConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWaveCacheSimulation measures raw simulator throughput
// (simulated instructions per wall second are visible via the custom
// metric).
func BenchmarkWaveCacheSimulation(b *testing.B) {
	prog, err := Compile(benchSuiteSource, DefaultCompileConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var fired uint64
	for i := 0; i < b.N; i++ {
		res, err := prog.Simulate(SimConfig{GridW: 2, GridH: 2})
		if err != nil {
			b.Fatal(err)
		}
		fired = res.Fired
	}
	b.ReportMetric(float64(fired), "sim-instrs/op")
}

// BenchmarkBaselineSimulation measures the superscalar model's throughput.
func BenchmarkBaselineSimulation(b *testing.B) {
	prog, err := Compile(benchSuiteSource, DefaultCompileConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.SimulateBaseline(DefaultBaselineConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

const benchSuiteSource = `
global a[256];
func main() {
	var x = 7;
	for var i = 0; i < 256; i = i + 1 {
		x = (x * 75 + 74) % 65537;
		a[i] = x % 1000;
	}
	var s = 0;
	for var i = 0; i < 256; i = i + 1 {
		s = (s * 31 + a[(i * 7) % 256]) % 1000000007;
	}
	return s;
}
`
