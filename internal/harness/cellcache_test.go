package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type cachedThing struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

func TestCellCacheRoundTrip(t *testing.T) {
	cc, err := NewCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey("spec", "config", "engines-v1")
	var miss cachedThing
	if cc.Get(key, &miss) {
		t.Fatal("hit on empty cache")
	}
	want := cachedThing{Name: "cell", Value: 1 << 62}
	if err := cc.Put(key, &want); err != nil {
		t.Fatal(err)
	}
	var got cachedThing
	if !cc.Get(key, &got) {
		t.Fatal("miss after Put")
	}
	if got != want {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
	if cc.Corrupt() != 0 {
		t.Fatalf("clean cache reported %d corrupt entries", cc.Corrupt())
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	base := CacheKey("a", "b")
	if CacheKey("a", "b") != base {
		t.Fatal("CacheKey not deterministic")
	}
	for _, parts := range [][]string{{"a", "c"}, {"a"}, {"ab"}, {"a", "b", ""}, {"", "ab"}} {
		if CacheKey(parts...) == base {
			t.Fatalf("CacheKey(%q) collided with CacheKey(a, b)", parts)
		}
	}
}

// TestCellCacheCorruption: truncated, bit-flipped, wrong-keyed, and
// garbage entries must all read as misses (and be counted), never be
// trusted — the caller recomputes and the recomputed Put heals the slot.
func TestCellCacheCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(data []byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
		{"bit-flip", func(d []byte) []byte {
			// Flip a payload digit: the envelope stays parseable but the
			// checksum no longer matches.
			s := string(d)
			i := strings.Index(s, `"value":`) + len(`"value":`)
			out := []byte(s)
			if out[i] == '1' {
				out[i] = '2'
			} else {
				out[i] = '1'
			}
			return out
		}},
		{"garbage", func(d []byte) []byte { return []byte("not json at all") }},
		{"empty", func(d []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cc, err := NewCellCache(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := CacheKey("cell", tc.name)
			want := cachedThing{Name: tc.name, Value: 123456789}
			if err := cc.Put(key, &want); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(cc.Dir(), key[:2], key+".json")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			var got cachedThing
			if cc.Get(key, &got) {
				t.Fatalf("corrupt entry (%s) trusted: %+v", tc.name, got)
			}
			if cc.Corrupt() != 1 {
				t.Fatalf("corrupt count %d, want 1", cc.Corrupt())
			}
			// Recompute-and-Put heals the slot.
			if err := cc.Put(key, &want); err != nil {
				t.Fatal(err)
			}
			if !cc.Get(key, &got) || got != want {
				t.Fatalf("healed entry unreadable: %+v", got)
			}
		})
	}
}

// TestCellCacheWrongKeyFile: an entry copied under another cell's name
// (e.g. a botched manual merge of two cache dirs) must not be trusted.
func TestCellCacheWrongKeyFile(t *testing.T) {
	cc, err := NewCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := CacheKey("one"), CacheKey("two")
	if err := cc.Put(k1, &cachedThing{Name: "one", Value: 1}); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(cc.Dir(), k1[:2], k1+".json")
	dst := filepath.Join(cc.Dir(), k2[:2], k2+".json")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var got cachedThing
	if cc.Get(k2, &got) {
		t.Fatalf("entry with mismatched key trusted: %+v", got)
	}
}

// TestCellCacheNoTempLeaks: Put must leave only the entry, no temp files.
func TestCellCacheNoTempLeaks(t *testing.T) {
	cc, err := NewCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := cc.Put(CacheKey("n", string(rune('a'+i))), &cachedThing{Value: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	err = filepath.Walk(cc.Dir(), func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && !strings.HasSuffix(path, ".json") {
			t.Errorf("stray file %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
