package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

type pruneProbe struct {
	ID  int   `json:"id"`
	Pad []int `json:"pad,omitempty"`
}

func TestPruneAgeBound(t *testing.T) {
	cc, err := NewCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = CacheKey("prune-age", fmt.Sprint(i))
		if err := cc.Put(keys[i], &pruneProbe{ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Age half the entries by backdating their mtimes.
	old := time.Now().Add(-2 * time.Hour)
	for _, k := range keys[:4] {
		if err := os.Chtimes(cc.path(k), old, old); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cc.Prune(time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedAge != 4 || st.Scanned != 8 {
		t.Fatalf("prune stats %+v, want 4 of 8 removed by age", st)
	}
	for i, k := range keys {
		var v pruneProbe
		got := cc.Get(k, &v)
		if want := i >= 4; got != want {
			t.Fatalf("key %d: present=%v, want %v", i, got, want)
		}
	}
}

func TestPruneSizeBoundEvictsOldestFirst(t *testing.T) {
	cc, err := NewCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	keys := make([]string, n)
	var entryBytes int64
	for i := range keys {
		keys[i] = CacheKey("prune-size", fmt.Sprint(i))
		if err := cc.Put(keys[i], &pruneProbe{ID: i, Pad: make([]int, 64)}); err != nil {
			t.Fatal(err)
		}
		// Deterministic age order: entry i is (n-i) hours old.
		mt := time.Now().Add(-time.Duration(n-i) * time.Hour)
		if err := os.Chtimes(cc.path(keys[i]), mt, mt); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			info, err := os.Stat(cc.path(keys[i]))
			if err != nil {
				t.Fatal(err)
			}
			entryBytes = info.Size()
		}
	}
	// Budget for three entries: the three oldest must go.
	st, err := cc.Prune(0, 3*entryBytes+entryBytes/2)
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedSize != 3 {
		t.Fatalf("prune stats %+v, want 3 removed by size", st)
	}
	for i, k := range keys {
		var v pruneProbe
		got := cc.Get(k, &v)
		if want := i >= 3; got != want {
			t.Fatalf("key %d: present=%v, want %v (oldest-first eviction)", i, got, want)
		}
	}
}

func TestPruneRemovesStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	cc, err := NewCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(sub, ".deadbeef.tmp-123")
	fresh := filepath.Join(sub, ".cafebabe.tmp-456")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	st, err := cc.Prune(time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedTemp != 1 {
		t.Fatalf("prune stats %+v, want exactly the stale temp file removed", st)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived prune")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh temp file (live writer) was removed")
	}
}

// TestPruneConcurrentWithPutGet is the prune atomicity contract: a prune
// pass racing Put and Get traffic (a long-lived waved process) must never
// surface a torn entry — every Get either misses or returns a fully valid
// payload, and the cache's corruption counter stays at zero.
func TestPruneConcurrentWithPutGet(t *testing.T) {
	cc, err := NewCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		keysPer = 32
		rounds  = 25
	)
	var writersWG, prunerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < keysPer; i++ {
					key := CacheKey("prune-race", fmt.Sprint(w), fmt.Sprint(i))
					want := w*1000 + i
					if err := cc.Put(key, &pruneProbe{ID: want}); err != nil {
						t.Errorf("put: %v", err)
						return
					}
					var v pruneProbe
					if cc.Get(key, &v) && v.ID != want {
						t.Errorf("key w=%d i=%d: got payload %d, want %d (torn entry)", w, i, v.ID, want)
						return
					}
				}
			}
		}(w)
	}
	prunerWG.Add(1)
	go func() {
		defer prunerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Alternate aggressive size-bound and age-bound passes.
			if _, err := cc.Prune(0, 1); err != nil {
				t.Errorf("prune: %v", err)
				return
			}
			if _, err := cc.Prune(time.Nanosecond, 0); err != nil {
				t.Errorf("prune: %v", err)
				return
			}
		}
	}()
	writersWG.Wait()
	close(stop)
	prunerWG.Wait()
	if got := cc.Corrupt(); got != 0 {
		t.Fatalf("cache discarded %d corrupt entries during prune race; writes must stay atomic", got)
	}
}

func TestParsePruneSpec(t *testing.T) {
	age, size, err := ParsePruneSpec("age=24h,size=256MB")
	if err != nil || age != 24*time.Hour || size != 256e6 {
		t.Fatalf("got age=%v size=%d err=%v", age, size, err)
	}
	if _, _, err := ParsePruneSpec(""); err == nil {
		t.Fatal("empty spec must be rejected")
	}
	if _, _, err := ParsePruneSpec("size=cheese"); err == nil {
		t.Fatal("bad size must be rejected")
	}
	if _, _, err := ParsePruneSpec("ttl=1h"); err == nil {
		t.Fatal("unknown key must be rejected")
	}
	for s, want := range map[string]int64{
		"512":  512,
		"1KB":  1000,
		"2MiB": 2 << 20,
		"3GB":  3e9,
	} {
		got, err := ParseBytes(s)
		if err != nil || got != want {
			t.Fatalf("ParseBytes(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
	if _, err := ParseBytes("-1MB"); err == nil {
		t.Fatal("negative byte count must be rejected")
	}
}
