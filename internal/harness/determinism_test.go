package harness

import (
	"reflect"
	"testing"

	"wavescalar/internal/ooo"
	"wavescalar/internal/wavecache"
)

// TestSimulationDeterminism: the same (program, policy construction,
// config) inputs must produce bit-identical Result structs on repeated
// runs — the property the parallel harness relies on.
func TestSimulationDeterminism(t *testing.T) {
	set := quickSet(t)
	m := quickMachine()
	for _, c := range set {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			cfg := m.WaveConfig()
			p1, err := m.NewPolicy(c.Wave)
			if err != nil {
				t.Fatal(err)
			}
			w1, err := wavecache.Run(c.Wave, p1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := m.NewPolicy(c.Wave)
			if err != nil {
				t.Fatal(err)
			}
			w2, err := wavecache.Run(c.Wave, p2, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(w1, w2) {
				t.Errorf("wavecache results differ:\n%+v\n%+v", w1, w2)
			}
			o1, err := ooo.Run(c.Linear, DefaultOoOConfig())
			if err != nil {
				t.Fatal(err)
			}
			o2, err := ooo.Run(c.Linear, DefaultOoOConfig())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(o1, o2) {
				t.Errorf("ooo results differ:\n%+v\n%+v", o1, o2)
			}
		})
	}
}

// TestWorkerCountInvariance: an experiment's rendered table must be
// byte-identical whether its cells run sequentially or across eight
// workers — results are collected by cell index, never completion order.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	set := quickSet(t)
	for _, id := range []string{"E1", "E1b", "E4", "E8", "M1", "E12"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e := ExperimentByID(id)
			if e == nil {
				t.Fatalf("experiment %s not registered", id)
			}
			seq := quickMachine()
			seq.Workers = 1
			par := quickMachine()
			par.Workers = 8
			t1, err := e.Run(set, seq)
			if err != nil {
				t.Fatal(err)
			}
			t8, err := e.Run(set, par)
			if err != nil {
				t.Fatal(err)
			}
			if t1.Render() != t8.Render() {
				t.Errorf("tables differ between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", t1.Render(), t8.Render())
			}
		})
	}
}

// TestSuiteWorkerCountInvariance: parallel compilation must return the
// same suite, in the same order, as sequential compilation.
func TestSuiteWorkerCountInvariance(t *testing.T) {
	names := []string{"lu", "fft"}
	seq := DefaultCompileOptions()
	seq.Workers = 1
	par := DefaultCompileOptions()
	par.Workers = 8
	s1, err := Suite(names, seq)
	if err != nil {
		t.Fatal(err)
	}
	s8, err := Suite(names, par)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s8) {
		t.Fatalf("suite sizes differ: %d vs %d", len(s1), len(s8))
	}
	for i := range s1 {
		if s1[i].Name != s8[i].Name || s1[i].Checksum != s8[i].Checksum ||
			s1[i].UsefulInstrs != s8[i].UsefulInstrs {
			t.Errorf("workload %d differs: %+v vs %+v", i, s1[i], s8[i])
		}
	}
}
