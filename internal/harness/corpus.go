package harness

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"wavescalar/internal/parallel"
	"wavescalar/internal/stats"
	"wavescalar/internal/testprogs"
)

// corpusCellVersion names the CorpusCell schema for cache keys; bump it
// when the cell's serialized shape or meaning changes.
const corpusCellVersion = "cell-v2"

// CorpusOptions configures a corpus-scale differential sweep (experiment
// E13): N generated programs, each verified across the full engine table.
type CorpusOptions struct {
	// N is the corpus size; Seed drives every generated program
	// (testprogs.CorpusSpecs(N, Seed) reproduces the exact corpus).
	N    int
	Seed int64
	// Shard/Shards select the 1-based shard k of n: this invocation
	// computes only cells with index ≡ k-1 (mod n). Zero values mean
	// "all cells". Distinct shard invocations sharing a CacheDir combine:
	// aggregation always merges on read from the cache.
	Shard, Shards int
	// CacheDir, when non-empty, persists each completed cell to the
	// content-addressed CellCache rooted there.
	CacheDir string
	// Resume skips cells whose cached result validates; without it,
	// in-shard cells are recomputed (and re-Put) even when cached.
	Resume bool
	// Compile and Machine configure the per-cell pipeline; both are part
	// of every cell's cache key.
	Compile CompileOptions
	Machine MachineOptions
}

// CorpusCell is one program's differential verdict — the unit of caching,
// sharding, and resumption. Every field round-trips exactly through JSON
// (int64s decode into typed fields), which is what makes a merged sharded
// table byte-identical to a single-run table.
type CorpusCell struct {
	Spec    testprogs.CorpusSpec `json:"spec"`
	Want    int64                `json:"want"`
	Useful  int64                `json:"useful"`
	Engines []EngineResult       `json:"engines"`
	Pass    bool                 `json:"pass"`
}

// aipc returns the cell's architecture-neutral IPC on the wave-ordered
// WaveCache (the corpus performance metric), or NaN when unavailable.
func (c *CorpusCell) aipc() float64 {
	for _, r := range c.Engines {
		if r.Engine == "wavecache-wave-ordered" && r.Err == "" && r.Cycles > 0 {
			return AIPC(c.Useful, r.Cycles)
		}
	}
	return math.NaN()
}

// CorpusRun is the outcome of one RunCorpus invocation.
type CorpusRun struct {
	Table *stats.Table
	// Cells is index-addressed by corpus position; nil marks a cell this
	// invocation neither computed (out of shard) nor found in the cache.
	Cells []*CorpusCell
	// Computed/Cached/Missing partition the corpus for this invocation;
	// Mismatched counts cells where at least one engine disagreed.
	Computed, Cached, Missing, Mismatched int
	// CorruptEntries counts cache entries discarded and recomputed.
	CorruptEntries int64
}

// corpusCellKey builds the content address of one cell: everything that
// determines its result — the program spec, compile options, machine
// configuration, the engine table and its version, and the cell schema.
func corpusCellKey(spec testprogs.CorpusSpec, o CorpusOptions) string {
	m := o.Machine
	return CacheKey(
		"corpus-cell", corpusCellVersion, EngineSetVersion,
		spec.Name(),
		strconv.Itoa(o.Compile.Unroll),
		fmt.Sprintf("opt=%d", o.Compile.OptLevel),
		fmt.Sprintf("grid=%dx%d density=%d queue=%d policy=%s maxcycles=%d",
			m.GridW, m.GridH, m.Density, m.InputQueue, m.Policy, m.MaxCycles),
	)
}

// computeCorpusCell generates, compiles, and differentially verifies one
// spec. Failures land inside the cell (a pseudo-engine entry for compile
// errors), never as a sweep-fatal error: a corpus run must report bad
// cells, not die on the first one.
func computeCorpusCell(spec testprogs.CorpusSpec, o CorpusOptions, engines []Engine) *CorpusCell {
	cell := &CorpusCell{Spec: spec}
	src, err := testprogs.GenerateSpec(spec)
	if err != nil {
		cell.Engines = []EngineResult{{Engine: "generate", Err: err.Error()}}
		return cell
	}
	c, err := CompileSource(spec.Name(), src, o.Compile)
	if err != nil {
		cell.Engines = []EngineResult{{Engine: "compile", Err: err.Error()}}
		return cell
	}
	cell.Want = c.Checksum
	cell.Useful = c.UsefulInstrs
	d := RunDifferential(c, engines)
	cell.Engines = d.Results
	cell.Pass = d.Pass()
	return cell
}

// RunCorpus runs experiment E13: a seeded corpus of generated workload
// families, each program executed across all ten engines, aggregated
// into a per-family pass-rate and AIPC-distribution table. With CacheDir
// set the sweep is resumable and shardable; the table is byte-identical
// whether the corpus ran in one invocation, across shards, at any worker
// count, or was merged on read from the cache.
func RunCorpus(o CorpusOptions) (*CorpusRun, error) {
	if o.N <= 0 {
		return nil, fmt.Errorf("harness: corpus size must be positive, got %d", o.N)
	}
	if o.Shards > 0 && (o.Shard < 1 || o.Shard > o.Shards) {
		return nil, fmt.Errorf("harness: shard %d/%d out of range", o.Shard, o.Shards)
	}
	var cache *CellCache
	if o.CacheDir != "" {
		var err error
		if cache, err = NewCellCache(o.CacheDir); err != nil {
			return nil, err
		}
	}
	inShard := func(i int) bool {
		return o.Shards <= 0 || i%o.Shards == o.Shard-1
	}

	specs := testprogs.CorpusSpecs(o.N, o.Seed)
	engines := Engines(o.Machine)
	run := &CorpusRun{Cells: make([]*CorpusCell, o.N)}
	const (
		computed = iota
		cached
		missing
	)
	status := make([]int, o.N)
	err := parallel.ForEachCtx(o.Machine.ctx(), o.Machine.Workers, o.N, func(i int) error {
		key := ""
		if cache != nil {
			key = corpusCellKey(specs[i], o)
			// Merge-on-read: out-of-shard cells only ever come from the
			// cache; in-shard cells reuse a valid cached result only
			// under -resume.
			if !inShard(i) || o.Resume {
				var cell CorpusCell
				if cache.Get(key, &cell) {
					run.Cells[i] = &cell
					status[i] = cached
					return nil
				}
			}
		}
		if !inShard(i) {
			status[i] = missing
			return nil
		}
		cell := computeCorpusCell(specs[i], o, engines)
		run.Cells[i] = cell
		status[i] = computed
		if cache != nil {
			// Never cache a cell cut short by cancellation: its engine
			// errors reflect when the caller gave up, not what the program
			// does, and a resumed sweep must recompute it. (Watchdog and
			// fault aborts ARE cached — they are deterministic outcomes.)
			if o.Machine.ctx().Err() != nil {
				return nil
			}
			return cache.Put(key, cell)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, cell := range run.Cells {
		switch status[i] {
		case computed:
			run.Computed++
		case cached:
			run.Cached++
		case missing:
			run.Missing++
		}
		if cell != nil && !cell.Pass {
			run.Mismatched++
		}
	}
	if cache != nil {
		run.CorruptEntries = cache.Corrupt()
	}
	run.Table = corpusTable(o, run.Cells)
	return run, nil
}

// corpusTable aggregates cells into the E13 table: one row per family
// plus a totals row. It depends only on cell values and corpus shape —
// never on which invocation computed a cell or in what order — so shard
// merges and resumes render byte-identically.
func corpusTable(o CorpusOptions, cells []*CorpusCell) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E13: generated-corpus differential verification (%d programs, corpus seed %d)", o.N, o.Seed),
		"family", "cells", "pass", "fail", "missing", "pass-rate",
		"aipc-min", "aipc-geo", "aipc-med", "aipc-max", "useful-geo")
	type agg struct {
		total, pass, fail, missing int
		aipcs, usefuls             []float64
	}
	byFamily := map[string]*agg{}
	fams := testprogs.Families()
	for _, f := range fams {
		byFamily[f] = &agg{}
	}
	addTo := func(a *agg, cell *CorpusCell) {
		a.total++
		switch {
		case cell == nil:
			a.missing++
		case cell.Pass:
			a.pass++
			if v := cell.aipc(); !math.IsNaN(v) {
				a.aipcs = append(a.aipcs, v)
			}
			if cell.Useful > 0 {
				a.usefuls = append(a.usefuls, float64(cell.Useful))
			}
		default:
			a.fail++
		}
	}
	specs := testprogs.CorpusSpecs(o.N, o.Seed)
	total := &agg{}
	for i, cell := range cells {
		addTo(byFamily[specs[i].Family], cell)
		addTo(total, cell)
	}
	row := func(name string, a *agg) {
		rate := math.NaN()
		if judged := a.pass + a.fail; judged > 0 {
			rate = float64(a.pass) / float64(judged)
		}
		t.AddRow(name, a.total, a.pass, a.fail, a.missing, rate,
			minOf(a.aipcs), stats.GeoMean(a.aipcs), medianOf(a.aipcs), maxOf(a.aipcs),
			stats.GeoMean(a.usefuls))
	}
	for _, f := range fams {
		row(f, byFamily[f])
	}
	row("all", total)
	t.Note = fmt.Sprintf("aipc = useful instrs / wave-ordered WaveCache cycles over passing cells; %d engines per cell (%s)",
		len(EngineNames(o.Machine)), EngineSetVersion)
	return t
}

func minOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// DefaultCorpusMachine is the corpus sweep's machine: the tuned kernel
// configuration on a small grid (generated programs are tiny), with a
// watchdog bound so one pathological cell cannot hang a mega-sweep.
func DefaultCorpusMachine() MachineOptions {
	m := DefaultMachineOptions()
	m.GridW, m.GridH = 2, 2
	m.MaxCycles = 50_000_000
	return m
}
