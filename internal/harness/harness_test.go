package harness

import (
	"strings"
	"testing"

	"wavescalar/internal/workloads"
)

// quickSet compiles a small, fast subset of the suite.
func quickSet(t testing.TB) []*Compiled {
	t.Helper()
	set, err := Suite([]string{"lu", "fft"}, DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// quickMachine keeps experiment runtime small for tests.
func quickMachine() MachineOptions {
	m := DefaultMachineOptions()
	m.GridW, m.GridH = 2, 2
	return m
}

func TestCompileWorkloadChecksums(t *testing.T) {
	for _, name := range []string{"lu", "adpcm"} {
		c, err := CompileWorkload(workloads.ByName(name), DefaultCompileOptions())
		if err != nil {
			t.Fatal(err)
		}
		if c.Checksum == 0 || c.UsefulInstrs == 0 {
			t.Errorf("%s: checksum=%d useful=%d", name, c.Checksum, c.UsefulInstrs)
		}
		if c.Wave == nil || c.WaveSel == nil || c.WaveNoUn == nil || c.Linear == nil {
			t.Errorf("%s: missing compiled artifact", name)
		}
		// Unrolling should have enlarged the program.
		if c.Wave.NumInstrs() <= c.WaveNoUn.NumInstrs() {
			t.Errorf("%s: unrolled %d instrs <= rolled %d", name, c.Wave.NumInstrs(), c.WaveNoUn.NumInstrs())
		}
	}
}

func TestSuiteUnknownWorkload(t *testing.T) {
	if _, err := Suite([]string{"nope"}, DefaultCompileOptions()); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestExperimentByID(t *testing.T) {
	if ExperimentByID("E1") == nil || ExperimentByID("E99") != nil {
		t.Error("ExperimentByID broken")
	}
	seen := map[string]bool{}
	for _, e := range Experiments {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %q missing metadata", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment %q", e.ID)
		}
		seen[e.ID] = true
	}
	if len(Experiments) < 11 {
		t.Errorf("only %d experiments registered", len(Experiments))
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	set := quickSet(t)
	m := quickMachine()
	for _, e := range Experiments {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(set, m)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) < len(set) {
				t.Fatalf("table has %d rows for %d benches", len(tbl.Rows), len(set))
			}
			out := tbl.Render()
			for _, c := range set {
				if !strings.Contains(out, c.Name) {
					t.Errorf("table missing bench %s:\n%s", c.Name, out)
				}
			}
		})
	}
}

func TestRunAllWritesEverySection(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	set := quickSet(t)
	var sb strings.Builder
	if err := RunAll(set, quickMachine(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, e := range Experiments {
		if !strings.Contains(out, "## "+e.ID) {
			t.Errorf("output missing section %s", e.ID)
		}
	}
}

func TestAIPC(t *testing.T) {
	if AIPC(100, 50) != 2.0 || AIPC(100, 0) != 0 {
		t.Error("AIPC arithmetic wrong")
	}
}

func TestMachineOptionsPolicy(t *testing.T) {
	set := quickSet(t)
	m := DefaultMachineOptions()
	pol, err := m.NewPolicy(set[0].Wave)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != m.Policy {
		t.Errorf("policy %q != %q", pol.Name(), m.Policy)
	}
	bad := m
	bad.Policy = "no-such-policy"
	if _, err := bad.NewPolicy(set[0].Wave); err == nil {
		t.Error("unknown policy name should be an error, not a panic")
	}
}
