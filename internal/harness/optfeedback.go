package harness

import (
	"fmt"

	"wavescalar/internal/placement"
	"wavescalar/internal/stats"
)

func init() {
	Experiments = append(Experiments, Experiment{
		ID:    "E14",
		Title: "Compiler memory optimization and profile-guided placement feedback",
		Claim: "shrinking the wave-ordered memory chains at compile time and feeding a profile-optimized layout back into placement each improve AIPC, and the two compose",
		Run:   runE14,
	})
}

// e14Seed drives the profile-feedback policy's hill-climb so the table is
// reproducible run to run (it matches the 12345 the harness hands every
// other placement policy).
const e14Seed = 12345

// runE14 measures the two feedback loops this harness closes around the
// compiler: the memory-optimization tier (-O1 vs -O0) and the
// profile-guided placement policy, in all four combinations. AIPC for
// every combination is computed against the *unoptimized* binary's
// dynamic linear instruction count — the optimizer removes instructions,
// so charging each binary its own count would hide exactly the work the
// tier eliminated. Checksums are verified on every cell (RunWave), so a
// miscompiled program fails the experiment rather than skewing it.
func runE14(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	t := stats.NewTable("E14: AIPC by optimizer tier x placement feedback (work = O0 linear instrs)",
		"bench", "o0-base", "o0-proffb", "o1-base", "o1-proffb", "o1/o0", "best/o0-base", "memops", "chain-slots")

	// Build both tiers of every bench up front. The incoming set may have
	// been compiled at either level, so reuse a bench's own binary for the
	// level it was built at and recompile only the other tier.
	unroll := DefaultCompileOptions().Unroll
	type pair struct {
		o0, o1 *Compiled
	}
	pairs := make([]pair, len(set))
	comp := newCellSet(m)
	for bi, c := range set {
		comp.add(func() error {
			p := &pairs[bi]
			p.o0, p.o1 = c, c
			var err error
			if c.Opt != 0 {
				if p.o0, err = CompileSource(c.Name, c.Source(), CompileOptions{Unroll: unroll, OptLevel: 0}); err != nil {
					return fmt.Errorf("E14 %s at O0: %w", c.Name, err)
				}
			}
			if c.Opt < 1 {
				if p.o1, err = CompileSource(c.Name, c.Source(), CompileOptions{Unroll: unroll, OptLevel: 1}); err != nil {
					return fmt.Errorf("E14 %s at O1: %w", c.Name, err)
				}
			}
			return nil
		})
	}
	if err := comp.run(); err != nil {
		return nil, err
	}

	// Four simulation cells per bench: {O0, O1} x {baseline policy,
	// profile-feedback}. The feedback cells construct their own policy
	// (profiling run + model hill-climb) per cell, as cells must.
	cycles := make([]int64, len(set)*4)
	cells := newCellSet(m)
	for bi := range set {
		for li, cc := range [2]*Compiled{pairs[bi].o0, pairs[bi].o1} {
			base := bi*4 + li*2
			cells.add(func() error {
				res, err := runWaveWith(cc, cc.Wave, m, m.WaveConfig())
				if err != nil {
					return err
				}
				cycles[base] = res.Cycles
				return nil
			})
			cells.add(func() error {
				cfg := m.WaveConfig()
				pol, err := placement.New("profile-feedback", cfg.Machine, cc.Wave, e14Seed)
				if err != nil {
					return fmt.Errorf("E14 %s: %w", cc.Name, err)
				}
				res, err := RunWave(cc, cc.Wave, pol, cfg)
				if err != nil {
					return err
				}
				cycles[base+1] = res.Cycles
				return nil
			})
		}
	}
	if err := cells.run(); err != nil {
		return nil, err
	}

	var optRatios, bestRatios []float64
	for bi, c := range set {
		p := pairs[bi]
		useful := p.o0.UsefulInstrs
		cy := cycles[bi*4 : bi*4+4]
		opt := float64(cy[0]) / float64(cy[2])
		best := cy[1]
		if cy[3] < best {
			best = cy[3]
		}
		bestGain := float64(cy[0]) / float64(best)
		optRatios = append(optRatios, opt)
		bestRatios = append(bestRatios, bestGain)
		t.AddRow(c.Name,
			AIPC(useful, cy[0]),
			AIPC(useful, cy[1]),
			AIPC(useful, cy[2]),
			AIPC(useful, cy[3]),
			opt,
			bestGain,
			fmt.Sprintf("%d->%d", p.o1.MemOpt.MemBefore, p.o1.MemOpt.MemAfter),
			fmt.Sprintf("%d->%d", p.o0.Chains.Slots, p.o1.Chains.Slots))
	}
	t.Note = fmt.Sprintf("geomean cycle speedup: O1 over O0 (baseline policy) %.2fx; best feedback combination over O0 baseline %.2fx", stats.GeoMean(optRatios), stats.GeoMean(bestRatios))
	return t, nil
}
