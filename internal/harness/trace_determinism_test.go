package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"wavescalar/internal/fault"
	"wavescalar/internal/placement"
	"wavescalar/internal/trace"
	"wavescalar/internal/wavecache"
)

// tracedRun executes one workload on the WaveCache with a fully enabled
// tracer (events + metrics) attached, returning the simulation result and
// the tracer.
func tracedRun(t *testing.T, c *Compiled, m MachineOptions, faultSpec string) (wavecache.Result, *trace.Tracer) {
	t.Helper()
	cfg := m.WaveConfig()
	if faultSpec != "" {
		fc, err := fault.ParseSpec(faultSpec)
		if err != nil {
			t.Fatal(err)
		}
		fc.Seed = 7
		cfg.Faults = fc
		cfg.Machine.Defective = fault.DefectMap(fc, cfg.Machine.NumPEs())
	}
	pol, err := placement.New(m.Policy, cfg.Machine, c.Wave, 12345)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{Events: true})
	cfg.Tracer = tr
	res, err := wavecache.Run(c.Wave, placement.Traced(pol, tr), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, tr
}

// untracedRun is the same simulation with tracing fully disabled.
func untracedRun(t *testing.T, c *Compiled, m MachineOptions, faultSpec string) wavecache.Result {
	t.Helper()
	cfg := m.WaveConfig()
	if faultSpec != "" {
		fc, err := fault.ParseSpec(faultSpec)
		if err != nil {
			t.Fatal(err)
		}
		fc.Seed = 7
		cfg.Faults = fc
		cfg.Machine.Defective = fault.DefectMap(fc, cfg.Machine.NumPEs())
	}
	pol, err := placement.New(m.Policy, cfg.Machine, c.Wave, 12345)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wavecache.Run(c.Wave, pol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTracingDoesNotPerturbSimulation: attaching a tracer (even with the
// event stream enabled) must leave the simulation's Result bit-identical
// to an untraced run — tracing observes the event processing order, it
// never schedules anything. Checked on clean and faulty configurations.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	set := quickSet(t)
	m := quickMachine()
	for _, spec := range []string{"", "defect=0.05,drop=0.02,retries=4"} {
		spec := spec
		name := "clean"
		if spec != "" {
			name = "faulty"
		}
		t.Run(name, func(t *testing.T) {
			for _, c := range set {
				base := untracedRun(t, c, m, spec)
				traced, _ := tracedRun(t, c, m, spec)
				if !reflect.DeepEqual(base, traced) {
					t.Errorf("%s: traced result differs from untraced:\n%+v\n%+v",
						c.Name, base, traced)
				}
			}
		})
	}
}

// TestTraceStreamDeterministic: for a fixed (program, policy, config,
// fault seed), two traced runs must export byte-identical JSONL and
// Chrome traces, and render identical metrics summaries.
func TestTraceStreamDeterministic(t *testing.T) {
	set := quickSet(t)
	m := quickMachine()
	for _, spec := range []string{"", "defect=0.05,drop=0.02,retries=4"} {
		spec := spec
		name := "clean"
		if spec != "" {
			name = "faulty"
		}
		t.Run(name, func(t *testing.T) {
			c := set[0]
			_, tr1 := tracedRun(t, c, m, spec)
			_, tr2 := tracedRun(t, c, m, spec)
			var j1, j2 bytes.Buffer
			if err := tr1.WriteJSONL(&j1); err != nil {
				t.Fatal(err)
			}
			if err := tr2.WriteJSONL(&j2); err != nil {
				t.Fatal(err)
			}
			if j1.Len() == 0 {
				t.Fatal("empty event stream")
			}
			if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
				t.Error("JSONL event streams differ between identical runs")
			}
			var c1, c2 bytes.Buffer
			if err := tr1.WriteChromeTrace(&c1); err != nil {
				t.Fatal(err)
			}
			if err := tr2.WriteChromeTrace(&c2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
				t.Error("Chrome traces differ between identical runs")
			}
			s1 := tr1.Metrics().Summary("m").Render()
			s2 := tr2.Metrics().Summary("m").Render()
			if s1 != s2 {
				t.Errorf("metrics summaries differ:\n%s\n%s", s1, s2)
			}
		})
	}
}

// TestMetricsWorkerCountInvariance: an experiment's aggregated metrics
// summary must be byte-identical at any worker count (the Aggregate merge
// is commutative), and enabling metrics must leave the experiment table
// itself untouched.
func TestMetricsWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	set := quickSet(t)
	e := ExperimentByID("E1")

	base := quickMachine()
	base.Workers = 1
	plain, err := e.Run(set, base)
	if err != nil {
		t.Fatal(err)
	}

	render := func(workers int) (string, string) {
		m := quickMachine()
		m.Workers = workers
		m.Metrics = trace.NewAggregate()
		tbl, err := e.Run(set, m)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		WriteMetrics(e.ID, m, &sb)
		return tbl.Render(), sb.String()
	}
	t1, m1 := render(1)
	t8, m8 := render(8)
	if t1 != plain.Render() {
		t.Errorf("enabling metrics changed the experiment table:\n--- plain ---\n%s\n--- metrics ---\n%s",
			plain.Render(), t1)
	}
	if t1 != t8 {
		t.Error("experiment tables differ between -j 1 and -j 8 with metrics on")
	}
	if m1 == "" {
		t.Fatal("metrics summary empty")
	}
	if m1 != m8 {
		t.Errorf("metrics summaries differ between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", m1, m8)
	}
}
