package harness

import (
	"fmt"

	"wavescalar/internal/placement"
	"wavescalar/internal/stats"
	"wavescalar/internal/wavecache"
	"wavescalar/internal/workloads"
)

// Experiments is the reconstructed MICRO 2003 evaluation, one entry per
// table/figure (IDs match DESIGN.md and EXPERIMENTS.md).
var Experiments = []Experiment{
	{
		ID:    "E1",
		Title: "WaveCache vs. superscalar vs. ideal dataflow (headline figure)",
		Claim: "the WaveCache outperforms an aggressive out-of-order superscalar, especially on memory-parallel codes; an idealized dataflow machine shows further headroom",
		Run:   runE1,
	},
	{
		ID:    "E2",
		Title: "WaveCache capacity: instructions per PE",
		Claim: "small PE instruction stores thrash (swap storms); performance saturates once the working set of instructions is resident",
		Run:   runE2,
	},
	{
		ID:    "E3",
		Title: "Grid size: number of clusters",
		Claim: "kernels saturate a small grid; extra clusters add operand latency without adding useful parallelism until working sets grow",
		Run:   runE3,
	},
	{
		ID:    "E4",
		Title: "Memory ordering: wave-ordered vs. serialized vs. oracle",
		Claim: "wave-ordered memory recovers most of an oracle memory's performance while a dependence-token serialized memory collapses — the paper's central claim",
		Run:   runE4,
	},
	{
		ID:    "E5",
		Title: "Operand network latency sensitivity",
		Claim: "performance degrades smoothly as operand latencies scale; placement locality keeps most traffic on the cheap levels",
		Run:   runE5,
	},
	{
		ID:    "E6",
		Title: "PE input queue (matching table) size",
		Claim: "undersized matching storage forces token spills and serializes bursty producers",
		Run:   runE6,
	},
	{
		ID:    "E7",
		Title: "L1 data cache size and coherence traffic",
		Claim: "per-cluster L1s capture most locality; the directory protocol's transfers track data sharing between clusters",
		Run:   runE7,
	},
	{
		ID:    "E8",
		Title: "Placement algorithms",
		Claim: "placement can swing performance severely; packing (contention) and scattering (latency) trade off, and dynamic-depth-first-snake balances both",
		Run:   runE8,
	},
	{
		ID:    "E9",
		Title: "Control: steer (φ⁻¹) vs. select (φ) compilation",
		Claim: "if-conversion to φ selects removes steers and branch-induced waves at the cost of executing both arms",
		Run:   runE9,
	},
	{
		ID:    "E10",
		Title: "Instruction swap penalty",
		Claim: "the cost of demand-swapping instructions into PE stores is visible only when stores are undersized",
		Run:   runE10,
	},
	{
		ID:    "E11",
		Title: "Loop unrolling (k-loop bounding)",
		Claim: "unrolling amortizes the dataflow loop-control chain (steer + wave-advance per iteration), helping the WaveCache more than the superscalar",
		Run:   runE11,
	},
}

// ExperimentByID finds an experiment.
func ExperimentByID(id string) *Experiment {
	for i := range Experiments {
		if Experiments[i].ID == id {
			return &Experiments[i]
		}
	}
	return nil
}

func runE1(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	t := stats.NewTable("E1: performance (AIPC = useful instructions per cycle)",
		"bench", "useful", "ooo-ipc", "wc-aipc", "wc-raw-ipc", "ideal-aipc", "speedup")
	var speedups, wcs, ooos []float64
	for _, c := range set {
		ores, err := RunOoO(c, DefaultOoOConfig())
		if err != nil {
			return nil, err
		}
		wres, err := RunWave(c, c.Wave, m.NewPolicy(c.Wave), m.WaveConfig())
		if err != nil {
			return nil, err
		}
		ires, err := RunWave(c, c.Wave, placement.NewDynamicSnake(idealWaveConfig().Machine), idealWaveConfig())
		if err != nil {
			return nil, err
		}
		sp := float64(ores.Cycles) / float64(wres.Cycles)
		speedups = append(speedups, sp)
		wcs = append(wcs, AIPC(c.UsefulInstrs, wres.Cycles))
		ooos = append(ooos, ores.IPC)
		t.AddRow(c.Name, c.UsefulInstrs, ores.IPC,
			AIPC(c.UsefulInstrs, wres.Cycles), wres.IPC,
			AIPC(c.UsefulInstrs, ires.Cycles), sp)
	}
	t.AddRow("geomean", "", stats.GeoMean(ooos), stats.GeoMean(wcs), "", "", stats.GeoMean(speedups))
	t.Note = "speedup = ooo cycles / WaveCache cycles on identical source"
	return t, nil
}

func runE2(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	caps := []int{4, 8, 16, 32, 64}
	headers := []string{"bench"}
	for _, c := range caps {
		headers = append(headers, fmt.Sprintf("aipc@%d", c), fmt.Sprintf("swaps@%d", c))
	}
	t := stats.NewTable("E2: AIPC and swaps vs. PE instruction-store capacity (1x1 grid)", headers...)
	for _, c := range set {
		row := []any{c.Name}
		for _, capacity := range caps {
			cfg := m.WaveConfig()
			cfg.Machine = placement.DefaultMachine(1, 1)
			cfg.Machine.Capacity = capacity
			cfg.PEStore = capacity
			cfg.Net = wavecache.DefaultConfig(1, 1).Net
			cfg.Mem = wavecache.DefaultConfig(1, 1).Mem
			cfg.InputQueue = m.InputQueue
			pol, err := placement.New(m.Policy, cfg.Machine, c.Wave, 12345)
			if err != nil {
				return nil, err
			}
			res, err := RunWave(c, c.Wave, pol, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, AIPC(c.UsefulInstrs, res.Cycles), res.Swaps)
		}
		t.AddRow(row...)
	}
	return t, nil
}

func runE3(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	grids := [][2]int{{1, 1}, {2, 2}, {4, 4}, {8, 8}}
	headers := []string{"bench"}
	for _, g := range grids {
		headers = append(headers, fmt.Sprintf("aipc@%dx%d", g[0], g[1]))
	}
	t := stats.NewTable("E3: AIPC vs. cluster grid size", headers...)
	for _, c := range set {
		row := []any{c.Name}
		for _, g := range grids {
			opt := m
			opt.GridW, opt.GridH = g[0], g[1]
			cfg := opt.WaveConfig()
			res, err := RunWave(c, c.Wave, opt.NewPolicy(c.Wave), cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, AIPC(c.UsefulInstrs, res.Cycles))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func runE4(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	t := stats.NewTable("E4: AIPC by memory ordering strategy",
		"bench", "wave-ordered", "serialized", "oracle", "ordered/serial", "oracle/ordered")
	var ratios []float64
	for _, c := range set {
		var cycles [3]int64
		for i, mode := range []wavecache.MemoryMode{wavecache.MemOrdered, wavecache.MemSerial, wavecache.MemIdeal} {
			cfg := m.WaveConfig()
			cfg.MemMode = mode
			res, err := RunWave(c, c.Wave, m.NewPolicy(c.Wave), cfg)
			if err != nil {
				return nil, err
			}
			cycles[i] = res.Cycles
		}
		r := float64(cycles[1]) / float64(cycles[0])
		ratios = append(ratios, r)
		t.AddRow(c.Name,
			AIPC(c.UsefulInstrs, cycles[0]),
			AIPC(c.UsefulInstrs, cycles[1]),
			AIPC(c.UsefulInstrs, cycles[2]),
			r,
			float64(cycles[0])/float64(cycles[2]))
	}
	t.Note = fmt.Sprintf("geomean speedup of wave-ordered over serialized memory: %.2fx", stats.GeoMean(ratios))
	return t, nil
}

func runE5(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	scales := []int64{0, 1, 2, 4}
	headers := []string{"bench"}
	for _, s := range scales {
		headers = append(headers, fmt.Sprintf("aipc@x%d", s))
	}
	t := stats.NewTable("E5: AIPC vs. operand-network latency scale", headers...)
	for _, c := range set {
		row := []any{c.Name}
		for _, s := range scales {
			cfg := m.WaveConfig()
			cfg.Net.IntraPod *= s
			cfg.Net.IntraDomain *= s
			cfg.Net.IntraCluster *= s
			cfg.Net.InterClusterBase *= s
			cfg.Net.LinkLatency *= s
			res, err := RunWave(c, c.Wave, m.NewPolicy(c.Wave), cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, AIPC(c.UsefulInstrs, res.Cycles))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func runE6(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	queues := []int{4, 16, 64, 256, 1 << 30}
	headers := []string{"bench"}
	for _, q := range queues {
		label := fmt.Sprintf("%d", q)
		if q == 1<<30 {
			label = "inf"
		}
		headers = append(headers, "aipc@"+label)
	}
	headers = append(headers, "spills@16")
	t := stats.NewTable("E6: AIPC vs. PE input-queue capacity", headers...)
	for _, c := range set {
		row := []any{c.Name}
		var spills16 uint64
		for _, q := range queues {
			cfg := m.WaveConfig()
			cfg.InputQueue = q
			res, err := RunWave(c, c.Wave, m.NewPolicy(c.Wave), cfg)
			if err != nil {
				return nil, err
			}
			if q == 16 {
				spills16 = res.Overflows
			}
			row = append(row, AIPC(c.UsefulInstrs, res.Cycles))
		}
		row = append(row, spills16)
		t.AddRow(row...)
	}
	return t, nil
}

func runE7(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	sizes := []int64{64, 256, 1024, 4096}
	headers := []string{"bench"}
	for _, s := range sizes {
		headers = append(headers, fmt.Sprintf("aipc@%dKB", s*8/1024))
	}
	headers = append(headers, "missrate@2KB", "transfers@2KB")
	t := stats.NewTable("E7: AIPC vs. per-cluster L1 size; coherence traffic", headers...)
	for _, c := range set {
		row := []any{c.Name}
		var miss float64
		var transfers uint64
		for _, s := range sizes {
			cfg := m.WaveConfig()
			cfg.Mem.L1.SizeWords = s
			res, err := RunWave(c, c.Wave, m.NewPolicy(c.Wave), cfg)
			if err != nil {
				return nil, err
			}
			if s == 256 {
				if res.Mem.Accesses > 0 {
					miss = float64(res.Mem.L1Misses) / float64(res.Mem.Accesses)
				}
				transfers = res.Mem.Transfers
			}
			row = append(row, AIPC(c.UsefulInstrs, res.Cycles))
		}
		row = append(row, miss, transfers)
		t.AddRow(row...)
	}
	t.Note = "L1 sizes are per cluster; 64 words = 0.5 KB"
	return t, nil
}

func runE8(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	policies := placement.Names()
	headers := append([]string{"bench"}, policies...)
	t := stats.NewTable("E8: AIPC by placement algorithm", headers...)
	sums := make([]float64, len(policies))
	counts := 0
	perPolicy := make([][]float64, len(policies))
	for _, c := range set {
		row := []any{c.Name}
		for i, name := range policies {
			cfg := m.WaveConfig()
			pol, err := placement.New(name, cfg.Machine, c.Wave, 12345)
			if err != nil {
				return nil, err
			}
			res, err := RunWave(c, c.Wave, pol, cfg)
			if err != nil {
				return nil, err
			}
			a := AIPC(c.UsefulInstrs, res.Cycles)
			perPolicy[i] = append(perPolicy[i], a)
			sums[i] += a
			row = append(row, a)
		}
		counts++
		t.AddRow(row...)
	}
	geo := []any{"geomean"}
	for i := range policies {
		geo = append(geo, stats.GeoMean(perPolicy[i]))
	}
	t.AddRow(geo...)
	return t, nil
}

func runE9(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	t := stats.NewTable("E9: steer (φ⁻¹) vs. select (φ) control",
		"bench", "steer-aipc", "select-aipc", "steer-static", "select-static", "steer-fired", "select-fired")
	for _, c := range set {
		rs, err := RunWave(c, c.Wave, m.NewPolicy(c.Wave), m.WaveConfig())
		if err != nil {
			return nil, err
		}
		rsel, err := RunWave(c, c.WaveSel, m.NewPolicy(c.WaveSel), m.WaveConfig())
		if err != nil {
			return nil, err
		}
		t.AddRow(c.Name,
			AIPC(c.UsefulInstrs, rs.Cycles), AIPC(c.UsefulInstrs, rsel.Cycles),
			c.Wave.NumInstrs(), c.WaveSel.NumInstrs(),
			rs.Fired, rsel.Fired)
	}
	return t, nil
}

func runE10(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	costs := []int64{0, 8, 32, 128}
	headers := []string{"bench"}
	for _, c := range costs {
		headers = append(headers, fmt.Sprintf("aipc@%d", c))
	}
	t := stats.NewTable("E10: AIPC vs. instruction swap penalty (8-per-PE stores)", headers...)
	for _, c := range set {
		row := []any{c.Name}
		for _, cost := range costs {
			cfg := m.WaveConfig()
			cfg.PEStore = 8
			cfg.Machine.Capacity = 8
			cfg.SwapPenalty = cost
			res, err := RunWave(c, c.Wave, m.NewPolicy(c.Wave), cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, AIPC(c.UsefulInstrs, res.Cycles))
		}
		t.AddRow(row...)
	}
	t.Note = "stores deliberately undersized (8 instructions) so swapping is on the critical path"
	return t, nil
}

func runE11(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	t := stats.NewTable("E11: loop unrolling ablation",
		"bench", "wc-rolled-cyc", "wc-unrolled-cyc", "wc-gain", "ooo-rolled-cyc", "ooo-unrolled-cyc", "ooo-gain")
	var wcGains, oooGains []float64
	for _, c := range set {
		wr, err := wavecache.Run(c.WaveNoUn, m.NewPolicy(c.WaveNoUn), m.WaveConfig())
		if err != nil {
			return nil, err
		}
		wu, err := RunWave(c, c.Wave, m.NewPolicy(c.Wave), m.WaveConfig())
		if err != nil {
			return nil, err
		}
		// Rolled linear build for the baseline.
		rolled, err := CompileWorkload(mustWorkload(c.Name), CompileOptions{Unroll: 1})
		if err != nil {
			return nil, err
		}
		or, err := RunOoO(rolled, DefaultOoOConfig())
		if err != nil {
			return nil, err
		}
		ou, err := RunOoO(c, DefaultOoOConfig())
		if err != nil {
			return nil, err
		}
		wcGain := float64(wr.Cycles) / float64(wu.Cycles)
		oooGain := float64(or.Cycles) / float64(ou.Cycles)
		wcGains = append(wcGains, wcGain)
		oooGains = append(oooGains, oooGain)
		t.AddRow(c.Name, wr.Cycles, wu.Cycles, wcGain, or.Cycles, ou.Cycles, oooGain)
	}
	t.Note = fmt.Sprintf("geomean unrolling gain: WaveCache %.2fx, superscalar %.2fx",
		stats.GeoMean(wcGains), stats.GeoMean(oooGains))
	return t, nil
}

func mustWorkload(name string) *workloads.Workload {
	w := workloads.ByName(name)
	if w == nil {
		panic("harness: unknown workload " + name)
	}
	return w
}
