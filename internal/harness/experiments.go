package harness

import (
	"fmt"
	"strings"

	"wavescalar/internal/ooo"
	"wavescalar/internal/placement"
	"wavescalar/internal/stats"
	"wavescalar/internal/wavecache"
	"wavescalar/internal/workloads"
)

// Experiments is the reconstructed MICRO 2003 evaluation, one entry per
// table/figure (IDs match DESIGN.md and EXPERIMENTS.md).
var Experiments = []Experiment{
	{
		ID:    "E1",
		Title: "WaveCache vs. superscalar vs. ideal dataflow (headline figure)",
		Claim: "the WaveCache outperforms an aggressive out-of-order superscalar, especially on memory-parallel codes; an idealized dataflow machine shows further headroom",
		Run:   runE1,
	},
	{
		ID:    "E2",
		Title: "WaveCache capacity: instructions per PE",
		Claim: "small PE instruction stores thrash (swap storms); performance saturates once the working set of instructions is resident",
		Run:   runE2,
	},
	{
		ID:    "E3",
		Title: "Grid size: number of clusters",
		Claim: "kernels saturate a small grid; extra clusters add operand latency without adding useful parallelism until working sets grow",
		Run:   runE3,
	},
	{
		ID:    "E4",
		Title: "Memory ordering: wave-ordered vs. serialized vs. oracle",
		Claim: "wave-ordered memory recovers most of an oracle memory's performance while a dependence-token serialized memory collapses — the paper's central claim",
		Run:   runE4,
	},
	{
		ID:    "E5",
		Title: "Operand network latency sensitivity",
		Claim: "performance degrades smoothly as operand latencies scale; placement locality keeps most traffic on the cheap levels",
		Run:   runE5,
	},
	{
		ID:    "E6",
		Title: "PE input queue (matching table) size",
		Claim: "undersized matching storage forces token spills and serializes bursty producers",
		Run:   runE6,
	},
	{
		ID:    "E7",
		Title: "L1 data cache size and coherence traffic",
		Claim: "per-cluster L1s capture most locality; the directory protocol's transfers track data sharing between clusters",
		Run:   runE7,
	},
	{
		ID:    "E8",
		Title: "Placement algorithms",
		Claim: "placement can swing performance severely; packing (contention) and scattering (latency) trade off, and dynamic-depth-first-snake balances both",
		Run:   runE8,
	},
	{
		ID:    "E9",
		Title: "Control: steer (φ⁻¹) vs. select (φ) compilation",
		Claim: "if-conversion to φ selects removes steers and branch-induced waves at the cost of executing both arms",
		Run:   runE9,
	},
	{
		ID:    "E10",
		Title: "Instruction swap penalty",
		Claim: "the cost of demand-swapping instructions into PE stores is visible only when stores are undersized",
		Run:   runE10,
	},
	{
		ID:    "E11",
		Title: "Loop unrolling (k-loop bounding)",
		Claim: "unrolling amortizes the dataflow loop-control chain (steer + wave-advance per iteration), helping the WaveCache more than the superscalar",
		Run:   runE11,
	},
}

// ExperimentByID finds an experiment.
func ExperimentByID(id string) *Experiment {
	for i := range Experiments {
		if Experiments[i].ID == id {
			return &Experiments[i]
		}
	}
	return nil
}

func runE1(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	t := stats.NewTable("E1: performance (AIPC = useful instructions per cycle)",
		"bench", "useful", "ooo-ipc", "wc-aipc", "wc-raw-ipc", "ideal-aipc", "speedup")
	type row struct {
		ores       ooo.Result
		wres, ires wavecache.Result
	}
	rows := make([]row, len(set))
	cells := newCellSet(m)
	for i, c := range set {
		cells.add(func() error {
			var err error
			rows[i].ores, err = RunOoO(c, DefaultOoOConfig())
			return err
		})
		cells.add(func() error {
			var err error
			rows[i].wres, err = runWaveWith(c, c.Wave, m, m.WaveConfig())
			return err
		})
		cells.add(func() error {
			pol, err := placement.NewDynamicSnake(idealWaveConfig().Machine)
			if err != nil {
				return err
			}
			rows[i].ires, err = RunWave(c, c.Wave, pol, idealWaveConfig())
			return err
		})
	}
	if err := cells.run(); err != nil {
		return nil, err
	}
	var speedups, wcs, ooos []float64
	for i, c := range set {
		r := &rows[i]
		sp := float64(r.ores.Cycles) / float64(r.wres.Cycles)
		speedups = append(speedups, sp)
		wcs = append(wcs, AIPC(c.UsefulInstrs, r.wres.Cycles))
		ooos = append(ooos, r.ores.IPC)
		t.AddRow(c.Name, c.UsefulInstrs, r.ores.IPC,
			AIPC(c.UsefulInstrs, r.wres.Cycles), r.wres.IPC,
			AIPC(c.UsefulInstrs, r.ires.Cycles), sp)
	}
	t.AddRow("geomean", "", stats.GeoMean(ooos), stats.GeoMean(wcs), "", "", stats.GeoMean(speedups))
	t.Note = "speedup = ooo cycles / WaveCache cycles on identical source"
	return t, nil
}

func runE2(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	caps := []int{4, 8, 16, 32, 64}
	headers := []string{"bench"}
	for _, c := range caps {
		headers = append(headers, fmt.Sprintf("aipc@%d", c), fmt.Sprintf("swaps@%d", c))
	}
	t := stats.NewTable("E2: AIPC and swaps vs. PE instruction-store capacity (1x1 grid)", headers...)
	grid := make([]wavecache.Result, len(set)*len(caps))
	cells := newCellSet(m)
	for bi, c := range set {
		for ci, capacity := range caps {
			slot := bi*len(caps) + ci
			cells.add(func() error {
				cfg := m.WaveConfig()
				cfg.Machine = placement.DefaultMachine(1, 1)
				cfg.Machine.Capacity = capacity
				cfg.PEStore = capacity
				cfg.Net = wavecache.DefaultConfig(1, 1).Net
				cfg.Mem = wavecache.DefaultConfig(1, 1).Mem
				cfg.InputQueue = m.InputQueue
				pol, err := placement.New(m.Policy, cfg.Machine, c.Wave, 12345)
				if err != nil {
					return err
				}
				res, err := RunWave(c, c.Wave, pol, cfg)
				if err != nil {
					return err
				}
				grid[slot] = res
				return nil
			})
		}
	}
	if err := cells.run(); err != nil {
		return nil, err
	}
	for bi, c := range set {
		row := []any{c.Name}
		for ci := range caps {
			res := &grid[bi*len(caps)+ci]
			row = append(row, AIPC(c.UsefulInstrs, res.Cycles), res.Swaps)
		}
		t.AddRow(row...)
	}
	return t, nil
}

func runE3(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	grids := [][2]int{{1, 1}, {2, 2}, {4, 4}, {8, 8}}
	headers := []string{"bench"}
	for _, g := range grids {
		headers = append(headers, fmt.Sprintf("aipc@%dx%d", g[0], g[1]))
	}
	t := stats.NewTable("E3: AIPC vs. cluster grid size", headers...)
	grid := make([]wavecache.Result, len(set)*len(grids))
	cells := newCellSet(m)
	for bi, c := range set {
		for gi, g := range grids {
			slot := bi*len(grids) + gi
			cells.add(func() error {
				opt := m
				opt.GridW, opt.GridH = g[0], g[1]
				res, err := runWaveWith(c, c.Wave, opt, opt.WaveConfig())
				if err != nil {
					return err
				}
				grid[slot] = res
				return nil
			})
		}
	}
	if err := cells.run(); err != nil {
		return nil, err
	}
	for bi, c := range set {
		row := []any{c.Name}
		for gi := range grids {
			row = append(row, AIPC(c.UsefulInstrs, grid[bi*len(grids)+gi].Cycles))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func runE4(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	t := stats.NewTable("E4: AIPC by memory ordering strategy",
		"bench", "serialized", "wave-ordered", "speculative", "oracle",
		"ordered/serial", "spec/ordered", "oracle/spec")
	modes := []wavecache.MemoryMode{wavecache.MemSerial, wavecache.MemOrdered, wavecache.MemSpec, wavecache.MemIdeal}
	cycles := make([]int64, len(set)*len(modes))
	cells := newCellSet(m)
	for bi, c := range set {
		for mi, mode := range modes {
			slot := bi*len(modes) + mi
			cells.add(func() error {
				cfg := m.WaveConfig()
				cfg.MemMode = mode
				res, err := runWaveWith(c, c.Wave, m, cfg)
				if err != nil {
					return err
				}
				cycles[slot] = res.Cycles
				return nil
			})
		}
	}
	if err := cells.run(); err != nil {
		return nil, err
	}
	var ordSer, specOrd []float64
	for bi, c := range set {
		cy := cycles[bi*len(modes) : (bi+1)*len(modes)]
		serial, ordered, spec, oracle := cy[0], cy[1], cy[2], cy[3]
		rs := float64(serial) / float64(ordered)
		ro := float64(ordered) / float64(spec)
		ordSer = append(ordSer, rs)
		specOrd = append(specOrd, ro)
		t.AddRow(c.Name,
			AIPC(c.UsefulInstrs, serial),
			AIPC(c.UsefulInstrs, ordered),
			AIPC(c.UsefulInstrs, spec),
			AIPC(c.UsefulInstrs, oracle),
			rs,
			ro,
			float64(spec)/float64(oracle))
	}
	t.Note = fmt.Sprintf("geomean speedup: wave-ordered over serialized %.2fx, speculative over wave-ordered %.2fx",
		stats.GeoMean(ordSer), stats.GeoMean(specOrd))
	return t, nil
}

func runE5(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	scales := []int64{0, 1, 2, 4}
	headers := []string{"bench"}
	for _, s := range scales {
		headers = append(headers, fmt.Sprintf("aipc@x%d", s))
	}
	t := stats.NewTable("E5: AIPC vs. operand-network latency scale", headers...)
	cycles := make([]int64, len(set)*len(scales))
	cells := newCellSet(m)
	for bi, c := range set {
		for si, s := range scales {
			slot := bi*len(scales) + si
			cells.add(func() error {
				cfg := m.WaveConfig()
				cfg.Net.IntraPod *= s
				cfg.Net.IntraDomain *= s
				cfg.Net.IntraCluster *= s
				cfg.Net.InterClusterBase *= s
				cfg.Net.LinkLatency *= s
				res, err := runWaveWith(c, c.Wave, m, cfg)
				if err != nil {
					return err
				}
				cycles[slot] = res.Cycles
				return nil
			})
		}
	}
	if err := cells.run(); err != nil {
		return nil, err
	}
	for bi, c := range set {
		row := []any{c.Name}
		for si := range scales {
			row = append(row, AIPC(c.UsefulInstrs, cycles[bi*len(scales)+si]))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func runE6(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	queues := []int{4, 16, 64, 256, 1 << 30}
	headers := []string{"bench"}
	for _, q := range queues {
		label := fmt.Sprintf("%d", q)
		if q == 1<<30 {
			label = "inf"
		}
		headers = append(headers, "aipc@"+label)
	}
	headers = append(headers, "spills@16")
	t := stats.NewTable("E6: AIPC vs. PE input-queue capacity", headers...)
	grid := make([]wavecache.Result, len(set)*len(queues))
	cells := newCellSet(m)
	for bi, c := range set {
		for qi, q := range queues {
			slot := bi*len(queues) + qi
			cells.add(func() error {
				cfg := m.WaveConfig()
				cfg.InputQueue = q
				res, err := runWaveWith(c, c.Wave, m, cfg)
				if err != nil {
					return err
				}
				grid[slot] = res
				return nil
			})
		}
	}
	if err := cells.run(); err != nil {
		return nil, err
	}
	for bi, c := range set {
		row := []any{c.Name}
		var spills16 uint64
		for qi, q := range queues {
			res := &grid[bi*len(queues)+qi]
			if q == 16 {
				spills16 = res.Overflows
			}
			row = append(row, AIPC(c.UsefulInstrs, res.Cycles))
		}
		row = append(row, spills16)
		t.AddRow(row...)
	}
	return t, nil
}

func runE7(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	sizes := []int64{64, 256, 1024, 4096}
	headers := []string{"bench"}
	for _, s := range sizes {
		headers = append(headers, fmt.Sprintf("aipc@%dKB", s*8/1024))
	}
	headers = append(headers, "missrate@2KB", "transfers@2KB")
	t := stats.NewTable("E7: AIPC vs. per-cluster L1 size; coherence traffic", headers...)
	grid := make([]wavecache.Result, len(set)*len(sizes))
	cells := newCellSet(m)
	for bi, c := range set {
		for si, s := range sizes {
			slot := bi*len(sizes) + si
			cells.add(func() error {
				cfg := m.WaveConfig()
				cfg.Mem.L1.SizeWords = s
				res, err := runWaveWith(c, c.Wave, m, cfg)
				if err != nil {
					return err
				}
				grid[slot] = res
				return nil
			})
		}
	}
	if err := cells.run(); err != nil {
		return nil, err
	}
	for bi, c := range set {
		row := []any{c.Name}
		var miss float64
		var transfers uint64
		for si, s := range sizes {
			res := &grid[bi*len(sizes)+si]
			if s == 256 {
				if res.Mem.Accesses > 0 {
					miss = float64(res.Mem.L1Misses) / float64(res.Mem.Accesses)
				}
				transfers = res.Mem.Transfers
			}
			row = append(row, AIPC(c.UsefulInstrs, res.Cycles))
		}
		row = append(row, miss, transfers)
		t.AddRow(row...)
	}
	t.Note = "L1 sizes are per cluster; 64 words = 0.5 KB"
	return t, nil
}

func runE8(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	policies := placement.Names()
	headers := append([]string{"bench"}, policies...)
	t := stats.NewTable("E8: AIPC by placement algorithm", headers...)
	grid := make([]wavecache.Result, len(set)*len(policies))
	cells := newCellSet(m)
	for bi, c := range set {
		for pi, name := range policies {
			slot := bi*len(policies) + pi
			cells.add(func() error {
				cfg := m.WaveConfig()
				pol, err := placement.New(name, cfg.Machine, c.Wave, 12345)
				if err != nil {
					return err
				}
				res, err := RunWave(c, c.Wave, pol, cfg)
				if err != nil {
					return err
				}
				grid[slot] = res
				return nil
			})
		}
	}
	if err := cells.run(); err != nil {
		return nil, err
	}
	perPolicy := make([][]float64, len(policies))
	for bi, c := range set {
		row := []any{c.Name}
		for pi := range policies {
			a := AIPC(c.UsefulInstrs, grid[bi*len(policies)+pi].Cycles)
			perPolicy[pi] = append(perPolicy[pi], a)
			row = append(row, a)
		}
		t.AddRow(row...)
	}
	geo := []any{"geomean"}
	for pi := range policies {
		geo = append(geo, stats.GeoMean(perPolicy[pi]))
	}
	t.AddRow(geo...)
	return t, nil
}

func runE9(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	t := stats.NewTable("E9: steer (φ⁻¹) vs. select (φ) control",
		"bench", "steer-aipc", "select-aipc", "steer-static", "select-static", "steer-fired", "select-fired")
	type row struct {
		rs, rsel wavecache.Result
	}
	rows := make([]row, len(set))
	cells := newCellSet(m)
	for i, c := range set {
		cells.add(func() error {
			var err error
			rows[i].rs, err = runWaveWith(c, c.Wave, m, m.WaveConfig())
			return err
		})
		cells.add(func() error {
			var err error
			rows[i].rsel, err = runWaveWith(c, c.WaveSel, m, m.WaveConfig())
			return err
		})
	}
	if err := cells.run(); err != nil {
		return nil, err
	}
	for i, c := range set {
		r := &rows[i]
		t.AddRow(c.Name,
			AIPC(c.UsefulInstrs, r.rs.Cycles), AIPC(c.UsefulInstrs, r.rsel.Cycles),
			c.Wave.NumInstrs(), c.WaveSel.NumInstrs(),
			r.rs.Fired, r.rsel.Fired)
	}
	return t, nil
}

func runE10(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	costs := []int64{0, 8, 32, 128}
	headers := []string{"bench"}
	for _, c := range costs {
		headers = append(headers, fmt.Sprintf("aipc@%d", c))
	}
	t := stats.NewTable("E10: AIPC vs. instruction swap penalty (8-per-PE stores)", headers...)
	cycles := make([]int64, len(set)*len(costs))
	cells := newCellSet(m)
	for bi, c := range set {
		for ci, cost := range costs {
			slot := bi*len(costs) + ci
			cells.add(func() error {
				cfg := m.WaveConfig()
				cfg.PEStore = 8
				cfg.Machine.Capacity = 8
				cfg.SwapPenalty = cost
				res, err := runWaveWith(c, c.Wave, m, cfg)
				if err != nil {
					return err
				}
				cycles[slot] = res.Cycles
				return nil
			})
		}
	}
	if err := cells.run(); err != nil {
		return nil, err
	}
	for bi, c := range set {
		row := []any{c.Name}
		for ci := range costs {
			row = append(row, AIPC(c.UsefulInstrs, cycles[bi*len(costs)+ci]))
		}
		t.AddRow(row...)
	}
	t.Note = "stores deliberately undersized (8 instructions) so swapping is on the critical path"
	return t, nil
}

func runE11(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	t := stats.NewTable("E11: loop unrolling ablation",
		"bench", "wc-rolled-cyc", "wc-unrolled-cyc", "wc-gain", "ooo-rolled-cyc", "ooo-unrolled-cyc", "ooo-gain")
	type row struct {
		wr, wu wavecache.Result
		or, ou ooo.Result
	}
	rows := make([]row, len(set))
	cells := newCellSet(m)
	for i, c := range set {
		cells.add(func() error {
			var err error
			pol, err := m.NewPolicy(c.WaveNoUn)
			if err != nil {
				return err
			}
			rows[i].wr, err = wavecache.Run(c.WaveNoUn, pol, m.WaveConfig())
			return err
		})
		cells.add(func() error {
			var err error
			rows[i].wu, err = runWaveWith(c, c.Wave, m, m.WaveConfig())
			return err
		})
		cells.add(func() error {
			// Rolled linear build for the baseline.
			w, err := workloadByName(c.Name)
			if err != nil {
				return err
			}
			rolled, err := CompileWorkload(w, CompileOptions{Unroll: 1, OptLevel: c.Opt})
			if err != nil {
				return err
			}
			rows[i].or, err = RunOoO(rolled, DefaultOoOConfig())
			return err
		})
		cells.add(func() error {
			var err error
			rows[i].ou, err = RunOoO(c, DefaultOoOConfig())
			return err
		})
	}
	if err := cells.run(); err != nil {
		return nil, err
	}
	var wcGains, oooGains []float64
	for i, c := range set {
		r := &rows[i]
		wcGain := float64(r.wr.Cycles) / float64(r.wu.Cycles)
		oooGain := float64(r.or.Cycles) / float64(r.ou.Cycles)
		wcGains = append(wcGains, wcGain)
		oooGains = append(oooGains, oooGain)
		t.AddRow(c.Name, r.wr.Cycles, r.wu.Cycles, wcGain, r.or.Cycles, r.ou.Cycles, oooGain)
	}
	t.Note = fmt.Sprintf("geomean unrolling gain: WaveCache %.2fx, superscalar %.2fx",
		stats.GeoMean(wcGains), stats.GeoMean(oooGains))
	return t, nil
}

// workloadByName resolves a workload by name, reporting an unknown name
// as a structured error (the same path Suite and NewPolicy use) so it
// surfaces through the experiment error chain and the CLI's non-zero
// exit instead of panicking.
func workloadByName(name string) (*workloads.Workload, error) {
	w := workloads.ByName(name)
	if w == nil {
		return nil, fmt.Errorf("harness: unknown workload %q (available: %s)",
			name, strings.Join(workloads.Names(), ", "))
	}
	return w, nil
}
