package harness

import (
	"fmt"

	"wavescalar/internal/interp"
	"wavescalar/internal/lang"
	"wavescalar/internal/linear"
	"wavescalar/internal/ooo"
	"wavescalar/internal/wavecache"
)

// EngineSetVersion names the current semantics of the engine table below.
// It is part of every corpus cell-cache key: bump it whenever an engine's
// observable behavior changes (new engine, simulator counter fix, compile
// pipeline change), and stale cached cells stop matching instead of
// silently polluting resumed sweeps. Being a source constant, the version
// is visible in git history alongside the change that required the bump.
const EngineSetVersion = "engines-v3"

// EngineRun is one engine's observation of a program: the final checksum
// every engine must agree on, and — for the timing engines — the
// simulated cycle count (0 for the untimed functional engines).
type EngineRun struct {
	Value  int64
	Cycles int64
}

// Engine is one execution engine of the differential suite.
type Engine struct {
	Name string
	Run  func(c *Compiled) (EngineRun, error)
}

// Engines is the single authoritative engine table: the AST evaluator,
// the linear emulator, the dataflow interpreter on all three compiled
// binaries, the WaveCache timing simulator in all four memory modes, and
// the out-of-order baseline — ten engines. The differential test, the
// FuzzDifferential target, and the waveexp corpus sweep all share this
// definition, so the engine list cannot drift between test and
// production.
func Engines(m MachineOptions) []Engine {
	waveEngine := func(mode wavecache.MemoryMode) func(c *Compiled) (EngineRun, error) {
		return func(c *Compiled) (EngineRun, error) {
			cfg := m.WaveConfig()
			cfg.MemMode = mode
			pol, err := m.NewPolicy(c.Wave)
			if err != nil {
				return EngineRun{}, err
			}
			res, err := wavecache.Run(c.Wave, pol, cfg)
			return EngineRun{Value: res.Value, Cycles: res.Cycles}, err
		}
	}
	return []Engine{
		{"ast-evaluator", func(c *Compiled) (EngineRun, error) {
			v, err := lang.EvalProgram(c.Source())
			return EngineRun{Value: v}, err
		}},
		{"linear-emulator", func(c *Compiled) (EngineRun, error) {
			v, err := linear.NewEmulator(c.Linear, 0).Run()
			return EngineRun{Value: v}, err
		}},
		{"interp-steer", func(c *Compiled) (EngineRun, error) {
			v, err := interp.New(c.Wave, 0).Run()
			return EngineRun{Value: v}, err
		}},
		{"interp-select", func(c *Compiled) (EngineRun, error) {
			v, err := interp.New(c.WaveSel, 0).Run()
			return EngineRun{Value: v}, err
		}},
		{"interp-rolled", func(c *Compiled) (EngineRun, error) {
			v, err := interp.New(c.WaveNoUn, 0).Run()
			return EngineRun{Value: v}, err
		}},
		{"wavecache-" + wavecache.MemOrdered.String(), waveEngine(wavecache.MemOrdered)},
		{"wavecache-" + wavecache.MemSerial.String(), waveEngine(wavecache.MemSerial)},
		{"wavecache-" + wavecache.MemIdeal.String(), waveEngine(wavecache.MemIdeal)},
		{"wavecache-" + wavecache.MemSpec.String(), waveEngine(wavecache.MemSpec)},
		{"ooo", func(c *Compiled) (EngineRun, error) {
			res, err := ooo.Run(c.Linear, DefaultOoOConfig())
			return EngineRun{Value: res.Value, Cycles: res.Cycles}, err
		}},
	}
}

// EngineNames lists the engine table's names (for cache keys and docs).
func EngineNames(m MachineOptions) []string {
	engines := Engines(m)
	out := make([]string, len(engines))
	for i, e := range engines {
		out[i] = e.Name
	}
	return out
}

// EngineResult is one engine's outcome on one program, in a form that
// serializes losslessly into the corpus cell cache (int64s round-trip
// exactly through encoding/json into typed fields).
type EngineResult struct {
	Engine string `json:"engine"`
	Value  int64  `json:"value"`
	Cycles int64  `json:"cycles,omitempty"`
	Err    string `json:"err,omitempty"`
}

// DiffResult is a full cross-engine differential verdict for one program.
type DiffResult struct {
	Name    string
	Want    int64 // the compile-time checksum every engine must reproduce
	Results []EngineResult
}

// Mismatches lists the engines that failed or disagreed with Want.
func (d *DiffResult) Mismatches() []string {
	var out []string
	for _, r := range d.Results {
		switch {
		case r.Err != "":
			out = append(out, fmt.Sprintf("%s: %s", r.Engine, r.Err))
		case r.Value != d.Want:
			out = append(out, fmt.Sprintf("%s: checksum %d, want %d", r.Engine, r.Value, d.Want))
		}
	}
	return out
}

// Pass reports whether every engine agreed.
func (d *DiffResult) Pass() bool { return len(d.Mismatches()) == 0 }

// RunDifferential executes a compiled program on every engine and
// collects the verdict. Engine errors are recorded, not returned: a
// corpus sweep must survive a single bad cell and report it.
func RunDifferential(c *Compiled, engines []Engine) *DiffResult {
	d := &DiffResult{Name: c.Name, Want: c.Checksum, Results: make([]EngineResult, len(engines))}
	for i, e := range engines {
		run, err := e.Run(c)
		d.Results[i] = EngineResult{Engine: e.Name, Value: run.Value, Cycles: run.Cycles}
		if err != nil {
			d.Results[i].Err = err.Error()
		}
	}
	return d
}
