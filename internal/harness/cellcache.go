package harness

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// CellCache is the content-addressed on-disk cell store behind resumable,
// shardable sweeps. Each completed simulation cell is one small JSON file
// named by the SHA-256 of everything that determines its result (workload
// spec, machine and compile configuration, engine-set version), so:
//
//   - a -resume run recognizes completed cells across invocations,
//   - -shard k/n runs from separate processes drop their cells into the
//     same directory and a later read merges them (merge-on-read: the
//     aggregate is rebuilt from cells, never from partial tables),
//   - any configuration or engine change produces different keys, never
//     a stale hit.
//
// Entries are written atomically (temp file + rename in the same
// directory) and carry an internal payload checksum: a torn, truncated,
// or bit-rotted entry is detected on read and treated as a miss — the
// cell is recomputed, never trusted.
type CellCache struct {
	dir     string
	corrupt atomic.Int64
}

// NewCellCache opens (creating if needed) a cache rooted at dir.
func NewCellCache(dir string) (*CellCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cellcache: %w", err)
	}
	return &CellCache{dir: dir}, nil
}

// Dir returns the cache root.
func (cc *CellCache) Dir() string { return cc.dir }

// Corrupt returns how many unreadable entries this cache has discarded —
// observability for tests and sweep logs, not a failure signal (each
// corrupt entry is simply recomputed).
func (cc *CellCache) Corrupt() int64 { return cc.corrupt.Load() }

// CacheKey hashes an ordered list of strings into a hex cell key. Parts
// are length-prefixed so distinct part lists can never collide by
// concatenation.
func CacheKey(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEnvelope wraps a cell payload with its own key (guards against a
// file renamed or copied to the wrong name) and the payload's SHA-256.
type cacheEnvelope struct {
	Key     string          `json:"key"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// path shards entries across 256 subdirectories so corpus-scale sweeps
// (tens of thousands of cells) do not pile every file into one directory.
func (cc *CellCache) path(key string) string {
	return filepath.Join(cc.dir, key[:2], key+".json")
}

// Get loads the cell stored under key into v. It returns false — a miss
// to be recomputed — for absent entries and for any entry that fails
// validation: unparseable JSON, a key mismatch, or a payload checksum
// mismatch (truncation, torn write, bit rot).
func (cc *CellCache) Get(key string, v any) bool {
	data, err := os.ReadFile(cc.path(key))
	if err != nil {
		return false
	}
	var env cacheEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		cc.discard(key)
		return false
	}
	sum := sha256.Sum256(env.Payload)
	if env.Key != key || env.Sum != hex.EncodeToString(sum[:]) {
		cc.discard(key)
		return false
	}
	if err := json.Unmarshal(env.Payload, v); err != nil {
		cc.discard(key)
		return false
	}
	return true
}

// discard counts and removes a corrupt entry so the slot is clean for the
// recomputed cell (removal is best-effort; Put overwrites atomically
// anyway).
func (cc *CellCache) discard(key string) {
	cc.corrupt.Add(1)
	os.Remove(cc.path(key))
}

// Put stores v under key atomically: marshal, write to a temp file in the
// destination directory, fsync, rename. A sweep killed mid-Put leaves
// only a stray temp file, never a truncated entry under a valid name.
func (cc *CellCache) Put(key string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("cellcache: marshal: %w", err)
	}
	sum := sha256.Sum256(payload)
	env := cacheEnvelope{Key: key, Sum: hex.EncodeToString(sum[:]), Payload: payload}
	data, err := json.Marshal(&env)
	if err != nil {
		return fmt.Errorf("cellcache: marshal: %w", err)
	}
	dst := cc.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("cellcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "."+key[:8]+".tmp-*")
	if err != nil {
		return fmt.Errorf("cellcache: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cellcache: write %s: %w", key[:8], err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cellcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cellcache: %w", err)
	}
	return nil
}
