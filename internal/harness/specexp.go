package harness

import (
	"fmt"

	"wavescalar/internal/stats"
	"wavescalar/internal/wavecache"
)

func init() {
	Experiments = append(Experiments, Experiment{
		ID:    "E15",
		Title: "Speculation scope: transaction-epoch size under MemSpec",
		Claim: "per-wave epochs catch conflicts cheaply; widening the scope amortizes epoch bookkeeping but squashes more innocent work per violation, so AIPC degrades as squash cost grows faster than the bookkeeping it saves",
		Run:   runE15,
	})
}

// runE15 sweeps the MemSpec transaction scope (waves per epoch) and
// reports AIPC next to the squash rate — the fraction of epochs that hit
// a conflict and replayed their speculative remainder. The wave-ordered
// AIPC anchors each row: speculation at any scope should sit at or above
// it (the thrash fallback's contract), and the headroom it captures
// shrinks as squashes widen. Checksums are verified on every cell
// (RunWave), so a speculation bug fails the experiment rather than
// skewing it.
func runE15(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	scopes := []int{1, 2, 4, 8}
	headers := []string{"bench", "ordered"}
	for _, sc := range scopes {
		headers = append(headers, fmt.Sprintf("aipc@%d", sc), fmt.Sprintf("sq%%@%d", sc))
	}
	t := stats.NewTable("E15: AIPC and squash rate vs. speculation scope (waves per epoch)", headers...)

	type cell struct {
		cycles int64
		spec   wavecache.SpecStats
	}
	ordered := make([]int64, len(set))
	grid := make([]cell, len(set)*len(scopes))
	cells := newCellSet(m)
	for bi, c := range set {
		cells.add(func() error {
			res, err := runWaveWith(c, c.Wave, m, m.WaveConfig())
			if err != nil {
				return err
			}
			ordered[bi] = res.Cycles
			return nil
		})
		for si, scope := range scopes {
			slot := bi*len(scopes) + si
			cells.add(func() error {
				cfg := m.WaveConfig()
				cfg.MemMode = wavecache.MemSpec
				cfg.SpecScope = scope
				res, err := runWaveWith(c, c.Wave, m, cfg)
				if err != nil {
					return err
				}
				grid[slot] = cell{cycles: res.Cycles, spec: res.Spec}
				return nil
			})
		}
	}
	if err := cells.run(); err != nil {
		return nil, err
	}
	for bi, c := range set {
		row := []any{c.Name, AIPC(c.UsefulInstrs, ordered[bi])}
		for si := range scopes {
			g := &grid[bi*len(scopes)+si]
			sq := 0.0
			if g.spec.Epochs > 0 {
				sq = 100 * float64(g.spec.Squashes) / float64(g.spec.Epochs)
			}
			row = append(row, AIPC(c.UsefulInstrs, g.cycles), sq)
		}
		t.AddRow(row...)
	}
	t.Note = "sq% = squashed epochs / opened epochs; scope 1 is the Transactional WaveCache's per-wave implicit transaction"
	return t, nil
}
