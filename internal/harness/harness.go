// Package harness compiles the benchmark suite through both backends and
// runs the reconstructed MICRO 2003 evaluation: experiments E1–E11, each
// regenerating one table/figure of the paper's evaluation section (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for results and
// paper-vs-measured discussion).
//
// Every experiment is expressed as a set of independent simulation cells —
// one (workload, configuration, engine) run each — fanned across a bounded
// worker pool (internal/parallel) and collected into index-addressed slots,
// so the rendered tables are byte-identical whatever the worker count.
// Each cell constructs its own placement policy, memory system, and
// simulator state; the shared *isa.Program and *linear.Program are
// read-only during simulation (see the concurrency contracts on
// wavecache.Run and ooo.Run).
package harness

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/interp"
	"wavescalar/internal/isa"
	"wavescalar/internal/lang"
	"wavescalar/internal/linear"
	"wavescalar/internal/mem"
	"wavescalar/internal/ooo"
	"wavescalar/internal/parallel"
	"wavescalar/internal/placement"
	"wavescalar/internal/stats"
	"wavescalar/internal/trace"
	"wavescalar/internal/wavec"
	"wavescalar/internal/wavecache"
	"wavescalar/internal/workloads"
)

// Compiled is one workload built for every engine.
type Compiled struct {
	Name     string
	Mirrors  string
	Src      string       // the wsl source (the AST-evaluator engine's input)
	Wave     *isa.Program // steer-based dataflow binary
	WaveSel  *isa.Program // φ-select (if-converted) dataflow binary
	WaveNoUn *isa.Program // without loop unrolling (E11)
	Linear   *linear.Program
	Checksum int64
	// UsefulInstrs is the dynamic linear instruction count: the
	// architecture-neutral work metric (the paper's "Alpha-equivalent"
	// instruction count). Note it is measured on the binary this Compiled
	// was built with, so at OptLevel >= 1 it reflects the optimized
	// program.
	UsefulInstrs int64
	// Opt is the optimization level the pipeline ran at; MemOpt the
	// memory tier's per-pass counters (zero at Opt 0) and Chains the
	// wave binary's memory-chain statistics.
	Opt    int
	MemOpt cfgir.MemOptStats
	Chains wavec.ChainStats
}

// CompileOptions controls the build pipeline.
type CompileOptions struct {
	Unroll int // loop unrolling factor (0/1 = off)
	// OptLevel selects the optimizer tier: 0 runs only the base pipeline
	// (constant folding, CSE, dead code), 1 adds the memory tier
	// (store-to-load forwarding, redundant-load elimination, scalar
	// replacement, dead-store elimination — see cfgir.OptimizeMemory).
	// Unlike Shards, the level changes the compiled program, so it is part
	// of every compiled-program cache key.
	OptLevel int
	// Workers bounds the goroutines Suite compiles workloads across
	// (0 = one per CPU, 1 = sequential).
	Workers int
	// Ctx, when non-nil, cancels a Suite compilation between workloads
	// (nil = never cancelled). Ctx does not affect compiled output, only
	// whether the remaining work runs.
	Ctx context.Context
}

// DefaultCompileOptions is the harness pipeline: unroll by 4, as the
// paper's Alpha toolchain would, with the memory-optimization tier on.
// (The golden-snapshot tests pin OptLevel 0 explicitly so the recorded
// pre-optimizer binaries replay bit-for-bit.)
func DefaultCompileOptions() CompileOptions { return CompileOptions{Unroll: 4, OptLevel: 1} }

// Source returns the program's wsl source, falling back to the named
// workload's source for Compiled values predating the Src field.
func (c *Compiled) Source() string {
	if c.Src != "" {
		return c.Src
	}
	if w := workloads.ByName(c.Name); w != nil {
		return w.Src
	}
	return ""
}

// AddCompileMetrics folds the program's compile-time optimizer statistics
// into a trace metrics record (the compile-tier rows of the -metrics
// summary). A no-op for programs compiled at OptLevel 0.
func (c *Compiled) AddCompileMetrics(m *trace.Metrics) {
	if c.Opt < 1 {
		return
	}
	m.CompilePrograms++
	m.StoresForwarded += c.MemOpt.StoresForwarded
	m.LoadsReused += c.MemOpt.LoadsReused
	m.LoadsPromoted += c.MemOpt.LoadsPromoted
	m.DeadStores += c.MemOpt.DeadStores
	m.MemOpsEliminated += c.MemOpt.MemBefore - c.MemOpt.MemAfter
	m.InstrsEliminated += c.MemOpt.Eliminated()
	m.ChainSlots += c.Chains.Slots
	m.ChainNops += c.Chains.Nops
}

// CompileWorkload builds one workload through the full pipeline.
func CompileWorkload(w *workloads.Workload, opts CompileOptions) (*Compiled, error) {
	c, err := CompileSource(w.Name, w.Src, opts)
	if err != nil {
		return nil, err
	}
	c.Mirrors = w.Mirrors
	return c, nil
}

// CompileSource builds an arbitrary wsl source — a named workload or a
// generated corpus program — through the full pipeline, cross-checking
// the linear emulator's checksum against the AST evaluator exactly as the
// workload path always has.
func CompileSource(name, src string, opts CompileOptions) (*Compiled, error) {
	c := &Compiled{Name: name, Src: src, Opt: opts.OptLevel}

	buildIR := func(unroll int) (*cfgir.Program, cfgir.MemOptStats, error) {
		f, err := lang.ParseAndCheck(src)
		if err != nil {
			return nil, cfgir.MemOptStats{}, fmt.Errorf("%s: frontend: %w", name, err)
		}
		if unroll > 1 {
			lang.Unroll(f, unroll)
		}
		p, err := cfgir.Build(f)
		if err != nil {
			return nil, cfgir.MemOptStats{}, fmt.Errorf("%s: build: %w", name, err)
		}
		for _, fn := range p.Funcs {
			fn.Compact()
		}
		p.Optimize()
		var st cfgir.MemOptStats
		if opts.OptLevel >= 1 {
			st = p.OptimizeMemory()
		}
		return p, st, nil
	}

	build := func(unroll int, waveOpts wavec.Options) (*isa.Program, cfgir.MemOptStats, error) {
		p, st, err := buildIR(unroll)
		if err != nil {
			return nil, st, err
		}
		wp, err := wavec.Compile(p, waveOpts)
		if err != nil {
			return nil, st, fmt.Errorf("%s: wavec: %w", name, err)
		}
		return wp, st, nil
	}

	var err error
	if c.Wave, c.MemOpt, err = build(opts.Unroll, wavec.Options{}); err != nil {
		return nil, err
	}
	c.Chains = wavec.MeasureChains(c.Wave)
	// The linear program shares the IR pipeline; wavec mutates the IR
	// (edge splitting) but that does not change semantics or instruction
	// counts materially, so rebuild cleanly for fairness. The same opt
	// level applies so both binaries run the same optimized program.
	{
		p, _, err := buildIR(opts.Unroll)
		if err != nil {
			return nil, err
		}
		if c.Linear, err = linear.Compile(p); err != nil {
			return nil, err
		}
	}
	if c.WaveSel, _, err = build(opts.Unroll, wavec.Options{IfConvert: true}); err != nil {
		return nil, err
	}
	if c.WaveNoUn, _, err = build(1, wavec.Options{}); err != nil {
		return nil, err
	}

	em := linear.NewEmulator(c.Linear, 0)
	c.Checksum, err = em.Run()
	if err != nil {
		return nil, fmt.Errorf("%s: linear emulator: %w", name, err)
	}
	c.UsefulInstrs = em.Instrs

	// Cross-check against the AST evaluator.
	want, err := lang.EvalProgram(src)
	if err != nil {
		return nil, err
	}
	if want != c.Checksum {
		return nil, fmt.Errorf("%s: linear checksum %d != evaluator %d", name, c.Checksum, want)
	}
	return c, nil
}

// Suite compiles a set of workloads (all of them if names is empty).
// Workloads compile concurrently across opts.Workers goroutines; the
// returned slice is ordered by name position, independent of which
// compilation finished first.
func Suite(names []string, opts CompileOptions) ([]*Compiled, error) {
	if len(names) == 0 {
		names = workloads.Names()
	}
	picked := make([]*workloads.Workload, len(names))
	for i, n := range names {
		w := workloads.ByName(n)
		if w == nil {
			return nil, fmt.Errorf("harness: unknown workload %q", n)
		}
		picked[i] = w
	}
	return parallel.MapCtx(opts.ctx(), opts.Workers, len(picked), func(i int) (*Compiled, error) {
		return CompileWorkload(picked[i], opts)
	})
}

// MachineOptions is the simulated-hardware configuration shared by the
// experiments.
type MachineOptions struct {
	GridW, GridH int
	// Density is the placement packing density (instruction homes per PE).
	// The published machine packs 64, sized for SPEC-scale working sets;
	// the kernels here are ~100x smaller, so the default preserves the
	// paper's ratio of packed instructions to working-set size.
	Density int
	// InputQueue is the PE matching-table capacity before spills.
	InputQueue int
	// Policy names the placement policy.
	Policy string
	// MaxCycles bounds each WaveCache cell's simulated time (0 = no
	// bound); corpus sweeps over generated programs set it so a
	// pathological cell aborts with a watchdog error instead of hanging
	// the sweep.
	MaxCycles int64
	// Workers bounds the goroutines an experiment fans its simulation
	// cells across (0 = one per CPU, 1 = sequential). Any value produces
	// byte-identical tables: cells collect results by index, never by
	// completion order.
	Workers int
	// Metrics, when non-nil, collects trace counters from every WaveCache
	// cell an experiment runs (the aggregate is thread-safe and its merge
	// commutative, so summaries are worker-count invariant). nil — the
	// default — leaves the simulators' tracing disabled and all tables
	// byte-identical to a metrics-free build.
	Metrics *trace.Aggregate
	// MemMode is the memory ordering mode handed to every WaveCache cell
	// that does not pin its own (the CLI -mem flag). The zero value is
	// the default wave-ordered mode; experiments that sweep modes
	// themselves (E4, E15) override it per cell.
	MemMode wavecache.MemoryMode
	// Shards is the per-simulation event-engine shard count handed to
	// every WaveCache cell (wavecache.Config.Shards): 0 or 1 runs the
	// sequential engine, higher values partition the clusters into
	// parallel shards. Results are bit-identical at every setting — the
	// knob trades scheduling for wall-clock, never output.
	Shards int
	// Ctx, when non-nil, cancels a sweep cooperatively: the worker pool
	// stops claiming cells once Ctx is done, and every WaveCache cell
	// inherits Ctx.Done() as its wavecache.Config.Cancel channel, so a
	// long-running cell aborts mid-simulation with a structured
	// cancellation FaultError instead of running to completion. nil — the
	// default — is never-cancelled and results-identical to the pre-Ctx
	// harness.
	Ctx context.Context
}

// DefaultMachineOptions is the tuned kernel-scale configuration.
func DefaultMachineOptions() MachineOptions {
	return MachineOptions{GridW: 4, GridH: 4, Density: 16, InputQueue: 64,
		Policy: "dynamic-depth-first-snake"}
}

// WaveConfig builds a wavecache config from the options.
func (m MachineOptions) WaveConfig() wavecache.Config {
	cfg := wavecache.DefaultConfig(m.GridW, m.GridH)
	cfg.Machine.Capacity = m.Density
	cfg.InputQueue = m.InputQueue
	cfg.Metrics = m.Metrics
	cfg.MaxCycles = m.MaxCycles
	cfg.MemMode = m.MemMode
	cfg.Shards = m.Shards
	if m.Ctx != nil {
		cfg.Cancel = m.Ctx.Done()
	}
	return cfg
}

// ctx returns the options' context, defaulting to Background.
func (m MachineOptions) ctx() context.Context {
	if m.Ctx != nil {
		return m.Ctx
	}
	return context.Background()
}

// ctx returns the options' context, defaulting to Background.
func (o CompileOptions) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// NewPolicy instantiates the configured placement policy for a program.
// An unknown policy name or an unusable machine is reported as an error
// (surfaced through the experiment and CLI exit paths), not a panic.
func (m MachineOptions) NewPolicy(p *isa.Program) (placement.Policy, error) {
	pol, err := placement.New(m.Policy, m.WaveConfig().Machine, p, 12345)
	if err != nil {
		return nil, fmt.Errorf("harness: policy %q: %w", m.Policy, err)
	}
	return pol, nil
}

// runWaveWith builds m's placement policy for prog and runs RunWave; the
// shorthand most experiment cells use.
func runWaveWith(c *Compiled, prog *isa.Program, m MachineOptions, cfg wavecache.Config) (wavecache.Result, error) {
	pol, err := m.NewPolicy(prog)
	if err != nil {
		return wavecache.Result{}, err
	}
	return RunWave(c, prog, pol, cfg)
}

// arenaPool recycles simulator arenas across experiment cells: a sweep
// pays the simulator's internal allocations roughly once per worker instead
// of once per cell, while each in-flight cell still owns its arena
// exclusively. Reuse is results-neutral — see wavecache.Arena.
var arenaPool = sync.Pool{New: func() any { return wavecache.NewArena() }}

// RunWave simulates a dataflow binary and checks its checksum.
func RunWave(c *Compiled, prog *isa.Program, pol placement.Policy, cfg wavecache.Config) (wavecache.Result, error) {
	a := arenaPool.Get().(*wavecache.Arena)
	res, err := a.Run(prog, pol, cfg)
	arenaPool.Put(a)
	if err != nil {
		return res, fmt.Errorf("%s: wavecache: %w", c.Name, err)
	}
	if res.Value != c.Checksum {
		return res, fmt.Errorf("%s: wavecache checksum %d != %d", c.Name, res.Value, c.Checksum)
	}
	return res, nil
}

// DefaultOoOConfig is the baseline superscalar configuration for the
// experiments.
func DefaultOoOConfig() ooo.Config { return ooo.DefaultConfig() }

// RunOoO simulates the superscalar baseline and checks its checksum.
func RunOoO(c *Compiled, cfg ooo.Config) (ooo.Result, error) {
	res, err := ooo.Run(c.Linear, cfg)
	if err != nil {
		return res, err
	}
	if res.Value != c.Checksum {
		return res, fmt.Errorf("%s: ooo checksum %d != %d", c.Name, res.Value, c.Checksum)
	}
	return res, nil
}

// AIPC is the architecture-neutral performance metric used throughout the
// experiments: useful (linear) instructions per cycle. It charges the
// WaveCache for its dataflow overhead instructions implicitly (they consume
// cycles but do not count as work), mirroring the paper's Alpha-equivalent
// IPC.
func AIPC(useful int64, cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(useful) / float64(cycles)
}

// Experiment is one reconstructed table/figure.
type Experiment struct {
	ID    string
	Title string
	// Claim is the paper's qualitative claim this experiment probes.
	Claim string
	Run   func(set []*Compiled, m MachineOptions) (*stats.Table, error)
}

// RunAll executes every experiment, writing each table to w as it
// completes, followed by a per-experiment wall-clock line. The timing
// lines are the only output that varies between runs; the tables
// themselves are deterministic at any m.Workers setting. With m.Metrics
// installed, each experiment's table is followed by the merged WaveCache
// trace-counter summary of its cells (also deterministic).
func RunAll(set []*Compiled, m MachineOptions, w io.Writer) error {
	for _, e := range Experiments {
		if err := m.ctx().Err(); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(w, "\n## %s — %s\n\n", e.ID, e.Title)
		fmt.Fprintf(w, "Paper claim: %s\n\n", e.Claim)
		t0 := time.Now()
		tbl, err := e.Run(set, m)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w, tbl.Render())
		WriteMetrics(e.ID, m, w)
		fmt.Fprintf(w, "(%s in %v)\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	return nil
}

// WriteMetrics renders and resets the experiment-level metrics aggregate
// (a no-op when metrics collection is off or no WaveCache cell ran).
func WriteMetrics(id string, m MachineOptions, w io.Writer) {
	if m.Metrics == nil || m.Metrics.Runs() == 0 {
		return
	}
	fmt.Fprintln(w, m.Metrics.Summary(id+": WaveCache trace metrics (all cells)").Render())
	m.Metrics.Reset()
}

// idealWaveConfig is the unbounded-resource dataflow machine used as the
// "ideal dataflow" column of E1: free network, infinite queues and stores,
// oracle memory ordering, single-cycle caches.
func idealWaveConfig() wavecache.Config {
	cfg := wavecache.DefaultConfig(8, 8)
	cfg.Machine.Capacity = 1 // spread maximally: no PE contention
	cfg.PEStore = 1 << 20
	cfg.SwapPenalty = 0
	cfg.InputQueue = 1 << 30
	cfg.BufferWidth = 1 << 20
	cfg.MemMsgLatency = 0
	cfg.MemMode = wavecache.MemIdeal
	cfg.Net.IntraPod = 1
	cfg.Net.IntraDomain = 1
	cfg.Net.IntraCluster = 1
	cfg.Net.InterClusterBase = 1
	cfg.Net.LinkLatency = 0
	cfg.Net.LinkBandwidth = 0
	cfg.Mem.L1Latency = 1
	cfg.Mem.L2Latency = 0
	cfg.Mem.MemLatency = 0
	return cfg
}

// interpStats runs the reference interpreter for dataflow-limit statistics.
func interpStats(prog *isa.Program) (interp.Stats, error) {
	m := interp.New(prog, 0)
	if _, err := m.Run(); err != nil {
		return interp.Stats{}, err
	}
	return m.Stats(), nil
}

// scaledMemory returns the kernel-scale memory hierarchy used by the
// memory-pressure experiments: a 2 KB L1 preserves the paper's ratio of L1
// capacity to working-set size.
func scaledMemory(n int) mem.SystemConfig {
	cfg := mem.DefaultSystemConfig(n)
	cfg.L1.SizeWords = 256
	return cfg
}
