package harness

import (
	"os"
	"path/filepath"
	"testing"

	"wavescalar/internal/testprogs"
)

func corpusOptions(n int, workers int) CorpusOptions {
	o := CorpusOptions{
		N:       n,
		Seed:    1,
		Compile: DefaultCompileOptions(),
		Machine: DefaultCorpusMachine(),
	}
	o.Machine.Workers = workers
	return o
}

// TestCorpusDifferentialAgreement is the generator-correctness
// acceptance sweep: 200 seeds per family (the full corpus round-robins
// the families) must compile and agree across all ten engines, with the
// WaveCache watchdog bounding every cell.
func TestCorpusDifferentialAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus differential sweep is slow")
	}
	nFamilies := len(testprogs.Families())
	run, err := RunCorpus(corpusOptions(200*nFamilies, 0))
	if err != nil {
		t.Fatal(err)
	}
	if run.Missing != 0 {
		t.Fatalf("%d cells missing from an unsharded, uncached run", run.Missing)
	}
	if run.Mismatched != 0 {
		for i, cell := range run.Cells {
			if cell != nil && !cell.Pass {
				d := DiffResult{Name: cell.Spec.Name(), Want: cell.Want, Results: cell.Engines}
				src, _ := testprogs.GenerateSpec(cell.Spec)
				t.Errorf("cell %d (%s): %v\n%s", i, cell.Spec.Name(), d.Mismatches(), src)
			}
		}
		t.Fatalf("%d/%d cells mismatched", run.Mismatched, run.Computed)
	}
}

// TestCorpusDifferentialAgreementO0 repeats the agreement sweep with the
// memory-optimization tier off. Together with the default sweep above
// (which compiles at DefaultCompileOptions' OptLevel 1) it pins the
// tier's soundness contract corpus-wide: both the optimized and the
// unoptimized binary of every generated program must agree with all nine
// engines, so the two binaries transitively agree with each other. A
// smaller N keeps the combined runtime near the old single sweep; the
// full-size O1 sweep plus FuzzDifferential (which runs both tiers per
// input) covers the long tail.
func TestCorpusDifferentialAgreementO0(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus differential sweep is slow")
	}
	nFamilies := len(testprogs.Families())
	o := corpusOptions(60*nFamilies, 0)
	o.Compile.OptLevel = 0
	run, err := RunCorpus(o)
	if err != nil {
		t.Fatal(err)
	}
	if run.Missing != 0 {
		t.Fatalf("%d cells missing from an unsharded, uncached run", run.Missing)
	}
	if run.Mismatched != 0 {
		for i, cell := range run.Cells {
			if cell != nil && !cell.Pass {
				d := DiffResult{Name: cell.Spec.Name(), Want: cell.Want, Results: cell.Engines}
				src, _ := testprogs.GenerateSpec(cell.Spec)
				t.Errorf("cell %d (%s at -O0): %v\n%s", i, cell.Spec.Name(), d.Mismatches(), src)
			}
		}
		t.Fatalf("%d/%d cells mismatched at -O0", run.Mismatched, run.Computed)
	}
}

// TestCorpusShardMergeByteIdentical is the resumable-sweep acceptance
// criterion in miniature: two -shard k/2 invocations into one cache dir,
// followed by a -resume invocation, must render a table byte-identical to
// a single uncached run — at different worker counts, for good measure.
func TestCorpusShardMergeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is slow")
	}
	const n = 30
	single, err := RunCorpus(corpusOptions(n, 8))
	if err != nil {
		t.Fatal(err)
	}
	if single.Missing != 0 || single.Computed != n {
		t.Fatalf("single run: computed=%d missing=%d", single.Computed, single.Missing)
	}

	dir := t.TempDir()
	for shard := 1; shard <= 2; shard++ {
		o := corpusOptions(n, shard) // different worker counts per shard
		o.CacheDir = dir
		o.Shard, o.Shards = shard, 2
		run, err := RunCorpus(o)
		if err != nil {
			t.Fatal(err)
		}
		wantComputed := n / 2
		if run.Computed != wantComputed {
			t.Fatalf("shard %d/2 computed %d cells, want %d", shard, run.Computed, wantComputed)
		}
		// The first shard's table is partial: its out-of-shard cells are
		// neither computed nor cached yet.
		if shard == 1 && run.Missing != n/2 {
			t.Fatalf("shard 1/2 missing %d cells, want %d", run.Missing, n/2)
		}
		// The second shard merges the first's cells on read.
		if shard == 2 && run.Missing != 0 {
			t.Fatalf("shard 2/2 missing %d cells after merge-on-read", run.Missing)
		}
	}

	o := corpusOptions(n, 3)
	o.CacheDir = dir
	o.Resume = true
	resumed, err := RunCorpus(o)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Computed != 0 || resumed.Cached != n {
		t.Fatalf("resume run recomputed %d cells (cached %d), want all %d cached",
			resumed.Computed, resumed.Cached, n)
	}
	if got, want := resumed.Table.Render(), single.Table.Render(); got != want {
		t.Errorf("sharded+resumed table differs from single-run table:\n--- single ---\n%s\n--- sharded ---\n%s", want, got)
	}
}

// TestCorpusResumeRecomputesCorrupt: a -resume run must detect a corrupt
// cache entry, recompute exactly that cell, and still render the same
// table.
func TestCorpusResumeRecomputesCorrupt(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is slow")
	}
	const n = 10
	dir := t.TempDir()
	o := corpusOptions(n, 0)
	o.CacheDir = dir
	first, err := RunCorpus(o)
	if err != nil {
		t.Fatal(err)
	}
	if first.Computed != n {
		t.Fatalf("first run computed %d, want %d", first.Computed, n)
	}

	// Truncate one entry on disk.
	spec := testprogs.CorpusSpecs(n, o.Seed)[3]
	key := corpusCellKey(spec, o)
	path := filepath.Join(dir, key[:2], key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	o.Resume = true
	resumed, err := RunCorpus(o)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Computed != 1 || resumed.Cached != n-1 {
		t.Fatalf("resume after corruption: computed=%d cached=%d, want 1/%d",
			resumed.Computed, resumed.Cached, n-1)
	}
	if resumed.CorruptEntries != 1 {
		t.Errorf("corrupt entries %d, want 1", resumed.CorruptEntries)
	}
	if resumed.Table.Render() != first.Table.Render() {
		t.Errorf("table changed after corrupt-entry recompute")
	}
	// The recomputed Put healed the slot: a further resume is all-cached.
	healed, err := RunCorpus(o)
	if err != nil {
		t.Fatal(err)
	}
	if healed.Computed != 0 || healed.CorruptEntries != 0 {
		t.Errorf("healed cache still recomputes: computed=%d corrupt=%d",
			healed.Computed, healed.CorruptEntries)
	}
}

// TestCorpusWorkerInvariance extends the worker-invariance suite to the
// corpus sweep: tables must be byte-identical at any worker count.
func TestCorpusWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is slow")
	}
	r1, err := RunCorpus(corpusOptions(15, 1))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunCorpus(corpusOptions(15, 8))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table.Render() != r8.Table.Render() {
		t.Errorf("corpus tables differ between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
			r1.Table.Render(), r8.Table.Render())
	}
}

func TestCorpusOptionValidation(t *testing.T) {
	if _, err := RunCorpus(corpusOptions(0, 1)); err == nil {
		t.Error("zero corpus size accepted")
	}
	for _, sh := range [][2]int{{0, 2}, {3, 2}, {-1, 2}} {
		o := corpusOptions(4, 1)
		o.Shard, o.Shards = sh[0], sh[1]
		if _, err := RunCorpus(o); err == nil {
			t.Errorf("shard %d/%d accepted", sh[0], sh[1])
		}
	}
}
