package harness

import (
	"context"

	"wavescalar/internal/parallel"
)

// cellSet is how an experiment declares its simulation cells: one closure
// per independent (workload, configuration, engine) run. Cells are
// declared in the sequential baseline's loop order, executed across the
// configured worker pool in arbitrary order, and must write their results
// only through slots they own (an index into a pre-sized slice, or one
// field of that slice's element) so that the table built afterwards is
// byte-identical to a sequential run.
//
// Cells must be self-contained: construct placement policies, configs, and
// any seeded state inside the cell, never share them across cells.
type cellSet struct {
	workers int
	ctx     context.Context
	jobs    []func() error
}

// newCellSet sizes a cell set for the machine's worker pool and inherits
// its cancellation context (cells themselves additionally receive
// Ctx.Done() through MachineOptions.WaveConfig).
func newCellSet(m MachineOptions) *cellSet {
	return &cellSet{workers: m.Workers, ctx: m.ctx()}
}

// add declares one cell.
func (cs *cellSet) add(job func() error) { cs.jobs = append(cs.jobs, job) }

// run executes every declared cell on the pool and returns the
// lowest-declaration-index error, if any; a cancelled context stops the
// pool from claiming further cells and surfaces the context's error.
func (cs *cellSet) run() error {
	return parallel.ForEachCtx(cs.ctx, cs.workers, len(cs.jobs), func(i int) error { return cs.jobs[i]() })
}
