package harness

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"wavescalar/internal/fault"
)

// cancelFastSrc completes in a few thousand simulated cycles;
// cancelSlowSrc simulates for seconds of wall clock, so a short context
// reliably cancels it mid-run.
const (
	cancelFastSrc = `
func main() {
	var s = 0;
	for var i = 0; i < 300; i = i + 1 {
		s = (s + i*3) & 0xFFFFF;
	}
	return s;
}`
	cancelSlowSrc = `
func main() {
	var s = 0;
	for var i = 0; i < 1000000; i = i + 1 {
		s = (s + i) & 0xFFFFF;
	}
	return s;
}`
)

func runWithCtx(t *testing.T, c *Compiled, ctx context.Context) (any, error) {
	t.Helper()
	m := DefaultMachineOptions()
	m.Ctx = ctx
	cfg := m.WaveConfig()
	pol, err := m.NewPolicy(c.Wave)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWave(c, c.Wave, pol, cfg)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// TestRunWaveCancellation: a context deadline reaches the simulator's
// event loop through MachineOptions.Ctx and aborts the run promptly with
// a structured cancellation fault.
func TestRunWaveCancellation(t *testing.T) {
	c, err := CompileSource("slow", cancelSlowSrc, DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err = runWithCtx(t, c, ctx)
	if err == nil {
		t.Fatal("slow run completed under a 50ms deadline")
	}
	var fe *fault.FaultError
	if !errors.As(err, &fe) || fe.Kind != fault.KindCancelled {
		t.Fatalf("expected KindCancelled FaultError, got %v", err)
	}
	if el := time.Since(t0); el > 5*time.Second {
		t.Errorf("cancellation took %v to land", el)
	}
}

// TestArenaReuseAfterConcurrentCancellation: arenas aborted mid-run by
// cancellation go back to the shared pool; the next runs that draw them —
// concurrently — must be bit-identical to an uncancelled baseline. This is
// the contract that makes request cancellation safe in a long-lived
// server reusing warm arenas across tenants.
func TestArenaReuseAfterConcurrentCancellation(t *testing.T) {
	slow, err := CompileSource("slow", cancelSlowSrc, DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := CompileSource("fast", cancelFastSrc, DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	baselineRes, err := runWithCtx(t, fast, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := json.Marshal(baselineRes)
	if err != nil {
		t.Fatal(err)
	}

	// Dirty the arena pool: concurrent slow runs, every one cancelled
	// mid-simulation.
	const cancelled = 8
	var wg sync.WaitGroup
	for i := 0; i < cancelled; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			_, err := runWithCtx(t, slow, ctx)
			var fe *fault.FaultError
			if err == nil || !errors.As(err, &fe) || fe.Kind != fault.KindCancelled {
				t.Errorf("expected cancellation fault, got %v", err)
			}
		}()
	}
	wg.Wait()

	// Every arena in the pool has now aborted mid-run at least once.
	// Concurrent reuse must still be bit-identical to the baseline.
	for i := 0; i < 2*cancelled; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := runWithCtx(t, fast, context.Background())
			if err != nil {
				t.Errorf("run %d on a reused arena failed: %v", i, err)
				return
			}
			got, err := json.Marshal(res)
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			if string(got) != string(baseline) {
				t.Errorf("run %d on a cancellation-dirtied arena diverged:\n got: %s\nwant: %s",
					i, got, baseline)
			}
		}(i)
	}
	wg.Wait()
}
