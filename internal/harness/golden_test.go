package harness

import (
	"encoding/json"
	"flag"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"wavescalar/internal/fault"
	"wavescalar/internal/placement"
	"wavescalar/internal/wavecache"
)

// The golden suite pins the WaveCache engine's observable behaviour: every
// workload, clean and under injected faults, must reproduce the exact
// Result (cycles, fired, tokens, swaps, network/memory/ordering counters)
// and final memory image recorded before the allocation-free engine
// rewrite. Any engine optimization that shifts a single counter or cycle
// fails here. Regenerate deliberately with:
//
//	go test ./internal/harness -run TestGoldenWaveCache -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_wavecache.json from the current engine")

const goldenPath = "testdata/golden_wavecache.json"

// goldenScenarios is the fault sweep the golden suite pins; it mirrors the
// E12 sweep's span (clean, defects, operand loss, memory loss, combined).
var goldenScenarios = []struct {
	Name string
	Cfg  fault.Config
}{
	{"clean", fault.Config{}},
	{"defect-25%", fault.Config{Seed: e12Seed, DefectRate: 0.25}},
	{"drop-10%", fault.Config{Seed: e12Seed, DropRate: 0.10}},
	{"combined", fault.Config{Seed: e12Seed, DefectRate: 0.10, DropRate: 0.02, DelayRate: 0.02, MemLossRate: 0.01}},
}

// goldenRecord is one (workload, scenario) cell's pinned observables.
type goldenRecord struct {
	Workload string
	Scenario string

	Value     int64
	Fired     uint64
	Cycles    int64
	Tokens    uint64
	Swaps     uint64
	Overflows uint64
	PEsUsed   int

	NetMessages uint64
	NetMeshHops uint64
	NetStalls   uint64
	NetDrops    uint64
	NetRetries  uint64

	MemAccesses  uint64
	MemL1Misses  uint64
	MemTransfers uint64

	OrderIssued     uint64
	OrderWavesDone  uint64
	OrderMaxPending int

	MemImageHash uint64
}

func goldenConfig(m MachineOptions, sc fault.Config) wavecache.Config {
	cfg := m.WaveConfig()
	cfg.Faults = sc
	cfg.MaxCycles = 50_000_000
	if sc.DefectRate > 0 {
		cfg.Machine.Defective = fault.DefectMap(sc, cfg.Machine.NumPEs())
	}
	return cfg
}

func collectGolden(t *testing.T, shards int) []goldenRecord {
	t.Helper()
	opts := DefaultCompileOptions()
	// The golden snapshot predates the memory-optimization tier and pins
	// the pre-optimizer binaries bit-for-bit; replay must compile exactly
	// the program the snapshot recorded. The tier's correctness is covered
	// separately by the differential suites at both opt levels.
	opts.OptLevel = 0
	set, err := Suite(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachineOptions()
	m.GridW, m.GridH = 2, 2
	m.Shards = shards
	var recs []goldenRecord
	for _, c := range set {
		for _, sc := range goldenScenarios {
			cfg := goldenConfig(m, sc.Cfg)
			pol, err := placement.New(m.Policy, cfg.Machine, c.Wave, 12345)
			if err != nil {
				t.Fatal(err)
			}
			res, mem, err := wavecache.RunWithMemory(c.Wave, pol, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.Name, sc.Name, err)
			}
			h := fnv.New64a()
			for _, w := range mem {
				var b [8]byte
				for i := 0; i < 8; i++ {
					b[i] = byte(w >> (8 * i))
				}
				h.Write(b[:])
			}
			recs = append(recs, goldenRecord{
				Workload: c.Name, Scenario: sc.Name,
				Value: res.Value, Fired: res.Fired, Cycles: res.Cycles,
				Tokens: res.Tokens, Swaps: res.Swaps, Overflows: res.Overflows,
				PEsUsed:     res.PEsUsed,
				NetMessages: res.Net.Messages, NetMeshHops: res.Net.MeshHops,
				NetStalls: res.Net.StallCycles, NetDrops: res.Net.Drops,
				NetRetries:  res.Net.Retries,
				MemAccesses: res.Mem.Accesses, MemL1Misses: res.Mem.L1Misses,
				MemTransfers: res.Mem.Transfers,
				OrderIssued:  res.Order.Issued, OrderWavesDone: res.Order.WavesDone,
				OrderMaxPending: res.Order.MaxPending,
				MemImageHash:    h.Sum64(),
			})
		}
	}
	return recs
}

// TestGoldenWaveCache replays every workload under every golden scenario
// and demands bit-identical observables to the committed snapshot.
func TestGoldenWaveCache(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite compiles and simulates the full workload set")
	}
	got := collectGolden(t, 0)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden records to %s", len(got), goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden snapshot (run with -update-golden to create): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("golden record count changed: got %d want %d (workload set or scenario sweep changed; regenerate deliberately)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("golden mismatch at %s/%s:\n  got  %+v\n  want %+v",
				want[i].Workload, want[i].Scenario, got[i], want[i])
		}
	}
}

// TestGoldenWaveCacheSharded replays the golden suite on the sharded
// engine — worker dispatch forced on — against the same committed
// snapshot the sequential engine is pinned to: the strongest form of the
// shard bit-identity contract. Fault scenarios pin back to the sequential
// engine by design, so the sweep covers both the parallel clean cells and
// the pinning path in one pass.
func TestGoldenWaveCacheSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite compiles and simulates the full workload set")
	}
	if *updateGolden {
		t.Skip("snapshot is regenerated by TestGoldenWaveCache only")
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden snapshot (run TestGoldenWaveCache -update-golden to create): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	defer wavecache.SetShardDispatchMin(wavecache.SetShardDispatchMin(1))
	for _, shards := range []int{2, 4} {
		got := collectGolden(t, shards)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: golden record count changed: got %d want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("shards=%d: golden mismatch at %s/%s:\n  got  %+v\n  want %+v",
					shards, want[i].Workload, want[i].Scenario, got[i], want[i])
			}
		}
	}
}
