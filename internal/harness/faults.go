package harness

import (
	"fmt"

	"wavescalar/internal/fault"
	"wavescalar/internal/placement"
	"wavescalar/internal/stats"
	"wavescalar/internal/wavecache"
)

func init() {
	Experiments = append(Experiments, Experiment{
		ID:    "E12",
		Title: "Fault injection: IPC degradation vs. defect and loss rates",
		Claim: "a tiled dataflow machine degrades gracefully under faults: placement routes around dead PEs and ack/retransmit recovers lost messages, so performance falls smoothly with fault rate while results stay correct",
		Run:   runE12,
	})
}

// e12Seed drives every E12 fault decision; one fixed seed keeps the tables
// reproducible bit-for-bit at any worker count.
const e12Seed = 7

// e12Scenarios is the fault sweep: configuration-time defects, operand
// message loss, store-buffer message loss, and everything at once. Every
// scenario is recoverable: each run must still produce its workload's
// checksum (RunWave enforces it), the differential invariant of the
// experiment.
var e12Scenarios = []struct {
	name string
	cfg  fault.Config
}{
	{"fault-free", fault.Config{}},
	{"defect-5%", fault.Config{Seed: e12Seed, DefectRate: 0.05}},
	{"defect-25%", fault.Config{Seed: e12Seed, DefectRate: 0.25}},
	{"drop-1%", fault.Config{Seed: e12Seed, DropRate: 0.01}},
	{"drop-10%", fault.Config{Seed: e12Seed, DropRate: 0.10}},
	{"memloss-1%", fault.Config{Seed: e12Seed, MemLossRate: 0.01}},
	{"combined", fault.Config{Seed: e12Seed, DefectRate: 0.10, DropRate: 0.02, DelayRate: 0.02, MemLossRate: 0.01}},
}

func runE12(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	t := stats.NewTable("E12: AIPC under injected faults (checksums verified on every cell)",
		"bench", "scenario", "dead-pes", "aipc", "rel", "drops", "retries", "mem-retries", "retry-wait")
	results := make([]wavecache.Result, len(set)*len(e12Scenarios))
	cells := newCellSet(m)
	for bi, c := range set {
		for si, sc := range e12Scenarios {
			slot := bi*len(e12Scenarios) + si
			cells.add(func() error {
				cfg := m.WaveConfig()
				cfg.Faults = sc.cfg
				// Watchdog backstop: a faulty run must terminate, never hang.
				cfg.MaxCycles = 50_000_000
				// Placement and simulator derive the same defect map from
				// (seed, rate); the policy never assigns a dead PE.
				cfg.Machine.Defective = fault.DefectMap(sc.cfg, cfg.Machine.NumPEs())
				pol, err := placement.New(m.Policy, cfg.Machine, c.Wave, 12345)
				if err != nil {
					return err
				}
				res, err := RunWave(c, c.Wave, pol, cfg)
				if err != nil {
					return fmt.Errorf("E12 %s/%s: %w", c.Name, sc.name, err)
				}
				results[slot] = res
				return nil
			})
		}
	}
	if err := cells.run(); err != nil {
		return nil, err
	}
	for bi, c := range set {
		base := AIPC(c.UsefulInstrs, results[bi*len(e12Scenarios)].Cycles)
		for si, sc := range e12Scenarios {
			r := &results[bi*len(e12Scenarios)+si]
			aipc := AIPC(c.UsefulInstrs, r.Cycles)
			rel := 0.0
			if base > 0 {
				rel = aipc / base
			}
			t.AddRow(c.Name, sc.name, r.Faults.DefectivePEs, aipc, rel,
				r.Net.Drops, r.Net.Retries, r.Faults.MemRetries, r.Net.RetryWaitCycles+r.Faults.MemRetryWait)
		}
	}
	t.Note = fmt.Sprintf("fault seed %d; rel = AIPC / fault-free AIPC; every cell re-verified its workload checksum against the linear emulator", e12Seed)
	return t, nil
}
