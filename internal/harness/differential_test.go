package harness

import (
	"sync"
	"testing"
)

// fullSuite caches the whole compiled benchmark suite across the
// differential tests; compiling ten workloads through four backends is
// the expensive part, so it runs once per test binary.
var fullSuite struct {
	once sync.Once
	set  []*Compiled
	err  error
}

func fullSet(t *testing.T) []*Compiled {
	t.Helper()
	fullSuite.once.Do(func() {
		fullSuite.set, fullSuite.err = Suite(nil, DefaultCompileOptions())
	})
	if fullSuite.err != nil {
		t.Fatal(fullSuite.err)
	}
	return fullSuite.set
}

// TestDifferentialChecksums is the cross-engine correctness suite: for
// every workload, every execution engine in the repo — the shared
// Engines() table: the AST evaluator, the linear emulator, the dataflow
// interpreter (on all three compiled binaries), the WaveCache timing
// simulator (in all four memory modes), and the out-of-order baseline —
// must agree on the final checksum.
func TestDifferentialChecksums(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential sweep is slow")
	}
	set := fullSet(t)
	engines := Engines(quickMachine())
	if len(engines) != 10 {
		t.Fatalf("engine table has %d engines, want 10", len(engines))
	}

	for _, c := range set {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			for _, e := range engines {
				e := e
				t.Run(e.Name, func(t *testing.T) {
					t.Parallel()
					got, err := e.Run(c)
					if err != nil {
						t.Fatal(err)
					}
					if got.Value != c.Checksum {
						t.Errorf("checksum %d, want %d", got.Value, c.Checksum)
					}
				})
			}
		})
	}
}

// TestRunDifferential exercises the reusable runner on one workload: all
// engines must agree (Pass), and the timing engines must report cycles.
func TestRunDifferential(t *testing.T) {
	set := quickSet(t)
	d := RunDifferential(set[0], Engines(quickMachine()))
	if !d.Pass() {
		t.Fatalf("differential mismatches: %v", d.Mismatches())
	}
	if d.Want != set[0].Checksum || d.Name != set[0].Name {
		t.Errorf("verdict header wrong: %+v", d)
	}
	cycles := map[string]bool{}
	for _, r := range d.Results {
		if r.Cycles > 0 {
			cycles[r.Engine] = true
		}
	}
	for _, e := range []string{"wavecache-wave-ordered", "ooo"} {
		if !cycles[e] {
			t.Errorf("timing engine %s reported no cycles (have %v)", e, cycles)
		}
	}
}
