package harness

import (
	"sync"
	"testing"

	"wavescalar/internal/interp"
	"wavescalar/internal/lang"
	"wavescalar/internal/linear"
	"wavescalar/internal/ooo"
	"wavescalar/internal/wavecache"
	"wavescalar/internal/workloads"
)

// fullSuite caches the whole compiled benchmark suite across the
// differential tests; compiling ten workloads through four backends is
// the expensive part, so it runs once per test binary.
var fullSuite struct {
	once sync.Once
	set  []*Compiled
	err  error
}

func fullSet(t *testing.T) []*Compiled {
	t.Helper()
	fullSuite.once.Do(func() {
		fullSuite.set, fullSuite.err = Suite(nil, DefaultCompileOptions())
	})
	if fullSuite.err != nil {
		t.Fatal(fullSuite.err)
	}
	return fullSuite.set
}

// TestDifferentialChecksums is the cross-engine correctness suite: for
// every workload, every execution engine in the repo — the AST evaluator,
// the linear emulator, the dataflow interpreter (on all three compiled
// binaries), the WaveCache timing simulator (in all three memory modes),
// and the out-of-order baseline — must agree on the final checksum.
func TestDifferentialChecksums(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential sweep is slow")
	}
	set := fullSet(t)
	m := quickMachine()

	waveEngine := func(mode wavecache.MemoryMode) func(c *Compiled) (int64, error) {
		return func(c *Compiled) (int64, error) {
			cfg := m.WaveConfig()
			cfg.MemMode = mode
			pol, err := m.NewPolicy(c.Wave)
			if err != nil {
				return 0, err
			}
			res, err := wavecache.Run(c.Wave, pol, cfg)
			return res.Value, err
		}
	}
	engines := []struct {
		name string
		run  func(c *Compiled) (int64, error)
	}{
		{"ast-evaluator", func(c *Compiled) (int64, error) {
			return lang.EvalProgram(workloads.ByName(c.Name).Src)
		}},
		{"linear-emulator", func(c *Compiled) (int64, error) {
			return linear.NewEmulator(c.Linear, 0).Run()
		}},
		{"interp-steer", func(c *Compiled) (int64, error) {
			return interp.New(c.Wave, 0).Run()
		}},
		{"interp-select", func(c *Compiled) (int64, error) {
			return interp.New(c.WaveSel, 0).Run()
		}},
		{"interp-rolled", func(c *Compiled) (int64, error) {
			return interp.New(c.WaveNoUn, 0).Run()
		}},
		{"wavecache-" + wavecache.MemOrdered.String(), waveEngine(wavecache.MemOrdered)},
		{"wavecache-" + wavecache.MemSerial.String(), waveEngine(wavecache.MemSerial)},
		{"wavecache-" + wavecache.MemIdeal.String(), waveEngine(wavecache.MemIdeal)},
		{"ooo", func(c *Compiled) (int64, error) {
			res, err := ooo.Run(c.Linear, DefaultOoOConfig())
			return res.Value, err
		}},
	}

	for _, c := range set {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			for _, e := range engines {
				e := e
				t.Run(e.name, func(t *testing.T) {
					t.Parallel()
					got, err := e.run(c)
					if err != nil {
						t.Fatal(err)
					}
					if got != c.Checksum {
						t.Errorf("checksum %d, want %d", got, c.Checksum)
					}
				})
			}
		})
	}
}
