package harness

import (
	"reflect"
	"testing"

	"wavescalar/internal/fault"
	"wavescalar/internal/placement"
	"wavescalar/internal/trace"
	"wavescalar/internal/wavecache"
)

// forceShardDispatch pins the engine's dispatch threshold to 1 for the
// test so worker dispatch engages even on single-CPU hosts, restoring the
// default on cleanup.
func forceShardDispatch(t *testing.T) {
	t.Helper()
	old := wavecache.SetShardDispatchMin(1)
	t.Cleanup(func() { wavecache.SetShardDispatchMin(old) })
}

// TestExperimentShardInvariance: representative experiment tables — E1
// (baseline comparison), E4 (network sensitivity), E12 (fault sweep) —
// and their metrics aggregates must be byte-identical at shards 1, 2,
// and 4. E12's cells inject faults and therefore exercise the pin-to-
// sequential path inside a sharded sweep.
func TestExperimentShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	forceShardDispatch(t)
	set := quickSet(t)
	for _, id := range []string{"E1", "E4", "E12"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e := ExperimentByID(id)
			if e == nil {
				t.Fatalf("experiment %s not registered", id)
			}
			run := func(shards int) (string, trace.Metrics) {
				m := quickMachine()
				m.Shards = shards
				m.Metrics = trace.NewAggregate()
				tbl, err := e.Run(set, m)
				if err != nil {
					t.Fatal(err)
				}
				return tbl.Render(), m.Metrics.Snapshot()
			}
			baseTbl, baseM := run(1)
			for _, shards := range []int{2, 4} {
				tbl, m := run(shards)
				if tbl != baseTbl {
					t.Errorf("%s table diverged at shards=%d:\n--- shards=1 ---\n%s\n--- shards=%d ---\n%s",
						id, shards, baseTbl, shards, tbl)
				}
				if !reflect.DeepEqual(baseM, m) {
					t.Errorf("%s metrics aggregate diverged at shards=%d:\n%+v\n%+v", id, shards, baseM, m)
				}
			}
		})
	}
}

// TestShardInvarianceMidRunKill: a mid-run PE death whose migration
// crosses the shard boundary — PE 0 lives in shard 0's cluster range,
// and on a 4x4 grid the survivors span all four shards — must produce
// the identical Result and memory image at every shard setting. Fault
// injection pins the engine sequential, so this asserts the pinning
// contract end to end through the harness plumbing.
func TestShardInvarianceMidRunKill(t *testing.T) {
	forceShardDispatch(t)
	set := quickSet(t)
	c := set[0] // lu
	fc := fault.Config{Seed: e12Seed, KillPE: 0, KillCycle: 500}
	run := func(shards int) (wavecache.Result, []int64) {
		m := DefaultMachineOptions()
		m.Shards = shards
		cfg := m.WaveConfig()
		cfg.Faults = fc
		cfg.MaxCycles = 50_000_000
		pol, err := placement.New(m.Policy, cfg.Machine, c.Wave, 12345)
		if err != nil {
			t.Fatal(err)
		}
		res, mem, err := wavecache.RunWithMemory(c.Wave, pol, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, mem
	}
	base, baseMem := run(1)
	if base.Faults.PEKills != 1 || base.Faults.MigratedInstrs == 0 {
		t.Fatalf("kill scenario did not migrate: %+v", base.Faults)
	}
	for _, shards := range []int{2, 4} {
		res, mem := run(shards)
		if !reflect.DeepEqual(base, res) {
			t.Errorf("kill run diverged at shards=%d:\n%+v\n%+v", shards, base, res)
		}
		if !reflect.DeepEqual(baseMem, mem) {
			t.Errorf("kill run memory image diverged at shards=%d", shards)
		}
	}
}

// TestShardWorkerCountComposition: engine shards compose with sweep
// workers — a sharded engine inside a parallel sweep must render the
// same tables as a sequential sweep of sequential engines.
func TestShardWorkerCountComposition(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	forceShardDispatch(t)
	set := quickSet(t)
	e := ExperimentByID("E4")
	seq := quickMachine()
	seq.Workers = 1
	par := quickMachine()
	par.Workers = 8
	par.Shards = 4
	t1, err := e.Run(set, seq)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e.Run(set, par)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Render() != t2.Render() {
		t.Errorf("tables differ between (j=1, shards=1) and (j=8, shards=4):\n%s\n%s",
			t1.Render(), t2.Render())
	}
}
