package harness

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// PruneStats reports what one CellCache.Prune pass did.
type PruneStats struct {
	// Scanned is the number of cache entries examined.
	Scanned int
	// RemovedAge / RemovedSize count entries deleted for exceeding the age
	// bound and for bringing the cache under the size bound, respectively.
	RemovedAge, RemovedSize int
	// RemovedTemp counts stray temp files (from killed writers) cleaned up.
	RemovedTemp int
	// KeptBytes is the total payload size remaining after the pass.
	KeptBytes int64
}

// Removed is the total number of cache entries deleted.
func (p PruneStats) Removed() int { return p.RemovedAge + p.RemovedSize }

func (p PruneStats) String() string {
	return fmt.Sprintf("scanned %d, removed %d (age %d, size %d, temp %d), kept %s",
		p.Scanned, p.Removed(), p.RemovedAge, p.RemovedSize, p.RemovedTemp,
		FormatBytes(p.KeptBytes))
}

// staleTempAge is how old a temp file must be before Prune treats it as
// abandoned by a killed writer rather than in flight from a live one.
const staleTempAge = time.Hour

// Prune bounds the cache directory for long-lived processes: it removes
// entries older than maxAge (0 = no age bound) and then, oldest first,
// enough further entries to bring the total size under maxBytes (0 = no
// size bound). Stray temp files left by killed writers are removed once
// they are over an hour old.
//
// Prune is safe to run concurrently with Put and Get from any process
// sharing the directory: entries are whole files written atomically, so a
// pruned entry simply becomes a cache miss to be recomputed — a reader
// never observes a torn entry, and a concurrent Put of the same key either
// lands before the Remove (and is pruned) or after (and survives as a
// fresh entry). Per-entry deletion errors are counted as kept, not fatal;
// only a failure to scan the directory tree is returned.
func (cc *CellCache) Prune(maxAge time.Duration, maxBytes int64) (PruneStats, error) {
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var (
		st      PruneStats
		entries []entry
	)
	now := time.Now()
	err := filepath.WalkDir(cc.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// A shard directory pruned or renamed underneath the walk is a
			// concurrent-delete race, not a failure.
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil // deleted underneath us: already pruned
		}
		name := d.Name()
		if strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-") {
			if now.Sub(info.ModTime()) > staleTempAge {
				if os.Remove(path) == nil {
					st.RemovedTemp++
				}
			}
			return nil
		}
		if !strings.HasSuffix(name, ".json") {
			return nil
		}
		st.Scanned++
		entries = append(entries, entry{path: path, size: info.Size(), mtime: info.ModTime()})
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("cellcache: prune: %w", err)
	}

	var kept []entry
	for _, e := range entries {
		if maxAge > 0 && now.Sub(e.mtime) > maxAge {
			if os.Remove(e.path) == nil {
				st.RemovedAge++
				continue
			}
		}
		kept = append(kept, e)
		st.KeptBytes += e.size
	}
	if maxBytes > 0 && st.KeptBytes > maxBytes {
		// Oldest first; ties broken by path so the pass is deterministic.
		sort.Slice(kept, func(i, j int) bool {
			if !kept[i].mtime.Equal(kept[j].mtime) {
				return kept[i].mtime.Before(kept[j].mtime)
			}
			return kept[i].path < kept[j].path
		})
		for _, e := range kept {
			if st.KeptBytes <= maxBytes {
				break
			}
			if os.Remove(e.path) == nil {
				st.RemovedSize++
				st.KeptBytes -= e.size
			}
		}
	}
	return st, nil
}

// ParsePruneSpec parses the CLI prune specification: comma-separated
// key=value pairs with keys "age" (a Go duration, e.g. 24h) and "size" (a
// byte count with optional KB/MB/GB/KiB/MiB/GiB suffix). At least one
// bound must be given; a zero bound means "no bound on that axis".
func ParsePruneSpec(spec string) (maxAge time.Duration, maxBytes int64, err error) {
	if strings.TrimSpace(spec) == "" {
		return 0, 0, fmt.Errorf("cellcache: empty prune spec (want age=DUR and/or size=BYTES)")
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return 0, 0, fmt.Errorf("cellcache: bad prune spec part %q (want key=value)", part)
		}
		switch k {
		case "age":
			maxAge, err = time.ParseDuration(v)
			if err != nil {
				return 0, 0, fmt.Errorf("cellcache: bad prune age %q: %w", v, err)
			}
			if maxAge < 0 {
				return 0, 0, fmt.Errorf("cellcache: negative prune age %q", v)
			}
		case "size":
			maxBytes, err = ParseBytes(v)
			if err != nil {
				return 0, 0, err
			}
		default:
			return 0, 0, fmt.Errorf("cellcache: unknown prune key %q (want age or size)", k)
		}
	}
	return maxAge, maxBytes, nil
}

// ParseBytes parses a byte count: a plain integer, or one with a
// KB/MB/GB (decimal) or KiB/MiB/GiB (binary) suffix, or a bare B.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30},
		{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9}, {"B", 1},
	} {
		if strings.HasSuffix(t, u.suffix) {
			t = strings.TrimSpace(strings.TrimSuffix(t, u.suffix))
			mult = u.mult
			break
		}
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("cellcache: bad byte count %q", s)
	}
	return n * mult, nil
}

// FormatBytes renders a byte count with a decimal unit suffix.
func FormatBytes(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fGB", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fMB", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.2fKB", float64(n)/1e3)
	}
	return fmt.Sprintf("%dB", n)
}
