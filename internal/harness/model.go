package harness

import (
	"wavescalar/internal/interp"
	"wavescalar/internal/placement"
	"wavescalar/internal/placemodel"
	"wavescalar/internal/profile"
	"wavescalar/internal/stats"
	"wavescalar/internal/wavecache"
)

func init() {
	Experiments = append(Experiments, Experiment{
		ID:    "M1",
		Title: "SPAA'06 placement model: component and combined correlations",
		Claim: "a weighted sum of operand latency, migratory coherence, and PE contention predicts layout performance (paper: combined correlation -0.90; components -0.88 / -0.84 / -0.76)",
		Run:   runM1,
	})
}

// runM1 reproduces the follow-on paper's method: profile each application
// once, evaluate eight candidate layouts with the analytic model, simulate
// each layout, and report the Pearson correlation between model scores and
// simulated IPC — per component and combined.
func runM1(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	t := stats.NewTable("M1: model-vs-simulation correlation across 8 layouts",
		"bench", "latency-r", "coherence-r", "contention-r", "combined-r")

	// A small, contention-prone machine gives layouts room to differ, as
	// in the paper's study.
	mach := placement.DefaultMachine(2, 2)
	mach.Capacity = 8
	cfg := placemodel.DefaultConfig(mach, 8)
	simCfg := wavecache.DefaultConfig(2, 2)
	simCfg.Machine = mach
	simCfg.PEStore = 8
	// Input-queue contention is the resource the model does not capture
	// (the paper notes the same); idealize it as their component
	// isolation does.
	simCfg.InputQueue = 1 << 30

	type cand struct {
		name string
		seed uint64
	}
	cands := []cand{
		{"dynamic-snake", 1}, {"static-snake", 1}, {"depth-first-snake", 1},
		{"dynamic-depth-first-snake", 1},
		{"random", 3}, {"random", 99}, {"packed-random", 3}, {"packed-random", 99},
	}

	// Per bench: one profiling interpreter run plus one simulation per
	// candidate layout, all independent cells. Model evaluation needs the
	// profile and the policy's post-run layout together, so it happens in
	// the sequential collection pass.
	type candRun struct {
		pol placement.Policy
		ipc float64
	}
	profs := make([]*profile.Profile, len(set))
	runs := make([]candRun, len(set)*len(cands))
	cells := newCellSet(m)
	for bi, c := range set {
		cells.add(func() error {
			im := interp.New(c.Wave, 0)
			prof := im.CollectProfile(simCfg.Mem.L1.LineWords)
			if _, err := im.Run(); err != nil {
				return err
			}
			profs[bi] = prof
			return nil
		})
		for cdi, cd := range cands {
			slot := bi*len(cands) + cdi
			cells.add(func() error {
				pol, err := placement.New(cd.name, mach, c.Wave, cd.seed)
				if err != nil {
					return err
				}
				res, err := RunWave(c, c.Wave, pol, simCfg)
				if err != nil {
					return err
				}
				runs[slot] = candRun{pol: pol, ipc: res.IPC}
				return nil
			})
		}
	}
	if err := cells.run(); err != nil {
		return nil, err
	}

	var combAll []float64
	for bi, c := range set {
		prof := profs[bi]
		var comps []placemodel.Components
		var ipcs []float64
		for cdi := range cands {
			r := &runs[bi*len(cands)+cdi]
			comps = append(comps, placemodel.Evaluate(cfg, prof, placemodel.ExtractLayout(r.pol, prof)))
			ipcs = append(ipcs, r.ipc)
		}

		col := func(get func(placemodel.Components) float64) float64 {
			xs := make([]float64, len(comps))
			for i, cc := range comps {
				xs[i] = get(cc)
			}
			return stats.Pearson(xs, ipcs)
		}
		combined := placemodel.Combine(comps, placemodel.PaperWeights())
		r := placemodel.Correlation(combined, ipcs)
		combAll = append(combAll, r)
		t.AddRow(c.Name,
			col(func(c placemodel.Components) float64 { return c.Latency }),
			col(func(c placemodel.Components) float64 { return c.Data }),
			col(func(c placemodel.Components) float64 { return c.Contention }),
			r)
	}
	t.AddRow("average", "", "", "", stats.Mean(combAll))
	t.Note = "negative is good: higher predicted cost should mean lower IPC"
	return t, nil
}
