package harness

import (
	"fmt"

	"wavescalar/internal/mem"
	"wavescalar/internal/ooo"
	"wavescalar/internal/stats"
	"wavescalar/internal/wavecache"
)

func init() {
	// Keep E1b ordered right after E1.
	e1b := Experiment{
		ID:    "E1b",
		Title: "Memory pressure and the WaveCache/superscalar ratio",
		Claim: "the WaveCache tolerates memory latency better than a window-limited superscalar, so its relative performance improves as working sets fall out of cache",
		Run:   runE1b,
	}
	out := make([]Experiment, 0, len(Experiments)+1)
	for _, e := range Experiments {
		out = append(out, e)
		if e.ID == "E1" {
			out = append(out, e1b)
		}
	}
	Experiments = out
}

// memoryRegime scales the cache hierarchy to emulate increasing pressure:
// the kernels are ~100x smaller than SPEC, so the caches shrink in
// proportion (documented in EXPERIMENTS.md's scaling caveats).
type memoryRegime struct {
	name  string
	apply func(*mem.SystemConfig)
}

var regimes = []memoryRegime{
	{"cache-resident", func(c *mem.SystemConfig) {}},
	{"L1-starved", func(c *mem.SystemConfig) {
		c.L1.SizeWords = 256 // 2 KB
	}},
	{"DRAM-heavy", func(c *mem.SystemConfig) {
		c.L1.SizeWords = 256
		c.L2 = mem.CacheConfig{SizeWords: 512, LineWords: 16, Ways: 4} // 4 KB
		c.MemLatency = 300
	}},
}

func runE1b(set []*Compiled, m MachineOptions) (*stats.Table, error) {
	headers := []string{"bench"}
	for _, r := range regimes {
		headers = append(headers, "speedup@"+r.name)
	}
	t := stats.NewTable("E1b: WaveCache speedup over superscalar, by memory regime", headers...)
	type cell struct {
		wres wavecache.Result
		ores ooo.Result
	}
	grid := make([]cell, len(set)*len(regimes))
	cells := newCellSet(m)
	for bi, c := range set {
		for ri, r := range regimes {
			slot := bi*len(regimes) + ri
			cells.add(func() error {
				wcfg := m.WaveConfig()
				r.apply(&wcfg.Mem)
				res, err := runWaveWith(c, c.Wave, m, wcfg)
				if err != nil {
					return err
				}
				grid[slot].wres = res
				return nil
			})
			cells.add(func() error {
				ocfg := DefaultOoOConfig()
				r.apply(&ocfg.Mem)
				res, err := RunOoO(c, ocfg)
				if err != nil {
					return err
				}
				grid[slot].ores = res
				return nil
			})
		}
	}
	if err := cells.run(); err != nil {
		return nil, err
	}
	geo := make([][]float64, len(regimes))
	for bi, c := range set {
		row := []any{c.Name}
		for ri := range regimes {
			g := &grid[bi*len(regimes)+ri]
			sp := float64(g.ores.Cycles) / float64(g.wres.Cycles)
			geo[ri] = append(geo[ri], sp)
			row = append(row, sp)
		}
		t.AddRow(row...)
	}
	grow := []any{"geomean"}
	for ri := range regimes {
		grow = append(grow, stats.GeoMean(geo[ri]))
	}
	t.AddRow(grow...)
	t.Note = fmt.Sprintf("regimes shrink the hierarchy in proportion to the kernels' scaled-down working sets (see EXPERIMENTS.md); DRAM-heavy uses a %d-cycle memory", 300)
	return t, nil
}
