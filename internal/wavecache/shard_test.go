package wavecache

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"wavescalar/internal/fault"
	"wavescalar/internal/placement"
	"wavescalar/internal/testprogs"
	"wavescalar/internal/trace"
)

// forceDispatch pins the dispatch threshold to 1 so every multi-event
// batch exercises the classify/dispatch/merge machinery even on a
// single-CPU host, restoring the default on cleanup. Any threshold is
// bit-identical by construction; this just steers coverage.
func forceDispatch(t *testing.T) {
	t.Helper()
	old := shardDispatchMin
	shardDispatchMin = 1
	t.Cleanup(func() { shardDispatchMin = old })
}

// shardRun executes src on a 2x2 machine at the given shard count,
// returning the result, final memory image, merged metrics, and the
// arena (for runtime introspection).
func shardRun(t *testing.T, src string, shards int) (Result, []int64, trace.Metrics, *Arena) {
	t.Helper()
	wp := compileSource(t, src)
	cfg := DefaultConfig(2, 2)
	cfg.Shards = shards
	agg := &trace.Aggregate{}
	cfg.Metrics = agg
	pol, err := placement.New("dynamic-snake", cfg.Machine, wp, 1234)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena()
	res, err := a.Run(wp, pol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, a.s.memImage, agg.Snapshot(), a
}

// TestShardInvariance is the tentpole contract: results, memory images,
// and metrics aggregates are byte-identical at every shard count, with
// the dispatch machinery forced on.
func TestShardInvariance(t *testing.T) {
	forceDispatch(t)
	progs := []struct{ name, src string }{
		{testprogs.Corpus[1].Name, testprogs.Corpus[1].Src},
		{testprogs.Corpus[21].Name, testprogs.Corpus[21].Src},
		{testprogs.Heavy[1].Name, testprogs.Heavy[1].Src}, // sort_64
	}
	for _, p := range progs {
		t.Run(p.name, func(t *testing.T) {
			base, baseMem, baseM, _ := shardRun(t, p.src, 1)
			for _, n := range []int{2, 3, 4, 64} { // 64 clamps to the 4 clusters
				res, mem, m, a := shardRun(t, p.src, n)
				if !reflect.DeepEqual(base, res) {
					t.Fatalf("shards=%d result diverged:\n%+v\n%+v", n, base, res)
				}
				if !reflect.DeepEqual(baseMem, mem) {
					t.Fatalf("shards=%d memory image diverged", n)
				}
				if !reflect.DeepEqual(baseM, m) {
					t.Fatalf("shards=%d metrics diverged:\n%+v\n%+v", n, baseM, m)
				}
				if n >= 2 && (a.s.par == nil || a.s.par.batches == 0) {
					t.Fatalf("shards=%d never dispatched a batch: the parallel path went untested", n)
				}
			}
		})
	}
}

// TestShardMemoryModeInvariance pins every memory mode at every shard
// count. MemIdeal is the regression here: oracle replies are back-dated
// (timed from the PE firing, not the issue), and sequentially such a
// reply preempts the rest of the same-timestamp batch — the engine must
// truncate the batch and restore the tail, on both the dispatched and
// the inline path, or cycle counts drift.
func TestShardMemoryModeInvariance(t *testing.T) {
	progs := []struct{ name, src string }{
		{testprogs.Corpus[21].Name, testprogs.Corpus[21].Src}, // memory-heavy
		{testprogs.Heavy[1].Name, testprogs.Heavy[1].Src},     // sort_64
	}
	run := func(t *testing.T, src string, mode MemoryMode, shards int) (Result, []int64) {
		t.Helper()
		wp := compileSource(t, src)
		cfg := DefaultConfig(2, 2)
		cfg.Shards = shards
		cfg.MemMode = mode
		pol, err := placement.New("dynamic-snake", cfg.Machine, wp, 1234)
		if err != nil {
			t.Fatal(err)
		}
		a := NewArena()
		res, err := a.Run(wp, pol, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, append([]int64(nil), a.s.memImage...)
	}
	for _, dispatch := range []struct {
		name  string
		force bool
	}{{"dispatched", true}, {"inline", false}} {
		t.Run(dispatch.name, func(t *testing.T) {
			if dispatch.force {
				forceDispatch(t)
			}
			for _, p := range progs {
				for _, mode := range []MemoryMode{MemOrdered, MemSerial, MemIdeal, MemSpec} {
					base, baseMem := run(t, p.src, mode, 1)
					for _, n := range []int{2, 4} {
						res, mem := run(t, p.src, mode, n)
						if !reflect.DeepEqual(base, res) {
							t.Errorf("%s/%v: shards=%d diverged:\n%+v\n%+v", p.name, mode, n, base, res)
						}
						if !reflect.DeepEqual(baseMem, mem) {
							t.Errorf("%s/%v: shards=%d memory image diverged", p.name, mode, n)
						}
					}
				}
			}
		})
	}
}

// TestShardInvarianceDefaultDispatch covers the production configuration:
// whatever threshold this host defaults to, results still pin.
func TestShardInvarianceDefaultDispatch(t *testing.T) {
	src := testprogs.Heavy[1].Src
	base, baseMem, baseM, _ := shardRun(t, src, 1)
	res, mem, m, _ := shardRun(t, src, 4)
	if !reflect.DeepEqual(base, res) || !reflect.DeepEqual(baseMem, mem) || !reflect.DeepEqual(baseM, m) {
		t.Fatalf("default-dispatch shards=4 diverged from sequential")
	}
}

// TestShardInvarianceUnderFaults: fault-injected runs (pseudo-random
// streams consume in global event order) pin to the sequential engine, so
// every shard setting reproduces the same faulty run bit-for-bit —
// including a mid-run PE kill whose migration crosses the shard boundary
// (PE 0 lives in shard 0's cluster; survivors span all shards).
func TestShardInvarianceUnderFaults(t *testing.T) {
	forceDispatch(t)
	src := testprogs.Heavy[1].Src
	scenarios := []fault.Config{
		{Seed: 11, KillPE: 0, KillCycle: 200},
		{Seed: 11, DefectRate: 0.1, DropRate: 0.02, DelayRate: 0.02, MemLossRate: 0.02, KillPE: 1, KillCycle: 500},
	}
	for _, fc := range scenarios {
		wp := compileSource(t, src)
		run := func(shards int) (Result, *Arena) {
			cfg := DefaultConfig(2, 2)
			cfg.Shards = shards
			cfg.Faults = fc
			cfg.MaxCycles = 20_000_000
			cfg.Machine.Defective = fault.DefectMap(fc, cfg.Machine.NumPEs())
			pol, err := placement.New("dynamic-depth-first-snake", cfg.Machine, wp, 1234)
			if err != nil {
				t.Fatal(err)
			}
			a := NewArena()
			res, err := a.Run(wp, pol, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res, a
		}
		base, _ := run(1)
		for _, n := range []int{2, 4} {
			res, a := run(n)
			if !reflect.DeepEqual(base, res) {
				t.Fatalf("faulty run diverged at shards=%d:\n%+v\n%+v", n, base, res)
			}
			if a.s.nsh != 1 {
				t.Fatalf("fault injection must pin the sequential engine, got nsh=%d", a.s.nsh)
			}
		}
		if base.Faults.PEKills != 1 {
			t.Fatalf("scenario killed no PE: %+v", base.Faults)
		}
	}
}

// TestShardEventTracerPins: an event-stream tracer consumes the trace in
// global event order, so it pins sequential and records the identical
// stream at any shard setting.
func TestShardEventTracerPins(t *testing.T) {
	forceDispatch(t)
	wp := compileSource(t, testprogs.Corpus[1].Src)
	run := func(shards int) ([]trace.Event, *Arena) {
		cfg := DefaultConfig(2, 2)
		cfg.Shards = shards
		tr := trace.New(trace.Config{Events: true, MaxEvents: 1 << 20})
		cfg.Tracer = tr
		a := NewArena()
		if _, err := a.Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg); err != nil {
			t.Fatal(err)
		}
		return tr.Events(), a
	}
	base, _ := run(1)
	got, a := run(4)
	if a.s.nsh != 1 {
		t.Fatalf("event tracer must pin the sequential engine, got nsh=%d", a.s.nsh)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("event streams diverged across shard settings")
	}
}

// TestShardWatchdogDumpIdentical: the watchdog diagnostic must be
// byte-identical between the sequential and parallel engines — the
// parallel loop pops exactly the tripping event before dumping, mirroring
// the sequential abort state.
func TestShardWatchdogDumpIdentical(t *testing.T) {
	forceDispatch(t)
	wp := compileSource(t, testprogs.Heavy[1].Src)
	run := func(shards int) string {
		cfg := DefaultConfig(2, 2)
		cfg.Shards = shards
		cfg.MaxCycles = 300
		_, err := Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
		var fe *fault.FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("want watchdog fault, got %v", err)
		}
		return err.Error()
	}
	base := run(1)
	for _, n := range []int{2, 4} {
		if got := run(n); got != base {
			t.Fatalf("watchdog dump diverged at shards=%d:\n--- shards=1 ---\n%s\n--- shards=%d ---\n%s",
				n, base, n, got)
		}
	}
	if !strings.Contains(base, "watchdog report") {
		t.Fatalf("dump missing header:\n%s", base)
	}
}

// TestShardFuelExhaustionIdentical: budget exhaustion must fail at the
// identical instruction at any shard count (oversized batches fall back
// to the sequential path, so the failing event is exact).
func TestShardFuelExhaustionIdentical(t *testing.T) {
	forceDispatch(t)
	wp := compileSource(t, testprogs.Heavy[1].Src)
	run := func(shards int) string {
		cfg := DefaultConfig(2, 2)
		cfg.Shards = shards
		cfg.Fuel = 500
		_, err := Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
		if err == nil {
			t.Fatal("fuel 500 should exhaust")
		}
		return err.Error()
	}
	base := run(1)
	for _, n := range []int{2, 4} {
		if got := run(n); got != base {
			t.Fatalf("fuel error diverged at shards=%d: %q vs %q", n, base, got)
		}
	}
}

// TestShardArenaReuseAcrossShardCounts: one arena must be reusable across
// runs with different shard counts, each bit-identical to a fresh run.
func TestShardArenaReuseAcrossShardCounts(t *testing.T) {
	forceDispatch(t)
	wp := compileSource(t, testprogs.Heavy[1].Src)
	a := NewArena()
	var want Result
	for i, shards := range []int{1, 4, 2, 1, 4} {
		cfg := DefaultConfig(2, 2)
		cfg.Shards = shards
		res, err := a.Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res
		} else if !reflect.DeepEqual(want, res) {
			t.Fatalf("arena reuse at shards=%d diverged:\n%+v\n%+v", shards, want, res)
		}
	}
}
