// Package wavecache is the cycle-level WaveCache simulator: the MICRO 2003
// WaveScalar processor. It executes dataflow binaries on a grid of clusters
// of processing elements with:
//
//   - tag-matching input queues and the dataflow firing rule, one firing
//     per PE per cycle;
//   - dynamic instruction placement (a pluggable policy) with per-PE
//     instruction stores, LRU replacement, and a swap-in penalty when a
//     referenced instruction is not resident;
//   - the hierarchical operand network (pod bypass / domain / cluster /
//     mesh) with per-link bandwidth, via internal/noc;
//   - per-cluster store buffers implementing wave-ordered memory: requests
//     travel to the buffer that owns their dynamic wave, issue in program
//     order (internal/waveorder), and access that cluster's L1 in the
//     directory-coherent hierarchy (internal/mem);
//   - finite input queues modeled as an overflow penalty when a PE's
//     waiting-token population exceeds its queue capacity.
//
// The simulator is discrete-event: tokens and memory messages carry
// timestamps, PEs and store buffers serialize at one operation per cycle,
// and the run's cycle count is the latest timestamp processed.
//
// Allocation discipline: the inner loop is allocation-free in steady state.
// Events live in a pooled slab ordered by an index-based 4-ary min-heap
// (no interface boxing, records recycled on delivery); per-instruction
// operand matching, PE residency, context metadata, and wave-to-buffer
// bindings use internal/tagtable's open-addressed tables and slabs; memory
// requests and their reply-routing cookies recycle through freelists fed by
// the ordering engine's releaser hook. An Arena reuses all of this state —
// plus the network, memory hierarchy, and ordering engine — across runs.
// None of the pooling can perturb results: every pool hands out storage in
// an order that is a pure function of the (totally ordered) event schedule,
// and recycled records carry no state across uses.
package wavecache

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"wavescalar/internal/fault"
	"wavescalar/internal/isa"
	"wavescalar/internal/mem"
	"wavescalar/internal/noc"
	"wavescalar/internal/placement"
	"wavescalar/internal/profile"
	"wavescalar/internal/tagtable"
	"wavescalar/internal/trace"
	"wavescalar/internal/waveorder"
)

// MemoryMode selects the memory ordering strategy (experiment E4).
type MemoryMode int

const (
	// MemOrdered is wave-ordered memory: requests issue in program order as
	// the store buffers resolve their ordering chains, overlapping with
	// execution (the paper's contribution).
	MemOrdered MemoryMode = iota
	// MemSerial allows one memory operation in flight at a time, each
	// separated by the dependence-token round trip a dataflow machine
	// without ordering hardware would need to chain memory operations: the
	// conservative strawman wave-ordered memory replaces.
	MemSerial
	// MemIdeal is an oracle memory: values still obey program order, but
	// loads are timed as if ordering were free.
	MemIdeal
	// MemSpec is speculative transactional wave-ordered memory (the
	// Transactional WaveCache): requests stalled behind unresolved
	// wave-order predecessors access the cache speculatively on arrival,
	// stores buffering their values in a versioned store buffer; a
	// conflict detector validates each speculation at its program-order
	// commit point and squashes + replays the enclosing epoch (a group of
	// Config.SpecScope waves) on a violation. Architectural values always
	// commit in program order, so results are bit-identical to MemOrdered;
	// only timing changes. See DESIGN.md §12.
	MemSpec
)

func (m MemoryMode) String() string {
	switch m {
	case MemOrdered:
		return "wave-ordered"
	case MemSerial:
		return "serialized"
	case MemIdeal:
		return "ideal"
	case MemSpec:
		return "spec"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMemoryMode maps a memory-mode name (the CLI -mem flag and the
// serve API's memmode field) to its MemoryMode. The empty string selects
// the default wave-ordered mode.
func ParseMemoryMode(name string) (MemoryMode, error) {
	switch name {
	case "", "wave-ordered":
		return MemOrdered, nil
	case "serialized":
		return MemSerial, nil
	case "ideal":
		return MemIdeal, nil
	case "spec":
		return MemSpec, nil
	}
	return MemOrdered, fmt.Errorf("unknown memory mode %q (wave-ordered, serialized, ideal, spec)", name)
}

// Config parameterizes the machine.
type Config struct {
	Machine placement.Machine

	// PEStore is the per-PE instruction store capacity.
	PEStore int
	// SwapPenalty is charged when a referenced instruction must be brought
	// into its PE's store.
	SwapPenalty int64
	// InputQueue is the per-PE token queue capacity; tokens beyond it pay
	// OverflowPenalty (matching-table spill to memory).
	InputQueue      int
	OverflowPenalty int64

	// BufferWidth is how many memory operations a cluster's store buffer
	// can issue per cycle (the published L1 sustains 4 accesses/cycle).
	BufferWidth int64

	// MemMsgLatency is the one-way latency of a memory message between a
	// PE and its own cluster's store buffer (a dedicated path, cheaper
	// than the general operand network). Waves bind to store buffers by
	// first touch, so the common case is cluster-local.
	MemMsgLatency int64

	Net noc.Config
	Mem mem.SystemConfig

	MemMode MemoryMode

	// SpecScope is the transaction-epoch size under MemSpec, in
	// consecutive waves per context (0 = 1, the per-wave epoch of the
	// Transactional WaveCache's implicit transactions). Larger scopes
	// amortize epoch bookkeeping but squash more work per conflict
	// (experiment E15). Ignored by the other memory modes.
	SpecScope int

	// Fuel bounds fired instructions (0 = 200M).
	Fuel int64

	// MaxCycles bounds simulated time: the watchdog aborts with a
	// diagnostic dump when an event's timestamp exceeds it (0 = unbounded).
	MaxCycles int64

	// Cancel, when non-nil, lets the caller abort a run in flight: the
	// event loop polls it every cancelPollInterval events and, once it is
	// closed, returns a *fault.FaultError of KindCancelled. This is how a
	// request deadline or a server drain reaches into a running
	// simulation (pass ctx.Done()). Cancellation is results-neutral: a
	// run that completes without observing Cancel is bit-identical to one
	// with Cancel nil, and an Arena aborted by Cancel is fully reusable —
	// the next Run resets it exactly as it would after a fault abort.
	Cancel <-chan struct{}

	// Faults configures deterministic fault injection; the zero value is a
	// perfect machine and leaves every result bit-identical to a build
	// without the fault subsystem. When Faults.DefectRate > 0 the caller
	// must install fault.DefectMap(Faults, NumPEs) as Machine.Defective
	// before constructing the placement policy, so placement and simulator
	// agree on which PEs are dead.
	Faults fault.Config

	// Tracer, when non-nil, records this run's structured trace (counters
	// plus, if configured, the event stream). nil disables tracing at zero
	// cost and leaves Results bit-identical to a tracer-free build. Like a
	// placement policy, a Tracer belongs to one run: never share one
	// across concurrent Runs.
	Tracer *trace.Tracer

	// Metrics, when non-nil, receives the run's trace counters at
	// successful completion (via a private metrics-only tracer when Tracer
	// is nil). The aggregate is thread-safe, so concurrent experiment
	// cells may share one.
	Metrics *trace.Aggregate

	// Shards partitions the machine's clusters into independent event-queue
	// shards: each shard owns a contiguous cluster range, its PEs' operand
	// tables, and an operand slab, and batches of same-timestamp
	// cluster-local events execute on per-shard workers between
	// coordinator-run barriers. 0 or 1 selects the sequential engine;
	// values above the cluster count clamp to it. Results are bit-identical
	// at every setting — sharding changes scheduling, never ordering (see
	// DESIGN.md §10) — so the knob is purely a performance lever. Runs with
	// fault injection or an event-stream Tracer consume pseudo-random and
	// trace streams in global event order and therefore pin to the
	// sequential engine regardless of Shards.
	Shards int
}

// DefaultConfig returns the published WaveScalar processor parameters on a
// w x h cluster grid.
func DefaultConfig(w, h int) Config {
	m := placement.DefaultMachine(w, h)
	return Config{
		Machine:         m,
		PEStore:         64,
		SwapPenalty:     32,
		InputQueue:      16,
		OverflowPenalty: 10,
		BufferWidth:     4,
		MemMsgLatency:   2,
		Net:             noc.DefaultConfig(w, h),
		Mem:             mem.DefaultSystemConfig(m.NumClusters()),
	}
}

// Result reports a simulation.
type Result struct {
	Value  int64
	Fired  uint64
	Cycles int64
	IPC    float64

	Tokens    uint64
	Swaps     uint64
	Overflows uint64
	PEsUsed   int

	Net    noc.Stats
	Mem    mem.Stats
	Order  waveorder.Stats
	Faults fault.Stats
	Spec   SpecStats
}

// cancelPollInterval is how many events the run loop processes between
// polls of Config.Cancel: small enough that cancellation lands within
// microseconds of wall-clock, large enough that the poll never shows up in
// a profile.
const cancelPollInterval = 1024

// event kinds.
type evKind uint8

const (
	evToken evKind = iota
	evFire
	evMemArrive
	evSpecProbe // MemSpec deferred-speculation probe (spec.go)
)

type event struct {
	time int64
	kind evKind

	// evToken / evFire payload.
	fn   isa.FuncID
	dest isa.Dest
	tag  isa.Tag
	val  int64    // evSpecProbe reuses this for the packed (gen, cookie)
	vals [3]int64 // evFire operands

	// evMemArrive / evSpecProbe payload. A probe's req pointer is only
	// dereferenced after its cookie generation check proves the request
	// is still buffered in the ordering engine.
	req *waveorder.Request
}

// heapEnt is one heap slot: the ordering key (time, seq) is stored inline
// so comparisons never load the event slab — sift paths touch only the
// contiguous heap array instead of chasing indices into cold slab records.
type heapEnt struct {
	time int64
	seq  uint64
	idx  int32
}

func entLess(a, b heapEnt) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// eventQueue is a pooled priority queue: events live in a slab addressed by
// index (recycled through a freelist when delivered), and a 4-ary min-heap
// of inline (time, seq) keys orders them. Compared to container/heap this
// drops the per-push interface boxing and per-event allocation, and the
// wider fan-out halves sift-down depth on the simulator's deep queues.
// The tiebreak seq comes from the run-wide counter (sim.seq), shared by
// every shard's queue, so (time, seq) is a strict total order across the
// whole run; ANY correct heap — and any assignment of events to shard
// queues — yields the same global pop sequence.
type eventQueue struct {
	slab []event
	free []int32
	heap []heapEnt

	// Calendar-wheel mode (sequential engine only, never under MemIdeal):
	// near-future events land in a ring of per-cycle FIFO buckets and the
	// heap holds only the far-future overflow, making push and pop O(1).
	// Exactness argument: the run-wide seq stamp is monotone in push
	// order, so a bucket's FIFO *is* its (time, seq) order; and an
	// overflow event was pushed before the window covered its cycle —
	// i.e. before every direct push to that cycle's bucket — so draining
	// the heap first at each cycle, then the bucket, replays the heap
	// engine's pop sequence byte for byte. MemIdeal is excluded because
	// its oracle replies are the one push that can be back-dated below
	// the drain cursor.
	wheel   bool
	cur     int64     // drain cursor: the cycle currently being popped
	n       int       // events resident in buckets
	bhead   int       // consumed prefix of the current bucket
	buckets [][]int32 // ring of slab-index FIFOs, slot = cycle & wheelMask
	bmap    []uint64  // non-empty bitmap over the ring
}

// wheelSize is the ring span in cycles: network hops, penalties, and cache
// misses almost always land within it, so overflow pushes are rare (and
// still exact when they happen).
const (
	wheelBits = 12
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

func (q *eventQueue) reset() {
	q.slab = q.slab[:0]
	q.free = q.free[:0]
	q.heap = q.heap[:0]
	if q.n != 0 || q.cur != 0 || q.bhead != 0 {
		for w, word := range q.bmap {
			for word != 0 {
				s := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				q.buckets[s] = q.buckets[s][:0]
			}
			q.bmap[w] = 0
		}
		q.n, q.cur, q.bhead = 0, 0, 0
	}
}

// setWheel selects the queue implementation for this run; the ring is
// allocated once and reused across runs.
func (q *eventQueue) setWheel(on bool) {
	q.wheel = on
	if on && q.buckets == nil {
		q.buckets = make([][]int32, wheelSize)
		q.bmap = make([]uint64, wheelSize/64)
	}
}

func (q *eventQueue) len() int { return len(q.heap) + q.n }

// alloc returns the index of an event record. Recycled records are NOT
// zeroed: every push site stamps all the fields its event kind reads
// (evToken never reads vals/req, evFire never reads val/req, evMemArrive
// reads only req), so stale bytes from a prior tenant are never observed
// and the hot path skips a per-event memclr.
func (q *eventQueue) alloc() int32 {
	if n := len(q.free); n > 0 {
		i := q.free[n-1]
		q.free = q.free[:n-1]
		return i
	}
	q.slab = append(q.slab, event{})
	return int32(len(q.slab) - 1)
}

// release recycles a delivered event's slab index.
func (q *eventQueue) release(i int32) { q.free = append(q.free, i) }

// push enqueues slab index i under the key (t, seq); the caller stamps seq
// from the run-wide counter. In wheel mode events within the ring window
// append to their cycle's FIFO; everything else (far future, plus the
// defensively-handled past) rides the heap.
func (q *eventQueue) push(i int32, t int64, seq uint64) {
	if q.wheel {
		if d := t - q.cur; d >= 0 && d < wheelSize {
			s := int(t) & wheelMask
			b := q.buckets[s]
			if len(b) == 0 {
				q.bmap[s>>6] |= 1 << (uint(s) & 63)
			}
			q.buckets[s] = append(b, i)
			q.n++
			return
		}
	}
	q.heapPush(i, t, seq)
}

// heapPush sifts slab index i into the heap under the key (t, seq).
func (q *eventQueue) heapPush(i int32, t int64, seq uint64) {
	e := heapEnt{time: t, seq: seq, idx: i}
	h := append(q.heap, e)
	q.heap = h
	c := len(h) - 1
	for c > 0 {
		p := (c - 1) / 4
		if !entLess(e, h[p]) {
			break
		}
		h[c] = h[p]
		c = p
	}
	h[c] = e
}

// pop removes and returns the minimum event's slab index. The caller must
// ensure the queue is non-empty, copy the event out before the next alloc
// (growth may move the slab), and release the index when done.
func (q *eventQueue) pop() int32 {
	if q.wheel {
		return q.wheelPop()
	}
	return q.heapPop()
}

// wheelPop drains the wheel in exact (time, seq) order: at each cycle,
// overflow-heap entries first (they were pushed before any of the cycle's
// direct bucket entries, so their seq stamps are strictly smaller), then
// the bucket FIFO; when the cycle is dry the cursor jumps straight to the
// next non-empty bucket or the heap's front time, whichever is earlier.
func (q *eventQueue) wheelPop() int32 {
	for {
		if len(q.heap) > 0 && q.heap[0].time <= q.cur {
			return q.heapPop()
		}
		s := int(q.cur) & wheelMask
		b := q.buckets[s]
		if q.bhead < len(b) {
			idx := b[q.bhead]
			q.bhead++
			q.n--
			return idx
		}
		// Cycle exhausted: retire the bucket and advance the cursor.
		q.buckets[s] = b[:0]
		q.bmap[s>>6] &^= 1 << (uint(s) & 63)
		q.bhead = 0
		nt := int64(-1)
		if d := q.nextBucketDelta(); d > 0 {
			nt = q.cur + int64(d)
		}
		if len(q.heap) > 0 && (nt < 0 || q.heap[0].time < nt) {
			nt = q.heap[0].time
		}
		q.cur = nt
	}
}

// nextBucketDelta scans the non-empty bitmap for the ring distance
// (1..wheelSize-1) from the cursor's slot to the nearest occupied bucket
// strictly after it, or -1 when the ring is empty. The cursor's own slot
// is always cleared before the scan, so a full wrap terminates.
func (q *eventQueue) nextBucketDelta() int {
	cs := int(q.cur) & wheelMask
	for d := 1; d < wheelSize; {
		s := (cs + d) & wheelMask
		word := q.bmap[s>>6] >> (uint(s) & 63)
		if word != 0 {
			return d + bits.TrailingZeros64(word)
		}
		d += 64 - int(uint(s)&63)
	}
	return -1
}

// heapPop removes and returns the heap minimum's slab index.
func (q *eventQueue) heapPop() int32 {
	top := q.heap[0].idx
	n := len(q.heap) - 1
	hole := q.heap[n]
	h := q.heap[:n]
	q.heap = h
	if n == 0 {
		return top
	}
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		me := h[first]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entLess(h[c], me) {
				m, me = c, h[c]
			}
		}
		if !entLess(me, hole) {
			break
		}
		h[i] = me
		i = m
	}
	h[i] = hole
	return top
}

// operands is a per-tag matching entry.
type operands struct {
	vals [3]int64
	have uint8
}

// peState is one processing element. The residency set maps packed
// instruction refs (instrKey) to nodes of an intrusive recency list, so
// both the hit path (move to front) and the eviction victim (the tail)
// are O(1); recency order is total, so the victim cannot depend on any
// iteration order.
type peState struct {
	free     int64 // next cycle the ALU can fire
	resident tagtable.Table
	lru      peLRU
	waiting  int // tokens delivered but not yet consumed by a firing
	used     bool
}

// peLRU is the doubly-linked recency list over one PE's resident
// instructions: most recently fired at head, eviction victim at tail.
// Nodes live in a reusable slab with an intrusive free list (next doubles
// as the free link), keeping the steady state allocation-free.
type peLRU struct {
	nodes []lruNode
	head  int32
	tail  int32
	free  int32
}

type lruNode struct {
	key  uint64
	prev int32
	next int32
}

func (l *peLRU) reset() {
	l.nodes = l.nodes[:0]
	l.head, l.tail, l.free = -1, -1, -1
}

// touch moves node i to the head.
func (l *peLRU) touch(i int32) {
	if l.head == i {
		return
	}
	n := &l.nodes[i]
	l.nodes[n.prev].next = n.next
	if n.next >= 0 {
		l.nodes[n.next].prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = -1, l.head
	l.nodes[l.head].prev = i
	l.head = i
}

// push inserts a new head node and returns its index.
func (l *peLRU) push(key uint64) int32 {
	i := l.free
	if i >= 0 {
		l.free = l.nodes[i].next
	} else {
		l.nodes = append(l.nodes, lruNode{})
		i = int32(len(l.nodes) - 1)
	}
	l.nodes[i] = lruNode{key: key, prev: -1, next: l.head}
	if l.head >= 0 {
		l.nodes[l.head].prev = i
	} else {
		l.tail = i
	}
	l.head = i
	return i
}

// popTail unlinks the least recently used node and returns its key.
func (l *peLRU) popTail() uint64 {
	i := l.tail
	n := &l.nodes[i]
	l.tail = n.prev
	if l.tail >= 0 {
		l.nodes[l.tail].next = -1
	} else {
		l.head = -1
	}
	key := n.key
	n.next = l.free
	l.free = i
	return key
}

type ctxInfo struct {
	callerFunc isa.FuncID
	callerTag  isa.Tag
	retPad     isa.InstrID
}

// memCookie carries reply routing and timing through the ordering engine.
type memCookie struct {
	fn     isa.FuncID
	id     isa.InstrID
	tag    isa.Tag
	fireAt int64
	arrive int64 // cycle the request reached its store buffer
	pe     int
	buf    int // store-buffer cluster bound at submit time

	// Speculation state (MemSpec only; zero otherwise). spec classifies
	// how the request executed ahead of its commit point, specDone is the
	// speculative completion time, specSnap the conflict-detector
	// snapshot a load validates against, specUID the forwarding store's
	// uid (loads) or the request's own versioned-store-buffer entry
	// (stores), specEp the enclosing epoch's slab index. gen is the
	// cookie's liveness stamp: a deferred-speculation probe only acts
	// when the generation it captured at arrival still matches (issueMem
	// zeroes it), so a probe can never touch a recycled cookie.
	spec     uint8
	gen      uint32
	specDone int64
	specSnap uint32
	specUID  uint32
	specEp   int32
}

// tagKey packs a dynamic tag into a table key.
func tagKey(t isa.Tag) uint64 { return uint64(t.Ctx)<<32 | uint64(t.Wave) }

// instrKey packs a static instruction reference into a table key.
func instrKey(fn isa.FuncID, id isa.InstrID) uint64 {
	return uint64(uint32(fn))<<32 | uint64(uint32(id))
}

type sim struct {
	prog *isa.Program
	pol  placement.Policy
	cfg  Config

	net    *noc.Network
	memsys *mem.System
	engine *waveorder.Engine
	clock  func() int64 // stable closure handed to the engine's tracer

	// The sharded event system: one queue per shard, all ordered by the
	// run-wide (time, seq) key, so the global pop order — and therefore
	// every result — is independent of how events are distributed across
	// queues. nsh == 1 is the sequential engine. shardOf is a contiguous
	// partition of clusters.
	qs      []eventQueue
	seq     uint64
	nsh     int
	shardOf []int32 // cluster -> shard
	// backdate marks configurations whose memory path can schedule an
	// event earlier than the timestamp being processed (MemIdeal replies
	// are timed from the PE firing, not the issue). The parallel engine
	// must then guard every batch: a back-dated child preempts the rest
	// of the batch in sequential pop order (see runPar's truncation).
	// While such a batch is in flight, batchT holds its timestamp and the
	// push paths raise preempt on any earlier child — one compare per
	// push, nothing on the common path.
	backdate bool
	preempt  bool
	batchT   int64

	now  int64
	maxT int64

	// homes caches placement: global instruction index -> home PE, -1
	// unresolved. Entries fill lazily through the policy — preserving the
	// dynamic policies' first-reference packing order exactly — and are
	// wiped wholesale on a mid-run PE death so survivors re-resolve
	// against the policy's (unchanged) memo and migrants re-place in
	// first-reference-after-death order, just as the uncached lookup did.
	// locs caches Machine.Loc, which is a pure function of the geometry.
	homes []int32
	locs  []noc.Loc

	// opstore is the per-static-instruction operand-matching table: packed
	// tag -> packed (shard, slab index) of the partially assembled tuple.
	opstore []tagtable.Table
	// opSlabs is the per-shard operand slab; handles carry their shard
	// (packOp) so an entry outlives a mid-run migration to another shard's
	// clusters.
	opSlabs   []tagtable.Slab[operands]
	instrBase []int
	pes       []peState
	bufBusy   []bufState // per-cluster store-buffer issue bandwidth
	serialEnd int64      // MemSerial: completion of the in-flight operation

	memImage []int64
	// ctxTab maps live context ids to ctxSlab indices holding call metadata.
	ctxTab  tagtable.Table
	ctxSlab tagtable.Slab[ctxInfo]
	nextCtx uint32

	// waveBuf records each dynamic wave's store-buffer cluster (bound at
	// first touch), keyed by packed tag.
	waveBuf tagtable.Table

	// ckSlab pools memCookies; requests carry slab indices, not pointers,
	// so cookies never box. reqFree pools the Request records themselves,
	// refilled by the ordering engine's releaser the moment each request
	// has issued.
	ckSlab  tagtable.Slab[memCookie]
	reqFree []*waveorder.Request
	// ckGen stamps each cookie with a run-unique generation (MemSpec
	// probe liveness; see memCookie.gen). Memory fires are coordinator-
	// owned, so the counter needs no synchronization.
	ckGen uint32

	// spec is the MemSpec speculation subsystem (spec.go): versioned
	// store buffer, per-epoch address sets, conflict detector, thrash
	// fallback. Quiescent in every other mode.
	spec specState

	fuel   int64
	done   bool
	result int64

	// Fault machinery (all nil/false on a perfect machine).
	inj    *fault.Injector
	killed bool  // the scheduled mid-run PE death has happened
	memErr error // unrecoverable fault raised inside the issueMem callback

	// tr is the run's tracer (nil = disabled; every emission is either a
	// nil-safe call or guarded so the disabled path costs one branch).
	tr *trace.Tracer

	// cnt is the run's live execution counters. The sequential engine and
	// the coordinator update it directly; shard workers count privately
	// and merge at each batch barrier, so it is current whenever a
	// diagnostic or cancellation message reads it.
	cnt shardCounters
	res Result

	// par is the parallel batch runtime (shard.go); nil until a run with
	// nsh > 1 needs it. stage, while a dispatched batch is in flight,
	// redirects the coordinator's event pushes into the staging buffer so
	// children merge in deterministic (position, production) order.
	par   *shardRT
	stage *stageBuf
}

// Arena is a reusable simulator: it owns the complete mutable memory image
// of a run (event slab and heap, operand tables, PE state, memory image,
// network, cache hierarchy, ordering engine, every freelist) and Run resets
// it in place, so a caller sweeping many configurations — an experiment
// harness — pays the simulator's allocations once per worker instead of
// once per cell. Backing arrays are kept at their high-water mark across
// runs; a shape change (different grid, different program) resizes them and
// subsequent runs at that shape are allocation-free again.
//
// An Arena is not safe for concurrent use and must not be copied after
// first use (internal closures capture its address). Results are
// bit-identical to the package-level Run: reuse only recycles storage,
// never state.
type Arena struct {
	s sim
}

// NewArena returns an empty arena; the first Run sizes it.
func NewArena() *Arena { return &Arena{} }

// Run simulates a program to completion under a placement policy, reusing
// the arena's storage. The contract matches the package-level Run.
func (a *Arena) Run(p *isa.Program, pol placement.Policy, cfg Config) (Result, error) {
	if err := a.s.reset(p, pol, cfg); err != nil {
		return Result{}, err
	}
	return a.s.run()
}

// Run simulates a program to completion under a placement policy.
//
// Concurrency contract: Run treats p as strictly read-only — the simulator
// takes interior pointers into p.Funcs[*].Instrs for speed but never
// writes through them, and its mutable state (memory image, operand
// stores, PE/buffer state, the ordering engine) is private to the call.
// Any number of Runs may therefore share one *isa.Program concurrently
// (exercised under the race detector by TestConcurrentRunsShareProgram).
// The placement policy IS mutated during the run: construct a fresh Policy
// per call, with any seed derived deterministically per cell, and never
// share one across goroutines. Identical (p, policy construction, cfg)
// inputs produce bit-identical Results.
func Run(p *isa.Program, pol placement.Policy, cfg Config) (Result, error) {
	return NewArena().Run(p, pol, cfg)
}

// RunWithMemory is Run but also returns the final memory image, for the
// differential test suites.
func RunWithMemory(p *isa.Program, pol placement.Policy, cfg Config) (Result, []int64, error) {
	a := NewArena()
	res, err := a.Run(p, pol, cfg)
	if err != nil {
		return Result{}, nil, err
	}
	return res, a.s.memImage, nil
}

// reset rewinds the simulator to boot state for (p, pol, cfg), reusing
// every backing array whose shape still fits. It performs exactly the
// validation newSim used to, in the same order, so error behaviour is
// unchanged.
func (s *sim) reset(p *isa.Program, pol placement.Policy, cfg Config) error {
	if cfg.Fuel == 0 {
		cfg.Fuel = 200_000_000
	}
	if s.net == nil {
		net, err := noc.New(cfg.Net)
		if err != nil {
			return err
		}
		s.net = net
	} else if err := s.net.Reset(cfg.Net); err != nil {
		return err
	}
	if s.memsys == nil {
		ms, err := mem.NewSystem(cfg.Mem)
		if err != nil {
			return err
		}
		s.memsys = ms
	} else if err := s.memsys.Reset(cfg.Mem); err != nil {
		return err
	}

	s.prog, s.pol, s.cfg = p, pol, cfg
	s.memImage = p.FillMemory(s.memImage)

	// Shard count: clamp to the cluster grid; fault injection and
	// event-stream tracing consume their streams in global event order, so
	// those runs pin to the sequential engine (results are identical
	// either way — sharding never alters them).
	nc := cfg.Machine.NumClusters()
	nsh := cfg.Shards
	if nsh > nc {
		nsh = nc
	}
	if nsh < 1 || cfg.Faults.Enabled() || cfg.Tracer != nil {
		nsh = 1
	}
	if shardDispatchMin >= dispatchOff {
		// Worker dispatch can never trigger (single-hardware-thread host):
		// the sharded loop would replay the identical global (time, seq)
		// order with batch bookkeeping as pure overhead, so collapse to
		// the sequential engine. Shard-count invariance is still enforced
		// with dispatch forced on (SetShardDispatchMin / forceDispatch).
		nsh = 1
	}
	s.nsh = nsh
	s.backdate = cfg.MemMode == MemIdeal
	s.preempt = false
	s.batchT = math.MinInt64
	if nsh <= cap(s.qs) {
		s.qs = s.qs[:nsh]
	} else {
		grown := make([]eventQueue, nsh)
		copy(grown, s.qs[:cap(s.qs)])
		s.qs = grown
	}
	for i := range s.qs {
		s.qs[i].reset()
		s.qs[i].setWheel(false)
	}
	// The sequential engine drains its single queue through the calendar
	// wheel: O(1) push/pop with the heap's exact (time, seq) pop order
	// (see eventQueue). MemIdeal stays on the heap — its oracle replies
	// are the one push that can land behind the drain cursor.
	if nsh == 1 && !s.backdate {
		s.qs[0].setWheel(true)
	}
	if nsh <= cap(s.opSlabs) {
		s.opSlabs = s.opSlabs[:nsh]
	} else {
		grown := make([]tagtable.Slab[operands], nsh)
		copy(grown, s.opSlabs[:cap(s.opSlabs)])
		s.opSlabs = grown
	}
	for i := range s.opSlabs {
		s.opSlabs[i].Reset()
	}
	if nc <= cap(s.shardOf) {
		s.shardOf = s.shardOf[:nc]
	} else {
		s.shardOf = make([]int32, nc)
	}
	for c := 0; c < nc; c++ {
		s.shardOf[c] = int32(c * nsh / nc)
	}

	s.seq = 0
	s.now, s.maxT = 0, 0
	s.serialEnd = 0
	s.nextCtx = 1
	s.fuel = cfg.Fuel
	s.done, s.result = false, 0
	s.inj, s.killed, s.memErr = nil, false, nil
	s.cnt = shardCounters{}
	s.res = Result{}

	s.ctxTab.Reset()
	s.ctxSlab.Reset()
	s.waveBuf.Reset()
	s.ckSlab.Reset()
	s.ckGen = 0

	s.tr = cfg.Tracer
	if s.tr == nil && cfg.Metrics != nil {
		// Metrics-only tracing: counters without an event stream.
		s.tr = trace.New(trace.Config{})
	}
	s.net.AttachTracer(s.tr)
	if cfg.Faults.Enabled() {
		inj, err := fault.NewInjector(cfg.Faults)
		if err != nil {
			return err
		}
		s.inj = inj
		s.net.AttachFaults(inj)
		inj.AttachTracer(s.tr)
		if cfg.Faults.DefectRate > 0 && cfg.Machine.Defective == nil {
			return &fault.FaultError{Kind: fault.KindConfig, PE: -1,
				Detail: "DefectRate set but Machine.Defective is nil; install fault.DefectMap before building the placement policy"}
		}
		if cfg.Faults.KillCycle > 0 && (cfg.Faults.KillPE < 0 || cfg.Faults.KillPE >= cfg.Machine.NumPEs()) {
			return &fault.FaultError{Kind: fault.KindConfig, PE: cfg.Faults.KillPE,
				Detail: fmt.Sprintf("kill PE outside machine (0..%d)", cfg.Machine.NumPEs()-1)}
		}
		s.res.Faults.DefectivePEs = fault.CountDefects(cfg.Machine.Defective)
	}

	s.instrBase = s.instrBase[:0]
	total := 0
	for i := range p.Funcs {
		s.instrBase = append(s.instrBase, total)
		total += len(p.Funcs[i].Instrs)
	}
	// Resize-then-reset: the reset loops run after the new lengths are
	// established, so they also scrub any stale records a reslice-up just
	// exposed from the capacity region.
	if total <= cap(s.opstore) {
		s.opstore = s.opstore[:total]
	} else {
		s.opstore = make([]tagtable.Table, total)
	}
	for i := range s.opstore {
		s.opstore[i].Reset()
	}
	if total <= cap(s.homes) {
		s.homes = s.homes[:total]
	} else {
		s.homes = make([]int32, total)
	}
	for i := range s.homes {
		s.homes[i] = -1
	}
	npe := cfg.Machine.NumPEs()
	if npe <= cap(s.locs) {
		s.locs = s.locs[:npe]
	} else {
		s.locs = make([]noc.Loc, npe)
	}
	for i := range s.locs {
		s.locs[i] = cfg.Machine.Loc(i)
	}
	if npe <= cap(s.pes) {
		s.pes = s.pes[:npe]
	} else {
		s.pes = make([]peState, npe)
	}
	for i := range s.pes {
		ps := &s.pes[i]
		ps.free, ps.waiting, ps.used = 0, 0, false
		ps.resident.Reset()
		ps.lru.reset()
	}
	if nc <= cap(s.bufBusy) {
		s.bufBusy = s.bufBusy[:nc]
		clear(s.bufBusy)
	} else {
		s.bufBusy = make([]bufState, nc)
	}

	if s.engine == nil {
		s.engine = waveorder.NewEngine(0, s.issueMem)
		s.engine.SetReleaser(func(r *waveorder.Request) { s.reqFree = append(s.reqFree, r) })
		s.clock = func() int64 { return s.now }
	} else {
		s.engine.Reset(0)
	}
	s.engine.AttachTracer(s.tr, s.clock)
	if cfg.MemMode == MemSpec {
		s.spec.reset(cfg.SpecScope)
		s.engine.SetRetireHooks(s.specWaveRetire, s.specCtxEnd)
	} else {
		// A reused Arena may carry counters from an earlier MemSpec run;
		// Result.Spec must read zero outside spec mode.
		s.spec.st = SpecStats{}
		s.engine.SetRetireHooks(nil, nil)
	}
	return nil
}

// allocReq takes a request record from the pool (or allocates one). The
// caller overwrites every field.
func (s *sim) allocReq() *waveorder.Request {
	if n := len(s.reqFree); n > 0 {
		r := s.reqFree[n-1]
		s.reqFree = s.reqFree[:n-1]
		return r
	}
	return &waveorder.Request{}
}

func (s *sim) run() (Result, error) {
	// Boot: context 0 trigger lands on the entry function's pad 0. The
	// entry's home is not resolved yet, so the token boards queue 0; queue
	// membership never affects ordering (the (time, seq) key is global).
	mi := s.ctxSlab.Alloc()
	*s.ctxSlab.At(mi) = ctxInfo{callerFunc: isa.NoFunc, retPad: isa.NoInstr}
	s.ctxTab.Put(0, int64(mi))
	entry := s.prog.Entry
	s.pushToken(0, 0, entry,
		isa.Dest{Instr: s.prog.Funcs[entry].Params[0], Port: 0},
		isa.Tag{Ctx: 0, Wave: 0}, 0)

	var err error
	if s.nsh > 1 {
		err = s.runPar()
	} else {
		err = s.runSeq()
	}
	if err != nil {
		return Result{}, err
	}
	if !s.done {
		return Result{}, &fault.FaultError{Kind: fault.KindWatchdog, PE: -1, Cycle: s.maxT,
			Detail: "deadlock — event queue drained without program return\n" + s.diagnose()}
	}

	s.res.Value = s.result
	s.res.Fired = s.cnt.fired
	s.res.Tokens = s.cnt.tokens
	s.res.Swaps = s.cnt.swaps
	s.res.Overflows = s.cnt.overflows
	s.res.Cycles = s.maxT + 1
	if s.res.Cycles > 0 {
		s.res.IPC = float64(s.res.Fired) / float64(s.res.Cycles)
	}
	s.res.Net = s.net.Stats()
	s.res.Mem = s.memsys.Stats()
	s.res.Order = s.engine.Stats()
	s.res.Spec = s.spec.st
	if s.nsh > 1 && s.par != nil {
		// Fold the shard workers' network stats and metrics-only tracers
		// into the run's; every merge is a commutative sum or max, so the
		// folded result is invariant to shard count and merge order.
		for _, w := range s.par.workers {
			s.res.Net.Add(w.net)
			s.tr.Merge(w.tr)
		}
	}
	if s.inj != nil {
		st := s.inj.Stats()
		s.res.Faults.MemDrops = st.MemDrops
		s.res.Faults.MemRetries = st.MemRetries
		s.res.Faults.MemRetryWait = st.MemRetryWait
		s.res.Faults.DelayedTokens = st.DelayedTokens
	}
	for i := range s.pes {
		if s.pes[i].used {
			s.res.PEsUsed++
		}
	}
	s.tr.Finish(s.res.Cycles)
	s.cfg.Metrics.Add(s.tr)
	return s.res, nil
}

// runSeq is the sequential engine: one queue, events processed strictly in
// (time, seq) order.
func (s *sim) runSeq() error {
	// Cancellation poll state: checking a channel per event would slow the
	// hot path, so the loop looks at Cancel once every cancelPollInterval
	// events — a few microseconds of cancellation latency, zero cost when
	// Cancel is nil.
	cancelLeft := cancelPollInterval
	cancel := s.cfg.Cancel
	maxCycles := s.cfg.MaxCycles
	killAt := s.cfg.Faults.KillCycle
	q := &s.qs[0]
	for q.len() > 0 {
		if cancel != nil {
			cancelLeft--
			if cancelLeft <= 0 {
				cancelLeft = cancelPollInterval
				select {
				case <-cancel:
					return s.cancelErr()
				default:
				}
			}
		}
		idx := q.pop()
		// Copy the event out before releasing: processing it pushes new
		// events, and slab growth would move the storage under a pointer.
		e := q.slab[idx]
		q.release(idx)
		if killAt > 0 && !s.killed && e.time >= killAt {
			if err := s.killPE(); err != nil {
				return err
			}
		}
		if maxCycles > 0 && e.time > maxCycles {
			return s.watchdogErr(e.time)
		}
		if e.kind == evSpecProbe && !s.specProbeLive(&e) {
			// A probe whose request already issued is a no-op; dropping
			// it before the clock bookkeeping keeps dead probes queued
			// past the last real event from padding the cycle count.
			continue
		}
		if e.time > s.now {
			s.now = e.time
		}
		if e.time > s.maxT {
			s.maxT = e.time
		}
		if err := s.processEvent(&e); err != nil {
			return err
		}
	}
	return nil
}

// processEvent executes one event on the coordinator with direct pushes:
// the sequential engine's dispatch, also used by the parallel engine for
// coordinator-owned events and for batches too small to farm out.
func (s *sim) processEvent(e *event) error {
	switch e.kind {
	case evToken:
		pe := s.homePE(e.fn, e.dest.Instr)
		sh := s.shardFor(pe)
		fireAt, vals, fire, err := s.deliverAt(e, pe, sh, &s.cnt, s.tr)
		if err != nil || !fire {
			return err
		}
		s.pushFire(sh, fireAt, e.fn, e.dest, e.tag, vals)
		return nil
	case evFire:
		return s.fire(e)
	case evMemArrive:
		if s.cfg.MemMode == MemSpec {
			// The arrival either issues synchronously inside Submit (its
			// ordering chain was already resolved — issueMem clears the
			// marker) or buffers behind unresolved predecessors, in which
			// case a deferred-speculation probe is scheduled: the request
			// speculates only if it is still waiting specDelay cycles
			// from now (spec.go).
			s.spec.arriving = int32(e.req.Cookie)
			req := e.req
			if err := s.engine.Submit(req); err != nil {
				return err
			}
			if s.spec.arriving >= 0 {
				s.pushSpecProbe(s.now+specDelay, req)
				s.spec.arriving = -1
			}
			return s.memErr
		}
		if err := s.engine.Submit(e.req); err != nil {
			return err
		}
		return s.memErr
	default: // evSpecProbe
		if s.specProbeLive(e) {
			s.specArrival(e.req)
		}
		return nil
	}
}

// specProbeLive reports whether a deferred-speculation probe's request is
// still buffered in the ordering engine: its cookie generation must match
// the one captured at arrival (issueMem zeroes it at issue, and slab
// reuse re-stamps it with a fresh generation).
func (s *sim) specProbeLive(e *event) bool {
	return s.ckSlab.At(int32(uint32(uint64(e.val)))).gen == uint32(uint64(e.val)>>32)
}

func (s *sim) cancelErr() error {
	return &fault.FaultError{Kind: fault.KindCancelled, PE: -1, Cycle: s.now,
		Detail: fmt.Sprintf("run cancelled by caller (t=%d, %d events queued, %d instructions fired)",
			s.now, s.qlen(), s.cnt.fired)}
}

func (s *sim) watchdogErr(t int64) error {
	return &fault.FaultError{Kind: fault.KindWatchdog, PE: -1, Cycle: t,
		Detail: fmt.Sprintf("no completion within %d cycles\n%s", s.cfg.MaxCycles, s.diagnose())}
}

// qlen is the total number of queued events across every shard.
func (s *sim) qlen() int {
	n := 0
	for i := range s.qs {
		n += s.qs[i].len()
	}
	return n
}

func (s *sim) pushToken(sh int32, t int64, fn isa.FuncID, d isa.Dest, tag isa.Tag, val int64) {
	if s.backdate && t < s.batchT {
		s.preempt = true
	}
	if st := s.stage; st != nil {
		st.evs = append(st.evs, stagedEv{pos: st.pos, shard: sh,
			e: event{time: t, kind: evToken, fn: fn, dest: d, tag: tag, val: val}})
		return
	}
	q := &s.qs[sh]
	i := q.alloc()
	e := &q.slab[i]
	e.time, e.kind, e.fn, e.dest, e.tag, e.val = t, evToken, fn, d, tag, val
	q.push(i, t, s.seq)
	s.seq++
}

func (s *sim) pushFire(sh int32, t int64, fn isa.FuncID, d isa.Dest, tag isa.Tag, vals [3]int64) {
	if s.backdate && t < s.batchT {
		s.preempt = true
	}
	if st := s.stage; st != nil {
		st.evs = append(st.evs, stagedEv{pos: st.pos, shard: sh,
			e: event{time: t, kind: evFire, fn: fn, dest: d, tag: tag, vals: vals}})
		return
	}
	q := &s.qs[sh]
	i := q.alloc()
	e := &q.slab[i]
	e.time, e.kind, e.fn, e.dest, e.tag, e.vals = t, evFire, fn, d, tag, vals
	q.push(i, t, s.seq)
	s.seq++
}

func (s *sim) pushMem(sh int32, t int64, req *waveorder.Request) {
	if s.backdate && t < s.batchT {
		s.preempt = true
	}
	if st := s.stage; st != nil {
		st.evs = append(st.evs, stagedEv{pos: st.pos, shard: sh,
			e: event{time: t, kind: evMemArrive, req: req}})
		return
	}
	q := &s.qs[sh]
	i := q.alloc()
	e := &q.slab[i]
	e.time, e.kind, e.req = t, evMemArrive, req
	q.push(i, t, s.seq)
	s.seq++
}

// pushSpecProbe schedules a deferred-speculation probe for a buffered
// request (MemSpec only, so never in a back-dating configuration). Queue
// membership never affects ordering, so probes always board queue 0; the
// packed (generation, cookie) rides the val field.
func (s *sim) pushSpecProbe(t int64, req *waveorder.Request) {
	ci := int32(req.Cookie)
	pv := int64(uint64(s.ckSlab.At(ci).gen)<<32 | uint64(uint32(ci)))
	if st := s.stage; st != nil {
		st.evs = append(st.evs, stagedEv{pos: st.pos, shard: 0,
			e: event{time: t, kind: evSpecProbe, val: pv, req: req}})
		return
	}
	q := &s.qs[0]
	i := q.alloc()
	e := &q.slab[i]
	e.time, e.kind, e.val, e.req = t, evSpecProbe, pv, req
	q.push(i, t, s.seq)
	s.seq++
}

// homePE resolves an instruction's home through the dense cache, falling
// back to the placement policy on first reference. Repeat policy lookups
// are pure memo reads for every shipped policy, so caching them preserves
// results exactly while skipping the map probe on the hot path.
func (s *sim) homePE(fn isa.FuncID, id isa.InstrID) int {
	gi := s.instrBase[fn] + int(id)
	if pe := s.homes[gi]; pe >= 0 {
		return int(pe)
	}
	pe := s.pol.Assign(profile.InstrRef{Func: fn, Instr: id})
	s.homes[gi] = int32(pe)
	return pe
}

func (s *sim) loc(pe int) noc.Loc { return s.locs[pe] }

// shardFor maps a PE to the shard owning its cluster's events. With one
// shard every cluster maps to shard 0, so the two dependent loads
// (location, then cluster->shard) are skipped on the sequential engine's
// hot path.
func (s *sim) shardFor(pe int) int32 {
	if s.nsh == 1 {
		return 0
	}
	return s.shardOf[s.locs[pe].Cluster]
}

// Operand-slab handles pack (shard, index) so an entry can be resolved and
// released after a mid-run PE death migrates its instruction to a cluster
// another shard's slab serves. With one shard the handle is just the index.
func packOp(sh int32, idx int32) int64 { return int64(sh)<<32 | int64(uint32(idx)) }
func opShard(oi int64) int32           { return int32(oi >> 32) }
func opIndex(oi int64) int32           { return int32(uint32(oi)) }

// deliverAt lands a token at its (already resolved) destination PE,
// applying queue-overflow penalties, tag matching, instruction-store
// residency, and PE firing bandwidth. New operand tuples allocate from
// shard sh's slab; counters and trace emissions charge to cnt and tr, so
// a shard worker can run deliveries for its own clusters concurrently
// with the coordinator — everything touched is either PE-local state or
// the caller's private sink. A complete tuple returns fire=true with its
// scheduled cycle; the caller pushes (or stages) the evFire.
func (s *sim) deliverAt(e *event, pe int, sh int32, cnt *shardCounters, tr *trace.Tracer) (int64, [3]int64, bool, error) {
	cnt.tokens++
	ps := &s.pes[pe]
	ps.used = true

	t := e.time
	if ps.waiting >= s.cfg.InputQueue {
		// Matching-table overflow spills to memory.
		cnt.overflows++
		t += s.cfg.OverflowPenalty
		tr.Overflow(e.time, pe)
	}
	ps.waiting++
	tr.Token(e.time, pe, ps.waiting)

	gi := s.instrBase[e.fn] + int(e.dest.Instr)
	in := &s.prog.Funcs[e.fn].Instrs[e.dest.Instr]
	tbl := &s.opstore[gi]
	key := tagKey(e.tag)
	oi, ok := tbl.Get(key)
	if !ok {
		oi = packOp(sh, s.opSlabs[sh].Alloc())
		ops := s.opSlabs[sh].At(opIndex(oi))
		ops.have, ops.vals = in.ImmMask, in.ImmVals
		tbl.Put(key, oi)
	}
	// Decode the stored handle rather than assuming sh: a tuple started
	// before a PE death may live in the old home's shard slab.
	ops := s.opSlabs[opShard(oi)].At(opIndex(oi))
	bit := uint8(1) << e.dest.Port
	if ops.have&bit != 0 {
		return 0, [3]int64{}, false, fmt.Errorf("wavecache: token collision at %s/i%d port %d tag %v",
			s.prog.Funcs[e.fn].Name, e.dest.Instr, e.dest.Port, e.tag)
	}
	ops.have |= bit
	ops.vals[e.dest.Port] = e.val
	need := in.Op.NumInputs()
	if ops.have != (uint8(1)<<need)-1 {
		return 0, [3]int64{}, false, nil
	}
	vals := ops.vals
	tbl.Delete(key)
	s.opSlabs[opShard(oi)].Release(opIndex(oi))
	ps.waiting -= need - bits.OnesCount8(in.ImmMask)

	// Residency: fetch the instruction into the PE store if absent.
	ref := instrKey(e.fn, e.dest.Instr)
	if ni, resident := ps.resident.Get(ref); resident {
		ps.lru.touch(int32(ni))
	} else {
		cnt.swaps++
		t += s.cfg.SwapPenalty
		tr.Swap(e.time, pe)
		if ps.resident.Len() >= s.cfg.PEStore {
			// Evict the least recently used instruction: the list tail.
			ps.resident.Delete(ps.lru.popTail())
		}
		ps.resident.Put(ref, int64(ps.lru.push(ref)))
	}

	// One firing per PE per cycle.
	fireAt := t
	if ps.free > fireAt {
		fireAt = ps.free
	}
	ps.free = fireAt + 1
	return fireAt, vals, true, nil
}

// send routes an output token through the operand network. Under fault
// injection each message rides the ack/retransmit protocol; retry
// exhaustion surfaces as a structured *fault.FaultError.
func (s *sim) send(fromPE int, fn isa.FuncID, dests []isa.Dest, tag isa.Tag, val int64, t int64) error {
	for _, d := range dests {
		dstPE := s.homePE(fn, d.Instr)
		arr, err := s.sendOperand(fromPE, dstPE, t)
		if err != nil {
			return err
		}
		s.pushToken(s.shardFor(dstPE), arr, fn, d, tag, val)
	}
	return nil
}

// sendOperand times one operand-network message under the fault model.
func (s *sim) sendOperand(fromPE, dstPE int, t int64) (int64, error) {
	arr, err := s.net.SendReliable(s.loc(fromPE), s.loc(dstPE), t)
	if err != nil {
		return 0, &fault.FaultError{Kind: fault.KindMessageLoss, PE: fromPE, Cycle: t, Detail: err.Error()}
	}
	return arr, nil
}

// memHop times one store-buffer message (PE -> buffer or buffer -> PE):
// the dedicated short path when cluster-local, the mesh otherwise, under
// the memory fault stream's loss/retransmit protocol.
func (s *sim) memHop(src, dst noc.Loc, t int64, pe int) (int64, error) {
	transport := func(send int64) int64 {
		if src.Cluster == dst.Cluster {
			return send + s.cfg.MemMsgLatency
		}
		return s.net.Send(src, dst, send)
	}
	if s.inj == nil {
		return transport(t), nil
	}
	return s.inj.MemTransit(t, pe, transport)
}

// killPE executes the scheduled mid-run PE death: the placement policy is
// reconfigured so the dead PE is never assigned again, its resident
// instructions migrate (their homes re-place lazily on next reference),
// and its matching-table state is replayed against the new homes. Tokens
// already in flight re-route automatically because every delivery looks
// the home PE up afresh.
func (s *sim) killPE() error {
	s.killed = true
	pe := s.cfg.Faults.KillPE
	at := s.cfg.Faults.KillCycle
	rc, ok := s.pol.(placement.Reconfigurable)
	if !ok {
		return &fault.FaultError{Kind: fault.KindPlacement, PE: pe, Cycle: at,
			Detail: fmt.Sprintf("PE died mid-run but policy %T cannot re-place instructions", s.pol)}
	}
	if err := rc.MarkDefective(pe); err != nil {
		return &fault.FaultError{Kind: fault.KindPlacement, PE: pe, Cycle: at, Detail: err.Error()}
	}
	ps := &s.pes[pe]
	s.res.Faults.PEKills++
	s.tr.Kill(at, pe)
	s.res.Faults.MigratedInstrs += uint64(ps.resident.Len())
	ps.resident.Reset()
	ps.lru.reset()
	ps.waiting = 0
	ps.free = 0
	// Drop the whole dense home cache: references to surviving homes
	// re-resolve against the policy's unchanged memo (same answer, no
	// policy-state perturbation) while the dead PE's instructions re-place
	// in first-reference-after-death order — exactly the uncached
	// behaviour.
	for i := range s.homes {
		s.homes[i] = -1
	}
	// Record the death in the simulator's defect view (copy-on-write: the
	// caller's map must not be mutated) so diagnostics report it.
	d := make([]bool, s.cfg.Machine.NumPEs())
	copy(d, s.cfg.Machine.Defective)
	d[pe] = true
	s.cfg.Machine.Defective = d
	return nil
}

// diagnose renders the watchdog's dump: which PEs hold waiting tokens,
// how many operand tuples sit partially matched, which PEs are dead, and
// the ordering engine's unresolved wave chains.
func (s *sim) diagnose() string {
	var b strings.Builder
	fmt.Fprintf(&b, "watchdog report: %d events queued, %d instructions fired, t=%d\n",
		s.qlen(), s.cnt.fired, s.maxT)
	stuck := 0
	for i := range s.pes {
		if s.pes[i].waiting > 0 {
			if stuck < 16 {
				fmt.Fprintf(&b, "  pe %d: %d waiting tokens, %d resident instructions\n",
					i, s.pes[i].waiting, s.pes[i].resident.Len())
			}
			stuck++
		}
	}
	fmt.Fprintf(&b, "  %d PEs hold waiting tokens\n", stuck)
	partial := 0
	for i := range s.opstore {
		partial += s.opstore[i].Len()
	}
	fmt.Fprintf(&b, "  %d partial operand tuples awaiting matches\n", partial)
	if n := fault.CountDefects(s.cfg.Machine.Defective); n > 0 {
		fmt.Fprintf(&b, "  %d defective PEs:", n)
		for i, dead := range s.cfg.Machine.Defective {
			if dead {
				fmt.Fprintf(&b, " %d", i)
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("  wave-ordering state: ")
	b.WriteString(s.engine.DebugState())
	if s.cfg.MemMode == MemSpec {
		b.WriteString("\n  speculation state: ")
		b.WriteString(s.specDebugState())
	}
	return b.String()
}

// bufferCluster binds a dynamic wave to a store buffer by first touch: the
// cluster of the first PE to send one of the wave's memory messages owns
// the whole wave, matching the WaveCache's locality-seeking dynamic wave
// assignment.
func (s *sim) bufferCluster(tag isa.Tag, requesterPE int) int {
	key := tagKey(tag)
	if buf, ok := s.waveBuf.Get(key); ok {
		return int(buf)
	}
	buf := s.loc(requesterPE).Cluster
	s.waveBuf.Put(key, int64(buf))
	if s.waveBuf.Len() > 1<<16 {
		// In-flight waves are few; a large table means retired entries
		// linger. Clearing is safe: rebinding only risks a different (still
		// valid) cluster for stragglers.
		s.waveBuf.Reset()
		s.waveBuf.Put(key, int64(buf))
	}
	return buf
}

// submitMem routes a memory message from a PE to its wave's store buffer:
// a dedicated short path within the cluster, the mesh across clusters.
func (s *sim) submitMem(pe int, fn isa.FuncID, id isa.InstrID, in *isa.Instruction, tag isa.Tag, addr, val int64, childCtx uint32, t int64) error {
	buf := s.bufferCluster(tag, pe)
	arr, err := s.memHop(s.loc(pe), noc.Loc{Cluster: buf}, t, pe)
	if err != nil {
		return err
	}
	ci := s.ckSlab.Alloc()
	s.ckGen++
	*s.ckSlab.At(ci) = memCookie{fn: fn, id: id, tag: tag, fireAt: t, arrive: arr, pe: pe, buf: buf, gen: s.ckGen}
	req := s.allocReq()
	*req = waveorder.Request{
		Ctx: tag.Ctx, Wave: tag.Wave,
		Kind: in.Mem.Kind, Seq: in.Mem.Seq, Pred: in.Mem.Pred, Succ: in.Mem.Succ,
		Addr: addr, Value: val, ChildCtx: childCtx,
		Cookie: int64(ci),
	}
	s.pushMem(s.shardOf[buf], arr, req)
	return nil
}

// fire executes one instruction instance.
func (s *sim) fire(e *event) error {
	s.cnt.fired++
	s.fuel--
	if s.fuel < 0 {
		return fmt.Errorf("wavecache: execution exceeded instruction budget")
	}
	fn, id, tag, vals := e.fn, e.dest.Instr, e.tag, e.vals
	in := &s.prog.Funcs[fn].Instrs[id]
	pe := s.homePE(fn, id)
	t := e.time
	if s.tr != nil {
		l := s.loc(pe)
		s.tr.Fire(t, pe, l.Cluster, l.Domain)
	}

	switch {
	case in.Op == isa.OpNop:
		return s.send(pe, fn, in.Dests, tag, vals[0], t)
	case in.Op == isa.OpConst:
		return s.send(pe, fn, in.Dests, tag, in.Imm, t)
	case isa.IsALU(in.Op):
		return s.send(pe, fn, in.Dests, tag, isa.EvalALU(in.Op, vals[0], vals[1]), t)
	case in.Op == isa.OpSteer:
		if vals[0] != 0 {
			return s.send(pe, fn, in.Dests, tag, vals[1], t)
		}
		return s.send(pe, fn, in.DestsFalse, tag, vals[1], t)
	case in.Op == isa.OpSelect:
		v := vals[2]
		if vals[0] != 0 {
			v = vals[1]
		}
		return s.send(pe, fn, in.Dests, tag, v, t)
	case in.Op == isa.OpWaveAdvance:
		return s.send(pe, fn, in.Dests, tag.Advance(), vals[0], t)
	case in.Op == isa.OpLoad:
		return s.submitMem(pe, fn, id, in, tag, vals[0], 0, 0, t)
	case in.Op == isa.OpStore:
		if err := s.submitMem(pe, fn, id, in, tag, vals[0], vals[1], 0, t); err != nil {
			return err
		}
		return s.send(pe, fn, in.Dests, tag, vals[1], t)
	case in.Op == isa.OpMemNop:
		if err := s.submitMem(pe, fn, id, in, tag, 0, 0, 0, t); err != nil {
			return err
		}
		return s.send(pe, fn, in.Dests, tag, vals[0], t)
	case in.Op == isa.OpNewCtx:
		ctx := s.nextCtx
		s.nextCtx++
		mi := s.ctxSlab.Alloc()
		*s.ctxSlab.At(mi) = ctxInfo{callerFunc: fn, callerTag: tag, retPad: isa.InstrID(in.TargetPad)}
		s.ctxTab.Put(uint64(ctx), int64(mi))
		if in.Mem.Kind == isa.MemCall {
			if err := s.submitMem(pe, fn, id, in, tag, 0, 0, ctx, t); err != nil {
				return err
			}
		}
		return s.send(pe, fn, in.Dests, tag, int64(ctx), t)
	case in.Op == isa.OpSendArg:
		callee := in.Target
		ctx := uint32(vals[0])
		pad := s.prog.Funcs[callee].Params[in.TargetPad]
		dstPE := s.homePE(callee, pad)
		arr, err := s.sendOperand(pe, dstPE, t)
		if err != nil {
			return err
		}
		s.pushToken(s.shardFor(dstPE), arr, callee, isa.Dest{Instr: pad, Port: 0}, isa.Tag{Ctx: ctx, Wave: 0}, vals[1])
	case in.Op == isa.OpReturn:
		mv, ok := s.ctxTab.Get(uint64(tag.Ctx))
		if !ok {
			return fmt.Errorf("wavecache: return in unknown context %d", tag.Ctx)
		}
		meta := *s.ctxSlab.At(int32(mv))
		s.ctxTab.Delete(uint64(tag.Ctx))
		s.ctxSlab.Release(int32(mv))
		if in.Mem.Kind == isa.MemEnd {
			if err := s.submitMem(pe, fn, id, in, tag, 0, 0, 0, t); err != nil {
				return err
			}
		}
		if meta.retPad == isa.NoInstr {
			s.done = true
			s.result = vals[0]
			return nil
		}
		dstPE := s.homePE(meta.callerFunc, meta.retPad)
		arr, err := s.sendOperand(pe, dstPE, t)
		if err != nil {
			return err
		}
		s.pushToken(s.shardFor(dstPE), arr, meta.callerFunc, isa.Dest{Instr: meta.retPad, Port: 0}, meta.callerTag, vals[0])
	default:
		return fmt.Errorf("wavecache: cannot execute opcode %s", in.Op)
	}
	return nil
}

// issueMem runs when the ordering engine releases a request in program
// order; it performs the timed cache access and routes load replies.
func (s *sim) issueMem(r *waveorder.Request) {
	ci := int32(r.Cookie)
	ck := *s.ckSlab.At(ci)
	if s.cfg.MemMode == MemSpec {
		// Dead-stamp the cookie so any pending deferred-speculation probe
		// for this request sees it gone (generations start at 1).
		s.ckSlab.At(ci).gen = 0
		if ci == s.spec.arriving {
			// The request the coordinator is submitting right now issued
			// synchronously — it never buffered, so there is nothing to
			// speculate on (see processEvent's evMemArrive branch).
			s.spec.arriving = -1
		}
	}
	s.ckSlab.Release(ci)
	buf := ck.buf
	// The ordering stall is how long the request sat buffered waiting for
	// its wave chain to resolve: issue happens at the current event time,
	// arrival was stamped at submit.
	s.tr.MemIssue(s.now, int(r.Kind), s.now-ck.arrive)
	switch r.Kind {
	case isa.MemLoad:
		var done int64
		if s.cfg.MemMode == MemSpec && ck.spec != specNone {
			done = s.specCommitLoad(&ck, r)
		} else {
			start := s.bufIssueTime(buf)
			ar := s.memsys.Access(buf, clampAddr(r.Addr, len(s.memImage)), false)
			done = start + ar.Latency
			if s.cfg.MemMode == MemIdeal {
				// Oracle ordering: timed as if the request issued the
				// moment it fired at its PE.
				done = ck.fireAt + ar.Latency
			}
			if s.cfg.MemMode == MemSerial {
				if start < s.serialEnd {
					start = s.serialEnd
				}
				done = start + ar.Latency
				s.serialEnd = done + s.serialGap()
			}
		}
		var v int64
		if r.Addr >= 0 && r.Addr < int64(len(s.memImage)) {
			v = s.memImage[r.Addr]
		}
		in := &s.prog.Funcs[ck.fn].Instrs[ck.id]
		for _, d := range in.Dests {
			dstPE := s.homePE(ck.fn, d.Instr)
			arr, err := s.memHop(noc.Loc{Cluster: buf}, s.loc(dstPE), done, dstPE)
			if err != nil {
				// issueMem is a callback without an error path; park the
				// fault for the run loop to surface after Submit returns.
				if s.memErr == nil {
					s.memErr = err
				}
				return
			}
			s.pushToken(s.shardFor(dstPE), arr, ck.fn, d, ck.tag, v)
		}
	case isa.MemStore:
		if s.cfg.MemMode == MemSpec {
			s.specCommitStore(&ck, r)
		} else {
			start := s.bufIssueTime(buf)
			ar := s.memsys.Access(buf, clampAddr(r.Addr, len(s.memImage)), true)
			if s.cfg.MemMode == MemSerial {
				if start < s.serialEnd {
					start = s.serialEnd
				}
				s.serialEnd = start + ar.Latency + s.serialGap()
			}
		}
		if r.Addr >= 0 && r.Addr < int64(len(s.memImage)) {
			s.memImage[r.Addr] = r.Value
		}
	default:
		// Ordering-only messages (nop, call, end) consume a buffer slot.
		s.bufIssueTime(buf)
	}
}

// serialGap is the dependence-token round trip between consecutive memory
// operations under MemSerial: the successor's request cannot even be
// formed until a completion token has traveled back through the cluster
// interconnect.
func (s *sim) serialGap() int64 { return 2 * s.cfg.Net.IntraCluster }

// bufState tracks one store buffer's issue bandwidth: the latest granting
// cycle and how many issues it carried.
type bufState struct {
	cycle int64
	used  int64
}

// bufIssueTime grants a store-buffer issue slot at or after the current
// simulation time, BufferWidth per cycle per cluster, FIFO.
func (s *sim) bufIssueTime(cluster int) int64 {
	width := s.cfg.BufferWidth
	if width <= 0 {
		width = 1
	}
	bs := &s.bufBusy[cluster]
	switch {
	case s.now > bs.cycle:
		bs.cycle = s.now
		bs.used = 1
	case bs.used < width:
		bs.used++
	default:
		bs.cycle++
		bs.used = 1
	}
	return bs.cycle
}

func clampAddr(a int64, n int) int64 {
	if a < 0 {
		return 0
	}
	if a >= int64(n) {
		return int64(n - 1)
	}
	return a
}
