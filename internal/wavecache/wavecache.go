// Package wavecache is the cycle-level WaveCache simulator: the MICRO 2003
// WaveScalar processor. It executes dataflow binaries on a grid of clusters
// of processing elements with:
//
//   - tag-matching input queues and the dataflow firing rule, one firing
//     per PE per cycle;
//   - dynamic instruction placement (a pluggable policy) with per-PE
//     instruction stores, LRU replacement, and a swap-in penalty when a
//     referenced instruction is not resident;
//   - the hierarchical operand network (pod bypass / domain / cluster /
//     mesh) with per-link bandwidth, via internal/noc;
//   - per-cluster store buffers implementing wave-ordered memory: requests
//     travel to the buffer that owns their dynamic wave, issue in program
//     order (internal/waveorder), and access that cluster's L1 in the
//     directory-coherent hierarchy (internal/mem);
//   - finite input queues modeled as an overflow penalty when a PE's
//     waiting-token population exceeds its queue capacity.
//
// The simulator is discrete-event: tokens and memory messages carry
// timestamps, PEs and store buffers serialize at one operation per cycle,
// and the run's cycle count is the latest timestamp processed.
//
// Allocation discipline: the inner loop is allocation-free in steady state.
// Events live in a pooled slab ordered by an index-based 4-ary min-heap
// (no interface boxing, records recycled on delivery); per-instruction
// operand matching, PE residency, context metadata, and wave-to-buffer
// bindings use internal/tagtable's open-addressed tables and slabs; memory
// requests and their reply-routing cookies recycle through freelists fed by
// the ordering engine's releaser hook. An Arena reuses all of this state —
// plus the network, memory hierarchy, and ordering engine — across runs.
// None of the pooling can perturb results: every pool hands out storage in
// an order that is a pure function of the (totally ordered) event schedule,
// and recycled records carry no state across uses.
package wavecache

import (
	"fmt"
	"math/bits"
	"strings"

	"wavescalar/internal/fault"
	"wavescalar/internal/isa"
	"wavescalar/internal/mem"
	"wavescalar/internal/noc"
	"wavescalar/internal/placement"
	"wavescalar/internal/profile"
	"wavescalar/internal/tagtable"
	"wavescalar/internal/trace"
	"wavescalar/internal/waveorder"
)

// MemoryMode selects the memory ordering strategy (experiment E4).
type MemoryMode int

const (
	// MemOrdered is wave-ordered memory: requests issue in program order as
	// the store buffers resolve their ordering chains, overlapping with
	// execution (the paper's contribution).
	MemOrdered MemoryMode = iota
	// MemSerial allows one memory operation in flight at a time, each
	// separated by the dependence-token round trip a dataflow machine
	// without ordering hardware would need to chain memory operations: the
	// conservative strawman wave-ordered memory replaces.
	MemSerial
	// MemIdeal is an oracle memory: values still obey program order, but
	// loads are timed as if ordering were free.
	MemIdeal
)

func (m MemoryMode) String() string {
	switch m {
	case MemOrdered:
		return "wave-ordered"
	case MemSerial:
		return "serialized"
	case MemIdeal:
		return "ideal"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config parameterizes the machine.
type Config struct {
	Machine placement.Machine

	// PEStore is the per-PE instruction store capacity.
	PEStore int
	// SwapPenalty is charged when a referenced instruction must be brought
	// into its PE's store.
	SwapPenalty int64
	// InputQueue is the per-PE token queue capacity; tokens beyond it pay
	// OverflowPenalty (matching-table spill to memory).
	InputQueue      int
	OverflowPenalty int64

	// BufferWidth is how many memory operations a cluster's store buffer
	// can issue per cycle (the published L1 sustains 4 accesses/cycle).
	BufferWidth int64

	// MemMsgLatency is the one-way latency of a memory message between a
	// PE and its own cluster's store buffer (a dedicated path, cheaper
	// than the general operand network). Waves bind to store buffers by
	// first touch, so the common case is cluster-local.
	MemMsgLatency int64

	Net noc.Config
	Mem mem.SystemConfig

	MemMode MemoryMode

	// Fuel bounds fired instructions (0 = 200M).
	Fuel int64

	// MaxCycles bounds simulated time: the watchdog aborts with a
	// diagnostic dump when an event's timestamp exceeds it (0 = unbounded).
	MaxCycles int64

	// Cancel, when non-nil, lets the caller abort a run in flight: the
	// event loop polls it every cancelPollInterval events and, once it is
	// closed, returns a *fault.FaultError of KindCancelled. This is how a
	// request deadline or a server drain reaches into a running
	// simulation (pass ctx.Done()). Cancellation is results-neutral: a
	// run that completes without observing Cancel is bit-identical to one
	// with Cancel nil, and an Arena aborted by Cancel is fully reusable —
	// the next Run resets it exactly as it would after a fault abort.
	Cancel <-chan struct{}

	// Faults configures deterministic fault injection; the zero value is a
	// perfect machine and leaves every result bit-identical to a build
	// without the fault subsystem. When Faults.DefectRate > 0 the caller
	// must install fault.DefectMap(Faults, NumPEs) as Machine.Defective
	// before constructing the placement policy, so placement and simulator
	// agree on which PEs are dead.
	Faults fault.Config

	// Tracer, when non-nil, records this run's structured trace (counters
	// plus, if configured, the event stream). nil disables tracing at zero
	// cost and leaves Results bit-identical to a tracer-free build. Like a
	// placement policy, a Tracer belongs to one run: never share one
	// across concurrent Runs.
	Tracer *trace.Tracer

	// Metrics, when non-nil, receives the run's trace counters at
	// successful completion (via a private metrics-only tracer when Tracer
	// is nil). The aggregate is thread-safe, so concurrent experiment
	// cells may share one.
	Metrics *trace.Aggregate
}

// DefaultConfig returns the published WaveScalar processor parameters on a
// w x h cluster grid.
func DefaultConfig(w, h int) Config {
	m := placement.DefaultMachine(w, h)
	return Config{
		Machine:         m,
		PEStore:         64,
		SwapPenalty:     32,
		InputQueue:      16,
		OverflowPenalty: 10,
		BufferWidth:     4,
		MemMsgLatency:   2,
		Net:             noc.DefaultConfig(w, h),
		Mem:             mem.DefaultSystemConfig(m.NumClusters()),
	}
}

// Result reports a simulation.
type Result struct {
	Value  int64
	Fired  uint64
	Cycles int64
	IPC    float64

	Tokens    uint64
	Swaps     uint64
	Overflows uint64
	PEsUsed   int

	Net    noc.Stats
	Mem    mem.Stats
	Order  waveorder.Stats
	Faults fault.Stats
}

// cancelPollInterval is how many events the run loop processes between
// polls of Config.Cancel: small enough that cancellation lands within
// microseconds of wall-clock, large enough that the poll never shows up in
// a profile.
const cancelPollInterval = 1024

// event kinds.
type evKind uint8

const (
	evToken evKind = iota
	evFire
	evMemArrive
)

type event struct {
	time int64
	seq  uint64
	kind evKind

	// evToken / evFire payload.
	fn   isa.FuncID
	dest isa.Dest
	tag  isa.Tag
	val  int64
	vals [3]int64 // evFire operands

	// evMemArrive payload.
	req *waveorder.Request
}

// eventQueue is a pooled priority queue: events live in a slab addressed by
// index (recycled through a freelist when delivered), and a 4-ary min-heap
// of indices orders them by (time, seq). Compared to container/heap this
// drops the per-push interface boxing and per-event allocation, and the
// wider fan-out halves sift-down depth on the simulator's deep queues.
// (time, seq) is a strict total order — seq is unique — so ANY correct heap
// yields the same pop sequence; swapping heap implementations cannot change
// results.
type eventQueue struct {
	slab []event
	free []int32
	heap []int32
	seq  uint64
}

func (q *eventQueue) reset() {
	q.slab = q.slab[:0]
	q.free = q.free[:0]
	q.heap = q.heap[:0]
	q.seq = 0
}

func (q *eventQueue) len() int { return len(q.heap) }

// alloc returns the index of a zeroed event record.
func (q *eventQueue) alloc() int32 {
	if n := len(q.free); n > 0 {
		i := q.free[n-1]
		q.free = q.free[:n-1]
		q.slab[i] = event{}
		return i
	}
	q.slab = append(q.slab, event{})
	return int32(len(q.slab) - 1)
}

// release recycles a delivered event's slab index.
func (q *eventQueue) release(i int32) { q.free = append(q.free, i) }

func (q *eventQueue) less(a, b int32) bool {
	ea, eb := &q.slab[a], &q.slab[b]
	if ea.time != eb.time {
		return ea.time < eb.time
	}
	return ea.seq < eb.seq
}

// push stamps the event's tiebreak sequence and sifts it into the heap.
func (q *eventQueue) push(i int32) {
	q.slab[i].seq = q.seq
	q.seq++
	q.heap = append(q.heap, i)
	c := len(q.heap) - 1
	for c > 0 {
		p := (c - 1) / 4
		if !q.less(q.heap[c], q.heap[p]) {
			break
		}
		q.heap[c], q.heap[p] = q.heap[p], q.heap[c]
		c = p
	}
}

// pop removes and returns the minimum event's slab index. The caller must
// copy the event out before the next alloc (growth may move the slab) and
// release the index when done.
func (q *eventQueue) pop() int32 {
	top := q.heap[0]
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap = q.heap[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(q.heap[c], q.heap[m]) {
				m = c
			}
		}
		if !q.less(q.heap[m], q.heap[i]) {
			break
		}
		q.heap[i], q.heap[m] = q.heap[m], q.heap[i]
		i = m
	}
	return top
}

// operands is a per-tag matching entry.
type operands struct {
	vals [3]int64
	have uint8
}

// peState is one processing element. The residency set maps packed
// instruction refs (instrKey) to LRU ticks; ticks are unique per PE, so the
// LRU victim scan has a unique minimum and its result cannot depend on
// visit order.
type peState struct {
	free     int64 // next cycle the ALU can fire
	resident tagtable.Table
	lruTick  uint64
	waiting  int // tokens delivered but not yet consumed by a firing
	used     bool
}

type ctxInfo struct {
	callerFunc isa.FuncID
	callerTag  isa.Tag
	retPad     isa.InstrID
}

// memCookie carries reply routing and timing through the ordering engine.
type memCookie struct {
	fn     isa.FuncID
	id     isa.InstrID
	tag    isa.Tag
	fireAt int64
	arrive int64 // cycle the request reached its store buffer
	pe     int
	buf    int // store-buffer cluster bound at submit time
}

// tagKey packs a dynamic tag into a table key.
func tagKey(t isa.Tag) uint64 { return uint64(t.Ctx)<<32 | uint64(t.Wave) }

// instrKey packs a static instruction reference into a table key.
func instrKey(fn isa.FuncID, id isa.InstrID) uint64 {
	return uint64(uint32(fn))<<32 | uint64(uint32(id))
}

type sim struct {
	prog *isa.Program
	pol  placement.Policy
	cfg  Config

	net    *noc.Network
	memsys *mem.System
	engine *waveorder.Engine
	clock  func() int64 // stable closure handed to the engine's tracer

	q    eventQueue
	now  int64
	maxT int64

	// opstore is the per-static-instruction operand-matching table: packed
	// tag -> opSlab index of the partially assembled tuple.
	opstore   []tagtable.Table
	opSlab    tagtable.Slab[operands]
	instrBase []int
	pes       []peState
	bufBusy   []bufState // per-cluster store-buffer issue bandwidth
	serialEnd int64      // MemSerial: completion of the in-flight operation

	memImage []int64
	// ctxTab maps live context ids to ctxSlab indices holding call metadata.
	ctxTab  tagtable.Table
	ctxSlab tagtable.Slab[ctxInfo]
	nextCtx uint32

	// waveBuf records each dynamic wave's store-buffer cluster (bound at
	// first touch), keyed by packed tag.
	waveBuf tagtable.Table

	// ckSlab pools memCookies; requests carry slab indices, not pointers,
	// so cookies never box. reqFree pools the Request records themselves,
	// refilled by the ordering engine's releaser the moment each request
	// has issued.
	ckSlab  tagtable.Slab[memCookie]
	reqFree []*waveorder.Request

	fuel   int64
	done   bool
	result int64

	// Fault machinery (all nil/false on a perfect machine).
	inj    *fault.Injector
	killed bool  // the scheduled mid-run PE death has happened
	memErr error // unrecoverable fault raised inside the issueMem callback

	// tr is the run's tracer (nil = disabled; every emission is either a
	// nil-safe call or guarded so the disabled path costs one branch).
	tr *trace.Tracer

	res Result
}

// Arena is a reusable simulator: it owns the complete mutable memory image
// of a run (event slab and heap, operand tables, PE state, memory image,
// network, cache hierarchy, ordering engine, every freelist) and Run resets
// it in place, so a caller sweeping many configurations — an experiment
// harness — pays the simulator's allocations once per worker instead of
// once per cell. Backing arrays are kept at their high-water mark across
// runs; a shape change (different grid, different program) resizes them and
// subsequent runs at that shape are allocation-free again.
//
// An Arena is not safe for concurrent use and must not be copied after
// first use (internal closures capture its address). Results are
// bit-identical to the package-level Run: reuse only recycles storage,
// never state.
type Arena struct {
	s sim
}

// NewArena returns an empty arena; the first Run sizes it.
func NewArena() *Arena { return &Arena{} }

// Run simulates a program to completion under a placement policy, reusing
// the arena's storage. The contract matches the package-level Run.
func (a *Arena) Run(p *isa.Program, pol placement.Policy, cfg Config) (Result, error) {
	if err := a.s.reset(p, pol, cfg); err != nil {
		return Result{}, err
	}
	return a.s.run()
}

// Run simulates a program to completion under a placement policy.
//
// Concurrency contract: Run treats p as strictly read-only — the simulator
// takes interior pointers into p.Funcs[*].Instrs for speed but never
// writes through them, and its mutable state (memory image, operand
// stores, PE/buffer state, the ordering engine) is private to the call.
// Any number of Runs may therefore share one *isa.Program concurrently
// (exercised under the race detector by TestConcurrentRunsShareProgram).
// The placement policy IS mutated during the run: construct a fresh Policy
// per call, with any seed derived deterministically per cell, and never
// share one across goroutines. Identical (p, policy construction, cfg)
// inputs produce bit-identical Results.
func Run(p *isa.Program, pol placement.Policy, cfg Config) (Result, error) {
	return NewArena().Run(p, pol, cfg)
}

// RunWithMemory is Run but also returns the final memory image, for the
// differential test suites.
func RunWithMemory(p *isa.Program, pol placement.Policy, cfg Config) (Result, []int64, error) {
	a := NewArena()
	res, err := a.Run(p, pol, cfg)
	if err != nil {
		return Result{}, nil, err
	}
	return res, a.s.memImage, nil
}

// reset rewinds the simulator to boot state for (p, pol, cfg), reusing
// every backing array whose shape still fits. It performs exactly the
// validation newSim used to, in the same order, so error behaviour is
// unchanged.
func (s *sim) reset(p *isa.Program, pol placement.Policy, cfg Config) error {
	if cfg.Fuel == 0 {
		cfg.Fuel = 200_000_000
	}
	if s.net == nil {
		net, err := noc.New(cfg.Net)
		if err != nil {
			return err
		}
		s.net = net
	} else if err := s.net.Reset(cfg.Net); err != nil {
		return err
	}
	if s.memsys == nil {
		ms, err := mem.NewSystem(cfg.Mem)
		if err != nil {
			return err
		}
		s.memsys = ms
	} else if err := s.memsys.Reset(cfg.Mem); err != nil {
		return err
	}

	s.prog, s.pol, s.cfg = p, pol, cfg
	s.memImage = p.FillMemory(s.memImage)

	s.q.reset()
	s.now, s.maxT = 0, 0
	s.serialEnd = 0
	s.nextCtx = 1
	s.fuel = cfg.Fuel
	s.done, s.result = false, 0
	s.inj, s.killed, s.memErr = nil, false, nil
	s.res = Result{}

	s.ctxTab.Reset()
	s.ctxSlab.Reset()
	s.waveBuf.Reset()
	s.ckSlab.Reset()
	s.opSlab.Reset()

	s.tr = cfg.Tracer
	if s.tr == nil && cfg.Metrics != nil {
		// Metrics-only tracing: counters without an event stream.
		s.tr = trace.New(trace.Config{})
	}
	s.net.AttachTracer(s.tr)
	if cfg.Faults.Enabled() {
		inj, err := fault.NewInjector(cfg.Faults)
		if err != nil {
			return err
		}
		s.inj = inj
		s.net.AttachFaults(inj)
		inj.AttachTracer(s.tr)
		if cfg.Faults.DefectRate > 0 && cfg.Machine.Defective == nil {
			return &fault.FaultError{Kind: fault.KindConfig, PE: -1,
				Detail: "DefectRate set but Machine.Defective is nil; install fault.DefectMap before building the placement policy"}
		}
		if cfg.Faults.KillCycle > 0 && (cfg.Faults.KillPE < 0 || cfg.Faults.KillPE >= cfg.Machine.NumPEs()) {
			return &fault.FaultError{Kind: fault.KindConfig, PE: cfg.Faults.KillPE,
				Detail: fmt.Sprintf("kill PE outside machine (0..%d)", cfg.Machine.NumPEs()-1)}
		}
		s.res.Faults.DefectivePEs = fault.CountDefects(cfg.Machine.Defective)
	}

	s.instrBase = s.instrBase[:0]
	total := 0
	for i := range p.Funcs {
		s.instrBase = append(s.instrBase, total)
		total += len(p.Funcs[i].Instrs)
	}
	// Resize-then-reset: the reset loops run after the new lengths are
	// established, so they also scrub any stale records a reslice-up just
	// exposed from the capacity region.
	if total <= cap(s.opstore) {
		s.opstore = s.opstore[:total]
	} else {
		s.opstore = make([]tagtable.Table, total)
	}
	for i := range s.opstore {
		s.opstore[i].Reset()
	}
	npe := cfg.Machine.NumPEs()
	if npe <= cap(s.pes) {
		s.pes = s.pes[:npe]
	} else {
		s.pes = make([]peState, npe)
	}
	for i := range s.pes {
		ps := &s.pes[i]
		ps.free, ps.lruTick, ps.waiting, ps.used = 0, 0, 0, false
		ps.resident.Reset()
	}
	nc := cfg.Machine.NumClusters()
	if nc <= cap(s.bufBusy) {
		s.bufBusy = s.bufBusy[:nc]
		clear(s.bufBusy)
	} else {
		s.bufBusy = make([]bufState, nc)
	}

	if s.engine == nil {
		s.engine = waveorder.NewEngine(0, s.issueMem)
		s.engine.SetReleaser(func(r *waveorder.Request) { s.reqFree = append(s.reqFree, r) })
		s.clock = func() int64 { return s.now }
	} else {
		s.engine.Reset(0)
	}
	s.engine.AttachTracer(s.tr, s.clock)
	return nil
}

// allocReq takes a request record from the pool (or allocates one). The
// caller overwrites every field.
func (s *sim) allocReq() *waveorder.Request {
	if n := len(s.reqFree); n > 0 {
		r := s.reqFree[n-1]
		s.reqFree = s.reqFree[:n-1]
		return r
	}
	return &waveorder.Request{}
}

func (s *sim) run() (Result, error) {
	// Boot: context 0 trigger lands on the entry function's pad 0.
	mi := s.ctxSlab.Alloc()
	*s.ctxSlab.At(mi) = ctxInfo{callerFunc: isa.NoFunc, retPad: isa.NoInstr}
	s.ctxTab.Put(0, int64(mi))
	entry := s.prog.Entry
	s.pushToken(0, entry,
		isa.Dest{Instr: s.prog.Funcs[entry].Params[0], Port: 0},
		isa.Tag{Ctx: 0, Wave: 0}, 0)

	// Cancellation poll state: checking a channel per event would slow the
	// hot path, so the loop looks at Cancel once every cancelPollInterval
	// events — a few microseconds of cancellation latency, zero cost when
	// Cancel is nil.
	cancelLeft := cancelPollInterval
	for s.q.len() > 0 {
		if s.cfg.Cancel != nil {
			cancelLeft--
			if cancelLeft <= 0 {
				cancelLeft = cancelPollInterval
				select {
				case <-s.cfg.Cancel:
					return Result{}, &fault.FaultError{Kind: fault.KindCancelled, PE: -1, Cycle: s.now,
						Detail: fmt.Sprintf("run cancelled by caller (t=%d, %d events queued, %d instructions fired)",
							s.now, s.q.len(), s.res.Fired)}
				default:
				}
			}
		}
		idx := s.q.pop()
		// Copy the event out before releasing: processing it pushes new
		// events, and slab growth would move the storage under a pointer.
		e := s.q.slab[idx]
		s.q.release(idx)
		if !s.killed && s.cfg.Faults.KillCycle > 0 && e.time >= s.cfg.Faults.KillCycle {
			if err := s.killPE(); err != nil {
				return Result{}, err
			}
		}
		if s.cfg.MaxCycles > 0 && e.time > s.cfg.MaxCycles {
			return Result{}, &fault.FaultError{Kind: fault.KindWatchdog, PE: -1, Cycle: e.time,
				Detail: fmt.Sprintf("no completion within %d cycles\n%s", s.cfg.MaxCycles, s.diagnose())}
		}
		if e.time > s.now {
			s.now = e.time
		}
		if e.time > s.maxT {
			s.maxT = e.time
		}
		var err error
		switch e.kind {
		case evToken:
			err = s.deliver(&e)
		case evFire:
			err = s.fire(&e)
		case evMemArrive:
			err = s.engine.Submit(e.req)
			if err == nil {
				err = s.memErr
			}
		}
		if err != nil {
			return Result{}, err
		}
	}
	if !s.done {
		return Result{}, &fault.FaultError{Kind: fault.KindWatchdog, PE: -1, Cycle: s.maxT,
			Detail: "deadlock — event queue drained without program return\n" + s.diagnose()}
	}

	s.res.Value = s.result
	s.res.Cycles = s.maxT + 1
	if s.res.Cycles > 0 {
		s.res.IPC = float64(s.res.Fired) / float64(s.res.Cycles)
	}
	s.res.Net = s.net.Stats()
	s.res.Mem = s.memsys.Stats()
	s.res.Order = s.engine.Stats()
	if s.inj != nil {
		st := s.inj.Stats()
		s.res.Faults.MemDrops = st.MemDrops
		s.res.Faults.MemRetries = st.MemRetries
		s.res.Faults.MemRetryWait = st.MemRetryWait
		s.res.Faults.DelayedTokens = st.DelayedTokens
	}
	for i := range s.pes {
		if s.pes[i].used {
			s.res.PEsUsed++
		}
	}
	s.tr.Finish(s.res.Cycles)
	s.cfg.Metrics.Add(s.tr)
	return s.res, nil
}

func (s *sim) pushToken(t int64, fn isa.FuncID, d isa.Dest, tag isa.Tag, val int64) {
	i := s.q.alloc()
	e := &s.q.slab[i]
	e.time, e.kind, e.fn, e.dest, e.tag, e.val = t, evToken, fn, d, tag, val
	s.q.push(i)
}

func (s *sim) pushFire(t int64, fn isa.FuncID, d isa.Dest, tag isa.Tag, vals [3]int64) {
	i := s.q.alloc()
	e := &s.q.slab[i]
	e.time, e.kind, e.fn, e.dest, e.tag, e.vals = t, evFire, fn, d, tag, vals
	s.q.push(i)
}

func (s *sim) pushMem(t int64, req *waveorder.Request) {
	i := s.q.alloc()
	e := &s.q.slab[i]
	e.time, e.kind, e.req = t, evMemArrive, req
	s.q.push(i)
}

func (s *sim) homePE(fn isa.FuncID, id isa.InstrID) int {
	return s.pol.Assign(profile.InstrRef{Func: fn, Instr: id})
}

func (s *sim) loc(pe int) noc.Loc { return s.cfg.Machine.Loc(pe) }

// deliver lands a token at its destination PE, applying queue-overflow
// penalties, tag matching, instruction-store residency, and PE firing
// bandwidth; a complete operand tuple schedules an evFire.
func (s *sim) deliver(e *event) error {
	s.res.Tokens++
	pe := s.homePE(e.fn, e.dest.Instr)
	ps := &s.pes[pe]
	ps.used = true

	t := e.time
	if ps.waiting >= s.cfg.InputQueue {
		// Matching-table overflow spills to memory.
		s.res.Overflows++
		t += s.cfg.OverflowPenalty
		s.tr.Overflow(e.time, pe)
	}
	ps.waiting++
	s.tr.Token(e.time, pe, ps.waiting)

	gi := s.instrBase[e.fn] + int(e.dest.Instr)
	in := &s.prog.Funcs[e.fn].Instrs[e.dest.Instr]
	tbl := &s.opstore[gi]
	key := tagKey(e.tag)
	oi, ok := tbl.Get(key)
	if !ok {
		oi = int64(s.opSlab.Alloc())
		ops := s.opSlab.At(int32(oi))
		ops.have, ops.vals = in.ImmMask, in.ImmVals
		tbl.Put(key, oi)
	}
	ops := s.opSlab.At(int32(oi))
	bit := uint8(1) << e.dest.Port
	if ops.have&bit != 0 {
		return fmt.Errorf("wavecache: token collision at %s/i%d port %d tag %v",
			s.prog.Funcs[e.fn].Name, e.dest.Instr, e.dest.Port, e.tag)
	}
	ops.have |= bit
	ops.vals[e.dest.Port] = e.val
	need := in.Op.NumInputs()
	if ops.have != (uint8(1)<<need)-1 {
		return nil
	}
	vals := ops.vals
	tbl.Delete(key)
	s.opSlab.Release(int32(oi))
	ps.waiting -= need - bits.OnesCount8(in.ImmMask)

	// Residency: fetch the instruction into the PE store if absent.
	ref := instrKey(e.fn, e.dest.Instr)
	if _, resident := ps.resident.Get(ref); !resident {
		s.res.Swaps++
		t += s.cfg.SwapPenalty
		s.tr.Swap(e.time, pe)
		if ps.resident.Len() >= s.cfg.PEStore {
			// Evict the least recently used instruction. Ticks are unique,
			// so the minimum — and hence the victim — does not depend on
			// iteration order.
			var victim uint64
			oldest, found := int64(0), false
			ps.resident.Range(func(k uint64, tick int64) bool {
				if !found || tick < oldest {
					victim, oldest, found = k, tick, true
				}
				return true
			})
			ps.resident.Delete(victim)
		}
	}
	ps.lruTick++
	ps.resident.Put(ref, int64(ps.lruTick))

	// One firing per PE per cycle.
	fireAt := t
	if ps.free > fireAt {
		fireAt = ps.free
	}
	ps.free = fireAt + 1

	s.pushFire(fireAt, e.fn, e.dest, e.tag, vals)
	return nil
}

// send routes an output token through the operand network. Under fault
// injection each message rides the ack/retransmit protocol; retry
// exhaustion surfaces as a structured *fault.FaultError.
func (s *sim) send(fromPE int, fn isa.FuncID, dests []isa.Dest, tag isa.Tag, val int64, t int64) error {
	for _, d := range dests {
		dstPE := s.homePE(fn, d.Instr)
		arr, err := s.sendOperand(fromPE, dstPE, t)
		if err != nil {
			return err
		}
		s.pushToken(arr, fn, d, tag, val)
	}
	return nil
}

// sendOperand times one operand-network message under the fault model.
func (s *sim) sendOperand(fromPE, dstPE int, t int64) (int64, error) {
	arr, err := s.net.SendReliable(s.loc(fromPE), s.loc(dstPE), t)
	if err != nil {
		return 0, &fault.FaultError{Kind: fault.KindMessageLoss, PE: fromPE, Cycle: t, Detail: err.Error()}
	}
	return arr, nil
}

// memHop times one store-buffer message (PE -> buffer or buffer -> PE):
// the dedicated short path when cluster-local, the mesh otherwise, under
// the memory fault stream's loss/retransmit protocol.
func (s *sim) memHop(src, dst noc.Loc, t int64, pe int) (int64, error) {
	transport := func(send int64) int64 {
		if src.Cluster == dst.Cluster {
			return send + s.cfg.MemMsgLatency
		}
		return s.net.Send(src, dst, send)
	}
	if s.inj == nil {
		return transport(t), nil
	}
	return s.inj.MemTransit(t, pe, transport)
}

// killPE executes the scheduled mid-run PE death: the placement policy is
// reconfigured so the dead PE is never assigned again, its resident
// instructions migrate (their homes re-place lazily on next reference),
// and its matching-table state is replayed against the new homes. Tokens
// already in flight re-route automatically because every delivery looks
// the home PE up afresh.
func (s *sim) killPE() error {
	s.killed = true
	pe := s.cfg.Faults.KillPE
	at := s.cfg.Faults.KillCycle
	rc, ok := s.pol.(placement.Reconfigurable)
	if !ok {
		return &fault.FaultError{Kind: fault.KindPlacement, PE: pe, Cycle: at,
			Detail: fmt.Sprintf("PE died mid-run but policy %T cannot re-place instructions", s.pol)}
	}
	if err := rc.MarkDefective(pe); err != nil {
		return &fault.FaultError{Kind: fault.KindPlacement, PE: pe, Cycle: at, Detail: err.Error()}
	}
	ps := &s.pes[pe]
	s.res.Faults.PEKills++
	s.tr.Kill(at, pe)
	s.res.Faults.MigratedInstrs += uint64(ps.resident.Len())
	ps.resident.Reset()
	ps.waiting = 0
	ps.free = 0
	// Record the death in the simulator's defect view (copy-on-write: the
	// caller's map must not be mutated) so diagnostics report it.
	d := make([]bool, s.cfg.Machine.NumPEs())
	copy(d, s.cfg.Machine.Defective)
	d[pe] = true
	s.cfg.Machine.Defective = d
	return nil
}

// diagnose renders the watchdog's dump: which PEs hold waiting tokens,
// how many operand tuples sit partially matched, which PEs are dead, and
// the ordering engine's unresolved wave chains.
func (s *sim) diagnose() string {
	var b strings.Builder
	fmt.Fprintf(&b, "watchdog report: %d events queued, %d instructions fired, t=%d\n",
		s.q.len(), s.res.Fired, s.maxT)
	stuck := 0
	for i := range s.pes {
		if s.pes[i].waiting > 0 {
			if stuck < 16 {
				fmt.Fprintf(&b, "  pe %d: %d waiting tokens, %d resident instructions\n",
					i, s.pes[i].waiting, s.pes[i].resident.Len())
			}
			stuck++
		}
	}
	fmt.Fprintf(&b, "  %d PEs hold waiting tokens\n", stuck)
	partial := 0
	for i := range s.opstore {
		partial += s.opstore[i].Len()
	}
	fmt.Fprintf(&b, "  %d partial operand tuples awaiting matches\n", partial)
	if n := fault.CountDefects(s.cfg.Machine.Defective); n > 0 {
		fmt.Fprintf(&b, "  %d defective PEs:", n)
		for i, dead := range s.cfg.Machine.Defective {
			if dead {
				fmt.Fprintf(&b, " %d", i)
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("  wave-ordering state: ")
	b.WriteString(s.engine.DebugState())
	return b.String()
}

// bufferCluster binds a dynamic wave to a store buffer by first touch: the
// cluster of the first PE to send one of the wave's memory messages owns
// the whole wave, matching the WaveCache's locality-seeking dynamic wave
// assignment.
func (s *sim) bufferCluster(tag isa.Tag, requesterPE int) int {
	key := tagKey(tag)
	if buf, ok := s.waveBuf.Get(key); ok {
		return int(buf)
	}
	buf := s.loc(requesterPE).Cluster
	s.waveBuf.Put(key, int64(buf))
	if s.waveBuf.Len() > 1<<16 {
		// In-flight waves are few; a large table means retired entries
		// linger. Clearing is safe: rebinding only risks a different (still
		// valid) cluster for stragglers.
		s.waveBuf.Reset()
		s.waveBuf.Put(key, int64(buf))
	}
	return buf
}

// submitMem routes a memory message from a PE to its wave's store buffer:
// a dedicated short path within the cluster, the mesh across clusters.
func (s *sim) submitMem(pe int, fn isa.FuncID, id isa.InstrID, in *isa.Instruction, tag isa.Tag, addr, val int64, childCtx uint32, t int64) error {
	buf := s.bufferCluster(tag, pe)
	arr, err := s.memHop(s.loc(pe), noc.Loc{Cluster: buf}, t, pe)
	if err != nil {
		return err
	}
	ci := s.ckSlab.Alloc()
	*s.ckSlab.At(ci) = memCookie{fn: fn, id: id, tag: tag, fireAt: t, arrive: arr, pe: pe, buf: buf}
	req := s.allocReq()
	*req = waveorder.Request{
		Ctx: tag.Ctx, Wave: tag.Wave,
		Kind: in.Mem.Kind, Seq: in.Mem.Seq, Pred: in.Mem.Pred, Succ: in.Mem.Succ,
		Addr: addr, Value: val, ChildCtx: childCtx,
		Cookie: int64(ci),
	}
	s.pushMem(arr, req)
	return nil
}

// fire executes one instruction instance.
func (s *sim) fire(e *event) error {
	s.res.Fired++
	s.fuel--
	if s.fuel < 0 {
		return fmt.Errorf("wavecache: execution exceeded instruction budget")
	}
	fn, id, tag, vals := e.fn, e.dest.Instr, e.tag, e.vals
	in := &s.prog.Funcs[fn].Instrs[id]
	pe := s.homePE(fn, id)
	t := e.time
	if s.tr != nil {
		l := s.loc(pe)
		s.tr.Fire(t, pe, l.Cluster, l.Domain)
	}

	switch {
	case in.Op == isa.OpNop:
		return s.send(pe, fn, in.Dests, tag, vals[0], t)
	case in.Op == isa.OpConst:
		return s.send(pe, fn, in.Dests, tag, in.Imm, t)
	case isa.IsALU(in.Op):
		return s.send(pe, fn, in.Dests, tag, isa.EvalALU(in.Op, vals[0], vals[1]), t)
	case in.Op == isa.OpSteer:
		if vals[0] != 0 {
			return s.send(pe, fn, in.Dests, tag, vals[1], t)
		}
		return s.send(pe, fn, in.DestsFalse, tag, vals[1], t)
	case in.Op == isa.OpSelect:
		v := vals[2]
		if vals[0] != 0 {
			v = vals[1]
		}
		return s.send(pe, fn, in.Dests, tag, v, t)
	case in.Op == isa.OpWaveAdvance:
		return s.send(pe, fn, in.Dests, tag.Advance(), vals[0], t)
	case in.Op == isa.OpLoad:
		return s.submitMem(pe, fn, id, in, tag, vals[0], 0, 0, t)
	case in.Op == isa.OpStore:
		if err := s.submitMem(pe, fn, id, in, tag, vals[0], vals[1], 0, t); err != nil {
			return err
		}
		return s.send(pe, fn, in.Dests, tag, vals[1], t)
	case in.Op == isa.OpMemNop:
		if err := s.submitMem(pe, fn, id, in, tag, 0, 0, 0, t); err != nil {
			return err
		}
		return s.send(pe, fn, in.Dests, tag, vals[0], t)
	case in.Op == isa.OpNewCtx:
		ctx := s.nextCtx
		s.nextCtx++
		mi := s.ctxSlab.Alloc()
		*s.ctxSlab.At(mi) = ctxInfo{callerFunc: fn, callerTag: tag, retPad: isa.InstrID(in.TargetPad)}
		s.ctxTab.Put(uint64(ctx), int64(mi))
		if in.Mem.Kind == isa.MemCall {
			if err := s.submitMem(pe, fn, id, in, tag, 0, 0, ctx, t); err != nil {
				return err
			}
		}
		return s.send(pe, fn, in.Dests, tag, int64(ctx), t)
	case in.Op == isa.OpSendArg:
		callee := in.Target
		ctx := uint32(vals[0])
		pad := s.prog.Funcs[callee].Params[in.TargetPad]
		dstPE := s.homePE(callee, pad)
		arr, err := s.sendOperand(pe, dstPE, t)
		if err != nil {
			return err
		}
		s.pushToken(arr, callee, isa.Dest{Instr: pad, Port: 0}, isa.Tag{Ctx: ctx, Wave: 0}, vals[1])
	case in.Op == isa.OpReturn:
		mv, ok := s.ctxTab.Get(uint64(tag.Ctx))
		if !ok {
			return fmt.Errorf("wavecache: return in unknown context %d", tag.Ctx)
		}
		meta := *s.ctxSlab.At(int32(mv))
		s.ctxTab.Delete(uint64(tag.Ctx))
		s.ctxSlab.Release(int32(mv))
		if in.Mem.Kind == isa.MemEnd {
			if err := s.submitMem(pe, fn, id, in, tag, 0, 0, 0, t); err != nil {
				return err
			}
		}
		if meta.retPad == isa.NoInstr {
			s.done = true
			s.result = vals[0]
			return nil
		}
		dstPE := s.homePE(meta.callerFunc, meta.retPad)
		arr, err := s.sendOperand(pe, dstPE, t)
		if err != nil {
			return err
		}
		s.pushToken(arr, meta.callerFunc, isa.Dest{Instr: meta.retPad, Port: 0}, meta.callerTag, vals[0])
	default:
		return fmt.Errorf("wavecache: cannot execute opcode %s", in.Op)
	}
	return nil
}

// issueMem runs when the ordering engine releases a request in program
// order; it performs the timed cache access and routes load replies.
func (s *sim) issueMem(r *waveorder.Request) {
	ci := int32(r.Cookie)
	ck := *s.ckSlab.At(ci)
	s.ckSlab.Release(ci)
	buf := ck.buf
	// The ordering stall is how long the request sat buffered waiting for
	// its wave chain to resolve: issue happens at the current event time,
	// arrival was stamped at submit.
	s.tr.MemIssue(s.now, int(r.Kind), s.now-ck.arrive)
	switch r.Kind {
	case isa.MemLoad:
		start := s.bufIssueTime(buf)
		ar := s.memsys.Access(buf, clampAddr(r.Addr, len(s.memImage)), false)
		done := start + ar.Latency
		if s.cfg.MemMode == MemIdeal {
			// Oracle ordering: timed as if the request issued the moment it
			// fired at its PE.
			done = ck.fireAt + ar.Latency
		}
		if s.cfg.MemMode == MemSerial {
			if start < s.serialEnd {
				start = s.serialEnd
			}
			done = start + ar.Latency
			s.serialEnd = done + s.serialGap()
		}
		var v int64
		if r.Addr >= 0 && r.Addr < int64(len(s.memImage)) {
			v = s.memImage[r.Addr]
		}
		in := &s.prog.Funcs[ck.fn].Instrs[ck.id]
		for _, d := range in.Dests {
			dstPE := s.homePE(ck.fn, d.Instr)
			arr, err := s.memHop(noc.Loc{Cluster: buf}, s.loc(dstPE), done, dstPE)
			if err != nil {
				// issueMem is a callback without an error path; park the
				// fault for the run loop to surface after Submit returns.
				if s.memErr == nil {
					s.memErr = err
				}
				return
			}
			s.pushToken(arr, ck.fn, d, ck.tag, v)
		}
	case isa.MemStore:
		start := s.bufIssueTime(buf)
		ar := s.memsys.Access(buf, clampAddr(r.Addr, len(s.memImage)), true)
		if s.cfg.MemMode == MemSerial {
			if start < s.serialEnd {
				start = s.serialEnd
			}
			s.serialEnd = start + ar.Latency + s.serialGap()
		}
		if r.Addr >= 0 && r.Addr < int64(len(s.memImage)) {
			s.memImage[r.Addr] = r.Value
		}
	default:
		// Ordering-only messages (nop, call, end) consume a buffer slot.
		s.bufIssueTime(buf)
	}
}

// serialGap is the dependence-token round trip between consecutive memory
// operations under MemSerial: the successor's request cannot even be
// formed until a completion token has traveled back through the cluster
// interconnect.
func (s *sim) serialGap() int64 { return 2 * s.cfg.Net.IntraCluster }

// bufState tracks one store buffer's issue bandwidth: the latest granting
// cycle and how many issues it carried.
type bufState struct {
	cycle int64
	used  int64
}

// bufIssueTime grants a store-buffer issue slot at or after the current
// simulation time, BufferWidth per cycle per cluster, FIFO.
func (s *sim) bufIssueTime(cluster int) int64 {
	width := s.cfg.BufferWidth
	if width <= 0 {
		width = 1
	}
	bs := &s.bufBusy[cluster]
	switch {
	case s.now > bs.cycle:
		bs.cycle = s.now
		bs.used = 1
	case bs.used < width:
		bs.used++
	default:
		bs.cycle++
		bs.used = 1
	}
	return bs.cycle
}

func clampAddr(a int64, n int) int64 {
	if a < 0 {
		return 0
	}
	if a >= int64(n) {
		return int64(n - 1)
	}
	return a
}
