package wavecache

import (
	"reflect"
	"sync"
	"testing"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/isa"
	"wavescalar/internal/lang"
	"wavescalar/internal/placement"
	"wavescalar/internal/testprogs"
	"wavescalar/internal/wavec"
)

// mustPol unwraps a policy constructor: the machines tests build are
// always valid, so a construction error is a test bug. It panics (rather
// than t.Fatal) so it is usable inside goroutines and benchmarks.
func mustPol(pol placement.Policy, err error) placement.Policy {
	if err != nil {
		panic(err)
	}
	return pol
}

func compileSource(t testing.TB, src string) *isa.Program {
	t.Helper()
	f, err := lang.ParseAndCheck(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := cfgir.Build(f)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for _, fn := range p.Funcs {
		fn.Compact()
	}
	p.Optimize()
	wp, err := wavec.Compile(p, wavec.Options{})
	if err != nil {
		t.Fatalf("wavec: %v", err)
	}
	return wp
}

// TestSimulatorMatchesEvaluator: the timing simulator must preserve
// functional results and memory images for the whole corpus, under every
// placement policy and memory mode.
func TestSimulatorMatchesEvaluator(t *testing.T) {
	cfg := DefaultConfig(2, 2)
	for _, c := range testprogs.Corpus {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			f, err := lang.ParseAndCheck(c.Src)
			if err != nil {
				t.Fatal(err)
			}
			ev := lang.NewEvaluator(f, 0)
			want, err := ev.Run()
			if err != nil {
				t.Fatal(err)
			}
			wp := compileSource(t, c.Src)
			pol := mustPol(placement.NewDynamicSnake(cfg.Machine))
			res, gotMem, err := RunWithMemory(wp, pol, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Value != want {
				t.Fatalf("value %d, want %d", res.Value, want)
			}
			wantMem := ev.Memory()
			for i := range wantMem {
				if gotMem[i] != wantMem[i] {
					t.Fatalf("memory[%d] = %d, want %d", i, gotMem[i], wantMem[i])
				}
			}
			if res.Cycles <= 0 || res.Fired == 0 {
				t.Fatalf("degenerate run: %+v", res)
			}
		})
	}
}

func TestAllPoliciesAgreeFunctionally(t *testing.T) {
	src := testprogs.Heavy[1].Src // sort_64
	want, err := lang.EvalProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	wp := compileSource(t, src)
	cfg := DefaultConfig(2, 2)
	for _, name := range placement.Names() {
		pol, err := placement.New(name, cfg.Machine, wp, 1234)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(wp, pol, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Value != want {
			t.Errorf("%s: value %d, want %d", name, res.Value, want)
		}
	}
}

func TestAllMemoryModesAgreeFunctionally(t *testing.T) {
	src := testprogs.Corpus[20].Src // mem_raw_order
	want, err := lang.EvalProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	wp := compileSource(t, src)
	var cycles []int64
	for _, mode := range []MemoryMode{MemOrdered, MemSerial, MemIdeal, MemSpec} {
		cfg := DefaultConfig(1, 1)
		cfg.MemMode = mode
		pol := mustPol(placement.NewDynamicSnake(cfg.Machine))
		res, err := Run(wp, pol, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Value != want {
			t.Errorf("%v: value %d, want %d", mode, res.Value, want)
		}
		cycles = append(cycles, res.Cycles)
	}
	// Serialized memory can never beat wave-ordered; ideal can never lose
	// to it on a memory-bound kernel.
	if cycles[1] < cycles[0] {
		t.Errorf("serialized (%d cycles) beat wave-ordered (%d)", cycles[1], cycles[0])
	}
	if cycles[2] > cycles[0] {
		t.Errorf("ideal (%d cycles) slower than wave-ordered (%d)", cycles[2], cycles[0])
	}
	// Speculation can only lose cycles to squash replays, never to extra
	// serialization, so it must stay well inside the serialized bound.
	if cycles[3] > cycles[1] {
		t.Errorf("spec (%d cycles) slower than serialized (%d)", cycles[3], cycles[1])
	}
}

func TestMemoryModesSeparateOnMemoryBoundLoop(t *testing.T) {
	// A long loop of dependent stores + loads: serialization must visibly
	// hurt.
	src := "global a[256];\nfunc main() { for var i = 0; i < 256; i = i + 1 { a[i] = i; } var s = 0; for var i = 0; i < 256; i = i + 1 { s = s + a[i]; } return s; }"
	wp := compileSource(t, src)
	run := func(mode MemoryMode) int64 {
		cfg := DefaultConfig(1, 1)
		cfg.MemMode = mode
		res, err := Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	ordered := run(MemOrdered)
	serial := run(MemSerial)
	if serial <= ordered {
		t.Errorf("serialized memory (%d) not slower than wave-ordered (%d) on a memory-bound loop", serial, ordered)
	}
}

func TestSwapThrashingAtTinyCapacity(t *testing.T) {
	src := testprogs.Heavy[2].Src // matmul_8
	wp := compileSource(t, src)
	run := func(capacity int) (int64, uint64) {
		cfg := DefaultConfig(1, 1)
		cfg.PEStore = capacity
		cfg.Machine.Capacity = capacity
		res, err := Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles, res.Swaps
	}
	bigCycles, bigSwaps := run(64)
	smallCycles, smallSwaps := run(2)
	if smallSwaps <= bigSwaps {
		t.Errorf("capacity 2 swaps (%d) not above capacity 64 swaps (%d)", smallSwaps, bigSwaps)
	}
	if smallCycles <= bigCycles {
		t.Errorf("capacity 2 (%d cycles) not slower than capacity 64 (%d)", smallCycles, bigCycles)
	}
}

func TestRandomPlacementSlower(t *testing.T) {
	// The paper: bad placement costs up to 5x. Placement quality shows up
	// on latency-dominated code — a long serial dependence chain with no
	// parallelism for dispersion to exploit — where scattering dependent
	// instructions across a 4x4 grid must lose to snake packing. (On
	// contention-dominated code like deep recursion the trade-off flips;
	// that is the packing-dispersion tension experiment E8 measures.)
	src := `func main() { var x = 12345; for var i = 0; i < 2000; i = i + 1 { x = (x * 48271) % 2147483647; } return x; }`
	wp := compileSource(t, src)
	cfg := DefaultConfig(4, 4)
	snake, err := Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Run(wp, mustPol(placement.NewRandom(cfg.Machine, 5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if random.Cycles <= snake.Cycles {
		t.Errorf("random placement (%d cycles) not slower than dynamic-snake (%d)", random.Cycles, snake.Cycles)
	}
}

func TestStatsPopulated(t *testing.T) {
	wp := compileSource(t, testprogs.Heavy[1].Src)
	cfg := DefaultConfig(2, 2)
	res, err := Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Error("IPC not computed")
	}
	if res.Tokens == 0 || res.Fired == 0 {
		t.Error("token/fire counters empty")
	}
	if res.Order.Issued == 0 || res.Order.Issued != res.Order.Submitted {
		t.Errorf("ordering stats: %+v", res.Order)
	}
	if res.Mem.Accesses == 0 {
		t.Error("no cache accesses recorded")
	}
	if res.Net.Messages == 0 {
		t.Error("no network messages recorded")
	}
	if res.PEsUsed == 0 {
		t.Error("no PEs used")
	}
	if res.Swaps == 0 {
		t.Error("no instruction fetches recorded (cold misses count)")
	}
}

func TestFuelExhaustion(t *testing.T) {
	wp := compileSource(t, `func main() { var i = 0; while i < 100000 { i = i + 1; } return i; }`)
	cfg := DefaultConfig(1, 1)
	cfg.Fuel = 500
	if _, err := Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg); err == nil {
		t.Fatal("expected fuel exhaustion error")
	}
}

func TestMemoryModeString(t *testing.T) {
	if MemOrdered.String() != "wave-ordered" || MemSerial.String() != "serialized" ||
		MemIdeal.String() != "ideal" || MemSpec.String() != "spec" {
		t.Error("MemoryMode strings wrong")
	}
}

func TestTinyInputQueueCausesOverflow(t *testing.T) {
	wp := compileSource(t, testprogs.Heavy[2].Src)
	cfg := DefaultConfig(1, 1)
	cfg.InputQueue = 1
	res, err := Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflows == 0 {
		t.Error("no overflows with a 1-entry input queue")
	}
	big := DefaultConfig(1, 1)
	big.InputQueue = 1 << 20
	res2, err := Run(wp, mustPol(placement.NewDynamicSnake(big.Machine)), big)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Overflows != 0 {
		t.Errorf("overflows (%d) with an effectively infinite queue", res2.Overflows)
	}
	if res.Cycles <= res2.Cycles {
		t.Errorf("tiny queue (%d cycles) not slower than infinite queue (%d)", res.Cycles, res2.Cycles)
	}
}

// TestConcurrentRunsShareProgram exercises the concurrency contract on
// Run: many simulations of ONE *isa.Program, each with its own policy and
// config, running concurrently must neither race (run under -race) nor
// diverge from each other — every run sees the same read-only program and
// must produce a bit-identical Result.
func TestConcurrentRunsShareProgram(t *testing.T) {
	wp := compileSource(t, testprogs.Heavy[1].Src) // sort_64
	const runs = 8
	results := make([]Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := DefaultConfig(2, 2)
			results[i], errs[i] = Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
		}()
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("run %d diverged:\n%+v\nwant\n%+v", i, results[i], results[0])
		}
	}
	// Mixed configurations sharing the program must also be race-free.
	var wg2 sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			cfg := DefaultConfig(1+i%2, 1+i%2)
			cfg.MemMode = MemoryMode(i % 3)
			if _, err := Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg); err != nil {
				t.Errorf("mixed run %d: %v", i, err)
			}
		}()
	}
	wg2.Wait()
}

func BenchmarkWaveCacheSort(b *testing.B) {
	wp := compileSource(b, testprogs.Heavy[1].Src)
	cfg := DefaultConfig(2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol := mustPol(placement.NewDynamicSnake(cfg.Machine))
		if _, err := Run(wp, pol, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
