package wavecache

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"wavescalar/internal/fault"
	"wavescalar/internal/isa"
	"wavescalar/internal/lang"
	"wavescalar/internal/placement"
	"wavescalar/internal/testprogs"
)

// faultRun compiles src and simulates it under the given fault config on a
// 2x2 grid, installing the config's defect map so placement and simulator
// agree.
func faultRun(t *testing.T, src string, fc fault.Config) (Result, []int64, error) {
	t.Helper()
	wp := compileSource(t, src)
	cfg := DefaultConfig(2, 2)
	cfg.Faults = fc
	cfg.MaxCycles = 20_000_000 // backstop: a faulty run must terminate
	cfg.Machine.Defective = fault.DefectMap(fc, cfg.Machine.NumPEs())
	pol, err := placement.New("dynamic-depth-first-snake", cfg.Machine, wp, 1234)
	if err != nil {
		t.Fatal(err)
	}
	return RunWithMemory(wp, pol, cfg)
}

// TestDisabledFaultsChangeNothing: a zero fault config (plus a generous
// watchdog bound) must produce a bit-identical Result to a build that never
// heard of the fault subsystem.
func TestDisabledFaultsChangeNothing(t *testing.T) {
	src := testprogs.Heavy[1].Src // sort_64
	wp := compileSource(t, src)
	cfg := DefaultConfig(2, 2)
	base, err := Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := DefaultConfig(2, 2)
	cfg2.Faults = fault.Config{} // explicit zero
	cfg2.MaxCycles = 1 << 40
	guarded, err := Run(wp, mustPol(placement.NewDynamicSnake(cfg2.Machine)), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, guarded) {
		t.Fatalf("zero fault config perturbed the simulation:\n%+v\n%+v", base, guarded)
	}
}

// TestChecksumsSurviveRecoverableFaults is the differential invariant: in
// every recoverable scenario — dead PEs at configuration, dropped and
// delayed operand messages, lost store-buffer messages, a PE death mid-run,
// and all of them at once — the faulty machine must still compute the
// fault-free result and final memory image.
func TestChecksumsSurviveRecoverableFaults(t *testing.T) {
	scenarios := []struct {
		name string
		fc   fault.Config
	}{
		{"defects", fault.Config{Seed: 11, DefectRate: 0.25}},
		{"drops", fault.Config{Seed: 11, DropRate: 0.05}},
		{"delays", fault.Config{Seed: 11, DelayRate: 0.2}},
		{"memloss", fault.Config{Seed: 11, MemLossRate: 0.05}},
		{"kill", fault.Config{Seed: 11, KillPE: 0, KillCycle: 200}},
		{"combined", fault.Config{Seed: 11, DefectRate: 0.1, DropRate: 0.02,
			DelayRate: 0.02, MemLossRate: 0.02, KillPE: 1, KillCycle: 500}},
	}
	for _, c := range []int{1, 21} { // add_mul-style + memory-heavy corpus entries
		src := testprogs.Corpus[c].Src
		f, err := lang.ParseAndCheck(src)
		if err != nil {
			t.Fatal(err)
		}
		ev := lang.NewEvaluator(f, 0)
		want, err := ev.Run()
		if err != nil {
			t.Fatal(err)
		}
		wantMem := ev.Memory()
		for _, sc := range scenarios {
			t.Run(testprogs.Corpus[c].Name+"/"+sc.name, func(t *testing.T) {
				res, mem, err := faultRun(t, src, sc.fc)
				if err != nil {
					t.Fatalf("recoverable scenario failed: %v", err)
				}
				if res.Value != want {
					t.Fatalf("value %d, want %d", res.Value, want)
				}
				for i := range wantMem {
					if mem[i] != wantMem[i] {
						t.Fatalf("memory[%d] = %d, want %d", i, mem[i], wantMem[i])
					}
				}
			})
		}
	}
}

// TestFaultyRunReproducible: the same (seed, config) must reproduce a
// faulty run bit-for-bit, including every fault counter.
func TestFaultyRunReproducible(t *testing.T) {
	fc := fault.Config{Seed: 42, DefectRate: 0.2, DropRate: 0.03, DelayRate: 0.05, MemLossRate: 0.03}
	src := testprogs.Heavy[1].Src
	r1, _, err := faultRun(t, src, fc)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := faultRun(t, src, fc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("faulty runs diverged:\n%+v\n%+v", r1, r2)
	}
	if r1.Net.Drops == 0 || r1.Faults.DefectivePEs == 0 {
		t.Fatalf("scenario injected nothing: %+v", r1.Faults)
	}
	// A different seed must (for these rates) produce a different timing.
	fc.Seed = 43
	r3, _, err := faultRun(t, src, fc)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Value != r1.Value {
		t.Fatalf("seed change broke correctness: %d vs %d", r3.Value, r1.Value)
	}
	if r3.Cycles == r1.Cycles && r3.Net.Drops == r1.Net.Drops {
		t.Log("note: different fault seeds produced identical timing (unlikely but legal)")
	}
}

// TestRetryExhaustionIsStructuredError: a message that can never be
// delivered must surface as a *fault.FaultError after bounded retries —
// not a hang, not a panic.
func TestRetryExhaustionIsStructuredError(t *testing.T) {
	for _, sc := range []struct {
		name string
		src  string
		fc   fault.Config
	}{
		{"operand-loss", testprogs.Corpus[1].Src, fault.Config{Seed: 1, DropRate: 1.0, MaxRetries: 2}},
		// mem-loss needs a program that actually issues memory requests.
		{"mem-loss", testprogs.Corpus[21].Src, fault.Config{Seed: 1, MemLossRate: 1.0, MaxRetries: 2}},
	} {
		t.Run(sc.name, func(t *testing.T) {
			_, _, err := faultRun(t, sc.src, sc.fc)
			var fe *fault.FaultError
			if !errors.As(err, &fe) {
				t.Fatalf("want *fault.FaultError, got %v", err)
			}
			if fe.Kind != fault.KindMessageLoss {
				t.Fatalf("kind %v, want message-loss", fe.Kind)
			}
		})
	}
}

// TestWatchdogMaxCycles: an undersized cycle budget must abort with the
// watchdog's diagnostic dump rather than run on — and the dump must be
// deterministic: two runs of the same abort produce byte-identical
// diagnostics (no Go map iteration order leaking into any section), so
// dumps are diffable across runs and engines.
func TestWatchdogMaxCycles(t *testing.T) {
	wp := compileSource(t, testprogs.Heavy[1].Src)
	watchdogDump := func(maxCycles int64) string {
		cfg := DefaultConfig(2, 2)
		cfg.MaxCycles = maxCycles
		_, err := Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
		var fe *fault.FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("want *fault.FaultError, got %v", err)
		}
		if fe.Kind != fault.KindWatchdog {
			t.Fatalf("kind %v, want watchdog", fe.Kind)
		}
		return err.Error()
	}
	// A late trip leaves hundreds of partial tuples and wave-ordering
	// chains in flight — the state most likely to expose nondeterministic
	// rendering.
	for _, maxCycles := range []int64{10, 300} {
		dump := watchdogDump(maxCycles)
		for _, needle := range []string{"watchdog report", "wave-ordering state", "partial operand tuples"} {
			if !strings.Contains(dump, needle) {
				t.Errorf("diagnostic dump missing %q:\n%v", needle, dump)
			}
		}
		if again := watchdogDump(maxCycles); again != dump {
			t.Errorf("max-cycles=%d: two identical aborts produced different dumps:\n--- first ---\n%s\n--- second ---\n%s",
				maxCycles, dump, again)
		}
	}
}

// TestDeadlockDumpDeterministic drives the other diagnostic branch — the
// event queue draining without a program return — with a hand-built
// program whose entry feeds only one port of a two-input add. The abort
// must be a structured watchdog-kind fault carrying the dump, and two
// identical deadlocks must render byte-identical diagnostics.
func TestDeadlockDumpDeterministic(t *testing.T) {
	prog := &isa.Program{
		Entry: 0,
		Funcs: []isa.Function{{
			Name: "main",
			Instrs: []isa.Instruction{
				{Op: isa.OpNop, Dests: []isa.Dest{{Instr: 1, Port: 0}}},
				{Op: isa.OpAdd}, // port 1 never receives a token
			},
			Params:   []isa.InstrID{0},
			NumWaves: 1,
		}},
		MemWords: 64,
	}
	deadlockDump := func() string {
		cfg := DefaultConfig(2, 2)
		_, err := Run(prog, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
		var fe *fault.FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("want *fault.FaultError, got %v", err)
		}
		if fe.Kind != fault.KindWatchdog {
			t.Fatalf("kind %v, want watchdog", fe.Kind)
		}
		return err.Error()
	}
	dump := deadlockDump()
	for _, needle := range []string{"deadlock", "partial operand tuples", "wave-ordering state"} {
		if !strings.Contains(dump, needle) {
			t.Errorf("deadlock dump missing %q:\n%v", needle, dump)
		}
	}
	if again := deadlockDump(); again != dump {
		t.Errorf("two identical deadlocks produced different dumps:\n--- first ---\n%s\n--- second ---\n%s", dump, again)
	}
}

// TestMidRunKillMigrates: a PE death mid-run must be recovered by
// re-placement and counted in the fault stats.
func TestMidRunKillMigrates(t *testing.T) {
	src := testprogs.Heavy[1].Src
	want, err := lang.EvalProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := faultRun(t, src, fault.Config{Seed: 1, KillPE: 0, KillCycle: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want {
		t.Fatalf("value %d, want %d", res.Value, want)
	}
	if res.Faults.PEKills != 1 {
		t.Fatalf("PEKills = %d, want 1", res.Faults.PEKills)
	}
	if res.Faults.MigratedInstrs == 0 {
		t.Error("kill at cycle 100 migrated no instructions; PE 0 should have been busy")
	}
}

// TestKillLastUsablePE: a death that leaves no usable PE is unrecoverable
// and must return a placement-kind fault, not hang.
func TestKillLastUsablePE(t *testing.T) {
	wp := compileSource(t, testprogs.Corpus[1].Src)
	cfg := DefaultConfig(1, 1)
	n := cfg.Machine.NumPEs()
	dead := make([]bool, n)
	for i := 1; i < n; i++ {
		dead[i] = true
	}
	cfg.Machine.Defective = dead
	cfg.Faults = fault.Config{KillPE: 0, KillCycle: 1}
	cfg.MaxCycles = 1 << 30
	pol, err := placement.New("dynamic-snake", cfg.Machine, wp, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(wp, pol, cfg)
	var fe *fault.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("want *fault.FaultError, got %v", err)
	}
	if fe.Kind != fault.KindPlacement {
		t.Fatalf("kind %v, want placement", fe.Kind)
	}
}
