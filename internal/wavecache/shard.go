// The parallel engine: cluster-sharded fork-join over same-timestamp event
// batches.
//
// A discrete-event simulation of a clustered machine has a natural shard
// boundary — the cluster — but WaveScalar's operand network delivers
// same-cycle traffic (pod bypass at +1 cycle, back-dated MemIdeal replies),
// so a classic conservative-lookahead PDES window would be a single cycle
// anyway. The engine therefore synchronizes at the tightest window that is
// always safe: one timestamp. Every event at the current minimum time t is
// popped (in global (time, seq) order) into a batch; a coordinator pass
// classifies each event in batch order, resolving instruction placement at
// exactly the position the sequential engine would; events that touch only
// one shard's state — token deliveries, and firings whose destinations all
// sit in the firing PE's cluster (fixed bus latencies, no shared link
// state) — are farmed out to that shard's worker, while memory, ordering,
// context, and cross-cluster traffic runs inline on the coordinator.
//
// Bit-identity at any shard count is structural, not statistical:
//
//   - shards own disjoint state (their clusters' PEs, operand tables, and
//     a private operand slab), so worker interleaving cannot race;
//   - children produced during a batch are staged, then replayed at the
//     barrier in (batch position, production order) — the exact order the
//     sequential engine would have pushed them — before seq stamping, so
//     the global (time, seq) order is reproduced byte-for-byte;
//   - per-shard counters, network stats, and metrics-only tracers merge
//     with commutative sums/maxes;
//   - the first error by batch position wins, matching sequential
//     first-error semantics (later shards' partial work is discarded with
//     the run);
//   - MemIdeal is the one configuration that can schedule a child EARLIER
//     than the batch being processed (oracle replies are timed from the
//     PE firing, not the issue), and sequentially that child preempts the
//     rest of the batch — so back-dating runs record original seq stamps
//     and truncate the batch at the producing event, restoring the
//     unprocessed tail under its original keys (see restoreTail).
//
// Fault-injected runs and event-stream tracers consume their streams in
// global event order and pin to the sequential engine (see Config.Shards).
package wavecache

import (
	"fmt"
	"runtime"
	"sync"

	"wavescalar/internal/isa"
	"wavescalar/internal/noc"
	"wavescalar/internal/trace"
)

// shardDispatchMin is the smallest batch the parallel engine will classify
// for worker dispatch; smaller batches run inline on the coordinator via
// the sequential path. Dispatch changes scheduling, never ordering, so any
// threshold yields identical results — tests pin it low to force the
// parallel machinery, and a single-hardware-thread host pins it high
// because farming work out can only add scheduling latency there.
var shardDispatchMin = defaultDispatchMin()

// dispatchOff is the sentinel threshold meaning worker dispatch can never
// trigger. When it is in effect the engine collapses multi-shard configs
// to the sequential loop outright (see setup): the sharded outer loop
// would execute the identical global (time, seq) order with batch
// bookkeeping as pure overhead.
const dispatchOff = 1 << 30

func defaultDispatchMin() int {
	if runtime.GOMAXPROCS(0) > 1 {
		return 16
	}
	return dispatchOff
}

// SetShardDispatchMin overrides the dispatch threshold and returns the
// previous value — a hook for cross-package invariance tests that must
// force worker dispatch on hosts where the default disables it. Results
// are bit-identical at any threshold; this only steers scheduling. Not
// safe to change while runs are in flight.
func SetShardDispatchMin(n int) int {
	old := shardDispatchMin
	shardDispatchMin = n
	return old
}

// shardCounters is the execution counter set kept per shard and merged at
// batch barriers.
type shardCounters struct {
	tokens, swaps, overflows, fired uint64
}

func (c *shardCounters) add(o *shardCounters) {
	c.tokens += o.tokens
	c.swaps += o.swaps
	c.overflows += o.overflows
	c.fired += o.fired
}

// stagedEv is a child event produced while a batch is in flight: pos is the
// producing batch position, shard the destination queue. Replaying staged
// children in (position, production order) at the barrier reproduces the
// sequential engine's push order — and therefore its seq stamps — exactly.
type stagedEv struct {
	pos   int32
	shard int32
	e     event
}

// stageBuf collects one producer's staged children, in production order.
type stageBuf struct {
	pos int32
	evs []stagedEv
}

// shardWorker owns one shard's execution while a batch is dispatched: its
// clusters' slices of the sim's PE and operand-table arrays, its operand
// slab, private counters and network stats, an optional metrics-only
// tracer, and a staging buffer. Everything else it touches on the sim is
// frozen for the duration of the batch (program, config, caches resolved
// by the classification pass).
type shardWorker struct {
	s      *sim
	id     int32
	cnt    shardCounters
	net    noc.Stats
	tr     *trace.Tracer
	stage  stageBuf
	jobs   []int32
	err    error
	errPos int32
	in     chan []int32
}

// shardRT is the parallel runtime, kept on the Arena so batch buffers and
// worker structures recycle across runs. Worker goroutines are started on
// the first dispatched batch of a run and always stopped before Run
// returns.
type shardRT struct {
	workers []*shardWorker
	running bool
	wg      sync.WaitGroup
	batch   []event
	seqs    []uint64 // original seq stamps, recorded only for back-dating runs
	owners  []int32  // batch position -> owning shard, -1 = coordinator
	cstage  stageBuf
	cursor  []int
	batches uint64 // dispatched batches this run (test observability)
}

// ensureRT readies the runtime for this run's shard count, zeroing every
// per-run accumulator.
func (s *sim) ensureRT() *shardRT {
	rt := s.par
	if rt == nil {
		rt = &shardRT{}
		s.par = rt
	}
	for len(rt.workers) < s.nsh {
		rt.workers = append(rt.workers, &shardWorker{id: int32(len(rt.workers))})
	}
	rt.workers = rt.workers[:s.nsh]
	rt.batches = 0
	for _, w := range rt.workers {
		w.s = s
		w.cnt = shardCounters{}
		w.net = noc.Stats{}
		w.err = nil
		w.stage.evs = w.stage.evs[:0]
		w.jobs = w.jobs[:0]
		w.tr = nil
		if s.tr != nil {
			// Metrics-only shadow of the run tracer (parallel runs never
			// have an event stream; see Config.Shards).
			w.tr = trace.New(trace.Config{})
		}
	}
	return rt
}

func (rt *shardRT) start() {
	if rt.running {
		return
	}
	rt.running = true
	for _, w := range rt.workers {
		w.in = make(chan []int32, 1)
		go w.loop()
	}
}

func (rt *shardRT) stop() {
	if !rt.running {
		return
	}
	rt.running = false
	for _, w := range rt.workers {
		close(w.in)
	}
}

func (w *shardWorker) loop() {
	for jobs := range w.in {
		w.run(jobs)
		w.s.par.wg.Done()
	}
}

// run processes this shard's slice of the batch, in batch-position order.
// On error it records the failing position and stops; the coordinator
// picks the globally earliest error.
func (w *shardWorker) run(jobs []int32) {
	rt := w.s.par
	for _, p := range jobs {
		e := &rt.batch[p]
		w.stage.pos = p
		var err error
		if e.kind == evToken {
			err = w.deliver(e)
		} else {
			err = w.fire(e)
		}
		if err != nil {
			w.err, w.errPos = err, p
			return
		}
	}
}

// deliver lands a shard-local token. The home is guaranteed resolved (the
// classification pass resolved it), so this never touches the policy.
func (w *shardWorker) deliver(e *event) error {
	s := w.s
	pe := int(s.homes[s.instrBase[e.fn]+int(e.dest.Instr)])
	fireAt, vals, fire, err := s.deliverAt(e, pe, w.id, &w.cnt, w.tr)
	if err != nil || !fire {
		return err
	}
	w.stage.evs = append(w.stage.evs, stagedEv{pos: w.stage.pos, shard: w.id,
		e: event{time: fireAt, kind: evFire, fn: e.fn, dest: e.dest, tag: e.tag, vals: vals}})
	return nil
}

// fire executes a shard-local firing: an op from the pure compute subset
// whose destinations the classification pass proved cluster-local. Sends
// ride the stateless intra-cluster buses (noc.SendLocal), charging this
// worker's stats and tracer; fuel is reserved batch-wide by the
// coordinator, so no budget check happens here.
func (w *shardWorker) fire(e *event) error {
	s := w.s
	w.cnt.fired++
	fn, id, tag, vals := e.fn, e.dest.Instr, e.tag, e.vals
	in := &s.prog.Funcs[fn].Instrs[id]
	pe := int(s.homes[s.instrBase[fn]+int(id)])
	t := e.time
	if w.tr != nil {
		l := s.locs[pe]
		w.tr.Fire(t, pe, l.Cluster, l.Domain)
	}
	var dests []isa.Dest
	val := vals[0]
	switch {
	case in.Op == isa.OpNop:
		dests = in.Dests
	case in.Op == isa.OpConst:
		dests, val = in.Dests, in.Imm
	case isa.IsALU(in.Op):
		dests, val = in.Dests, isa.EvalALU(in.Op, vals[0], vals[1])
	case in.Op == isa.OpSteer:
		if vals[0] != 0 {
			dests = in.Dests
		} else {
			dests = in.DestsFalse
		}
		val = vals[1]
	case in.Op == isa.OpSelect:
		dests, val = in.Dests, vals[2]
		if vals[0] != 0 {
			val = vals[1]
		}
	case in.Op == isa.OpWaveAdvance:
		dests, tag = in.Dests, tag.Advance()
	default:
		// Unreachable: classify only routes the compute subset here.
		return fmt.Errorf("wavecache: op %v dispatched to shard worker", in.Op)
	}
	src := s.locs[pe]
	for _, d := range dests {
		dstPE := int(s.homes[s.instrBase[fn]+int(d.Instr)])
		arr := s.net.SendLocal(src, s.locs[dstPE], t, &w.net, w.tr)
		w.stage.evs = append(w.stage.evs, stagedEv{pos: w.stage.pos, shard: s.shardFor(dstPE),
			e: event{time: arr, kind: evToken, fn: fn, dest: d, tag: tag, val: val}})
	}
	return nil
}

// runPar is the parallel engine's outer loop: batch events by timestamp,
// classify, dispatch, merge.
func (s *sim) runPar() error {
	rt := s.ensureRT()
	defer rt.stop()
	for {
		sh := s.minFrontShard()
		if sh < 0 {
			return nil
		}
		// Cancellation polls once per batch: coarser than the sequential
		// engine's event-count poll, identical results by the
		// results-neutrality contract of Config.Cancel.
		if s.cfg.Cancel != nil {
			select {
			case <-s.cfg.Cancel:
				return s.cancelErr()
			default:
			}
		}
		t := s.qs[sh].heap[0].time
		if s.cfg.MaxCycles > 0 && t > s.cfg.MaxCycles {
			// Mirror the sequential dump state exactly: the tripping event
			// is popped, the rest of the queue is not.
			q := &s.qs[sh]
			q.release(q.pop())
			return s.watchdogErr(t)
		}
		// Collect every event at time t, in global (time, seq) order.
		// Children pushed while processing land strictly later in that
		// order, so batch membership is exactly the sequential engine's
		// consecutive run of time-t pops.
		rt.batch = rt.batch[:0]
		rt.seqs = rt.seqs[:0]
		for {
			q := &s.qs[sh]
			if s.backdate {
				// Keep the original stamps: a truncated batch restores its
				// unprocessed tail under the same (time, seq) keys.
				rt.seqs = append(rt.seqs, q.heap[0].seq)
			}
			idx := q.pop()
			rt.batch = append(rt.batch, q.slab[idx])
			q.release(idx)
			sh = s.minFrontShard()
			if sh < 0 || s.qs[sh].heap[0].time != t {
				break
			}
		}
		// A batch of nothing but dead deferred-speculation probes must
		// not advance the clock — the sequential engine drops each such
		// probe before its time bookkeeping. Liveness cannot change
		// inside an all-probe batch (only memory issues kill cookies, and
		// probes never issue), so this collection-time scan matches the
		// per-pop sequential decision exactly.
		live := false
		for i := range rt.batch {
			if e := &rt.batch[i]; e.kind != evSpecProbe || s.specProbeLive(e) {
				live = true
				break
			}
		}
		if !live {
			continue
		}
		if t > s.now {
			s.now = t
		}
		if t > s.maxT {
			s.maxT = t
		}
		if s.backdate {
			// Arm the preempt trigger: any child pushed earlier than t
			// while this batch runs must truncate it (see restoreTail).
			s.batchT = t
			s.preempt = false
		}
		if len(rt.batch) < shardDispatchMin || int64(len(rt.batch)) > s.fuel {
			// Inline: exactly the sequential engine over this batch. The
			// fuel guard keeps budget exhaustion on the sequential path
			// (each event consumes at most one unit), so the failing
			// instruction is identical at any shard count.
			for i := range rt.batch {
				if err := s.processEvent(&rt.batch[i]); err != nil {
					return err
				}
				// A back-dated child (a MemIdeal reply timed from its
				// firing) pops before the rest of this batch in the
				// sequential order: restore the unprocessed tail and
				// re-enter the outer loop so it does here too.
				if s.preempt && i+1 < len(rt.batch) {
					s.restoreTail(rt, i+1)
					break
				}
			}
			continue
		}
		if err := s.runBatch(rt); err != nil {
			return err
		}
	}
}

// minFrontShard returns the shard whose queue front is the global minimum
// (time, seq), or -1 when every queue is empty.
func (s *sim) minFrontShard() int32 {
	best := int32(-1)
	var bt int64
	var bs uint64
	for i := range s.qs {
		h := s.qs[i].heap
		if len(h) == 0 {
			continue
		}
		if best < 0 || h[0].time < bt || (h[0].time == bt && h[0].seq < bs) {
			best, bt, bs = int32(i), h[0].time, h[0].seq
		}
	}
	return best
}

// runBatch classifies, dispatches, and merges one same-timestamp batch.
func (s *sim) runBatch(rt *shardRT) error {
	rt.batches++
	n := len(rt.batch)
	rt.owners = rt.owners[:0]
	rt.cstage.evs = rt.cstage.evs[:0]
	for _, w := range rt.workers {
		w.jobs = w.jobs[:0]
		w.stage.evs = w.stage.evs[:0]
		w.err = nil
	}

	// Classification, in batch order: placement resolves here — the exact
	// order the sequential engine would resolve it — coordinator-owned
	// events run inline immediately (staging their children), and
	// shard-local events defer to per-shard job lists.
	s.stage = &rt.cstage
	var gerr error
	gpos := n
	cut := n
	for p := 0; p < n; p++ {
		e := &rt.batch[p]
		rt.cstage.pos = int32(p)
		own := s.classify(e)
		rt.owners = append(rt.owners, own)
		if own >= 0 {
			w := rt.workers[own]
			w.jobs = append(w.jobs, int32(p))
			continue
		}
		if err := s.processEvent(e); err != nil {
			// Stop classifying: positions past p must not run (their jobs
			// are never built), matching the sequential abort point —
			// unless an earlier-position shard job also fails below.
			gerr, gpos = err, p
			break
		}
		// A back-dated child (a MemIdeal reply timed from its firing)
		// pops before the rest of this batch in the sequential order:
		// truncate here, merge the prefix, and restore the tail below.
		// Shard-local work never back-dates (deliveries and local sends
		// only add latency), so only coordinator pushes arm preempt.
		if s.preempt && p+1 < n {
			cut = p + 1
			s.preempt = false
			break
		}
	}
	s.stage = nil

	// Execute shard jobs: in parallel when at least two shards have work,
	// inline otherwise. Shards touch disjoint state and children are
	// replayed by position below, so both schedules produce identical
	// results.
	active := 0
	for _, w := range rt.workers {
		if len(w.jobs) > 0 {
			active++
		}
	}
	if active >= 2 {
		rt.start()
		for _, w := range rt.workers {
			if len(w.jobs) > 0 {
				rt.wg.Add(1)
				w.in <- w.jobs
			}
		}
		rt.wg.Wait()
	} else if active == 1 {
		for _, w := range rt.workers {
			if len(w.jobs) > 0 {
				w.run(w.jobs)
			}
		}
	}

	// The earliest batch position's error wins — sequential first-error
	// semantics. Errors discard the run (and all staged work) entirely.
	err, epos := gerr, gpos
	for _, w := range rt.workers {
		if w.err != nil && int(w.errPos) < epos {
			err, epos = w.err, int(w.errPos)
		}
	}
	if err != nil {
		return err
	}

	// Barrier bookkeeping: fold worker counters (fuel was consumed by
	// local firings one unit each), then replay staged children in
	// (position, production order) with fresh global seq stamps.
	for _, w := range rt.workers {
		s.fuel -= int64(w.cnt.fired)
		s.cnt.add(&w.cnt)
		w.cnt = shardCounters{}
	}
	if cap(rt.cursor) < len(rt.workers) {
		rt.cursor = make([]int, len(rt.workers))
	}
	cur := rt.cursor[:len(rt.workers)]
	for i := range cur {
		cur[i] = 0
	}
	cc := 0
	for p := 0; p < cut; p++ {
		if own := rt.owners[p]; own >= 0 {
			w := rt.workers[own]
			for cur[own] < len(w.stage.evs) && w.stage.evs[cur[own]].pos == int32(p) {
				s.pushStaged(&w.stage.evs[cur[own]])
				cur[own]++
			}
		} else {
			for cc < len(rt.cstage.evs) && rt.cstage.evs[cc].pos == int32(p) {
				s.pushStaged(&rt.cstage.evs[cc])
				cc++
			}
		}
	}
	if cut < n {
		s.restoreTail(rt, cut)
	}
	return nil
}

// restoreTail returns the unprocessed batch tail [from, len) to the event
// system under its original (time, seq) keys, so a back-dated child runs
// before it — exactly the sequential pop order. Queue membership never
// affects ordering, so the events all board queue 0.
func (s *sim) restoreTail(rt *shardRT, from int) {
	q := &s.qs[0]
	for i := from; i < len(rt.batch); i++ {
		idx := q.alloc()
		q.slab[idx] = rt.batch[i]
		q.push(idx, rt.batch[i].time, rt.seqs[i])
	}
}

func (s *sim) pushStaged(st *stagedEv) {
	q := &s.qs[st.shard]
	i := q.alloc()
	q.slab[i] = st.e
	q.push(i, st.e.time, s.seq)
	s.seq++
}

// classify returns the owning shard for a batch event, or -1 for events
// that must run on the coordinator: memory, ordering, and context
// operations, cross-cluster firings (mesh link state is shared), and
// everything else outside the pure compute subset. It resolves placement
// for exactly the instruction references the sequential engine would
// resolve processing this event, in the same order — whether or not the
// event ends up shard-local.
func (s *sim) classify(e *event) int32 {
	switch e.kind {
	case evToken:
		return s.shardFor(s.homePE(e.fn, e.dest.Instr))
	case evFire:
		pe := s.homePE(e.fn, e.dest.Instr)
		in := &s.prog.Funcs[e.fn].Instrs[e.dest.Instr]
		var dests []isa.Dest
		switch {
		case in.Op == isa.OpNop, in.Op == isa.OpConst, isa.IsALU(in.Op),
			in.Op == isa.OpSelect, in.Op == isa.OpWaveAdvance:
			dests = in.Dests
		case in.Op == isa.OpSteer:
			// The sequential engine resolves only the taken side's homes.
			if e.vals[0] != 0 {
				dests = in.Dests
			} else {
				dests = in.DestsFalse
			}
		default:
			return -1
		}
		cl := s.locs[pe].Cluster
		local := true
		for _, d := range dests {
			// Resolve every destination even after the first cross-cluster
			// one: the sequential firing would resolve them all too.
			if s.locs[s.homePE(e.fn, d.Instr)].Cluster != cl {
				local = false
			}
		}
		if !local {
			return -1
		}
		return s.shardOf[cl]
	default: // evMemArrive
		return -1
	}
}
