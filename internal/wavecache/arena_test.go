package wavecache

import (
	"testing"

	"wavescalar/internal/placement"
	"wavescalar/internal/testprogs"
)

// TestArenaReuseBitIdentical pins the Arena contract: a reused arena — even
// one hopping between different programs and machine shapes — produces
// Results bit-identical to a fresh simulator for every run.
func TestArenaReuseBitIdentical(t *testing.T) {
	progs := []struct {
		name string
		src  string
	}{
		{testprogs.Heavy[0].Name, testprogs.Heavy[0].Src},
		{testprogs.Heavy[1].Name, testprogs.Heavy[1].Src},
	}
	shapes := [][2]int{{1, 1}, {2, 2}}

	a := NewArena()
	for round := 0; round < 2; round++ {
		for _, pr := range progs {
			wp := compileSource(t, pr.src)
			for _, sh := range shapes {
				cfg := DefaultConfig(sh[0], sh[1])
				want, err := Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
				if err != nil {
					t.Fatalf("%s %dx%d fresh: %v", pr.name, sh[0], sh[1], err)
				}
				got, err := a.Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
				if err != nil {
					t.Fatalf("%s %dx%d arena: %v", pr.name, sh[0], sh[1], err)
				}
				if got != want {
					t.Fatalf("%s %dx%d round %d: arena result diverged\n got %+v\nwant %+v",
						pr.name, sh[0], sh[1], round, got, want)
				}
			}
		}
	}
}

// TestArenaSteadyStateAllocs pins the tentpole claim: once an arena has
// run a workload at a shape, re-running that cell allocates (nearly)
// nothing inside the simulator. The placement policy is constructed fresh
// per run — as the concurrency contract requires — so the budget subtracts
// its construction cost, isolating the simulator's own fire/deliver/memory
// path.
func TestArenaSteadyStateAllocs(t *testing.T) {
	wp := compileSource(t, testprogs.Heavy[0].Src)
	cfg := DefaultConfig(2, 2)
	a := NewArena()
	// Warm the arena to its high-water mark.
	for i := 0; i < 2; i++ {
		if _, err := a.Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg); err != nil {
			t.Fatal(err)
		}
	}

	polOnly := testing.AllocsPerRun(5, func() {
		mustPol(placement.NewDynamicSnake(cfg.Machine))
	})
	cell := testing.AllocsPerRun(5, func() {
		if _, err := a.Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg); err != nil {
			t.Fatal(err)
		}
	})
	simAllocs := cell - polOnly
	t.Logf("policy construction: %.0f allocs; full cell: %.0f allocs; simulator core: %.0f allocs", polOnly, cell, simAllocs)
	// The pre-pooling simulator allocated on the order of 10^5 times for
	// this cell; the budget is a hard regression tripwire, not a tuning
	// target.
	if simAllocs > 64 {
		t.Fatalf("steady-state simulator core allocated %.0f times per run, budget 64", simAllocs)
	}
}

// BenchmarkRunFresh/BenchmarkRunArena measure what arena reuse saves on a
// full simulation cell.
func BenchmarkRunFresh(b *testing.B) {
	wp := compileSource(b, testprogs.Heavy[0].Src)
	cfg := DefaultConfig(2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunArena(b *testing.B) {
	wp := compileSource(b, testprogs.Heavy[0].Src)
	cfg := DefaultConfig(2, 2)
	a := NewArena()
	if _, err := a.Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
