package wavecache

import (
	"reflect"
	"strings"
	"testing"

	"wavescalar/internal/fault"
	"wavescalar/internal/lang"
	"wavescalar/internal/placement"
	"wavescalar/internal/testprogs"
)

// specConflictSrc is a hand-built violation workload: the store's value
// and address hang off a long scalar chain, while the summation loads
// below it have constant addresses whose requests reach the store buffer
// long before the store resolves. Under MemSpec those loads speculate,
// the store then commits over one of their addresses, and the first
// load to validate catches the intervening committed store — squashing
// the epoch and replaying its remaining speculations in order.
const specConflictSrc = `global a[16];
func main() {
	for var i = 0; i < 16; i = i + 1 { a[i] = i + 1; }
	var x = 12345;
	for var i = 0; i < 60; i = i + 1 { x = (x * 48271) % 2147483647; }
	var k = x % 2;
	a[k] = 7;
	var s = a[0] + a[1] + a[2] + a[3];
	return s + k;
}`

// specForwardSrc targets the versioned-store-buffer forwarding path: the
// a[j] store at the head of the wave resolves last, so the cheap a[1]
// store behind it buffers and speculates into the versioned store
// buffer, and the a[1] load behind that speculates and forwards from it.
// j lands in {4, 5}, so the slow store never collides and the forward
// validates cleanly at commit.
const specForwardSrc = `global a[16];
func main() {
	var x = 12345;
	for var i = 0; i < 60; i = i + 1 { x = (x * 48271) % 2147483647; }
	var j = x % 2 + 4;
	a[j] = x;
	a[1] = 42;
	var y = a[1];
	return y * 10 + a[j] % 100;
}`

// specRun executes src under the given memory mode, returning the result
// and a copy of the final memory image.
func specRun(t *testing.T, src string, mode MemoryMode, shards int) (Result, []int64) {
	t.Helper()
	wp := compileSource(t, src)
	cfg := DefaultConfig(2, 2)
	cfg.MemMode = mode
	cfg.Shards = shards
	a := NewArena()
	res, err := a.Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, append([]int64(nil), a.s.memImage...)
}

// TestSpecDeterministicReplay pins the squash-and-replay path end to
// end: the conflict workload must squash exactly one epoch, replay a
// fixed number of speculations, produce the program-order result and
// memory image, and repeat all of it bit-for-bit on a second run.
func TestSpecDeterministicReplay(t *testing.T) {
	f, err := lang.ParseAndCheck(specConflictSrc)
	if err != nil {
		t.Fatal(err)
	}
	ev := lang.NewEvaluator(f, 0)
	want, err := ev.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantMem := ev.Memory()

	res, mem := specRun(t, specConflictSrc, MemSpec, 0)
	t.Logf("spec stats: %+v", res.Spec)
	if res.Value != want {
		t.Fatalf("value %d, want %d", res.Value, want)
	}
	for i := range wantMem {
		if mem[i] != wantMem[i] {
			t.Fatalf("memory[%d] = %d, want %d", i, mem[i], wantMem[i])
		}
	}
	if res.Spec.Squashes != 1 {
		t.Errorf("Squashes = %d, want exactly 1", res.Spec.Squashes)
	}
	if res.Spec.Conflicts != 1 {
		t.Errorf("Conflicts = %d, want exactly 1", res.Spec.Conflicts)
	}
	if res.Spec.ReplayedOps != 3 {
		t.Errorf("ReplayedOps = %d, want 3 (the conflicting load plus the two still-speculative ones)",
			res.Spec.ReplayedOps)
	}
	if res.Spec.ReplayCycles == 0 {
		t.Error("replayed ops charged no cycles")
	}

	// Byte-for-byte repeatability: a second run is the same struct, down
	// to every counter.
	res2, mem2 := specRun(t, specConflictSrc, MemSpec, 0)
	if !reflect.DeepEqual(res, res2) {
		t.Fatalf("replay run not deterministic:\n%+v\n%+v", res, res2)
	}
	if !reflect.DeepEqual(mem, mem2) {
		t.Fatal("replay memory image not deterministic")
	}

	// And the ordered mode agrees on everything architectural.
	resO, memO := specRun(t, specConflictSrc, MemOrdered, 0)
	if resO.Value != res.Value || !reflect.DeepEqual(mem, memO) {
		t.Fatal("spec and wave-ordered disagree on architectural state")
	}
}

// TestSpecStoreForwarding pins the clean forwarding path: a speculative
// load served out of the versioned store buffer validates at commit
// (the forwarding store is still the last committer) and nothing
// squashes.
func TestSpecStoreForwarding(t *testing.T) {
	want, err := lang.EvalProgram(specForwardSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := specRun(t, specForwardSrc, MemSpec, 0)
	t.Logf("spec stats: %+v", res.Spec)
	if res.Value != want {
		t.Fatalf("value %d, want %d", res.Value, want)
	}
	if res.Spec.Forwards == 0 {
		t.Errorf("no loads forwarded from the versioned store buffer: %+v", res.Spec)
	}
	if res.Spec.Conflicts != 0 || res.Spec.Squashes != 0 {
		t.Errorf("clean forward workload conflicted: %+v", res.Spec)
	}
}

// TestSpecShardInvariance: MemSpec results, speculation counters, and
// memory images are byte-identical at every shard count — speculation
// state is coordinator-owned, so the sharded engine must not perturb it.
func TestSpecShardInvariance(t *testing.T) {
	forceDispatch(t)
	progs := []struct{ name, src string }{
		{"conflict", specConflictSrc},
		{"forward", specForwardSrc},
		{testprogs.Heavy[1].Name, testprogs.Heavy[1].Src}, // sort_64
	}
	for _, p := range progs {
		t.Run(p.name, func(t *testing.T) {
			base, baseMem := specRun(t, p.src, MemSpec, 1)
			if base.Spec.Issued == 0 {
				t.Errorf("workload never speculated; test is vacuous: %+v", base.Spec)
			}
			for _, n := range []int{2, 4, 64} { // 64 clamps to the 4 clusters
				res, mem := specRun(t, p.src, MemSpec, n)
				if !reflect.DeepEqual(base, res) {
					t.Fatalf("shards=%d diverged:\n%+v\n%+v", n, base, res)
				}
				if !reflect.DeepEqual(baseMem, mem) {
					t.Fatalf("shards=%d memory image diverged", n)
				}
			}
		})
	}
}

// TestSpecShardInvarianceUnderPEKill: a mid-run PE kill under MemSpec
// (fault injection pins the sequential engine, so this is about the
// recovery machinery interacting with in-flight speculation) recovers
// the correct result at every shard setting, bit-identically.
func TestSpecShardInvarianceUnderPEKill(t *testing.T) {
	forceDispatch(t)
	src := testprogs.Heavy[1].Src
	want, err := lang.EvalProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	fc := fault.Config{Seed: 11, KillPE: 0, KillCycle: 500}
	run := func(shards int) Result {
		wp := compileSource(t, src)
		cfg := DefaultConfig(2, 2)
		cfg.MemMode = MemSpec
		cfg.Shards = shards
		cfg.Faults = fc
		cfg.MaxCycles = 20_000_000
		cfg.Machine.Defective = fault.DefectMap(fc, cfg.Machine.NumPEs())
		res, err := Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	if base.Value != want {
		t.Fatalf("value %d, want %d", base.Value, want)
	}
	if base.Faults.PEKills != 1 {
		t.Fatalf("no PE killed: %+v", base.Faults)
	}
	for _, n := range []int{2, 4, 64} {
		if res := run(n); !reflect.DeepEqual(base, res) {
			t.Fatalf("spec run under PE kill diverged at shards=%d:\n%+v\n%+v", n, base, res)
		}
	}
}

// TestSpecWatchdogDumpIncludesSpeculation: a watchdog abort under
// MemSpec must render the speculation subsystem (in-flight epochs,
// squash streak, totals) in its diagnostic dump.
func TestSpecWatchdogDumpIncludesSpeculation(t *testing.T) {
	wp := compileSource(t, testprogs.Heavy[1].Src)
	cfg := DefaultConfig(2, 2)
	cfg.MemMode = MemSpec
	cfg.MaxCycles = 300
	_, err := Run(wp, mustPol(placement.NewDynamicSnake(cfg.Machine)), cfg)
	if err == nil {
		t.Fatal("expected watchdog abort")
	}
	dump := err.Error()
	for _, want := range []string{"speculation state", "epochs in flight", "squash streak"} {
		if !strings.Contains(dump, want) {
			t.Errorf("watchdog dump missing %q:\n%s", want, dump)
		}
	}
}

// TestSpecMatchesEvaluatorOnCorpus: MemSpec preserves functional results
// and memory images across the whole corpus — values never come from
// speculation, so this holds whatever the conflict pattern.
func TestSpecMatchesEvaluatorOnCorpus(t *testing.T) {
	for _, c := range testprogs.Corpus {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			f, err := lang.ParseAndCheck(c.Src)
			if err != nil {
				t.Fatal(err)
			}
			ev := lang.NewEvaluator(f, 0)
			want, err := ev.Run()
			if err != nil {
				t.Fatal(err)
			}
			wantMem := ev.Memory()
			res, mem := specRun(t, c.Src, MemSpec, 0)
			if res.Value != want {
				t.Fatalf("value %d, want %d", res.Value, want)
			}
			for i := range wantMem {
				if mem[i] != wantMem[i] {
					t.Fatalf("memory[%d] = %d, want %d", i, mem[i], wantMem[i])
				}
			}
		})
	}
}
