package wavecache

import (
	"math/rand"
	"testing"
)

// TestWheelQueueDifferential drives a calendar-wheel queue and a heap
// queue with the identical randomized push/pop schedule and requires the
// identical pop sequence. Pushes follow the engine's contract — times at
// or after the last popped event's time, seq stamps monotone — but are
// otherwise adversarial: bursts at the current cycle, deltas straddling
// the ring window (forcing heap overflow), long dead stretches that make
// the cursor jump, and occasional duplicate times.
func TestWheelQueueDifferential(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(900 + trial)))
		var wq, hq eventQueue
		wq.setWheel(true)

		var seq uint64
		now := int64(0)
		push := func(tm int64) {
			for _, q := range []*eventQueue{&wq, &hq} {
				i := q.alloc()
				q.slab[i] = event{time: tm, val: int64(seq)}
				q.push(i, tm, seq)
			}
			seq++
		}
		pop := func() {
			wi, hi := wq.pop(), hq.pop()
			we, he := wq.slab[wi], hq.slab[hi]
			if we.time != he.time || we.val != he.val {
				t.Fatalf("trial %d: wheel popped (t=%d seq=%d), heap popped (t=%d seq=%d)",
					trial, we.time, we.val, he.time, he.val)
			}
			if we.time < now {
				t.Fatalf("trial %d: pop went backwards: %d after %d", trial, we.time, now)
			}
			now = we.time
			wq.release(wi)
			hq.release(hi)
		}

		push(0)
		for op := 0; op < 8000; op++ {
			if wq.len() != hq.len() {
				t.Fatalf("trial %d: len mismatch wheel=%d heap=%d", trial, wq.len(), hq.len())
			}
			if wq.len() == 0 || (rng.Intn(3) > 0 && wq.len() < 400) {
				var d int64
				switch rng.Intn(10) {
				case 0: // far future: overflows the ring window
					d = int64(wheelSize + rng.Intn(3*wheelSize))
				case 1: // straddle the window edge
					d = int64(wheelSize - 2 + rng.Intn(5))
				case 2: // long dead stretch: cursor must jump
					d = int64(500 + rng.Intn(2000))
				default: // near future, heavy same-cycle traffic
					d = int64(rng.Intn(4))
				}
				push(now + d)
			} else {
				pop()
			}
		}
		for wq.len() > 0 {
			pop()
		}
		if hq.len() != 0 {
			t.Fatalf("trial %d: heap retains %d events after wheel drained", trial, hq.len())
		}
	}
}

// TestWheelQueuePastPush pins the defensive path: a push behind the drain
// cursor (impossible for the gated engine, but the queue must stay exact
// if a future memory model produces one) boards the overflow heap and
// still pops in global (time, seq) order, before anything at the cursor.
func TestWheelQueuePastPush(t *testing.T) {
	var wq, hq eventQueue
	wq.setWheel(true)

	var seq uint64
	push := func(tm int64) {
		for _, q := range []*eventQueue{&wq, &hq} {
			i := q.alloc()
			q.slab[i] = event{time: tm, val: int64(seq)}
			q.push(i, tm, seq)
		}
		seq++
	}
	popBoth := func() (int64, int64) {
		wi, hi := wq.pop(), hq.pop()
		we, he := wq.slab[wi], hq.slab[hi]
		if we.time != he.time || we.val != he.val {
			t.Fatalf("wheel popped (t=%d seq=%d), heap popped (t=%d seq=%d)",
				we.time, we.val, he.time, he.val)
		}
		wq.release(wi)
		hq.release(hi)
		return we.time, we.val
	}

	push(10)
	push(10)
	if tm, _ := popBoth(); tm != 10 {
		t.Fatalf("expected t=10 first, got %d", tm)
	}
	// Cursor now at 10; back-date below it, plus same-cycle and future
	// company, and verify the back-dated pair drains first in seq order.
	push(3)
	push(10)
	push(3)
	push(12)
	want := []struct{ tm, sq int64 }{{3, 2}, {3, 4}, {10, 1}, {10, 3}, {12, 5}}
	for _, w := range want {
		tm, sq := popBoth()
		if tm != w.tm || sq != w.sq {
			t.Fatalf("got (t=%d seq=%d), want (t=%d seq=%d)", tm, sq, w.tm, w.sq)
		}
	}
	if wq.len() != 0 {
		t.Fatalf("queue not drained: %d left", wq.len())
	}
}
