package wavecache

// Speculative transactional wave-ordered memory (MemSpec): the
// Transactional WaveCache's implicit-transaction protocol grafted onto
// the wave-ordered store buffers. A memory request that has sat buffered
// behind unresolved wave-order predecessors for specDelay cycles does not
// keep idling — it accesses the cache hierarchy speculatively (stores
// buffering their value in a versioned store buffer, loads forwarding
// from it when an in-flight speculative store covers their address), on
// spare store-buffer ports, riding bandwidth in-order issue would have
// left unused. Every request
// still COMMITS strictly in wave order through issueMem: at its commit
// point a speculation is validated against the conflict detector and, if
// it raced with an intervening committed store, the enclosing epoch (a
// group of Config.SpecScope waves) is squashed — each of its still-
// speculative accesses re-executes at its own commit point, paying the
// cache again, so replayed work is charged honestly.
//
// Architectural values never come from speculation: loads read the
// committed memory image and stores write it at commit, exactly like
// MemOrdered, so results are bit-identical across all four memory modes
// and the checksum verifies by construction. Speculation moves timing
// only. Squash decisions derive purely from committed-store sequence
// numbers — simulated state, never host scheduling — and every structure
// here is touched only by coordinator-owned events (memory arrivals and
// the ordering drain), so results are invariant to -shards and -j.
// DESIGN.md §12 documents the protocol.

import (
	"fmt"
	"strings"

	"wavescalar/internal/isa"
	"wavescalar/internal/tagtable"
	"wavescalar/internal/waveorder"
)

// SpecStats counts MemSpec speculation activity (zero in other modes).
type SpecStats struct {
	Issued       uint64 // requests issued speculatively past unresolved predecessors
	Forwards     uint64 // loads forwarded from the versioned store buffer
	Conflicts    uint64 // commit-time validation failures
	Squashes     uint64 // epochs squashed (first conflict each)
	ReplayedOps  uint64 // accesses re-executed at their commit point
	SpecCycles   int64  // cache latency of speculative accesses
	ReplayCycles int64  // cache latency charged again by replays
	Epochs       uint64 // epochs opened
	Fallbacks    uint64 // epochs opened in-order by the thrash fallback
	Filtered     uint64 // loads kept in-order by the conflict predictor
}

// Cookie speculation classes (memCookie.spec).
const (
	specNone  uint8 = iota
	specLoad        // load accessed the cache speculatively
	specFwd         // load forwarded from an in-flight speculative store
	specStore       // store buffered its value speculatively
)

// Thrash fallback: after specThrashStreak consecutive speculative epochs
// squash, the next specProbeEpochs epoch groups issue in order (no
// speculation, so no wasted work), then speculation re-probes. This is
// what keeps serialization-bound kernels from regressing below plain
// wave-ordered issue.
const (
	specThrashStreak = 2
	specProbeEpochs  = 8
)

// Deferred speculation: a buffered request speculates via a probe event
// scheduled specDelay cycles after it arrives, and only if it is still
// waiting when the probe fires — requests whose predecessor chain
// resolves within the delay never touch the cache speculatively. Zero
// probes on the arrival cycle itself (a request that issues
// synchronously kills its probe before it fires). Measured across the
// suite, any positive delay forfeits more than it protects: the bulk of
// the win on memory-bound kernels comes from compressing stalls only a
// few cycles long, which a delay filters out first.
const specDelay = 0

// Speculative replies leave the store buffer on a two-cycle grid: a
// valid speculation's reply cycle rounds up to the next odd cycle.
// Unaligned early replies inject fine-grained jitter into cluster port
// arbitration and PE firing order, and on conflict-heavy kernels (art)
// that jitter random-walks the critical path below plain wave-ordered
// issue even though every per-op reply is no later than its in-order
// time. Aligning replies to a fixed grid bounds the jitter — measured
// results are identical for either grid phase, so this is rate
// limiting, not a tuned phase — at the cost of half a cycle of the
// hidden hit latency on average. With it, speculative cycle counts are
// at or below wave-ordered on every kernel in the suite.
const specReplyAlign = 2

// Conflict predictor: a static load whose speculation was invalidated
// recently (within specConfDecay committed stores) is likely to conflict
// again on its next dynamic instance — array sweeps conflict at a fresh
// address every iteration but through the same instruction — and a
// conflicting load squashes its whole epoch, replaying every innocent
// speculation in it. Such loads issue in order instead: the store-wait
// bits of conventional memory-dependence predictors, keyed by static
// instruction. Decay lets a cooled-down load re-probe.
const specConfDecay = 1 << 20

// specEpoch is one transaction scope: Config.SpecScope consecutive waves
// of one context. It retires when its last wave completes (or its context
// ends), which is also when the thrash detector samples it.
type specEpoch struct {
	key         uint64 // packed (ctx, wave/scope)
	ctx         uint32
	speculative bool // false while the thrash fallback is active
	squashed    bool // first conflict seen; remaining speculations replay
	pending     int  // speculated ops not yet committed
	reads       []int64
	writes      []int64
}

// vsbEntry is one versioned-store-buffer record: a speculative store's
// value held until its wave-order commit point.
type vsbEntry struct {
	addr int64
	val  int64
	uid  uint32
	used bool
}

// specState is the per-run speculation subsystem. Everything in it is
// mutated only from coordinator-owned event processing, so the sharded
// engine needs no changes to keep MemSpec deterministic.
type specState struct {
	scope int // waves per epoch (>= 1)

	// arriving is the cookie index of the request the coordinator is
	// submitting right now: issueMem clears it if the request issues
	// synchronously, so processEvent knows whether the arrival buffered
	// (and should speculate). -1 when no submit is in flight.
	arriving int32

	// Conflict detector: commitSeq numbers committed stores; lastStore
	// maps address -> packed (commitSeq<<32 | uid) of the last committed
	// store (uid 0 for stores that never speculated). A speculative load
	// is valid at commit iff no store committed to its address after its
	// snapshot — or, when it forwarded, iff the forwarding store is
	// exactly the last committer.
	commitSeq uint32
	lastStore tagtable.Table

	// Conflict predictor: static load (packed fn, instr) -> commitSeq of
	// its last validation failure. Loads that conflicted within
	// specConfDecay committed stores do not speculate.
	confTab tagtable.Table

	// Versioned store buffer: in-flight speculative stores, plus fwdTab
	// mapping address -> packed (uid<<32 | slab index) of the newest one,
	// the forwarding source for speculative loads.
	nextUID uint32
	vsb     tagtable.Slab[vsbEntry]
	fwdTab  tagtable.Table

	// Epoch table: key -> index into the epochs arena; active lists live
	// indices in creation order (deterministic iteration for the
	// context-end retire scan and the watchdog dump).
	epochTab  tagtable.Table
	epochs    []specEpoch
	epochFree []int32
	active    []int32

	// Thrash fallback state.
	streak  int
	offLeft int

	st SpecStats
}

func (sp *specState) reset(scope int) {
	if scope < 1 {
		scope = 1
	}
	sp.scope = scope
	sp.arriving = -1
	sp.commitSeq = 0
	sp.lastStore.Reset()
	sp.confTab.Reset()
	sp.nextUID = 0
	sp.vsb.Reset()
	sp.fwdTab.Reset()
	sp.epochTab.Reset()
	sp.epochs = sp.epochs[:0]
	sp.epochFree = sp.epochFree[:0]
	sp.active = sp.active[:0]
	sp.streak = 0
	sp.offLeft = 0
	sp.st = SpecStats{}
}

// specEpochFor finds or opens the epoch owning (ctx, wave).
func (s *sim) specEpochFor(ctx, wave uint32) int32 {
	sp := &s.spec
	key := uint64(ctx)<<32 | uint64(wave)/uint64(sp.scope)
	if iv, ok := sp.epochTab.Get(key); ok {
		return int32(iv)
	}
	var ei int32
	if n := len(sp.epochFree); n > 0 {
		ei = sp.epochFree[n-1]
		sp.epochFree = sp.epochFree[:n-1]
	} else {
		sp.epochs = append(sp.epochs, specEpoch{})
		ei = int32(len(sp.epochs) - 1)
	}
	ep := &sp.epochs[ei]
	*ep = specEpoch{
		key: key, ctx: ctx,
		speculative: sp.offLeft == 0,
		reads:       ep.reads[:0],
		writes:      ep.writes[:0],
	}
	sp.st.Epochs++
	if !ep.speculative {
		sp.st.Fallbacks++
	}
	sp.epochTab.Put(key, int64(ei))
	sp.active = append(sp.active, ei)
	return ei
}

// specArrival speculates on a request that has been buffered behind
// unresolved wave-order predecessors for specDelay cycles (its probe
// event just fired and found it still waiting): the access runs against
// the cache now, and the cookie records what the commit point must
// validate.
func (s *sim) specArrival(r *waveorder.Request) {
	if r.Kind != isa.MemLoad && r.Kind != isa.MemStore {
		return
	}
	sp := &s.spec
	ei := s.specEpochFor(r.Ctx, r.Wave)
	ep := &sp.epochs[ei]
	ck := s.ckSlab.At(int32(r.Cookie))
	ck.specEp = ei
	if !ep.speculative {
		return
	}
	key := uint64(r.Addr)
	if r.Kind == isa.MemLoad {
		if cs, ok := sp.confTab.Get(instrKey(ck.fn, ck.id)); ok && sp.commitSeq-uint32(cs) < specConfDecay {
			sp.st.Filtered++
			return
		}
	}
	ep.pending++
	sp.st.Issued++
	// Speculative accesses ride idle store-buffer ports — they never
	// consume a bufIssueTime slot; the commit point pays the slot exactly
	// like in-order issue does, so a valid speculation's reply,
	// max(commit slot, specDone), is never later than the in-order reply
	// would have been.
	if r.Kind == isa.MemLoad {
		specAddAddr(&ep.reads, r.Addr)
		ck.specSnap = sp.commitSeq
		if pv, ok := sp.fwdTab.Get(key); ok {
			// An in-flight speculative store covers this address: forward
			// from the versioned store buffer at L1-hit latency, no cache
			// traffic. Valid iff that store is still the last committer
			// when the load commits.
			ck.spec = specFwd
			ck.specUID = uint32(uint64(pv) >> 32)
			ck.specDone = s.now + s.cfg.Mem.L1Latency
			sp.st.Forwards++
			s.tr.SpecIssue(s.now, true, s.cfg.Mem.L1Latency)
		} else {
			ar := s.memsys.AccessSpeculative(ck.buf, clampAddr(r.Addr, len(s.memImage)), false)
			ck.spec = specLoad
			ck.specDone = s.now + ar.Latency
			sp.st.SpecCycles += ar.Latency
			s.tr.SpecIssue(s.now, false, ar.Latency)
		}
	} else {
		specAddAddr(&ep.writes, r.Addr)
		sp.nextUID++
		uid := sp.nextUID
		vi := sp.vsb.Alloc()
		*sp.vsb.At(vi) = vsbEntry{addr: r.Addr, val: r.Value, uid: uid, used: true}
		sp.fwdTab.Put(key, int64(uint64(uid)<<32|uint64(uint32(vi))))
		// The speculative store drains its cache access (fetch-for-write,
		// coherence) early; its commit point pays only the issue slot.
		ar := s.memsys.AccessSpeculative(ck.buf, clampAddr(r.Addr, len(s.memImage)), true)
		ck.spec = specStore
		ck.specUID = uid
		ck.specSnap = uint32(vi) // stores reuse the snapshot slot as the vsb index
		ck.specDone = s.now + ar.Latency
		sp.st.SpecCycles += ar.Latency
		s.tr.SpecIssue(s.now, false, ar.Latency)
	}
}

// specCommitLoad validates a speculated load at its wave-order commit
// point and returns the cycle its reply leaves the store buffer. A valid
// speculation completes at its speculative time (never earlier than now —
// MemSpec does not back-date); a conflicting or squashed one re-executes
// here, in order, charging the replayed access.
func (s *sim) specCommitLoad(ck *memCookie, r *waveorder.Request) int64 {
	sp := &s.spec
	ep := &sp.epochs[ck.specEp]
	ep.pending--
	valid := !ep.squashed
	if valid {
		lv, okLast := sp.lastStore.Get(uint64(r.Addr))
		if ck.spec == specFwd {
			valid = okLast && uint32(uint64(lv)) == ck.specUID
		} else if okLast {
			valid = uint32(uint64(lv)>>32) <= ck.specSnap
		}
		if !valid {
			sp.st.Conflicts++
			sp.confTab.Put(instrKey(ck.fn, ck.id), int64(sp.commitSeq))
			s.tr.SpecConflict(s.now, int(r.Kind))
			s.specSquash(ep)
		}
	}
	start := s.bufIssueTime(ck.buf)
	if valid {
		done := ck.specDone
		if done < start {
			done = start
		}
		if r := done % specReplyAlign; r != 1 {
			done += 1 - r // round up to the reply grid (next odd cycle)
		}
		return done
	}
	sp.st.ReplayedOps++
	ar := s.memsys.Access(ck.buf, clampAddr(r.Addr, len(s.memImage)), false)
	sp.st.ReplayCycles += ar.Latency
	s.tr.SpecReplay(s.now, ar.Latency)
	return start + ar.Latency
}

// specCommitStore commits a store in MemSpec mode: a speculated store
// retires its versioned-store-buffer entry (replaying its access first if
// the epoch squashed); a store that issued synchronously performs its
// ordinary in-order access. Either way the committed-store sequence
// advances, which is what later loads validate against. The caller writes
// the memory image.
func (s *sim) specCommitStore(ck *memCookie, r *waveorder.Request) {
	sp := &s.spec
	key := uint64(r.Addr)
	var uid uint32
	s.bufIssueTime(ck.buf)
	if ck.spec == specStore {
		uid = ck.specUID
		ep := &sp.epochs[ck.specEp]
		ep.pending--
		vi := int32(ck.specSnap)
		sp.vsb.At(vi).used = false
		if pv, ok := sp.fwdTab.Get(key); ok && uint32(uint64(pv)>>32) == uid {
			sp.fwdTab.Delete(key)
		}
		sp.vsb.Release(vi)
		if ep.squashed {
			sp.st.ReplayedOps++
			ar := s.memsys.Access(ck.buf, clampAddr(r.Addr, len(s.memImage)), true)
			sp.st.ReplayCycles += ar.Latency
			s.tr.SpecReplay(s.now, ar.Latency)
		}
	} else {
		s.memsys.Access(ck.buf, clampAddr(r.Addr, len(s.memImage)), true)
	}
	sp.commitSeq++
	sp.lastStore.Put(key, int64(uint64(sp.commitSeq)<<32|uint64(uid)))
}

// specSquash marks an epoch squashed at its first conflict. Ops that
// already committed out of it were individually validated, so only the
// still-speculative remainder replays — each at its own commit point.
func (s *sim) specSquash(ep *specEpoch) {
	if ep.squashed {
		return
	}
	ep.squashed = true
	s.spec.st.Squashes++
	s.tr.SpecSquash(s.now, ep.ctx, uint32(ep.key))
}

// specWaveRetire is the ordering engine's wave-completion hook: when a
// wave group fills its scope, its epoch retires and the thrash detector
// samples the outcome.
func (s *sim) specWaveRetire(ctx, wave uint32) {
	sp := &s.spec
	if (uint64(wave)+1)%uint64(sp.scope) != 0 {
		return
	}
	if sp.offLeft > 0 {
		sp.offLeft--
	}
	key := uint64(ctx)<<32 | uint64(wave)/uint64(sp.scope)
	if iv, ok := sp.epochTab.Get(key); ok {
		s.specRetire(int32(iv))
	}
}

// specCtxEnd retires whatever epochs a finished context still has open
// (its last wave group may not have filled the scope).
func (s *sim) specCtxEnd(ctx uint32) {
	sp := &s.spec
	for i := 0; i < len(sp.active); {
		ei := sp.active[i]
		if sp.epochs[ei].ctx == ctx {
			s.specRetire(ei) // removes active[i]; the next entry slides in
			continue
		}
		i++
	}
}

func (s *sim) specRetire(ei int32) {
	sp := &s.spec
	ep := &sp.epochs[ei]
	if ep.speculative {
		if ep.squashed {
			sp.streak++
			if sp.streak >= specThrashStreak {
				sp.offLeft = specProbeEpochs
				sp.streak = 0
			}
		} else {
			sp.streak = 0
		}
	}
	sp.epochTab.Delete(ep.key)
	for i, a := range sp.active {
		if a == ei {
			sp.active = append(sp.active[:i], sp.active[i+1:]...)
			break
		}
	}
	ep.reads = ep.reads[:0]
	ep.writes = ep.writes[:0]
	sp.epochFree = append(sp.epochFree, ei)
}

// specAddAddr grows an epoch address set; sets are small (one wave
// group's footprint), so membership is a linear scan.
func specAddAddr(set *[]int64, addr int64) {
	for _, a := range *set {
		if a == addr {
			return
		}
	}
	*set = append(*set, addr)
}

// specDebugState renders the speculation subsystem for the watchdog
// diagnostic dump: in-flight epochs with their read/write set sizes and
// pending squashes, plus the thrash-fallback state. Deterministic: the
// active list is in epoch creation order.
func (s *sim) specDebugState() string {
	sp := &s.spec
	var b strings.Builder
	fmt.Fprintf(&b, "%d epochs in flight, %d vsb entries, squash streak %d, in-order probe %d",
		len(sp.active), sp.fwdTab.Len(), sp.streak, sp.offLeft)
	fmt.Fprintf(&b, "; totals: %d speculated, %d conflicts, %d squashes, %d replayed",
		sp.st.Issued, sp.st.Conflicts, sp.st.Squashes, sp.st.ReplayedOps)
	for _, ei := range sp.active {
		ep := &sp.epochs[ei]
		mode := "spec"
		if !ep.speculative {
			mode = "in-order"
		}
		state := "clean"
		if ep.squashed {
			state = "squash pending"
		}
		fmt.Fprintf(&b, "\n    epoch ctx %d group %d: %s, %s, %d reads, %d writes, %d speculations uncommitted",
			ep.ctx, uint32(ep.key), mode, state, len(ep.reads), len(ep.writes), ep.pending)
	}
	return b.String()
}
