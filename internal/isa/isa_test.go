package isa

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestOpcodeStrings(t *testing.T) {
	for op := Opcode(0); op < opcodeCount; op++ {
		s := op.String()
		if s == "" || len(s) > 20 {
			t.Errorf("opcode %d has bad name %q", op, s)
		}
	}
	if got := Opcode(200).String(); got != "opcode(200)" {
		t.Errorf("unknown opcode name = %q", got)
	}
}

func TestNumInputsCoversAllOpcodes(t *testing.T) {
	for op := Opcode(0); op < opcodeCount; op++ {
		n := op.NumInputs()
		if n < 1 || n > 3 {
			t.Errorf("%s: NumInputs = %d, every opcode needs 1..3 inputs", op, n)
		}
	}
}

func TestTagAdvance(t *testing.T) {
	tag := Tag{Ctx: 3, Wave: 41}
	adv := tag.Advance()
	if adv.Ctx != 3 || adv.Wave != 42 {
		t.Errorf("Advance(%v) = %v", tag, adv)
	}
	if tag.Wave != 41 {
		t.Error("Advance mutated receiver")
	}
}

func TestEvalALUBasics(t *testing.T) {
	cases := []struct {
		op   Opcode
		a, b int64
		want int64
	}{
		{OpAdd, 2, 3, 5},
		{OpSub, 2, 3, -1},
		{OpMul, -4, 6, -24},
		{OpDiv, 7, 2, 3},
		{OpDiv, -7, 2, -3},
		{OpDiv, 5, 0, 0},
		{OpDiv, minInt64, -1, minInt64},
		{OpRem, 7, 3, 1},
		{OpRem, 7, 0, 0},
		{OpRem, minInt64, -1, 0},
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpShl, 1, 10, 1024},
		{OpShl, 1, 64, 1}, // shift count masked to 6 bits
		{OpShr, -8, 1, -4},
		{OpNeg, 9, 0, -9},
		{OpNot, 0, 0, -1},
		{OpEq, 4, 4, 1},
		{OpNe, 4, 4, 0},
		{OpLt, -1, 0, 1},
		{OpLe, 0, 0, 1},
		{OpGt, 1, 2, 0},
		{OpGe, 2, 2, 1},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b); got != c.want {
			t.Errorf("EvalALU(%s, %d, %d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalALUPanicsOnNonALU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EvalALU(OpSteer, 1, 2)
}

func TestIsALUAgreesWithEval(t *testing.T) {
	for op := Opcode(0); op < opcodeCount; op++ {
		if IsALU(op) {
			_ = EvalALU(op, 3, 4) // must not panic
		}
	}
}

// Division identity: (a/b)*b + a%b == a for all b != 0 (including the
// overflow case, where both sides wrap identically).
func TestDivRemIdentity(t *testing.T) {
	prop := func(a, b int64) bool {
		if b == 0 {
			return EvalALU(OpDiv, a, b) == 0 && EvalALU(OpRem, a, b) == 0
		}
		q := EvalALU(OpDiv, a, b)
		r := EvalALU(OpRem, a, b)
		return q*b+r == a
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComparisonsAreBoolean(t *testing.T) {
	prop := func(a, b int64) bool {
		for _, op := range []Opcode{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
			v := EvalALU(op, a, b)
			if v != 0 && v != 1 {
				return false
			}
		}
		// Trichotomy: exactly one of <, ==, > holds.
		return EvalALU(OpLt, a, b)+EvalALU(OpEq, a, b)+EvalALU(OpGt, a, b) == 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func validProgram() *Program {
	// main: trigger -> const 42 -> return
	f := Function{
		Name: "main",
		Instrs: []Instruction{
			{Op: OpNop, Dests: []Dest{{Instr: 1, Port: 0}}}, // trigger pad
			{Op: OpConst, Imm: 42, Dests: []Dest{{Instr: 2, Port: 0}}},
			{Op: OpReturn},
		},
		Params:   []InstrID{0},
		NumWaves: 1,
	}
	return &Program{Funcs: []Function{f}, Entry: 0, MemWords: 16,
		Globals: []Global{{Name: "g", Addr: 0, Size: 16}}}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Program)
	}{
		{"no functions", func(p *Program) { p.Funcs = nil }},
		{"bad entry", func(p *Program) { p.Entry = 5 }},
		{"dest out of range", func(p *Program) { p.Funcs[0].Instrs[0].Dests[0].Instr = 99 }},
		{"port out of range", func(p *Program) { p.Funcs[0].Instrs[0].Dests[0].Port = 3 }},
		{"no params", func(p *Program) { p.Funcs[0].Params = nil }},
		{"param pad not nop", func(p *Program) { p.Funcs[0].Params[0] = 1 }},
		{"false dests on non-steer", func(p *Program) {
			p.Funcs[0].Instrs[1].DestsFalse = []Dest{{Instr: 2, Port: 0}}
		}},
		{"load without annotation", func(p *Program) {
			p.Funcs[0].Instrs[1] = Instruction{Op: OpLoad, Dests: []Dest{{Instr: 2, Port: 0}}}
		}},
		{"annotation on pure op", func(p *Program) {
			p.Funcs[0].Instrs[1].Mem = MemOrder{Kind: MemNop, Seq: 0, Pred: SeqStart, Succ: SeqEnd}
		}},
		{"global overlap", func(p *Program) {
			p.Globals = append(p.Globals, Global{Name: "h", Addr: 8, Size: 16})
			p.MemWords = 64
		}},
		{"global too big", func(p *Program) { p.Globals[0].Size = 64 }},
		{"too many initializers", func(p *Program) { p.Globals[0].Init = make([]int64, 20) }},
		{"wave out of range", func(p *Program) { p.Funcs[0].Instrs[2].Wave = 7 }},
		{"duplicate memory seq", func(p *Program) {
			p.Funcs[0].TouchesMemory = true
			p.Funcs[0].Instrs[1] = Instruction{Op: OpMemNop,
				Mem:   MemOrder{Kind: MemNop, Seq: 0, Pred: SeqStart, Succ: 0},
				Dests: []Dest{{Instr: 2, Port: 0}}}
			p.Funcs[0].Instrs[2].Mem = MemOrder{Kind: MemEnd, Seq: 0, Pred: 0, Succ: SeqEnd}
		}},
	}
	for _, c := range cases {
		p := validProgram()
		c.mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed program", c.name)
		}
	}
}

func TestInitialMemory(t *testing.T) {
	p := validProgram()
	p.Globals[0].Init = []int64{7, 8}
	m := p.InitialMemory()
	if len(m) != 16 || m[0] != 7 || m[1] != 8 || m[2] != 0 {
		t.Fatalf("InitialMemory = %v", m)
	}
}

func TestLookupHelpers(t *testing.T) {
	p := validProgram()
	if p.FuncByName("main") == nil || p.FuncByName("nope") != nil {
		t.Error("FuncByName broken")
	}
	if p.GlobalByName("g") == nil || p.GlobalByName("x") != nil {
		t.Error("GlobalByName broken")
	}
	if n := p.NumInstrs(); n != 3 {
		t.Errorf("NumInstrs = %d, want 3", n)
	}
}

func TestCloneIsDeepAndIndependent(t *testing.T) {
	p := validProgram()
	p.Globals[0].Init = []int64{7, 8}
	q := p.Clone()
	if err := q.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("clone differs from original:\n%+v\n%+v", p, q)
	}
	// Mutating the clone through every nested slice must leave the
	// original untouched.
	q.Funcs[0].Instrs[1].Imm = 99
	q.Funcs[0].Instrs[0].Dests[0].Port = 2
	q.Funcs[0].Params[0] = 2
	q.Globals[0].Init[0] = -1
	if p.Funcs[0].Instrs[1].Imm != 42 {
		t.Error("clone shares Instrs with original")
	}
	if p.Funcs[0].Instrs[0].Dests[0].Port != 0 {
		t.Error("clone shares Dests with original")
	}
	if p.Funcs[0].Params[0] != 0 {
		t.Error("clone shares Params with original")
	}
	if p.Globals[0].Init[0] != 7 {
		t.Error("clone shares Global.Init with original")
	}
}

func TestMemOrderString(t *testing.T) {
	m := MemOrder{Kind: MemLoad, Seq: 4, Pred: SeqStart, Succ: SeqWildcard}
	if got := m.String(); got != "{load ^.4.?}" {
		t.Errorf("MemOrder.String() = %q", got)
	}
	if (MemOrder{}).String() != "" {
		t.Error("zero MemOrder should render empty")
	}
}
