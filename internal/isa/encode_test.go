package isa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func richProgram() *Program {
	f := Function{
		Name: "main",
		Instrs: []Instruction{
			{Op: OpNop, Dests: []Dest{{Instr: 1, Port: 0}}, Comment: "pad 0"},
			{Op: OpConst, Imm: -42, Dests: []Dest{{Instr: 2, Port: 0}, {Instr: 3, Port: 0}}},
			{Op: OpSteer, Dests: []Dest{{Instr: 3, Port: 0}}, DestsFalse: []Dest{{Instr: 4, Port: 0}}},
			{Op: OpLoad, Mem: MemOrder{Kind: MemLoad, Seq: 0, Pred: SeqStart, Succ: 1},
				Dests: []Dest{{Instr: 4, Port: 0}}},
			{Op: OpReturn, Mem: MemOrder{Kind: MemEnd, Seq: 1, Pred: 0, Succ: SeqEnd}},
		},
		Params:        []InstrID{0},
		NumWaves:      1,
		TouchesMemory: true,
	}
	// Give the steer a second input and immediates on the ALU-ish slot.
	f.Instrs[2].ImmMask = 1 << 1
	f.Instrs[2].ImmVals[1] = 77
	f.Instrs[1].Dests = f.Instrs[1].Dests[:1] // keep dest lists modest

	helper := Function{
		Name: "helper",
		Instrs: []Instruction{
			{Op: OpNop, Dests: []Dest{{Instr: 1, Port: 0}}},
			{Op: OpReturn},
		},
		Params:   []InstrID{0},
		NumWaves: 1,
	}
	return &Program{
		Funcs:    []Function{f, helper},
		Entry:    0,
		MemWords: 32,
		Globals: []Global{
			{Name: "a", Addr: 0, Size: 16, Init: []int64{1, -2, 3}},
			{Name: "b", Addr: 16, Size: 16},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := richProgram()
	if err := p.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	data := Encode(p)
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(p), normalize(back)) {
		t.Fatalf("round trip changed program:\n%#v\nvs\n%#v", p, back)
	}
}

// normalize maps nil and empty slices to a canonical form for DeepEqual.
func normalize(p *Program) *Program {
	q := *p
	for fi := range q.Funcs {
		f := &q.Funcs[fi]
		for ii := range f.Instrs {
			in := &f.Instrs[ii]
			if len(in.Dests) == 0 {
				in.Dests = nil
			}
			if len(in.DestsFalse) == 0 {
				in.DestsFalse = nil
			}
		}
	}
	for gi := range q.Globals {
		if len(q.Globals[gi].Init) == 0 {
			q.Globals[gi].Init = nil
		}
	}
	return &q
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("x"),
		[]byte("NOPE1234"),
		append([]byte("WVSC"), 99), // bad version
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("Decode(%q) succeeded", c)
		}
	}
}

func TestDecodeRejectsTruncationsAndFlips(t *testing.T) {
	data := Encode(richProgram())
	// Every truncation must fail cleanly (no panic, no success).
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	// Random single-byte corruptions must never panic and must either fail
	// or still validate.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		mut := append([]byte(nil), data...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		p, err := Decode(mut)
		if err == nil {
			if verr := p.Validate(); verr != nil {
				t.Fatalf("corrupted stream decoded to invalid program: %v", verr)
			}
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	p := richProgram()
	if string(Encode(p)) != string(Encode(p)) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	// Property: tweaking immediates and wave counts round-trips exactly.
	prop := func(imm int64, waves uint8) bool {
		p := richProgram()
		p.Funcs[0].Instrs[1].Imm = imm
		p.Funcs[0].NumWaves = int32(waves%8) + 1
		back, err := Decode(Encode(p))
		if err != nil {
			return false
		}
		return back.Funcs[0].Instrs[1].Imm == imm &&
			back.Funcs[0].NumWaves == p.Funcs[0].NumWaves
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
