package isa

import "fmt"

// Validate checks the structural integrity of a program: destination and
// port ranges, call targets, parameter pads, memory annotations, and the
// data-segment layout. The compiler runs it on every binary it emits, and
// the execution engines rely on its guarantees.
func (p *Program) Validate() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("isa: program has no functions")
	}
	if p.Entry < 0 || int(p.Entry) >= len(p.Funcs) {
		return fmt.Errorf("isa: entry function %d out of range", p.Entry)
	}
	if err := p.validateGlobals(); err != nil {
		return err
	}
	for fi := range p.Funcs {
		if err := p.validateFunc(FuncID(fi)); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) validateGlobals() error {
	if p.MemWords < 0 {
		return fmt.Errorf("isa: negative memory size %d", p.MemWords)
	}
	for i, g := range p.Globals {
		if g.Size <= 0 {
			return fmt.Errorf("isa: global %q has size %d", g.Name, g.Size)
		}
		if g.Addr < 0 || g.Addr+g.Size > p.MemWords {
			return fmt.Errorf("isa: global %q [%d,%d) outside memory of %d words",
				g.Name, g.Addr, g.Addr+g.Size, p.MemWords)
		}
		if int64(len(g.Init)) > g.Size {
			return fmt.Errorf("isa: global %q has %d initializers for %d words",
				g.Name, len(g.Init), g.Size)
		}
		for j := 0; j < i; j++ {
			h := p.Globals[j]
			if g.Addr < h.Addr+h.Size && h.Addr < g.Addr+g.Size {
				return fmt.Errorf("isa: globals %q and %q overlap", g.Name, h.Name)
			}
		}
	}
	return nil
}

func (p *Program) validateFunc(fid FuncID) error {
	f := &p.Funcs[fid]
	fail := func(i InstrID, format string, args ...any) error {
		return fmt.Errorf("isa: %s/i%d: %s", f.Name, i, fmt.Sprintf(format, args...))
	}

	if len(f.Params) == 0 {
		return fmt.Errorf("isa: %s: no parameter pads (pad 0 must be the activation trigger)", f.Name)
	}
	for pi, pad := range f.Params {
		if pad < 0 || int(pad) >= len(f.Instrs) {
			return fmt.Errorf("isa: %s: param pad %d references instruction %d out of range", f.Name, pi, pad)
		}
		if op := f.Instrs[pad].Op; op != OpNop {
			return fmt.Errorf("isa: %s: param pad %d is %s, want nop", f.Name, pi, op)
		}
	}

	for ii := range f.Instrs {
		id := InstrID(ii)
		in := &f.Instrs[ii]
		if int(in.Op) >= int(opcodeCount) {
			return fail(id, "invalid opcode %d", in.Op)
		}
		ni := in.Op.NumInputs()
		if in.ImmMask>>ni != 0 {
			return fail(id, "immediate mask %#x covers ports beyond %d inputs", in.ImmMask, ni)
		}
		if in.ImmMask == (uint8(1)<<ni)-1 {
			return fail(id, "all %d inputs immediate: no token port to supply a tag", ni)
		}
		if in.Op != OpSteer && len(in.DestsFalse) != 0 {
			return fail(id, "%s has a false-path destination list", in.Op)
		}
		for _, lst := range [][]Dest{in.Dests, in.DestsFalse} {
			for _, d := range lst {
				if d.Instr < 0 || int(d.Instr) >= len(f.Instrs) {
					return fail(id, "destination instruction %d out of range", d.Instr)
				}
				dni := f.Instrs[d.Instr].Op.NumInputs()
				if int(d.Port) >= dni {
					return fail(id, "destination i%d port %d out of range (%s has %d inputs)",
						d.Instr, d.Port, f.Instrs[d.Instr].Op, dni)
				}
				if f.Instrs[d.Instr].ImmMask&(1<<d.Port) != 0 {
					return fail(id, "destination i%d port %d is an immediate port", d.Instr, d.Port)
				}
			}
		}

		switch in.Op {
		case OpSendArg, OpNewCtx:
			if in.Target < 0 || int(in.Target) >= len(p.Funcs) {
				return fail(id, "call target %d out of range", in.Target)
			}
			callee := &p.Funcs[in.Target]
			if in.Op == OpSendArg {
				if in.TargetPad < 0 || int(in.TargetPad) >= len(callee.Params) {
					return fail(id, "argument pad %d out of range for %s (%d pads)",
						in.TargetPad, callee.Name, len(callee.Params))
				}
			} else {
				if in.TargetPad < 0 || int(in.TargetPad) >= len(f.Instrs) {
					return fail(id, "return landing pad %d out of range", in.TargetPad)
				}
				wantMem := callee.TouchesMemory
				haveMem := in.Mem.Kind == MemCall
				if wantMem != haveMem {
					return fail(id, "call slot annotation mismatch: callee %s touches memory=%v, annotation=%v",
						callee.Name, wantMem, haveMem)
				}
			}
		}

		if in.Mem.Kind != MemNone {
			if !in.Op.IsMemCapable() {
				return fail(id, "%s cannot carry memory annotation %v", in.Op, in.Mem)
			}
			if in.Mem.Seq < 0 {
				return fail(id, "memory sequence number %d must be non-negative", in.Mem.Seq)
			}
			if in.Mem.Pred != SeqWildcard && in.Mem.Pred != SeqStart && in.Mem.Pred < 0 {
				return fail(id, "bad predecessor %d", in.Mem.Pred)
			}
			if in.Mem.Succ != SeqWildcard && in.Mem.Succ != SeqEnd && in.Mem.Succ < 0 {
				return fail(id, "bad successor %d", in.Mem.Succ)
			}
			switch in.Op {
			case OpLoad:
				if in.Mem.Kind != MemLoad {
					return fail(id, "load annotated %v", in.Mem.Kind)
				}
			case OpStore:
				if in.Mem.Kind != MemStore {
					return fail(id, "store annotated %v", in.Mem.Kind)
				}
			case OpMemNop:
				if in.Mem.Kind != MemNop {
					return fail(id, "mem-nop annotated %v", in.Mem.Kind)
				}
			case OpNewCtx:
				if in.Mem.Kind != MemCall {
					return fail(id, "new-ctx annotated %v", in.Mem.Kind)
				}
			case OpReturn:
				if in.Mem.Kind != MemEnd {
					return fail(id, "return annotated %v", in.Mem.Kind)
				}
			}
		} else {
			switch in.Op {
			case OpLoad, OpStore, OpMemNop:
				return fail(id, "%s missing memory annotation", in.Op)
			case OpReturn:
				if f.TouchesMemory {
					return fail(id, "return in memory-touching function missing MemEnd annotation")
				}
			}
		}

		if in.Wave < 0 || (f.NumWaves > 0 && in.Wave >= f.NumWaves) {
			return fail(id, "wave %d out of range [0,%d)", in.Wave, f.NumWaves)
		}
	}

	// Memory sequence numbers must be unique within a static wave.
	seen := make(map[[2]int32]InstrID)
	for ii := range f.Instrs {
		in := &f.Instrs[ii]
		if in.Mem.Kind == MemNone {
			continue
		}
		key := [2]int32{in.Wave, in.Mem.Seq}
		if prev, dup := seen[key]; dup {
			return fail(InstrID(ii), "duplicate memory sequence %d in wave %d (also i%d)", in.Mem.Seq, in.Wave, prev)
		}
		seen[key] = InstrID(ii)
	}
	return nil
}
