// Package isa defines the WaveScalar instruction set architecture: the
// dataflow instruction repertoire, token tags, wave-ordered memory
// annotations, and the Program/Function/Instruction containers produced by
// the compiler and consumed by every execution engine in this repository.
//
// A WaveScalar binary is a program's dataflow graph. Each Instruction names
// the instructions that consume its outputs; there is no program counter.
// Values travel as tagged tokens, and an instruction fires when all of its
// input ports hold a token with the same tag (the dataflow firing rule).
package isa

import "fmt"

// Opcode enumerates the WaveScalar instruction repertoire.
type Opcode uint8

const (
	// OpNop forwards its single input to its destinations unchanged. It is
	// used for landing pads (parameters, return values) and graph plumbing.
	OpNop Opcode = iota

	// OpConst emits its immediate whenever a trigger token arrives on input
	// port 0. The output token carries the trigger's tag, which is how
	// constants acquire the correct dynamic wave number.
	OpConst

	// Integer arithmetic. All values are int64. Division and remainder by
	// zero produce 0, matching the reference evaluator (a simulator must
	// not fault on speculative garbage).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg
	OpNot

	// Comparisons produce 0 or 1.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// OpSteer is the φ⁻¹ control instruction. Port 0 is the predicate,
	// port 1 the value. If the predicate is nonzero the value is forwarded
	// to DestsTrue, otherwise to DestsFalse. Nothing is sent on the
	// untaken side, which is how control flow prunes the dataflow graph.
	OpSteer

	// OpSelect is the φ instruction. Port 0 is the predicate, port 1 the
	// true value, port 2 the false value; the chosen value is forwarded.
	// Unlike OpSteer it waits for both data inputs.
	OpSelect

	// OpWaveAdvance increments the wave number of the token on port 0 and
	// forwards it. The compiler places one on every value crossing a wave
	// boundary (loop back-edges and loop entries), so each dynamic wave of
	// a context is numbered consecutively.
	OpWaveAdvance

	// OpLoad reads memory. Port 0 is the address. It carries a wave-ordered
	// memory annotation and its request is held by the store buffer until
	// program order allows it to issue; the loaded value is then forwarded.
	OpLoad

	// OpStore writes memory. Port 0 is the address, port 1 the value. It is
	// wave-ordered like OpLoad. The stored value is forwarded to any
	// destinations (usually none).
	OpStore

	// OpMemNop participates in wave-ordered memory without touching memory.
	// The compiler inserts one in every memory-silent basic block and on
	// split critical edges so that every executed path announces a complete
	// ordering chain to the store buffer. Port 0 is a trigger value, which
	// is forwarded unchanged once the nop issues.
	OpMemNop

	// OpNewCtx allocates a fresh context identifier for a function call and
	// emits it as a value (port 0 is a trigger). Target names the callee
	// and TargetPad the caller's return landing pad; the execution engine
	// records the (caller tag, landing pad) linkage against the new context
	// so OpReturn can route the result home. In hardware this linkage is a
	// token sent alongside the arguments (an indirect send); the engines
	// here keep it in a context table, which is observationally identical.
	// If the callee touches memory the instruction also carries a memory
	// annotation: it occupies the call's slot in the caller's ordering
	// chain and tells the store buffer to splice the callee's entire
	// memory sequence in at that slot.
	OpNewCtx

	// OpSendArg transmits an argument to a callee. Port 0 is the context
	// value produced by OpNewCtx, port 1 the argument. The token is
	// delivered to parameter pad TargetPad of function Target, tagged
	// (ctx, 0). Pad 0 of every function is an implicit activation trigger
	// (its value is ignored), so even zero-argument callees receive a
	// token that starts their entry wave.
	OpSendArg

	// OpReturn terminates a function activation. Port 0 is the return
	// value, which is sent to the caller's landing pad with the caller's
	// tag (both found in the context table). If the function touches
	// memory, OpReturn carries a memory annotation marking the end of the
	// context's memory sequence.
	OpReturn

	opcodeCount
)

var opcodeNames = [...]string{
	OpNop:         "nop",
	OpConst:       "const",
	OpAdd:         "add",
	OpSub:         "sub",
	OpMul:         "mul",
	OpDiv:         "div",
	OpRem:         "rem",
	OpAnd:         "and",
	OpOr:          "or",
	OpXor:         "xor",
	OpShl:         "shl",
	OpShr:         "shr",
	OpNeg:         "neg",
	OpNot:         "not",
	OpEq:          "eq",
	OpNe:          "ne",
	OpLt:          "lt",
	OpLe:          "le",
	OpGt:          "gt",
	OpGe:          "ge",
	OpSteer:       "steer",
	OpSelect:      "select",
	OpWaveAdvance: "wave-advance",
	OpLoad:        "load",
	OpStore:       "store",
	OpMemNop:      "mem-nop",
	OpNewCtx:      "new-ctx",
	OpSendArg:     "send-arg",
	OpReturn:      "return",
}

func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return fmt.Sprintf("opcode(%d)", uint8(op))
}

// NumInputs reports how many input ports the opcode consumes.
func (op Opcode) NumInputs() int {
	switch op {
	case OpConst, OpNop, OpNeg, OpNot, OpWaveAdvance, OpLoad, OpMemNop, OpNewCtx, OpReturn:
		return 1
	case OpSelect:
		return 3
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpEq, OpNe, OpLt, OpLe, OpGt, OpGe,
		OpSteer, OpStore, OpSendArg:
		return 2
	default:
		return 0
	}
}

// IsMemCapable reports whether the opcode may carry a wave-ordered memory
// annotation.
func (op Opcode) IsMemCapable() bool {
	switch op {
	case OpLoad, OpStore, OpMemNop, OpNewCtx, OpReturn:
		return true
	}
	return false
}

// Tag identifies a dynamic instance of a value. Two tokens match (and may
// fire an instruction together) only when their tags are equal.
//
// Ctx distinguishes function activations: every dynamic call allocates a
// fresh context, so recursive and concurrent activations cannot alias.
// Wave distinguishes loop iterations within an activation: WAVE-ADVANCE
// increments it, so a context's dynamic waves are numbered 0, 1, 2, ...
// in thread execution order.
type Tag struct {
	Ctx  uint32
	Wave uint32
}

func (t Tag) String() string { return fmt.Sprintf("<%d.%d>", t.Ctx, t.Wave) }

// Advance returns the tag with its wave number incremented, as produced by
// OpWaveAdvance.
func (t Tag) Advance() Tag { return Tag{Ctx: t.Ctx, Wave: t.Wave + 1} }

// Sequence-number sentinels for wave-ordered memory annotations.
const (
	// SeqWildcard marks an unknown predecessor or successor ('?' in the
	// paper): the adjacent operation in program order depends on the branch
	// path taken.
	SeqWildcard int32 = -1
	// SeqStart marks the beginning of a wave's ordering chain: an operation
	// whose Pred is SeqStart is the first memory operation of its wave.
	SeqStart int32 = -2
	// SeqEnd marks the end of a wave's ordering chain: an operation whose
	// Succ is SeqEnd is the last memory operation of its wave on the taken
	// path, and its issue completes the wave.
	SeqEnd int32 = -3
)

// MemKind classifies a wave-ordered memory request.
type MemKind uint8

const (
	MemNone  MemKind = iota // no memory semantics
	MemLoad                 // read memory
	MemStore                // write memory
	MemNop                  // ordering chain only
	MemCall                 // splice a child context's sequence in here
	MemEnd                  // terminate the context's memory sequence
)

func (k MemKind) String() string {
	switch k {
	case MemNone:
		return "none"
	case MemLoad:
		return "load"
	case MemStore:
		return "store"
	case MemNop:
		return "nop"
	case MemCall:
		return "call"
	case MemEnd:
		return "end"
	}
	return fmt.Sprintf("memkind(%d)", uint8(k))
}

// MemOrder is the wave-ordered memory annotation the compiler attaches to a
// memory-capable instruction: its own sequence number within its static
// wave, and the sequence numbers of its predecessor and successor in
// program order (SeqWildcard where the neighbour depends on the path).
type MemOrder struct {
	Kind MemKind
	Seq  int32
	Pred int32
	Succ int32
}

func seqString(s int32) string {
	switch s {
	case SeqWildcard:
		return "?"
	case SeqStart:
		return "^"
	case SeqEnd:
		return "$"
	default:
		return fmt.Sprintf("%d", s)
	}
}

func (m MemOrder) String() string {
	if m.Kind == MemNone {
		return ""
	}
	return fmt.Sprintf("{%s %s.%s.%s}", m.Kind, seqString(m.Pred), seqString(m.Seq), seqString(m.Succ))
}

// InstrID names an instruction within its Function.
type InstrID int32

// NoInstr is the zero-ish sentinel for "no instruction".
const NoInstr InstrID = -1

// Dest routes an output value to input port Port of instruction Instr in
// the same function.
type Dest struct {
	Instr InstrID
	Port  uint8
}

// Instruction is a single node of the dataflow graph.
type Instruction struct {
	Op  Opcode
	Imm int64 // OpConst immediate

	// ImmMask marks input ports whose operand is a static immediate
	// encoded in the instruction (bit p = port p); such ports never await
	// tokens. ImmVals holds the values. At least one port must remain a
	// token port — the arriving token supplies the tag.
	ImmMask uint8
	ImmVals [3]int64

	// Dests receives the primary output. For OpSteer it is the true-path
	// destination list and DestsFalse the false-path list.
	Dests      []Dest
	DestsFalse []Dest

	// Target names the callee function (OpSendArg, OpNewCtx). TargetPad is
	// the callee parameter pad index for OpSendArg, and the caller's
	// return landing pad for OpNewCtx.
	Target    FuncID
	TargetPad int32

	// Mem is the wave-ordered memory annotation; Mem.Kind is MemNone for
	// non-memory instructions.
	Mem MemOrder

	// Wave is the static wave (acyclic CFG region) this instruction was
	// compiled into; informational and used by validation and placement.
	Wave int32

	// Comment is an optional compiler note surfaced by the disassembler.
	Comment string
}

// FuncID names a function within a Program.
type FuncID int32

// NoFunc is the sentinel for "no function".
const NoFunc FuncID = -1

// Function is a compiled dataflow graph.
type Function struct {
	Name   string
	Instrs []Instruction

	// Params[i] is the landing-pad instruction that receives argument i.
	// Params[0] is the implicit activation trigger; source-level arguments
	// occupy Params[1:].
	Params []InstrID

	// NumWaves is the number of static waves the body was partitioned into.
	NumWaves int32

	// TouchesMemory reports whether this function (transitively) performs
	// any memory operation; callers only allocate a memory-call slot for
	// callees that do.
	TouchesMemory bool
}

// Program is a complete WaveScalar binary.
type Program struct {
	Funcs []Function

	// Entry is the function started at program boot (conventionally "main").
	Entry FuncID

	// Globals describes the static data segment: each global array occupies
	// [Addr, Addr+Size) words of the flat address space.
	Globals []Global

	// MemWords is the total size of the address space in 64-bit words.
	MemWords int64
}

// Global is one statically allocated array (or scalar, Size==1).
type Global struct {
	Name string
	Addr int64
	Size int64
	// Init holds initial values (len <= Size); the remainder is zero.
	Init []int64
}

// FuncByName returns the function with the given name, or nil.
func (p *Program) FuncByName(name string) *Function {
	for i := range p.Funcs {
		if p.Funcs[i].Name == name {
			return &p.Funcs[i]
		}
	}
	return nil
}

// GlobalByName returns the global with the given name, or nil.
func (p *Program) GlobalByName(name string) *Global {
	for i := range p.Globals {
		if p.Globals[i].Name == name {
			return &p.Globals[i]
		}
	}
	return nil
}

// NumInstrs returns the total static instruction count of the program.
func (p *Program) NumInstrs() int {
	n := 0
	for i := range p.Funcs {
		n += len(p.Funcs[i].Instrs)
	}
	return n
}

// InitialMemory allocates and initializes the program's data segment.
func (p *Program) InitialMemory() []int64 {
	return p.FillMemory(nil)
}

// FillMemory (re)initializes dst to the program's initial data segment,
// reusing dst's backing array when it is large enough — the allocation-free
// path a reusable simulator arena takes between runs. The returned slice has
// exactly MemWords words.
func (p *Program) FillMemory(dst []int64) []int64 {
	if int64(cap(dst)) >= p.MemWords {
		dst = dst[:p.MemWords]
		clear(dst)
	} else {
		dst = make([]int64, p.MemWords)
	}
	for _, g := range p.Globals {
		copy(dst[g.Addr:g.Addr+g.Size], g.Init)
	}
	return dst
}

// Clone returns a deep copy of the program: no slice is shared with the
// receiver, so the copy may be mutated (or handed to a mutating tool)
// while other goroutines keep reading the original.
//
// The simulators (wavecache.Run, ooo.Run, interp) treat their program as
// read-only, so concurrent simulation of ONE *Program needs no cloning;
// Clone exists for callers that want to transform a program (compiler
// passes, experiment-specific rewrites) without invalidating binaries
// already in flight.
func (p *Program) Clone() *Program {
	out := &Program{Entry: p.Entry, MemWords: p.MemWords}
	out.Funcs = make([]Function, len(p.Funcs))
	for i := range p.Funcs {
		f := &p.Funcs[i]
		nf := Function{
			Name:          f.Name,
			NumWaves:      f.NumWaves,
			TouchesMemory: f.TouchesMemory,
			Params:        append([]InstrID(nil), f.Params...),
			Instrs:        append([]Instruction(nil), f.Instrs...),
		}
		for j := range nf.Instrs {
			in := &nf.Instrs[j]
			in.Dests = append([]Dest(nil), in.Dests...)
			in.DestsFalse = append([]Dest(nil), in.DestsFalse...)
		}
		out.Funcs[i] = nf
	}
	out.Globals = make([]Global, len(p.Globals))
	for i, g := range p.Globals {
		g.Init = append([]int64(nil), g.Init...)
		out.Globals[i] = g
	}
	return out
}
