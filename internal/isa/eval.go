package isa

// EvalALU computes the result of a pure arithmetic, logic, or comparison
// opcode. Every execution engine in the repository (reference interpreter,
// WaveCache simulator, linear emulator, out-of-order core) routes integer
// semantics through this single function so they cannot diverge.
//
// Division and remainder by zero yield 0: simulators execute down dataflow
// paths whose predicates later prune them, so arithmetic must be total.
// Shift counts are masked to 6 bits, matching a 64-bit barrel shifter.
func EvalALU(op Opcode, a, b int64) int64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return 0
		}
		if a == minInt64 && b == -1 {
			return minInt64
		}
		return a / b
	case OpRem:
		if b == 0 {
			return 0
		}
		if a == minInt64 && b == -1 {
			return 0
		}
		return a % b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (uint64(b) & 63)
	case OpShr:
		return a >> (uint64(b) & 63)
	case OpNeg:
		return -a
	case OpNot:
		return ^a
	case OpEq:
		return b2i(a == b)
	case OpNe:
		return b2i(a != b)
	case OpLt:
		return b2i(a < b)
	case OpLe:
		return b2i(a <= b)
	case OpGt:
		return b2i(a > b)
	case OpGe:
		return b2i(a >= b)
	}
	panic("isa: EvalALU called with non-ALU opcode " + op.String())
}

// IsALU reports whether the opcode is handled by EvalALU.
func IsALU(op Opcode) bool {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpNeg, OpNot, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

const minInt64 = -1 << 63

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
