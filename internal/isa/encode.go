package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary format: a compact serialization of Program, so WaveScalar binaries
// can be written to disk and loaded without recompiling. Layout (all
// integers varint-encoded except the magic):
//
//	magic "WVSC" | version | memwords | #globals {name addr size #init init...}
//	entry | #funcs { name flags numwaves #params params...
//	                 #instrs { op imm immmask immvals target targetpad
//	                           mem(kind seq pred succ) wave
//	                           #dests {instr port} #destsF {instr port} comment } }
//
// Decode validates the result, so a corrupted stream cannot produce a
// structurally invalid program.

var magic = [4]byte{'W', 'V', 'S', 'C'}

const formatVersion = 1

type encoder struct {
	w   *bytes.Buffer
	buf [binary.MaxVarintLen64]byte
}

func (e *encoder) uv(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.w.Write(e.buf[:n])
}

func (e *encoder) sv(v int64) {
	n := binary.PutVarint(e.buf[:], v)
	e.w.Write(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.uv(uint64(len(s)))
	e.w.WriteString(s)
}

// Encode serializes a program.
func Encode(p *Program) []byte {
	e := &encoder{w: &bytes.Buffer{}}
	e.w.Write(magic[:])
	e.uv(formatVersion)
	e.sv(p.MemWords)
	e.uv(uint64(len(p.Globals)))
	for _, g := range p.Globals {
		e.str(g.Name)
		e.sv(g.Addr)
		e.sv(g.Size)
		e.uv(uint64(len(g.Init)))
		for _, v := range g.Init {
			e.sv(v)
		}
	}
	e.sv(int64(p.Entry))
	e.uv(uint64(len(p.Funcs)))
	for fi := range p.Funcs {
		f := &p.Funcs[fi]
		e.str(f.Name)
		flags := uint64(0)
		if f.TouchesMemory {
			flags |= 1
		}
		e.uv(flags)
		e.sv(int64(f.NumWaves))
		e.uv(uint64(len(f.Params)))
		for _, pad := range f.Params {
			e.sv(int64(pad))
		}
		e.uv(uint64(len(f.Instrs)))
		for ii := range f.Instrs {
			in := &f.Instrs[ii]
			e.uv(uint64(in.Op))
			e.sv(in.Imm)
			e.uv(uint64(in.ImmMask))
			for _, v := range in.ImmVals {
				e.sv(v)
			}
			e.sv(int64(in.Target))
			e.sv(int64(in.TargetPad))
			e.uv(uint64(in.Mem.Kind))
			e.sv(int64(in.Mem.Seq))
			e.sv(int64(in.Mem.Pred))
			e.sv(int64(in.Mem.Succ))
			e.sv(int64(in.Wave))
			e.uv(uint64(len(in.Dests)))
			for _, d := range in.Dests {
				e.sv(int64(d.Instr))
				e.uv(uint64(d.Port))
			}
			e.uv(uint64(len(in.DestsFalse)))
			for _, d := range in.DestsFalse {
				e.sv(int64(d.Instr))
				e.uv(uint64(d.Port))
			}
			e.str(in.Comment)
		}
	}
	return e.w.Bytes()
}

type decoder struct {
	r   *bytes.Reader
	err error
}

func (d *decoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *decoder) sv() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *decoder) str() string {
	n := d.uv()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.r.Len()) {
		d.err = fmt.Errorf("isa: string length %d exceeds remaining input", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = err
		return ""
	}
	return string(b)
}

// count reads a collection length, bounding it by what could possibly fit
// in the remaining input so corrupted streams cannot trigger giant
// allocations.
func (d *decoder) count(minBytesPer int) int {
	n := d.uv()
	if d.err != nil {
		return 0
	}
	if minBytesPer < 1 {
		minBytesPer = 1
	}
	if n > uint64(d.r.Len()/minBytesPer)+1 {
		d.err = fmt.Errorf("isa: count %d exceeds remaining input", n)
		return 0
	}
	return int(n)
}

// Decode deserializes and validates a program.
func Decode(data []byte) (*Program, error) {
	if len(data) < 5 || !bytes.Equal(data[:4], magic[:]) {
		return nil, fmt.Errorf("isa: not a WaveScalar binary (bad magic)")
	}
	d := &decoder{r: bytes.NewReader(data[4:])}
	if v := d.uv(); v != formatVersion {
		return nil, fmt.Errorf("isa: unsupported format version %d", v)
	}
	p := &Program{}
	p.MemWords = d.sv()
	ng := d.count(3)
	for i := 0; i < ng && d.err == nil; i++ {
		g := Global{Name: d.str(), Addr: d.sv(), Size: d.sv()}
		ni := d.count(1)
		for j := 0; j < ni && d.err == nil; j++ {
			g.Init = append(g.Init, d.sv())
		}
		p.Globals = append(p.Globals, g)
	}
	p.Entry = FuncID(d.sv())
	nf := d.count(4)
	for i := 0; i < nf && d.err == nil; i++ {
		f := Function{Name: d.str()}
		flags := d.uv()
		f.TouchesMemory = flags&1 != 0
		f.NumWaves = int32(d.sv())
		np := d.count(1)
		for j := 0; j < np && d.err == nil; j++ {
			f.Params = append(f.Params, InstrID(d.sv()))
		}
		nin := d.count(8)
		for j := 0; j < nin && d.err == nil; j++ {
			var in Instruction
			in.Op = Opcode(d.uv())
			in.Imm = d.sv()
			in.ImmMask = uint8(d.uv())
			for k := range in.ImmVals {
				in.ImmVals[k] = d.sv()
			}
			in.Target = FuncID(d.sv())
			in.TargetPad = int32(d.sv())
			in.Mem.Kind = MemKind(d.uv())
			in.Mem.Seq = int32(d.sv())
			in.Mem.Pred = int32(d.sv())
			in.Mem.Succ = int32(d.sv())
			in.Wave = int32(d.sv())
			ndst := d.count(2)
			for k := 0; k < ndst && d.err == nil; k++ {
				in.Dests = append(in.Dests, Dest{Instr: InstrID(d.sv()), Port: uint8(d.uv())})
			}
			nfd := d.count(2)
			for k := 0; k < nfd && d.err == nil; k++ {
				in.DestsFalse = append(in.DestsFalse, Dest{Instr: InstrID(d.sv()), Port: uint8(d.uv())})
			}
			in.Comment = d.str()
			f.Instrs = append(f.Instrs, in)
		}
		p.Funcs = append(p.Funcs, f)
	}
	if d.err != nil {
		return nil, fmt.Errorf("isa: decode: %w", d.err)
	}
	if d.r.Len() != 0 {
		return nil, fmt.Errorf("isa: %d trailing bytes after program", d.r.Len())
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("isa: decoded program invalid: %w", err)
	}
	return p, nil
}
