// Package stats provides the small numeric and table-formatting utilities
// the experiment harness uses: means, geometric means, Pearson correlation,
// and fixed-width text tables matching the layout of the paper's results.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values. The geometric
// mean is undefined for an empty series or one containing a non-positive
// value; those cases return NaN — an explicit "no answer" that Table
// renders as "n/a" — rather than a silent 0 that could masquerade as a
// real (terrible) geomean in a results table.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Pearson returns the correlation coefficient of two equal-length series
// (0 when undefined).
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Table is a simple column-aligned results table.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: 3 significant-ish decimals for
// small magnitudes, fewer for large. NaN — the "undefined" marker from
// GeoMean and friends — renders as "n/a" so tables never print a bogus
// numeric value for an undefined statistic.
func FormatFloat(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	switch a := math.Abs(v); {
	case a != 0 && a < 0.01:
		return fmt.Sprintf("%.4f", v)
	case a < 10:
		return fmt.Sprintf("%.3f", v)
	case a < 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// Render returns the aligned text form.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no escaping needed for
// our numeric content).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
