package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean(nil); !math.IsNaN(got) {
		t.Errorf("GeoMean(nil) = %v, want NaN", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	// Non-positive inputs make the geomean undefined; it must be an explicit
	// NaN, never a silent 0 that could be mistaken for a real value.
	for _, xs := range [][]float64{{1, -1}, {0, 2}, {-3}} {
		if got := GeoMean(xs); !math.IsNaN(got) {
			t.Errorf("GeoMean(%v) = %v, want NaN", xs, got)
		}
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1, 2}, []float64{3}) != 0 {
		t.Error("length mismatch should give 0")
	}
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Error("constant xs should give 0")
	}
	if Pearson([]float64{1, 2, 3}, []float64{5, 5, 5}) != 0 {
		t.Error("constant ys should give 0")
	}
	if Pearson(nil, nil) != 0 {
		t.Error("empty series should give 0")
	}
	if Pearson([]float64{7}, []float64{9}) != 0 {
		t.Error("single-point series should give 0")
	}
	// Degenerate inputs must yield a clean 0, never NaN leaking from 0/0.
	if got := Pearson([]float64{2, 2}, []float64{3, 3}); math.IsNaN(got) || got != 0 {
		t.Errorf("both-constant series = %v, want 0", got)
	}
}

func TestPearsonBounded(t *testing.T) {
	prop := func(a, b, c, d, e, f float64) bool {
		for _, v := range []float64{a, b, c, d, e, f} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological inputs
			}
		}
		r := Pearson([]float64{a, b, c}, []float64{d, e, f})
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "bench", "ipc", "speedup")
	tb.AddRow("fft", 2.5, 3.125)
	tb.AddRow("lu", 0.123456, 10000.4)
	tb.Note = "synthetic"
	out := tb.Render()
	for _, want := range []string{"Demo", "bench", "ipc", "fft", "2.500", "0.123", "10000", "note: synthetic"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Columns must align: every row has the same rendered width.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	hdr := lines[2]
	for _, l := range lines[3:] {
		if strings.HasPrefix(l, "note:") || strings.HasPrefix(l, "-") {
			continue
		}
		if len(l) != len(hdr) && len(lines[4]) != 0 {
			// Only check data rows against each other.
			break
		}
	}
}

// TestTableNARendering checks that an undefined statistic (NaN, e.g. a
// GeoMean over a series with non-positive values) renders as "n/a" and
// that the cell still participates in column alignment.
func TestTableNARendering(t *testing.T) {
	tb := NewTable("NA", "bench", "speedup")
	tb.AddRow("ok", 2.5)
	tb.AddRow("geomean", GeoMean([]float64{1, -1}))
	out := tb.Render()
	if !strings.Contains(out, "n/a") {
		t.Fatalf("NaN cell not rendered as n/a:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Fatalf("raw NaN leaked into the table:\n%s", out)
	}
	// Every data row must be exactly as wide as the header row: the n/a
	// cell is right-aligned into the column like any numeric cell.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	hdr := lines[2] // title, ===, header
	for _, l := range lines[4:] {
		if len(l) != len(hdr) {
			t.Errorf("row %q width %d, header width %d:\n%s", l, len(l), len(hdr), out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow(1, 2)
	csv := tb.CSV()
	if csv != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", csv)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0.001234: "0.0012",
		1.5:      "1.500",
		42.25:    "42.2",
		123456:   "123456",
		0:        "0.000",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatFloat(math.NaN()); got != "n/a" {
		t.Errorf("FormatFloat(NaN) = %q, want n/a", got)
	}
}
