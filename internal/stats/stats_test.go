package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean should reject non-positive values")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1, 2}, []float64{3}) != 0 {
		t.Error("length mismatch should give 0")
	}
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Error("constant series should give 0")
	}
}

func TestPearsonBounded(t *testing.T) {
	prop := func(a, b, c, d, e, f float64) bool {
		for _, v := range []float64{a, b, c, d, e, f} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological inputs
			}
		}
		r := Pearson([]float64{a, b, c}, []float64{d, e, f})
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "bench", "ipc", "speedup")
	tb.AddRow("fft", 2.5, 3.125)
	tb.AddRow("lu", 0.123456, 10000.4)
	tb.Note = "synthetic"
	out := tb.Render()
	for _, want := range []string{"Demo", "bench", "ipc", "fft", "2.500", "0.123", "10000", "note: synthetic"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Columns must align: every row has the same rendered width.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	hdr := lines[2]
	for _, l := range lines[3:] {
		if strings.HasPrefix(l, "note:") || strings.HasPrefix(l, "-") {
			continue
		}
		if len(l) != len(hdr) && len(lines[4]) != 0 {
			// Only check data rows against each other.
			break
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow(1, 2)
	csv := tb.CSV()
	if csv != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", csv)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0.001234: "0.0012",
		1.5:      "1.500",
		42.25:    "42.2",
		123456:   "123456",
		0:        "0.000",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
