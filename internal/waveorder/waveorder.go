// Package waveorder implements wave-ordered memory, the central contribution
// of the WaveScalar paper (MICRO 2003).
//
// Dataflow execution provides no program counter, so nothing in the
// execution substrate says in what order two memory operations should reach
// memory. WaveScalar recovers the sequential memory semantics imperative
// languages require by annotating every memory operation with its position
// in its wave's control-flow graph: a sequence number for the operation
// itself, plus the sequence numbers of its predecessor and successor in
// program order (wildcards where the neighbour depends on the branch taken).
// MEMORY-NOPs fill memory-silent paths so that every executed path announces
// one complete chain from the wave's start to its end.
//
// The hardware (a store buffer) assembles arriving annotations into the
// unique chain for the dynamically executed path and issues the operations
// to the memory system in exactly that order: an operation issues when it
// links to the previously issued operation through either side (its Pred
// names the previous operation, or the previous operation's Succ names it).
// Waves issue in wave-number order; dynamic wave numbers within a context
// are consecutive by construction (WAVE-ADVANCE on every wave crossing), so
// the buffer always knows which wave to drain next.
//
// Function calls generalize the scheme hierarchically: a call occupies one
// slot (a MemCall annotation) in the caller's chain, and the callee's whole
// memory sequence — its waves 0..k, terminated by a MemEnd annotation on its
// RETURN — splices into the total order at that slot. The Engine models this
// with a stack of active contexts.
//
// The Engine is purely logical: it decides order, and reports each decision
// through the IssueFunc callback. Timing simulators wrap it and charge
// whatever latency their store-buffer hardware implies; the functional
// interpreter calls it directly.
//
// Allocation discipline: the engine recycles its per-context and per-wave
// buffering state through internal freelists, and — when a releaser is
// installed with SetReleaser — hands each Request back to its creator the
// moment it can no longer be referenced, so a hosting simulator can pool
// request records and keep the whole submit/issue path allocation-free in
// steady state. Reset rewinds the engine for a fresh run while keeping
// every backing array.
package waveorder

import (
	"fmt"
	"sort"
	"strings"

	"wavescalar/internal/isa"
	"wavescalar/internal/trace"
)

// Request is one memory message sent from an executing instruction to the
// ordering engine.
type Request struct {
	Ctx  uint32 // dynamic context (function activation)
	Wave uint32 // dynamic wave number within the context

	Kind isa.MemKind
	Seq  int32
	Pred int32
	Succ int32

	Addr  int64 // MemLoad, MemStore
	Value int64 // MemStore: value to write; filled with the result for MemLoad by the issuer

	ChildCtx uint32 // MemCall: the context whose sequence splices in here

	// Cookie is an opaque handle for the submitting engine (e.g. an index
	// into its pool of reply-routing records). It is an integer rather
	// than an interface so that carrying per-request metadata never boxes
	// (a per-message heap allocation on the simulator's hot path).
	Cookie int64
}

func (r *Request) String() string {
	return fmt.Sprintf("%s ctx%d w%d %s.%s.%s addr=%d",
		r.Kind, r.Ctx, r.Wave, seqStr(r.Pred), seqStr(r.Seq), seqStr(r.Succ), r.Addr)
}

func seqStr(s int32) string {
	switch s {
	case isa.SeqWildcard:
		return "?"
	case isa.SeqStart:
		return "^"
	case isa.SeqEnd:
		return "$"
	}
	return fmt.Sprintf("%d", s)
}

// IssueFunc receives requests in program order, exactly once each.
type IssueFunc func(*Request)

// waveState buffers the not-yet-issued requests of one dynamic wave: a
// small insertion-ordered slice, scanned backwards so that a duplicate
// annotation shadows an earlier one exactly as it did in the map-based
// representation. Waves buffer few requests at a time (the store buffer's
// occupancy), so linear scans beat hashing and allocate nothing.
type waveState struct {
	reqs []*Request
}

func (w *waveState) add(r *Request) { w.reqs = append(w.reqs, r) }

// bySeq finds the latest-added buffered request with the given sequence
// number.
func (w *waveState) bySeq(seq int32) *Request {
	for i := len(w.reqs) - 1; i >= 0; i-- {
		if w.reqs[i].Seq == seq {
			return w.reqs[i]
		}
	}
	return nil
}

// byPred finds the latest-added buffered request whose predecessor
// annotation names pred. Callers only pass real sequence numbers or
// SeqStart, never SeqWildcard, so wildcard predecessors are never matched.
func (w *waveState) byPred(pred int32) *Request {
	for i := len(w.reqs) - 1; i >= 0; i-- {
		if w.reqs[i].Pred == pred {
			return w.reqs[i]
		}
	}
	return nil
}

// remove deletes the exact request r, preserving insertion order.
func (w *waveState) remove(r *Request) {
	for i := range w.reqs {
		if w.reqs[i] == r {
			w.reqs = append(w.reqs[:i], w.reqs[i+1:]...)
			return
		}
	}
}

func (w *waveState) empty() bool { return len(w.reqs) == 0 }

// ctxState is the ordering state of one function activation. The chain
// position is carried as scalars (lastSeq/lastSucc) rather than a retained
// *Request so issued requests can be recycled immediately.
type ctxState struct {
	id uint32
	// waves is a dense sliding window of buffered wave state: waves[i]
	// holds wave number waveBase+i (nil = nothing buffered). Wave numbers
	// a context touches at any instant cluster tightly around curWave, so
	// a window replaces the old per-context map on the drain hot path;
	// completed leading waves shift the window forward (see clearWave).
	waves    []*waveState
	waveBase uint32
	curWave  uint32

	// hasLast/lastSeq/lastSucc describe the last issued request of
	// curWave; hasLast is false at a wave start.
	hasLast  bool
	lastSeq  int32
	lastSucc int32

	parent *ctxState
	// spliced records that a MemCall has bound this context into its
	// parent's chain; callSeq/callSucc are that call slot's annotations.
	spliced  bool
	callSeq  int32
	callSucc int32

	ended bool
}

// waveAt returns the buffered state for wave n, nil if none.
func (c *ctxState) waveAt(n uint32) *waveState {
	if n < c.waveBase || n-c.waveBase >= uint32(len(c.waves)) {
		return nil
	}
	return c.waves[n-c.waveBase]
}

// setWave installs w as wave n's buffer, growing the window as needed. A
// wave before the window start (a request for an already-completed wave —
// pathological but representable) re-extends the window backwards,
// preserving the old map semantics exactly: such a request buffers
// forever and surfaces in the deadlock dump.
func (c *ctxState) setWave(n uint32, w *waveState) {
	if n < c.waveBase {
		shift := int(c.waveBase - n)
		grown := make([]*waveState, shift+len(c.waves))
		copy(grown[shift:], c.waves)
		c.waves = grown
		c.waveBase = n
	}
	for n-c.waveBase >= uint32(len(c.waves)) {
		c.waves = append(c.waves, nil)
	}
	c.waves[n-c.waveBase] = w
}

// clearWave empties wave n's slot and slides the window past any leading
// empty slots (windows are a handful of waves, so the shift is cheap).
func (c *ctxState) clearWave(n uint32) {
	if n >= c.waveBase && n-c.waveBase < uint32(len(c.waves)) {
		c.waves[n-c.waveBase] = nil
	}
	lead := 0
	for lead < len(c.waves) && c.waves[lead] == nil {
		lead++
	}
	if lead > 0 {
		k := copy(c.waves, c.waves[lead:])
		c.waves = c.waves[:k]
		c.waveBase += uint32(lead)
	}
}

// Engine assembles wave-ordered memory requests into the thread's total
// program order.
type Engine struct {
	issue   IssueFunc
	release func(*Request) // optional: receives each dead request
	ctxs    map[uint32]*ctxState
	top     *ctxState // innermost active context (issue point)
	root    *ctxState

	pending int
	stats   Stats

	// Freelists: context and wave buffering state recycled across
	// activations and runs (their maps and slices keep their capacity).
	csPool []*ctxState
	wsPool []*waveState

	// Structured tracing (nil when disabled). The engine is purely
	// logical, so the hosting simulator supplies the clock that stamps
	// trace records with simulated time.
	tr    *trace.Tracer
	clock func() int64

	// Retirement hooks (nil when disabled). onWaveDone fires when a
	// wave's last chain slot issues, before the context's wave counter
	// advances; onCtxEnd fires when a context's MemEnd issues, before
	// the context state is released. Speculative memory modes use them
	// as the transaction-epoch commit points.
	onWaveDone func(ctx, wave uint32)
	onCtxEnd   func(ctx uint32)
}

// Stats counts ordering-engine activity.
type Stats struct {
	Submitted uint64
	Issued    uint64
	Loads     uint64
	Stores    uint64
	Nops      uint64
	Calls     uint64
	Ends      uint64
	WavesDone uint64
	// MaxPending is the high-water mark of buffered (arrived, unissued)
	// requests — the occupancy a hardware store buffer would need.
	MaxPending int
}

// NewEngine creates an ordering engine whose total order begins with context
// rootCtx, wave 0. Each issued request is delivered to issue exactly once,
// in program order.
func NewEngine(rootCtx uint32, issue IssueFunc) *Engine {
	e := &Engine{
		issue: issue,
		ctxs:  make(map[uint32]*ctxState),
	}
	root := e.newCtxState(rootCtx)
	e.ctxs[rootCtx] = root
	e.top = root
	e.root = root
	return e
}

// Reset rewinds the engine to the state NewEngine leaves it in — a fresh
// total order rooted at rootCtx — while keeping every backing array
// (context/wave freelists, the context map's buckets) for reuse. The issue
// callback, releaser, and tracer attachments are preserved.
func (e *Engine) Reset(rootCtx uint32) {
	for id, c := range e.ctxs {
		e.releaseCtx(c)
		delete(e.ctxs, id)
	}
	root := e.newCtxState(rootCtx)
	e.ctxs[rootCtx] = root
	e.top = root
	e.root = root
	e.pending = 0
	e.stats = Stats{}
}

// SetReleaser installs the request-recycling hook: each request is handed
// to f exactly once, after its issue callback has run and the engine holds
// no further reference to it. Requests buffered at Reset are NOT released
// (the hosting pool is expected to be reset alongside the engine). Pass
// nil to disable recycling.
func (e *Engine) SetReleaser(f func(*Request)) { e.release = f }

// SetRetireHooks installs the retirement callbacks: waveDone fires once
// per completed wave (its last chain slot has issued) with the context id
// and the wave number just retired; ctxEnd fires once per context whose
// MemEnd has issued. Both run synchronously inside the issue drain, so
// they observe every earlier operation already issued and none later —
// the commit point a transactional memory epoch needs. Hooks survive
// Reset, like the issue callback and releaser. Pass nil to disable.
func (e *Engine) SetRetireHooks(waveDone func(ctx, wave uint32), ctxEnd func(ctx uint32)) {
	e.onWaveDone = waveDone
	e.onCtxEnd = ctxEnd
}

// newCtxState takes a context from the freelist (or allocates one) and
// initializes it for the given id.
func (e *Engine) newCtxState(id uint32) *ctxState {
	var c *ctxState
	if n := len(e.csPool); n > 0 {
		c = e.csPool[n-1]
		e.csPool = e.csPool[:n-1]
		*c = ctxState{waves: c.waves[:0]}
	} else {
		c = &ctxState{}
	}
	c.id = id
	return c
}

// releaseCtx recycles a context and any wave state still buffered in it.
func (e *Engine) releaseCtx(c *ctxState) {
	for i, w := range c.waves {
		if w != nil {
			e.releaseWave(w)
		}
		c.waves[i] = nil
	}
	c.waves = c.waves[:0]
	e.csPool = append(e.csPool, c)
}

func (e *Engine) releaseWave(w *waveState) {
	w.reqs = w.reqs[:0]
	e.wsPool = append(e.wsPool, w)
}

// wavePooled takes a wave buffer from the freelist or allocates one.
func (e *Engine) wavePooled() *waveState {
	if n := len(e.wsPool); n > 0 {
		w := e.wsPool[n-1]
		e.wsPool = e.wsPool[:n-1]
		return w
	}
	return &waveState{}
}

// waveOf returns (creating if needed) c's buffer for wave n.
func (e *Engine) waveOf(c *ctxState, n uint32) *waveState {
	w := c.waveAt(n)
	if w == nil {
		w = e.wavePooled()
		c.setWave(n, w)
	}
	return w
}

// Stats returns a copy of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// AttachTracer installs the structured tracing sink (nil disables it).
// clock supplies the hosting simulator's current cycle; it must be
// non-nil when tr is.
func (e *Engine) AttachTracer(tr *trace.Tracer, clock func() int64) {
	e.tr, e.clock = tr, clock
}

// Pending reports how many submitted requests have not yet issued.
func (e *Engine) Pending() int { return e.pending }

// Done reports whether the root context's memory sequence has terminated.
func (e *Engine) Done() bool { return e.root.ended }

// Submit hands a request to the engine. The request (and possibly others
// unblocked by it) may issue synchronously before Submit returns. A request
// that cannot belong to any legal program order — one arriving after the
// program's memory sequence ended, carrying an unknown kind, or splicing a
// context twice — is reported as an error: a malformed binary fails its own
// run instead of crashing the process.
func (e *Engine) Submit(r *Request) error {
	if e.root.ended {
		return fmt.Errorf("waveorder: request %v after program memory sequence ended", r)
	}
	c := e.ctxs[r.Ctx]
	if c == nil {
		c = e.newCtxState(r.Ctx)
		e.ctxs[r.Ctx] = c
	}
	e.waveOf(c, r.Wave).add(r)
	e.pending++
	if e.pending > e.stats.MaxPending {
		e.stats.MaxPending = e.pending
	}
	e.stats.Submitted++
	if e.tr != nil {
		e.tr.MemSubmit(e.clock(), e.pending)
	}
	return e.drain()
}

// drain issues every request that is now ordered, following chain links,
// wave completions, call splices, and context ends until no progress is
// possible.
func (e *Engine) drain() error {
	for {
		c := e.top
		if c == nil || c.ended {
			return nil
		}
		w := c.waveAt(c.curWave)
		if w == nil {
			return nil
		}
		var next *Request
		if !c.hasLast {
			// Wave start: the entry operation names SeqStart as its
			// predecessor.
			next = w.byPred(isa.SeqStart)
		} else {
			if c.lastSucc != isa.SeqWildcard && c.lastSucc != isa.SeqEnd {
				next = w.bySeq(c.lastSucc)
			}
			if next == nil {
				next = w.byPred(c.lastSeq)
			}
		}
		if next == nil {
			return nil
		}
		w.remove(next)
		if w.empty() {
			c.clearWave(c.curWave)
			e.releaseWave(w)
		}
		e.pending--
		if err := e.issueOne(c, next); err != nil {
			return err
		}
	}
}

func (e *Engine) issueOne(c *ctxState, r *Request) error {
	switch r.Kind {
	case isa.MemLoad:
		e.stats.Loads++
	case isa.MemStore:
		e.stats.Stores++
	case isa.MemNop:
		e.stats.Nops++
	case isa.MemCall:
		e.stats.Calls++
	case isa.MemEnd:
		e.stats.Ends++
	default:
		return fmt.Errorf("waveorder: issuing request %v with unknown kind %v", r, r.Kind)
	}
	e.stats.Issued++
	e.issue(r)

	switch r.Kind {
	case isa.MemCall:
		// Splice the child context's sequence in at this slot. The child
		// resumes the parent (at this call slot) when its MemEnd issues.
		child := e.ctxs[r.ChildCtx]
		if child == nil {
			child = e.newCtxState(r.ChildCtx)
			e.ctxs[r.ChildCtx] = child
		}
		if child.spliced {
			return fmt.Errorf("waveorder: context %d spliced twice (second call slot %v)", r.ChildCtx, r)
		}
		child.parent = c
		child.spliced = true
		child.callSeq = r.Seq
		child.callSucc = r.Succ
		e.top = child
		e.recycle(r)
	case isa.MemEnd:
		c.ended = true
		delete(e.ctxs, c.id)
		if c.parent != nil {
			e.top = c.parent
			// The call slot is now the parent's last issued operation; if
			// it closed the parent's wave, advance it.
			e.top.hasLast = true
			e.top.lastSeq = c.callSeq
			e.top.lastSucc = c.callSucc
			if c.callSucc == isa.SeqEnd {
				e.completeWave(e.top)
			}
		} else {
			e.top = nil
		}
		if e.onCtxEnd != nil {
			e.onCtxEnd(c.id)
		}
		e.releaseCtx(c)
		e.recycle(r)
		return nil
	default:
		c.hasLast = true
		c.lastSeq = r.Seq
		c.lastSucc = r.Succ
		if r.Succ == isa.SeqEnd {
			e.completeWave(c)
		}
		e.recycle(r)
	}
	return nil
}

// recycle hands a dead request back to the hosting pool, if one is
// installed. At this point the engine holds no reference to r: the chain
// position lives on as scalars in its context.
func (e *Engine) recycle(r *Request) {
	if e.release != nil {
		e.release(r)
	}
}

func (e *Engine) completeWave(c *ctxState) {
	e.stats.WavesDone++
	if e.tr != nil {
		e.tr.WaveDone(e.clock(), c.id, c.curWave)
	}
	if e.onWaveDone != nil {
		e.onWaveDone(c.id, c.curWave)
	}
	c.curWave++
	c.hasLast = false
}

// DebugState renders the engine's buffered requests; used in tests and by
// the simulators' deadlock diagnostics. Output is deterministic: contexts
// and waves sort by number, requests print in arrival order.
func (e *Engine) DebugState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pending=%d top=", e.pending)
	if e.top == nil {
		b.WriteString("<none>")
	} else {
		fmt.Fprintf(&b, "ctx%d w%d", e.top.id, e.top.curWave)
		if e.top.hasLast {
			fmt.Fprintf(&b, " last=%s(succ %s)", seqStr(e.top.lastSeq), seqStr(e.top.lastSucc))
		} else {
			b.WriteString(" last=^")
		}
	}
	b.WriteString("\n")
	ids := make([]uint32, 0, len(e.ctxs))
	for id := range e.ctxs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c := e.ctxs[id]
		// The window is ordered by wave number already.
		for i, w := range c.waves {
			if w == nil {
				continue
			}
			for _, r := range w.reqs {
				fmt.Fprintf(&b, "  ctx%d w%d: %v\n", id, c.waveBase+uint32(i), r)
			}
		}
	}
	return b.String()
}
