// Package waveorder implements wave-ordered memory, the central contribution
// of the WaveScalar paper (MICRO 2003).
//
// Dataflow execution provides no program counter, so nothing in the
// execution substrate says in what order two memory operations should reach
// memory. WaveScalar recovers the sequential memory semantics imperative
// languages require by annotating every memory operation with its position
// in its wave's control-flow graph: a sequence number for the operation
// itself, plus the sequence numbers of its predecessor and successor in
// program order (wildcards where the neighbour depends on the branch taken).
// MEMORY-NOPs fill memory-silent paths so that every executed path announces
// one complete chain from the wave's start to its end.
//
// The hardware (a store buffer) assembles arriving annotations into the
// unique chain for the dynamically executed path and issues the operations
// to the memory system in exactly that order: an operation issues when it
// links to the previously issued operation through either side (its Pred
// names the previous operation, or the previous operation's Succ names it).
// Waves issue in wave-number order; dynamic wave numbers within a context
// are consecutive by construction (WAVE-ADVANCE on every wave crossing), so
// the buffer always knows which wave to drain next.
//
// Function calls generalize the scheme hierarchically: a call occupies one
// slot (a MemCall annotation) in the caller's chain, and the callee's whole
// memory sequence — its waves 0..k, terminated by a MemEnd annotation on its
// RETURN — splices into the total order at that slot. The Engine models this
// with a stack of active contexts.
//
// The Engine is purely logical: it decides order, and reports each decision
// through the IssueFunc callback. Timing simulators wrap it and charge
// whatever latency their store-buffer hardware implies; the functional
// interpreter calls it directly.
package waveorder

import (
	"fmt"
	"sort"
	"strings"

	"wavescalar/internal/isa"
	"wavescalar/internal/trace"
)

// Request is one memory message sent from an executing instruction to the
// ordering engine.
type Request struct {
	Ctx  uint32 // dynamic context (function activation)
	Wave uint32 // dynamic wave number within the context

	Kind isa.MemKind
	Seq  int32
	Pred int32
	Succ int32

	Addr  int64 // MemLoad, MemStore
	Value int64 // MemStore: value to write; filled with the result for MemLoad by the issuer

	ChildCtx uint32 // MemCall: the context whose sequence splices in here

	// Cookie is an opaque slot for the submitting engine (e.g. which
	// processing element awaits a load reply).
	Cookie any
}

func (r *Request) String() string {
	return fmt.Sprintf("%s ctx%d w%d %s.%s.%s addr=%d",
		r.Kind, r.Ctx, r.Wave, seqStr(r.Pred), seqStr(r.Seq), seqStr(r.Succ), r.Addr)
}

func seqStr(s int32) string {
	switch s {
	case isa.SeqWildcard:
		return "?"
	case isa.SeqStart:
		return "^"
	case isa.SeqEnd:
		return "$"
	}
	return fmt.Sprintf("%d", s)
}

// IssueFunc receives requests in program order, exactly once each.
type IssueFunc func(*Request)

// waveState buffers the not-yet-issued requests of one dynamic wave.
type waveState struct {
	bySeq  map[int32]*Request
	byPred map[int32]*Request
}

func newWaveState() *waveState {
	return &waveState{bySeq: make(map[int32]*Request), byPred: make(map[int32]*Request)}
}

func (w *waveState) add(r *Request) {
	w.bySeq[r.Seq] = r
	if r.Pred != isa.SeqWildcard {
		w.byPred[r.Pred] = r
	}
}

func (w *waveState) remove(r *Request) {
	delete(w.bySeq, r.Seq)
	if r.Pred != isa.SeqWildcard {
		delete(w.byPred, r.Pred)
	}
}

func (w *waveState) empty() bool { return len(w.bySeq) == 0 }

// ctxState is the ordering state of one function activation.
type ctxState struct {
	id       uint32
	waves    map[uint32]*waveState
	curWave  uint32
	last     *Request // last issued request of curWave; nil at wave start
	parent   *ctxState
	callSlot *Request // the MemCall in parent that spliced this context in
	ended    bool
}

func (c *ctxState) wave(n uint32) *waveState {
	w := c.waves[n]
	if w == nil {
		w = newWaveState()
		c.waves[n] = w
	}
	return w
}

// Engine assembles wave-ordered memory requests into the thread's total
// program order.
type Engine struct {
	issue IssueFunc
	ctxs  map[uint32]*ctxState
	top   *ctxState // innermost active context (issue point)
	root  *ctxState

	pending int
	stats   Stats

	// Structured tracing (nil when disabled). The engine is purely
	// logical, so the hosting simulator supplies the clock that stamps
	// trace records with simulated time.
	tr    *trace.Tracer
	clock func() int64
}

// Stats counts ordering-engine activity.
type Stats struct {
	Submitted uint64
	Issued    uint64
	Loads     uint64
	Stores    uint64
	Nops      uint64
	Calls     uint64
	Ends      uint64
	WavesDone uint64
	// MaxPending is the high-water mark of buffered (arrived, unissued)
	// requests — the occupancy a hardware store buffer would need.
	MaxPending int
}

// NewEngine creates an ordering engine whose total order begins with context
// rootCtx, wave 0. Each issued request is delivered to issue exactly once,
// in program order.
func NewEngine(rootCtx uint32, issue IssueFunc) *Engine {
	root := &ctxState{id: rootCtx, waves: make(map[uint32]*waveState)}
	e := &Engine{
		issue: issue,
		ctxs:  map[uint32]*ctxState{rootCtx: root},
		top:   root,
		root:  root,
	}
	return e
}

// Stats returns a copy of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// AttachTracer installs the structured tracing sink (nil disables it).
// clock supplies the hosting simulator's current cycle; it must be
// non-nil when tr is.
func (e *Engine) AttachTracer(tr *trace.Tracer, clock func() int64) {
	e.tr, e.clock = tr, clock
}

// Pending reports how many submitted requests have not yet issued.
func (e *Engine) Pending() int { return e.pending }

// Done reports whether the root context's memory sequence has terminated.
func (e *Engine) Done() bool { return e.root.ended }

// Submit hands a request to the engine. The request (and possibly others
// unblocked by it) may issue synchronously before Submit returns. A request
// that cannot belong to any legal program order — one arriving after the
// program's memory sequence ended, carrying an unknown kind, or splicing a
// context twice — is reported as an error: a malformed binary fails its own
// run instead of crashing the process.
func (e *Engine) Submit(r *Request) error {
	if e.root.ended {
		return fmt.Errorf("waveorder: request %v after program memory sequence ended", r)
	}
	c := e.ctxs[r.Ctx]
	if c == nil {
		c = &ctxState{id: r.Ctx, waves: make(map[uint32]*waveState)}
		e.ctxs[r.Ctx] = c
	}
	c.wave(r.Wave).add(r)
	e.pending++
	if e.pending > e.stats.MaxPending {
		e.stats.MaxPending = e.pending
	}
	e.stats.Submitted++
	if e.tr != nil {
		e.tr.MemSubmit(e.clock(), e.pending)
	}
	return e.drain()
}

// drain issues every request that is now ordered, following chain links,
// wave completions, call splices, and context ends until no progress is
// possible.
func (e *Engine) drain() error {
	for {
		c := e.top
		if c == nil || c.ended {
			return nil
		}
		w := c.waves[c.curWave]
		if w == nil {
			return nil
		}
		var next *Request
		if c.last == nil {
			// Wave start: the entry operation names SeqStart as its
			// predecessor.
			next = w.byPred[isa.SeqStart]
		} else {
			if c.last.Succ != isa.SeqWildcard && c.last.Succ != isa.SeqEnd {
				next = w.bySeq[c.last.Succ]
			}
			if next == nil {
				next = w.byPred[c.last.Seq]
			}
		}
		if next == nil {
			return nil
		}
		w.remove(next)
		if w.empty() {
			delete(c.waves, c.curWave)
		}
		e.pending--
		if err := e.issueOne(c, next); err != nil {
			return err
		}
	}
}

func (e *Engine) issueOne(c *ctxState, r *Request) error {
	switch r.Kind {
	case isa.MemLoad:
		e.stats.Loads++
	case isa.MemStore:
		e.stats.Stores++
	case isa.MemNop:
		e.stats.Nops++
	case isa.MemCall:
		e.stats.Calls++
	case isa.MemEnd:
		e.stats.Ends++
	default:
		return fmt.Errorf("waveorder: issuing request %v with unknown kind %v", r, r.Kind)
	}
	e.stats.Issued++
	e.issue(r)

	switch r.Kind {
	case isa.MemCall:
		// Splice the child context's sequence in at this slot. The child
		// resumes the parent (at this call slot) when its MemEnd issues.
		child := e.ctxs[r.ChildCtx]
		if child == nil {
			child = &ctxState{id: r.ChildCtx, waves: make(map[uint32]*waveState)}
			e.ctxs[r.ChildCtx] = child
		}
		if child.parent != nil {
			return fmt.Errorf("waveorder: context %d spliced twice (second call slot %v)", r.ChildCtx, r)
		}
		child.parent = c
		child.callSlot = r
		e.top = child
	case isa.MemEnd:
		c.ended = true
		delete(e.ctxs, c.id)
		if c.parent != nil {
			e.top = c.parent
			// The call slot is now the parent's last issued operation; if
			// it closed the parent's wave, advance it.
			e.top.last = c.callSlot
			if c.callSlot.Succ == isa.SeqEnd {
				e.completeWave(e.top)
			}
		} else {
			e.top = nil
		}
		return nil
	default:
		c.last = r
	}
	if r.Kind != isa.MemCall && r.Succ == isa.SeqEnd {
		e.completeWave(c)
	}
	return nil
}

func (e *Engine) completeWave(c *ctxState) {
	e.stats.WavesDone++
	if e.tr != nil {
		e.tr.WaveDone(e.clock(), c.id, c.curWave)
	}
	c.curWave++
	c.last = nil
}

// DebugState renders the engine's buffered requests; used in tests and by
// the simulators' deadlock diagnostics.
func (e *Engine) DebugState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pending=%d top=", e.pending)
	if e.top == nil {
		b.WriteString("<none>")
	} else {
		fmt.Fprintf(&b, "ctx%d w%d", e.top.id, e.top.curWave)
		if e.top.last != nil {
			fmt.Fprintf(&b, " last=%s(succ %s)", seqStr(e.top.last.Seq), seqStr(e.top.last.Succ))
		} else {
			b.WriteString(" last=^")
		}
	}
	b.WriteString("\n")
	ids := make([]uint32, 0, len(e.ctxs))
	for id := range e.ctxs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c := e.ctxs[id]
		for wn, w := range c.waves {
			for _, r := range w.bySeq {
				fmt.Fprintf(&b, "  ctx%d w%d: %v\n", id, wn, r)
			}
		}
	}
	return b.String()
}
