package waveorder

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"wavescalar/internal/isa"
)

// chainBuilder constructs a synthetic, correctly annotated program-order
// request stream the way the compiler would: waves of linked operations,
// nested call splices, a MemEnd terminator per context.
type chainBuilder struct {
	rng     *rand.Rand
	nextCtx uint32
	out     []*Request // program order
}

// buildWave appends one wave of n operations for ctx/wave, linking each
// consecutive pair on at least one side (randomly Pred, Succ, or both), and
// possibly recursing into child contexts at call slots.
func (b *chainBuilder) buildWave(ctx, wave uint32, n int, depth int, last bool) {
	seqs := b.rng.Perm(n) // arbitrary (not monotone) sequence labels
	for i := 0; i < n; i++ {
		r := &Request{
			Ctx:  ctx,
			Wave: wave,
			Kind: isa.MemNop,
			Seq:  int32(seqs[i]),
			Pred: isa.SeqWildcard,
			Succ: isa.SeqWildcard,
		}
		switch b.rng.Intn(4) {
		case 0:
			r.Kind = isa.MemLoad
			r.Addr = int64(b.rng.Intn(64))
		case 1:
			r.Kind = isa.MemStore
			r.Addr = int64(b.rng.Intn(64))
			r.Value = b.rng.Int63()
		}
		if i == 0 {
			r.Pred = isa.SeqStart
		}
		if i == n-1 {
			if last {
				// Context ends inside this wave.
				r.Kind = isa.MemEnd
			}
			r.Succ = isa.SeqEnd
		}
		// Link to the previous op in this wave (skipping any spliced child
		// requests): choose which side of the link is known statically.
		if i > 0 {
			prev := b.lastOfWave(ctx, wave)
			switch b.rng.Intn(3) {
			case 0:
				r.Pred = prev.Seq
			case 1:
				prev.Succ = r.Seq
			default:
				r.Pred = prev.Seq
				prev.Succ = r.Seq
			}
		}
		// Occasionally make this op a call slot with a nested context.
		if depth < 3 && r.Kind != isa.MemEnd && b.rng.Intn(6) == 0 {
			r.Kind = isa.MemCall
			b.nextCtx++
			r.ChildCtx = b.nextCtx
			b.out = append(b.out, r)
			b.buildCtx(r.ChildCtx, depth+1)
			continue
		}
		b.out = append(b.out, r)
	}
}

func (b *chainBuilder) lastOfWave(ctx, wave uint32) *Request {
	for i := len(b.out) - 1; i >= 0; i-- {
		if b.out[i].Ctx == ctx && b.out[i].Wave == wave {
			return b.out[i]
		}
	}
	return nil
}

// buildCtx emits 1..4 waves for a fresh context; the final wave ends the
// context.
func (b *chainBuilder) buildCtx(ctx uint32, depth int) {
	waves := 1 + b.rng.Intn(4)
	for w := 0; w < waves; w++ {
		n := 1 + b.rng.Intn(6)
		b.buildWave(ctx, uint32(w), n, depth, w == waves-1)
	}
}

func buildStream(seed int64) []*Request {
	b := &chainBuilder{rng: rand.New(rand.NewSource(seed))}
	b.buildCtx(0, 0)
	return b.out
}

// runPermuted submits the stream in a random order and returns the issue
// order observed.
func runPermuted(t *testing.T, stream []*Request, seed int64) []*Request {
	t.Helper()
	var issued []*Request
	e := NewEngine(0, func(r *Request) { issued = append(issued, r) })
	perm := rand.New(rand.NewSource(seed)).Perm(len(stream))
	for _, i := range perm {
		e.Submit(stream[i])
	}
	if !e.Done() {
		t.Fatalf("engine not done after all submissions\n%s", e.DebugState())
	}
	if e.Pending() != 0 {
		t.Fatalf("engine has %d pending requests after done", e.Pending())
	}
	return issued
}

func TestIssueOrderEqualsProgramOrderSingleWave(t *testing.T) {
	// Hand-built wave: 3 ops linked Start->a->b->End, submitted reversed.
	mk := func(seq, pred, succ int32) *Request {
		return &Request{Ctx: 0, Wave: 0, Kind: isa.MemNop, Seq: seq, Pred: pred, Succ: succ}
	}
	a := mk(0, isa.SeqStart, 1)
	bb := mk(1, 0, isa.SeqWildcard)
	c := &Request{Ctx: 0, Wave: 0, Kind: isa.MemEnd, Seq: 2, Pred: 1, Succ: isa.SeqEnd}
	var got []int32
	e := NewEngine(0, func(r *Request) { got = append(got, r.Seq) })
	e.Submit(c)
	e.Submit(bb)
	if len(got) != 0 {
		t.Fatalf("issued %v before chain head arrived", got)
	}
	e.Submit(a)
	want := []int32{0, 1, 2}
	if len(got) != 3 {
		t.Fatalf("issued %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("issued %v, want %v", got, want)
		}
	}
	if !e.Done() {
		t.Fatal("engine should be done")
	}
}

func TestWildcardLinkEitherSide(t *testing.T) {
	// b's Pred is a wildcard but a's Succ names b: the chain must still
	// resolve (branch target knows nothing, branch source knows target).
	a := &Request{Kind: isa.MemNop, Seq: 5, Pred: isa.SeqStart, Succ: 9}
	b := &Request{Kind: isa.MemEnd, Seq: 9, Pred: isa.SeqWildcard, Succ: isa.SeqEnd}
	var got []int32
	e := NewEngine(0, func(r *Request) { got = append(got, r.Seq) })
	e.Submit(b)
	e.Submit(a)
	if len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Fatalf("issue order %v, want [5 9]", got)
	}
}

func TestWavesIssueInWaveNumberOrder(t *testing.T) {
	w0 := &Request{Wave: 0, Kind: isa.MemStore, Seq: 0, Pred: isa.SeqStart, Succ: isa.SeqEnd, Addr: 1, Value: 10}
	w1 := &Request{Wave: 1, Kind: isa.MemStore, Seq: 0, Pred: isa.SeqStart, Succ: isa.SeqEnd, Addr: 1, Value: 20}
	w2 := &Request{Wave: 2, Kind: isa.MemEnd, Seq: 0, Pred: isa.SeqStart, Succ: isa.SeqEnd}
	var got []int64
	e := NewEngine(0, func(r *Request) {
		if r.Kind == isa.MemStore {
			got = append(got, r.Value)
		}
	})
	e.Submit(w2)
	e.Submit(w1)
	if len(got) != 0 {
		t.Fatalf("later waves issued before wave 0: %v", got)
	}
	e.Submit(w0)
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("store order %v, want [10 20]", got)
	}
	if !e.Done() {
		t.Fatal("not done")
	}
}

func TestCallSpliceNesting(t *testing.T) {
	// Parent: store(1) ; call child ; store(3). Child: store(2) ; end.
	p1 := &Request{Ctx: 0, Kind: isa.MemStore, Seq: 0, Pred: isa.SeqStart, Succ: 1, Addr: 0, Value: 1}
	call := &Request{Ctx: 0, Kind: isa.MemCall, Seq: 1, Pred: 0, Succ: 2, ChildCtx: 7}
	p3 := &Request{Ctx: 0, Kind: isa.MemStore, Seq: 2, Pred: 1, Succ: isa.SeqWildcard, Addr: 0, Value: 3}
	pEnd := &Request{Ctx: 0, Kind: isa.MemEnd, Seq: 3, Pred: 2, Succ: isa.SeqEnd}
	c2 := &Request{Ctx: 7, Kind: isa.MemStore, Seq: 0, Pred: isa.SeqStart, Succ: 1, Addr: 0, Value: 2}
	cEnd := &Request{Ctx: 7, Kind: isa.MemEnd, Seq: 1, Pred: 0, Succ: isa.SeqEnd}

	for seed := int64(0); seed < 20; seed++ {
		var got []int64
		e := NewEngine(0, func(r *Request) {
			if r.Kind == isa.MemStore {
				got = append(got, r.Value)
			}
		})
		all := []*Request{copyReq(p1), copyReq(call), copyReq(p3), copyReq(pEnd), copyReq(c2), copyReq(cEnd)}
		for _, i := range rand.New(rand.NewSource(seed)).Perm(len(all)) {
			e.Submit(all[i])
		}
		if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Fatalf("seed %d: store order %v, want [1 2 3]", seed, got)
		}
		if !e.Done() {
			t.Fatalf("seed %d: not done\n%s", seed, e.DebugState())
		}
	}
}

func copyReq(r *Request) *Request { c := *r; return &c }

func TestCallSlotClosingWave(t *testing.T) {
	// The call is the last slot of wave 0; wave 1 must wait for the child.
	call := &Request{Ctx: 0, Wave: 0, Kind: isa.MemCall, Seq: 0, Pred: isa.SeqStart, Succ: isa.SeqEnd, ChildCtx: 3}
	w1 := &Request{Ctx: 0, Wave: 1, Kind: isa.MemStore, Seq: 0, Pred: isa.SeqStart, Succ: 1, Addr: 0, Value: 9}
	end := &Request{Ctx: 0, Wave: 1, Kind: isa.MemEnd, Seq: 1, Pred: 0, Succ: isa.SeqEnd}
	childStore := &Request{Ctx: 3, Wave: 0, Kind: isa.MemStore, Seq: 0, Pred: isa.SeqStart, Succ: 1, Addr: 0, Value: 4}
	childEnd := &Request{Ctx: 3, Wave: 0, Kind: isa.MemEnd, Seq: 1, Pred: 0, Succ: isa.SeqEnd}

	var got []int64
	e := NewEngine(0, func(r *Request) {
		if r.Kind == isa.MemStore {
			got = append(got, r.Value)
		}
	})
	e.Submit(w1)
	e.Submit(end)
	e.Submit(call)
	if len(got) != 0 {
		t.Fatalf("wave 1 issued before child context finished: %v", got)
	}
	e.Submit(childStore)
	e.Submit(childEnd)
	if len(got) != 2 || got[0] != 4 || got[1] != 9 {
		t.Fatalf("store order %v, want [4 9]", got)
	}
	if !e.Done() {
		t.Fatal("not done")
	}
}

// TestRandomStreamsProperty is the central invariant: for randomly generated
// correctly-annotated streams submitted in arbitrary arrival order, the
// engine issues every request exactly once, in program order.
func TestRandomStreamsProperty(t *testing.T) {
	prop := func(streamSeed, permSeed int64) bool {
		stream := buildStream(streamSeed)
		issued := runPermuted(t, stream, permSeed)
		if len(issued) != len(stream) {
			return false
		}
		for i := range stream {
			if issued[i] != stream[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	stream := buildStream(42)
	e := NewEngine(0, func(*Request) {})
	for _, r := range stream {
		e.Submit(r)
	}
	s := e.Stats()
	if s.Submitted != uint64(len(stream)) || s.Issued != uint64(len(stream)) {
		t.Fatalf("submitted=%d issued=%d want both %d", s.Submitted, s.Issued, len(stream))
	}
	if s.Loads+s.Stores+s.Nops+s.Calls+s.Ends != s.Issued {
		t.Fatalf("kind counters %d+%d+%d+%d+%d do not sum to issued %d",
			s.Loads, s.Stores, s.Nops, s.Calls, s.Ends, s.Issued)
	}
	// In-order submission should never buffer more than one wave's worth;
	// at minimum MaxPending must be >= 1.
	if s.MaxPending < 1 {
		t.Fatalf("MaxPending = %d", s.MaxPending)
	}
}

func TestDoubleSpliceError(t *testing.T) {
	e := NewEngine(0, func(*Request) {})
	// Context 0 splices in context 5; context 5 then tries to splice in
	// itself, which re-parents an already-spliced context: a malformed
	// binary, reported as an error rather than a process crash.
	if err := e.Submit(&Request{Ctx: 0, Kind: isa.MemCall, Seq: 0, Pred: isa.SeqStart, Succ: 1, ChildCtx: 5}); err != nil {
		t.Fatalf("first splice: %v", err)
	}
	err := e.Submit(&Request{Ctx: 5, Kind: isa.MemCall, Seq: 0, Pred: isa.SeqStart, Succ: 1, ChildCtx: 5})
	if err == nil || !strings.Contains(err.Error(), "spliced twice") {
		t.Fatalf("expected double-splice error, got %v", err)
	}
}

func TestSubmitAfterEndError(t *testing.T) {
	e := NewEngine(0, func(*Request) {})
	if err := e.Submit(&Request{Ctx: 0, Kind: isa.MemEnd, Seq: 0, Pred: isa.SeqStart, Succ: isa.SeqEnd}); err != nil {
		t.Fatalf("program end: %v", err)
	}
	err := e.Submit(&Request{Ctx: 1, Kind: isa.MemNop, Seq: 1, Pred: 0, Succ: isa.SeqEnd})
	if err == nil || !strings.Contains(err.Error(), "after program memory sequence ended") {
		t.Fatalf("expected submit-after-end error, got %v", err)
	}
}

func TestUnknownKindError(t *testing.T) {
	e := NewEngine(0, func(*Request) {})
	err := e.Submit(&Request{Ctx: 0, Kind: isa.MemKind(200), Seq: 0, Pred: isa.SeqStart, Succ: isa.SeqEnd})
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("expected unknown-kind error, got %v", err)
	}
	// The malformed request must not be counted as issued.
	if s := e.Stats(); s.Issued != 0 {
		t.Fatalf("issued=%d after rejected request, want 0", s.Issued)
	}
}

func BenchmarkEngineInOrder(b *testing.B) {
	stream := buildStream(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine(0, func(*Request) {})
		for _, r := range stream {
			rc := *r
			e.Submit(&rc)
		}
	}
}
