package fault

import (
	"errors"
	"strings"
	"testing"
)

// TestInjectorDeterminism: identical (seed, config) pairs must draw
// identical fault sequences — the property every reproducible-faulty-run
// guarantee rests on.
func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{Seed: 99, DropRate: 0.2, DelayRate: 0.1, MemLossRate: 0.15}
	a, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		d1, l1 := a.TokenFault()
		d2, l2 := b.TokenFault()
		if d1 != d2 || l1 != l2 {
			t.Fatalf("token draw %d diverged: (%v,%d) vs (%v,%d)", i, d1, l1, d2, l2)
		}
		d1, l1 = a.MemFault()
		d2, l2 = b.MemFault()
		if d1 != d2 || l1 != l2 {
			t.Fatalf("mem draw %d diverged", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestStreamIndependence: enabling the memory-loss stream must not change
// which operand messages drop — separate streams per fault class.
func TestStreamIndependence(t *testing.T) {
	base, _ := NewInjector(Config{Seed: 5, DropRate: 0.1})
	both, _ := NewInjector(Config{Seed: 5, DropRate: 0.1, MemLossRate: 0.5})
	for i := 0; i < 10_000; i++ {
		d1, _ := base.TokenFault()
		both.MemFault() // interleave mem draws; token stream must not notice
		d2, _ := both.TokenFault()
		if d1 != d2 {
			t.Fatalf("token drop %d changed when mem faults were enabled", i)
		}
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	in, _ := NewInjector(Config{Seed: 1, DropRate: 0.25})
	drops := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		if d, _ := in.TokenFault(); d {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.23 || got > 0.27 {
		t.Fatalf("drop rate %.4f far from configured 0.25", got)
	}
}

func TestDefectMap(t *testing.T) {
	cfg := Config{Seed: 3, DefectRate: 0.3}
	m1 := DefectMap(cfg, 64)
	m2 := DefectMap(cfg, 64)
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("defect map not deterministic")
		}
	}
	if n := CountDefects(m1); n == 0 || n == 64 {
		t.Fatalf("implausible defect count %d for rate 0.3", n)
	}
	// Saturating rate must still leave at least one usable PE.
	if n := CountDefects(DefectMap(Config{Seed: 3, DefectRate: 0.9999}, 16)); n >= 16 {
		t.Fatalf("defect map killed all %d PEs", n)
	}
	if DefectMap(Config{}, 64) != nil {
		t.Fatal("zero rate should produce no map")
	}
	if DefectMap(cfg, 0) != nil {
		t.Fatal("zero PEs should produce no map")
	}
}

func TestTimeoutBackoff(t *testing.T) {
	in, _ := NewInjector(Config{Seed: 1, DropRate: 0.5}) // defaults: timeout 64
	if in.Timeout(0) != 64 || in.Timeout(1) != 128 || in.Timeout(3) != 512 {
		t.Fatalf("backoff sequence wrong: %d %d %d", in.Timeout(0), in.Timeout(1), in.Timeout(3))
	}
	if in.Timeout(10) != in.Timeout(50) {
		t.Fatal("backoff must cap, not overflow")
	}
}

// TestMemTransitExhaustion: a certain-loss stream must return a structured
// *FaultError after MaxRetries attempts, never loop forever, and must not
// invoke the transport (no bandwidth charged for an undelivered message).
func TestMemTransitExhaustion(t *testing.T) {
	in, err := NewInjector(Config{Seed: 1, MemLossRate: 1.0, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, err = in.MemTransit(100, 7, func(int64) int64 {
		t.Fatal("transport invoked for a message that was never delivered")
		return 0
	})
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FaultError, got %v", err)
	}
	if fe.Kind != KindMessageLoss || fe.PE != 7 || fe.Cycle != 100 {
		t.Fatalf("bad fault fields: %+v", fe)
	}
	if in.Stats().MemRetries != 3 {
		t.Fatalf("retries = %d, want 3", in.Stats().MemRetries)
	}
}

// TestMemTransitRecovery: with losses below the retry budget the message
// arrives, delayed by the backoff timeouts it paid.
func TestMemTransitRecovery(t *testing.T) {
	in, _ := NewInjector(Config{Seed: 1, MemLossRate: 0.3, AckTimeout: 10})
	sawRetry := false
	for i := 0; i < 200; i++ {
		arr, err := in.MemTransit(1000, 0, func(send int64) int64 { return send + 5 })
		if err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		if arr < 1005 {
			t.Fatalf("arrival %d before fault-free minimum", arr)
		}
		if arr > 1005 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatal("30% loss never delayed a message across 200 draws")
	}
}

func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("defect=0.05,drop=0.01,kill=12@5000,retries=4,timeout=32,delaycycles=8,memloss=0.02,delay=0.1")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{DefectRate: 0.05, DropRate: 0.01, DelayRate: 0.1, MemLossRate: 0.02,
		KillPE: 12, KillCycle: 5000, MaxRetries: 4, AckTimeout: 32, DelayCycles: 8}
	if c != want {
		t.Fatalf("parsed %+v, want %+v", c, want)
	}
	if c, err := ParseSpec("  "); err != nil || c.Enabled() {
		t.Fatalf("blank spec: %+v, %v", c, err)
	}
	for _, bad := range []string{
		"defect", "defect=x", "drop=1.5", "kill=3", "kill=a@b",
		"retries=x", "timeout=x", "delaycycles=x", "warp=0.5", "defect=1.0",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q should not parse", bad)
		}
	}
}

func TestConfigStringRoundTrip(t *testing.T) {
	c := Config{DefectRate: 0.05, DropRate: 0.01, KillPE: 3, KillCycle: 77}
	back, err := ParseSpec(c.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Fatalf("String round trip: %+v -> %q -> %+v", c, c.String(), back)
	}
}

func TestFaultErrorFormat(t *testing.T) {
	e := &FaultError{Kind: KindWatchdog, PE: 4, Cycle: 123, Detail: "stuck"}
	if got := e.Error(); got != "fault[watchdog] pe=4 cycle=123: stuck" {
		t.Fatalf("format %q", got)
	}
	e2 := &FaultError{Kind: KindConfig, PE: -1}
	if strings.Contains(e2.Error(), "pe=") {
		t.Fatalf("pe=-1 should be omitted: %q", e2.Error())
	}
}

func TestValidate(t *testing.T) {
	for _, bad := range []Config{
		{DropRate: -0.1}, {DelayRate: 2}, {DefectRate: 1.0},
		{MaxRetries: -1}, {AckTimeout: -5}, {KillCycle: -1},
	} {
		if bad.Validate() == nil {
			t.Errorf("config %+v should not validate", bad)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config must validate: %v", err)
	}
	if (Config{}).Enabled() {
		t.Error("zero config must be disabled")
	}
	if !(Config{KillCycle: 5}).Enabled() {
		t.Error("kill schedule must enable injection")
	}
}
