// Package fault is the deterministic fault-injection subsystem for the
// WaveCache simulator. The WaveScalar paper argues that a tiled, decentralized
// dataflow machine tolerates manufacturing defects and transient faults: a
// dead processing element is simply mapped around by instruction placement,
// and lost messages are recovered by the usual distributed-systems machinery
// (acknowledge, time out, retransmit). This package supplies the fault model
// that lets the simulator test that claim:
//
//   - hard PE defects fixed at configuration time (DefectMap), which the
//     placement policies treat as non-placeable;
//   - a mid-run PE death (KillPE/KillCycle), recovered by re-placement:
//     the dead PE's resident instructions migrate to live PEs and in-flight
//     tokens are re-delivered to the new homes;
//   - transient operand-network message drops and delays, and store-buffer
//     message loss, recovered by an ack/retransmit protocol with exponential
//     backoff and bounded retries.
//
// Every fault decision is drawn from a seeded deterministic generator
// (separate streams per fault class so enabling one class never perturbs
// another), so a faulty run is reproducible bit-for-bit from (seed, config).
// Unrecoverable situations surface as a structured *FaultError — never a
// panic, never a hang.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"wavescalar/internal/trace"
)

// Config declares the fault scenario for one simulation run. The zero value
// disables all injection (a perfect machine).
type Config struct {
	// Seed drives every fault decision; identical (Seed, Config) pairs
	// reproduce identical faulty runs bit-for-bit.
	Seed uint64

	// DefectRate is the fraction of PEs dead at configuration time
	// (manufacturing defects). Placement must route around them.
	DefectRate float64

	// DropRate is the probability an operand-network message is lost in
	// transit and must be retransmitted.
	DropRate float64
	// DelayRate is the probability a message is transiently delayed (soft
	// error on a link retried at the flit level) by DelayCycles.
	DelayRate float64
	// DelayCycles is the extra latency of a delayed message (default 16).
	DelayCycles int64
	// MemLossRate is the probability a store-buffer message (request or
	// load reply) is lost and must be retransmitted.
	MemLossRate float64

	// KillPE dies at cycle KillCycle (0 = no mid-run kill; KillPE is
	// ignored unless KillCycle > 0). Its resident instructions migrate.
	KillPE    int
	KillCycle int64

	// MaxRetries bounds retransmit attempts per message (default 8);
	// exhaustion returns a *FaultError instead of retrying forever.
	MaxRetries int
	// AckTimeout is the base sender timeout before the first retransmit
	// (default 64 cycles); it doubles on each further attempt.
	AckTimeout int64
}

// Enabled reports whether any fault injection is configured.
func (c Config) Enabled() bool {
	return c.DefectRate > 0 || c.DropRate > 0 || c.DelayRate > 0 ||
		c.MemLossRate > 0 || c.KillCycle > 0
}

// Validate checks rates and recovery parameters.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"defect", c.DefectRate}, {"drop", c.DropRate},
		{"delay", c.DelayRate}, {"memloss", c.MemLossRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s rate %g outside [0,1]", r.name, r.v)
		}
	}
	if c.DefectRate >= 1 {
		return fmt.Errorf("fault: defect rate 1.0 leaves no usable PEs")
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("fault: negative MaxRetries %d", c.MaxRetries)
	}
	if c.DelayCycles < 0 || c.AckTimeout < 0 || c.KillCycle < 0 {
		return fmt.Errorf("fault: negative cycle parameter")
	}
	return nil
}

// withDefaults fills the recovery knobs left zero.
func (c Config) withDefaults() Config {
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 64
	}
	if c.DelayCycles == 0 {
		c.DelayCycles = 16
	}
	return c
}

// String renders the config in ParseSpec form (empty when disabled).
func (c Config) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("defect", c.DefectRate)
	add("drop", c.DropRate)
	add("delay", c.DelayRate)
	add("memloss", c.MemLossRate)
	if c.KillCycle > 0 {
		parts = append(parts, fmt.Sprintf("kill=%d@%d", c.KillPE, c.KillCycle))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the CLI fault specification: comma-separated key=value
// pairs. Keys: defect, drop, delay, memloss (rates in [0,1]);
// kill=PE@CYCLE; retries=N; timeout=CYCLES; delaycycles=CYCLES.
// The empty string yields the disabled zero Config.
func ParseSpec(spec string) (Config, error) {
	var c Config
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return c, fmt.Errorf("fault: bad spec entry %q (want key=value)", kv)
		}
		key, val := kv[:eq], kv[eq+1:]
		switch key {
		case "defect", "drop", "delay", "memloss":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return c, fmt.Errorf("fault: bad %s rate %q: %v", key, val, err)
			}
			switch key {
			case "defect":
				c.DefectRate = r
			case "drop":
				c.DropRate = r
			case "delay":
				c.DelayRate = r
			case "memloss":
				c.MemLossRate = r
			}
		case "kill":
			at := strings.IndexByte(val, '@')
			if at < 0 {
				return c, fmt.Errorf("fault: kill wants PE@CYCLE, got %q", val)
			}
			pe, err1 := strconv.Atoi(val[:at])
			cyc, err2 := strconv.ParseInt(val[at+1:], 10, 64)
			if err1 != nil || err2 != nil {
				return c, fmt.Errorf("fault: bad kill spec %q", val)
			}
			c.KillPE, c.KillCycle = pe, cyc
		case "retries":
			n, err := strconv.Atoi(val)
			if err != nil {
				return c, fmt.Errorf("fault: bad retries %q: %v", val, err)
			}
			c.MaxRetries = n
		case "timeout":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return c, fmt.Errorf("fault: bad timeout %q: %v", val, err)
			}
			c.AckTimeout = n
		case "delaycycles":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return c, fmt.Errorf("fault: bad delaycycles %q: %v", val, err)
			}
			c.DelayCycles = n
		default:
			return c, fmt.Errorf("fault: unknown spec key %q", key)
		}
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// Kind classifies a FaultError.
type Kind uint8

const (
	// KindMessageLoss: a message exhausted its retransmit budget (the
	// fault was unrecoverable within MaxRetries).
	KindMessageLoss Kind = iota
	// KindPlacement: a PE death could not be recovered by re-placement
	// (no usable PEs remain, or the policy cannot migrate).
	KindPlacement
	// KindWatchdog: the simulation watchdog fired — no event progress
	// (dataflow deadlock, livelock, or a lost-token hang) or the
	// MaxCycles bound was exceeded.
	KindWatchdog
	// KindConfig: the fault configuration itself is unusable.
	KindConfig
	// KindCancelled: the caller cancelled the run (deadline expiry, client
	// disconnect, server drain) via wavecache.Config.Cancel. Not a machine
	// fault — the simulation was healthy when it was asked to stop.
	KindCancelled
)

func (k Kind) String() string {
	switch k {
	case KindMessageLoss:
		return "message-loss"
	case KindPlacement:
		return "placement"
	case KindWatchdog:
		return "watchdog"
	case KindConfig:
		return "config"
	case KindCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FaultError is the structured failure a simulator returns when a fault is
// unrecoverable. It is diagnosable (kind, location, cycle, diagnostic
// detail) and is never accompanied by a hang or a panic.
type FaultError struct {
	Kind   Kind
	PE     int   // affected PE (-1 when not PE-specific)
	Cycle  int64 // simulation time of the failure
	Detail string
}

func (e *FaultError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault[%s]", e.Kind)
	if e.PE >= 0 {
		fmt.Fprintf(&b, " pe=%d", e.PE)
	}
	fmt.Fprintf(&b, " cycle=%d", e.Cycle)
	if e.Detail != "" {
		b.WriteString(": ")
		b.WriteString(e.Detail)
	}
	return b.String()
}

// Stats counts fault activity outside the operand network (which keeps its
// own drop/retry counters in noc.Stats).
type Stats struct {
	// DefectivePEs is the size of the configuration-time defect map.
	DefectivePEs int
	// PEKills counts mid-run PE deaths; MigratedInstrs counts instruction
	// homes evicted from killed PEs and re-placed on live ones.
	PEKills        uint64
	MigratedInstrs uint64
	// Store-buffer path transient faults and their recovery.
	MemDrops      uint64
	MemRetries    uint64
	MemRetryWait  uint64 // cycles spent in mem-message ack timeouts
	DelayedTokens uint64 // transient delays on the mem path
}

// splitmix64 advances one PRNG stream; the standard 64-bit mixer, chosen for
// reproducibility (no dependence on math/rand internals across Go versions).
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// rand01 maps a draw to [0,1).
func rand01(state *uint64) float64 {
	return float64(splitmix64(state)>>11) / (1 << 53)
}

// Injector draws fault decisions for one simulation run. Each fault class
// consumes its own stream, so enabling memory loss never changes which
// operand messages drop, and vice versa. Not safe for concurrent use:
// construct one per simulation, like a placement policy.
type Injector struct {
	cfg      Config
	tokState uint64 // operand-network stream
	memState uint64 // store-buffer stream
	stats    Stats
	tr       *trace.Tracer // nil = tracing disabled
}

// AttachTracer installs the structured tracing sink (nil disables it);
// store-buffer-path drops and retries are recorded as discrete events.
func (in *Injector) AttachTracer(tr *trace.Tracer) { in.tr = tr }

// NewInjector builds the injector for a validated config.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Injector{
		cfg:      cfg,
		tokState: cfg.Seed ^ 0x746F6B656E73, // "tokens"
		memState: cfg.Seed ^ 0x6D656D6F7279, // "memory"
	}, nil
}

// Config returns the (defaulted) configuration in force.
func (in *Injector) Config() Config { return in.cfg }

// Stats returns the injector-side fault counters.
func (in *Injector) Stats() Stats { return in.stats }

// DefectMap returns the configuration-time hard-defect map for n PEs,
// derived only from the seed and defect rate: the same map whether computed
// by the simulator or by the caller constructing a placement policy. At
// least one PE is always left usable.
func DefectMap(cfg Config, n int) []bool {
	if cfg.DefectRate <= 0 || n <= 0 {
		return nil
	}
	state := cfg.Seed ^ 0x646566656374 // "defect"
	dead := make([]bool, n)
	alive := n
	for i := range dead {
		if rand01(&state) < cfg.DefectRate && alive > 1 {
			dead[i] = true
			alive--
		}
	}
	return dead
}

// CountDefects reports how many entries of a defect map are dead.
func CountDefects(m []bool) int {
	n := 0
	for _, d := range m {
		if d {
			n++
		}
	}
	return n
}

// TokenFault draws the transient-fault outcome for one operand-network
// message attempt: whether it is dropped, and any extra delay. Implements
// the noc.FaultModel interface.
func (in *Injector) TokenFault() (drop bool, delay int64) {
	if in.cfg.DropRate > 0 && rand01(&in.tokState) < in.cfg.DropRate {
		return true, 0
	}
	if in.cfg.DelayRate > 0 && rand01(&in.tokState) < in.cfg.DelayRate {
		return false, in.cfg.DelayCycles
	}
	return false, 0
}

// MemFault draws the outcome for one store-buffer message attempt.
func (in *Injector) MemFault() (drop bool, delay int64) {
	if in.cfg.MemLossRate > 0 && rand01(&in.memState) < in.cfg.MemLossRate {
		in.stats.MemDrops++
		return true, 0
	}
	if in.cfg.DelayRate > 0 && rand01(&in.memState) < in.cfg.DelayRate {
		in.stats.DelayedTokens++
		return false, in.cfg.DelayCycles
	}
	return false, 0
}

// MaxRetries bounds retransmit attempts; part of noc.FaultModel.
func (in *Injector) MaxRetries() int { return in.cfg.MaxRetries }

// Timeout is the sender's ack timeout before retransmit attempt number
// attempt (0-based): exponential backoff from AckTimeout, capped at 2^10x.
func (in *Injector) Timeout(attempt int) int64 {
	if attempt > 10 {
		attempt = 10
	}
	return in.cfg.AckTimeout << attempt
}

// MemTransit computes the delivery time of a store-buffer message injected
// at cycle now, applying the loss/retransmit protocol on the memory path.
// transport maps a send cycle to the fault-free arrival cycle (and charges
// any bandwidth), and is invoked exactly once, at the send time of the
// delivered attempt. On retry exhaustion MemTransit returns a *FaultError.
func (in *Injector) MemTransit(now int64, pe int, transport func(send int64) int64) (int64, error) {
	send := now
	for attempt := 0; ; attempt++ {
		drop, delay := in.MemFault()
		if !drop {
			return transport(send) + delay, nil
		}
		in.tr.Drop(send, pe)
		if attempt >= in.cfg.MaxRetries {
			return 0, &FaultError{
				Kind: KindMessageLoss, PE: pe, Cycle: now,
				Detail: fmt.Sprintf("store-buffer message lost after %d attempts", attempt+1),
			}
		}
		wait := in.Timeout(attempt)
		in.stats.MemRetries++
		in.stats.MemRetryWait += uint64(wait)
		in.tr.Retry(send, pe, wait)
		send += wait
	}
}
