package placemodel

import (
	"fmt"

	"wavescalar/internal/interp"
	"wavescalar/internal/isa"
	"wavescalar/internal/placement"
)

// This file closes the placement feedback loop: profile the program on the
// reference dataflow interpreter, seed a layout from a static policy,
// improve it under the analytic placement model (Optimize), and replay the
// result through a FixedPolicy. Registering it with the placement package
// makes "profile-feedback" a first-class policy name — selectable by the
// E8 placement comparison, the CLIs' -policy flags, and the serve API —
// without the placement package importing this one (which imports it).
func init() {
	placement.Register("profile-feedback", NewProfileFeedback)
}

const (
	// feedbackIters bounds the hill-climb. The model evaluates in
	// microseconds per move, so thousands of iterations are still far
	// cheaper than one simulation.
	feedbackIters = 4096
	// feedbackLineWords matches the default L1 line size (mem.Default's
	// 16-word lines) so the profile's sharing sets line up with what the
	// simulated coherence protocol will see.
	feedbackLineWords = 16
)

// NewProfileFeedback builds the profile-guided placement policy: an
// interpreter profiling run, a depth-first-snake seed layout, model-guided
// optimization, and a FixedPolicy that replays the optimized layout. The
// whole pipeline is deterministic in (program, machine, seed).
//
// The returned policy is not Reconfigurable — its layout was optimized for
// the intact machine — so construction rejects machines with configured
// defects rather than placing instructions on dead PEs.
func NewProfileFeedback(m placement.Machine, prog *isa.Program, seed uint64) (placement.Policy, error) {
	if prog == nil {
		return nil, fmt.Errorf("placemodel: profile-feedback requires the program")
	}
	for _, d := range m.Defective {
		if d {
			return nil, fmt.Errorf("placemodel: profile-feedback does not support defective machines (fixed layouts cannot re-place)")
		}
	}
	im := interp.New(prog, 0)
	prof := im.CollectProfile(feedbackLineWords)
	if _, err := im.Run(); err != nil {
		return nil, fmt.Errorf("placemodel: profile-feedback profiling run: %w", err)
	}
	base, err := placement.NewDepthFirstSnake(m, prog)
	if err != nil {
		return nil, err
	}
	layout := ExtractLayout(base, prof)
	cfg := DefaultConfig(m, m.Capacity)
	opt := Optimize(cfg, prof, layout, feedbackIters, int64(seed))
	return NewFixedPolicy("profile-feedback", opt, m)
}
