// Package placemodel implements the instruction-placement performance
// model of the follow-on paper "Modeling Instruction Placement on a Spatial
// Architecture" (SPAA 2006), as an extension on top of this repository's
// WaveScalar implementation. The model predicts the relative performance of
// an instruction layout from three components:
//
//   - operand latency: profiled operand traffic between instruction pairs,
//     weighted by the placement-induced communication latency (pod 0 /
//     domain 4 / cluster 7 / mesh 7+hops, the paper's Equation 1–2);
//   - data-cache coherence: a migratory-sharing estimate of the L1 miss
//     ratio — each line accessed by C clusters migrates once per cluster
//     (Equations 3–4);
//   - PE contention: instructions placed at a PE beyond its storage
//     capacity (Equation 5).
//
// The combined model (Equation 6) is a weighted sum of the three
// components, each normalized across the candidate layouts; the paper's
// derived weights are 0.35 / 0.14 / 0.51. Higher scores predict worse
// performance, so a good model correlates *negatively* with simulated IPC
// (the paper reports −0.90 on its training set).
package placemodel

import (
	"wavescalar/internal/placement"
	"wavescalar/internal/profile"
	"wavescalar/internal/stats"
)

// Layout maps each (executed) static instruction to its home PE.
type Layout map[profile.InstrRef]int

// ExtractLayout materializes a policy's assignment for every instruction
// the profile saw. Calling it after a simulation reads the recorded homes
// (Assign is idempotent); calling it before a run drives dynamic policies
// in profile iteration order, which is only appropriate for static
// policies.
func ExtractLayout(pol placement.Policy, prof *profile.Profile) Layout {
	l := make(Layout, len(prof.Fires))
	for ref := range prof.Fires {
		l[ref] = pol.Assign(ref)
	}
	return l
}

// Config carries the machine parameters the component models need.
type Config struct {
	Machine placement.Machine
	// PECapacity is the PE instruction-store size (Equation 5's limit).
	PECapacity int

	// Latencies of the four communication regimes (Equation 1). The
	// defaults are the paper's: 0 / 4 / 7 / 7 + hops.
	PodLatency     float64
	DomainLatency  float64
	ClusterLatency float64
	MeshBase       float64
	MeshPerHop     float64
}

// DefaultConfig returns the paper's parameters for the given machine.
func DefaultConfig(m placement.Machine, peCapacity int) Config {
	return Config{
		Machine:        m,
		PECapacity:     peCapacity,
		PodLatency:     0,
		DomainLatency:  4,
		ClusterLatency: 7,
		MeshBase:       7,
		MeshPerHop:     1,
	}
}

// pairLatency is Equation 1: the latency between two placed instructions.
func (c Config) pairLatency(peA, peB int) float64 {
	a, b := c.Machine.Loc(peA), c.Machine.Loc(peB)
	switch {
	case a.Cluster == b.Cluster && a.Domain == b.Domain && a.Pod == b.Pod:
		return c.PodLatency
	case a.Cluster == b.Cluster && a.Domain == b.Domain:
		return c.DomainLatency
	case a.Cluster == b.Cluster:
		return c.ClusterLatency
	default:
		ax, ay := a.Cluster%c.Machine.GridW, a.Cluster/c.Machine.GridW
		bx, by := b.Cluster%c.Machine.GridW, b.Cluster/c.Machine.GridW
		hops := abs(ax-bx) + abs(ay-by)
		return c.MeshBase + c.MeshPerHop*float64(hops)
	}
}

// OperandLatency is Equation 2: total operand traffic weighted by pair
// latency under the layout.
func OperandLatency(cfg Config, prof *profile.Profile, l Layout) float64 {
	total := 0.0
	for e, n := range prof.Traffic {
		pa, oka := l[e.From]
		pb, okb := l[e.To]
		if !oka || !okb {
			continue
		}
		total += float64(n) * cfg.pairLatency(pa, pb)
	}
	return total
}

// CoherenceMissRatio is Equations 3–4 under the migratory-sharing
// assumption: a line accessed from C > 1 clusters misses C times (one
// migration per cluster); a private line misses once (cold). The result is
// predicted misses / total accesses.
func CoherenceMissRatio(cfg Config, prof *profile.Profile, l Layout) float64 {
	clustersOf := make(map[int64]map[int]bool) // line -> clusters touching it
	accesses := make(map[int64]uint64)
	for ref, lines := range prof.MemBlocks {
		pe, ok := l[ref]
		if !ok {
			continue
		}
		cluster := cfg.Machine.Loc(pe).Cluster
		for line, n := range lines {
			m := clustersOf[line]
			if m == nil {
				m = make(map[int]bool)
				clustersOf[line] = m
			}
			m[cluster] = true
			accesses[line] += n
		}
	}
	var misses, total float64
	for line, cs := range clustersOf {
		c := float64(len(cs))
		if c <= 1 {
			misses++
		} else {
			misses += c
		}
		total += float64(accesses[line])
	}
	if total == 0 {
		return 0
	}
	return misses / total
}

// PEContention is Equation 5: the number of instructions assigned to each
// PE beyond its storage capacity, summed over PEs.
func PEContention(cfg Config, l Layout) float64 {
	perPE := make(map[int]int)
	for _, pe := range l {
		perPE[pe]++
	}
	total := 0.0
	for _, n := range perPE {
		if n > cfg.PECapacity {
			total += float64(n - cfg.PECapacity)
		}
	}
	return total
}

// Weights are the combined model's component weights (Equation 6).
type Weights struct {
	Latency    float64
	Data       float64
	Contention float64
}

// PaperWeights are the contributions the paper derives: 0.35 / 0.14 / 0.51.
func PaperWeights() Weights { return Weights{Latency: 0.35, Data: 0.14, Contention: 0.51} }

// Components bundles one layout's raw metrics.
type Components struct {
	Latency    float64
	Data       float64
	Contention float64
}

// Evaluate computes all three component metrics for one layout.
func Evaluate(cfg Config, prof *profile.Profile, l Layout) Components {
	return Components{
		Latency:    OperandLatency(cfg, prof, l),
		Data:       CoherenceMissRatio(cfg, prof, l),
		Contention: PEContention(cfg, l),
	}
}

// Combine normalizes each component across the candidate layouts to [0, 1]
// and returns the weighted sums (Equation 6): one predicted-badness score
// per layout.
func Combine(comps []Components, w Weights) []float64 {
	norm := func(get func(Components) float64) []float64 {
		lo, hi := get(comps[0]), get(comps[0])
		for _, c := range comps[1:] {
			v := get(c)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		out := make([]float64, len(comps))
		if hi == lo {
			return out
		}
		for i, c := range comps {
			out[i] = (get(c) - lo) / (hi - lo)
		}
		return out
	}
	ls := norm(func(c Components) float64 { return c.Latency })
	ds := norm(func(c Components) float64 { return c.Data })
	cs := norm(func(c Components) float64 { return c.Contention })
	out := make([]float64, len(comps))
	for i := range comps {
		out[i] = w.Latency*ls[i] + w.Data*ds[i] + w.Contention*cs[i]
	}
	return out
}

// Correlation returns the Pearson coefficient between model scores and
// measured performance. A useful model is strongly negative (the paper:
// −0.90 in-sample, −0.82 held out).
func Correlation(scores, perf []float64) float64 {
	return stats.Pearson(scores, perf)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
