package placemodel

import (
	"testing"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/interp"
	"wavescalar/internal/isa"
	"wavescalar/internal/lang"
	"wavescalar/internal/placement"
	"wavescalar/internal/profile"
	"wavescalar/internal/wavec"
	"wavescalar/internal/wavecache"
)

func compileAndProfile(t *testing.T, src string) (*isa.Program, *profile.Profile) {
	t.Helper()
	f, err := lang.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	lang.Unroll(f, 4)
	p, err := cfgir.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range p.Funcs {
		fn.Compact()
	}
	p.Optimize()
	wp, err := wavec.Compile(p, wavec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(wp, 0)
	prof := m.CollectProfile(16)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return wp, prof
}

const modelSrc = `
global a[256];
global b[256];
func main() {
	var x = 7;
	for var i = 0; i < 256; i = i + 1 {
		x = (x * 75 + 74) % 65537;
		a[i] = x % 1000;
	}
	var s = 0;
	for var i = 0; i < 256; i = i + 1 {
		b[i] = a[(i * 7) % 256] + a[i];
		s = (s * 31 + b[i]) % 1000000007;
	}
	return s;
}
`

func TestComponentBasics(t *testing.T) {
	wp, prof := compileAndProfile(t, modelSrc)
	m := placement.DefaultMachine(2, 2)
	m.Capacity = 8
	cfg := DefaultConfig(m, 8)

	// A layout that packs everything on one PE: zero operand latency,
	// maximal contention.
	packed := make(Layout)
	for ref := range prof.Fires {
		packed[ref] = 0
	}
	if lat := OperandLatency(cfg, prof, packed); lat != 0 {
		t.Errorf("single-PE layout has operand latency %v, want 0", lat)
	}
	if con := PEContention(cfg, packed); con != float64(len(packed)-8) {
		t.Errorf("contention = %v, want %v", con, len(packed)-8)
	}
	if miss := CoherenceMissRatio(cfg, prof, packed); miss <= 0 || miss > 1 {
		t.Errorf("single-cluster miss ratio = %v, want (0,1] (cold misses only)", miss)
	}

	// A maximally scattered layout: latency strictly positive, lower
	// contention.
	scattered := make(Layout)
	i := 0
	for ref := range prof.Fires {
		scattered[ref] = i % m.NumPEs()
		i++
	}
	if lat := OperandLatency(cfg, prof, scattered); lat <= 0 {
		t.Errorf("scattered layout has operand latency %v, want > 0", lat)
	}
	if PEContention(cfg, scattered) >= PEContention(cfg, packed) {
		t.Error("scattering did not reduce contention")
	}
	// Scattering across clusters must not reduce the migratory miss
	// estimate.
	if CoherenceMissRatio(cfg, prof, scattered) < CoherenceMissRatio(cfg, prof, packed) {
		t.Error("scattering reduced the coherence estimate")
	}
	_ = wp
}

func TestPairLatencyRegimes(t *testing.T) {
	m := placement.DefaultMachine(2, 2)
	cfg := DefaultConfig(m, 64)
	perCluster := m.PEsPerCluster()
	cases := []struct {
		a, b int
		want float64
	}{
		{0, 0, 0},              // same PE (same pod)
		{0, 1, 0},              // same pod (2 PEs per pod)
		{0, 2, 4},              // same domain, different pod
		{0, perCluster - 1, 7}, // same cluster, different domain
		{0, perCluster, 8},     // adjacent cluster: 7 + 1 hop
		{0, 3 * perCluster, 9}, // diagonal cluster: 7 + 2 hops
	}
	for _, c := range cases {
		if got := cfg.pairLatency(c.a, c.b); got != c.want {
			t.Errorf("pairLatency(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCombineNormalization(t *testing.T) {
	comps := []Components{
		{Latency: 0, Data: 0.5, Contention: 100},
		{Latency: 1000, Data: 0.5, Contention: 0},
	}
	scores := Combine(comps, PaperWeights())
	// Layout 0: latency 0 (norm 0), data tied (norm 0), contention max
	// (norm 1) -> 0.51. Layout 1: latency max -> 0.35.
	if scores[0] != 0.51 || scores[1] != 0.35 {
		t.Errorf("scores = %v, want [0.51 0.35]", scores)
	}
}

// TestModelCorrelation is the headline reproduction of the SPAA 2006
// method: across the placement-policy family, the combined model's
// predicted badness must correlate negatively with simulated IPC.
func TestModelCorrelation(t *testing.T) {
	wp, prof := compileAndProfile(t, modelSrc)
	m := placement.DefaultMachine(2, 2)
	m.Capacity = 8
	cfg := DefaultConfig(m, 8)

	simCfg := wavecache.DefaultConfig(2, 2)
	simCfg.Machine = m
	simCfg.PEStore = 8
	// The model does not capture matching-table (input queue) contention;
	// the paper makes the same observation ("contention that is not
	// modeled for other PE resources, such as the operand input queue...
	// produces variations"). Remove that unmodeled resource here, as the
	// paper's component-isolating simulations do.
	simCfg.InputQueue = 1 << 30

	var comps []Components
	var ipcs []float64
	// The policy family plus extra random seeds gives 8 layouts, like the
	// paper's eight.
	type cand struct {
		name string
		seed uint64
	}
	cands := []cand{
		{"dynamic-snake", 1}, {"static-snake", 1}, {"depth-first-snake", 1},
		{"dynamic-depth-first-snake", 1},
		{"random", 3}, {"random", 99}, {"packed-random", 3}, {"packed-random", 99},
	}
	for _, cd := range cands {
		pol, err := placement.New(cd.name, m, wp, cd.seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := wavecache.Run(wp, pol, simCfg)
		if err != nil {
			t.Fatal(err)
		}
		layout := ExtractLayout(pol, prof)
		comps = append(comps, Evaluate(cfg, prof, layout))
		ipcs = append(ipcs, res.IPC)
	}
	scores := Combine(comps, PaperWeights())
	r := Correlation(scores, ipcs)
	t.Logf("combined-model correlation with IPC: %.3f (paper: -0.90)", r)
	if r > -0.5 {
		t.Errorf("correlation %.3f too weak; model should predict layout performance (expect <= -0.5)", r)
	}
}

// TestOptimizeImprovesRealPerformance is the model's payoff (the paper's
// Section 6 builds a better placement algorithm from the model): starting
// from a deliberately bad (random) layout, minimizing the analytic model —
// with no simulation in the loop — must improve actual simulated
// performance substantially.
func TestOptimizeImprovesRealPerformance(t *testing.T) {
	wp, prof := compileAndProfile(t, modelSrc)
	m := placement.DefaultMachine(2, 2)
	m.Capacity = 8
	cfg := DefaultConfig(m, 8)

	simCfg := wavecache.DefaultConfig(2, 2)
	simCfg.Machine = m
	simCfg.PEStore = 8
	simCfg.InputQueue = 1 << 30

	seedPol, err := placement.NewRandom(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	seedRes, err := wavecache.Run(wp, seedPol, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	seedLayout := ExtractLayout(seedPol, prof)

	opt := Optimize(cfg, prof, seedLayout, 4000, 11)
	seedScore := Evaluate(cfg, prof, seedLayout)
	optScore := Evaluate(cfg, prof, opt)
	if optScore.Latency > seedScore.Latency && optScore.Contention > seedScore.Contention {
		t.Fatalf("optimizer worsened both dominant components: %+v -> %+v", seedScore, optScore)
	}

	optPol, err := NewFixedPolicy("model-opt", opt, m)
	if err != nil {
		t.Fatal(err)
	}
	optRes, err := wavecache.Run(wp, optPol, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	if optRes.Value != seedRes.Value {
		t.Fatalf("optimization changed the program result: %d vs %d", optRes.Value, seedRes.Value)
	}
	gain := float64(seedRes.Cycles) / float64(optRes.Cycles)
	t.Logf("model-guided optimization: %d -> %d cycles (%.2fx) with zero simulations in the loop",
		seedRes.Cycles, optRes.Cycles, gain)
	if gain < 1.15 {
		t.Errorf("model-guided optimization gained only %.2fx over a random seed; expected > 1.15x", gain)
	}
}

func TestFixedPolicyFallback(t *testing.T) {
	m := placement.DefaultMachine(1, 1)
	pol, err := NewFixedPolicy("fixed", Layout{{Func: 0, Instr: 1}: 5}, m)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "fixed" {
		t.Error("name wrong")
	}
	if pol.Assign(profile.InstrRef{Func: 0, Instr: 1}) != 5 {
		t.Error("layout home ignored")
	}
	// Unknown instructions fall back deterministically and stably.
	a := pol.Assign(profile.InstrRef{Func: 0, Instr: 99})
	if b := pol.Assign(profile.InstrRef{Func: 0, Instr: 99}); a != b {
		t.Error("fallback not stable")
	}
}
