package placemodel

import (
	"math/rand"

	"wavescalar/internal/placement"
	"wavescalar/internal/profile"
)

// Optimize is the placement model's raison d'être (the paper: "the model
// provides a quickly calculable objective function that an optimizer could
// minimize"): starting from a seed layout, it hill-climbs with occasional
// uphill escapes, moving one instruction at a time to the PE that most
// reduces the weighted combination of the three component costs. No
// simulation runs during the search — only the analytic model — which is
// the entire point.
//
// The returned layout never scores worse than the seed under the model.
func Optimize(cfg Config, prof *profile.Profile, seed Layout, iters int, rngSeed int64) Layout {
	rng := rand.New(rand.NewSource(rngSeed))
	cur := make(Layout, len(seed))
	for k, v := range seed {
		cur[k] = v
	}

	// The three components have incomparable units; weight them by the
	// paper's contributions over scale estimates from the seed layout so a
	// unit move trades off sensibly.
	base := Evaluate(cfg, prof, cur)
	latScale := base.Latency
	if latScale <= 0 {
		latScale = 1
	}
	conScale := base.Contention
	if conScale <= 0 {
		conScale = 1
	}
	dataScale := base.Data
	if dataScale <= 0 {
		dataScale = 1
	}
	w := PaperWeights()
	score := func(c Components) float64 {
		return w.Latency*c.Latency/latScale + w.Data*c.Data/dataScale + w.Contention*c.Contention/conScale
	}

	refs := make([]profile.InstrRef, 0, len(cur))
	for r := range cur {
		refs = append(refs, r)
	}
	// Deterministic iteration order (maps are randomized).
	sortRefs(refs)

	bestLayout := cur
	bestScore := score(base)
	curScore := bestScore

	npes := cfg.Machine.NumPEs()
	for it := 0; it < iters; it++ {
		r := refs[rng.Intn(len(refs))]
		old := cur[r]
		cand := rng.Intn(npes)
		if cand == old {
			continue
		}
		cur[r] = cand
		s := score(Evaluate(cfg, prof, cur))
		switch {
		case s <= curScore:
			curScore = s
			if s < bestScore {
				bestScore = s
				bestLayout = cloneLayout(cur)
			}
		case rng.Float64() < 0.02:
			// Occasional uphill move to escape local minima.
			curScore = s
		default:
			cur[r] = old
		}
	}
	return bestLayout
}

func cloneLayout(l Layout) Layout {
	out := make(Layout, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

func sortRefs(refs []profile.InstrRef) {
	// Insertion-free sort via the standard library would need a comparator
	// import; a simple deterministic ordering suffices.
	less := func(a, b profile.InstrRef) bool {
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Instr < b.Instr
	}
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && less(refs[j], refs[j-1]); j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
}

// FixedPolicy adapts an optimized Layout to the placement.Policy interface
// so the WaveCache simulator can run it. Instructions outside the layout
// (never profiled, e.g. cold error paths) fall back to a snake fill.
type FixedPolicy struct {
	name     string
	layout   Layout
	fallback placement.Policy
}

// NewFixedPolicy wraps a layout.
func NewFixedPolicy(name string, l Layout, m placement.Machine) (*FixedPolicy, error) {
	fb, err := placement.NewDynamicSnake(m)
	if err != nil {
		return nil, err
	}
	return &FixedPolicy{name: name, layout: l, fallback: fb}, nil
}

// Name identifies the policy.
func (f *FixedPolicy) Name() string { return f.name }

// Assign returns the layout's home, or the fallback's for unprofiled
// instructions.
func (f *FixedPolicy) Assign(ref profile.InstrRef) int {
	if pe, ok := f.layout[ref]; ok {
		return pe
	}
	return f.fallback.Assign(ref)
}
