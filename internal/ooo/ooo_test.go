package ooo

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/lang"
	"wavescalar/internal/linear"
	"wavescalar/internal/testprogs"
)

func compileSource(t testing.TB, src string) *linear.Program {
	t.Helper()
	f, err := lang.ParseAndCheck(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := cfgir.Build(f)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for _, fn := range p.Funcs {
		fn.Compact()
	}
	p.Optimize()
	lp, err := linear.Compile(p)
	if err != nil {
		t.Fatalf("linear: %v", err)
	}
	return lp
}

// TestResultsMatchEvaluator checks the timing model never perturbs
// functional results (it is trace-driven, so this guards the plumbing).
func TestResultsMatchEvaluator(t *testing.T) {
	for _, c := range testprogs.Corpus {
		want, err := lang.EvalProgram(c.Src)
		if err != nil {
			t.Fatal(err)
		}
		lp := compileSource(t, c.Src)
		res, err := Run(lp, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if res.Value != want {
			t.Errorf("%s: value %d, want %d", c.Name, res.Value, want)
		}
		if res.Cycles <= 0 || res.Instrs == 0 {
			t.Errorf("%s: cycles=%d instrs=%d", c.Name, res.Cycles, res.Instrs)
		}
		if res.IPC <= 0 || res.IPC > float64(DefaultConfig().CommitWidth) {
			t.Errorf("%s: IPC %.2f outside (0, commit width]", c.Name, res.IPC)
		}
	}
}

func TestBranchPredictionCounting(t *testing.T) {
	lp := compileSource(t, `func main() { var s = 0; for var i = 0; i < 200; i = i + 1 { s = s + i; } return s; }`)
	res, err := Run(lp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Branches < 200 {
		t.Errorf("branches = %d, want >= 200", res.Branches)
	}
	if res.Mispredicts > res.Branches {
		t.Errorf("mispredicts %d exceed branches %d", res.Mispredicts, res.Branches)
	}
	// A highly regular loop should predict well.
	if float64(res.Mispredicts)/float64(res.Branches) > 0.2 {
		t.Errorf("mispredict rate %.2f too high for a simple loop", float64(res.Mispredicts)/float64(res.Branches))
	}
}

func TestMispredictsHurt(t *testing.T) {
	// A data-dependent unpredictable branch pattern should mispredict more
	// than a regular loop and cost cycles.
	// Lehmer generator mod a prime: the low bit is effectively random
	// (unlike an LCG mod 2^k, whose low bits are short-period and which
	// gshare would learn perfectly).
	src := `func main() { var x = 12345; var s = 0; for var i = 0; i < 500; i = i + 1 { x = (x * 48271) % 2147483647; if x % 2 { s = s + 1; } else { s = s - 1; } } return s; }`
	lp := compileSource(t, src)
	res, err := Run(lp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(res.Mispredicts) / float64(res.Branches)
	if rate < 0.1 {
		t.Errorf("random branch mispredict rate %.3f suspiciously low", rate)
	}
}

func TestWiderMachineIsFaster(t *testing.T) {
	src := testprogs.Heavy[2].Src // matmul_8: plenty of ILP
	lp := compileSource(t, src)

	narrow := DefaultConfig()
	narrow.FetchWidth, narrow.IssueWidth, narrow.CommitWidth = 1, 1, 1
	wide := DefaultConfig()

	rn, err := Run(lp, narrow)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Run(lp, wide)
	if err != nil {
		t.Fatal(err)
	}
	if rn.Value != rw.Value {
		t.Fatalf("width changed the answer: %d vs %d", rn.Value, rw.Value)
	}
	if rw.Cycles >= rn.Cycles {
		t.Errorf("8-wide (%d cycles) not faster than scalar (%d cycles)", rw.Cycles, rn.Cycles)
	}
	if rn.IPC > 1.01 {
		t.Errorf("scalar machine IPC %.2f > 1", rn.IPC)
	}
}

func TestSmallROBThrottles(t *testing.T) {
	lp := compileSource(t, testprogs.Heavy[2].Src)
	big := DefaultConfig()
	small := DefaultConfig()
	small.ROBSize = 4
	rb, err := Run(lp, big)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(lp, small)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cycles <= rb.Cycles {
		t.Errorf("ROB=4 (%d cycles) not slower than ROB=256 (%d cycles)", rs.Cycles, rb.Cycles)
	}
}

func TestConservativeLSQSlower(t *testing.T) {
	// Store-then-load-heavy code should suffer under conservative
	// disambiguation.
	src := "global a[64];\nfunc main() { var s = 0; for var i = 0; i < 64; i = i + 1 { a[i] = i; s = s + a[(i * 7) % 64]; } return s; }"
	lp := compileSource(t, src)
	fast := DefaultConfig()
	slow := DefaultConfig()
	slow.ConservativeLSQ = true
	rf, err := Run(lp, fast)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(lp, slow)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Value != rf.Value {
		t.Fatal("LSQ mode changed the answer")
	}
	if rs.Cycles < rf.Cycles {
		t.Errorf("conservative LSQ (%d) faster than speculative (%d)", rs.Cycles, rf.Cycles)
	}
}

func TestForwardingHappens(t *testing.T) {
	src := "global a[4];\nfunc main() { var s = 0; for var i = 0; i < 100; i = i + 1 { a[0] = i; s = s + a[0]; } return s; }"
	lp := compileSource(t, src)
	res, err := Run(lp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Forwards == 0 {
		t.Error("no store-to-load forwarding on an obvious pattern")
	}
}

func TestGshareMechanics(t *testing.T) {
	g := newGshare(4)
	// Train: always taken at one PC.
	for i := 0; i < 8; i++ {
		g.update(5, true)
	}
	// After training with interleaved history the counter for the current
	// index should lean taken more often than not.
	taken := 0
	for i := 0; i < 8; i++ {
		if g.predict(5) {
			taken++
		}
		g.update(5, true)
	}
	if taken < 6 {
		t.Errorf("gshare predicted taken only %d/8 times after training", taken)
	}
}

func TestCapSchedule(t *testing.T) {
	s := newCapSchedule(2)
	if s.reserve(10) != 10 || s.reserve(10) != 10 {
		t.Error("first two reservations should land on cycle 10")
	}
	if s.reserve(10) != 11 {
		t.Error("third reservation should spill to cycle 11")
	}
	s.advanceLow(20)
	if s.reserve(5) != 20 {
		t.Error("advanceLow not respected")
	}
}

// TestCapScheduleDifferential pins the open-addressed capSchedule against
// a naive per-cycle-count reference on pseudo-random request streams, and
// monoSchedule against capSchedule on monotone streams (the only streams
// monoSchedule is specified for: fetch and commit).
func TestCapScheduleDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		width := 1 + rng.Intn(4)
		s := newCapSchedule(width)
		counts := map[int64]int{} // reference: linear scan over exact counts
		for i := 0; i < 5000; i++ {
			req := int64(rng.Intn(300))
			want := req
			for counts[want] >= width {
				want++
			}
			counts[want]++
			if got := s.reserve(req); got != want {
				t.Fatalf("trial %d req %d: capSchedule granted %d, reference %d", trial, req, got, want)
			}
		}
	}
	for trial := 0; trial < 20; trial++ {
		width := 1 + rng.Intn(4)
		m := newMonoSchedule(width)
		s := newCapSchedule(width)
		req := int64(0)
		for i := 0; i < 5000; i++ {
			req += int64(rng.Intn(3)) // monotone non-decreasing
			got, want := m.reserve(req), s.reserve(req)
			if got != want {
				t.Fatalf("trial %d req %d: monoSchedule granted %d, capSchedule %d", trial, req, got, want)
			}
		}
	}
}

// TestConcurrentRunsShareProgram exercises the concurrency contract on
// Run: many simulations of ONE *linear.Program running concurrently must
// neither race (run under -race) nor diverge — the program is read-only,
// so every run must produce a bit-identical Result.
func TestConcurrentRunsShareProgram(t *testing.T) {
	lp := compileSource(t, testprogs.Heavy[1].Src) // sort_64
	const runs = 8
	results := make([]Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = Run(lp, DefaultConfig())
		}()
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("run %d diverged:\n%+v\nwant\n%+v", i, results[i], results[0])
		}
	}
}

func BenchmarkOoOMatmul(b *testing.B) {
	lp := compileSource(b, testprogs.Heavy[2].Src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(lp, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
