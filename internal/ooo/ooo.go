// Package ooo models an aggressive out-of-order superscalar processor — the
// baseline the MICRO 2003 WaveScalar evaluation compares the WaveCache
// against. It is a trace-driven timing model: the linear emulator supplies
// the dynamic instruction stream (so functional correctness is already
// settled), and this package answers how many cycles that stream takes on a
// machine with:
//
//   - a pipelined front end (fetch width, decode depth, fetch redirect on
//     taken control flow),
//   - gshare branch prediction with a fixed mispredict penalty,
//   - register renaming (implicit: per-frame last-writer tracking),
//   - a unified scheduling window / reorder buffer with issue and commit
//     width limits,
//   - a load/store queue with store-to-load forwarding and optional
//     conservative disambiguation,
//   - the same cache hierarchy model as the WaveCache simulator
//     (single L1).
package ooo

import (
	"fmt"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/isa"
	"wavescalar/internal/linear"
	"wavescalar/internal/mem"
)

// Config parameterizes the core.
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	ROBSize     int
	LSQSize     int

	DecodeDepth       int64 // front-end stages between fetch and dispatch
	MispredictPenalty int64

	GShareBits uint // log2 of predictor table size

	IntLatency int64
	MulLatency int64
	DivLatency int64

	// Functional-unit ports per cycle.
	ALUPorts    int
	MulDivPorts int
	LoadPorts   int
	StorePorts  int

	// ConservativeLSQ forces loads to wait for every older in-flight
	// store's address computation (no speculative disambiguation).
	ConservativeLSQ bool

	Mem mem.SystemConfig

	// Fuel bounds dynamic instructions (0 = 500M).
	Fuel int64
}

// DefaultConfig is the aggressive superscalar of the evaluation: 8-wide,
// 15-stage front end, 256-entry window, gshare prediction.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        8,
		IssueWidth:        8,
		CommitWidth:       8,
		ROBSize:           256,
		LSQSize:           64,
		DecodeDepth:       15,
		MispredictPenalty: 15,
		GShareBits:        14,
		IntLatency:        1,
		MulLatency:        3,
		DivLatency:        20,
		ALUPorts:          4,
		MulDivPorts:       1,
		LoadPorts:         2,
		StorePorts:        1,
		Mem:               mem.DefaultSystemConfig(1),
	}
}

// Result reports a run.
type Result struct {
	Value  int64 // program result
	Instrs uint64
	Cycles int64
	IPC    float64

	Branches    uint64
	Mispredicts uint64
	Loads       uint64
	Stores      uint64
	Forwards    uint64
	Mem         mem.Stats
}

// capSchedule grants at most width events per cycle. Full cycles carry
// path-compressed skip pointers to the next candidate cycle, so a reserve
// behind an arbitrarily long full region costs amortized near-constant
// time. The cycle -> cell mapping is an open-addressed, linear-probed
// table (same idiom as internal/tagtable): reserve dominates the
// superscalar model's profile, and the Go map's hash-and-bucket machinery
// was most of its cost. Cells are never deleted — the set of touched
// cycles is exactly what the old map retained too.
type capSchedule struct {
	width int32
	low   int64
	keys  []int64   // cycle+1 per slot; 0 = empty
	cells []capCell // parallel to keys
	n     int       // live slots
	chain []int64   // reusable path-compression scratch (slot indices)
}

// capCell is one cycle's schedule state. skip == 0 means "no skip
// pointer" (a real skip target is always > its source cycle >= 0, so 0
// is never a valid target).
type capCell struct {
	count int32
	skip  int64
}

func newCapSchedule(width int) *capSchedule {
	const initSlots = 1 << 10
	return &capSchedule{
		width: int32(width),
		keys:  make([]int64, initSlots),
		cells: make([]capCell, initSlots),
	}
}

func cycleHash(k int64) uint64 {
	h := uint64(k) * 0x9E3779B97F4A7C15
	return h ^ h>>29
}

// slot returns the index holding cycle t, or the empty slot where it
// would be inserted.
func (c *capSchedule) slot(t int64) int {
	mask := uint64(len(c.keys) - 1)
	i := cycleHash(t+1) & mask
	for {
		k := c.keys[i]
		if k == 0 || k == t+1 {
			return int(i)
		}
		i = (i + 1) & mask
	}
}

func (c *capSchedule) grow() {
	oldKeys, oldCells := c.keys, c.cells
	c.keys = make([]int64, 2*len(oldKeys))
	c.cells = make([]capCell, len(c.keys))
	mask := uint64(len(c.keys) - 1)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := cycleHash(k) & mask
		for c.keys[j] != 0 {
			j = (j + 1) & mask
		}
		c.keys[j] = k
		c.cells[j] = oldCells[i]
	}
}

// reserve returns the first cycle >= t with a free slot and takes it,
// compressing skip pointers along the probed chain.
func (c *capSchedule) reserve(t int64) int64 {
	if t < c.low {
		t = c.low
	}
	chain := c.chain[:0]
	var si int
	for {
		si = c.slot(t)
		if c.keys[si] == 0 || c.cells[si].count < c.width {
			break
		}
		chain = append(chain, int64(si))
		if nx := c.cells[si].skip; nx != 0 {
			t = nx
		} else {
			t++
		}
	}
	for _, s := range chain {
		c.cells[s].skip = t
	}
	c.chain = chain
	if c.keys[si] == 0 {
		c.keys[si] = t + 1
		c.cells[si] = capCell{count: 1}
		c.n++
		if c.n*4 >= len(c.keys)*3 {
			c.grow()
		}
	} else {
		c.cells[si].count++
	}
	return t
}

// advanceLow promises nothing earlier than t will be requested again.
func (c *capSchedule) advanceLow(t int64) {
	if t > c.low {
		c.low = t
	}
}

// monoSchedule is the capSchedule specialization for monotone
// non-decreasing request streams — fetch (requests at fetchMin, which
// only moves forward) and commit (requests at the retirement frontier).
// Under a monotone stream every cycle below the last grant is either full
// or unreachable, so the frontier cycle and its count are the entire
// state; behaviour is observably identical to capSchedule.
type monoSchedule struct {
	width int32
	count int32
	cur   int64
}

func newMonoSchedule(width int) *monoSchedule {
	return &monoSchedule{width: int32(width), cur: -1}
}

func (m *monoSchedule) reserve(t int64) int64 {
	if t > m.cur {
		m.cur, m.count = t, 0
	}
	if m.count >= m.width {
		m.cur++
		m.count = 0
	}
	m.count++
	return m.cur
}

// gshare is a global-history branch predictor with 2-bit counters.
type gshare struct {
	table []uint8
	hist  uint64
	mask  uint64
}

func newGshare(bits uint) *gshare {
	return &gshare{table: make([]uint8, 1<<bits), mask: (1 << bits) - 1}
}

func (g *gshare) index(pc uint64) uint64 { return (pc ^ g.hist) & g.mask }

func (g *gshare) predict(pc uint64) bool { return g.table[g.index(pc)] >= 2 }

func (g *gshare) update(pc uint64, taken bool) {
	i := g.index(pc)
	if taken {
		if g.table[i] < 3 {
			g.table[i]++
		}
	} else if g.table[i] > 0 {
		g.table[i]--
	}
	g.hist = g.hist<<1 | b2u(taken)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// regKey renames an architectural register within its activation frame.
type regKey struct {
	frame int64
	reg   cfgir.Reg
}

// storeEntry is an in-flight store in the LSQ.
type storeEntry struct {
	addrReady int64
	dataReady int64
	addr      int64
}

// callFrame remembers where a call's return value must land.
type callFrame struct {
	frame int64
	rd    cfgir.Reg
}

// core is the timing state threaded through the trace.
type core struct {
	cfg       Config
	prog      *linear.Program
	fetch     *monoSchedule
	issue     *capSchedule
	commit    *monoSchedule
	aluPort   *capSchedule
	mulPort   *capSchedule
	loadPort  *capSchedule
	storePort *capSchedule
	memsys    *mem.System
	bp        *gshare

	fetchMin   int64
	lastCommit int64
	robCommits []int64
	robHead    int

	lastWrite map[regKey]int64
	callStack []callFrame
	stores    []storeEntry

	res Result
}

// Run executes the program on the modeled core.
//
// Concurrency contract: Run treats p as strictly read-only; the emulator
// driving the trace and all timing state (schedules, predictor, LSQ,
// memory system) are allocated per call. Any number of Runs may share one
// *linear.Program concurrently (exercised under the race detector by
// TestConcurrentRunsShareProgram), and identical (p, cfg) inputs produce
// bit-identical Results.
func Run(p *linear.Program, cfg Config) (Result, error) {
	if cfg.Fuel == 0 {
		cfg.Fuel = 500_000_000
	}
	memsys, err := mem.NewSystem(cfg.Mem)
	if err != nil {
		return Result{}, err
	}
	if cfg.ALUPorts == 0 {
		cfg.ALUPorts = cfg.IssueWidth
	}
	if cfg.MulDivPorts == 0 {
		cfg.MulDivPorts = 1
	}
	if cfg.LoadPorts == 0 {
		cfg.LoadPorts = 2
	}
	if cfg.StorePorts == 0 {
		cfg.StorePorts = 1
	}
	c := &core{
		cfg:        cfg,
		prog:       p,
		fetch:      newMonoSchedule(cfg.FetchWidth),
		issue:      newCapSchedule(cfg.IssueWidth),
		commit:     newMonoSchedule(cfg.CommitWidth),
		aluPort:    newCapSchedule(cfg.ALUPorts),
		mulPort:    newCapSchedule(cfg.MulDivPorts),
		loadPort:   newCapSchedule(cfg.LoadPorts),
		storePort:  newCapSchedule(cfg.StorePorts),
		memsys:     memsys,
		bp:         newGshare(cfg.GShareBits),
		robCommits: make([]int64, cfg.ROBSize),
		lastWrite:  make(map[regKey]int64),
	}

	em := linear.NewEmulator(p, cfg.Fuel)
	em.Trace = c.step
	v, err := em.Run()
	if err != nil {
		return Result{}, fmt.Errorf("ooo: %w", err)
	}
	c.res.Value = v
	c.res.Instrs = uint64(em.Instrs)
	c.res.Cycles = c.lastCommit + 1
	if c.res.Cycles > 0 {
		c.res.IPC = float64(c.res.Instrs) / float64(c.res.Cycles)
	}
	c.res.Mem = memsys.Stats()
	return c.res, nil
}

func (c *core) ready(frame int64, r cfgir.Reg) int64 {
	return c.lastWrite[regKey{frame: frame, reg: r}]
}

func (c *core) write(frame int64, r cfgir.Reg, t int64) {
	c.lastWrite[regKey{frame: frame, reg: r}] = t
}

// issueAt grants an issue slot and a functional-unit port at or after
// ready.
func (c *core) issueAt(ready int64, port *capSchedule) int64 {
	t := c.issue.reserve(ready)
	if port != nil {
		t = port.reserve(t)
	}
	return t
}

// step models one dynamic instruction of the trace.
func (c *core) step(ev linear.TraceEvent) {
	in := ev.Instr
	frame := ev.Frame

	// Fetch: front-end bandwidth plus sequential ordering.
	fetchT := c.fetch.reserve(c.fetchMin)

	// Dispatch: decode pipeline plus a free reorder-buffer slot.
	dispatch := fetchT + c.cfg.DecodeDepth
	if robFree := c.robCommits[c.robHead] + 1; dispatch < robFree {
		dispatch = robFree
	}

	ready := dispatch
	up := func(t int64) {
		if t > ready {
			ready = t
		}
	}
	pcKey := uint64(ev.Func)<<20 | uint64(ev.PC)
	var execDone int64

	switch in.Op {
	case linear.LConst:
		issueT := c.issueAt(ready, c.aluPort)
		execDone = issueT + c.cfg.IntLatency
		c.write(frame, in.Rd, execDone)
	case linear.LAlu:
		up(c.ready(frame, in.Ra))
		if in.Alu.NumInputs() == 2 {
			up(c.ready(frame, in.Rb))
		}
		issueT := c.issueAt(ready, c.fuPort(in))
		execDone = issueT + c.aluLatency(in)
		c.write(frame, in.Rd, execDone)
	case linear.LSelect:
		up(c.ready(frame, in.Ra))
		up(c.ready(frame, in.Rb))
		up(c.ready(frame, in.Rc))
		issueT := c.issueAt(ready, c.aluPort)
		execDone = issueT + c.cfg.IntLatency
		c.write(frame, in.Rd, execDone)
	case linear.LLoad:
		c.res.Loads++
		up(c.ready(frame, in.Ra))
		adjusted, forwarded := c.loadConstraints(ready, ev.Addr)
		issueT := c.issueAt(adjusted, c.loadPort)
		if forwarded {
			c.res.Forwards++
			execDone = issueT + c.cfg.IntLatency
		} else {
			ar := c.memsys.Access(0, ev.Addr, false)
			execDone = issueT + ar.Latency
		}
		c.write(frame, in.Rd, execDone)
	case linear.LStore:
		c.res.Stores++
		addrReady := max64(dispatch, c.ready(frame, in.Ra))
		dataReady := max64(dispatch, c.ready(frame, in.Rb))
		issueT := c.issueAt(max64(addrReady, dataReady), c.storePort)
		execDone = issueT
		c.pushStore(storeEntry{addrReady: addrReady, dataReady: dataReady, addr: ev.Addr})
		// Stats at retirement; the write buffer hides the latency.
		c.memsys.Access(0, ev.Addr, true)
	case linear.LJump:
		issueT := c.issueAt(ready, nil)
		execDone = issueT
		c.fetchMin = max64(c.fetchMin, fetchT+1) // redirect after a taken jump
	case linear.LBranch:
		c.res.Branches++
		up(c.ready(frame, in.Ra))
		issueT := c.issueAt(ready, c.aluPort)
		execDone = issueT + c.cfg.IntLatency
		pred := c.bp.predict(pcKey)
		c.bp.update(pcKey, ev.Taken)
		if pred != ev.Taken {
			c.res.Mispredicts++
			c.fetchMin = max64(c.fetchMin, execDone+c.cfg.MispredictPenalty)
		} else if ev.Taken {
			c.fetchMin = max64(c.fetchMin, fetchT+1)
		}
	case linear.LCall:
		issueT := c.issueAt(ready, nil)
		execDone = issueT
		// Arguments move into the callee's fresh frame through rename;
		// register windows mean no memory traffic.
		calleeParams := c.prog.Funcs[in.Callee].Params
		for i, a := range in.Args {
			t := max64(execDone, c.ready(frame, a))
			c.write(ev.CalleeFrame, calleeParams[i], t)
		}
		c.callStack = append(c.callStack, callFrame{frame: frame, rd: in.Rd})
		c.fetchMin = max64(c.fetchMin, fetchT+1)
	case linear.LRet:
		up(c.ready(frame, in.Ra))
		issueT := c.issueAt(ready, nil)
		execDone = issueT
		if n := len(c.callStack); n > 0 {
			cf := c.callStack[n-1]
			c.callStack = c.callStack[:n-1]
			c.write(cf.frame, cf.rd, execDone)
		}
		c.fetchMin = max64(c.fetchMin, fetchT+1)
	}

	// In-order retirement.
	ct := c.commit.reserve(max64(execDone, c.lastCommit))
	c.lastCommit = ct
	c.robCommits[c.robHead] = ct
	c.robHead = (c.robHead + 1) % c.cfg.ROBSize
}

// fuPort selects the functional-unit port pool for an ALU instruction.
func (c *core) fuPort(in *linear.Instr) *capSchedule {
	switch in.Alu {
	case isa.OpMul, isa.OpDiv, isa.OpRem:
		return c.mulPort
	}
	return c.aluPort
}

func (c *core) aluLatency(in *linear.Instr) int64 {
	switch in.Alu {
	case isa.OpMul:
		return c.cfg.MulLatency
	case isa.OpDiv, isa.OpRem:
		return c.cfg.DivLatency
	}
	return c.cfg.IntLatency
}

// loadConstraints applies LSQ ordering to a load whose address is ready at
// t, returning the adjusted ready time and whether an in-flight store
// forwarded the value.
func (c *core) loadConstraints(t int64, addr int64) (int64, bool) {
	forwarded := false
	for i := range c.stores {
		s := &c.stores[i]
		if c.cfg.ConservativeLSQ && s.addrReady > t {
			t = s.addrReady
		}
		if s.addr == addr {
			forwarded = true
			if s.dataReady > t {
				t = s.dataReady
			}
		}
	}
	return t, forwarded
}

func (c *core) pushStore(s storeEntry) {
	c.stores = append(c.stores, s)
	if len(c.stores) > c.cfg.LSQSize {
		c.stores = c.stores[1:]
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
