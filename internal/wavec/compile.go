// Package wavec is the WaveScalar compiler backend. It lowers CFG IR into
// tagged-token dataflow graphs (isa.Program):
//
//   - The CFG of each function is partitioned into waves — single-entry
//     acyclic regions. Loop headers and control-flow joins with mixed-wave
//     predecessors seed new waves; every other block joins its
//     predecessors' wave.
//   - Every value crossing a wave boundary passes through a WAVE-ADVANCE,
//     so the dynamic waves of an activation are numbered consecutively —
//     the invariant the wave-ordered store buffer relies on.
//   - Branches become φ⁻¹ STEER instructions: one steer per live value,
//     gated by the branch predicate. (With Options.IfConvert, small pure
//     diamonds instead become φ SELECT instructions upstream in the IR.)
//   - A synthetic trigger value threads through every block so constants
//     fire and memory-silent blocks can announce their MEMORY-NOPs.
//   - Memory operations receive wave-ordered annotations: per-wave sequence
//     numbers with predecessor/successor links, wildcards across branches,
//     MEMORY-NOPs in memory-silent blocks, chain-terminating nops on wave
//     exits, MemCall slots at call sites, and MemEnd on returns.
//
// Compile mutates its input program (critical-edge splitting, optional
// if-conversion).
package wavec

import (
	"fmt"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/isa"
)

// Options selects compilation strategy.
type Options struct {
	// IfConvert lowers small pure if/else diamonds to φ SELECT
	// instructions instead of steers (experiment E9).
	IfConvert bool
	// MaxArm bounds the per-arm instruction count for if-conversion
	// (default 8).
	MaxArm int
}

// Compile lowers a whole program. The input must be built (and usually
// optimized); it is mutated in place by CFG normalization passes.
func Compile(p *cfgir.Program, opts Options) (*isa.Program, error) {
	if opts.MaxArm == 0 {
		opts.MaxArm = 8
	}
	touches := computeTouches(p)
	out := &isa.Program{
		Globals:  p.Globals,
		MemWords: p.MemWords,
		Entry:    isa.FuncID(p.FuncByName("main")),
	}
	if out.Entry < 0 {
		return nil, fmt.Errorf("wavec: program has no main function")
	}
	for fi, f := range p.Funcs {
		if opts.IfConvert {
			f.IfConvert(opts.MaxArm)
		}
		f.SplitCriticalEdges()
		fc := &funcCompiler{prog: p, ir: f, touches: touches, self: fi}
		isaFunc, err := fc.compile()
		if err != nil {
			return nil, fmt.Errorf("wavec: %s: %w", f.Name, err)
		}
		out.Funcs = append(out.Funcs, *isaFunc)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("wavec: emitted invalid program: %w", err)
	}
	return out, nil
}

// computeTouches determines, per function, whether it (transitively)
// performs memory operations. Recursive cycles converge because the value
// only moves false -> true.
func computeTouches(p *cfgir.Program) []bool {
	touches := make([]bool, len(p.Funcs))
	for i, f := range p.Funcs {
		for _, b := range f.Blocks {
			for j := range b.Instrs {
				k := b.Instrs[j].Kind
				if k == cfgir.KLoad || k == cfgir.KStore {
					touches[i] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i, f := range p.Funcs {
			if touches[i] {
				continue
			}
			for _, b := range f.Blocks {
				for j := range b.Instrs {
					in := &b.Instrs[j]
					if in.Kind == cfgir.KCall && touches[in.Callee] {
						touches[i] = true
						changed = true
					}
				}
			}
		}
	}
	return touches
}

// srcRef names a concrete producer output: an instruction, and for steers
// which side.
type srcRef struct {
	id        isa.InstrID
	falseSide bool
}

// valRef is either a concrete producer output or a net (the incoming value
// of a register at a block boundary).
type valRef struct {
	isNet bool
	src   srcRef
	net   int
}

func srcVal(id isa.InstrID) valRef { return valRef{src: srcRef{id: id}} }

// net collects the consumers of one (block, register) live-in value, plus
// pass-through links to successor nets and the producers that feed it.
type net struct {
	ports   []isa.Dest
	outs    []int
	sources []srcRef

	closed  bool
	closure []isa.Dest
}

// triggerReg is the pseudo-register carrying the per-block activation
// trigger. It is never a real IR register.
const triggerReg cfgir.Reg = -2

type funcCompiler struct {
	prog    *cfgir.Program
	ir      *cfgir.Func
	touches []bool
	self    int

	out     *isa.Function
	preds   [][]int
	liveIn  []cfgir.RegSet
	back    map[cfgir.Edge]bool
	waveOf  []int32
	entryOf []bool // block starts its wave (all in-edges cross)

	// Memory annotation plan (only populated when the function touches
	// memory).
	slotSeq   map[slotKey]int32 // assigned sequence numbers
	slotPred  map[slotKey]int32
	slotSucc  map[slotKey]int32
	firstSlot []slotKey // per block
	lastSlot  []slotKey
	edgeSeq   map[cfgir.Edge]int32 // wave-exit nop sequence numbers

	nets   map[netKey]int
	netArr []*net
}

type netKey struct {
	block int
	reg   cfgir.Reg
}

// slotKey identifies a memory slot: instruction index within a block, or
// one of the pseudo-slots.
type slotKey struct {
	block int
	index int // instruction index; -1 = synthetic block nop; -2 = return slot
}

const (
	slotNop = -1
	slotRet = -2
)

func (fc *funcCompiler) compile() (*isa.Function, error) {
	f := fc.ir
	fc.out = &isa.Function{
		Name:          f.Name,
		TouchesMemory: fc.touches[fc.self],
	}
	fc.preds = f.Preds()
	fc.liveIn, _ = f.Liveness()
	fc.back = f.BackEdges()

	fc.assignWaves()
	if fc.out.TouchesMemory {
		fc.planMemory()
	}

	// Parameter pads: pad 0 is the activation trigger.
	pads := make([]isa.InstrID, 0, len(f.Params)+1)
	for i := 0; i <= len(f.Params); i++ {
		pads = append(pads, fc.emit(isa.Instruction{Op: isa.OpNop, Wave: 0,
			Comment: fmt.Sprintf("pad %d", i)}))
	}
	fc.out.Params = pads

	fc.nets = make(map[netKey]int)
	for _, b := range f.Blocks {
		fc.compileBlock(b, pads)
	}
	fc.resolveNets()
	return fc.out, nil
}

func (fc *funcCompiler) emit(in isa.Instruction) isa.InstrID {
	id := isa.InstrID(len(fc.out.Instrs))
	fc.out.Instrs = append(fc.out.Instrs, in)
	return id
}

func (fc *funcCompiler) instr(id isa.InstrID) *isa.Instruction { return &fc.out.Instrs[id] }

// assignWaves partitions blocks (already in reverse postorder) into waves.
func (fc *funcCompiler) assignWaves() {
	f := fc.ir
	headers := f.LoopHeaders()
	fc.waveOf = make([]int32, len(f.Blocks))
	fc.entryOf = make([]bool, len(f.Blocks))
	next := int32(0)
	for id := range f.Blocks {
		if id == f.Entry || headers[id] {
			fc.waveOf[id] = next
			fc.entryOf[id] = true
			next++
			continue
		}
		// Non-header: all predecessors are forward edges, already assigned.
		w := fc.waveOf[fc.preds[id][0]]
		same := true
		for _, p := range fc.preds[id][1:] {
			if fc.waveOf[p] != w {
				same = false
				break
			}
		}
		if same {
			fc.waveOf[id] = w
		} else {
			fc.waveOf[id] = next
			fc.entryOf[id] = true
			next++
		}
	}
	fc.out.NumWaves = next
}

// crossing reports whether edge (u,v) is a wave boundary.
func (fc *funcCompiler) crossing(u, v int) bool {
	return fc.back[cfgir.Edge{From: u, To: v}] || fc.waveOf[u] != fc.waveOf[v] || fc.entryOf[v]
}

// planMemory assigns wave-ordered sequence numbers and predecessor /
// successor links to every memory slot.
func (fc *funcCompiler) planMemory() {
	f := fc.ir
	fc.slotSeq = make(map[slotKey]int32)
	fc.slotPred = make(map[slotKey]int32)
	fc.slotSucc = make(map[slotKey]int32)
	fc.edgeSeq = make(map[cfgir.Edge]int32)
	fc.firstSlot = make([]slotKey, len(f.Blocks))
	fc.lastSlot = make([]slotKey, len(f.Blocks))

	counters := make(map[int32]*int32)
	nextSeq := func(wave int32) int32 {
		c := counters[wave]
		if c == nil {
			c = new(int32)
			counters[wave] = c
		}
		s := *c
		*c++
		return s
	}

	// Pass 1: enumerate slots per block in program order and chain them.
	for id, b := range f.Blocks {
		var slots []slotKey
		for i := range b.Instrs {
			if fc.isMemSlot(&b.Instrs[i]) {
				slots = append(slots, slotKey{block: id, index: i})
			}
		}
		if b.Term.Kind == cfgir.TRet {
			slots = append(slots, slotKey{block: id, index: slotRet})
		}
		if len(slots) == 0 {
			slots = []slotKey{{block: id, index: slotNop}}
		}
		wave := fc.waveOf[id]
		for i, s := range slots {
			fc.slotSeq[s] = nextSeq(wave)
			fc.slotPred[s] = isa.SeqWildcard
			fc.slotSucc[s] = isa.SeqWildcard
			if i > 0 {
				fc.slotPred[s] = fc.slotSeq[slots[i-1]]
				fc.slotSucc[slots[i-1]] = fc.slotSeq[s]
			}
		}
		fc.firstSlot[id] = slots[0]
		fc.lastSlot[id] = slots[len(slots)-1]
	}

	// Pass 2: link across edges and mark wave entries and exits.
	for id, b := range f.Blocks {
		if fc.entryOf[id] {
			fc.slotPred[fc.firstSlot[id]] = isa.SeqStart
		}
		if b.Term.Kind == cfgir.TRet {
			fc.slotSucc[fc.lastSlot[id]] = isa.SeqEnd
			continue
		}
		succs := b.Succs()
		for _, v := range succs {
			if fc.crossing(id, v) {
				// Wave-exit nop: terminates this wave's chain on this edge.
				// Its predecessor (the block's last slot) is statically
				// known, so the link always resolves.
				fc.edgeSeq[cfgir.Edge{From: id, To: v}] = nextSeq(fc.waveOf[id])
				continue
			}
			// Intra-wave edge: after critical-edge splitting at least one
			// side of the link is static.
			if len(succs) == 1 {
				fc.slotSucc[fc.lastSlot[id]] = fc.slotSeq[fc.firstSlot[v]]
			}
			if len(fc.preds[v]) == 1 {
				fc.slotPred[fc.firstSlot[v]] = fc.slotSeq[fc.lastSlot[id]]
			}
		}
		if len(succs) == 1 && fc.crossing(id, succs[0]) {
			// Unique successor through a wave exit: the last slot's
			// successor is the exit nop itself.
			fc.slotSucc[fc.lastSlot[id]] = fc.edgeSeq[cfgir.Edge{From: id, To: succs[0]}]
		}
	}
}

// isMemSlot reports whether an IR instruction occupies a slot in the
// wave-ordered memory chain.
func (fc *funcCompiler) isMemSlot(in *cfgir.Instr) bool {
	switch in.Kind {
	case cfgir.KLoad, cfgir.KStore:
		return true
	case cfgir.KCall:
		return fc.touches[in.Callee]
	}
	return false
}

// annotation builds the MemOrder for a planned slot.
func (fc *funcCompiler) annotation(kind isa.MemKind, s slotKey) isa.MemOrder {
	return isa.MemOrder{
		Kind: kind,
		Seq:  fc.slotSeq[s],
		Pred: fc.slotPred[s],
		Succ: fc.slotSucc[s],
	}
}

// netFor returns (creating on demand) the net of a block live-in value.
func (fc *funcCompiler) netFor(block int, r cfgir.Reg) int {
	k := netKey{block: block, reg: r}
	if id, ok := fc.nets[k]; ok {
		return id
	}
	id := len(fc.netArr)
	fc.netArr = append(fc.netArr, &net{})
	fc.nets[k] = id
	return id
}

// subscribe routes a value to one instruction input port.
func (fc *funcCompiler) subscribe(v valRef, d isa.Dest) {
	if v.isNet {
		n := fc.netArr[v.net]
		n.ports = append(n.ports, d)
		return
	}
	fc.addDest(v.src, d)
}

func (fc *funcCompiler) addDest(s srcRef, d isa.Dest) {
	in := fc.instr(s.id)
	if s.falseSide {
		in.DestsFalse = append(in.DestsFalse, d)
	} else {
		in.Dests = append(in.Dests, d)
	}
}

// connectEdge feeds a value into a successor block's net.
func (fc *funcCompiler) connectEdge(v valRef, targetNet int) {
	if v.isNet {
		fc.netArr[v.net].outs = append(fc.netArr[v.net].outs, targetNet)
		return
	}
	fc.netArr[targetNet].sources = append(fc.netArr[targetNet].sources, v.src)
}

// resolveNets computes each net's transitive port set and attaches it to
// every producer feeding the net.
func (fc *funcCompiler) resolveNets() {
	var close func(i int) []isa.Dest
	close = func(i int) []isa.Dest {
		n := fc.netArr[i]
		if n.closed {
			return n.closure
		}
		n.closed = true
		n.closure = append(n.closure, n.ports...)
		for _, o := range n.outs {
			n.closure = append(n.closure, close(o)...)
		}
		return n.closure
	}
	for i, n := range fc.netArr {
		ports := close(i)
		for _, s := range n.sources {
			for _, d := range ports {
				fc.addDest(s, d)
			}
		}
	}
}

// liveOnEdge reports whether register r must be routed along edge (u,v).
// The trigger is routed on every edge.
func (fc *funcCompiler) liveOnEdge(v int, r cfgir.Reg) bool {
	if r == triggerReg {
		return true
	}
	return fc.liveIn[v].Has(r)
}

// edgeRegs lists the registers to route out of block u: the union of the
// successors' live-ins, plus the trigger.
func (fc *funcCompiler) edgeRegs(b *cfgir.Block) []cfgir.Reg {
	regs := []cfgir.Reg{triggerReg}
	seen := cfgir.NewRegSet(fc.ir.NumRegs)
	for _, s := range b.Succs() {
		for _, r := range fc.liveIn[s].Members() {
			if !seen.Has(r) {
				seen.Add(r)
				regs = append(regs, r)
			}
		}
	}
	return regs
}

func (fc *funcCompiler) compileBlock(b *cfgir.Block, pads []isa.InstrID) {
	f := fc.ir
	wave := fc.waveOf[b.ID]
	cur := make(map[cfgir.Reg]valRef)

	// consts tracks registers holding block-local constants; operands
	// drawn from them become instruction immediates (real WaveScalar
	// instructions encode immediate operands), avoiding a CONST firing
	// per dynamic use. The OpConst instruction is emitted lazily, only if
	// some consumer needs the value as a real token.
	consts := make(map[cfgir.Reg]int64)

	if b.ID == f.Entry {
		cur[triggerReg] = srcVal(pads[0])
		for i, pr := range f.Params {
			cur[pr] = srcVal(pads[i+1])
		}
		// Any other live-in at entry corresponds to a path where the value
		// is defined before use; give it an unfed net so the graph stays
		// well formed.
		for _, r := range fc.liveIn[b.ID].Members() {
			if _, ok := cur[r]; !ok {
				cur[r] = valRef{isNet: true, net: fc.netFor(b.ID, r)}
			}
		}
	} else {
		cur[triggerReg] = valRef{isNet: true, net: fc.netFor(b.ID, triggerReg)}
		for _, r := range fc.liveIn[b.ID].Members() {
			cur[r] = valRef{isNet: true, net: fc.netFor(b.ID, r)}
		}
	}

	// Synthetic memory nop for memory-silent blocks.
	if fc.out.TouchesMemory && fc.firstSlot[b.ID].index == slotNop {
		nop := fc.emit(isa.Instruction{
			Op:   isa.OpMemNop,
			Mem:  fc.annotation(isa.MemNop, fc.firstSlot[b.ID]),
			Wave: wave,
		})
		fc.subscribe(cur[triggerReg], isa.Dest{Instr: nop, Port: 0})
	}

	// wire attaches operand r to port p of instruction id, as an immediate
	// when the value is a block-local constant and the port may be one
	// (some port of the instruction must stay a token port).
	wire := func(id isa.InstrID, p uint8, r cfgir.Reg, allowImm bool) {
		if allowImm {
			if v, ok := consts[r]; ok {
				in := fc.instr(id)
				tokenPortsLeft := in.Op.NumInputs() - popcount(in.ImmMask) - 1
				if tokenPortsLeft >= 1 {
					in.ImmMask |= 1 << p
					in.ImmVals[p] = v
					return
				}
			}
		}
		fc.subscribe(fc.materialize(cur, consts, r, wave), isa.Dest{Instr: id, Port: p})
	}

	for i := range b.Instrs {
		in := &b.Instrs[i]
		switch in.Kind {
		case cfgir.KConst:
			// Deferred: becomes an immediate at each use, or a real CONST
			// instruction on first materialization.
			consts[in.Dst] = in.Imm
			delete(cur, in.Dst)
		case cfgir.KAlu:
			id := fc.emit(isa.Instruction{Op: in.Op, Wave: wave})
			wire(id, 0, in.A, true)
			if in.Op.NumInputs() == 2 {
				wire(id, 1, in.B, true)
			}
			cur[in.Dst] = srcVal(id)
			delete(consts, in.Dst)
		case cfgir.KSelect:
			id := fc.emit(isa.Instruction{Op: isa.OpSelect, Wave: wave})
			wire(id, 0, in.A, false) // the predicate token supplies the tag
			wire(id, 1, in.B, true)
			wire(id, 2, in.C, true)
			cur[in.Dst] = srcVal(id)
			delete(consts, in.Dst)
		case cfgir.KLoad:
			s := slotKey{block: b.ID, index: i}
			id := fc.emit(isa.Instruction{Op: isa.OpLoad, Mem: fc.annotation(isa.MemLoad, s), Wave: wave})
			wire(id, 0, in.A, false) // the address token supplies the tag
			cur[in.Dst] = srcVal(id)
			delete(consts, in.Dst)
		case cfgir.KStore:
			s := slotKey{block: b.ID, index: i}
			id := fc.emit(isa.Instruction{Op: isa.OpStore, Mem: fc.annotation(isa.MemStore, s), Wave: wave})
			wire(id, 0, in.A, false)
			wire(id, 1, in.B, true)
		case cfgir.KCall:
			fc.compileCall(b, i, in, cur, consts, wave)
		}
	}

	// Terminator.
	switch b.Term.Kind {
	case cfgir.TRet:
		var mem isa.MemOrder
		if fc.out.TouchesMemory {
			mem = fc.annotation(isa.MemEnd, slotKey{block: b.ID, index: slotRet})
		}
		ret := fc.emit(isa.Instruction{Op: isa.OpReturn, Mem: mem, Wave: wave})
		fc.subscribe(fc.materialize(cur, consts, b.Term.Val, wave), isa.Dest{Instr: ret, Port: 0})
	case cfgir.TJump:
		v := b.Term.Then
		for _, r := range fc.edgeRegs(b) {
			if fc.liveOnEdge(v, r) {
				fc.route(fc.materialize(cur, consts, r, wave), b.ID, v, r)
			}
		}
	case cfgir.TBranch:
		pv := fc.materialize(cur, consts, b.Term.Cond, wave)
		for _, r := range fc.edgeRegs(b) {
			st := fc.emit(isa.Instruction{Op: isa.OpSteer, Wave: wave})
			fc.subscribe(pv, isa.Dest{Instr: st, Port: 0})
			if v, ok := consts[r]; ok {
				si := fc.instr(st)
				si.ImmMask |= 1 << 1
				si.ImmVals[1] = v
			} else {
				fc.subscribe(fc.materialize(cur, consts, r, wave), isa.Dest{Instr: st, Port: 1})
			}
			if fc.liveOnEdge(b.Term.Then, r) {
				fc.route(valRef{src: srcRef{id: st}}, b.ID, b.Term.Then, r)
			}
			if fc.liveOnEdge(b.Term.Else, r) {
				fc.route(valRef{src: srcRef{id: st, falseSide: true}}, b.ID, b.Term.Else, r)
			}
		}
	}
}

// compileCall emits the call linkage: context allocation, argument sends,
// and the return landing pad.
func (fc *funcCompiler) compileCall(b *cfgir.Block, i int, in *cfgir.Instr, cur map[cfgir.Reg]valRef, consts map[cfgir.Reg]int64, wave int32) {
	callee := isa.FuncID(in.Callee)
	pad := fc.emit(isa.Instruction{Op: isa.OpNop, Wave: wave,
		Comment: fmt.Sprintf("ret from %s", fc.prog.Funcs[in.Callee].Name)})
	var mem isa.MemOrder
	if fc.touches[in.Callee] {
		mem = fc.annotation(isa.MemCall, slotKey{block: b.ID, index: i})
	}
	nc := fc.emit(isa.Instruction{Op: isa.OpNewCtx, Target: callee, TargetPad: int32(pad),
		Mem: mem, Wave: wave})
	fc.subscribe(cur[triggerReg], isa.Dest{Instr: nc, Port: 0})

	// Trigger send: pad 0 of the callee receives the context value itself.
	sa0 := fc.emit(isa.Instruction{Op: isa.OpSendArg, Target: callee, TargetPad: 0, Wave: wave})
	fc.addDest(srcRef{id: nc}, isa.Dest{Instr: sa0, Port: 0})
	fc.addDest(srcRef{id: nc}, isa.Dest{Instr: sa0, Port: 1})
	for ai, arg := range in.Args {
		sa := fc.emit(isa.Instruction{Op: isa.OpSendArg, Target: callee, TargetPad: int32(ai + 1), Wave: wave})
		fc.addDest(srcRef{id: nc}, isa.Dest{Instr: sa, Port: 0})
		if v, ok := consts[arg]; ok {
			si := fc.instr(sa)
			si.ImmMask |= 1 << 1
			si.ImmVals[1] = v
		} else {
			fc.subscribe(fc.materialize(cur, consts, arg, wave), isa.Dest{Instr: sa, Port: 1})
		}
	}
	cur[in.Dst] = srcVal(pad)
	delete(consts, in.Dst)
}

// materialize returns a token source for register r, emitting a CONST
// instruction on demand for block-local constants that some consumer needs
// as a real token.
func (fc *funcCompiler) materialize(cur map[cfgir.Reg]valRef, consts map[cfgir.Reg]int64, r cfgir.Reg, wave int32) valRef {
	if v, ok := cur[r]; ok {
		return v
	}
	imm, ok := consts[r]
	if !ok {
		panic(fmt.Sprintf("wavec: register r%d has neither value nor constant", r))
	}
	id := fc.emit(isa.Instruction{Op: isa.OpConst, Imm: imm, Wave: wave})
	fc.subscribe(cur[triggerReg], isa.Dest{Instr: id, Port: 0})
	v := srcVal(id)
	cur[r] = v
	return v
}

func popcount(x uint8) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// route carries a value across a CFG edge: through a chain-terminating
// memory nop (trigger only) and a wave advance when the edge crosses a wave
// boundary, then into the target block's net.
func (fc *funcCompiler) route(v valRef, u, w int, r cfgir.Reg) {
	if fc.crossing(u, w) {
		if r == triggerReg && fc.out.TouchesMemory {
			seq := fc.edgeSeq[cfgir.Edge{From: u, To: w}]
			nop := fc.emit(isa.Instruction{
				Op: isa.OpMemNop,
				Mem: isa.MemOrder{
					Kind: isa.MemNop,
					Seq:  seq,
					Pred: fc.slotSeq[fc.lastSlot[u]],
					Succ: isa.SeqEnd,
				},
				Wave:    fc.waveOf[u],
				Comment: "wave exit",
			})
			fc.subscribe(v, isa.Dest{Instr: nop, Port: 0})
			v = srcVal(nop)
		}
		adv := fc.emit(isa.Instruction{Op: isa.OpWaveAdvance, Wave: fc.waveOf[u]})
		fc.subscribe(v, isa.Dest{Instr: adv, Port: 0})
		v = srcVal(adv)
	}
	fc.connectEdge(v, fc.netFor(w, r))
}
