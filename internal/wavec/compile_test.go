package wavec

import (
	"testing"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/isa"
	"wavescalar/internal/lang"
	"wavescalar/internal/testprogs"
)

func compile(t *testing.T, src string, opts Options) *isa.Program {
	t.Helper()
	f, err := lang.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfgir.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range p.Funcs {
		fn.Compact()
	}
	p.Optimize()
	wp, err := Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return wp
}

// TestEveryCorpusProgramValidates compiles the whole corpus in both control
// modes; Compile validates internally, so success means structurally sound
// binaries.
func TestEveryCorpusProgramValidates(t *testing.T) {
	for _, c := range testprogs.Corpus {
		compile(t, c.Src, Options{})
		compile(t, c.Src, Options{IfConvert: true})
	}
}

func TestTouchesMemoryPropagation(t *testing.T) {
	src := `
global g;
func leafPure(x) { return x + 1; }
func leafMem(x) { g = x; return x; }
func midPure(x) { return leafPure(x) * 2; }
func midMem(x) { return leafMem(x) * 2; }
func main() { return midPure(1) + midMem(2); }
`
	wp := compile(t, src, Options{})
	want := map[string]bool{
		"leafPure": false,
		"leafMem":  true,
		"midPure":  false,
		"midMem":   true, // calls a memory-touching function
		"main":     true,
	}
	for name, w := range want {
		f := wp.FuncByName(name)
		if f == nil {
			t.Fatalf("function %s missing", name)
		}
		if f.TouchesMemory != w {
			t.Errorf("%s: TouchesMemory = %v, want %v", name, f.TouchesMemory, w)
		}
	}
	// Call slots must exist only for memory-touching callees.
	main := wp.FuncByName("main")
	for i := range main.Instrs {
		in := &main.Instrs[i]
		if in.Op != isa.OpNewCtx {
			continue
		}
		callee := &wp.Funcs[in.Target]
		if callee.TouchesMemory && in.Mem.Kind != isa.MemCall {
			t.Errorf("call to %s missing MemCall slot", callee.Name)
		}
		if !callee.TouchesMemory && in.Mem.Kind != isa.MemNone {
			t.Errorf("call to %s has spurious MemCall slot", callee.Name)
		}
	}
}

func TestWavePartitioning(t *testing.T) {
	// Two sequential loops plus an if: at least 1 (entry) + 2 (headers)
	// waves, and every wave-advance must sit on an edge out of its block's
	// wave (structurally: there must be advances at all).
	src := `func main() { var s = 0; for var i = 0; i < 4; i = i + 1 { s = s + i; } for var j = 0; j < 4; j = j + 1 { s = s * 2; } if s > 100 { s = 100; } return s; }`
	wp := compile(t, src, Options{})
	f := wp.FuncByName("main")
	if f.NumWaves < 3 {
		t.Errorf("NumWaves = %d, want >= 3", f.NumWaves)
	}
	advances := 0
	for i := range f.Instrs {
		if f.Instrs[i].Op == isa.OpWaveAdvance {
			advances++
		}
	}
	if advances == 0 {
		t.Error("no wave advances in a two-loop function")
	}
}

func TestSteersGateEveryBranch(t *testing.T) {
	src := `func main() { var a = 1; var b = 2; if a < b { a = b; } return a + b; }`
	wp := compile(t, src, Options{})
	f := wp.FuncByName("main")
	steers := 0
	for i := range f.Instrs {
		if f.Instrs[i].Op == isa.OpSteer {
			steers++
		}
	}
	// a, b, and the trigger are live across the branch: 3 steers minimum.
	if steers < 3 {
		t.Errorf("steers = %d, want >= 3", steers)
	}
}

func TestIfConvertEmitsSelects(t *testing.T) {
	src := `func main() { var s = 0; for var i = 0; i < 8; i = i + 1 { var x = 0; if i % 2 { x = i; } else { x = -i; } s = s + x; } return s; }`
	plain := compile(t, src, Options{})
	sel := compile(t, src, Options{IfConvert: true})
	countOp := func(p *isa.Program, op isa.Opcode) int {
		n := 0
		for fi := range p.Funcs {
			for ii := range p.Funcs[fi].Instrs {
				if p.Funcs[fi].Instrs[ii].Op == op {
					n++
				}
			}
		}
		return n
	}
	if countOp(sel, isa.OpSelect) == 0 {
		t.Error("if-conversion emitted no selects")
	}
	if countOp(sel, isa.OpSteer) >= countOp(plain, isa.OpSteer) {
		t.Errorf("if-conversion did not reduce steers: %d -> %d",
			countOp(plain, isa.OpSteer), countOp(sel, isa.OpSteer))
	}
}

func TestImmediateOperandsReplaceConsts(t *testing.T) {
	src := `func main() { var s = 0; for var i = 0; i < 8; i = i + 1 { s = s + i * 3 + 7; } return s; }`
	wp := compile(t, src, Options{})
	f := wp.FuncByName("main")
	consts, imms := 0, 0
	for i := range f.Instrs {
		if f.Instrs[i].Op == isa.OpConst {
			consts++
		}
		if f.Instrs[i].ImmMask != 0 {
			imms++
		}
	}
	if imms == 0 {
		t.Error("no immediate operands emitted")
	}
	// The 3 and 7 should be immediates, not CONST instructions firing per
	// iteration; only structural constants (e.g. loop bounds feeding
	// steers' non-immediate ports) may remain.
	if consts > 3 {
		t.Errorf("%d CONST instructions survive; expected most folded to immediates", consts)
	}
}

func TestMemoryChainsCoverEveryBlock(t *testing.T) {
	// In a memory-touching function, every static wave must contain at
	// least one Start slot (Pred == SeqStart) and the function must carry
	// chain-terminating annotations (Succ == SeqEnd or a MemEnd return).
	src := "global a[8];\nfunc main() { for var i = 0; i < 8; i = i + 1 { if i % 2 { a[i] = i; } } return a[1]; }"
	wp := compile(t, src, Options{})
	f := wp.FuncByName("main")
	starts := make(map[int32]bool)
	ends := make(map[int32]bool)
	for i := range f.Instrs {
		in := &f.Instrs[i]
		if in.Mem.Kind == isa.MemNone {
			continue
		}
		if in.Mem.Pred == isa.SeqStart {
			starts[in.Wave] = true
		}
		if in.Mem.Succ == isa.SeqEnd || in.Mem.Kind == isa.MemEnd {
			ends[in.Wave] = true
		}
	}
	for w := int32(0); w < f.NumWaves; w++ {
		if !starts[w] {
			t.Errorf("wave %d has no Start slot", w)
		}
		if !ends[w] {
			t.Errorf("wave %d has no chain-terminating slot", w)
		}
	}
}

func TestCompileRequiresMain(t *testing.T) {
	f, err := lang.Parse(`func helper() { return 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfgir.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range p.Funcs {
		fn.Compact()
	}
	if _, err := Compile(p, Options{}); err == nil {
		t.Fatal("program without main compiled")
	}
}

func TestParamPadsAreFirst(t *testing.T) {
	wp := compile(t, `func f(a, b, c) { return a + b + c; } func main() { return f(1, 2, 3); }`, Options{})
	f := wp.FuncByName("f")
	if len(f.Params) != 4 { // trigger + 3
		t.Fatalf("f has %d pads, want 4", len(f.Params))
	}
	for i, pad := range f.Params {
		if f.Instrs[pad].Op != isa.OpNop {
			t.Errorf("pad %d is %v", i, f.Instrs[pad].Op)
		}
	}
}
