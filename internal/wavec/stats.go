package wavec

import "wavescalar/internal/isa"

// ChainStats summarizes the wave-ordered memory chains of a compiled
// program: how many chain slots of each kind the backend emitted and how
// long the static per-(function, wave) chains are. The memory-optimization
// tier's whole purpose is to shrink these numbers, so the harness records
// them before/after and the CLIs print them under -stats.
type ChainStats struct {
	// Slot counts by memory-annotation kind.
	Loads, Stores, Nops, Calls, Ends int64
	// Slots is the total number of wave-ordered chain slots (the sum of
	// the per-kind counts).
	Slots int64
	// Chains is the number of static (function, wave) ordering chains;
	// MaxChain the longest.
	Chains   int64
	MaxChain int64
	// Instrs is the total static instruction count of the dataflow
	// program (chain slots included).
	Instrs int64
}

// AvgChain reports the mean static chain length.
func (s ChainStats) AvgChain() float64 {
	if s.Chains == 0 {
		return 0
	}
	return float64(s.Slots) / float64(s.Chains)
}

// MeasureChains scans a compiled dataflow program and tallies its
// wave-ordered memory chains.
func MeasureChains(p *isa.Program) ChainStats {
	var st ChainStats
	type chainKey struct {
		fn   int
		wave int32
	}
	chains := make(map[chainKey]int64)
	for fi := range p.Funcs {
		f := &p.Funcs[fi]
		st.Instrs += int64(len(f.Instrs))
		for i := range f.Instrs {
			in := &f.Instrs[i]
			switch in.Mem.Kind {
			case isa.MemNone:
				continue
			case isa.MemLoad:
				st.Loads++
			case isa.MemStore:
				st.Stores++
			case isa.MemNop:
				st.Nops++
			case isa.MemCall:
				st.Calls++
			case isa.MemEnd:
				st.Ends++
			}
			st.Slots++
			chains[chainKey{fn: fi, wave: in.Wave}]++
		}
	}
	st.Chains = int64(len(chains))
	for _, n := range chains {
		if n > st.MaxChain {
			st.MaxChain = n
		}
	}
	return st
}
