// Package cli holds the exit-code policy shared by the command-line tools
// (wavesim, waverun, waveexp, waved): simulation aborts carrying a
// structured *fault.FaultError — watchdog expiry, deadlock, unrecoverable
// message loss, cooperative cancellation — are distinguishable from
// ordinary failures by exit code, so scripts and CI drivers can branch on
// "the machine faulted" vs "the invocation was wrong" without parsing
// stderr.
package cli

import (
	"errors"
	"fmt"
	"io"
	"strconv"

	"wavescalar/internal/fault"
)

// Exit codes. 2 is left to flag parsing (the flag package's convention).
const (
	ExitError = 1 // ordinary failure: bad input, I/O error, mismatch
	ExitFault = 3 // simulation aborted with a structured FaultError
)

// Code maps an error to the tool exit code.
func Code(err error) int {
	var fe *fault.FaultError
	if errors.As(err, &fe) {
		return ExitFault
	}
	return ExitError
}

// WriteDiagnostic prints the error and, when it wraps a FaultError, a
// machine-greppable one-line diagnostic of the abort.
func WriteDiagnostic(w io.Writer, tool string, err error) {
	fmt.Fprintf(w, "%s: %v\n", tool, err)
	var fe *fault.FaultError
	if !errors.As(err, &fe) {
		return
	}
	pe := "-"
	if fe.PE >= 0 {
		pe = strconv.Itoa(fe.PE)
	}
	fmt.Fprintf(w, "%s: fault diagnostic: kind=%s pe=%s cycle=%d detail=%q (exit %d)\n",
		tool, fe.Kind, pe, fe.Cycle, fe.Detail, ExitFault)
}
