package cli

import (
	"fmt"
	"strings"
	"testing"

	"wavescalar/internal/fault"
)

func TestCodeClassifiesFaultErrors(t *testing.T) {
	plain := fmt.Errorf("no such file")
	if got := Code(plain); got != ExitError {
		t.Errorf("plain error: exit %d, want %d", got, ExitError)
	}
	fe := &fault.FaultError{Kind: fault.KindWatchdog, PE: -1, Cycle: 50_000_001,
		Detail: "simulated time exceeded max-cycles"}
	if got := Code(fe); got != ExitFault {
		t.Errorf("bare FaultError: exit %d, want %d", got, ExitFault)
	}
	// The harness wraps engine errors with workload context; the exit code
	// must survive wrapping.
	wrapped := fmt.Errorf("adpcm: wavecache: %w", fe)
	if got := Code(wrapped); got != ExitFault {
		t.Errorf("wrapped FaultError: exit %d, want %d", got, ExitFault)
	}
}

func TestWriteDiagnostic(t *testing.T) {
	fe := &fault.FaultError{Kind: fault.KindWatchdog, PE: 7, Cycle: 123, Detail: "stuck"}
	var b strings.Builder
	WriteDiagnostic(&b, "wavesim", fmt.Errorf("x: %w", fe))
	out := b.String()
	for _, want := range []string{"kind=watchdog", "pe=7", "cycle=123", `detail="stuck"`, "exit 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	WriteDiagnostic(&b, "wavesim", fmt.Errorf("plain"))
	if strings.Contains(b.String(), "fault diagnostic") {
		t.Errorf("plain error got a fault diagnostic:\n%s", b.String())
	}
}
