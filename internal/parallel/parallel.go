// Package parallel is the bounded worker pool the experiment harness fans
// independent simulation cells across. Its contract is deterministic
// aggregation: callers declare an indexed set of jobs, workers execute them
// in arbitrary order, and every result lands in the slot named by its
// index — never by completion order — so output built from the collected
// slots is bit-identical to a sequential run.
//
// Jobs must be independent: they may not share mutable state (RNGs,
// placement policies, memory images) unless that state is written only
// through the job's own index. Seeds must be derived per job from fixed
// roots, never drawn from a shared generator, or determinism is lost.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes workers <= 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// panicError carries a worker panic back to the calling goroutine so the
// crash surfaces with ForEach in the trace rather than killing the process
// from an anonymous worker.
type panicError struct {
	index int
	value any
}

func (p *panicError) Error() string {
	return fmt.Sprintf("parallel: job %d panicked: %v", p.index, p.value)
}

// ForEach runs jobs 0..n-1 across min(workers, n) goroutines and waits for
// completion. workers <= 0 selects DefaultWorkers(); workers == 1 degrades
// to a plain sequential loop on the calling goroutine.
//
// Error semantics: after the first failure, workers stop claiming new jobs
// (already-running jobs finish), and ForEach returns the error with the
// LOWEST index among those recorded. On an error-free run the behavior is
// fully deterministic; when jobs fail, which later jobs were skipped can
// vary, but harness errors are fatal to the whole sweep, so only the
// error-free path carries the determinism guarantee.
//
// A panicking job is recovered on its worker and re-panicked from ForEach
// on the calling goroutine once all workers have drained.
func ForEach(workers, n int, job func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, job)
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done,
// workers stop claiming new jobs (already-running jobs finish — jobs that
// want mid-run cancellation must watch ctx themselves) and ForEachCtx
// returns ctx's error. A job error recorded before the cancellation was
// observed takes precedence, with the usual lowest-index rule; cancellation
// shares the non-determinism caveat of job failures — which later jobs were
// skipped can vary between runs.
func ForEachCtx(ctx context.Context, workers, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runJob(job, i); err != nil {
				if pe, ok := err.(*panicError); ok {
					panic(pe.value)
				}
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	done := ctx.Done()
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := runJob(job, i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			if pe, ok := err.(*panicError); ok {
				panic(pe.value)
			}
			return err
		}
	}
	return ctx.Err()
}

// runJob invokes one job, converting a panic into a panicError.
func runJob(job func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{index: i, value: r}
		}
	}()
	return job(i)
}

// Map runs f over 0..n-1 on the pool and collects the results into a slice
// indexed by job number, independent of completion order.
func Map[T any](workers, n int, f func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, f)
}

// MapCtx is Map with cooperative cancellation (see ForEachCtx).
func MapCtx[T any](ctx context.Context, workers, n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, workers, n, func(i int) error {
		v, err := f(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
