package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryJob(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 100
			hits := make([]int32, n)
			err := ForEach(workers, n, func(i int) error {
				atomic.AddInt32(&hits[i], 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("job %d ran %d times", i, h)
				}
			}
		})
	}
}

func TestForEachCollectsByIndex(t *testing.T) {
	const n = 64
	out := make([]int, n)
	if err := ForEach(8, n, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("job ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachSequentialErrorIsFirst(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := ForEach(1, 10, func(i int) error {
		ran = append(ran, i)
		if i >= 3 {
			return fmt.Errorf("job %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 4 {
		t.Fatalf("sequential mode ran %v, want stop after first error", ran)
	}
}

func TestForEachParallelReturnsLowestIndexError(t *testing.T) {
	// Every job fails; the reported error must be the lowest-index one
	// among those recorded, and with every job failing, job 0 always runs
	// (workers claim indices in order), so the answer is deterministic.
	err := ForEach(8, 32, func(i int) error {
		return fmt.Errorf("job %d failed", i)
	})
	if err == nil || err.Error() != "job 0 failed" {
		t.Fatalf("err = %v, want job 0 failed", err)
	}
}

func TestForEachStopsClaimingAfterError(t *testing.T) {
	var ran atomic.Int64
	_ = ForEach(2, 1<<20, func(i int) error {
		ran.Add(1)
		return errors.New("fail fast")
	})
	if n := ran.Load(); n >= 1<<20 {
		t.Fatalf("ran all %d jobs despite early error", n)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			defer func() {
				if r := recover(); r != "kaboom" {
					t.Fatalf("recovered %v, want kaboom", r)
				}
			}()
			_ = ForEach(workers, 8, func(i int) error {
				if i == 5 {
					panic("kaboom")
				}
				return nil
			})
			t.Fatal("ForEach returned instead of panicking")
		})
	}
}

func TestMapOrdersResults(t *testing.T) {
	out, err := Map(8, 50, func(i int) (string, error) {
		return fmt.Sprintf("cell-%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("len = %d", len(out))
	}
	for i, v := range out {
		if v != fmt.Sprintf("cell-%d", i) {
			t.Fatalf("slot %d = %q", i, v)
		}
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	if _, err := Map(4, 10, func(i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers = %d", DefaultWorkers())
	}
}
