package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryJob(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 100
			hits := make([]int32, n)
			err := ForEach(workers, n, func(i int) error {
				atomic.AddInt32(&hits[i], 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("job %d ran %d times", i, h)
				}
			}
		})
	}
}

func TestForEachCollectsByIndex(t *testing.T) {
	const n = 64
	out := make([]int, n)
	if err := ForEach(8, n, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("job ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachSequentialErrorIsFirst(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := ForEach(1, 10, func(i int) error {
		ran = append(ran, i)
		if i >= 3 {
			return fmt.Errorf("job %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 4 {
		t.Fatalf("sequential mode ran %v, want stop after first error", ran)
	}
}

func TestForEachParallelReturnsLowestIndexError(t *testing.T) {
	// Every job fails; the reported error must be the lowest-index one
	// among those recorded, and with every job failing, job 0 always runs
	// (workers claim indices in order), so the answer is deterministic.
	err := ForEach(8, 32, func(i int) error {
		return fmt.Errorf("job %d failed", i)
	})
	if err == nil || err.Error() != "job 0 failed" {
		t.Fatalf("err = %v, want job 0 failed", err)
	}
}

func TestForEachStopsClaimingAfterError(t *testing.T) {
	var ran atomic.Int64
	_ = ForEach(2, 1<<20, func(i int) error {
		ran.Add(1)
		return errors.New("fail fast")
	})
	if n := ran.Load(); n >= 1<<20 {
		t.Fatalf("ran all %d jobs despite early error", n)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			defer func() {
				if r := recover(); r != "kaboom" {
					t.Fatalf("recovered %v, want kaboom", r)
				}
			}()
			_ = ForEach(workers, 8, func(i int) error {
				if i == 5 {
					panic("kaboom")
				}
				return nil
			})
			t.Fatal("ForEach returned instead of panicking")
		})
	}
}

func TestMapOrdersResults(t *testing.T) {
	out, err := Map(8, 50, func(i int) (string, error) {
		return fmt.Sprintf("cell-%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("len = %d", len(out))
	}
	for i, v := range out {
		if v != fmt.Sprintf("cell-%d", i) {
			t.Fatalf("slot %d = %q", i, v)
		}
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	if _, err := Map(4, 10, func(i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers = %d", DefaultWorkers())
	}
}

func TestForEachCtxCancellationStopsClaiming(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 10_000
			ctx, cancel := context.WithCancel(context.Background())
			var ran atomic.Int64
			release := make(chan struct{})
			err := ForEachCtx(ctx, workers, n, func(i int) error {
				if ran.Add(1) == int64(workers) {
					// Every worker is mid-job: cancel, then let them finish.
					cancel()
					close(release)
				}
				<-release
				return nil
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// Already-running jobs finish; nothing new is claimed after the
			// cancellation is observed. Allow one extra claim per worker for
			// the race between cancel() and the next claim check.
			if got := ran.Load(); got > int64(2*workers) {
				t.Fatalf("%d jobs ran after cancellation with %d workers", got, workers)
			}
		})
	}
}

func TestForEachCtxJobErrorBeatsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	err := ForEachCtx(ctx, 1, 4, func(i int) error {
		if i == 1 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want job error to take precedence", err)
	}
}

func TestForEachCtxDoneBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEachCtx(ctx, 4, 100, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got > 4 {
		t.Fatalf("%d jobs ran with a pre-cancelled context", got)
	}
}

func TestMapCtxCompletesWithoutCancellation(t *testing.T) {
	out, err := MapCtx(context.Background(), 4, 32, func(i int) (int, error) { return i * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
