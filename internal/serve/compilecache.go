package serve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"wavescalar/internal/harness"
)

// compileCache is the warm compiled-program cache: an LRU keyed by the
// workload hash (source + unroll factor) with singleflight semantics — N
// concurrent requests for the same uncompiled program trigger one compile,
// and the rest wait on it. Entries may be evicted while still being
// waited on; waiters hold the entry pointer, so eviction only forgets the
// key, never invalidates a result in use.
type compileCache struct {
	max  int
	hits atomic.Uint64

	mu      sync.Mutex
	entries map[string]*compileEntry
	lru     *list.List
}

type compileEntry struct {
	key  string
	elem *list.Element
	done chan struct{} // closed when c/err are set
	c    *harness.Compiled
	err  error
}

func newCompileCache(max int) *compileCache {
	if max < 1 {
		max = 1
	}
	return &compileCache{
		max:     max,
		entries: make(map[string]*compileEntry),
		lru:     list.New(),
	}
}

// get returns the compiled program for key, building it at most once per
// cache residency. hit reports whether a warm entry (including one still
// compiling under another request) satisfied the call.
//
// The wait — not the build — respects ctx: compilation executes the
// program on two reference engines and cannot be interrupted mid-way, so
// a cancelled request abandons the wait immediately while the build runs
// on in the background and lands in the cache. A retry after a deadline
// expiry therefore finds the program warm instead of paying the compile
// again — cancelled compile work is never wasted work.
func (cc *compileCache) get(ctx context.Context, key string, build func() (*harness.Compiled, error)) (c *harness.Compiled, hit bool, err error) {
	cc.mu.Lock()
	e, ok := cc.entries[key]
	if ok {
		cc.lru.MoveToFront(e.elem)
	} else {
		e = &compileEntry{key: key, done: make(chan struct{})}
		e.elem = cc.lru.PushFront(e)
		cc.entries[key] = e
		for cc.lru.Len() > cc.max {
			oldest := cc.lru.Back()
			old := oldest.Value.(*compileEntry)
			cc.lru.Remove(oldest)
			delete(cc.entries, old.key)
		}
		go func() {
			e.c, e.err = build()
			if e.err != nil {
				// Never cache failures: a bad source stays bad, but transient
				// failures must not poison the key — a retry recompiles.
				cc.mu.Lock()
				if cur, live := cc.entries[key]; live && cur == e {
					cc.lru.Remove(e.elem)
					delete(cc.entries, key)
				}
				cc.mu.Unlock()
			}
			close(e.done)
		}()
	}
	cc.mu.Unlock()

	select {
	case <-e.done:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	if e.err != nil {
		return nil, ok, e.err
	}
	if ok {
		cc.hits.Add(1)
	}
	return e.c, ok, nil
}

// Hits reports how many requests were satisfied by a warm entry.
func (cc *compileCache) Hits() uint64 { return cc.hits.Load() }

// Len reports the current entry count.
func (cc *compileCache) Len() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.lru.Len()
}
