package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"time"

	"wavescalar/internal/fault"
	"wavescalar/internal/harness"
	"wavescalar/internal/isa"
	"wavescalar/internal/placement"
	"wavescalar/internal/trace"
	"wavescalar/internal/wavecache"
	"wavescalar/internal/workloads"
)

// maxBodyBytes bounds a request body; maxSourceBytes bounds an inline wsl
// program (a served compiler is a resource, not a fuzz target).
const (
	maxBodyBytes   = 8 << 20
	maxSourceBytes = 1 << 20
)

// simulateCacheVersion names the idempotency-cache schema for /v1/simulate
// results; bump it when SimResult or the simulated configuration keying
// changes meaning.
const simulateCacheVersion = "serve-simulate-v2"

// Handler mounts the API. Routes use Go 1.22+ method patterns, so wrong
// methods 405 without hand-rolled dispatch.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	// Conventional probe path for load balancers and orchestrators.
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client is the only victim of its own dead connection
}

// fail writes a structured error and charges it to the tenant's matching
// outcome counter — the single point where error codes and counters meet.
func (s *Server) fail(w http.ResponseWriter, tn *tenant, e *ErrorResponse) {
	if tn != nil {
		switch e.Code {
		case CodeInvalid:
			tn.invalid.Add(1)
		case CodeFault:
			tn.faulted.Add(1)
		case CodeRateLimited:
			tn.rateLimited.Add(1)
		case CodeOverCapacity:
			tn.shed.Add(1)
		case CodeDraining:
			tn.drainRejected.Add(1)
		case CodeDeadline:
			tn.deadline.Add(1)
		case CodeCancelled:
			tn.cancelled.Add(1)
		default:
			tn.internal.Add(1)
		}
	}
	status := e.Status
	if status == 0 {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, e)
}

func invalidErr(format string, args ...any) *ErrorResponse {
	return &ErrorResponse{Code: CodeInvalid, Status: http.StatusBadRequest,
		Error: fmt.Sprintf(format, args...)}
}

// tenantName extracts and validates the X-Tenant header ("default" when
// absent): tenant names are identifiers, not free text, because they key a
// server-side map and appear in stats tables.
func tenantName(r *http.Request) (string, *ErrorResponse) {
	name := r.Header.Get("X-Tenant")
	if name == "" {
		return "default", nil
	}
	if len(name) > 64 {
		return "", invalidErr("tenant name longer than 64 bytes")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return "", invalidErr("tenant name %q: only [A-Za-z0-9._-] allowed", name)
		}
	}
	return name, nil
}

// decode reads one bounded JSON body, rejecting unknown fields so a typo'd
// option fails loudly instead of silently simulating the wrong machine.
func decode(r *http.Request, v any) *ErrorResponse {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return invalidErr("bad request body: %v", err)
	}
	return nil
}

// requestContext derives the request's deadline context: client deadline
// (or the server default), clamped to the server max, cancelled early when
// the client disconnects (r.Context()) or the drain budget expires
// (drainCtx via AfterFunc). The returned cancel releases the AfterFunc
// registration too — call it exactly once, when the request ends.
func (s *Server) requestContext(r *http.Request, deadlineMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	stop := context.AfterFunc(s.drainCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// ctxError translates a done context into the structured error the client
// should see: deadline expiry is the request's fault, drain is the
// server's, and anything else means the client itself went away.
func (s *Server) ctxError(ctx context.Context) *ErrorResponse {
	switch {
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		return &ErrorResponse{Code: CodeDeadline, Status: http.StatusGatewayTimeout,
			Error: "request deadline expired; the simulation was cancelled mid-run"}
	case s.drainCtx.Err() != nil:
		return &ErrorResponse{Code: CodeDraining, Status: http.StatusServiceUnavailable,
			Error: "server draining for shutdown; the simulation was cancelled mid-run"}
	default:
		return &ErrorResponse{Code: CodeCancelled, Status: 499,
			Error: "client cancelled the request"}
	}
}

// classifyRunError maps a harness/simulator error onto the API: a
// cancellation fault follows the context's story, a real simulation fault
// is the structured 422 diagnostic, a bare context error (worker pool
// stopped before any cell aborted) also follows the context, and anything
// else is a server bug.
func (s *Server) classifyRunError(ctx context.Context, err error) *ErrorResponse {
	var fe *fault.FaultError
	if errors.As(err, &fe) {
		if fe.Kind == fault.KindCancelled {
			return s.ctxError(ctx)
		}
		return &ErrorResponse{Code: CodeFault, Status: http.StatusUnprocessableEntity,
			Error: err.Error()}
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return s.ctxError(ctx)
	}
	return &ErrorResponse{Code: CodeInternal, Status: http.StatusInternalServerError,
		Error: err.Error()}
}

// retryHintMS converts an admission wait into the retry_after_ms hint:
// the wait rounded up to a whole millisecond — truncation told clients
// with sub-millisecond waits to retry immediately — clamped to >= 1ms,
// plus a small deterministic jitter keyed on (tenant, rejection ordinal)
// so a burst of simultaneously throttled clients is spread out instead of
// being synchronized into a retry stampede. Deterministic: the same
// rejection sequence against an identical server produces the same hints.
func retryHintMS(tn *tenant, wait time.Duration) int64 {
	ms := int64((wait + time.Millisecond - 1) / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	h := uint64(14695981039346656037) // FNV-1a over the tenant name...
	for i := 0; i < len(tn.name); i++ {
		h = (h ^ uint64(tn.name[i])) * 1099511628211
	}
	h = (h ^ tn.retrySeq.Add(1)) * 1099511628211 // ...and the rejection ordinal
	// Jitter scales with the base wait (half again, minimum a few ms) so
	// the spread is proportional without dwarfing the hint.
	return ms + int64(h%uint64(ms/2+4))
}

// admit runs the two-stage admission pipeline: the tenant's token bucket
// (429 with a retry hint), then the bounded global queue (503 shed), then
// a wait for a run slot that respects the request's deadline. On success
// the caller must invoke the returned release exactly once.
func (s *Server) admit(ctx context.Context, tn *tenant) (release func(), apiErr *ErrorResponse) {
	if ok, wait := tn.take(s.cfg.now(), s.cfg.TenantRate, s.cfg.TenantBurst); !ok {
		return nil, &ErrorResponse{Code: CodeRateLimited, Status: http.StatusTooManyRequests,
			Error:        fmt.Sprintf("tenant %q over its admission rate (%.3g req/s, burst %d)", tn.name, s.cfg.TenantRate, s.cfg.TenantBurst),
			RetryAfterMS: retryHintMS(tn, wait)}
	}
	if q := s.queued.Add(1); q > int64(s.cfg.MaxQueue+s.cfg.MaxConcurrent) {
		s.queued.Add(-1)
		return nil, &ErrorResponse{Code: CodeOverCapacity, Status: http.StatusServiceUnavailable,
			Error:        fmt.Sprintf("work queue full (%d admitted); load shed", q-1),
			RetryAfterMS: retryHintMS(tn, time.Second)}
	}
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots; s.queued.Add(-1) }, nil
	case <-ctx.Done():
		s.queued.Add(-1)
		return nil, s.ctxError(ctx)
	}
}

// runAdmitted is the shared request lifecycle around one unit of work:
// in-flight registration (rejecting when draining), deadline context,
// admission, outcome counting, latency recording, response writing. fn
// reports whether its success came from a cache (counted separately).
func (s *Server) runAdmitted(w http.ResponseWriter, r *http.Request, deadlineMS int64,
	fn func(ctx context.Context, tn *tenant) (out any, cached bool, apiErr *ErrorResponse)) {
	name, apiErr := tenantName(r)
	if apiErr != nil {
		s.fail(w, nil, apiErr)
		return
	}
	tn := s.tenantFor(name)
	if tn == nil {
		s.fail(w, nil, &ErrorResponse{Code: CodeOverCapacity, Status: http.StatusServiceUnavailable,
			Error: "tenant table full; load shed", RetryAfterMS: 60_000})
		return
	}
	if !s.begin() {
		s.fail(w, tn, &ErrorResponse{Code: CodeDraining, Status: http.StatusServiceUnavailable,
			Error: "server draining for shutdown"})
		return
	}
	defer s.inflight.Done()

	ctx, cancel := s.requestContext(r, deadlineMS)
	defer cancel()
	release, apiErr := s.admit(ctx, tn)
	if apiErr != nil {
		s.fail(w, tn, apiErr)
		return
	}
	defer release()

	t0 := time.Now()
	out, cached, apiErr := fn(ctx, tn)
	if apiErr != nil {
		s.fail(w, tn, apiErr)
		return
	}
	tn.recordLatency(float64(time.Since(t0).Microseconds()) / 1000)
	if cached {
		tn.cacheHits.Add(1)
	} else {
		tn.ok.Add(1)
	}
	writeJSON(w, http.StatusOK, out)
}

// simSpec is a normalized, validated SimulateRequest: every field filled,
// every default applied — the unit the cache key is built from.
type simSpec struct {
	name, src    string
	binary       string
	gridW, gridH int
	unroll       int
	opt          int
	memName      string
	memMode      wavecache.MemoryMode
	policy       string
	maxCycles    int64
	faults       string
	faultSeed    uint64
	// shards is the engine shard count; results are invariant to it, so
	// it participates in execution but never in the cache key.
	shards int
}

// resolveSource yields (name, source) from a workload-or-inline request
// pair; exactly one must be set.
func resolveSource(workload, source string) (string, string, *ErrorResponse) {
	switch {
	case workload != "" && source != "":
		return "", "", invalidErr("set exactly one of workload and source, not both")
	case workload != "":
		w := workloads.ByName(workload)
		if w == nil {
			return "", "", invalidErr("unknown workload %q (named benchmarks: %v; or gen:family:seed[:size])",
				workload, workloads.Names())
		}
		return w.Name, w.Src, nil
	case source != "":
		if len(source) > maxSourceBytes {
			return "", "", invalidErr("inline source larger than %d bytes", maxSourceBytes)
		}
		return "inline", source, nil
	default:
		return "", "", invalidErr("set one of workload or source")
	}
}

func (s *Server) normalizeSimulate(req *SimulateRequest) (*simSpec, *ErrorResponse) {
	sp := &simSpec{}
	var apiErr *ErrorResponse
	if sp.name, sp.src, apiErr = resolveSource(req.Workload, req.Source); apiErr != nil {
		return nil, apiErr
	}
	sp.binary = req.Binary
	if sp.binary == "" {
		sp.binary = "steer"
	}
	switch sp.binary {
	case "steer", "select", "rolled":
	default:
		return nil, invalidErr("unknown binary %q (steer, select, rolled)", req.Binary)
	}
	sp.gridW, sp.gridH = 4, 4
	if req.Grid != "" {
		if _, err := fmt.Sscanf(req.Grid, "%dx%d", &sp.gridW, &sp.gridH); err != nil {
			return nil, invalidErr("bad grid %q (want WxH)", req.Grid)
		}
		if sp.gridW < 1 || sp.gridH < 1 || sp.gridW > 32 || sp.gridH > 32 {
			return nil, invalidErr("grid %q out of range (1x1 .. 32x32)", req.Grid)
		}
	}
	sp.unroll = req.Unroll
	if sp.unroll == 0 {
		sp.unroll = harness.DefaultCompileOptions().Unroll
	}
	if sp.unroll < 0 || sp.unroll > 16 {
		return nil, invalidErr("unroll %d out of range (1 .. 16)", req.Unroll)
	}
	opt, apiErr := normalizeOpt(req.Opt)
	if apiErr != nil {
		return nil, apiErr
	}
	sp.opt = opt
	sp.memName = req.MemMode
	if sp.memName == "" {
		sp.memName = "wave-ordered"
	}
	switch sp.memName {
	case "wave-ordered":
		sp.memMode = wavecache.MemOrdered
	case "serialized":
		sp.memMode = wavecache.MemSerial
	case "ideal":
		sp.memMode = wavecache.MemIdeal
	case "spec":
		sp.memMode = wavecache.MemSpec
	default:
		return nil, invalidErr("unknown memmode %q (wave-ordered, serialized, ideal, spec)", req.MemMode)
	}
	sp.policy = req.Policy
	if sp.policy == "" {
		sp.policy = harness.DefaultMachineOptions().Policy
	}
	// The server-side watchdog cap always applies; requests may tighten it.
	sp.maxCycles = s.cfg.MaxCycles
	if req.MaxCycles > 0 && req.MaxCycles < sp.maxCycles {
		sp.maxCycles = req.MaxCycles
	}
	sp.faults = req.Faults
	sp.faultSeed = req.FaultSeed
	if sp.faults != "" {
		if _, err := fault.ParseSpec(sp.faults); err != nil {
			return nil, invalidErr("bad faults spec: %v", err)
		}
	}
	sp.shards = req.Shards
	if sp.shards < 0 || sp.shards > 1024 {
		return nil, invalidErr("shards %d out of range (0 .. 1024)", req.Shards)
	}
	return sp, nil
}

// normalizeOpt applies the compile-pipeline default to an optional opt
// level (nil = default on) and validates an explicit one.
func normalizeOpt(opt *int) (int, *ErrorResponse) {
	if opt == nil {
		return harness.DefaultCompileOptions().OptLevel, nil
	}
	if *opt < 0 || *opt > 1 {
		return 0, invalidErr("opt %d out of range (0 .. 1)", *opt)
	}
	return *opt, nil
}

// cacheKey is the idempotency-cache address of a simulate request: every
// input that determines its SimResult, plus the engine-set and schema
// versions. Two requests with the same key get byte-identical results —
// which is exactly why a cached replay is retry-safe.
func (sp *simSpec) cacheKey() string {
	return harness.CacheKey(
		simulateCacheVersion, harness.EngineSetVersion,
		sp.src, sp.binary,
		fmt.Sprintf("grid=%dx%d unroll=%d opt=%d mem=%s policy=%s maxcycles=%d",
			sp.gridW, sp.gridH, sp.unroll, sp.opt, sp.memName, sp.policy, sp.maxCycles),
		fmt.Sprintf("faults=%s seed=%d", sp.faults, sp.faultSeed),
	)
}

// compileKey addresses the warm compiled-program cache (compilation
// depends only on source, unroll factor, and optimization level).
func compileKey(src string, unroll, opt int) string {
	return harness.CacheKey("serve-compile", src, fmt.Sprintf("unroll=%d opt=%d", unroll, opt))
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if apiErr := decode(r, &req); apiErr != nil {
		s.fail(w, nil, apiErr)
		return
	}
	s.runAdmitted(w, r, req.DeadlineMS, func(ctx context.Context, tn *tenant) (any, bool, *ErrorResponse) {
		sp, apiErr := s.normalizeSimulate(&req)
		if apiErr != nil {
			return nil, false, apiErr
		}
		t0 := time.Now()

		// Idempotency: a retried request replays its completed result from
		// the content-addressed cache instead of re-simulating. A torn or
		// corrupt entry reads as a miss and is recomputed.
		key := sp.cacheKey()
		if s.cache != nil {
			var res SimResult
			if s.cache.Get(key, &res) {
				return &SimulateResponse{
					Workload:  sp.name,
					Engines:   harness.EngineSetVersion,
					Result:    res,
					Cached:    true,
					ElapsedMS: float64(time.Since(t0).Microseconds()) / 1000,
				}, true, nil
			}
		}

		resp, apiErr := s.simulate(ctx, sp, req.Metrics)
		if apiErr != nil {
			return nil, false, apiErr
		}
		resp.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000
		if s.cache != nil {
			if err := s.cache.Put(key, resp.Result); err != nil {
				s.logf("simulate: idempotency cache put: %v", err)
			}
		}
		return resp, false, nil
	})
}

// simulate compiles (through the warm LRU) and runs one request on the
// WaveCache, with the request context threaded into the simulator's
// cancellation poll.
func (s *Server) simulate(ctx context.Context, sp *simSpec, wantMetrics bool) (*SimulateResponse, *ErrorResponse) {
	c, _, err := s.compiled.get(ctx, compileKey(sp.src, sp.unroll, sp.opt), func() (*harness.Compiled, error) {
		return harness.CompileSource(sp.name, sp.src, harness.CompileOptions{Unroll: sp.unroll, OptLevel: sp.opt})
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, s.ctxError(ctx)
		}
		// Compilation failures are the program's fault: the pipeline
		// cross-checks its own backends, so a bad program — not a bad
		// server — is what fails here.
		return nil, invalidErr("compile: %v", err)
	}
	var prog *isa.Program
	switch sp.binary {
	case "steer":
		prog = c.Wave
	case "select":
		prog = c.WaveSel
	case "rolled":
		prog = c.WaveNoUn
	}

	m := harness.DefaultMachineOptions()
	m.GridW, m.GridH = sp.gridW, sp.gridH
	m.Policy = sp.policy
	m.MaxCycles = sp.maxCycles
	m.Shards = sp.shards
	m.Ctx = ctx
	cfg := m.WaveConfig()
	cfg.MemMode = sp.memMode
	if sp.faults != "" {
		fc, ferr := fault.ParseSpec(sp.faults)
		if ferr != nil {
			return nil, invalidErr("bad faults spec: %v", ferr)
		}
		fc.Seed = sp.faultSeed
		cfg.Faults = fc
		// Placement and simulator must agree on the defect map, so it is
		// installed on the machine before the policy is constructed.
		cfg.Machine.Defective = fault.DefectMap(fc, cfg.Machine.NumPEs())
	}
	var reqAgg *trace.Aggregate
	if wantMetrics {
		reqAgg = trace.NewAggregate()
		cfg.Metrics = reqAgg
	} else {
		cfg.Metrics = s.agg
	}

	pol, err := placement.New(sp.policy, cfg.Machine, prog, 12345)
	if err != nil {
		return nil, invalidErr("placement policy %q: %v", sp.policy, err)
	}
	res, err := harness.RunWave(c, prog, pol, cfg)
	if err != nil {
		return nil, s.classifyRunError(ctx, err)
	}

	resp := &SimulateResponse{
		Workload: sp.name,
		Engines:  harness.EngineSetVersion,
		Result: SimResult{
			Value:        res.Value,
			UsefulInstrs: c.UsefulInstrs,
			Cycles:       res.Cycles,
			AIPC:         harness.AIPC(c.UsefulInstrs, res.Cycles),
			Fired:        res.Fired,
			Tokens:       res.Tokens,
			Swaps:        res.Swaps,
			Overflows:    res.Overflows,
			PEsUsed:      res.PEsUsed,
			MemoryOps:    res.Order.Loads + res.Order.Stores,
			NetMessages:  res.Net.Messages,
		},
	}
	if reqAgg != nil {
		resp.MetricsTable = reqAgg.Summary("WaveCache trace metrics (this run)").Render()
		// The per-request aggregate also folds into the server-wide one, so
		// opting into per-request metrics never loses global counters.
		snap := reqAgg.Snapshot()
		s.agg.Merge(&snap)
	}
	return resp, nil
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if apiErr := decode(r, &req); apiErr != nil {
		s.fail(w, nil, apiErr)
		return
	}
	s.runAdmitted(w, r, req.DeadlineMS, func(ctx context.Context, tn *tenant) (any, bool, *ErrorResponse) {
		name, src, apiErr := resolveSource(req.Workload, req.Source)
		if apiErr != nil {
			return nil, false, apiErr
		}
		unroll := req.Unroll
		if unroll == 0 {
			unroll = harness.DefaultCompileOptions().Unroll
		}
		if unroll < 0 || unroll > 16 {
			return nil, false, invalidErr("unroll %d out of range (1 .. 16)", req.Unroll)
		}
		opt, apiErr := normalizeOpt(req.Opt)
		if apiErr != nil {
			return nil, false, apiErr
		}
		c, warm, err := s.compiled.get(ctx, compileKey(src, unroll, opt), func() (*harness.Compiled, error) {
			return harness.CompileSource(name, src, harness.CompileOptions{Unroll: unroll, OptLevel: opt})
		})
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return nil, false, s.ctxError(ctx)
			}
			return nil, false, invalidErr("compile: %v", err)
		}
		return &CompileResponse{
			Workload:         name,
			Checksum:         c.Checksum,
			UsefulInstrs:     c.UsefulInstrs,
			SteerInstrs:      c.Wave.NumInstrs(),
			SelectInstrs:     c.WaveSel.NumInstrs(),
			RolledInstrs:     c.WaveNoUn.NumInstrs(),
			Opt:              c.Opt,
			StoresForwarded:  c.MemOpt.StoresForwarded,
			LoadsEliminated:  c.MemOpt.LoadsReused + c.MemOpt.LoadsPromoted,
			DeadStores:       c.MemOpt.DeadStores,
			MemOpsEliminated: c.MemOpt.MemBefore - c.MemOpt.MemAfter,
			Cached:           warm,
		}, warm, nil
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if apiErr := decode(r, &req); apiErr != nil {
		s.fail(w, nil, apiErr)
		return
	}
	s.runAdmitted(w, r, req.DeadlineMS, func(ctx context.Context, tn *tenant) (any, bool, *ErrorResponse) {
		if req.N <= 0 {
			return nil, false, invalidErr("sweep size n must be positive")
		}
		if req.N > s.cfg.SweepMax {
			return nil, false, invalidErr("sweep size %d exceeds the server bound %d", req.N, s.cfg.SweepMax)
		}
		t0 := time.Now()
		co := harness.CorpusOptions{
			N:       req.N,
			Seed:    req.Seed,
			Resume:  true,
			Compile: harness.DefaultCompileOptions(),
			Machine: harness.DefaultCorpusMachine(),
		}
		co.Compile.Ctx = ctx
		co.Machine.Ctx = ctx
		co.Machine.Workers = s.cfg.SweepWorkers
		if s.cfg.CacheDir != "" {
			co.CacheDir = filepath.Join(s.cfg.CacheDir, "corpus")
		}
		run, err := harness.RunCorpus(co)
		if err != nil {
			return nil, false, s.classifyRunError(ctx, err)
		}
		// A sweep whose cells all replayed from the corpus cache counts as
		// a cache hit for the tenant.
		allCached := run.Computed == 0 && run.Cached > 0
		return &SweepResponse{
			Table:      run.Table.Render(),
			Computed:   run.Computed,
			Cached:     run.Cached,
			Mismatched: run.Mismatched,
			ElapsedMS:  float64(time.Since(t0).Microseconds()) / 1000,
		}, allCached, nil
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, struct {
			Draining     bool             `json:"draining"`
			UptimeSec    float64          `json:"uptime_sec"`
			Queued       int64            `json:"queued"`
			CompiledWarm int              `json:"compiled_warm"`
			CompiledHits uint64           `json:"compiled_hits"`
			Tenants      []TenantSnapshot `json:"tenants"`
		}{
			Draining:     s.Draining(),
			UptimeSec:    time.Since(s.start).Seconds(),
			Queued:       s.queued.Load(),
			CompiledWarm: s.compiled.Len(),
			CompiledHits: s.compiled.Hits(),
			Tenants:      s.Snapshot(),
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, s.renderStatsText())
}

// handleHealthz is the load-balancer probe: 200 while serving, 503 once
// draining — the front door learns to stop routing here before in-flight
// work finishes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable,
			&ErrorResponse{Code: CodeDraining, Error: "server draining for shutdown"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}
