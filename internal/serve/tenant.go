package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latWindow is how many completed-request latencies each tenant retains
// for quantile reporting: a sliding window, so p50/p99 track current
// behavior rather than the whole process lifetime, with bounded memory per
// tenant.
const latWindow = 2048

// tenant is one tenant's admission and observability state. Counters are
// atomics (hot path); the token bucket and the latency window take a
// per-tenant mutex, so tenants never contend with each other.
type tenant struct {
	name string

	mu     sync.Mutex
	tokens float64   // token bucket: current tokens
	filled time.Time // last refill instant (zero = bucket starts full)
	lat    []float64 // latency ring, milliseconds
	latPos int
	latN   int

	lastSeen atomic.Int64 // unix nanos of the last request, for idle pruning

	// retrySeq orders this tenant's throttle rejections; it seeds the
	// deterministic retry-hint jitter so simultaneously rejected clients
	// are told different retry times (see retryHintMS).
	retrySeq atomic.Uint64

	// Outcome counters: every admitted-or-rejected request increments
	// exactly one of these.
	ok            atomic.Uint64 // 200 with a computed result
	cacheHits     atomic.Uint64 // 200 replayed from the idempotency cache
	rateLimited   atomic.Uint64 // 429: token bucket empty
	shed          atomic.Uint64 // 503: bounded queue full
	drainRejected atomic.Uint64 // 503: server draining
	deadline      atomic.Uint64 // 504: deadline expired (run cancelled)
	cancelled     atomic.Uint64 // client disconnected mid-run
	faulted       atomic.Uint64 // 422: structured simulation fault
	invalid       atomic.Uint64 // 400: malformed request/program
	internal      atomic.Uint64 // 500: server bug
}

// take attempts to draw one token at rate tokens/sec with the given burst
// capacity. rate <= 0 disables rate limiting (always admits). On refusal
// it returns how long until a token will be available.
func (tn *tenant) take(now time.Time, rate float64, burst int) (bool, time.Duration) {
	if rate <= 0 {
		return true, 0
	}
	if burst < 1 {
		burst = 1
	}
	tn.mu.Lock()
	defer tn.mu.Unlock()
	if tn.filled.IsZero() {
		tn.tokens = float64(burst)
	} else if dt := now.Sub(tn.filled); dt > 0 {
		tn.tokens += dt.Seconds() * rate
		if tn.tokens > float64(burst) {
			tn.tokens = float64(burst)
		}
	}
	tn.filled = now
	if tn.tokens >= 1 {
		tn.tokens--
		return true, 0
	}
	wait := time.Duration((1 - tn.tokens) / rate * float64(time.Second))
	return false, wait
}

// recordLatency adds one completed request's latency to the window.
func (tn *tenant) recordLatency(ms float64) {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	if tn.lat == nil {
		tn.lat = make([]float64, latWindow)
	}
	tn.lat[tn.latPos] = ms
	tn.latPos = (tn.latPos + 1) % latWindow
	if tn.latN < latWindow {
		tn.latN++
	}
}

// quantiles returns the window's p50 and p99 in milliseconds (NaN-free:
// zeros when the window is empty).
func (tn *tenant) quantiles() (p50, p99 float64) {
	tn.mu.Lock()
	samples := append([]float64(nil), tn.lat[:tn.latN]...)
	tn.mu.Unlock()
	if len(samples) == 0 {
		return 0, 0
	}
	sort.Float64s(samples)
	pick := func(q float64) float64 {
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	return pick(0.50), pick(0.99)
}

// TenantSnapshot is one tenant's service metrics at a point in time.
type TenantSnapshot struct {
	Tenant        string  `json:"tenant"`
	OK            uint64  `json:"ok"`
	CacheHits     uint64  `json:"cache_hits"`
	RateLimited   uint64  `json:"rate_limited"`
	Shed          uint64  `json:"shed"`
	DrainRejected uint64  `json:"drain_rejected"`
	Deadline      uint64  `json:"deadline"`
	Cancelled     uint64  `json:"cancelled"`
	Faulted       uint64  `json:"faulted"`
	Invalid       uint64  `json:"invalid"`
	Internal      uint64  `json:"internal"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
}

func (tn *tenant) snapshot() TenantSnapshot {
	p50, p99 := tn.quantiles()
	return TenantSnapshot{
		Tenant:        tn.name,
		OK:            tn.ok.Load(),
		CacheHits:     tn.cacheHits.Load(),
		RateLimited:   tn.rateLimited.Load(),
		Shed:          tn.shed.Load(),
		DrainRejected: tn.drainRejected.Load(),
		Deadline:      tn.deadline.Load(),
		Cancelled:     tn.cancelled.Load(),
		Faulted:       tn.faulted.Load(),
		Invalid:       tn.invalid.Load(),
		Internal:      tn.internal.Load(),
		P50MS:         p50,
		P99MS:         p99,
	}
}
