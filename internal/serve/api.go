package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// The wire types of the waved HTTP+JSON API. Every response body is either
// the endpoint's success type or an ErrorResponse; tenancy travels in the
// X-Tenant header so a front proxy can set it without touching bodies.

// SimulateRequest asks for one WaveCache simulation. Exactly one of
// Workload (a named benchmark kernel, or a generated corpus program as
// "gen:family:seed[:size]") or Source (inline wsl) selects the program.
type SimulateRequest struct {
	Workload string `json:"workload,omitempty"`
	Source   string `json:"source,omitempty"`
	// Binary picks the compiled dataflow binary: "steer" (default),
	// "select" (if-converted), or "rolled" (no unrolling).
	Binary string `json:"binary,omitempty"`
	// Grid is the cluster grid as "WxH" (default 4x4).
	Grid string `json:"grid,omitempty"`
	// Unroll is the loop unrolling factor (0 = the pipeline default of 4).
	Unroll int `json:"unroll,omitempty"`
	// Opt is the compiler optimization level: nil = the pipeline default
	// (1, memory tier on), explicit 0 = base passes only. Unlike Shards it
	// changes the compiled program, so it is part of the result cache key.
	Opt *int `json:"opt,omitempty"`
	// MemMode is "wave-ordered" (default), "serialized", "ideal", or
	// "spec" (speculative transactional wave-ordered memory).
	MemMode string `json:"memmode,omitempty"`
	// Policy names the placement policy (default dynamic-depth-first-snake).
	Policy string `json:"policy,omitempty"`
	// MaxCycles bounds simulated time (0 = the server's cap; requests may
	// only tighten the cap, never exceed it).
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// Faults is the fault-injection spec (see wavesim -faults); FaultSeed
	// drives it deterministically.
	Faults    string `json:"faults,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Shards is the event-engine shard count inside the simulation (0 or
	// 1 = sequential; clamped server-side to the grid's cluster count).
	// Results are bit-identical at every setting — the knob trades
	// scheduling for wall-clock — so it does not partition the
	// idempotency cache.
	Shards int `json:"shards,omitempty"`
	// DeadlineMS bounds the request's wall-clock time (0 = server default;
	// clamped to the server maximum). On expiry the simulation is
	// cancelled mid-run and the request fails with code "deadline".
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Metrics requests the run's trace-counter summary table in the
	// response (omitted on idempotency-cache hits).
	Metrics bool `json:"metrics,omitempty"`
}

// SimResult is the deterministic core of a simulation response: a pure
// function of the request's program and configuration, byte-identical
// whether computed, replayed from the idempotency cache, or produced by a
// direct harness run.
type SimResult struct {
	Value        int64   `json:"value"`
	UsefulInstrs int64   `json:"useful_instrs"`
	Cycles       int64   `json:"cycles"`
	AIPC         float64 `json:"aipc"`
	Fired        uint64  `json:"fired"`
	Tokens       uint64  `json:"tokens"`
	Swaps        uint64  `json:"swaps"`
	Overflows    uint64  `json:"overflows"`
	PEsUsed      int     `json:"pes_used"`
	MemoryOps    uint64  `json:"memory_ops"`
	NetMessages  uint64  `json:"net_messages"`
}

// SimulateResponse is a successful simulation.
type SimulateResponse struct {
	Workload string    `json:"workload"`
	Engines  string    `json:"engines"` // engine-set version the result is keyed under
	Result   SimResult `json:"result"`
	// Cached reports an idempotency-cache replay (retry-safe: a retried
	// request returns the stored result instead of re-simulating).
	Cached       bool    `json:"cached"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	MetricsTable string  `json:"metrics_table,omitempty"`
}

// CompileRequest asks for compilation only.
type CompileRequest struct {
	Workload   string `json:"workload,omitempty"`
	Source     string `json:"source,omitempty"`
	Unroll     int    `json:"unroll,omitempty"`
	// Opt is the compiler optimization level: nil = the pipeline default
	// (1, memory tier on), explicit 0 = base passes only.
	Opt        *int  `json:"opt,omitempty"`
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// CompileResponse reports the compiled program's static shape and the
// checksum every engine must reproduce.
type CompileResponse struct {
	Workload     string `json:"workload"`
	Checksum     int64  `json:"checksum"`
	UsefulInstrs int64  `json:"useful_instrs"`
	SteerInstrs  int    `json:"steer_instrs"`
	SelectInstrs int    `json:"select_instrs"`
	RolledInstrs int    `json:"rolled_instrs"`
	// Opt echoes the optimization level the pipeline ran at; the
	// *_eliminated counters are the memory tier's per-pass totals (absent
	// at opt 0).
	Opt              int   `json:"opt"`
	StoresForwarded  int64 `json:"stores_forwarded,omitempty"`
	LoadsEliminated  int64 `json:"loads_eliminated,omitempty"`
	DeadStores       int64 `json:"dead_stores,omitempty"`
	MemOpsEliminated int64 `json:"mem_ops_eliminated,omitempty"`
	Cached           bool  `json:"cached"`
}

// SweepRequest asks for a corpus differential sweep (a bounded, served
// variant of `waveexp -corpus`).
type SweepRequest struct {
	N          int   `json:"n"`
	Seed       int64 `json:"seed"`
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SweepResponse is the rendered corpus table plus the sweep's cell
// accounting.
type SweepResponse struct {
	Table      string `json:"table"`
	Computed   int    `json:"computed"`
	Cached     int    `json:"cached"`
	Mismatched int    `json:"mismatched"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// Error codes: every non-2xx response carries one, so clients branch on
// codes, never on message text.
const (
	CodeInvalid      = "invalid"       // 400: malformed request or program
	CodeFault        = "fault"         // 422: simulation aborted (watchdog, unrecoverable fault)
	CodeRateLimited  = "rate_limited"  // 429: tenant over its token bucket
	CodeOverCapacity = "over_capacity" // 503: bounded work queue full, load shed
	CodeDraining     = "draining"      // 503: server is draining for shutdown
	CodeDeadline     = "deadline"      // 504: request deadline expired mid-run
	CodeCancelled    = "cancelled"     // 499: client went away mid-run (rarely observed by anyone)
	CodeInternal     = "internal"      // 500: bug — soak tests treat any of these as failure
)

// ErrorResponse is the structured error body.
type ErrorResponse struct {
	Code         string `json:"code"`
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	// Status is the HTTP status, filled by Client for callers that branch
	// on it; never serialized by the server.
	Status int `json:"-"`
}

// Client is the minimal waved API client shared by the waveload generator
// and the soak tests.
type Client struct {
	BaseURL string
	Tenant  string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// post sends one request. A 2xx decodes into out and returns (nil, nil);
// a structured error decodes into the returned ErrorResponse; transport
// and decoding failures land in err.
func (c *Client) post(ctx context.Context, path string, in, out any) (*ErrorResponse, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 == 2 {
		if out == nil {
			return nil, nil
		}
		return nil, json.Unmarshal(data, out)
	}
	var apiErr ErrorResponse
	if err := json.Unmarshal(data, &apiErr); err != nil || apiErr.Code == "" {
		return nil, fmt.Errorf("serve: HTTP %d with unstructured body %.200q", resp.StatusCode, data)
	}
	apiErr.Status = resp.StatusCode
	return &apiErr, nil
}

// Simulate runs one simulation request.
func (c *Client) Simulate(ctx context.Context, req SimulateRequest) (*SimulateResponse, *ErrorResponse, error) {
	var out SimulateResponse
	apiErr, err := c.post(ctx, "/v1/simulate", req, &out)
	if apiErr != nil || err != nil {
		return nil, apiErr, err
	}
	return &out, nil, nil
}

// Compile runs one compile request.
func (c *Client) Compile(ctx context.Context, req CompileRequest) (*CompileResponse, *ErrorResponse, error) {
	var out CompileResponse
	apiErr, err := c.post(ctx, "/v1/compile", req, &out)
	if apiErr != nil || err != nil {
		return nil, apiErr, err
	}
	return &out, nil, nil
}

// Sweep runs one corpus-sweep request.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (*SweepResponse, *ErrorResponse, error) {
	var out SweepResponse
	apiErr, err := c.post(ctx, "/v1/sweep", req, &out)
	if apiErr != nil || err != nil {
		return nil, apiErr, err
	}
	return &out, nil, nil
}

// Stats fetches the human-readable stats page.
func (c *Client) Stats(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return "", err
	}
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("serve: stats: HTTP %d", resp.StatusCode)
	}
	return string(data), nil
}
