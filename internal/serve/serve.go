// Package serve is the long-lived simulation service behind cmd/waved: an
// HTTP+JSON layer over the experiment harness that treats overload, slow
// cells, and client disappearance as normal events with defined recovery,
// the same way the simulator treats injected faults.
//
// The robustness model, end to end:
//
//   - Admission control: each tenant (X-Tenant header) draws from its own
//     token bucket; an empty bucket is a structured 429 with a retry hint,
//     never an unbounded queue.
//   - Backpressure: admitted work waits in a bounded queue for one of a
//     fixed number of simulation slots; a full queue sheds load with a
//     structured 503 instead of accumulating goroutines.
//   - Deadlines: every request carries a wall-clock deadline (client-set,
//     server-clamped) threaded as a context through the harness into the
//     simulator's event loop, so a slow cell cancels cleanly mid-run with
//     a structured cancellation fault — complementing the simulated-time
//     MaxCycles watchdog.
//   - Idempotency: with a cache directory configured, completed results
//     land in the PR 6 content-addressed CellCache keyed by everything
//     that determines them, so a retried request replays its result
//     instead of re-simulating (and a torn cache entry is recomputed,
//     never trusted).
//   - Graceful degradation: drain (SIGTERM in waved) stops admissions
//     with 503s, lets in-flight work finish within a budget, cancels
//     whatever remains, and flushes metrics.
//
// Warm paths: simulation arenas come from the harness's sync.Pool (a
// request pays the simulator's allocations only on pool misses), and
// compiled programs are cached in an LRU keyed by workload hash with
// singleflight semantics.
package serve

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wavescalar/internal/harness"
	"wavescalar/internal/stats"
	"wavescalar/internal/trace"
)

// Config parameterizes the server. The zero value is unusable; start from
// DefaultConfig.
type Config struct {
	// TenantRate is each tenant's sustained admission rate in requests
	// per second (<= 0 disables rate limiting); TenantBurst is the token
	// bucket capacity.
	TenantRate  float64
	TenantBurst int
	// MaxTenants bounds the tenant table; requests from new tenants
	// beyond it are shed until the janitor prunes idle ones.
	MaxTenants int

	// MaxConcurrent bounds simultaneously running requests; MaxQueue
	// bounds admitted requests waiting for a slot. Beyond queue+slots the
	// server sheds with 503 over_capacity.
	MaxConcurrent int
	MaxQueue      int

	// DefaultDeadline applies when a request does not set deadline_ms;
	// MaxDeadline clamps what a request may ask for.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	// MaxCycles is the hard simulated-time watchdog cap per request;
	// requests may tighten it but not exceed it.
	MaxCycles int64

	// SweepMax bounds the corpus size of one sweep request; SweepWorkers
	// is the per-sweep worker fan-out (a sweep still occupies a single
	// concurrency slot — keep this small).
	SweepMax     int
	SweepWorkers int

	// CacheDir, when non-empty, enables the idempotency cell cache (and
	// the sweep cell cache under CacheDir/corpus).
	CacheDir string

	// MaxCompiled bounds the warm compiled-program LRU.
	MaxCompiled int

	// DrainGrace is how long Drain waits after cancelling in-flight work
	// for handlers to unwind before reporting failure.
	DrainGrace time.Duration

	// Log receives one-line operational messages (nil = discard).
	Log io.Writer

	// now is the clock used by admission buckets; tests override it.
	now func() time.Time
}

// DefaultConfig is a reasonable single-machine serving configuration.
func DefaultConfig() Config {
	return Config{
		TenantRate:      50,
		TenantBurst:     100,
		MaxTenants:      4096,
		MaxConcurrent:   runtime.NumCPU(),
		MaxQueue:        4 * runtime.NumCPU(),
		DefaultDeadline: 10 * time.Second,
		MaxDeadline:     60 * time.Second,
		MaxCycles:       500_000_000,
		SweepMax:        256,
		SweepWorkers:    2,
		MaxCompiled:     256,
		DrainGrace:      2 * time.Second,
	}
}

// Server is one waved process's state. Construct with New; it is ready to
// serve once its Handler is mounted.
type Server struct {
	cfg   Config
	start time.Time

	slots  chan struct{} // running-request slots
	queued atomic.Int64  // admitted requests: waiting + running

	mu       sync.Mutex // guards draining + inflight Add ordering, tenants
	draining bool
	inflight sync.WaitGroup
	tenants  map[string]*tenant

	drainCtx    context.Context // done once the drain budget has expired
	drainCancel context.CancelFunc

	compiled *compileCache
	cache    *harness.CellCache // idempotency store; nil when disabled
	agg      *trace.Aggregate   // simulation trace counters across all served runs

	janitorStop chan struct{}
	janitorOnce sync.Once
}

// New validates cfg and builds a server.
func New(cfg Config) (*Server, error) {
	if cfg.MaxConcurrent < 1 {
		return nil, fmt.Errorf("serve: MaxConcurrent must be >= 1, got %d", cfg.MaxConcurrent)
	}
	if cfg.MaxQueue < 0 {
		return nil, fmt.Errorf("serve: negative MaxQueue %d", cfg.MaxQueue)
	}
	if cfg.DefaultDeadline <= 0 || cfg.MaxDeadline <= 0 {
		return nil, fmt.Errorf("serve: deadlines must be positive")
	}
	if cfg.DefaultDeadline > cfg.MaxDeadline {
		cfg.DefaultDeadline = cfg.MaxDeadline
	}
	if cfg.MaxCycles <= 0 {
		return nil, fmt.Errorf("serve: MaxCycles cap must be positive")
	}
	if cfg.SweepWorkers < 1 {
		cfg.SweepWorkers = 1
	}
	if cfg.MaxTenants < 1 {
		cfg.MaxTenants = 1
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 2 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	s := &Server{
		cfg:         cfg,
		start:       time.Now(),
		slots:       make(chan struct{}, cfg.MaxConcurrent),
		tenants:     make(map[string]*tenant),
		compiled:    newCompileCache(cfg.MaxCompiled),
		agg:         trace.NewAggregate(),
		janitorStop: make(chan struct{}),
	}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	if cfg.CacheDir != "" {
		cc, err := harness.NewCellCache(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		s.cache = cc
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	fmt.Fprintf(s.cfg.Log, "waved: "+format+"\n", args...)
}

// begin registers one in-flight request, refusing when the server is
// draining. The mutex orders every successful Add strictly before Drain's
// Wait, which is what makes the WaitGroup race-free.
func (s *Server) begin() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// tenantFor returns (creating if needed) the request's tenant record, or
// nil when the tenant table is full (the caller sheds).
func (s *Server) tenantFor(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	tn, ok := s.tenants[name]
	if !ok {
		if len(s.tenants) >= s.cfg.MaxTenants {
			return nil
		}
		tn = &tenant{name: name}
		s.tenants[name] = tn
	}
	tn.lastSeen.Store(time.Now().UnixNano())
	return tn
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the service down: stop admitting (every new
// request is refused with 503 draining), wait up to budget for in-flight
// work to finish, then cancel whatever remains — each running simulation
// aborts at its next cancellation poll — and wait DrainGrace for handlers
// to unwind. It returns nil when all in-flight work has finished; callers
// flush metrics afterwards. Drain is idempotent.
func (s *Server) Drain(budget time.Duration) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.StopJanitor()

	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case <-done:
		s.logf("drain: all in-flight work finished within budget %v", budget)
		return nil
	case <-timer.C:
	}
	s.logf("drain: budget %v expired, cancelling in-flight work", budget)
	s.drainCancel()
	grace := time.NewTimer(s.cfg.DrainGrace)
	defer grace.Stop()
	select {
	case <-done:
		return nil
	case <-grace.C:
		return fmt.Errorf("serve: drain incomplete after %v budget + %v grace", budget, s.cfg.DrainGrace)
	}
}

// StartJanitor runs the housekeeping loop: every interval it prunes the
// idempotency cache to the given bounds (skipped when no cache or no
// bounds) and forgets tenants idle longer than idleTenant. Call once;
// StopJanitor (or Drain) ends it.
func (s *Server) StartJanitor(interval time.Duration, pruneAge time.Duration, pruneBytes int64, idleTenant time.Duration) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.janitorStop:
				return
			case <-t.C:
			}
			if s.cache != nil && (pruneAge > 0 || pruneBytes > 0) {
				if st, err := s.cache.Prune(pruneAge, pruneBytes); err != nil {
					s.logf("janitor: cache prune: %v", err)
				} else if st.Removed() > 0 || st.RemovedTemp > 0 {
					s.logf("janitor: cache prune: %s", st)
				}
			}
			if idleTenant > 0 {
				s.pruneIdleTenants(idleTenant)
			}
		}
	}()
}

// StopJanitor terminates the janitor loop (idempotent).
func (s *Server) StopJanitor() {
	s.janitorOnce.Do(func() { close(s.janitorStop) })
}

// pruneIdleTenants drops tenants not seen for idle, bounding the tenant
// table for long-lived processes with high tenant churn. An idle tenant's
// counters vanish from /v1/stats; its bucket restarts full on return.
func (s *Server) pruneIdleTenants(idle time.Duration) {
	cutoff := time.Now().Add(-idle).UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, tn := range s.tenants {
		if tn.lastSeen.Load() < cutoff {
			delete(s.tenants, name)
		}
	}
}

// Snapshot returns every tenant's service metrics, sorted by tenant name.
func (s *Server) Snapshot() []TenantSnapshot {
	s.mu.Lock()
	tns := make([]*tenant, 0, len(s.tenants))
	for _, tn := range s.tenants {
		tns = append(tns, tn)
	}
	s.mu.Unlock()
	out := make([]TenantSnapshot, len(tns))
	for i, tn := range tns {
		out[i] = tn.snapshot()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// StatsTable renders the per-tenant service metrics as a table: request
// outcomes by class plus the latency quantiles of completed requests.
func (s *Server) StatsTable() *stats.Table {
	t := stats.NewTable("waved per-tenant service metrics",
		"tenant", "ok", "cache-hit", "rate-limited", "shed", "drain-rej",
		"deadline", "cancelled", "fault", "invalid", "internal", "p50-ms", "p99-ms")
	for _, sn := range s.Snapshot() {
		t.AddRow(sn.Tenant, sn.OK, sn.CacheHits, sn.RateLimited, sn.Shed, sn.DrainRejected,
			sn.Deadline, sn.Cancelled, sn.Faulted, sn.Invalid, sn.Internal,
			sn.P50MS, sn.P99MS)
	}
	t.Note = fmt.Sprintf("compiled-program cache: %d warm entries, %d hits; queue %d/%d; uptime %v",
		s.compiled.Len(), s.compiled.Hits(), s.queued.Load(),
		int64(s.cfg.MaxQueue+s.cfg.MaxConcurrent), time.Since(s.start).Round(time.Second))
	return t
}

// FlushMetrics writes the final stats table and the aggregated simulation
// trace counters to w — the last thing waved does on shutdown.
func (s *Server) FlushMetrics(w io.Writer) {
	fmt.Fprintln(w, s.StatsTable().Render())
	if s.agg.Runs() > 0 {
		fmt.Fprintln(w, s.agg.Summary("waved WaveCache trace metrics (all served runs)").Render())
	}
}

// renderStatsText is the /v1/stats text body.
func (s *Server) renderStatsText() string {
	var b strings.Builder
	state := "serving"
	if s.Draining() {
		state = "draining"
	}
	fmt.Fprintf(&b, "waved %s: uptime %v, %d/%d queue slots in use\n\n",
		state, time.Since(s.start).Round(time.Second), s.queued.Load(),
		int64(s.cfg.MaxQueue+s.cfg.MaxConcurrent))
	b.WriteString(s.StatsTable().Render())
	b.WriteString("\n")
	if s.agg.Runs() > 0 {
		b.WriteString(s.agg.Summary("WaveCache trace metrics (all served runs)").Render())
		b.WriteString("\n")
	}
	return b.String()
}
