package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"wavescalar/internal/fault"
	"wavescalar/internal/harness"
	"wavescalar/internal/placement"
	"wavescalar/internal/wavecache"
)

// fastSrc finishes in a few thousand simulated cycles. slowSrc compiles
// in ~1s (compilation executes the program on the AST evaluator and the
// linear emulator, so it cannot be arbitrarily long) but simulates for
// roughly ten seconds of wall clock — in these tests it only ever ends by
// cancellation.
const (
	fastSrc = `
func main() {
	var s = 0;
	for var i = 0; i < 200; i = i + 1 {
		s = (s + i*i) & 0xFFFFF;
	}
	return s;
}`
	slowSrc = `
func main() {
	var s = 0;
	for var i = 0; i < 3000000; i = i + 1 {
		s = (s + i) & 0xFFFFF;
	}
	return s;
}`
)

// testConfig is a small, deterministic serving configuration: no rate
// limiting (tests that want 429s set TenantRate themselves), generous
// deadlines, two slots.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.TenantRate = 0
	cfg.MaxConcurrent = 2
	cfg.MaxQueue = 8
	cfg.DefaultDeadline = 30 * time.Second
	cfg.MaxDeadline = 60 * time.Second
	return cfg
}

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, &Client{BaseURL: ts.URL, Tenant: "test", HTTPClient: ts.Client()}
}

// directResult computes the expected SimResult for a request with the
// harness directly — no serve code in the loop — mirroring exactly what a
// standalone harness user would do. Byte-identity between this and the
// served result is the service's core correctness contract.
func directResult(t *testing.T, req SimulateRequest, maxCycles int64) SimResult {
	t.Helper()
	name, src := req.Workload, req.Source
	if name == "" {
		name = "inline"
	}
	if src == "" {
		w := harnessWorkload(t, name)
		src = w
	}
	unroll := req.Unroll
	if unroll == 0 {
		unroll = harness.DefaultCompileOptions().Unroll
	}
	c, err := harness.CompileSource(name, src, harness.CompileOptions{Unroll: unroll})
	if err != nil {
		t.Fatal(err)
	}
	prog := c.Wave
	switch req.Binary {
	case "select":
		prog = c.WaveSel
	case "rolled":
		prog = c.WaveNoUn
	}
	m := harness.DefaultMachineOptions()
	if req.Grid != "" {
		if _, err := fmt.Sscanf(req.Grid, "%dx%d", &m.GridW, &m.GridH); err != nil {
			t.Fatal(err)
		}
	}
	if req.Policy != "" {
		m.Policy = req.Policy
	}
	m.MaxCycles = maxCycles
	cfg := m.WaveConfig()
	switch req.MemMode {
	case "", "wave-ordered":
	case "serialized":
		cfg.MemMode = wavecache.MemSerial
	case "ideal":
		cfg.MemMode = wavecache.MemIdeal
	case "spec":
		cfg.MemMode = wavecache.MemSpec
	}
	if req.Faults != "" {
		fc, err := fault.ParseSpec(req.Faults)
		if err != nil {
			t.Fatal(err)
		}
		fc.Seed = req.FaultSeed
		cfg.Faults = fc
		cfg.Machine.Defective = fault.DefectMap(fc, cfg.Machine.NumPEs())
	}
	pol, err := placement.New(m.Policy, cfg.Machine, prog, 12345)
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.RunWave(c, prog, pol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return SimResult{
		Value:        res.Value,
		UsefulInstrs: c.UsefulInstrs,
		Cycles:       res.Cycles,
		AIPC:         harness.AIPC(c.UsefulInstrs, res.Cycles),
		Fired:        res.Fired,
		Tokens:       res.Tokens,
		Swaps:        res.Swaps,
		Overflows:    res.Overflows,
		PEsUsed:      res.PEsUsed,
		MemoryOps:    res.Order.Loads + res.Order.Stores,
		NetMessages:  res.Net.Messages,
	}
}

func harnessWorkload(t *testing.T, name string) string {
	t.Helper()
	c, err := harness.Suite([]string{name}, harness.DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	return c[0].Src
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSimulateMatchesDirectHarness(t *testing.T) {
	srvCfg := testConfig()
	s, client := newTestServer(t, srvCfg)
	defer s.StopJanitor()

	reqs := []SimulateRequest{
		{Source: fastSrc},
		{Source: fastSrc, Binary: "select"},
		{Source: fastSrc, Binary: "rolled", Unroll: 1},
		{Source: fastSrc, Grid: "2x2", MemMode: "serialized"},
		{Source: fastSrc, MemMode: "ideal", Metrics: true},
		{Source: fastSrc, MemMode: "spec"},
		{Workload: "gen:contention:5", Grid: "2x2", MemMode: "spec"},
		{Workload: "gen:pipeline:7", Grid: "2x2"},
		{Source: fastSrc, Faults: "defect=0.1,drop=0.005", FaultSeed: 42},
	}
	for i, req := range reqs {
		resp, apiErr, err := client.Simulate(context.Background(), req)
		if err != nil || apiErr != nil {
			t.Fatalf("req %d: err=%v apiErr=%+v", i, err, apiErr)
		}
		want := directResult(t, req, srvCfg.MaxCycles)
		if got, wantJSON := mustJSON(t, resp.Result), mustJSON(t, want); got != wantJSON {
			t.Errorf("req %d: served result diverged from direct harness run\n got: %s\nwant: %s", i, got, wantJSON)
		}
		if req.Metrics && resp.MetricsTable == "" {
			t.Errorf("req %d: metrics requested but no metrics table", i)
		}
	}
}

func TestSimulateIdempotentReplay(t *testing.T) {
	cfg := testConfig()
	cfg.CacheDir = t.TempDir()
	s, client := newTestServer(t, cfg)
	defer s.StopJanitor()

	req := SimulateRequest{Source: fastSrc, Grid: "2x2"}
	first, apiErr, err := client.Simulate(context.Background(), req)
	if err != nil || apiErr != nil {
		t.Fatalf("first: err=%v apiErr=%+v", err, apiErr)
	}
	if first.Cached {
		t.Fatal("first request claims a cache hit on an empty cache")
	}
	second, apiErr, err := client.Simulate(context.Background(), req)
	if err != nil || apiErr != nil {
		t.Fatalf("second: err=%v apiErr=%+v", err, apiErr)
	}
	if !second.Cached {
		t.Fatal("retry of an identical request did not replay from the idempotency cache")
	}
	if mustJSON(t, first.Result) != mustJSON(t, second.Result) {
		t.Errorf("cached replay not byte-identical:\n first: %s\nsecond: %s",
			mustJSON(t, first.Result), mustJSON(t, second.Result))
	}
	// A different tenant shares the result: idempotency is content-keyed,
	// not tenant-keyed (results are pure functions of the request).
	other := *client
	other.Tenant = "other"
	third, apiErr, err := other.Simulate(context.Background(), req)
	if err != nil || apiErr != nil {
		t.Fatalf("third: err=%v apiErr=%+v", err, apiErr)
	}
	if !third.Cached || mustJSON(t, third.Result) != mustJSON(t, first.Result) {
		t.Error("cross-tenant replay missed or diverged")
	}
}

func TestRateLimiting(t *testing.T) {
	cfg := testConfig()
	cfg.TenantRate = 1
	cfg.TenantBurst = 2
	now := time.Unix(1_000_000, 0)
	cfg.now = func() time.Time { return now } // frozen clock: no refills
	s, client := newTestServer(t, cfg)
	defer s.StopJanitor()

	req := SimulateRequest{Source: fastSrc}
	for i := 0; i < 2; i++ {
		if _, apiErr, err := client.Simulate(context.Background(), req); err != nil || apiErr != nil {
			t.Fatalf("burst request %d rejected: err=%v apiErr=%+v", i, err, apiErr)
		}
	}
	_, apiErr, err := client.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if apiErr == nil || apiErr.Code != CodeRateLimited || apiErr.Status != 429 {
		t.Fatalf("expected 429 rate_limited, got %+v", apiErr)
	}
	if apiErr.RetryAfterMS <= 0 {
		t.Errorf("429 without a retry hint: %+v", apiErr)
	}
	// A different tenant has its own bucket and is unaffected.
	other := *client
	other.Tenant = "other"
	if _, apiErr, err := other.Simulate(context.Background(), req); err != nil || apiErr != nil {
		t.Fatalf("other tenant hit by this tenant's bucket: err=%v apiErr=%+v", err, apiErr)
	}
}

// holdAllSlots fills every concurrency slot with slow simulations and
// returns once they are running (admitted, occupying slots), plus a
// cancel to release them.
func holdAllSlots(t *testing.T, s *Server, client *Client) (release func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < s.cfg.MaxConcurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Cancellation by the client context ends these; any outcome is
			// fine — they exist to occupy slots.
			client.Simulate(ctx, SimulateRequest{Source: slowSrc, DeadlineMS: 30_000})
		}()
	}
	// Wait until every slot is taken.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.slots) < s.cfg.MaxConcurrent {
		if time.Now().After(deadline) {
			t.Fatal("slow requests did not occupy all slots in time")
		}
		time.Sleep(time.Millisecond)
	}
	return func() { cancel(); wg.Wait() }
}

func TestOverCapacitySheds(t *testing.T) {
	cfg := testConfig()
	cfg.MaxConcurrent = 1
	cfg.MaxQueue = 0
	s, client := newTestServer(t, cfg)
	defer s.StopJanitor()

	release := holdAllSlots(t, s, client)
	defer release()

	_, apiErr, err := client.Simulate(context.Background(), SimulateRequest{Source: fastSrc})
	if err != nil {
		t.Fatal(err)
	}
	if apiErr == nil || apiErr.Code != CodeOverCapacity || apiErr.Status != 503 {
		t.Fatalf("expected 503 over_capacity with a full queue, got %+v", apiErr)
	}
}

func TestDeadlineCancelsMidRun(t *testing.T) {
	s, client := newTestServer(t, testConfig())
	defer s.StopJanitor()

	t0 := time.Now()
	_, apiErr, err := client.Simulate(context.Background(),
		SimulateRequest{Source: slowSrc, DeadlineMS: 150})
	if err != nil {
		t.Fatal(err)
	}
	if apiErr == nil || apiErr.Code != CodeDeadline || apiErr.Status != 504 {
		t.Fatalf("expected 504 deadline, got %+v", apiErr)
	}
	// The cancellation must land promptly — the whole point of threading
	// the context into the event loop. The slow program runs for tens of
	// seconds uncancelled.
	if el := time.Since(t0); el > 5*time.Second {
		t.Fatalf("deadline abort took %v; cancellation did not reach the simulator", el)
	}
	// The arena that aborted mid-run is back in the pool; the next request
	// on it must be bit-identical to a direct harness run.
	req := SimulateRequest{Source: fastSrc}
	resp, apiErr, err := client.Simulate(context.Background(), req)
	if err != nil || apiErr != nil {
		t.Fatalf("post-cancellation request failed: err=%v apiErr=%+v", err, apiErr)
	}
	want := directResult(t, req, s.cfg.MaxCycles)
	if mustJSON(t, resp.Result) != mustJSON(t, want) {
		t.Errorf("result after cancelled-arena reuse diverged:\n got: %s\nwant: %s",
			mustJSON(t, resp.Result), mustJSON(t, want))
	}
}

func TestDrainRejectsAndCancels(t *testing.T) {
	cfg := testConfig()
	cfg.DrainGrace = 5 * time.Second
	s, client := newTestServer(t, cfg)
	defer s.StopJanitor()

	// One slow request in flight; it can only end by cancellation.
	type outcome struct {
		apiErr *ErrorResponse
		err    error
	}
	slowDone := make(chan outcome, 1)
	go func() {
		_, apiErr, err := client.Simulate(context.Background(),
			SimulateRequest{Source: slowSrc, DeadlineMS: 30_000})
		slowDone <- outcome{apiErr, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.slots) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request did not start in time")
		}
		time.Sleep(time.Millisecond)
	}

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(200 * time.Millisecond) }()

	// New work is rejected as draining once the flag is set.
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	_, apiErr, err := client.Simulate(context.Background(), SimulateRequest{Source: fastSrc})
	if err != nil {
		t.Fatal(err)
	}
	if apiErr == nil || apiErr.Code != CodeDraining || apiErr.Status != 503 {
		t.Fatalf("expected 503 draining during drain, got %+v", apiErr)
	}

	if err := <-drainErr; err != nil {
		t.Fatalf("drain did not complete within budget+grace: %v", err)
	}
	o := <-slowDone
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.apiErr == nil || o.apiErr.Code != CodeDraining {
		t.Fatalf("in-flight request should end with code draining, got %+v", o.apiErr)
	}
}

func TestCompileEndpoint(t *testing.T) {
	s, client := newTestServer(t, testConfig())
	defer s.StopJanitor()

	resp, apiErr, err := client.Compile(context.Background(), CompileRequest{Workload: "fft"})
	if err != nil || apiErr != nil {
		t.Fatalf("err=%v apiErr=%+v", err, apiErr)
	}
	c, cerr := harness.Suite([]string{"fft"}, harness.DefaultCompileOptions())
	if cerr != nil {
		t.Fatal(cerr)
	}
	if resp.Checksum != c[0].Checksum || resp.UsefulInstrs != c[0].UsefulInstrs {
		t.Errorf("compile response %+v disagrees with direct compile (checksum %d, useful %d)",
			resp, c[0].Checksum, c[0].UsefulInstrs)
	}
	if resp.SteerInstrs <= 0 || resp.SelectInstrs <= 0 || resp.RolledInstrs <= 0 {
		t.Errorf("instruction counts missing: %+v", resp)
	}
	// Second compile hits the warm LRU.
	resp2, apiErr, err := client.Compile(context.Background(), CompileRequest{Workload: "fft"})
	if err != nil || apiErr != nil {
		t.Fatalf("err=%v apiErr=%+v", err, apiErr)
	}
	if !resp2.Cached {
		t.Error("second compile of the same workload missed the warm cache")
	}

	_, apiErr, err = client.Compile(context.Background(), CompileRequest{Workload: "no-such-workload"})
	if err != nil {
		t.Fatal(err)
	}
	if apiErr == nil || apiErr.Code != CodeInvalid || apiErr.Status != 400 {
		t.Fatalf("expected 400 invalid for unknown workload, got %+v", apiErr)
	}
}

func TestSweepEndpointMatchesDirectCorpus(t *testing.T) {
	cfg := testConfig()
	cfg.CacheDir = t.TempDir()
	s, client := newTestServer(t, cfg)
	defer s.StopJanitor()

	resp, apiErr, err := client.Sweep(context.Background(), SweepRequest{N: 4, Seed: 9})
	if err != nil || apiErr != nil {
		t.Fatalf("err=%v apiErr=%+v", err, apiErr)
	}
	direct, derr := harness.RunCorpus(harness.CorpusOptions{
		N: 4, Seed: 9,
		Compile: harness.DefaultCompileOptions(),
		Machine: harness.DefaultCorpusMachine(),
	})
	if derr != nil {
		t.Fatal(derr)
	}
	if resp.Table != direct.Table.Render() {
		t.Errorf("served sweep table diverged from direct RunCorpus:\n got:\n%s\nwant:\n%s",
			resp.Table, direct.Table.Render())
	}
	if resp.Mismatched != 0 {
		t.Errorf("sweep reported %d mismatched cells", resp.Mismatched)
	}
	// Re-running the same sweep replays every cell from the corpus cache.
	resp2, apiErr, err := client.Sweep(context.Background(), SweepRequest{N: 4, Seed: 9})
	if err != nil || apiErr != nil {
		t.Fatalf("err=%v apiErr=%+v", err, apiErr)
	}
	if resp2.Computed != 0 || resp2.Cached != 4 {
		t.Errorf("resumed sweep recomputed cells: computed=%d cached=%d", resp2.Computed, resp2.Cached)
	}
	if resp2.Table != resp.Table {
		t.Error("resumed sweep table not byte-identical")
	}

	if _, apiErr, _ = client.Sweep(context.Background(), SweepRequest{N: cfg.SweepMax + 1}); apiErr == nil || apiErr.Code != CodeInvalid {
		t.Fatalf("oversized sweep not rejected: %+v", apiErr)
	}
}

func TestInvalidRequests(t *testing.T) {
	s, client := newTestServer(t, testConfig())
	defer s.StopJanitor()

	cases := []SimulateRequest{
		{},                                     // neither workload nor source
		{Workload: "fft", Source: fastSrc},     // both
		{Source: fastSrc, Binary: "phi"},       // unknown binary
		{Source: fastSrc, Grid: "0x9"},         // grid out of range
		{Source: fastSrc, MemMode: "psychic"},  // unknown memory mode
		{Source: fastSrc, Faults: "defect=x"},  // malformed fault spec
		{Source: fastSrc, Policy: "nonsense"},  // unknown placement policy
		{Source: "func main() { return ;; }"},  // parse error
		{Source: fastSrc, Unroll: 99},          // unroll out of range
	}
	for i, req := range cases {
		_, apiErr, err := client.Simulate(context.Background(), req)
		if err != nil {
			t.Fatalf("case %d: transport error %v", i, err)
		}
		if apiErr == nil || apiErr.Code != CodeInvalid || apiErr.Status != 400 {
			t.Errorf("case %d: expected 400 invalid, got %+v", i, apiErr)
		}
	}
	snaps := s.Snapshot()
	if len(snaps) != 1 || snaps[0].Invalid != uint64(len(cases)) {
		t.Errorf("invalid counter: got %+v, want %d invalid for one tenant", snaps, len(cases))
	}
}

func TestStatsAndHealth(t *testing.T) {
	s, client := newTestServer(t, testConfig())
	defer s.StopJanitor()

	if _, apiErr, err := client.Simulate(context.Background(), SimulateRequest{Source: fastSrc}); err != nil || apiErr != nil {
		t.Fatalf("err=%v apiErr=%+v", err, apiErr)
	}
	body, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "waved per-tenant service metrics") || !strings.Contains(body, "test") {
		t.Errorf("stats page missing expected content:\n%s", body)
	}

	resp, err := client.httpClient().Get(client.BaseURL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz %d while serving", resp.StatusCode)
	}
	if err := s.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	resp, err = client.httpClient().Get(client.BaseURL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("healthz %d while draining, want 503", resp.StatusCode)
	}
}

// TestRetryHintStampede is the regression test for the admission-hint
// stampede: a burst of simultaneously throttled clients must each get a
// hint that is (a) at least 1ms — a truncated-to-zero hint told everyone
// to retry immediately — and (b) spread by deterministic jitter, so the
// herd does not resynchronize on the same retry instant. The jitter is a
// pure function of (tenant, rejection ordinal): an identical server
// receiving the identical rejection sequence produces the identical
// hints.
func TestRetryHintStampede(t *testing.T) {
	mkServer := func() (*Server, *Client) {
		cfg := testConfig()
		// A very high refill rate makes the bucket wait sub-millisecond —
		// the exact case the old truncation turned into "retry now".
		cfg.TenantRate = 5000
		cfg.TenantBurst = 1
		now := time.Unix(1_000_000, 0)
		cfg.now = func() time.Time { return now } // frozen clock: no refills
		return newTestServer(t, cfg)
	}
	collect := func(s *Server, client *Client) []int64 {
		req := SimulateRequest{Source: fastSrc}
		if _, apiErr, err := client.Simulate(context.Background(), req); err != nil || apiErr != nil {
			t.Fatalf("burst request rejected: err=%v apiErr=%+v", err, apiErr)
		}
		hints := make([]int64, 0, 16)
		for i := 0; i < 16; i++ {
			_, apiErr, err := client.Simulate(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if apiErr == nil || apiErr.Code != CodeRateLimited {
				t.Fatalf("request %d: expected 429, got %+v", i, apiErr)
			}
			hints = append(hints, apiErr.RetryAfterMS)
		}
		return hints
	}

	s1, c1 := mkServer()
	defer s1.StopJanitor()
	hints := collect(s1, c1)
	distinct := map[int64]bool{}
	for i, h := range hints {
		if h < 1 {
			t.Errorf("hint %d is %dms; sub-millisecond waits must clamp to >= 1ms", i, h)
		}
		distinct[h] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all %d throttled clients told to retry at the same instant (%v): stampede", len(hints), hints)
	}

	// Determinism: an identical server under the identical sequence.
	s2, c2 := mkServer()
	defer s2.StopJanitor()
	if again := collect(s2, c2); !reflect.DeepEqual(hints, again) {
		t.Errorf("retry hints are not deterministic:\n%v\n%v", hints, again)
	}
}

// TestSimulateShardsInvariant: the per-request engine-shard knob changes
// scheduling, never results — the served result is byte-identical at
// every setting, and because results are invariant the idempotency cache
// is shared across shard settings (the second request replays the
// first's entry).
func TestSimulateShardsInvariant(t *testing.T) {
	cfg := testConfig()
	cfg.CacheDir = t.TempDir()
	s, client := newTestServer(t, cfg)
	defer s.StopJanitor()

	base, apiErr, err := client.Simulate(context.Background(), SimulateRequest{Source: fastSrc})
	if err != nil || apiErr != nil {
		t.Fatalf("err=%v apiErr=%+v", err, apiErr)
	}
	for _, shards := range []int{1, 2, 4} {
		got, apiErr, err := client.Simulate(context.Background(),
			SimulateRequest{Source: fastSrc, Shards: shards})
		if err != nil || apiErr != nil {
			t.Fatalf("shards=%d: err=%v apiErr=%+v", shards, err, apiErr)
		}
		if mustJSON(t, got.Result) != mustJSON(t, base.Result) {
			t.Fatalf("shards=%d result diverged:\n%s\n%s", shards,
				mustJSON(t, got.Result), mustJSON(t, base.Result))
		}
		if !got.Cached {
			t.Errorf("shards=%d recomputed; the cache must be shared across shard settings", shards)
		}
	}
	// Fresh (uncached) compute at shards=4 must also match: distinct
	// source text, simulated twice, once per engine.
	src := fastSrc + "\n// shards-invariance variant\n"
	a, apiErr, err := client.Simulate(context.Background(), SimulateRequest{Source: src})
	if err != nil || apiErr != nil {
		t.Fatalf("err=%v apiErr=%+v", err, apiErr)
	}
	s2, client2 := newTestServer(t, testConfig())
	defer s2.StopJanitor()
	b, apiErr, err := client2.Simulate(context.Background(), SimulateRequest{Source: src, Shards: 4})
	if err != nil || apiErr != nil {
		t.Fatalf("err=%v apiErr=%+v", err, apiErr)
	}
	if mustJSON(t, a.Result) != mustJSON(t, b.Result) {
		t.Fatalf("fresh shards=4 result diverged from sequential:\n%s\n%s",
			mustJSON(t, a.Result), mustJSON(t, b.Result))
	}
	if b.Cached {
		t.Fatal("second server unexpectedly replayed from cache; test proves nothing")
	}

	// Validation: out-of-range shard counts are a 400, not a crash.
	_, apiErr, err = client.Simulate(context.Background(), SimulateRequest{Source: fastSrc, Shards: -1})
	if err != nil {
		t.Fatal(err)
	}
	if apiErr == nil || apiErr.Code != CodeInvalid {
		t.Fatalf("shards=-1 should be invalid, got %+v", apiErr)
	}
}
