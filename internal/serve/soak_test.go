package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wavescalar/internal/harness"
)

// TestSoak drives the service the way a bad day does: hundreds of
// concurrent mixed requests from multiple tenants through a deliberately
// undersized server (4 slots, tiny queue, tight rate limits), with
// deadline-doomed slow simulations and client-side disconnects mixed in,
// finishing with a drain under load. It asserts the robustness contract
// end to end:
//
//   - every 200 is byte-identical to a direct harness run of the same
//     request (including idempotency-cache replays);
//   - every failure is a structured, expected error — 429 rate_limited,
//     503 over_capacity/draining, 504 deadline — never invalid, fault, or
//     internal;
//   - the injected overload actually sheds (the test fails if no 429/503
//     was ever produced — an accidentally infinite queue would pass a
//     weaker test);
//   - drain finishes within budget+grace with in-flight work cancelled;
//   - no goroutines leak and heap stays bounded.
//
// `make soak` runs this under -race.
func TestSoak(t *testing.T) {
	const (
		workers = 64
		tenants = 5
	)
	opsPerWorker := 8 // 512 requests
	if testing.Short() {
		opsPerWorker = 3
	}

	baseline := runtime.NumGoroutine()

	cfg := DefaultConfig()
	cfg.TenantRate = 150
	cfg.TenantBurst = 25
	cfg.MaxConcurrent = 4
	cfg.MaxQueue = 4
	cfg.DefaultDeadline = 30 * time.Second
	cfg.MaxDeadline = 60 * time.Second
	cfg.DrainGrace = 10 * time.Second
	cfg.CacheDir = t.TempDir()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The deterministic simulate scenarios, with expected results computed
	// by the harness directly — no serve code involved.
	simReqs := []SimulateRequest{
		{Source: fastSrc},
		{Source: fastSrc, Binary: "select", Grid: "2x2"},
		{Source: fastSrc, Binary: "rolled", Unroll: 1, MemMode: "serialized"},
		{Workload: "gen:pipeline:7", Grid: "2x2"},
		{Workload: "gen:contention:3", MemMode: "ideal"},
		{Workload: "gen:contention:9", MemMode: "spec"},
		{Source: fastSrc, Faults: "defect=0.1,drop=0.01", FaultSeed: 7},
	}
	want := make([]string, len(simReqs))
	for i, req := range simReqs {
		want[i] = mustJSON(t, directResult(t, req, cfg.MaxCycles))
	}
	wantSweep, err := harness.RunCorpus(harness.CorpusOptions{
		N: 3, Seed: 11,
		Compile: harness.DefaultCompileOptions(),
		Machine: harness.DefaultCorpusMachine(),
	})
	if err != nil {
		t.Fatal(err)
	}

	var (
		okCount, cachedCount, sweepOK           atomic.Int64
		rateLimited, shed, deadlined, clientCut atomic.Int64
		failures                                atomic.Int64
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &Client{
				BaseURL:    ts.URL,
				Tenant:     fmt.Sprintf("tenant-%d", w%tenants),
				HTTPClient: ts.Client(),
			}
			for k := 0; k < opsPerWorker; k++ {
				op := (w*opsPerWorker + k) % 10
				ctx := context.Background()
				switch {
				case op < 6: // deterministic simulations (and cache replays)
					req := simReqs[op]
					resp, apiErr, err := client.Simulate(ctx, req)
					switch {
					case err != nil:
						fail("worker %d op %d: transport: %v", w, k, err)
					case apiErr != nil:
						switch apiErr.Code {
						case CodeRateLimited:
							rateLimited.Add(1)
						case CodeOverCapacity:
							shed.Add(1)
						default:
							fail("worker %d op %d: unexpected error %+v", w, k, apiErr)
						}
					default:
						if got := mustJSON(t, resp.Result); got != want[op] {
							fail("worker %d op %d: result diverged from direct harness\n got: %s\nwant: %s",
								w, k, got, want[op])
						}
						if resp.Cached {
							cachedCount.Add(1)
						} else {
							okCount.Add(1)
						}
					}
				case op == 6: // compile
					resp, apiErr, err := client.Compile(ctx, CompileRequest{Workload: "fft"})
					switch {
					case err != nil:
						fail("worker %d op %d: transport: %v", w, k, err)
					case apiErr != nil:
						if apiErr.Code != CodeRateLimited && apiErr.Code != CodeOverCapacity {
							fail("worker %d op %d: unexpected error %+v", w, k, apiErr)
						}
					case resp.Checksum == 0:
						fail("worker %d op %d: compile returned zero checksum", w, k)
					}
				case op == 7: // bounded sweep (cached after the first)
					resp, apiErr, err := client.Sweep(ctx, SweepRequest{N: 3, Seed: 11})
					switch {
					case err != nil:
						fail("worker %d op %d: transport: %v", w, k, err)
					case apiErr != nil:
						if apiErr.Code != CodeRateLimited && apiErr.Code != CodeOverCapacity {
							fail("worker %d op %d: unexpected error %+v", w, k, apiErr)
						}
					default:
						if resp.Table != wantSweep.Table.Render() {
							fail("worker %d op %d: sweep table diverged from direct RunCorpus", w, k)
						}
						sweepOK.Add(1)
					}
				case op == 8: // deadline-doomed slow simulation
					_, apiErr, err := client.Simulate(ctx,
						SimulateRequest{Source: slowSrc, DeadlineMS: 100})
					switch {
					case err != nil:
						fail("worker %d op %d: transport: %v", w, k, err)
					case apiErr == nil:
						fail("worker %d op %d: slow simulation finished under a 100ms deadline", w, k)
					default:
						switch apiErr.Code {
						case CodeDeadline:
							deadlined.Add(1)
						case CodeRateLimited:
							rateLimited.Add(1)
						case CodeOverCapacity:
							shed.Add(1)
						default:
							fail("worker %d op %d: unexpected error %+v", w, k, apiErr)
						}
					}
				default: // client walks away mid-request
					cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
					resp, apiErr, err := client.Simulate(cctx, SimulateRequest{Source: slowSrc})
					cancel()
					switch {
					case err != nil: // transport aborted by the client's own context: expected
						clientCut.Add(1)
					case apiErr != nil:
						if apiErr.Code != CodeRateLimited && apiErr.Code != CodeOverCapacity {
							fail("worker %d op %d: unexpected error %+v", w, k, apiErr)
						}
					default:
						fail("worker %d op %d: slow simulation finished in 20ms: %+v", w, k, resp)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if okCount.Load()+cachedCount.Load() == 0 {
		t.Error("soak produced no successful simulations")
	}
	if rateLimited.Load()+shed.Load() == 0 {
		t.Error("injected overload produced no 429/503: admission control never engaged")
	}
	if deadlined.Load() == 0 {
		t.Error("no request was cut by its deadline")
	}
	if s.agg.Runs() == 0 {
		t.Error("no simulation runs reached the server-wide metrics aggregate")
	}
	t.Logf("soak: ok=%d cached=%d sweeps=%d rate-limited=%d shed=%d deadlined=%d client-cut=%d",
		okCount.Load(), cachedCount.Load(), sweepOK.Load(),
		rateLimited.Load(), shed.Load(), deadlined.Load(), clientCut.Load())

	// Drain under load: slow simulations in flight (compile is warm by
	// now, so they are inside the simulator's event loop), then SIGTERM
	// semantics — budget expires, in-flight work is cancelled, everything
	// unwinds within grace.
	drainCtx, drainCancelReqs := context.WithCancel(context.Background())
	defer drainCancelReqs()
	var slowWG sync.WaitGroup
	for i := 0; i < cfg.MaxConcurrent; i++ {
		slowWG.Add(1)
		go func() {
			defer slowWG.Done()
			client := &Client{BaseURL: ts.URL, Tenant: "drain-tenant", HTTPClient: ts.Client()}
			_, apiErr, err := client.Simulate(drainCtx, SimulateRequest{Source: slowSrc, DeadlineMS: 30_000})
			if err == nil && apiErr != nil && apiErr.Code != CodeDraining && apiErr.Code != CodeDeadline {
				fail("drain-phase request: unexpected error %+v", apiErr)
			}
		}()
	}
	waitUntil := time.Now().Add(10 * time.Second)
	for len(s.slots) < cfg.MaxConcurrent {
		if time.Now().After(waitUntil) {
			t.Fatal("drain-phase slow requests did not occupy the slots")
		}
		time.Sleep(time.Millisecond)
	}
	t0 := time.Now()
	if err := s.Drain(300 * time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if el := time.Since(t0); el > 300*time.Millisecond+cfg.DrainGrace {
		t.Errorf("drain took %v, over budget+grace", el)
	}
	slowWG.Wait()

	// Flushing metrics after drain must render without panicking and show
	// every tenant.
	table := s.StatsTable().Render()
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		if !strings.Contains(table, name) {
			t.Errorf("stats table missing %s:\n%s", name, table)
		}
	}

	ts.Close()

	// No goroutine leaks: everything the soak spawned — handlers, workers,
	// background compiles, janitor — must unwind. Allow a settle window;
	// background compiles of the slow program take seconds under -race.
	var now int
	for end := time.Now().Add(60 * time.Second); ; {
		runtime.GC()
		now = runtime.NumGoroutine()
		if now <= baseline+3 || time.Now().After(end) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if now > baseline+3 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d at start, %d after soak\n%s",
			baseline, now, buf[:runtime.Stack(buf, true)])
	}

	// Bounded memory: after GC the live heap must be far below anything a
	// leak of 500+ requests' arenas or results would produce.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 1<<30 {
		t.Errorf("live heap %d bytes after soak; memory is not bounded", ms.HeapAlloc)
	}
}
