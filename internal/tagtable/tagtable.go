// Package tagtable provides the allocation-free associative containers the
// simulators' hot paths are built on: an open-addressed hash table from
// uint64 keys to int64 values (Table), and a generic index-addressed slab
// with a freelist (Slab).
//
// A Table replaces map[K]V on paths that insert and delete millions of
// short-lived entries per run (per-instruction operand matching, PE
// residency sets, wave-to-buffer bindings, context metadata): it probes
// linearly from the key's hash, deletes by backward shift so no tombstones
// accumulate, and after its backing array has grown to the run's high-water
// mark it never touches the allocator again. Reset clears the table while
// keeping the backing array, which is what lets a simulator arena be reused
// across runs without reallocating.
//
// Determinism: a Table's observable behaviour (Get/Put/Delete results and
// Len) is a pure function of the operation sequence, like a map's. Range
// visits entries in slot order, which is itself a deterministic function of
// the insertion/deletion history — unlike Go's randomized map iteration —
// so even diagnostics built on Range are reproducible.
package tagtable

// slot is one table position. A slot is empty iff used is false; key zero
// is a legal key (the boot tag Ctx=0/Wave=0 packs to zero), so emptiness
// cannot be encoded in the key itself.
type slot struct {
	key  uint64
	val  int64
	used bool
}

// Table is an open-addressed uint64 -> int64 hash table with linear
// probing and backward-shift deletion. The zero value is an empty table
// ready for use. Not safe for concurrent use.
type Table struct {
	slots []slot
	n     int
	mask  uint64
}

// hash is the splitmix64 finalizer: full-avalanche mixing so that packed
// tags (which differ only in low bits) spread across the table.
func hash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Len reports the number of stored entries.
func (t *Table) Len() int { return t.n }

// Get looks a key up.
func (t *Table) Get(key uint64) (int64, bool) {
	if t.n == 0 {
		return 0, false
	}
	i := hash(key) & t.mask
	for {
		s := &t.slots[i]
		if !s.used {
			return 0, false
		}
		if s.key == key {
			return s.val, true
		}
		i = (i + 1) & t.mask
	}
}

// Put inserts or overwrites a key.
func (t *Table) Put(key uint64, val int64) {
	if len(t.slots) == 0 || t.n >= len(t.slots)*3/4 {
		t.grow()
	}
	i := hash(key) & t.mask
	for {
		s := &t.slots[i]
		if !s.used {
			s.key, s.val, s.used = key, val, true
			t.n++
			return
		}
		if s.key == key {
			s.val = val
			return
		}
		i = (i + 1) & t.mask
	}
}

// Delete removes a key, reporting whether it was present. Removal shifts
// the following probe chain back over the hole, so lookups never cross
// tombstones and long-running churn cannot degrade the table.
func (t *Table) Delete(key uint64) bool {
	if t.n == 0 {
		return false
	}
	i := hash(key) & t.mask
	for {
		s := &t.slots[i]
		if !s.used {
			return false
		}
		if s.key == key {
			break
		}
		i = (i + 1) & t.mask
	}
	// Backward-shift: pull each displaced successor into the hole unless
	// its home position lies cyclically after the hole.
	j := i
	for {
		j = (j + 1) & t.mask
		s := &t.slots[j]
		if !s.used {
			break
		}
		home := hash(s.key) & t.mask
		if (j-home)&t.mask >= (j-i)&t.mask {
			t.slots[i] = *s
			i = j
		}
	}
	t.slots[i] = slot{}
	t.n--
	return true
}

// Range calls f for every entry in slot order; returning false stops the
// walk. The table must not be mutated during the walk.
func (t *Table) Range(f func(key uint64, val int64) bool) {
	for i := range t.slots {
		if t.slots[i].used && !f(t.slots[i].key, t.slots[i].val) {
			return
		}
	}
}

// Reset empties the table, keeping its backing array for reuse.
func (t *Table) Reset() {
	if t.n == 0 {
		return
	}
	clear(t.slots)
	t.n = 0
}

// grow rehashes into a table of at least twice the occupancy.
func (t *Table) grow() {
	newCap := 8
	if len(t.slots) > 0 {
		newCap = len(t.slots) * 2
	}
	old := t.slots
	t.slots = make([]slot, newCap)
	t.mask = uint64(newCap - 1)
	t.n = 0
	for i := range old {
		if old[i].used {
			t.Put(old[i].key, old[i].val)
		}
	}
}

// Slab is an index-addressed allocator for fixed-type records with a
// freelist: Alloc returns the index of a zeroed record, Release recycles
// it, and Reset reclaims everything while keeping the backing array. After
// the backing array reaches a workload's high-water mark, Alloc/Release
// never touch the Go allocator. Indices — not pointers — are the stable
// handles: the backing array may move when it grows.
type Slab[T any] struct {
	items []T
	free  []int32
}

// Alloc returns the index of a zeroed record.
func (s *Slab[T]) Alloc() int32 {
	if n := len(s.free); n > 0 {
		i := s.free[n-1]
		s.free = s.free[:n-1]
		var zero T
		s.items[i] = zero
		return i
	}
	var zero T
	s.items = append(s.items, zero)
	return int32(len(s.items) - 1)
}

// At returns the record at index i. The pointer is invalidated by the next
// Alloc (growth may move the backing array): take it fresh, use it, drop it.
func (s *Slab[T]) At(i int32) *T { return &s.items[i] }

// Release recycles a record's index. Releasing an index twice corrupts the
// freelist; callers own that discipline, as with any manual allocator.
func (s *Slab[T]) Release(i int32) { s.free = append(s.free, i) }

// Reset reclaims every record while keeping both backing arrays.
func (s *Slab[T]) Reset() {
	s.items = s.items[:0]
	s.free = s.free[:0]
}

// Cap reports the backing array's high-water mark (for tests and sizing
// diagnostics).
func (s *Slab[T]) Cap() int { return cap(s.items) }
