package tagtable

import (
	"math/rand"
	"testing"
)

// TestTableDifferential drives a Table and a builtin map through the same
// randomized operation stream and demands identical observable behaviour.
func TestTableDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var tab Table
	ref := map[uint64]int64{}
	keys := make([]uint64, 0, 512)
	for op := 0; op < 200_000; op++ {
		switch r := rng.Intn(10); {
		case r < 4: // insert/overwrite
			k := uint64(rng.Intn(300))
			v := rng.Int63()
			tab.Put(k, v)
			ref[k] = v
			keys = append(keys, k)
		case r < 7: // lookup
			k := uint64(rng.Intn(300))
			gv, gok := tab.Get(k)
			wv, wok := ref[k]
			if gok != wok || gv != wv {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", op, k, gv, gok, wv, wok)
			}
		default: // delete
			k := uint64(rng.Intn(300))
			gok := tab.Delete(k)
			_, wok := ref[k]
			delete(ref, k)
			if gok != wok {
				t.Fatalf("op %d: Delete(%d) = %v want %v", op, k, gok, wok)
			}
		}
		if tab.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d want %d", op, tab.Len(), len(ref))
		}
	}
	// Full sweep at the end.
	seen := map[uint64]int64{}
	tab.Range(func(k uint64, v int64) bool { seen[k] = v; return true })
	if len(seen) != len(ref) {
		t.Fatalf("Range visited %d entries, want %d", len(seen), len(ref))
	}
	for k, v := range ref {
		if seen[k] != v {
			t.Fatalf("Range saw %d=%d, want %d", k, seen[k], v)
		}
	}
}

// TestTableZeroKey pins that key 0 (the packed boot tag) is a first-class
// key, not an empty-slot sentinel.
func TestTableZeroKey(t *testing.T) {
	var tab Table
	tab.Put(0, 42)
	if v, ok := tab.Get(0); !ok || v != 42 {
		t.Fatalf("Get(0) = %d,%v want 42,true", v, ok)
	}
	if !tab.Delete(0) {
		t.Fatal("Delete(0) = false")
	}
	if _, ok := tab.Get(0); ok {
		t.Fatal("key 0 survived deletion")
	}
}

// TestTableResetKeepsCapacity pins the arena contract: Reset empties the
// table without shrinking it, and refilling to the prior occupancy does
// not grow the backing array.
func TestTableResetKeepsCapacity(t *testing.T) {
	var tab Table
	for i := uint64(0); i < 1000; i++ {
		tab.Put(i, int64(i))
	}
	capBefore := len(tab.slots)
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tab.Len())
	}
	if _, ok := tab.Get(7); ok {
		t.Fatal("entry survived Reset")
	}
	for i := uint64(0); i < 1000; i++ {
		tab.Put(i, int64(i))
	}
	if len(tab.slots) != capBefore {
		t.Fatalf("backing array grew across Reset: %d -> %d", capBefore, len(tab.slots))
	}
}

// TestTableChurnStaysAllocationFree pins the steady-state contract: after
// warm-up, insert/lookup/delete churn performs zero allocations.
func TestTableChurnStaysAllocationFree(t *testing.T) {
	var tab Table
	for i := uint64(0); i < 64; i++ {
		tab.Put(i, int64(i))
	}
	for i := uint64(0); i < 64; i++ {
		tab.Delete(i)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := uint64(0); i < 64; i++ {
			tab.Put(i, int64(i))
		}
		for i := uint64(0); i < 64; i++ {
			if _, ok := tab.Get(i); !ok {
				t.Fatal("lost key")
			}
		}
		for i := uint64(0); i < 64; i++ {
			tab.Delete(i)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn allocated %.1f times per run, want 0", allocs)
	}
}

// TestSlab exercises alloc/release/reset and the zeroing guarantee.
func TestSlab(t *testing.T) {
	type rec struct{ a, b int64 }
	var s Slab[rec]
	i := s.Alloc()
	s.At(i).a = 7
	j := s.Alloc()
	s.At(j).b = 9
	if i == j {
		t.Fatal("distinct allocations shared an index")
	}
	s.Release(i)
	k := s.Alloc()
	if k != i {
		t.Fatalf("freelist did not recycle: got %d want %d", k, i)
	}
	if *s.At(k) != (rec{}) {
		t.Fatalf("recycled record not zeroed: %+v", *s.At(k))
	}
	s.Reset()
	if got := s.Alloc(); got != 0 {
		t.Fatalf("first alloc after Reset = %d, want 0", got)
	}
}

// TestSlabChurnStaysAllocationFree pins the freelist contract.
func TestSlabChurnStaysAllocationFree(t *testing.T) {
	var s Slab[[3]int64]
	idx := make([]int32, 32)
	for i := range idx {
		idx[i] = s.Alloc()
	}
	for _, i := range idx {
		s.Release(i)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := range idx {
			idx[i] = s.Alloc()
		}
		for _, i := range idx {
			s.Release(i)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state slab churn allocated %.1f times per run, want 0", allocs)
	}
}

// The benchmarks below compare the Table against the builtin map on the
// simulator's churn pattern: insert a tag, look it up a few times, delete
// it — millions of times per run with a small live population.

const benchLive = 64

func BenchmarkTableChurn(b *testing.B) {
	var tab Table
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := uint64(i)
		tab.Put(k, int64(i))
		tab.Get(k)
		if i >= benchLive {
			tab.Delete(uint64(i - benchLive))
		}
	}
}

func BenchmarkMapChurn(b *testing.B) {
	m := map[uint64]int64{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := uint64(i)
		m[k] = int64(i)
		_ = m[k]
		if i >= benchLive {
			delete(m, uint64(i-benchLive))
		}
	}
}

// BenchmarkOperandMatch* model the pattern the Table actually replaces in
// the WaveCache: per-tag operand-tuple assembly. The first token of a tag
// allocates a tuple and inserts it; the matching token looks it up,
// completes it, and deletes it. The old representation paid a heap
// allocation per tuple (map[Tag]*operands); the Table + Slab pair recycles
// tuple storage through a freelist.

func BenchmarkOperandMatchTable(b *testing.B) {
	type entry struct {
		vals [3]int64
		have uint8
	}
	var tab Table
	var slab Slab[entry]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := uint64(i)
		idx := slab.Alloc()
		e := slab.At(idx)
		e.vals[0], e.have = int64(i), 1
		tab.Put(k, int64(idx))
		got, _ := tab.Get(k)
		e = slab.At(int32(got))
		e.vals[1], e.have = int64(i), 3
		tab.Delete(k)
		slab.Release(int32(got))
	}
}

func BenchmarkOperandMatchMap(b *testing.B) {
	type entry struct {
		vals [3]int64
		have uint8
	}
	m := map[uint64]*entry{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := uint64(i)
		e := &entry{}
		e.vals[0], e.have = int64(i), 1
		m[k] = e
		e = m[k]
		e.vals[1], e.have = int64(i), 3
		delete(m, k)
	}
}

func BenchmarkTableHit(b *testing.B) {
	var tab Table
	for i := uint64(0); i < benchLive; i++ {
		tab.Put(i, int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Get(uint64(i % benchLive))
	}
}

func BenchmarkMapHit(b *testing.B) {
	m := map[uint64]int64{}
	for i := uint64(0); i < benchLive; i++ {
		m[i] = int64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m[uint64(i%benchLive)]
	}
}
