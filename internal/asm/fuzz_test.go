package asm

import (
	"math/rand"
	"strings"
	"testing"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/isa"
	"wavescalar/internal/lang"
	"wavescalar/internal/testprogs"
	"wavescalar/internal/wavec"
)

// compile builds a wsl source through the dataflow backend; unlike
// compileSource it works for both *testing.T and *testing.F callers.
func compile(src string) (*isa.Program, error) {
	f, err := lang.ParseAndCheck(src)
	if err != nil {
		return nil, err
	}
	p, err := cfgir.Build(f)
	if err != nil {
		return nil, err
	}
	for _, fn := range p.Funcs {
		fn.Compact()
	}
	p.Optimize()
	return wavec.Compile(p, wavec.Options{})
}

// fuzzSeeds is the corpus the fuzzers start from: every testprogs binary
// printed to canonical assembly, plus hand-written fragments covering the
// grammar's directives and common malformations.
func fuzzSeeds(t interface {
	Helper()
	Fatalf(format string, args ...any)
}) []string {
	seeds := []string{
		"",
		"memwords 8\nfunc main entry numwaves=1\n  params i0\n  i0: return wave=0\n",
		"memwords 8\nglobal g 0 8 init 5\nfunc main entry numwaves=1\n  params i0\n  i0: const imm=1 wave=0 D[i1.0]\n  i1: return wave=0\n",
		"func f\n  i0: add wave=0 D[i0.0]\n",
		"memwords\nglobal\nfunc\nparams\n",
		"i0: load mem=0.?.$ wave=0",
		"# comment only\n",
		"func main entry numwaves=0\n  params\n",
		"memwords 99999999999999999999\n",
		"func main entry numwaves=1\n  params i9999\n  i0: steer wave=0 D[i1.0] F[i2.0]\n",
	}
	for seed := int64(0); seed < 4; seed++ {
		src := testprogs.Generate(seed)
		wp, err := compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seeds = append(seeds, Print(wp))
	}
	return seeds
}

// FuzzParse is the native fuzz target: the assembly parser must reject or
// accept arbitrary input, never panic, and anything it accepts must
// round-trip through the printer without crashing.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(text)
		if err != nil {
			return // rejecting malformed input is the correct outcome
		}
		// Accepted programs must be printable and re-parseable.
		if _, err := Parse(Print(p)); err != nil {
			t.Fatalf("accepted program does not re-parse: %v\ninput:\n%s", err, text)
		}
	})
}

// TestParseNeverPanics is the deterministic slice of the fuzz surface that
// runs on every `go test`: seeded random mutations (truncation, byte
// splices, token shuffles) of valid assembly, mirroring the style of the
// interp/testprogs differential fuzzers. The parser must return (program,
// nil) or (nil, error) for every mutant — a panic fails the test.
func TestParseNeverPanics(t *testing.T) {
	seeds := fuzzSeeds(t)
	rng := rand.New(rand.NewSource(1))
	mutants := 0
	for _, base := range seeds {
		for i := 0; i < 200; i++ {
			mutants++
			b := []byte(base)
			switch rng.Intn(4) {
			case 0: // truncate
				if len(b) > 0 {
					b = b[:rng.Intn(len(b))]
				}
			case 1: // splice random bytes
				for k := 0; k < 1+rng.Intn(8); k++ {
					pos := rng.Intn(len(b) + 1)
					b = append(b[:pos], append([]byte{byte(rng.Intn(256))}, b[pos:]...)...)
				}
			case 2: // duplicate a random line
				lines := strings.Split(string(b), "\n")
				if len(lines) > 1 {
					l := rng.Intn(len(lines))
					lines = append(lines[:l], append([]string{lines[l]}, lines[l:]...)...)
					b = []byte(strings.Join(lines, "\n"))
				}
			case 3: // shuffle whitespace-separated tokens of one line
				lines := strings.Split(string(b), "\n")
				if len(lines) > 0 {
					l := rng.Intn(len(lines))
					toks := strings.Fields(lines[l])
					rng.Shuffle(len(toks), func(i, j int) { toks[i], toks[j] = toks[j], toks[i] })
					lines[l] = strings.Join(toks, " ")
					b = []byte(strings.Join(lines, "\n"))
				}
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("parser panicked on mutant: %v\n%s", r, b)
					}
				}()
				_, _ = Parse(string(b))
			}()
		}
	}
	t.Logf("parsed %d mutants without panics", mutants)
}
