package asm

import (
	"fmt"
	"strings"

	"wavescalar/internal/isa"
)

// Dot renders a function's dataflow graph in GraphViz format: one node per
// instruction (clustered by static wave), solid edges for data flow, dashed
// edges for steer false paths, and memory annotations in the labels. Pipe
// the output through `dot -Tsvg` to see the graph the WaveCache executes.
func Dot(p *isa.Program, fn isa.FuncID) string {
	f := &p.Funcs[fn]
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", f.Name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\", fontsize=10];\n")

	// Group instructions by wave into subgraph clusters.
	byWave := make(map[int32][]isa.InstrID)
	for ii := range f.Instrs {
		w := f.Instrs[ii].Wave
		byWave[w] = append(byWave[w], isa.InstrID(ii))
	}
	for w := int32(0); w < f.NumWaves || (f.NumWaves == 0 && w == 0); w++ {
		ids := byWave[w]
		if len(ids) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  subgraph cluster_wave%d {\n    label=\"wave %d\";\n    style=dotted;\n", w, w)
		for _, id := range ids {
			in := &f.Instrs[id]
			label := fmt.Sprintf("i%d: %s", id, in.Op)
			if in.Op == isa.OpConst {
				label += fmt.Sprintf(" %d", in.Imm)
			}
			for pt := 0; pt < 3; pt++ {
				if in.ImmMask&(1<<pt) != 0 {
					label += fmt.Sprintf("\\n#%d=%d", pt, in.ImmVals[pt])
				}
			}
			if in.Mem.Kind != isa.MemNone {
				label += "\\n" + strings.ReplaceAll(in.Mem.String(), "\"", "")
			}
			if in.Op == isa.OpSendArg || in.Op == isa.OpNewCtx {
				label += fmt.Sprintf("\\n-> %s", p.Funcs[in.Target].Name)
			}
			shape := ""
			switch {
			case in.Op == isa.OpSteer || in.Op == isa.OpSelect:
				shape = ", shape=diamond"
			case in.Mem.Kind != isa.MemNone:
				shape = ", style=filled, fillcolor=lightgrey"
			case in.Op == isa.OpWaveAdvance:
				shape = ", shape=cds"
			}
			fmt.Fprintf(&b, "    i%d [label=\"%s\"%s];\n", id, label, shape)
		}
		b.WriteString("  }\n")
	}

	for ii := range f.Instrs {
		in := &f.Instrs[ii]
		for _, d := range in.Dests {
			fmt.Fprintf(&b, "  i%d -> i%d [headlabel=\"%d\"];\n", ii, d.Instr, d.Port)
		}
		for _, d := range in.DestsFalse {
			fmt.Fprintf(&b, "  i%d -> i%d [style=dashed, headlabel=\"%d\"];\n", ii, d.Instr, d.Port)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
