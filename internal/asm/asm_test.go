package asm

import (
	"fmt"
	"strings"
	"testing"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/interp"
	"wavescalar/internal/isa"
	"wavescalar/internal/lang"
	"wavescalar/internal/testprogs"
	"wavescalar/internal/wavec"
)

func compileSource(t *testing.T, src string) *isa.Program {
	t.Helper()
	f, err := lang.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfgir.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range p.Funcs {
		fn.Compact()
	}
	p.Optimize()
	wp, err := wavec.Compile(p, wavec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return wp
}

// TestRoundTrip prints and re-parses every corpus binary and checks the
// reconstructed program still validates and executes identically.
func TestRoundTrip(t *testing.T) {
	for _, c := range testprogs.Corpus {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			wp := compileSource(t, c.Src)
			want, err := interp.New(wp, 0).Run()
			if err != nil {
				t.Fatal(err)
			}
			text := Print(wp)
			back, err := Parse(text)
			if err != nil {
				t.Fatalf("parse failed: %v\n%s", err, text)
			}
			got, err := interp.New(back, 0).Run()
			if err != nil {
				t.Fatalf("re-parsed program failed: %v", err)
			}
			if got != want {
				t.Fatalf("round trip changed result: %d -> %d", want, got)
			}
			// And a second print must be byte-identical (canonical form).
			if Print(back) != text {
				t.Error("second print differs from first")
			}
		})
	}
}

func TestHandWrittenProgram(t *testing.T) {
	text := `
memwords 8
global g 0 8 init 5
func main entry numwaves=1
  params i0
  i0: nop wave=0 D[i1.0]
  i1: const imm=37 wave=0 D[i2.0]
  i2: return wave=0
`
	p, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	got, err := interp.New(p, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 37 {
		t.Fatalf("result = %d, want 37", got)
	}
}

func TestHandWrittenSteer(t *testing.T) {
	text := `
memwords 1
func main entry numwaves=1
  params i0
  i0: nop wave=0 D[i1.0 i2.0 i3.1]
  i1: const imm=1 wave=0 D[i3.0]
  i2: const imm=99 wave=0
  i3: steer wave=0 T[i4.0] F[i5.0]
  i4: return wave=0
  i5: return wave=0
`
	p, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	// Trigger value flows through the steer's true side into i4's return;
	// the returned value is the trigger itself (context 0 trigger = 0).
	if _, err := interp.New(p, 0).Run(); err != nil {
		t.Fatal(err)
	}
	in := &p.Funcs[0].Instrs[3]
	if len(in.Dests) != 1 || len(in.DestsFalse) != 1 {
		t.Fatalf("steer dest lists wrong: %v / %v", in.Dests, in.DestsFalse)
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"garbage":          "wibble wobble",
		"bad opcode":       "func main entry numwaves=1\n  params i0\n  i0: frobnicate wave=0",
		"label order":      "func main entry numwaves=1\n  params i0\n  i5: nop wave=0",
		"instr no func":    "i0: nop wave=0",
		"unknown attr":     "func main entry numwaves=1\n  params i0\n  i0: nop wave=0 bogus=1",
		"unterminated":     "func main entry numwaves=1\n  params i0\n  i0: nop wave=0 D[i1.0",
		"bad dest":         "func main entry numwaves=1\n  params i0\n  i0: nop wave=0 D[x.0]",
		"bad mem":          "func main entry numwaves=1\n  params i0\n  i0: nop wave=0 mem=load,0",
		"unknown target":   "func main entry numwaves=1\n  params i0\n  i0: new-ctx target=nope:0 wave=0\n",
		"invalid validate": "memwords 4\nfunc main entry numwaves=1\n  params i0\n  i0: nop wave=0 D[i9.0]",
	}
	for name, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func TestPrintContainsAnnotations(t *testing.T) {
	wp := compileSource(t, "global a[4];\nfunc main() { a[0] = 7; return a[0]; }")
	text := Print(wp)
	for _, want := range []string{"mem=store,", "mem=load,", "mem=end,", "touches", "memwords", "global a 0 4"} {
		if !strings.Contains(text, want) {
			t.Errorf("assembly missing %q:\n%s", want, text)
		}
	}
}

func TestDotExport(t *testing.T) {
	wp := compileSource(t, "global a[4];\nfunc main() { for var i = 0; i < 4; i = i + 1 { a[i] = i; } return a[2]; }")
	dot := Dot(wp, wp.Entry)
	for _, want := range []string{"digraph", "cluster_wave", "->", "steer", "diamond", "dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
	// Every instruction must appear as a node.
	f := &wp.Funcs[wp.Entry]
	for i := range f.Instrs {
		if !strings.Contains(dot, fmt.Sprintf("i%d [", i)) {
			t.Errorf("instruction i%d missing from dot output", i)
		}
	}
}
