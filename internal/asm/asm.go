// Package asm defines the textual WaveScalar assembly format: a readable,
// round-trippable serialization of isa.Program used by the compiler CLI,
// the examples, and anyone who wants to write dataflow graphs by hand.
//
// Format sketch:
//
//	memwords 1024
//	global a 0 10 init 1 2 3
//	func main touches numwaves=3
//	  params i0
//	  i0: nop wave=0 D[i1.0] ; pad 0
//	  i1: const imm=42 wave=0 D[i2.1]
//	  i2: steer wave=0 T[i3.0] F[i4.0]
//	  i3: load mem=load,0,^,1 wave=1 D[i5.0]
//	  i4: new-ctx target=f:9 mem=call,1,0,$ wave=1 D[i6.0]
//	  i5: return mem=end,2,1,$ wave=1
//
// Sequence sentinels render as '^' (start), '$' (end), and '?' (wildcard).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"wavescalar/internal/isa"
)

// Print renders a program as assembly text.
func Print(p *isa.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "memwords %d\n", p.MemWords)
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "global %s %d %d", g.Name, g.Addr, g.Size)
		if len(g.Init) > 0 {
			b.WriteString(" init")
			for _, v := range g.Init {
				fmt.Fprintf(&b, " %d", v)
			}
		}
		b.WriteByte('\n')
	}
	for fi := range p.Funcs {
		f := &p.Funcs[fi]
		fmt.Fprintf(&b, "func %s", f.Name)
		if isa.FuncID(fi) == p.Entry {
			b.WriteString(" entry")
		}
		if f.TouchesMemory {
			b.WriteString(" touches")
		}
		fmt.Fprintf(&b, " numwaves=%d\n", f.NumWaves)
		b.WriteString("  params")
		for _, pad := range f.Params {
			fmt.Fprintf(&b, " i%d", pad)
		}
		b.WriteByte('\n')
		for ii := range f.Instrs {
			printInstr(&b, p, isa.InstrID(ii), &f.Instrs[ii])
		}
	}
	return b.String()
}

func printInstr(b *strings.Builder, p *isa.Program, id isa.InstrID, in *isa.Instruction) {
	fmt.Fprintf(b, "  i%d: %s", id, in.Op)
	if in.Op == isa.OpConst {
		fmt.Fprintf(b, " imm=%d", in.Imm)
	}
	for p := 0; p < 3; p++ {
		if in.ImmMask&(1<<p) != 0 {
			fmt.Fprintf(b, " imm%d=%d", p, in.ImmVals[p])
		}
	}
	if in.Op == isa.OpSendArg || in.Op == isa.OpNewCtx {
		fmt.Fprintf(b, " target=%s:%d", p.Funcs[in.Target].Name, in.TargetPad)
	}
	if in.Mem.Kind != isa.MemNone {
		fmt.Fprintf(b, " mem=%s,%s,%s,%s", memKindName(in.Mem.Kind),
			seqText(in.Mem.Seq), seqText(in.Mem.Pred), seqText(in.Mem.Succ))
	}
	fmt.Fprintf(b, " wave=%d", in.Wave)
	if in.Op == isa.OpSteer {
		fmt.Fprintf(b, " T%s F%s", destsText(in.Dests), destsText(in.DestsFalse))
	} else if len(in.Dests) > 0 {
		fmt.Fprintf(b, " D%s", destsText(in.Dests))
	}
	if in.Comment != "" {
		fmt.Fprintf(b, " ; %s", in.Comment)
	}
	b.WriteByte('\n')
}

func destsText(ds []isa.Dest) string {
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = fmt.Sprintf("i%d.%d", d.Instr, d.Port)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func seqText(s int32) string {
	switch s {
	case isa.SeqWildcard:
		return "?"
	case isa.SeqStart:
		return "^"
	case isa.SeqEnd:
		return "$"
	}
	return strconv.FormatInt(int64(s), 10)
}

func memKindName(k isa.MemKind) string {
	switch k {
	case isa.MemLoad:
		return "load"
	case isa.MemStore:
		return "store"
	case isa.MemNop:
		return "nop"
	case isa.MemCall:
		return "call"
	case isa.MemEnd:
		return "end"
	}
	return "none"
}

var opByName = func() map[string]isa.Opcode {
	m := make(map[string]isa.Opcode)
	for op := isa.Opcode(0); ; op++ {
		name := op.String()
		if strings.HasPrefix(name, "opcode(") {
			break
		}
		m[name] = op
	}
	return m
}()

var memKindByName = map[string]isa.MemKind{
	"load": isa.MemLoad, "store": isa.MemStore, "nop": isa.MemNop,
	"call": isa.MemCall, "end": isa.MemEnd,
}

// Parse reads assembly text back into a program and validates it.
func Parse(text string) (*isa.Program, error) {
	p := &isa.Program{Entry: isa.NoFunc}
	var cur *isa.Function
	// Call targets are by name; resolve after all functions are read.
	type fixup struct {
		fn    int
		instr int
		name  string
	}
	var fixups []fixup

	lines := strings.Split(text, "\n")
	for ln, raw := range lines {
		line := raw
		comment := ""
		if i := strings.Index(line, ";"); i >= 0 {
			comment = strings.TrimSpace(line[i+1:])
			line = line[:i]
		}
		// Destination lists contain spaces; pull them out before field
		// splitting.
		attrs, dests, derr := splitDestGroups(line)
		if derr != nil {
			return nil, fmt.Errorf("asm: line %d: %v", ln+1, derr)
		}
		fields := strings.Fields(attrs)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("asm: line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "memwords":
			if len(fields) != 2 {
				return nil, fail("memwords wants one argument")
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fail("bad memwords: %v", err)
			}
			p.MemWords = v
		case "global":
			if len(fields) < 4 {
				return nil, fail("global wants name, addr, size")
			}
			g := isa.Global{Name: fields[1]}
			var err error
			if g.Addr, err = strconv.ParseInt(fields[2], 10, 64); err != nil {
				return nil, fail("bad addr: %v", err)
			}
			if g.Size, err = strconv.ParseInt(fields[3], 10, 64); err != nil {
				return nil, fail("bad size: %v", err)
			}
			if len(fields) > 4 {
				if fields[4] != "init" {
					return nil, fail("expected 'init', got %q", fields[4])
				}
				for _, fv := range fields[5:] {
					v, err := strconv.ParseInt(fv, 10, 64)
					if err != nil {
						return nil, fail("bad init value %q", fv)
					}
					g.Init = append(g.Init, v)
				}
			}
			p.Globals = append(p.Globals, g)
		case "func":
			if len(fields) < 2 {
				return nil, fail("func wants a name")
			}
			p.Funcs = append(p.Funcs, isa.Function{Name: fields[1]})
			cur = &p.Funcs[len(p.Funcs)-1]
			for _, f := range fields[2:] {
				switch {
				case f == "entry":
					p.Entry = isa.FuncID(len(p.Funcs) - 1)
				case f == "touches":
					cur.TouchesMemory = true
				case strings.HasPrefix(f, "numwaves="):
					v, err := strconv.ParseInt(f[len("numwaves="):], 10, 32)
					if err != nil {
						return nil, fail("bad numwaves: %v", err)
					}
					cur.NumWaves = int32(v)
				default:
					return nil, fail("unknown func attribute %q", f)
				}
			}
		case "params":
			if cur == nil {
				return nil, fail("params outside a function")
			}
			for _, f := range fields[1:] {
				id, err := parseInstrID(f)
				if err != nil {
					return nil, fail("bad param pad %q", f)
				}
				cur.Params = append(cur.Params, id)
			}
		default:
			if cur == nil {
				return nil, fail("instruction outside a function")
			}
			// "iN:" opcode attrs...
			if !strings.HasSuffix(fields[0], ":") {
				return nil, fail("expected instruction label, got %q", fields[0])
			}
			id, err := parseInstrID(strings.TrimSuffix(fields[0], ":"))
			if err != nil {
				return nil, fail("bad label %q", fields[0])
			}
			if int(id) != len(cur.Instrs) {
				return nil, fail("label i%d out of order (expected i%d)", id, len(cur.Instrs))
			}
			if len(fields) < 2 {
				return nil, fail("missing opcode")
			}
			op, ok := opByName[fields[1]]
			if !ok {
				return nil, fail("unknown opcode %q", fields[1])
			}
			in := isa.Instruction{Op: op, Target: isa.NoFunc}
			for _, f := range fields[2:] {
				switch {
				case strings.HasPrefix(f, "imm0="), strings.HasPrefix(f, "imm1="), strings.HasPrefix(f, "imm2="):
					port := f[3] - '0'
					v, err := strconv.ParseInt(f[5:], 10, 64)
					if err != nil {
						return nil, fail("bad port immediate: %v", err)
					}
					in.ImmMask |= 1 << port
					in.ImmVals[port] = v
				case strings.HasPrefix(f, "imm="):
					v, err := strconv.ParseInt(f[4:], 10, 64)
					if err != nil {
						return nil, fail("bad imm: %v", err)
					}
					in.Imm = v
				case strings.HasPrefix(f, "wave="):
					v, err := strconv.ParseInt(f[5:], 10, 32)
					if err != nil {
						return nil, fail("bad wave: %v", err)
					}
					in.Wave = int32(v)
				case strings.HasPrefix(f, "target="):
					spec := f[7:]
					colon := strings.LastIndex(spec, ":")
					if colon < 0 {
						return nil, fail("target wants name:pad")
					}
					pad, err := strconv.ParseInt(spec[colon+1:], 10, 32)
					if err != nil {
						return nil, fail("bad target pad: %v", err)
					}
					in.TargetPad = int32(pad)
					fixups = append(fixups, fixup{fn: len(p.Funcs) - 1, instr: len(cur.Instrs), name: spec[:colon]})
				case strings.HasPrefix(f, "mem="):
					parts := strings.Split(f[4:], ",")
					if len(parts) != 4 {
						return nil, fail("mem wants kind,seq,pred,succ")
					}
					kind, ok := memKindByName[parts[0]]
					if !ok {
						return nil, fail("unknown mem kind %q", parts[0])
					}
					seq, err1 := parseSeq(parts[1])
					pred, err2 := parseSeq(parts[2])
					succ, err3 := parseSeq(parts[3])
					if err1 != nil || err2 != nil || err3 != nil {
						return nil, fail("bad mem sequence numbers in %q", f)
					}
					in.Mem = isa.MemOrder{Kind: kind, Seq: seq, Pred: pred, Succ: succ}
				default:
					return nil, fail("unknown attribute %q", f)
				}
			}
			if op == isa.OpSteer {
				in.Dests = dests["T"]
				in.DestsFalse = dests["F"]
			} else {
				in.Dests = dests["D"]
			}
			in.Comment = comment
			cur.Instrs = append(cur.Instrs, in)
		}
	}
	for _, fx := range fixups {
		found := isa.NoFunc
		for i := range p.Funcs {
			if p.Funcs[i].Name == fx.name {
				found = isa.FuncID(i)
				break
			}
		}
		if found == isa.NoFunc {
			return nil, fmt.Errorf("asm: unknown call target %q", fx.name)
		}
		p.Funcs[fx.fn].Instrs[fx.instr].Target = found
	}
	if p.Entry == isa.NoFunc {
		for i := range p.Funcs {
			if p.Funcs[i].Name == "main" {
				p.Entry = isa.FuncID(i)
				break
			}
		}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("asm: parsed program invalid: %w", err)
	}
	return p, nil
}

func parseInstrID(s string) (isa.InstrID, error) {
	if !strings.HasPrefix(s, "i") {
		return 0, fmt.Errorf("want iN, got %q", s)
	}
	v, err := strconv.ParseInt(s[1:], 10, 32)
	if err != nil {
		return 0, err
	}
	return isa.InstrID(v), nil
}

func parseSeq(s string) (int32, error) {
	switch s {
	case "?":
		return isa.SeqWildcard, nil
	case "^":
		return isa.SeqStart, nil
	case "$":
		return isa.SeqEnd, nil
	}
	v, err := strconv.ParseInt(s, 10, 32)
	return int32(v), err
}

// splitDestGroups removes the D[...], T[...], F[...] groups from a line,
// returning the remaining attribute text and the parsed lists keyed by
// group letter.
func splitDestGroups(line string) (string, map[string][]isa.Dest, error) {
	dests := make(map[string][]isa.Dest)
	var rest strings.Builder
	for i := 0; i < len(line); {
		if i+1 < len(line) && line[i+1] == '[' &&
			(line[i] == 'D' || line[i] == 'T' || line[i] == 'F') &&
			(i == 0 || line[i-1] == ' ' || line[i-1] == '\t') {
			j := strings.IndexByte(line[i:], ']')
			if j < 0 {
				return "", nil, fmt.Errorf("unterminated %c[ list", line[i])
			}
			lst, err := parseDestList(line[i+2 : i+j])
			if err != nil {
				return "", nil, err
			}
			dests[string(line[i])] = lst
			i += j + 1
			continue
		}
		rest.WriteByte(line[i])
		i++
	}
	return rest.String(), dests, nil
}

func parseDestList(body string) ([]isa.Dest, error) {
	var out []isa.Dest
	for _, tok := range strings.Fields(body) {
		dot := strings.LastIndex(tok, ".")
		if dot < 0 {
			return nil, fmt.Errorf("bad destination %q", tok)
		}
		id, err := parseInstrID(tok[:dot])
		if err != nil {
			return nil, fmt.Errorf("bad destination %q: %v", tok, err)
		}
		port, err := strconv.ParseInt(tok[dot+1:], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("bad destination port %q", tok)
		}
		out = append(out, isa.Dest{Instr: id, Port: uint8(port)})
	}
	return out, nil
}
