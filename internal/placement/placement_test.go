package placement

import (
	"testing"
	"testing/quick"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/isa"
	"wavescalar/internal/lang"
	"wavescalar/internal/profile"
	"wavescalar/internal/wavec"
)

func testProgram(t *testing.T) *isa.Program {
	t.Helper()
	src := `func helper(x) { return x * 3 + 1; } func main() { var s = 0; for var i = 0; i < 10; i = i + 1 { s = s + helper(i); } return s; }`
	f, err := lang.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfgir.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range p.Funcs {
		fn.Compact()
	}
	p.Optimize()
	wp, err := wavec.Compile(p, wavec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return wp
}

// must unwraps a constructor whose machine the test knows to be valid.
func must(pol Policy, err error) Policy {
	if err != nil {
		panic(err)
	}
	return pol
}

func TestMachineGeometry(t *testing.T) {
	m := DefaultMachine(4, 4)
	if m.NumClusters() != 16 || m.PEsPerCluster() != 32 || m.NumPEs() != 512 {
		t.Fatalf("geometry: clusters=%d pes/cluster=%d pes=%d",
			m.NumClusters(), m.PEsPerCluster(), m.NumPEs())
	}
	// Loc must be a bijection onto valid coordinates.
	seen := make(map[[3]int]bool)
	for pe := 0; pe < m.NumPEs(); pe++ {
		l := m.Loc(pe)
		if l.Cluster < 0 || l.Cluster >= 16 || l.Domain < 0 || l.Domain >= 4 || l.Pod < 0 || l.Pod >= 4 {
			t.Fatalf("PE %d has invalid loc %+v", pe, l)
		}
		seen[[3]int{l.Cluster, l.Domain, l.Pod}] = true
	}
	// 2 PEs share each pod, so distinct (cluster,domain,pod) = NumPEs/2.
	if len(seen) != m.NumPEs()/2 {
		t.Fatalf("loc coverage %d, want %d", len(seen), m.NumPEs()/2)
	}
}

func TestSnakeIsPermutationAndLocal(t *testing.T) {
	m := DefaultMachine(3, 3)
	seen := make(map[int]bool)
	prevCluster := -1
	for i := 0; i < m.NumPEs(); i++ {
		pe := m.SnakePE(i)
		if seen[pe] {
			t.Fatalf("snake repeats PE %d at step %d", pe, i)
		}
		seen[pe] = true
		c := m.Loc(pe).Cluster
		if prevCluster >= 0 && c != prevCluster {
			// Consecutive snake clusters must be mesh neighbours.
			dx := abs(c%3 - prevCluster%3)
			dy := abs(c/3 - prevCluster/3)
			if dx+dy != 1 {
				t.Fatalf("snake jumps from cluster %d to %d", prevCluster, c)
			}
		}
		prevCluster = c
	}
	if len(seen) != m.NumPEs() {
		t.Fatalf("snake covered %d PEs, want %d", len(seen), m.NumPEs())
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestPoliciesAreStableAndInRange(t *testing.T) {
	wp := testProgram(t)
	m := DefaultMachine(2, 2)
	m.Capacity = 4
	for _, name := range Names() {
		pol, err := New(name, m, wp, 42)
		if err != nil {
			t.Fatal(err)
		}
		if pol.Name() != name {
			t.Errorf("%s: Name() = %q", name, pol.Name())
		}
		assignments := make(map[profile.InstrRef]int)
		for fi := range wp.Funcs {
			for ii := range wp.Funcs[fi].Instrs {
				ref := profile.InstrRef{Func: isa.FuncID(fi), Instr: isa.InstrID(ii)}
				pe := pol.Assign(ref)
				if pe < 0 || pe >= m.NumPEs() {
					t.Fatalf("%s: PE %d out of range", name, pe)
				}
				assignments[ref] = pe
			}
		}
		// Assign must be idempotent.
		for ref, pe := range assignments {
			if got := pol.Assign(ref); got != pe {
				t.Errorf("%s: assignment of %v moved %d -> %d", name, ref, pe, got)
			}
		}
	}
}

func TestDynamicSnakePacksInOrder(t *testing.T) {
	m := DefaultMachine(1, 1)
	m.Capacity = 2
	pol := must(NewDynamicSnake(m))
	r := func(i int) profile.InstrRef { return profile.InstrRef{Func: 0, Instr: isa.InstrID(i)} }
	// First two references share PE snake(0); next two share snake(1).
	p0, p1, p2, p3 := pol.Assign(r(10)), pol.Assign(r(5)), pol.Assign(r(99)), pol.Assign(r(1))
	if p0 != p1 || p2 != p3 || p0 == p2 {
		t.Fatalf("packing wrong: %d %d %d %d", p0, p1, p2, p3)
	}
	if p0 != m.SnakePE(0) || p2 != m.SnakePE(1) {
		t.Fatalf("fill order not snake order: %d %d", p0, p2)
	}
}

func TestDepthFirstKeepsChainsTogether(t *testing.T) {
	wp := testProgram(t)
	m := DefaultMachine(4, 4) // plenty of room
	pol := must(NewDepthFirstSnake(m, wp))
	// A producer and its first consumer should usually share a PE. Count
	// how many dataflow edges stay intra-PE and require a majority.
	intra, total := 0, 0
	for fi := range wp.Funcs {
		f := &wp.Funcs[fi]
		for ii := range f.Instrs {
			src := pol.Assign(profile.InstrRef{Func: isa.FuncID(fi), Instr: isa.InstrID(ii)})
			for _, d := range f.Instrs[ii].Dests {
				dst := pol.Assign(profile.InstrRef{Func: isa.FuncID(fi), Instr: d.Instr})
				total++
				if src == dst {
					intra++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no edges")
	}
	frac := float64(intra) / float64(total)
	if frac < 0.25 {
		t.Errorf("depth-first chains keep only %.0f%% of edges intra-PE", frac*100)
	}

	// Random placement on the same program should do much worse.
	rnd := must(NewRandom(m, 7))
	rintra := 0
	for fi := range wp.Funcs {
		f := &wp.Funcs[fi]
		for ii := range f.Instrs {
			src := rnd.Assign(profile.InstrRef{Func: isa.FuncID(fi), Instr: isa.InstrID(ii)})
			for _, d := range f.Instrs[ii].Dests {
				if src == rnd.Assign(profile.InstrRef{Func: isa.FuncID(fi), Instr: d.Instr}) {
					rintra++
				}
			}
		}
	}
	if rintra >= intra {
		t.Errorf("random placement (%d intra-PE edges) beats depth-first (%d)", rintra, intra)
	}
}

func TestDynamicDFSPlacesWholeChain(t *testing.T) {
	wp := testProgram(t)
	m := DefaultMachine(1, 1)
	m.Capacity = 8
	pol := must(NewDynamicDFS(m, wp)).(*dynamicDFS)
	ref := profile.InstrRef{Func: wp.Entry, Instr: 0}
	pol.Assign(ref)
	chain := pol.chainOf[ref]
	if len(chain) == 0 {
		t.Fatal("instruction 0 has no chain")
	}
	for _, id := range chain {
		if _, ok := pol.homes[profile.InstrRef{Func: wp.Entry, Instr: id}]; !ok {
			t.Fatalf("chain member i%d not placed with its chain", id)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	m := DefaultMachine(2, 2)
	prop := func(seed uint64, instr uint8) bool {
		a := must(NewRandom(m, seed))
		b := must(NewRandom(m, seed))
		ref := profile.InstrRef{Func: 0, Instr: isa.InstrID(instr)}
		return a.Assign(ref) == b.Assign(ref)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackedRandomFills(t *testing.T) {
	m := DefaultMachine(2, 1)
	m.Capacity = 4
	pol := must(NewPackedRandom(m, 99))
	counts := make(map[int]int)
	for i := 0; i < 4*m.NumPEs(); i++ {
		pe := pol.Assign(profile.InstrRef{Func: 0, Instr: isa.InstrID(i)})
		counts[pe]++
	}
	// Exactly Capacity instructions per PE when fully filled.
	for pe, n := range counts {
		if n != 4 {
			t.Errorf("PE %d holds %d homes, want 4", pe, n)
		}
	}
	if len(counts) != m.NumPEs() {
		t.Errorf("used %d PEs, want %d", len(counts), m.NumPEs())
	}
}

func TestNewUnknownPolicy(t *testing.T) {
	if _, err := New("nope", DefaultMachine(1, 1), nil, 0); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestFillWrapsAround(t *testing.T) {
	m := DefaultMachine(1, 1)
	m.Capacity = 1
	pol := must(NewDynamicSnake(m))
	n := m.NumPEs()
	first := pol.Assign(profile.InstrRef{Func: 0, Instr: 0})
	for i := 1; i < n; i++ {
		pol.Assign(profile.InstrRef{Func: 0, Instr: isa.InstrID(i)})
	}
	wrapped := pol.Assign(profile.InstrRef{Func: 0, Instr: isa.InstrID(n)})
	if wrapped != first {
		t.Errorf("fill did not wrap: first=%d wrapped=%d", first, wrapped)
	}
}
