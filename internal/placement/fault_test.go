package placement

import (
	"errors"
	"strings"
	"testing"

	"wavescalar/internal/fault"
	"wavescalar/internal/isa"
	"wavescalar/internal/profile"
)

// defectMachine returns a small machine with the given PEs marked defective.
func defectMachine(w, h int, dead ...int) Machine {
	m := DefaultMachine(w, h)
	m.Defective = make([]bool, m.NumPEs())
	for _, pe := range dead {
		m.Defective[pe] = true
	}
	return m
}

func allRefs(wp *isa.Program) []profile.InstrRef {
	var refs []profile.InstrRef
	for fi := range wp.Funcs {
		for ii := range wp.Funcs[fi].Instrs {
			refs = append(refs, profile.InstrRef{Func: isa.FuncID(fi), Instr: isa.InstrID(ii)})
		}
	}
	return refs
}

// TestDefectivePENeverAssigned: no policy may home an instruction on a PE
// the defect map marks dead, even under capacity pressure that forces
// wrap-around scans.
func TestDefectivePENeverAssigned(t *testing.T) {
	wp := testProgram(t)
	m := defectMachine(2, 2, 0, 3, 7, 31, 64, 127)
	m.Capacity = 2 // force heavy wrap-around
	for _, name := range Names() {
		pol, err := New(name, m, wp, 42)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range allRefs(wp) {
			pe := pol.Assign(ref)
			if pe < 0 || pe >= m.NumPEs() {
				t.Fatalf("%s: PE %d out of range", name, pe)
			}
			if m.Defective[pe] {
				t.Fatalf("%s: assigned %v to defective PE %d", name, ref, pe)
			}
		}
	}
}

// TestMarkDefectiveEvicts: after a mid-run MarkDefective every policy must
// re-home the evicted instructions on live PEs, deterministically.
func TestMarkDefectiveEvicts(t *testing.T) {
	wp := testProgram(t)
	refs := allRefs(wp)
	for _, name := range Names() {
		m := DefaultMachine(2, 2)
		pol, err := New(name, m, wp, 42)
		if err != nil {
			t.Fatal(err)
		}
		before := make(map[profile.InstrRef]int)
		victims := map[int]bool{}
		for _, ref := range refs {
			before[ref] = pol.Assign(ref)
			victims[before[ref]] = true
		}
		rc, ok := pol.(Reconfigurable)
		if !ok {
			t.Fatalf("%s does not implement Reconfigurable", name)
		}
		// Kill one PE that actually holds instructions.
		var dead int
		for pe := range victims {
			dead = pe
			break
		}
		if err := rc.MarkDefective(dead); err != nil {
			t.Fatalf("%s: MarkDefective(%d): %v", name, dead, err)
		}
		for _, ref := range refs {
			pe := pol.Assign(ref)
			if pe == dead {
				t.Fatalf("%s: %v still homed on killed PE %d", name, ref, dead)
			}
			if before[ref] != dead && pe != before[ref] {
				t.Errorf("%s: %v moved %d -> %d though its PE survived", name, ref, before[ref], pe)
			}
		}
	}
}

// TestMarkDefectiveLastPE: killing the only remaining usable PE must be
// refused with an error — the machine cannot run with zero PEs.
func TestMarkDefectiveLastPE(t *testing.T) {
	wp := testProgram(t)
	m := DefaultMachine(1, 1)
	m.Defective = make([]bool, m.NumPEs())
	for i := 1; i < m.NumPEs(); i++ {
		m.Defective[i] = true
	}
	pol, err := New("dynamic-snake", m, wp, 1)
	if err != nil {
		t.Fatal(err)
	}
	rc := pol.(Reconfigurable)
	if err := rc.MarkDefective(0); err == nil {
		t.Fatal("marking the last usable PE defective must fail")
	}
	if err := rc.MarkDefective(-1); err == nil {
		t.Fatal("out-of-range PE must fail")
	}
	if err := rc.MarkDefective(m.NumPEs()); err == nil {
		t.Fatal("out-of-range PE must fail")
	}
}

// TestNewValidatesDefectMap: New must reject malformed defect maps with
// descriptive errors rather than misbehave later.
func TestNewValidatesDefectMap(t *testing.T) {
	wp := testProgram(t)
	m := DefaultMachine(1, 1)
	m.Defective = make([]bool, 3) // wrong length
	if _, err := New("dynamic-snake", m, wp, 1); err == nil ||
		!strings.Contains(err.Error(), "defect map") {
		t.Fatalf("wrong-length map: err = %v", err)
	}
	m.Defective = make([]bool, m.NumPEs())
	for i := range m.Defective {
		m.Defective[i] = true
	}
	if _, err := New("dynamic-snake", m, wp, 1); err == nil ||
		!strings.Contains(err.Error(), "usable") {
		t.Fatalf("all-defective map: err = %v", err)
	}
}

// TestAllDefectiveGridRejected: every constructor — not just the New
// dispatcher — must return a structured config error when the defect map
// disables the whole grid, instead of panicking "no usable PE found" on
// the first Assign.
func TestAllDefectiveGridRejected(t *testing.T) {
	wp := testProgram(t)
	m := DefaultMachine(1, 1)
	m.Defective = make([]bool, m.NumPEs())
	for i := range m.Defective {
		m.Defective[i] = true
	}
	ctors := map[string]func() (Policy, error){
		"dynamic-snake":    func() (Policy, error) { return NewDynamicSnake(m) },
		"static-snake":     func() (Policy, error) { return NewStaticSnake(m, wp) },
		"depthfirst-snake": func() (Policy, error) { return NewDepthFirstSnake(m, wp) },
		"dynamic-dfs":      func() (Policy, error) { return NewDynamicDFS(m, wp) },
		"random":           func() (Policy, error) { return NewRandom(m, 1) },
		"packed-random":    func() (Policy, error) { return NewPackedRandom(m, 1) },
	}
	for name, ctor := range ctors {
		pol, err := ctor()
		if err == nil {
			t.Errorf("%s: all-defective grid accepted", name)
			continue
		}
		if pol != nil {
			t.Errorf("%s: non-nil policy alongside error", name)
		}
		var fe *fault.FaultError
		if !errors.As(err, &fe) || fe.Kind != fault.KindConfig {
			t.Errorf("%s: err = %v, want *fault.FaultError with KindConfig", name, err)
		}
		if !strings.Contains(err.Error(), "usable") {
			t.Errorf("%s: error %q does not explain the defect map", name, err)
		}
	}
}

// TestUsablePEs: the accounting helper placement and the simulator share.
func TestUsablePEs(t *testing.T) {
	m := DefaultMachine(1, 1)
	if m.UsablePEs() != m.NumPEs() {
		t.Fatalf("nil map: usable %d, want %d", m.UsablePEs(), m.NumPEs())
	}
	m = defectMachine(1, 1, 0, 1, 2)
	if m.UsablePEs() != m.NumPEs()-3 {
		t.Fatalf("usable %d, want %d", m.UsablePEs(), m.NumPEs()-3)
	}
}

// TestDefectPlacementDeterministic: with a defect map installed, placement
// remains a pure function of (policy, machine, program, seed).
func TestDefectPlacementDeterministic(t *testing.T) {
	wp := testProgram(t)
	for _, name := range Names() {
		m := defectMachine(2, 2, 2, 5, 11, 40)
		a, err := New(name, m, wp, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(name, m, wp, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range allRefs(wp) {
			if a.Assign(ref) != b.Assign(ref) {
				t.Fatalf("%s: assignment of %v not deterministic", name, ref)
			}
		}
	}
}
