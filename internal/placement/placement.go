// Package placement implements instruction placement for the WaveCache:
// the policy that chooses which processing element becomes each static
// instruction's home. The MICRO 2003 WaveCache binds instructions to PEs
// dynamically, in the order execution first references them, filling PEs
// along a "snake" path through the grid; the follow-on placement work
// (SPAA 2006) names this dynamic-snake and compares it against static,
// depth-first, random, and combined variants — all implemented here.
package placement

import (
	"fmt"

	"wavescalar/internal/fault"
	"wavescalar/internal/isa"
	"wavescalar/internal/noc"
	"wavescalar/internal/profile"
	"wavescalar/internal/trace"
)

// Machine describes the PE topology placement targets.
type Machine struct {
	GridW, GridH      int
	DomainsPerCluster int
	PodsPerDomain     int
	PEsPerPod         int
	// Capacity is the number of instruction homes a policy packs per PE
	// before moving on (normally the PE instruction-store size).
	Capacity int

	// Defective marks PEs dead at configuration time (manufacturing
	// defects): policies treat them as non-placeable and route around
	// them. nil means a fully working machine. fault.DefectMap derives a
	// deterministic map from a fault seed; New validates that at least
	// one PE remains usable. Policies copy this slice at construction, so
	// callers may reuse the Machine value freely.
	Defective []bool
}

// UsablePEs counts the PEs available for placement.
func (m Machine) UsablePEs() int {
	n := m.NumPEs()
	for _, d := range m.Defective {
		if d {
			n--
		}
	}
	return n
}

// DefaultMachine returns the published topology: 4 domains of 4 pods of 2
// PEs per cluster, 64-instruction PE stores, on a w x h cluster grid.
func DefaultMachine(w, h int) Machine {
	return Machine{
		GridW: w, GridH: h,
		DomainsPerCluster: 4,
		PodsPerDomain:     4,
		PEsPerPod:         2,
		Capacity:          64,
	}
}

// NumClusters returns the cluster count.
func (m Machine) NumClusters() int { return m.GridW * m.GridH }

// PEsPerCluster returns PEs in one cluster.
func (m Machine) PEsPerCluster() int {
	return m.DomainsPerCluster * m.PodsPerDomain * m.PEsPerPod
}

// NumPEs returns the total PE count.
func (m Machine) NumPEs() int { return m.NumClusters() * m.PEsPerCluster() }

// Loc maps a PE index to its place in the communication hierarchy.
func (m Machine) Loc(pe int) noc.Loc {
	perCluster := m.PEsPerCluster()
	cluster := pe / perCluster
	rem := pe % perCluster
	domain := rem / (m.PodsPerDomain * m.PEsPerPod)
	pod := (rem % (m.PodsPerDomain * m.PEsPerPod)) / m.PEsPerPod
	return noc.Loc{Cluster: cluster, Domain: domain, Pod: pod}
}

// SnakePE returns the i-th PE along the snake path: PEs sequential within a
// cluster, clusters visited in boustrophedon row order so consecutive
// clusters are always mesh neighbours.
func (m Machine) SnakePE(i int) int {
	perCluster := m.PEsPerCluster()
	ci := i / perCluster
	within := i % perCluster
	row := ci / m.GridW
	col := ci % m.GridW
	if row%2 == 1 {
		col = m.GridW - 1 - col
	}
	return (row*m.GridW+col)*perCluster + within
}

// Policy assigns a home PE to each static instruction. Assign is called
// once per instruction, the first time the simulator needs its home; the
// call order is the dynamic first-reference order, which dynamic policies
// exploit.
type Policy interface {
	Name() string
	Assign(ref profile.InstrRef) int
}

// Reconfigurable policies support fault-aware re-placement: MarkDefective
// withdraws a PE mid-run (a hard fault detected by the machine), evicting
// its instruction homes, and the next Assign for an evicted instruction
// migrates it to a live PE. Marking the last usable PE defective is refused
// with an error — that machine cannot execute anything. All built-in
// policies implement this interface.
type Reconfigurable interface {
	MarkDefective(pe int) error
}

// validateMachine rejects machines no policy can place onto: a degenerate
// topology, a defect map that does not match the PE count, or one that
// leaves no PE usable. Every constructor calls it, so a successfully
// constructed policy always has at least one usable PE — the invariant
// that keeps Assign total. Failures are structured configuration faults.
func validateMachine(m Machine) error {
	if m.NumPEs() < 1 {
		return &fault.FaultError{Kind: fault.KindConfig, PE: -1,
			Detail: fmt.Sprintf("placement: machine has no PEs (%dx%d grid, %d per cluster)",
				m.GridW, m.GridH, m.PEsPerCluster())}
	}
	if m.Capacity < 1 {
		return &fault.FaultError{Kind: fault.KindConfig, PE: -1,
			Detail: fmt.Sprintf("placement: non-positive PE capacity %d", m.Capacity)}
	}
	if m.Defective != nil {
		if len(m.Defective) != m.NumPEs() {
			return &fault.FaultError{Kind: fault.KindConfig, PE: -1,
				Detail: fmt.Sprintf("placement: defect map has %d entries for %d PEs",
					len(m.Defective), m.NumPEs())}
		}
		if m.UsablePEs() == 0 {
			return &fault.FaultError{Kind: fault.KindConfig, PE: -1,
				Detail: fmt.Sprintf("placement: no usable PEs (all %d defective)", m.NumPEs())}
		}
	}
	return nil
}

// fill allocates PE slots along an arbitrary PE order, Capacity per PE,
// wrapping when the machine is exhausted and skipping defective PEs.
type fill struct {
	m     Machine
	order func(i int) int
	next  int
	// defective is the policy's own defect map (config-time defects plus
	// mid-run kills); policy-owned so Machine values stay shareable.
	defective []bool
}

func newFill(m Machine, order func(i int) int) fill {
	f := fill{m: m, order: order}
	if m.Defective != nil {
		f.defective = append([]bool(nil), m.Defective...)
	}
	return f
}

func (f *fill) dead(pe int) bool {
	return f.defective != nil && pe < len(f.defective) && f.defective[pe]
}

// take allocates the next instruction home, skipping dead PEs by jumping to
// the next PE boundary along the order. At least one usable PE is
// guaranteed by validateMachine (at construction) and markDefective
// (mid-run), which bounds the scan; should that invariant ever break, take
// falls back to a deterministic linear scan for any live PE rather than
// panicking, so a library bug degrades a result instead of crashing the
// caller's process.
func (f *fill) take() int {
	n := f.m.NumPEs()
	for skips := 0; skips <= n; skips++ {
		pe := f.order((f.next / f.m.Capacity) % n)
		if f.dead(pe) {
			f.next = (f.next/f.m.Capacity + 1) * f.m.Capacity
			continue
		}
		f.next++
		return pe
	}
	for pe := 0; pe < n; pe++ {
		if !f.dead(pe) {
			return pe
		}
	}
	return 0
}

func (f *fill) markDefective(pe int) error {
	if pe < 0 || pe >= f.m.NumPEs() {
		return fmt.Errorf("placement: PE %d out of range [0,%d)", pe, f.m.NumPEs())
	}
	if f.defective == nil {
		f.defective = make([]bool, f.m.NumPEs())
	}
	if !f.defective[pe] {
		usable := 0
		for _, d := range f.defective {
			if !d {
				usable++
			}
		}
		if usable <= 1 {
			return fmt.Errorf("placement: cannot mark PE %d defective: no usable PEs would remain", pe)
		}
		f.defective[pe] = true
	}
	return nil
}

// evictHomes withdraws every instruction homed on a dead PE so the next
// Assign re-places it.
func evictHomes(homes map[profile.InstrRef]int, pe int) {
	for ref, p := range homes {
		if p == pe {
			delete(homes, ref)
		}
	}
}

// --- dynamic-snake -----------------------------------------------------

// dynamicSnake fills PEs along the snake in dynamic first-reference order:
// the MICRO 2003 WaveCache's own policy. PEs hold only instructions that
// actually execute, which the SPAA 2006 study found best for PE contention.
type dynamicSnake struct {
	fill
	homes map[profile.InstrRef]int
}

// NewDynamicSnake builds the policy.
func NewDynamicSnake(m Machine) (Policy, error) {
	if err := validateMachine(m); err != nil {
		return nil, err
	}
	ds := &dynamicSnake{homes: make(map[profile.InstrRef]int)}
	ds.fill = newFill(m, m.SnakePE)
	return ds, nil
}

func (d *dynamicSnake) Name() string { return "dynamic-snake" }

func (d *dynamicSnake) Assign(ref profile.InstrRef) int {
	if pe, ok := d.homes[ref]; ok {
		return pe
	}
	pe := d.take()
	d.homes[ref] = pe
	return pe
}

func (d *dynamicSnake) MarkDefective(pe int) error {
	if err := d.fill.markDefective(pe); err != nil {
		return err
	}
	evictHomes(d.homes, pe)
	return nil
}

// --- static-snake ------------------------------------------------------

// staticSnake packs instructions along the snake in static program order,
// whether or not they ever execute. The fill is retained so instructions
// evicted by a mid-run PE death can re-place.
type staticSnake struct {
	fill
	homes map[profile.InstrRef]int
}

// NewStaticSnake precomputes the placement for a program.
func NewStaticSnake(m Machine, p *isa.Program) (Policy, error) {
	if err := validateMachine(m); err != nil {
		return nil, err
	}
	s := &staticSnake{homes: make(map[profile.InstrRef]int)}
	s.fill = newFill(m, m.SnakePE)
	for fi := range p.Funcs {
		for ii := range p.Funcs[fi].Instrs {
			s.homes[profile.InstrRef{Func: isa.FuncID(fi), Instr: isa.InstrID(ii)}] = s.take()
		}
	}
	return s, nil
}

func (s *staticSnake) Name() string { return "static-snake" }

func (s *staticSnake) Assign(ref profile.InstrRef) int {
	if pe, ok := s.homes[ref]; ok {
		return pe
	}
	pe := s.take() // home evicted by a PE death: migrate
	s.homes[ref] = pe
	return pe
}

func (s *staticSnake) MarkDefective(pe int) error {
	if err := s.fill.markDefective(pe); err != nil {
		return err
	}
	evictHomes(s.homes, pe)
	return nil
}

// --- depth-first chains ------------------------------------------------

// dfsChains decomposes each function's dataflow graph into producer/
// consumer chains by depth-first search: each chain is a path of dependent
// instructions that should share a PE so their operands ride the free
// intra-pod bypass.
func dfsChains(f *isa.Function) [][]isa.InstrID {
	visited := make([]bool, len(f.Instrs))
	var chains [][]isa.InstrID
	var descend func(id isa.InstrID, chain []isa.InstrID) []isa.InstrID
	descend = func(id isa.InstrID, chain []isa.InstrID) []isa.InstrID {
		visited[id] = true
		chain = append(chain, id)
		in := &f.Instrs[id]
		for _, lst := range [][]isa.Dest{in.Dests, in.DestsFalse} {
			for _, d := range lst {
				if !visited[d.Instr] {
					return descend(d.Instr, chain)
				}
			}
		}
		return chain
	}
	for ii := range f.Instrs {
		if !visited[ii] {
			chains = append(chains, descend(isa.InstrID(ii), nil))
		}
	}
	return chains
}

// depthFirstSnake places DFS chains contiguously along the snake in static
// chain order: the best policy for operand latency in the SPAA 2006 study.
type depthFirstSnake struct {
	fill
	homes map[profile.InstrRef]int
}

// NewDepthFirstSnake precomputes the placement.
func NewDepthFirstSnake(m Machine, p *isa.Program) (Policy, error) {
	if err := validateMachine(m); err != nil {
		return nil, err
	}
	s := &depthFirstSnake{homes: make(map[profile.InstrRef]int)}
	s.fill = newFill(m, m.SnakePE)
	for fi := range p.Funcs {
		for _, chain := range dfsChains(&p.Funcs[fi]) {
			for _, id := range chain {
				s.homes[profile.InstrRef{Func: isa.FuncID(fi), Instr: id}] = s.take()
			}
		}
	}
	return s, nil
}

func (s *depthFirstSnake) Name() string { return "depth-first-snake" }

func (s *depthFirstSnake) Assign(ref profile.InstrRef) int {
	if pe, ok := s.homes[ref]; ok {
		return pe
	}
	pe := s.take() // home evicted by a PE death: migrate
	s.homes[ref] = pe
	return pe
}

func (s *depthFirstSnake) MarkDefective(pe int) error {
	if err := s.fill.markDefective(pe); err != nil {
		return err
	}
	evictHomes(s.homes, pe)
	return nil
}

// --- dynamic-depth-first-snake ------------------------------------------

// dynamicDFS is the improved algorithm of the placement study: instructions
// are grouped into DFS chains (like depth-first-snake) but chains are
// packed into PEs in dynamic first-reference order (like dynamic-snake), so
// PEs hold only chains that execute and dependent instructions still share
// the bypass network.
type dynamicDFS struct {
	fill
	homes   map[profile.InstrRef]int
	chainOf map[profile.InstrRef][]isa.InstrID
}

// NewDynamicDFS builds the policy for a program.
func NewDynamicDFS(m Machine, p *isa.Program) (Policy, error) {
	if err := validateMachine(m); err != nil {
		return nil, err
	}
	d := &dynamicDFS{
		homes:   make(map[profile.InstrRef]int),
		chainOf: make(map[profile.InstrRef][]isa.InstrID),
	}
	d.fill = newFill(m, m.SnakePE)
	for fi := range p.Funcs {
		for _, chain := range dfsChains(&p.Funcs[fi]) {
			for _, id := range chain {
				d.chainOf[profile.InstrRef{Func: isa.FuncID(fi), Instr: id}] = chain
			}
		}
	}
	return d, nil
}

func (d *dynamicDFS) Name() string { return "dynamic-depth-first-snake" }

func (d *dynamicDFS) Assign(ref profile.InstrRef) int {
	if pe, ok := d.homes[ref]; ok {
		return pe
	}
	// First reference to any member of the chain places the whole chain.
	chain := d.chainOf[ref]
	for _, id := range chain {
		r := profile.InstrRef{Func: ref.Func, Instr: id}
		if _, ok := d.homes[r]; !ok {
			d.homes[r] = d.take()
		}
	}
	return d.homes[ref]
}

func (d *dynamicDFS) MarkDefective(pe int) error {
	if err := d.fill.markDefective(pe); err != nil {
		return err
	}
	evictHomes(d.homes, pe)
	return nil
}

// --- random ------------------------------------------------------------

// randomPolicy scatters instructions uniformly over the usable PEs.
type randomPolicy struct {
	m         Machine
	state     uint64
	homes     map[profile.InstrRef]int
	defective []bool
	usable    int
}

// NewRandom builds a seeded random placement.
func NewRandom(m Machine, seed uint64) (Policy, error) {
	if err := validateMachine(m); err != nil {
		return nil, err
	}
	r := &randomPolicy{m: m, state: seed | 1, homes: make(map[profile.InstrRef]int),
		usable: m.UsablePEs()}
	if m.Defective != nil {
		r.defective = append([]bool(nil), m.Defective...)
	}
	return r, nil
}

func (r *randomPolicy) Name() string { return "random" }

func (r *randomPolicy) dead(pe int) bool {
	return r.defective != nil && pe < len(r.defective) && r.defective[pe]
}

func (r *randomPolicy) Assign(ref profile.InstrRef) int {
	if pe, ok := r.homes[ref]; ok {
		return pe
	}
	n := r.m.NumPEs()
	pe := 0
	// Rejection-sample a live PE; after a bounded number of draws fall
	// back to a linear scan so a heavily defective machine still assigns
	// in O(NumPEs) deterministically.
	for draws := 0; ; draws++ {
		r.state = r.state*6364136223846793005 + 1442695040888963407
		pe = int((r.state >> 33) % uint64(n))
		if !r.dead(pe) {
			break
		}
		if draws >= 64 {
			for r.dead(pe) {
				pe = (pe + 1) % n
			}
			break
		}
	}
	r.homes[ref] = pe
	return pe
}

func (r *randomPolicy) MarkDefective(pe int) error {
	if pe < 0 || pe >= r.m.NumPEs() {
		return fmt.Errorf("placement: PE %d out of range [0,%d)", pe, r.m.NumPEs())
	}
	if r.defective == nil {
		r.defective = make([]bool, r.m.NumPEs())
	}
	if !r.defective[pe] {
		if r.usable <= 1 {
			return fmt.Errorf("placement: cannot mark PE %d defective: no usable PEs would remain", pe)
		}
		r.defective[pe] = true
		r.usable--
		evictHomes(r.homes, pe)
	}
	return nil
}

// packedRandom fills PEs densely (capacity-aware like dynamic-snake) but
// visits PEs in a seeded random permutation, destroying locality while
// keeping packing.
type packedRandom struct {
	fill
	homes map[profile.InstrRef]int
}

// NewPackedRandom builds the policy.
func NewPackedRandom(m Machine, seed uint64) (Policy, error) {
	if err := validateMachine(m); err != nil {
		return nil, err
	}
	perm := make([]int, m.NumPEs())
	for i := range perm {
		perm[i] = i
	}
	state := seed | 1
	for i := len(perm) - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int((state >> 33) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	pr := &packedRandom{homes: make(map[profile.InstrRef]int)}
	pr.fill = newFill(m, func(i int) int { return perm[i] })
	return pr, nil
}

func (p *packedRandom) Name() string { return "packed-random" }

func (p *packedRandom) Assign(ref profile.InstrRef) int {
	if pe, ok := p.homes[ref]; ok {
		return pe
	}
	pe := p.take()
	p.homes[ref] = pe
	return pe
}

func (p *packedRandom) MarkDefective(pe int) error {
	if err := p.fill.markDefective(pe); err != nil {
		return err
	}
	evictHomes(p.homes, pe)
	return nil
}

// New constructs a policy by name; prog may be nil for policies that do not
// inspect the program. The machine is validated by the constructor: a
// defect map must match the PE count and leave at least one PE usable, so
// an all-defective grid is a structured configuration error here rather
// than a failure mid-placement.
func New(name string, m Machine, prog *isa.Program, seed uint64) (Policy, error) {
	switch name {
	case "dynamic-snake":
		return NewDynamicSnake(m)
	case "static-snake":
		return NewStaticSnake(m, prog)
	case "depth-first-snake":
		return NewDepthFirstSnake(m, prog)
	case "dynamic-depth-first-snake":
		return NewDynamicDFS(m, prog)
	case "random":
		return NewRandom(m, seed)
	case "packed-random":
		return NewPackedRandom(m, seed)
	}
	if ctor, ok := registered[name]; ok {
		return ctor(m, prog, seed)
	}
	return nil, fmt.Errorf("placement: unknown policy %q", name)
}

// Ctor builds a registered policy; it receives exactly New's arguments.
type Ctor func(m Machine, prog *isa.Program, seed uint64) (Policy, error)

var (
	registered      = map[string]Ctor{}
	registeredOrder []string
)

// Register adds an externally implemented policy under name, making it
// reachable through New and visible in Names. Registration happens from
// package init functions (e.g. internal/placemodel's profile-feedback
// policy, which cannot live here without an import cycle); duplicate or
// built-in-shadowing names panic, as that is a programming error.
func Register(name string, ctor Ctor) {
	for _, n := range builtinNames {
		if n == name {
			panic("placement: Register would shadow built-in policy " + name)
		}
	}
	if _, dup := registered[name]; dup {
		panic("placement: duplicate policy registration " + name)
	}
	registered[name] = ctor
	registeredOrder = append(registeredOrder, name)
}

// Traced wraps a policy so every fresh home assignment — and every
// migration after a PE death — is recorded in the tracer as a placement
// event. With a nil tracer the policy is returned unwrapped, so the
// disabled path costs nothing. The wrapper preserves Reconfigurable.
func Traced(pol Policy, tr *trace.Tracer) Policy {
	if tr == nil {
		return pol
	}
	return &traced{pol: pol, tr: tr, seen: make(map[profile.InstrRef]int)}
}

type traced struct {
	pol  Policy
	tr   *trace.Tracer
	seen map[profile.InstrRef]int
}

func (t *traced) Name() string { return t.pol.Name() }

func (t *traced) Assign(ref profile.InstrRef) int {
	pe := t.pol.Assign(ref)
	if prev, ok := t.seen[ref]; !ok || prev != pe {
		t.seen[ref] = pe
		t.tr.Place(int(ref.Func), int(ref.Instr), pe)
	}
	return pe
}

func (t *traced) MarkDefective(pe int) error {
	rc, ok := t.pol.(Reconfigurable)
	if !ok {
		return fmt.Errorf("placement: policy %q is not reconfigurable", t.pol.Name())
	}
	return rc.MarkDefective(pe)
}

var builtinNames = []string{
	"dynamic-snake",
	"static-snake",
	"depth-first-snake",
	"dynamic-depth-first-snake",
	"random",
	"packed-random",
}

// Names lists the available policies: the built-ins followed by registered
// external policies in registration order (deterministic — init order is
// fixed by the import graph).
func Names() []string {
	out := make([]string, 0, len(builtinNames)+len(registeredOrder))
	out = append(out, builtinNames...)
	out = append(out, registeredOrder...)
	return out
}
