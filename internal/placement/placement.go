// Package placement implements instruction placement for the WaveCache:
// the policy that chooses which processing element becomes each static
// instruction's home. The MICRO 2003 WaveCache binds instructions to PEs
// dynamically, in the order execution first references them, filling PEs
// along a "snake" path through the grid; the follow-on placement work
// (SPAA 2006) names this dynamic-snake and compares it against static,
// depth-first, random, and combined variants — all implemented here.
package placement

import (
	"fmt"

	"wavescalar/internal/isa"
	"wavescalar/internal/noc"
	"wavescalar/internal/profile"
)

// Machine describes the PE topology placement targets.
type Machine struct {
	GridW, GridH      int
	DomainsPerCluster int
	PodsPerDomain     int
	PEsPerPod         int
	// Capacity is the number of instruction homes a policy packs per PE
	// before moving on (normally the PE instruction-store size).
	Capacity int
}

// DefaultMachine returns the published topology: 4 domains of 4 pods of 2
// PEs per cluster, 64-instruction PE stores, on a w x h cluster grid.
func DefaultMachine(w, h int) Machine {
	return Machine{
		GridW: w, GridH: h,
		DomainsPerCluster: 4,
		PodsPerDomain:     4,
		PEsPerPod:         2,
		Capacity:          64,
	}
}

// NumClusters returns the cluster count.
func (m Machine) NumClusters() int { return m.GridW * m.GridH }

// PEsPerCluster returns PEs in one cluster.
func (m Machine) PEsPerCluster() int {
	return m.DomainsPerCluster * m.PodsPerDomain * m.PEsPerPod
}

// NumPEs returns the total PE count.
func (m Machine) NumPEs() int { return m.NumClusters() * m.PEsPerCluster() }

// Loc maps a PE index to its place in the communication hierarchy.
func (m Machine) Loc(pe int) noc.Loc {
	perCluster := m.PEsPerCluster()
	cluster := pe / perCluster
	rem := pe % perCluster
	domain := rem / (m.PodsPerDomain * m.PEsPerPod)
	pod := (rem % (m.PodsPerDomain * m.PEsPerPod)) / m.PEsPerPod
	return noc.Loc{Cluster: cluster, Domain: domain, Pod: pod}
}

// SnakePE returns the i-th PE along the snake path: PEs sequential within a
// cluster, clusters visited in boustrophedon row order so consecutive
// clusters are always mesh neighbours.
func (m Machine) SnakePE(i int) int {
	perCluster := m.PEsPerCluster()
	ci := i / perCluster
	within := i % perCluster
	row := ci / m.GridW
	col := ci % m.GridW
	if row%2 == 1 {
		col = m.GridW - 1 - col
	}
	return (row*m.GridW+col)*perCluster + within
}

// Policy assigns a home PE to each static instruction. Assign is called
// once per instruction, the first time the simulator needs its home; the
// call order is the dynamic first-reference order, which dynamic policies
// exploit.
type Policy interface {
	Name() string
	Assign(ref profile.InstrRef) int
}

// fill allocates PE slots along an arbitrary PE order, Capacity per PE,
// wrapping when the machine is exhausted.
type fill struct {
	m     Machine
	order func(i int) int
	next  int
}

func (f *fill) take() int {
	pe := f.order((f.next / f.m.Capacity) % f.m.NumPEs())
	f.next++
	return pe
}

// --- dynamic-snake -----------------------------------------------------

// dynamicSnake fills PEs along the snake in dynamic first-reference order:
// the MICRO 2003 WaveCache's own policy. PEs hold only instructions that
// actually execute, which the SPAA 2006 study found best for PE contention.
type dynamicSnake struct {
	fill
	homes map[profile.InstrRef]int
}

// NewDynamicSnake builds the policy.
func NewDynamicSnake(m Machine) Policy {
	ds := &dynamicSnake{homes: make(map[profile.InstrRef]int)}
	ds.m = m
	ds.order = m.SnakePE
	return ds
}

func (d *dynamicSnake) Name() string { return "dynamic-snake" }

func (d *dynamicSnake) Assign(ref profile.InstrRef) int {
	if pe, ok := d.homes[ref]; ok {
		return pe
	}
	pe := d.take()
	d.homes[ref] = pe
	return pe
}

// --- static-snake ------------------------------------------------------

// staticSnake packs instructions along the snake in static program order,
// whether or not they ever execute.
type staticSnake struct {
	homes map[profile.InstrRef]int
}

// NewStaticSnake precomputes the placement for a program.
func NewStaticSnake(m Machine, p *isa.Program) Policy {
	s := &staticSnake{homes: make(map[profile.InstrRef]int)}
	f := fill{m: m, order: m.SnakePE}
	for fi := range p.Funcs {
		for ii := range p.Funcs[fi].Instrs {
			s.homes[profile.InstrRef{Func: isa.FuncID(fi), Instr: isa.InstrID(ii)}] = f.take()
		}
	}
	return s
}

func (s *staticSnake) Name() string { return "static-snake" }

func (s *staticSnake) Assign(ref profile.InstrRef) int { return s.homes[ref] }

// --- depth-first chains ------------------------------------------------

// dfsChains decomposes each function's dataflow graph into producer/
// consumer chains by depth-first search: each chain is a path of dependent
// instructions that should share a PE so their operands ride the free
// intra-pod bypass.
func dfsChains(f *isa.Function) [][]isa.InstrID {
	visited := make([]bool, len(f.Instrs))
	var chains [][]isa.InstrID
	var descend func(id isa.InstrID, chain []isa.InstrID) []isa.InstrID
	descend = func(id isa.InstrID, chain []isa.InstrID) []isa.InstrID {
		visited[id] = true
		chain = append(chain, id)
		in := &f.Instrs[id]
		for _, lst := range [][]isa.Dest{in.Dests, in.DestsFalse} {
			for _, d := range lst {
				if !visited[d.Instr] {
					return descend(d.Instr, chain)
				}
			}
		}
		return chain
	}
	for ii := range f.Instrs {
		if !visited[ii] {
			chains = append(chains, descend(isa.InstrID(ii), nil))
		}
	}
	return chains
}

// depthFirstSnake places DFS chains contiguously along the snake in static
// chain order: the best policy for operand latency in the SPAA 2006 study.
type depthFirstSnake struct {
	homes map[profile.InstrRef]int
}

// NewDepthFirstSnake precomputes the placement.
func NewDepthFirstSnake(m Machine, p *isa.Program) Policy {
	s := &depthFirstSnake{homes: make(map[profile.InstrRef]int)}
	f := fill{m: m, order: m.SnakePE}
	for fi := range p.Funcs {
		for _, chain := range dfsChains(&p.Funcs[fi]) {
			for _, id := range chain {
				s.homes[profile.InstrRef{Func: isa.FuncID(fi), Instr: id}] = f.take()
			}
		}
	}
	return s
}

func (s *depthFirstSnake) Name() string { return "depth-first-snake" }

func (s *depthFirstSnake) Assign(ref profile.InstrRef) int { return s.homes[ref] }

// --- dynamic-depth-first-snake ------------------------------------------

// dynamicDFS is the improved algorithm of the placement study: instructions
// are grouped into DFS chains (like depth-first-snake) but chains are
// packed into PEs in dynamic first-reference order (like dynamic-snake), so
// PEs hold only chains that execute and dependent instructions still share
// the bypass network.
type dynamicDFS struct {
	fill
	homes   map[profile.InstrRef]int
	chainOf map[profile.InstrRef][]isa.InstrID
}

// NewDynamicDFS builds the policy for a program.
func NewDynamicDFS(m Machine, p *isa.Program) Policy {
	d := &dynamicDFS{
		homes:   make(map[profile.InstrRef]int),
		chainOf: make(map[profile.InstrRef][]isa.InstrID),
	}
	d.m = m
	d.order = m.SnakePE
	for fi := range p.Funcs {
		for _, chain := range dfsChains(&p.Funcs[fi]) {
			for _, id := range chain {
				d.chainOf[profile.InstrRef{Func: isa.FuncID(fi), Instr: id}] = chain
			}
		}
	}
	return d
}

func (d *dynamicDFS) Name() string { return "dynamic-depth-first-snake" }

func (d *dynamicDFS) Assign(ref profile.InstrRef) int {
	if pe, ok := d.homes[ref]; ok {
		return pe
	}
	// First reference to any member of the chain places the whole chain.
	chain := d.chainOf[ref]
	for _, id := range chain {
		r := profile.InstrRef{Func: ref.Func, Instr: id}
		if _, ok := d.homes[r]; !ok {
			d.homes[r] = d.take()
		}
	}
	return d.homes[ref]
}

// --- random ------------------------------------------------------------

// randomPolicy scatters instructions uniformly over all PEs.
type randomPolicy struct {
	m     Machine
	state uint64
	homes map[profile.InstrRef]int
}

// NewRandom builds a seeded random placement.
func NewRandom(m Machine, seed uint64) Policy {
	return &randomPolicy{m: m, state: seed | 1, homes: make(map[profile.InstrRef]int)}
}

func (r *randomPolicy) Name() string { return "random" }

func (r *randomPolicy) Assign(ref profile.InstrRef) int {
	if pe, ok := r.homes[ref]; ok {
		return pe
	}
	r.state = r.state*6364136223846793005 + 1442695040888963407
	pe := int((r.state >> 33) % uint64(r.m.NumPEs()))
	r.homes[ref] = pe
	return pe
}

// packedRandom fills PEs densely (capacity-aware like dynamic-snake) but
// visits PEs in a seeded random permutation, destroying locality while
// keeping packing.
type packedRandom struct {
	fill
	homes map[profile.InstrRef]int
}

// NewPackedRandom builds the policy.
func NewPackedRandom(m Machine, seed uint64) Policy {
	perm := make([]int, m.NumPEs())
	for i := range perm {
		perm[i] = i
	}
	state := seed | 1
	for i := len(perm) - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int((state >> 33) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	pr := &packedRandom{homes: make(map[profile.InstrRef]int)}
	pr.m = m
	pr.order = func(i int) int { return perm[i] }
	return pr
}

func (p *packedRandom) Name() string { return "packed-random" }

func (p *packedRandom) Assign(ref profile.InstrRef) int {
	if pe, ok := p.homes[ref]; ok {
		return pe
	}
	pe := p.take()
	p.homes[ref] = pe
	return pe
}

// New constructs a policy by name; prog may be nil for policies that do not
// inspect the program.
func New(name string, m Machine, prog *isa.Program, seed uint64) (Policy, error) {
	switch name {
	case "dynamic-snake":
		return NewDynamicSnake(m), nil
	case "static-snake":
		return NewStaticSnake(m, prog), nil
	case "depth-first-snake":
		return NewDepthFirstSnake(m, prog), nil
	case "dynamic-depth-first-snake":
		return NewDynamicDFS(m, prog), nil
	case "random":
		return NewRandom(m, seed), nil
	case "packed-random":
		return NewPackedRandom(m, seed), nil
	}
	return nil, fmt.Errorf("placement: unknown policy %q", name)
}

// Names lists the available policies.
func Names() []string {
	return []string{
		"dynamic-snake",
		"static-snake",
		"depth-first-snake",
		"dynamic-depth-first-snake",
		"random",
		"packed-random",
	}
}
