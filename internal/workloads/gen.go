package workloads

import (
	"fmt"
	"sync"

	"wavescalar/internal/testprogs"
)

// Generated corpus programs are addressable as workloads under
// "gen:family:seed[:size]" names (testprogs.CorpusSpec.Name). They are
// synthesized on demand and never appear in Names()/All — the static
// benchmark suite and every experiment table stay exactly as before —
// but anything that resolves workloads by name (waveexp -benches, the
// harness) can pull an individual corpus program for a closer look.
var (
	genMu    sync.Mutex
	genCache = map[string]*Workload{}
)

// synthesize resolves a "gen:..." name to a generated workload, or nil if
// the name does not parse as a corpus spec.
func synthesize(name string) *Workload {
	spec, ok := testprogs.ParseSpecName(name)
	if !ok {
		return nil
	}
	genMu.Lock()
	defer genMu.Unlock()
	if w, ok := genCache[name]; ok {
		return w
	}
	src, err := testprogs.GenerateSpec(spec)
	if err != nil {
		return nil
	}
	w := &Workload{
		Name:        name,
		Mirrors:     "generated corpus (" + spec.Family + " family)",
		Description: fmt.Sprintf("Seeded %s-family corpus program (seed %d, size %d); reproduced bit-for-bit by its spec.", spec.Family, spec.Seed, spec.Size),
		Src:         src,
	}
	genCache[name] = w
	return w
}
