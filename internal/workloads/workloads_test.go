package workloads

import (
	"testing"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/lang"
)

func TestAllWorkloadsEvaluate(t *testing.T) {
	for _, w := range All {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			got, err := lang.EvalProgram(w.Src)
			if err != nil {
				t.Fatalf("%s does not run: %v", w.Name, err)
			}
			if got == 0 {
				t.Errorf("%s checksum is 0 (degenerate)", w.Name)
			}
			t.Logf("%s checksum=%d", w.Name, got)
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, w := range All {
		a, err := lang.EvalProgram(w.Src)
		if err != nil {
			t.Fatal(err)
		}
		b, err := lang.EvalProgram(w.Src)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s not deterministic: %d vs %d", w.Name, a, b)
		}
	}
}

func TestWorkloadSizes(t *testing.T) {
	// Keep kernels big enough to be interesting and small enough to
	// simulate: 50k..5M executed IR instructions.
	for _, w := range All {
		f, err := lang.ParseAndCheck(w.Src)
		if err != nil {
			t.Fatal(err)
		}
		p, err := cfgir.Build(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, fn := range p.Funcs {
			fn.Compact()
		}
		p.Optimize()
		ip := cfgir.NewInterp(p, 0)
		if _, err := ip.Run(); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if ip.Instrs < 20_000 {
			t.Errorf("%s executes only %d IR instructions; too small to measure", w.Name, ip.Instrs)
		}
		if ip.Instrs > 5_000_000 {
			t.Errorf("%s executes %d IR instructions; too slow to sweep", w.Name, ip.Instrs)
		}
		t.Logf("%s: %d dynamic IR instructions", w.Name, ip.Instrs)
	}
}

func TestLookupHelpers(t *testing.T) {
	if ByName("fft") == nil || ByName("nope") != nil {
		t.Error("ByName broken")
	}
	if len(Names()) != len(All) {
		t.Error("Names length mismatch")
	}
}

// TestGeneratedNames: "gen:family:seed[:size]" names synthesize corpus
// workloads on demand without ever joining the static suite.
func TestGeneratedNames(t *testing.T) {
	w := ByName("gen:pointer:42")
	if w == nil {
		t.Fatal("gen:pointer:42 did not synthesize")
	}
	if got, err := lang.EvalProgram(w.Src); err != nil || got == 0 {
		t.Fatalf("generated workload does not run: checksum=%d err=%v", got, err)
	}
	if ByName("gen:pointer:42") != w {
		t.Error("synthesized workload not cached")
	}
	if w2 := ByName("gen:pointer:42:3"); w2 == nil || w2.Src == w.Src {
		t.Error("size knob did not change the program")
	}
	for _, bad := range []string{"gen:", "gen:pointer", "gen:nofam:1", "gen:pointer:x", "gen:pointer:1:9"} {
		if ByName(bad) != nil {
			t.Errorf("invalid name %q resolved", bad)
		}
	}
	for _, name := range Names() {
		if len(name) > 4 && name[:4] == "gen:" {
			t.Errorf("generated workload %q leaked into Names()", name)
		}
	}
}

func TestWorkloadMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range All {
		if w.Name == "" || w.Mirrors == "" || w.Description == "" {
			t.Errorf("workload %q missing metadata", w.Name)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
	}
}
