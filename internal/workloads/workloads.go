// Package workloads holds the benchmark kernels the experiment harness
// runs. The MICRO 2003 evaluation used SPEC2000 and Mediabench codes; SPEC
// sources and inputs cannot be redistributed, so each kernel here
// reproduces the dominant loop and memory structure of its counterpart in
// wsl, generating its own deterministic input data (documented per kernel).
// Every kernel returns a checksum that all six execution engines must agree
// on.
package workloads

// Workload is one benchmark kernel.
type Workload struct {
	Name        string
	Mirrors     string // the paper-suite benchmark this kernel stands in for
	Description string
	Src         string
}

// ByName returns the named workload, or nil. Names of the form
// "gen:family:seed[:size]" resolve to generated corpus programs,
// synthesized on demand (see gen.go); they are not part of Names().
func ByName(name string) *Workload {
	for i := range All {
		if All[i].Name == name {
			return &All[i]
		}
	}
	if len(name) > 4 && name[:4] == "gen:" {
		return synthesize(name)
	}
	return nil
}

// Names lists all workload names in order.
func Names() []string {
	out := make([]string, len(All))
	for i := range All {
		out[i] = All[i].Name
	}
	return out
}

// All is the benchmark suite, ordered as reported in EXPERIMENTS.md.
var All = []Workload{
	{
		Name:        "adpcm",
		Mirrors:     "Mediabench adpcm (rawdaudio)",
		Description: "IMA ADPCM decoder over a synthetic 2048-nibble stream: serial integer loop with a data-dependent step-size table walk.",
		Src: `
global stepTable[89] = {7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28,
	31, 34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143,
	157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544,
	598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878,
	2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
	6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818,
	18500, 20350, 22385, 24623, 27086, 29794, 32767};
global indexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8};
global out[2048];

func main() {
	var pred = 0;
	var index = 0;
	var rng = 7;
	var sum = 0;
	for var i = 0; i < 2048; i = i + 1 {
		rng = (rng * 48271) % 2147483647;
		var code = rng % 16;
		var step = stepTable[index];
		var diff = step >> 3;
		if code & 4 { diff = diff + step; }
		if code & 2 { diff = diff + (step >> 1); }
		if code & 1 { diff = diff + (step >> 2); }
		if code & 8 { pred = pred - diff; } else { pred = pred + diff; }
		if pred > 32767 { pred = 32767; }
		if pred < -32768 { pred = -32768; }
		index = index + indexTable[code];
		if index < 0 { index = 0; }
		if index > 88 { index = 88; }
		out[i] = pred;
		sum = (sum + pred) & 0xFFFFFFF;
	}
	return sum;
}`,
	},
	{
		Name:        "mpeg2",
		Mirrors:     "Mediabench mpeg2 (encode DCT)",
		Description: "Integer 8x8 separable DCT-like transform plus quantization over 12 blocks: dense block compute with regular strides.",
		Src: `
global blocks[768];
global tmp[64];
global coef[64];
global quant[64];

func main() {
	var rng = 3;
	for var i = 0; i < 768; i = i + 1 {
		rng = (rng * 48271) % 2147483647;
		blocks[i] = rng % 256 - 128;
	}
	for var i = 0; i < 64; i = i + 1 {
		quant[i] = 8 + (i / 8) + (i % 8);
	}
	var sum = 0;
	for var b = 0; b < 12; b = b + 1 {
		var base = b * 64;
		// Row pass: butterfly-style accumulation.
		for var r = 0; r < 8; r = r + 1 {
			for var c = 0; c < 8; c = c + 1 {
				var acc = 0;
				for var k = 0; k < 8; k = k + 1 {
					var w = (c * (2 * k + 1)) % 16;
					if w > 8 { w = 16 - w; }
					acc = acc + blocks[base + r * 8 + k] * (8 - w);
				}
				tmp[r * 8 + c] = acc >> 3;
			}
		}
		// Column pass.
		for var c = 0; c < 8; c = c + 1 {
			for var r = 0; r < 8; r = r + 1 {
				var acc = 0;
				for var k = 0; k < 8; k = k + 1 {
					var w = (r * (2 * k + 1)) % 16;
					if w > 8 { w = 16 - w; }
					acc = acc + tmp[k * 8 + c] * (8 - w);
				}
				coef[r * 8 + c] = acc >> 3;
			}
		}
		// Quantize and accumulate.
		for var i = 0; i < 64; i = i + 1 {
			var q = coef[i] / quant[i];
			sum = (sum * 31 + q) % 1000000007;
		}
	}
	return sum;
}`,
	},
	{
		Name:        "gzip",
		Mirrors:     "SPECint gzip",
		Description: "LZ77-style longest-match search with a hash-head table over a 2048-byte synthetic text: branchy byte comparisons and irregular access.",
		Src: `
global text[2048];
global head[256];
global matchLen[2048];

func main() {
	var rng = 11;
	for var i = 0; i < 2048; i = i + 1 {
		rng = (rng * 48271) % 2147483647;
		// Low-entropy text so matches exist.
		text[i] = (rng % 16) + (i % 8);
	}
	for var i = 0; i < 256; i = i + 1 { head[i] = -1; }
	var sum = 0;
	for var pos = 0; pos < 2040; pos = pos + 1 {
		var h = (text[pos] * 31 + text[pos + 1]) % 256;
		var cand = head[h];
		var best = 0;
		var tries = 0;
		while cand >= 0 && tries < 8 {
			var len = 0;
			while len < 8 && pos + len < 2048 && text[cand + len] == text[pos + len] {
				len = len + 1;
			}
			if len > best { best = len; }
			cand = cand - 17;
			if cand < 0 { cand = -1; }
			tries = tries + 1;
		}
		matchLen[pos] = best;
		head[h] = pos;
		sum = (sum + best * pos) % 1000000007;
	}
	return sum;
}`,
	},
	{
		Name:        "mcf",
		Mirrors:     "SPECint mcf",
		Description: "Network-simplex-like relaxation over a 256-node graph stored as index-linked lists: pointer chasing with unpredictable branches.",
		Src: `
global nextArc[1024];
global arcHead[1024];
global arcCost[1024];
global firstArc[256];
global dist[256];

func main() {
	var rng = 5;
	// Build a random graph: 4 arcs per node, threaded as linked lists.
	for var n = 0; n < 256; n = n + 1 {
		firstArc[n] = n * 4;
		dist[n] = 1000000;
	}
	for var a = 0; a < 1024; a = a + 1 {
		rng = (rng * 48271) % 2147483647;
		arcHead[a] = rng % 256;
		rng = (rng * 48271) % 2147483647;
		arcCost[a] = rng % 100 + 1;
		if a % 4 == 3 { nextArc[a] = -1; } else { nextArc[a] = a + 1; }
	}
	dist[0] = 0;
	var sum = 0;
	// Bellman-Ford-style sweeps.
	for var round = 0; round < 12; round = round + 1 {
		var changed = 0;
		for var n = 0; n < 256; n = n + 1 {
			var d = dist[n];
			if d < 1000000 {
				var a = firstArc[n];
				while a >= 0 {
					var h = arcHead[a];
					var nd = d + arcCost[a];
					if nd < dist[h] {
						dist[h] = nd;
						changed = changed + 1;
					}
					a = nextArc[a];
				}
			}
		}
		sum = sum + changed;
		if changed == 0 { break; }
	}
	for var n = 0; n < 256; n = n + 1 {
		sum = (sum * 31 + dist[n]) % 1000000007;
	}
	return sum;
}`,
	},
	{
		Name:        "twolf",
		Mirrors:     "SPECint twolf",
		Description: "Simulated-annealing cell swap evaluation: 1200 random swaps over a 128-cell placement, each scored by wirelength deltas over the cells' incident-net lists.",
		Src: `
global cellX[128];
global cellY[128];
global netA[256];
global netB[256];
global incident[1024];

func wirelen(n) {
	var a = netA[n];
	var b = netB[n];
	var dx = cellX[a] - cellX[b];
	var dy = cellY[a] - cellY[b];
	if dx < 0 { dx = -dx; }
	if dy < 0 { dy = -dy; }
	return dx + dy;
}

func touchingCost(cell) {
	var total = 0;
	for var k = 0; k < 8; k = k + 1 {
		total = total + wirelen(incident[cell * 8 + k]);
	}
	return total;
}

func main() {
	var rng = 13;
	for var i = 0; i < 128; i = i + 1 {
		cellX[i] = i % 16;
		cellY[i] = i / 16;
	}
	for var n = 0; n < 256; n = n + 1 {
		rng = (rng * 48271) % 2147483647;
		netA[n] = rng % 128;
		rng = (rng * 48271) % 2147483647;
		netB[n] = rng % 128;
	}
	// Each cell keeps an 8-entry incident-net list (approximate: random
	// nets, the way twolf's data structures bound the scan per move).
	for var i = 0; i < 1024; i = i + 1 {
		rng = (rng * 48271) % 2147483647;
		incident[i] = rng % 256;
	}
	var cost = 0;
	for var n = 0; n < 256; n = n + 1 { cost = cost + wirelen(n); }
	var accepted = 0;
	var temp = 64;
	for var step = 0; step < 1200; step = step + 1 {
		rng = (rng * 48271) % 2147483647;
		var a = rng % 128;
		rng = (rng * 48271) % 2147483647;
		var b = rng % 128;
		var before = touchingCost(a) + touchingCost(b);
		var tx = cellX[a]; var ty = cellY[a];
		cellX[a] = cellX[b]; cellY[a] = cellY[b];
		cellX[b] = tx; cellY[b] = ty;
		var after = touchingCost(a) + touchingCost(b);
		var delta = after - before;
		rng = (rng * 48271) % 2147483647;
		if delta < 0 || (temp > 0 && rng % 256 < temp) {
			cost = cost + delta;
			accepted = accepted + 1;
		} else {
			// Reject: swap back.
			tx = cellX[a]; ty = cellY[a];
			cellX[a] = cellX[b]; cellY[a] = cellY[b];
			cellX[b] = tx; cellY[b] = ty;
		}
		if step % 100 == 99 { temp = temp * 7 / 8; }
	}
	return (cost * 4096 + accepted) % 1000000007;
}`,
	},
	{
		Name:        "art",
		Mirrors:     "SPECfp art (integerized)",
		Description: "Adaptive-resonance F1/F2 layers: dense 64x24 weight products with winner-take-all and weight update, fixed-point arithmetic.",
		Src: `
global weights[1536];
global input[64];
global activation[24];

func main() {
	var rng = 17;
	for var i = 0; i < 1536; i = i + 1 {
		rng = (rng * 48271) % 2147483647;
		weights[i] = rng % 1024;
	}
	var sum = 0;
	for var pass = 0; pass < 24; pass = pass + 1 {
		rng = (rng * 48271) % 2147483647;
		for var i = 0; i < 64; i = i + 1 {
			rng = (rng * 48271) % 2147483647;
			input[i] = rng % 1024;
		}
		// F2 activation: dense matrix-vector product.
		for var j = 0; j < 24; j = j + 1 {
			var acc = 0;
			for var i = 0; i < 64; i = i + 1 {
				acc = acc + weights[j * 64 + i] * input[i];
			}
			activation[j] = acc >> 10;
		}
		// Winner take all.
		var winner = 0;
		for var j = 1; j < 24; j = j + 1 {
			if activation[j] > activation[winner] { winner = j; }
		}
		// Resonance: move the winner's weights toward the input.
		for var i = 0; i < 64; i = i + 1 {
			var w = weights[winner * 64 + i];
			weights[winner * 64 + i] = w + ((input[i] - w) >> 2);
		}
		sum = (sum * 31 + winner + activation[winner]) % 1000000007;
	}
	return sum;
}`,
	},
	{
		Name:        "equake",
		Mirrors:     "SPECfp equake (integerized)",
		Description: "Sparse matrix-vector time stepping: CSR matrix of 256 rows x ~6 nonzeros, 16 timesteps, fixed-point.",
		Src: `
global rowStart[257];
global colIdx[1536];
global val[1536];
global x[256];
global y[256];

func main() {
	var rng = 23;
	var nnz = 0;
	for var r = 0; r < 256; r = r + 1 {
		rowStart[r] = nnz;
		// 6 nonzeros per row at pseudo-random columns.
		for var k = 0; k < 6; k = k + 1 {
			rng = (rng * 48271) % 2147483647;
			colIdx[nnz] = rng % 256;
			rng = (rng * 48271) % 2147483647;
			val[nnz] = rng % 64 - 32;
			nnz = nnz + 1;
		}
		x[r] = r + 1;
	}
	rowStart[256] = nnz;
	var sum = 0;
	for var t = 0; t < 16; t = t + 1 {
		for var r = 0; r < 256; r = r + 1 {
			var acc = 0;
			for var k = rowStart[r]; k < rowStart[r + 1]; k = k + 1 {
				acc = acc + val[k] * x[colIdx[k]];
			}
			y[r] = acc >> 5;
		}
		for var r = 0; r < 256; r = r + 1 {
			x[r] = (x[r] + y[r]) % 65536;
		}
		sum = (sum * 31 + x[t * 15 % 256]) % 1000000007;
	}
	return sum;
}`,
	},
	{
		Name:        "ammp",
		Mirrors:     "SPECfp ammp (integerized)",
		Description: "Molecular-dynamics force accumulation: 96 atoms with 8-entry neighbor lists, inverse-square-like integer forces, 10 steps.",
		Src: `
global posX[96];
global posY[96];
global velX[96];
global velY[96];
global neighbors[768];

func main() {
	var rng = 29;
	for var i = 0; i < 96; i = i + 1 {
		rng = (rng * 48271) % 2147483647;
		posX[i] = rng % 1000;
		rng = (rng * 48271) % 2147483647;
		posY[i] = rng % 1000;
		velX[i] = 0;
		velY[i] = 0;
	}
	for var i = 0; i < 768; i = i + 1 {
		rng = (rng * 48271) % 2147483647;
		neighbors[i] = rng % 96;
	}
	var sum = 0;
	for var step = 0; step < 10; step = step + 1 {
		for var i = 0; i < 96; i = i + 1 {
			var fx = 0;
			var fy = 0;
			for var k = 0; k < 8; k = k + 1 {
				var j = neighbors[i * 8 + k];
				var dx = posX[j] - posX[i];
				var dy = posY[j] - posY[i];
				var d2 = dx * dx + dy * dy + 16;
				fx = fx + dx * 4096 / d2;
				fy = fy + dy * 4096 / d2;
			}
			velX[i] = (velX[i] + fx) % 10000;
			velY[i] = (velY[i] + fy) % 10000;
		}
		for var i = 0; i < 96; i = i + 1 {
			posX[i] = (posX[i] + velX[i] / 16) % 1000;
			posY[i] = (posY[i] + velY[i] / 16) % 1000;
			if posX[i] < 0 { posX[i] = posX[i] + 1000; }
			if posY[i] < 0 { posY[i] = posY[i] + 1000; }
		}
		sum = (sum * 31 + posX[step * 9 % 96] + posY[step * 7 % 96]) % 1000000007;
	}
	return sum;
}`,
	},
	{
		Name:        "fft",
		Mirrors:     "kernel: radix-2 FFT (fixed point)",
		Description: "Iterative 256-point radix-2 butterfly network with a fixed-point twiddle table: the classic strided-access kernel.",
		Src: `
global re[256];
global im[256];
global twR[128];
global twI[128];

func main() {
	var rng = 31;
	for var i = 0; i < 256; i = i + 1 {
		rng = (rng * 48271) % 2147483647;
		re[i] = rng % 2048 - 1024;
		im[i] = 0;
	}
	// Quarter-wave-ish integer twiddles (not trig-exact; the kernel's
	// access pattern and dataflow are what matter).
	for var i = 0; i < 128; i = i + 1 {
		twR[i] = 1024 - (i * i * 1024) / 16384;
		twI[i] = -(i * 1024) / 128;
	}
	// Bit reversal.
	for var i = 0; i < 256; i = i + 1 {
		var r = 0;
		var v = i;
		for var b = 0; b < 8; b = b + 1 {
			r = (r << 1) | (v & 1);
			v = v >> 1;
		}
		if r > i {
			var t = re[i]; re[i] = re[r]; re[r] = t;
			t = im[i]; im[i] = im[r]; im[r] = t;
		}
	}
	// Butterflies.
	var len = 2;
	while len <= 256 {
		var half = len / 2;
		var tstep = 128 / half;
		for var start = 0; start < 256; start = start + len {
			for var k = 0; k < half; k = k + 1 {
				var wr = twR[k * tstep];
				var wi = twI[k * tstep];
				var i0 = start + k;
				var i1 = i0 + half;
				var tr = (re[i1] * wr - im[i1] * wi) >> 10;
				var ti = (re[i1] * wi + im[i1] * wr) >> 10;
				re[i1] = re[i0] - tr;
				im[i1] = im[i0] - ti;
				re[i0] = re[i0] + tr;
				im[i0] = im[i0] + ti;
			}
		}
		len = len * 2;
	}
	var sum = 0;
	for var i = 0; i < 256; i = i + 1 {
		sum = (sum * 31 + re[i] + im[i]) % 1000000007;
	}
	return sum;
}`,
	},
	{
		Name:        "lu",
		Mirrors:     "kernel: LU decomposition (integer)",
		Description: "In-place 20x20 integer Gaussian elimination with partial pivoting by magnitude: triangular loop nest with row swaps.",
		Src: `
global a[400];

func main() {
	var rng = 37;
	for var i = 0; i < 400; i = i + 1 {
		rng = (rng * 48271) % 2147483647;
		a[i] = rng % 200 - 100;
	}
	// Boost the diagonal so elimination stays nonzero.
	for var i = 0; i < 20; i = i + 1 {
		a[i * 20 + i] = a[i * 20 + i] + 1000;
	}
	var sum = 0;
	for var k = 0; k < 20; k = k + 1 {
		// Partial pivot by absolute value.
		var piv = k;
		var best = a[k * 20 + k];
		if best < 0 { best = -best; }
		for var r = k + 1; r < 20; r = r + 1 {
			var v = a[r * 20 + k];
			if v < 0 { v = -v; }
			if v > best { best = v; piv = r; }
		}
		if piv != k {
			for var c = 0; c < 20; c = c + 1 {
				var t = a[k * 20 + c];
				a[k * 20 + c] = a[piv * 20 + c];
				a[piv * 20 + c] = t;
			}
		}
		var d = a[k * 20 + k];
		if d == 0 { d = 1; }
		for var r = k + 1; r < 20; r = r + 1 {
			var f = (a[r * 20 + k] * 256) / d;
			for var c = k; c < 20; c = c + 1 {
				a[r * 20 + c] = a[r * 20 + c] - (f * a[k * 20 + c]) / 256;
			}
		}
		sum = (sum * 31 + d) % 1000000007;
	}
	for var i = 0; i < 400; i = i + 1 {
		sum = (sum * 31 + a[i]) % 1000000007;
	}
	return sum;
}`,
	},
}
