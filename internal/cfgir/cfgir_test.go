package cfgir

import (
	"testing"

	"wavescalar/internal/isa"
	"wavescalar/internal/lang"
)

// differentialCases mirror (and extend) the lang evaluator cases: the IR
// interpreter must agree with the AST evaluator on every one, both with and
// without optimization.
var differentialCases = []string{
	`func main() { return 42; }`,
	`func main() { return (2 + 3) * 4 - 10 / 3; }`,
	`func main() { return -(3) + !0 + !7 + ~0; }`,
	`func main() { var s = 0; var i = 0; while i < 10 { s = s + i; i = i + 1; } return s; }`,
	`func main() { var s = 0; for var i = 1; i <= 100; i = i + 1 { s = s + i; } return s; }`,
	`func main() { var s = 0; for var i = 0; i < 5; i = i + 1 { for var j = 0; j < 5; j = j + 1 { s = s + i * j; } } return s; }`,
	`func main() { var i = 0; while 1 { if i >= 7 { break; } i = i + 1; } return i; }`,
	`func main() { var s = 0; for var i = 0; i < 10; i = i + 1 { if i % 2 { continue; } s = s + i; } return s; }`,
	"global g = 5;\nfunc main() { g = g + 1; return g * 2; }",
	"global a[10];\nfunc main() { for var i = 0; i < 10; i = i + 1 { a[i] = i * i; } var s = 0; for var i = 0; i < 10; i = i + 1 { s = s + a[i]; } return s; }",
	"global a[4] = {10, 20, 30};\nfunc main() { return a[0] + a[1] + a[2] + a[3]; }",
	`func double(x) { return x * 2; } func main() { return double(21); }`,
	`func fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); } func main() { return fib(12); }`,
	"global seen[20];\nfunc fact(n) { seen[n] = 1; if n <= 1 { return 1; } return n * fact(n - 1); }\nfunc main() { var f = fact(6); var c = 0; for var i = 0; i < 20; i = i + 1 { c = c + seen[i]; } return f + c; }",
	"global g;\nfunc bump() { g = g + 1; return 0; }\nfunc main() { var x = 0 && bump(); return g * 10 + x; }",
	"global g;\nfunc bump() { g = g + 1; return 1; }\nfunc main() { var x = 1 || bump(); return g * 10 + x; }",
	"global g;\nfunc bump() { g = g + 1; return 5; }\nfunc main() { var x = 1 && bump(); return g * 10 + x; }",
	`func main() { var x = 1; { var x = 2; x = 3; } return x; }`,
	"global a[4];\nfunc main() { a[0] = 1; a[1] = a[0] + 1; a[0] = a[1] + 1; return a[0] * 10 + a[1]; }",
	`func gcd(a, b) { while b != 0 { var t = b; b = a % b; a = t; } return a; } func main() { return gcd(1071, 462); }`,
	`func main() { var n = 27; var steps = 0; while n != 1 { if n % 2 { n = 3 * n + 1; } else { n = n / 2; } steps = steps + 1; } return steps; }`,
	`func main() { var x = 5; if x < 3 { return 1; } else if x < 7 { return 2; } else { return 3; } }`,
	// Dead join after both-return if.
	`func main() { if 1 { return 4; } else { return 5; } }`,
	// Constant-foldable control flow.
	`func main() { var s = 0; if 2 > 1 { s = 10; } if 1 > 2 { s = s + 100; } return s + 3 * 0 + 0 * 9 + (7 + 0); }`,
	// CSE fodder: repeated loads and expressions.
	"global a[8] = {3, 1, 4, 1, 5, 9, 2, 6};\nfunc main() { var s = a[2] + a[2] + a[2]; a[2] = 100; s = s + a[2] + a[2]; return s; }",
	// Expression statement calls for side effects.
	"global g;\nfunc inc() { g = g + 1; return g; }\nfunc main() { inc(); inc(); inc(); return g; }",
	// x = x self-assignment.
	`func main() { var x = 9; x = x; return x; }`,
	// Multiply-assigned register across redefinition (CSE hazard).
	`func main() { var v = 2 + 3; var w = v; v = 9; var u = 2 + 3; return v * 100 + w * 10 + u; }`,
	// || and && producing 0/1 from arbitrary ints.
	`func main() { return (5 || 0) + (0 || 7) * 10 + (3 && 4) * 100 + (0 && 9) * 1000; }`,
}

func compile(t *testing.T, src string, optimize bool) *Program {
	t.Helper()
	f, err := lang.ParseAndCheck(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := Build(f)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for _, fn := range p.Funcs {
		fn.Compact()
	}
	if optimize {
		p.Optimize()
	}
	return p
}

func TestInterpMatchesEvaluator(t *testing.T) {
	for _, src := range differentialCases {
		want, err := lang.EvalProgram(src)
		if err != nil {
			t.Fatalf("evaluator failed on %q: %v", src, err)
		}
		for _, optimize := range []bool{false, true} {
			p := compile(t, src, optimize)
			got, err := NewInterp(p, 0).Run()
			if err != nil {
				t.Errorf("opt=%v: interp error on %q: %v\n%s", optimize, src, err, p)
				continue
			}
			if got != want {
				t.Errorf("opt=%v: %q: interp=%d evaluator=%d\n%s", optimize, src, got, want, p)
			}
		}
	}
}

func TestMemoryImagesAgree(t *testing.T) {
	src := "global a[16];\nglobal b = 3;\nfunc main() { for var i = 0; i < 16; i = i + 1 { a[i] = i * b; } b = 99; return 0; }"
	f, err := lang.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	ev := lang.NewEvaluator(f, 0)
	if _, err := ev.Run(); err != nil {
		t.Fatal(err)
	}
	p := compile(t, src, true)
	ip := NewInterp(p, 0)
	if _, err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	evMem, ipMem := ev.Memory(), ip.Memory()
	if len(evMem) != len(ipMem) {
		t.Fatalf("memory sizes differ: %d vs %d", len(evMem), len(ipMem))
	}
	for i := range evMem {
		if evMem[i] != ipMem[i] {
			t.Fatalf("memory[%d]: evaluator=%d interp=%d", i, evMem[i], ipMem[i])
		}
	}
}

func TestOptimizeShrinksCode(t *testing.T) {
	src := `func main() { var s = 0; for var i = 0; i < 100; i = i + 1 { s = s + i * 1 + 0; } return s; }`
	unopt := compile(t, src, false)
	opt := compile(t, src, true)
	count := func(p *Program) int {
		n := 0
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				n += len(b.Instrs) + 1
			}
		}
		return n
	}
	cu, co := count(unopt), count(opt)
	if co >= cu {
		t.Errorf("optimizer did not shrink code: %d -> %d\n%s", cu, co, opt)
	}
	// And results still agree.
	want, _ := NewInterp(unopt, 0).Run()
	got, _ := NewInterp(opt, 0).Run()
	if want != got {
		t.Errorf("optimization changed result: %d -> %d", want, got)
	}
}

func TestCompactRemovesUnreachable(t *testing.T) {
	p := compile(t, `func main() { if 1 { return 4; } else { return 5; } }`, false)
	f := p.Funcs[0]
	// All remaining blocks must be reachable and correctly numbered.
	if f.Entry != 0 {
		t.Errorf("entry = %d", f.Entry)
	}
	for i, b := range f.Blocks {
		if b.ID != i {
			t.Errorf("block %d has ID %d", i, b.ID)
		}
		for _, s := range b.Succs() {
			if s < 0 || s >= len(f.Blocks) {
				t.Errorf("block %d has successor %d out of range", i, s)
			}
		}
	}
}

func TestBackEdgesAndHeaders(t *testing.T) {
	p := compile(t, `func main() { var s = 0; for var i = 0; i < 3; i = i + 1 { var j = 0; while j < 2 { s = s + 1; j = j + 1; } } return s; }`, false)
	f := p.Funcs[0]
	back := f.BackEdges()
	if len(back) != 2 {
		t.Errorf("got %d back edges, want 2: %v\n%s", len(back), back, f)
	}
	headers := f.LoopHeaders()
	if len(headers) != 2 {
		t.Errorf("got %d loop headers, want 2", len(headers))
	}
	for e := range back {
		if !headers[e.To] {
			t.Errorf("back edge %v target not a header", e)
		}
	}
}

func TestLivenessParamsLiveAtEntry(t *testing.T) {
	p := compile(t, `func f(a, b) { var s = 0; while a > 0 { s = s + b; a = a - 1; } return s; } func main() { return f(3, 4); }`, false)
	f := p.Funcs[0]
	liveIn, _ := f.Liveness()
	for _, pr := range f.Params {
		if !liveIn[f.Entry].Has(pr) {
			t.Errorf("param r%d not live at entry", pr)
		}
	}
}

func TestRegSetOperations(t *testing.T) {
	s := NewRegSet(130)
	s.Add(0)
	s.Add(64)
	s.Add(129)
	s.Add(NoReg) // no-op
	if !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) || s.Has(NoReg) {
		t.Error("membership wrong")
	}
	if got := s.Count(); got != 3 {
		t.Errorf("Count = %d", got)
	}
	m := s.Members()
	if len(m) != 3 || m[0] != 0 || m[1] != 64 || m[2] != 129 {
		t.Errorf("Members = %v", m)
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("Remove failed")
	}
	o := NewRegSet(130)
	o.Add(7)
	if !o.UnionWith(s) || !o.Has(0) || !o.Has(7) {
		t.Error("UnionWith failed")
	}
	if o.UnionWith(s) {
		t.Error("UnionWith reported change on no-op")
	}
	c := o.Clone()
	c.Remove(7)
	if !o.Has(7) {
		t.Error("Clone aliases storage")
	}
}

func TestInterpOutOfFuel(t *testing.T) {
	p := compile(t, `func main() { while 1 { } return 0; }`, false)
	if _, err := NewInterp(p, 1000).Run(); err != ErrInterpFuel {
		t.Fatalf("got %v, want ErrInterpFuel", err)
	}
}

func TestInterpBoundsFault(t *testing.T) {
	p := compile(t, "global a[4];\nfunc main() { var i = 100; return a[i]; }", false)
	if _, err := NewInterp(p, 0).Run(); err == nil {
		t.Fatal("out-of-range load not detected")
	}
}

func TestInstrUsesAndString(t *testing.T) {
	in := Instr{Kind: KAlu, Op: isa.OpAdd, Dst: 2, A: 0, B: 1}
	uses := in.Uses(nil)
	if len(uses) != 2 || uses[0] != 0 || uses[1] != 1 {
		t.Errorf("Uses = %v", uses)
	}
	neg := Instr{Kind: KAlu, Op: isa.OpNeg, Dst: 2, A: 0, B: 1}
	if u := neg.Uses(nil); len(u) != 1 {
		t.Errorf("unary Uses = %v", u)
	}
	st := Instr{Kind: KStore, A: 3, B: 4, Dst: NoReg}
	if st.HasDst() || st.Pure() {
		t.Error("store should have no dst and not be pure")
	}
	if s := in.String(); s != "r2 = add r0, r1" {
		t.Errorf("String = %q", s)
	}
	if s := (Term{Kind: TBranch, Cond: 1, Then: 2, Else: 3}).String(); s != "branch r1 ? b2 : b3" {
		t.Errorf("Term.String = %q", s)
	}
}
