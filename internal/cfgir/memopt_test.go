package cfgir

import (
	"testing"

	"wavescalar/internal/lang"
)

// compileMem builds, compacts, base-optimizes, and runs the memory tier,
// returning the program and the tier's stats.
func compileMem(t *testing.T, src string) (*Program, MemOptStats) {
	t.Helper()
	p := compile(t, src, true)
	st := p.OptimizeMemory()
	return p, st
}

// checkAgainstEvaluator runs src through the AST evaluator and the IR
// interpreter (memory tier on) and compares both the result and the final
// memory image.
func checkAgainstEvaluator(t *testing.T, src string) (*Program, MemOptStats) {
	t.Helper()
	f, err := lang.ParseAndCheck(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	ev := lang.NewEvaluator(f, 0)
	want, err := ev.Run()
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	p, st := compileMem(t, src)
	ip := NewInterp(p, 0)
	got, err := ip.Run()
	if err != nil {
		t.Fatalf("interp error: %v\n%s", err, p)
	}
	if got != want {
		t.Fatalf("interp=%d evaluator=%d\n%s", got, want, p)
	}
	evMem, ipMem := ev.Memory(), ip.Memory()
	if len(evMem) != len(ipMem) {
		t.Fatalf("memory sizes differ: %d vs %d", len(evMem), len(ipMem))
	}
	for i := range evMem {
		if evMem[i] != ipMem[i] {
			t.Fatalf("memory[%d]: evaluator=%d interp=%d\n%s", i, evMem[i], ipMem[i], p)
		}
	}
	return p, st
}

// TestMemOptMatchesEvaluator runs the full differential corpus with the
// memory tier enabled: every case must agree with the AST evaluator.
func TestMemOptMatchesEvaluator(t *testing.T) {
	for _, src := range differentialCases {
		want, err := lang.EvalProgram(src)
		if err != nil {
			t.Fatalf("evaluator failed on %q: %v", src, err)
		}
		p, _ := compileMem(t, src)
		got, err := NewInterp(p, 0).Run()
		if err != nil {
			t.Errorf("memopt: interp error on %q: %v\n%s", src, err, p)
			continue
		}
		if got != want {
			t.Errorf("memopt: %q: interp=%d evaluator=%d\n%s", src, got, want, p)
		}
	}
}

// TestStoreToLoadForwarding: a load immediately after a store to the same
// global must become a register move.
func TestStoreToLoadForwarding(t *testing.T) {
	src := "global g;\nfunc main() { g = 41; return g + 1; }"
	_, st := checkAgainstEvaluator(t, src)
	if st.StoresForwarded == 0 {
		t.Fatalf("expected store-to-load forwarding to fire; stats: %+v", st)
	}
}

// TestRedundantLoadSurvivesOtherStore: two loads of a[0] separated by a
// store to a provably different constant address. The base CSE window
// closes at the store; the memory tier's canonical-address facts survive
// it, so the second load must be eliminated.
func TestRedundantLoadSurvivesOtherStore(t *testing.T) {
	src := "global a[8];\nfunc main() { a[0] = 7; var x = a[0]; a[1] = 9; var y = a[0]; return x * 100 + y; }"
	p, st := checkAgainstEvaluator(t, src)
	if got := memOps(p); got > 2 {
		t.Fatalf("expected at most 2 memory ops after optimization, got %d\n%s", got, p)
	}
	if st.StoresForwarded == 0 {
		t.Fatalf("expected forwarding through the intervening store; stats: %+v", st)
	}
}

// TestStoreBetweenLoadsBlocksReuse: a store through an unknown
// (non-constant) address between two loads of the same address must block
// elimination of the second load — the store may alias.
func TestStoreBetweenLoadsBlocksReuse(t *testing.T) {
	src := "global a[8];\nfunc idx() { return 0; }\nfunc main() { var x = a[3]; a[idx()] = 55; var y = a[3]; return x + y * 1000; }"
	p, _ := checkAgainstEvaluator(t, src)
	loads := 0
	for _, f := range p.Funcs {
		if f.Name != "main" {
			continue
		}
		for _, b := range f.Blocks {
			if b == nil {
				continue
			}
			for i := range b.Instrs {
				if b.Instrs[i].Kind == KLoad {
					loads++
				}
			}
		}
	}
	if loads < 2 {
		t.Fatalf("aliasing store must keep both loads of a[3]; main has %d loads\n%s", loads, p)
	}
}

// TestCallBoundaryInvalidation: a call to a memory-touching function kills
// facts; a call to a pure function does not.
func TestCallBoundaryInvalidation(t *testing.T) {
	touching := "global g = 5;\nfunc bump() { g = g + 1; return 0; }\nfunc main() { var x = g; bump(); var y = g; return x * 10 + y; }"
	p, _ := checkAgainstEvaluator(t, touching)
	if loads := funcLoads(p, "main"); loads < 2 {
		t.Fatalf("memory-touching call must keep the reload; main has %d loads\n%s", loads, p)
	}

	pure := "global g = 5;\nfunc id(x) { return x; }\nfunc main() { var x = g; var k = id(3); var y = g; return x * 100 + y * 10 + k; }"
	p, st := checkAgainstEvaluator(t, pure)
	if loads := funcLoads(p, "main"); loads > 1 {
		t.Fatalf("pure call must not kill the fact; main has %d loads\n%s", loads, p)
	}
	if st.LoadsReused+st.LoadsPromoted == 0 {
		t.Fatalf("expected load reuse across a pure call; stats: %+v", st)
	}
}

// TestDeadStoreElimination: an overwritten store with no intervening
// observer disappears; an intervening load keeps it.
func TestDeadStoreElimination(t *testing.T) {
	dead := "global g;\nfunc main() { g = 1; g = 2; return g; }"
	p, st := checkAgainstEvaluator(t, dead)
	if st.DeadStores == 0 {
		t.Fatalf("expected dead-store elimination; stats: %+v", st)
	}
	if stores := funcStores(p, "main"); stores > 1 {
		t.Fatalf("expected a single surviving store, got %d\n%s", stores, p)
	}

	// Here the forwarding pass rewrites the load of g to the stored value,
	// which then makes the first store dead — the passes must cooperate, and
	// the observable result (x == 1) must survive.
	observed := "global g;\nglobal sink;\nfunc main() { g = 1; sink = g; g = 2; return sink * 10 + g; }"
	checkAgainstEvaluator(t, observed)
}

// TestScalarPromotionAcrossBlocks: once a read of a global establishes the
// fact, a loop that only reads it must have the in-loop load promoted to a
// register carried across the back edge (the headline scalar-replacement
// case). The tier never hoists — the pre-loop read is what makes promotion
// trap-safe on a zero-trip loop.
func TestScalarPromotionAcrossBlocks(t *testing.T) {
	src := "global g = 7;\nfunc main() { var s = g; for var i = 0; i < 10; i = i + 1 { s = s + g; } return s; }"
	p, st := checkAgainstEvaluator(t, src)
	if st.LoadsPromoted == 0 {
		t.Fatalf("expected cross-block promotion of the loop-invariant load; stats: %+v", st)
	}
	if loads := funcLoads(p, "main"); loads > 1 {
		t.Fatalf("expected the in-loop load of g to be promoted; main has %d loads\n%s", loads, p)
	}
}

// TestLoopStoreKillsPromotion: the same loop, but the body also stores
// through an array slot — the back edge must kill the fact and the load of
// g must stay inside the loop.
func TestLoopStoreKillsPromotion(t *testing.T) {
	src := "global g = 7;\nglobal a[16];\nfunc main() { var s = 0; var t = g; for var i = 0; i < 10; i = i + 1 { a[i] = s; s = s + g; } return s + t; }"
	p, _ := checkAgainstEvaluator(t, src)
	// The in-loop load of g must survive: a[i] = s may alias g for all the
	// syntactic model knows (i is not a constant).
	if loads := funcLoads(p, "main"); loads < 1 {
		t.Fatalf("in-loop store must block promotion of the g load; main has %d loads", loads)
	}
	// And specifically the loop body block must still contain a load.
	if !loopBlockHasLoad(p, "main") {
		t.Fatalf("expected a load inside the loop body\n%s", p)
	}
}

// TestPointerChasingPreserved: data-dependent addresses (the pointer-
// chasing corpus family's access pattern) must not be touched — every
// address register is redefined each iteration.
func TestPointerChasingPreserved(t *testing.T) {
	src := "global a[16] = {3, 5, 1, 9, 0, 4, 2, 8, 7, 6, 11, 15, 12, 10, 14, 13};\nfunc main() { var p = 0; var s = 0; for var i = 0; i < 32; i = i + 1 { p = a[p % 16]; s = (s * 31 + p) % 1000000007; } return s; }"
	checkAgainstEvaluator(t, src)
}

// TestCrossArrayDisambiguation: the ammp move-loop pattern. x[i] and y[i]
// share the index root but differ by the (constant) array base, so the
// store to y[i] must not kill the fact about x[i] — the reload of x[i]
// becomes a forwarded register value even though i is not a constant.
func TestCrossArrayDisambiguation(t *testing.T) {
	src := "global x[8];\nglobal y[8];\nfunc main() { var s = 0; for var i = 0; i < 8; i = i + 1 { x[i] = i * 3; y[i] = i * 5; s = s + x[i]; } return s; }"
	p, st := checkAgainstEvaluator(t, src)
	if st.StoresForwarded == 0 {
		t.Fatalf("expected forwarding of x[i] across the y[i] store; stats: %+v\n%s", st, p)
	}
	if loads := funcLoads(p, "main"); loads != 0 {
		t.Fatalf("expected every load forwarded away; main has %d loads\n%s", loads, p)
	}
}

// TestSameRootOffsetDisambiguation: a[i] and a[i+1] share a value-number
// root with constant offsets 0 and 1 — provably distinct addresses — so
// the intervening store to a[i+1] must not block forwarding the a[i]
// store to its reload. This is the shape unrolled loop bodies take.
func TestSameRootOffsetDisambiguation(t *testing.T) {
	src := "global a[8];\nfunc main() { var s = 0; for var i = 0; i < 7; i = i + 1 { a[i] = i; a[i + 1] = i * 2; s = s + a[i]; } return s; }"
	p, st := checkAgainstEvaluator(t, src)
	if st.StoresForwarded == 0 {
		t.Fatalf("expected forwarding of a[i] across the a[i+1] store; stats: %+v\n%s", st, p)
	}
}

// TestCommutativeSumCanonicalization: a[i*4 + j] stored, then reloaded as
// a[j + i*4] — the two address registers are built in different operand
// orders from opaque values, so only the pass's commutative pair roots
// can prove them equal.
func TestCommutativeSumCanonicalization(t *testing.T) {
	src := "global a[16];\nfunc main() { var s = 0; for var i = 0; i < 4; i = i + 1 { for var j = 0; j < 4; j = j + 1 { a[i * 4 + j] = i + j; s = s + a[j + i * 4]; } } return s; }"
	p, st := checkAgainstEvaluator(t, src)
	if st.StoresForwarded == 0 {
		t.Fatalf("expected forwarding through the commuted address; stats: %+v\n%s", st, p)
	}
}

// TestUnrelatedRootStoreKills: a store through an address with a different,
// unrelated value-number root may alias anything — the reload must stay.
func TestUnrelatedRootStoreKills(t *testing.T) {
	src := "global x[8];\nglobal y[8];\nfunc main() { var s = 0; for var k = 0; k < 8; k = k + 1 { var j = (k * 3) % 8; x[k] = k; y[j] = k * 2; s = s + x[k]; } return s; }"
	p, st := checkAgainstEvaluator(t, src)
	if st.StoresForwarded != 0 {
		t.Fatalf("store through unrelated root must kill the x[k] fact; stats: %+v\n%s", st, p)
	}
	if loads := funcLoads(p, "main"); loads == 0 {
		t.Fatalf("expected the x[k] reload to survive\n%s", p)
	}
}

// TestMemOptStatsCounting: the stats must add up — MemAfter + eliminated
// memory ops == MemBefore.
func TestMemOptStatsCounting(t *testing.T) {
	src := "global g;\nfunc main() { g = 1; g = 2; var x = g; var y = g; return x + y; }"
	p, st := checkAgainstEvaluator(t, src)
	if st.MemBefore <= st.MemAfter {
		t.Fatalf("expected a net memory-op reduction: %+v", st)
	}
	if got := memOps(p); got != int(st.MemAfter) {
		t.Fatalf("MemAfter=%d but program has %d memory ops", st.MemAfter, got)
	}
	if st.Eliminated() < 0 {
		t.Fatalf("cleanup must never grow the program: %+v", st)
	}
}

// TestMemOptIdempotent: a second run of the tier finds nothing new.
func TestMemOptIdempotent(t *testing.T) {
	src := "global g;\nglobal a[8];\nfunc main() { g = 3; var s = 0; for var i = 0; i < 8; i = i + 1 { a[i] = g + i; } for var i = 0; i < 8; i = i + 1 { s = s + a[i]; } return s; }"
	p, _ := compileMem(t, src)
	st2 := p.OptimizeMemory()
	if st2.StoresForwarded+st2.LoadsReused+st2.LoadsPromoted+st2.DeadStores != 0 {
		t.Fatalf("second run must be a no-op: %+v", st2)
	}
}

func memOps(p *Program) int {
	n := 0
	for _, f := range p.Funcs {
		n += int(countMemOps(f))
	}
	return n
}

func funcLoads(p *Program, name string) int {
	return funcKind(p, name, KLoad)
}

func funcStores(p *Program, name string) int {
	return funcKind(p, name, KStore)
}

func funcKind(p *Program, name string, kind InstrKind) int {
	n := 0
	for _, f := range p.Funcs {
		if f.Name != name {
			continue
		}
		for _, b := range f.Blocks {
			if b == nil {
				continue
			}
			for i := range b.Instrs {
				if b.Instrs[i].Kind == kind {
					n++
				}
			}
		}
	}
	return n
}

// loopBlockHasLoad reports whether any block inside a loop (reachable from
// a back-edge source) contains a load.
func loopBlockHasLoad(p *Program, name string) bool {
	for _, f := range p.Funcs {
		if f.Name != name {
			continue
		}
		headers := f.LoopHeaders()
		for bi, b := range f.Blocks {
			if b == nil || !headers[bi] {
				continue
			}
			// Scan every block dominated-ish by the header: cheap
			// approximation — any block with a path back to the header.
			for _, b2 := range f.Blocks {
				if b2 == nil {
					continue
				}
				if reaches(f, b2.ID, bi) {
					for i := range b2.Instrs {
						if b2.Instrs[i].Kind == KLoad {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

func reaches(f *Func, from, to int) bool {
	seen := make([]bool, len(f.Blocks))
	stack := []int{from}
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if bi == to {
			return true
		}
		if bi < 0 || bi >= len(f.Blocks) || seen[bi] || f.Blocks[bi] == nil {
			continue
		}
		seen[bi] = true
		stack = append(stack, f.Blocks[bi].Succs()...)
	}
	return false
}
