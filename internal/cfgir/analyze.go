package cfgir

// RegSet is a bitset over virtual registers.
type RegSet []uint64

// NewRegSet allocates a set sized for n registers.
func NewRegSet(n int) RegSet { return make(RegSet, (n+63)/64) }

// Has reports membership.
func (s RegSet) Has(r Reg) bool {
	if r < 0 {
		return false
	}
	return s[r/64]&(1<<(uint(r)%64)) != 0
}

// Add inserts r (no-op for NoReg).
func (s RegSet) Add(r Reg) {
	if r < 0 {
		return
	}
	s[r/64] |= 1 << (uint(r) % 64)
}

// Remove deletes r.
func (s RegSet) Remove(r Reg) {
	if r < 0 {
		return
	}
	s[r/64] &^= 1 << (uint(r) % 64)
}

// UnionWith adds every member of o, reporting whether s changed.
func (s RegSet) UnionWith(o RegSet) bool {
	changed := false
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Clone copies the set.
func (s RegSet) Clone() RegSet { return append(RegSet(nil), s...) }

// Members lists the registers in ascending order.
func (s RegSet) Members() []Reg {
	var out []Reg
	for wi, w := range s {
		for w != 0 {
			b := w & -w
			bit := trailingZeros(w)
			out = append(out, Reg(wi*64+bit))
			w ^= b
		}
	}
	return out
}

// Count returns the cardinality.
func (s RegSet) Count() int {
	n := 0
	for _, w := range s {
		for w != 0 {
			w &= w - 1
			n++
		}
	}
	return n
}

func trailingZeros(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}

// Compact removes unreachable blocks and renumbers the survivors in reverse
// postorder (entry first). Every pass and backend assumes a compacted
// function: all blocks reachable, IDs dense, entry == 0.
func (f *Func) Compact() {
	order := f.rpo()
	remap := make([]int, len(f.Blocks))
	for i := range remap {
		remap[i] = -1
	}
	for newID, oldID := range order {
		remap[oldID] = newID
	}
	blocks := make([]*Block, len(order))
	for newID, oldID := range order {
		b := f.Blocks[oldID]
		b.ID = newID
		switch b.Term.Kind {
		case TJump:
			b.Term.Then = remap[b.Term.Then]
		case TBranch:
			b.Term.Then = remap[b.Term.Then]
			b.Term.Else = remap[b.Term.Else]
		}
		blocks[newID] = b
	}
	f.Blocks = blocks
	f.Entry = 0
}

// rpo computes reverse postorder over reachable blocks starting at entry.
func (f *Func) rpo() []int {
	visited := make([]bool, len(f.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(id int) {
		visited[id] = true
		for _, s := range f.Blocks[id].Succs() {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, id)
	}
	dfs(f.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Preds returns, for each block, the list of predecessor block IDs. The
// function must be compacted.
func (f *Func) Preds() [][]int {
	preds := make([][]int, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b.ID)
		}
	}
	return preds
}

// Edge is a CFG edge.
type Edge struct{ From, To int }

// BackEdges identifies the back edges of a compacted function under a DFS
// from the entry. The targets of back edges are the loop headers; the wave
// partitioner places WAVE-ADVANCE on exactly these edges plus loop entries.
func (f *Func) BackEdges() map[Edge]bool {
	back := make(map[Edge]bool)
	state := make([]uint8, len(f.Blocks)) // 0 unvisited, 1 on stack, 2 done
	var dfs func(int)
	dfs = func(id int) {
		state[id] = 1
		for _, s := range f.Blocks[id].Succs() {
			switch state[s] {
			case 0:
				dfs(s)
			case 1:
				back[Edge{From: id, To: s}] = true
			}
		}
		state[id] = 2
	}
	dfs(f.Entry)
	return back
}

// LoopHeaders returns the set of blocks targeted by back edges.
func (f *Func) LoopHeaders() map[int]bool {
	headers := make(map[int]bool)
	for e := range f.BackEdges() {
		headers[e.To] = true
	}
	return headers
}

// Liveness computes per-block live-in and live-out register sets with the
// standard backward iterative dataflow. The function must be compacted.
func (f *Func) Liveness() (liveIn, liveOut []RegSet) {
	n := len(f.Blocks)
	liveIn = make([]RegSet, n)
	liveOut = make([]RegSet, n)
	use := make([]RegSet, n)
	def := make([]RegSet, n)
	var buf []Reg
	for i, b := range f.Blocks {
		liveIn[i] = NewRegSet(f.NumRegs)
		liveOut[i] = NewRegSet(f.NumRegs)
		use[i] = NewRegSet(f.NumRegs)
		def[i] = NewRegSet(f.NumRegs)
		for j := range b.Instrs {
			in := &b.Instrs[j]
			buf = in.Uses(buf[:0])
			for _, r := range buf {
				if !def[i].Has(r) {
					use[i].Add(r)
				}
			}
			if in.HasDst() {
				def[i].Add(in.Dst)
			}
		}
		switch b.Term.Kind {
		case TBranch:
			if !def[i].Has(b.Term.Cond) {
				use[i].Add(b.Term.Cond)
			}
		case TRet:
			if !def[i].Has(b.Term.Val) {
				use[i].Add(b.Term.Val)
			}
		}
	}
	// Iterate to fixpoint (postorder gives fast convergence; simple loop
	// over all blocks is fine at our sizes).
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			for _, s := range b.Succs() {
				if liveOut[i].UnionWith(liveIn[s]) {
					changed = true
				}
			}
			// in = use ∪ (out − def)
			newIn := liveOut[i].Clone()
			for _, r := range def[i].Members() {
				newIn.Remove(r)
			}
			newIn.UnionWith(use[i])
			if liveIn[i].UnionWith(newIn) {
				changed = true
			}
		}
	}
	return liveIn, liveOut
}
