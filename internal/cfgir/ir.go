// Package cfgir defines the compiler's mid-level intermediate
// representation: a control-flow graph of basic blocks holding
// three-address code over virtual registers.
//
// Each source variable owns a dedicated (multiply-assigned) register;
// expression temporaries are fresh single-assignment registers. This is
// deliberately not SSA: the dataflow backend converts per-block using
// liveness, and the linear backend allocates registers directly, so phi
// nodes would buy nothing here.
//
// The package also provides the standard analyses (predecessors, reverse
// postorder, dominators, liveness, back-edge detection), a small optimizer
// (constant folding, local copy propagation and CSE, dead-code elimination,
// CFG simplification), and an IR interpreter used as correctness oracle #2.
package cfgir

import (
	"fmt"
	"strings"

	"wavescalar/internal/isa"
)

// Reg is a virtual register. NoReg means "no register" (e.g. store results).
type Reg int32

// NoReg marks an absent register operand.
const NoReg Reg = -1

// InstrKind classifies a non-terminator instruction.
type InstrKind uint8

const (
	KConst  InstrKind = iota // Dst = Imm
	KAlu                     // Dst = Op(A, B);  unary ops ignore B
	KLoad                    // Dst = mem[A]
	KStore                   // mem[A] = B
	KCall                    // Dst = Funcs[Callee](Args...)
	KSelect                  // Dst = A != 0 ? B : C   (φ; produced by if-conversion)
)

// Instr is one three-address instruction.
type Instr struct {
	Kind   InstrKind
	Op     isa.Opcode // KAlu only
	Dst    Reg
	A, B   Reg
	C      Reg // KSelect false operand
	Imm    int64
	Callee int
	Args   []Reg
}

// Uses appends the registers this instruction reads to buf and returns it.
func (in *Instr) Uses(buf []Reg) []Reg {
	switch in.Kind {
	case KConst:
	case KAlu:
		buf = append(buf, in.A)
		if in.Op.NumInputs() == 2 {
			buf = append(buf, in.B)
		}
	case KLoad:
		buf = append(buf, in.A)
	case KStore:
		buf = append(buf, in.A, in.B)
	case KCall:
		buf = append(buf, in.Args...)
	case KSelect:
		buf = append(buf, in.A, in.B, in.C)
	}
	return buf
}

// HasDst reports whether the instruction writes a register.
func (in *Instr) HasDst() bool { return in.Kind != KStore }

// Pure reports whether the instruction has no side effects and may be
// removed when its destination is dead.
func (in *Instr) Pure() bool {
	return in.Kind == KConst || in.Kind == KAlu || in.Kind == KSelect
}

// TermKind classifies a block terminator.
type TermKind uint8

const (
	TJump   TermKind = iota // goto Then
	TBranch                 // if Cond != 0 goto Then else goto Else
	TRet                    // return Val
)

// Term is a block terminator.
type Term struct {
	Kind TermKind
	Cond Reg // TBranch
	Then int
	Else int
	Val  Reg // TRet
}

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []Instr
	Term   Term
}

// Succs returns the successor block IDs (0, 1, or 2 of them).
func (b *Block) Succs() []int {
	switch b.Term.Kind {
	case TJump:
		return []int{b.Term.Then}
	case TBranch:
		return []int{b.Term.Then, b.Term.Else}
	}
	return nil
}

// Func is one function in IR form.
type Func struct {
	Name    string
	Params  []Reg // registers holding incoming arguments
	NumRegs int
	Blocks  []*Block
	Entry   int
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := Reg(f.NumRegs)
	f.NumRegs++
	return r
}

// NewBlock appends an empty block and returns it.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Program is a whole compiled module plus its data segment.
type Program struct {
	Funcs     []*Func
	FuncIndex map[string]int
	Globals   []isa.Global
	MemWords  int64
}

// FuncByName returns the function's index, or -1.
func (p *Program) FuncByName(name string) int {
	if i, ok := p.FuncIndex[name]; ok {
		return i
	}
	return -1
}

// InitialMemory builds the initial data segment.
func (p *Program) InitialMemory() []int64 {
	m := make([]int64, p.MemWords)
	for _, g := range p.Globals {
		copy(m[g.Addr:g.Addr+g.Size], g.Init)
	}
	return m
}

// String renders the program as readable IR text (for tests and debugging).
func (p *Program) String() string {
	var sb strings.Builder
	for _, f := range p.Funcs {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String renders one function.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for i, r := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "r%d", r)
	}
	fmt.Fprintf(&sb, ") entry=b%d\n", f.Entry)
	for _, b := range f.Blocks {
		if b == nil {
			continue
		}
		fmt.Fprintf(&sb, "b%d:\n", b.ID)
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", b.Instrs[i].String())
		}
		fmt.Fprintf(&sb, "  %s\n", b.Term.String())
	}
	return sb.String()
}

// String renders one instruction.
func (in *Instr) String() string {
	switch in.Kind {
	case KConst:
		return fmt.Sprintf("r%d = %d", in.Dst, in.Imm)
	case KAlu:
		if in.Op.NumInputs() == 1 {
			return fmt.Sprintf("r%d = %s r%d", in.Dst, in.Op, in.A)
		}
		return fmt.Sprintf("r%d = %s r%d, r%d", in.Dst, in.Op, in.A, in.B)
	case KLoad:
		return fmt.Sprintf("r%d = load [r%d]", in.Dst, in.A)
	case KStore:
		return fmt.Sprintf("store [r%d] = r%d", in.A, in.B)
	case KCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = fmt.Sprintf("r%d", a)
		}
		return fmt.Sprintf("r%d = call #%d(%s)", in.Dst, in.Callee, strings.Join(args, ", "))
	case KSelect:
		return fmt.Sprintf("r%d = select r%d ? r%d : r%d", in.Dst, in.A, in.B, in.C)
	}
	return "?"
}

// String renders a terminator.
func (t Term) String() string {
	switch t.Kind {
	case TJump:
		return fmt.Sprintf("jump b%d", t.Then)
	case TBranch:
		return fmt.Sprintf("branch r%d ? b%d : b%d", t.Cond, t.Then, t.Else)
	case TRet:
		return fmt.Sprintf("ret r%d", t.Val)
	}
	return "?"
}
