package cfgir

import "wavescalar/internal/isa"

// This file is the memory-optimization tier (opt level 1, the compilers'
// -O): passes that shrink the program's KLoad/KStore population before the
// wave backend ever plans its per-wave memory ordering chains. Every
// load/store the tier removes is one fewer slot in a wave-ordered memory
// chain, so the tier attacks the architecture's central bottleneck at
// compile time.
//
// The aliasing model is deliberately syntactic and conservative. A memory
// fact "mem[a] == v" (address a currently holds a value equal to register
// v) is established by a load or a store through a, and is killed by:
//
//   - any store that may alias it (two constant addresses alias only when
//     equal; every other address pairing is assumed to alias),
//   - any call whose callee transitively touches memory,
//   - any redefinition of the address register or of v (registers are
//     multiply assigned).
//
// Addresses are canonicalized before keying: a register defined exactly
// once, by a constant, keys as that constant value. The builder
// re-materializes global addresses as a fresh constant register per use, so
// without canonicalization no two blocks would ever agree on an address.
// A single-definition constant register holds its constant at every use
// (definitions precede uses in builder output and no pass reorders code
// across them), so the constant key is exact, never killed by register
// redefinition, and lets facts about globals survive across blocks.
//
// Computed addresses (array indexing) get a second, block-local treatment:
// within one block, addresses are value-numbered — constants by value, ALU
// results by (op, operand-number) — so two registers that recompute the
// same address expression from the same inputs provably hold equal
// addresses even though the builder gave every occurrence a fresh register.
// Value numbers name values, not registers, so a number stays valid when
// the registers that produced it are overwritten; the facts keyed by them
// still die on aliasing stores and memory-touching calls exactly as above
// (two numbered addresses are provably distinct only when both are
// constants). This is what lets the tier fire on real array kernels, where
// e.g. a butterfly reads re[i1] twice through two distinct address
// registers.
//
// Facts flow forward across block boundaries as a must-analysis: a fact
// holds at block entry only when every predecessor ends with it. That is
// what makes the tier's scalar replacement safe around loops — a loop body
// that stores through any address kills the fact on the back edge, so a
// header load is only promoted when no path through the loop rewrites
// memory.
//
// Trap behavior is preserved by construction: a load is only replaced when
// every path to it already performed a load or store through the same
// canonical address with no intervening kill, so an out-of-range address
// has already faulted before the eliminated access; a store is only deleted
// when the next memory-touching event in its block is provably a store
// through the same canonical address, with only non-trapping pure
// instructions between (ALU ops are total: division by zero yields 0).
type MemOptStats struct {
	// StoresForwarded counts loads replaced by the value of a preceding
	// store to the same address (store-to-load forwarding).
	StoresForwarded int64
	// LoadsReused counts loads replaced by a preceding load of the same
	// address within the same block (redundant-load elimination beyond the
	// base optimizer's until-next-store CSE window — the facts here survive
	// an intervening same-address store).
	LoadsReused int64
	// LoadsPromoted counts loads replaced by a value carried across a block
	// boundary (scalar replacement of address-stable loads).
	LoadsPromoted int64
	// DeadStores counts stores deleted because a later store in the same
	// block overwrites the same address with no possible intervening
	// observer.
	DeadStores int64
	// MemBefore/MemAfter are the static KLoad+KStore counts around the
	// tier; InstrsBefore/InstrsAfter the total static instruction counts
	// (including the cleanup rounds that erase the moves the tier leaves
	// behind).
	MemBefore, MemAfter       int64
	InstrsBefore, InstrsAfter int64
}

// Add folds o into s (all fields commutative sums).
func (s *MemOptStats) Add(o MemOptStats) {
	s.StoresForwarded += o.StoresForwarded
	s.LoadsReused += o.LoadsReused
	s.LoadsPromoted += o.LoadsPromoted
	s.DeadStores += o.DeadStores
	s.MemBefore += o.MemBefore
	s.MemAfter += o.MemAfter
	s.InstrsBefore += o.InstrsBefore
	s.InstrsAfter += o.InstrsAfter
}

// Eliminated reports the net static instruction reduction.
func (s *MemOptStats) Eliminated() int64 { return s.InstrsBefore - s.InstrsAfter }

// OptimizeMemory runs the memory tier on every function — available-memory
// forwarding (store-to-load forwarding, redundant-load elimination, and
// cross-block scalar replacement as one dataflow problem), then local
// dead-store elimination — followed by the base pass pipeline to copy-
// propagate and dead-code-eliminate the moves the tier leaves behind.
// Callers run the base Optimize first; the tier assumes compacted blocks.
func (p *Program) OptimizeMemory() MemOptStats {
	var total MemOptStats
	touches := p.MemTouches()
	for _, f := range p.Funcs {
		st := MemOptStats{
			MemBefore:    countMemOps(f),
			InstrsBefore: countInstrs(f),
		}
		// The forwarding pass reveals new dead stores (a forwarded load no
		// longer reads the first store) and vice versa, so alternate to a
		// bounded fixpoint.
		for round := 0; round < 4; round++ {
			changed := forwardLocal(f, touches, &st)
			constOf := constDefs(f)
			if forwardMemory(f, touches, constOf, &st) {
				changed = true
			}
			if eliminateDeadStores(f, touches, constOf, &st) {
				changed = true
			}
			if !changed {
				break
			}
		}
		st.MemAfter = countMemOps(f)
		st.InstrsAfter = countInstrs(f)
		total.Add(st)
	}
	// Clean up the or-moves and newly dead address arithmetic; measure the
	// program-level instruction counts after cleanup so InstrsAfter reports
	// what the backends actually consume.
	p.Optimize()
	after := int64(0)
	for _, f := range p.Funcs {
		after += countInstrs(f)
	}
	total.InstrsAfter = after
	return total
}

// MemTouches reports, per function, whether it touches memory directly or
// transitively through calls. Functions that cannot touch memory are
// transparent to the tier's memory facts.
func (p *Program) MemTouches() []bool {
	touches := make([]bool, len(p.Funcs))
	for i, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b == nil {
				continue
			}
			for j := range b.Instrs {
				if b.Instrs[j].Kind == KLoad || b.Instrs[j].Kind == KStore {
					touches[i] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i, f := range p.Funcs {
			if touches[i] {
				continue
			}
			for _, b := range f.Blocks {
				if b == nil {
					continue
				}
				for j := range b.Instrs {
					in := &b.Instrs[j]
					if in.Kind == KCall && in.Callee >= 0 && in.Callee < len(touches) && touches[in.Callee] {
						touches[i] = true
						changed = true
					}
				}
			}
		}
	}
	return touches
}

func countMemOps(f *Func) int64 {
	n := int64(0)
	for _, b := range f.Blocks {
		if b == nil {
			continue
		}
		for i := range b.Instrs {
			if b.Instrs[i].Kind == KLoad || b.Instrs[i].Kind == KStore {
				n++
			}
		}
	}
	return n
}

func countInstrs(f *Func) int64 {
	n := int64(0)
	for _, b := range f.Blocks {
		if b == nil {
			continue
		}
		n += int64(len(b.Instrs))
	}
	return n
}

// constDefs maps every register defined exactly once, by a KConst, to its
// constant value. Such a register holds that value at every use, so it can
// serve as a canonical address key that survives block boundaries.
func constDefs(f *Func) map[Reg]int64 {
	defs := make(map[Reg]int)
	val := make(map[Reg]int64)
	isConst := make(map[Reg]bool)
	for _, b := range f.Blocks {
		if b == nil {
			continue
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if !in.HasDst() || in.Dst == NoReg {
				continue
			}
			defs[in.Dst]++
			if in.Kind == KConst {
				val[in.Dst] = in.Imm
				isConst[in.Dst] = true
			}
		}
	}
	out := make(map[Reg]int64)
	for r, n := range defs {
		if n == 1 && isConst[r] {
			out[r] = val[r]
		}
	}
	return out
}

// addrKey is a canonical memory address: the constant value for
// single-definition constant registers, the register itself otherwise.
type addrKey struct {
	r       Reg
	c       int64
	isConst bool
}

func canonAddr(r Reg, constOf map[Reg]int64) addrKey {
	if c, ok := constOf[r]; ok {
		return addrKey{c: c, isConst: true}
	}
	return addrKey{r: r}
}

// memFact records where a "mem[addr] == val" fact came from, for the
// per-pass counters: a store (forwarding) or a load (reuse/promotion).
type memFact struct {
	val       Reg
	fromStore bool
}

// factSet is the per-point fact map. nil means TOP (not yet computed —
// every fact holds), used only as the optimistic dataflow initializer;
// reachable program points always hold a concrete (possibly empty) map.
type factSet map[addrKey]memFact

func cloneFacts(s factSet) factSet {
	out := make(factSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// meetFacts intersects b into a (both non-TOP): facts must agree exactly.
func meetFacts(a, b factSet) factSet {
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			delete(a, k)
		}
	}
	return a
}

func factsEqual(a, b factSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// killReg drops every fact that mentions r as a register address or as the
// value. Constant-keyed addresses are immune to register redefinition.
func killReg(s factSet, r Reg) {
	for k, v := range s {
		if (!k.isConst && k.r == r) || v.val == r {
			delete(s, k)
		}
	}
}

// transferFacts applies one instruction to the fact set without rewriting.
func transferFacts(s factSet, in *Instr, touches []bool, constOf map[Reg]int64) {
	switch in.Kind {
	case KLoad:
		killReg(s, in.Dst)
		k := canonAddr(in.A, constOf)
		// A load through its own destination register destroys the address
		// (never constant-keyed: such a register has two definitions).
		if _, ok := s[k]; !ok && in.A != in.Dst {
			s[k] = memFact{val: in.Dst}
		}
		return
	case KStore:
		// A store kills every fact it may alias. Two constant addresses
		// alias only when equal; every other pairing must be assumed to.
		k := canonAddr(in.A, constOf)
		for fk := range s {
			if !(fk.isConst && k.isConst && fk.c != k.c) {
				delete(s, fk)
			}
		}
		s[k] = memFact{val: in.B, fromStore: true}
		return
	case KCall:
		if in.Callee >= 0 && in.Callee < len(touches) && touches[in.Callee] {
			for k := range s {
				delete(s, k)
			}
		}
	}
	if in.HasDst() {
		killReg(s, in.Dst)
	}
}

// forwardMemory is the availability dataflow plus rewriting: loads whose
// address has a known memory fact become register moves. Returns whether
// anything was rewritten.
func forwardMemory(f *Func, touches []bool, constOf map[Reg]int64, st *MemOptStats) bool {
	n := len(f.Blocks)
	preds := f.Preds()
	out := make([]factSet, n) // nil = TOP
	rpo := blockOrder(f)

	// Fixpoint over block summaries. Termination: out sets start at TOP and
	// only ever shrink (the meet is intersection, every transfer is
	// monotone), so the loop must run until stable — stopping early would
	// leave sets too large, which is the unsound direction.
	for {
		changed := false
		for _, bi := range rpo {
			b := f.Blocks[bi]
			if b == nil {
				continue
			}
			in := entryFacts(f, bi, preds[bi], out)
			for i := range b.Instrs {
				transferFacts(in, &b.Instrs[i], touches, constOf)
			}
			if out[bi] == nil || !factsEqual(out[bi], in) {
				out[bi] = in
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Rewrite pass: replay each block from its (now stable) entry facts,
	// replacing loads the facts cover with or-moves. The fact's provenance
	// picks the counter; crossing a block boundary upgrades reuse to
	// promotion (scalar replacement).
	rewrote := false
	for bi, b := range f.Blocks {
		if b == nil {
			continue
		}
		facts := entryFacts(f, bi, preds[bi], out)
		entry := cloneFacts(facts) // facts inherited from predecessors
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			if ins.Kind == KLoad {
				k := canonAddr(ins.A, constOf)
				if fact, ok := facts[k]; ok && fact.val != ins.Dst {
					fromEntry := false
					if ef, ok := entry[k]; ok && ef == fact {
						fromEntry = true
					}
					switch {
					case fact.fromStore:
						st.StoresForwarded++
					case fromEntry:
						st.LoadsPromoted++
					default:
						st.LoadsReused++
					}
					*ins = Instr{Kind: KAlu, Op: isa.OpOr, Dst: ins.Dst, A: fact.val, B: fact.val}
					rewrote = true
					// The move redefines Dst exactly as the load did; fall
					// through to the normal transfer below.
				}
			}
			transferFacts(facts, ins, touches, constOf)
			// Entry-provenance facts die the same way live facts do.
			for k, v := range entry {
				if fv, ok := facts[k]; !ok || fv != v {
					delete(entry, k)
				}
			}
		}
	}
	return rewrote
}

// forwardLocal is the block-local, value-numbered companion to
// forwardMemory. Where the dataflow pass keys facts by canonical address
// (and so only sees single-definition constant registers across blocks),
// this pass proves two *computed* addresses equal within a block: every
// register value gets a number — constants by value, ALU results by
// (op, operand numbers), everything else (block inputs, loads, calls) a
// fresh opaque number — and memory facts key on the address's number.
// Numbers name values, not registers, so redefining an address register
// does not invalidate a fact; facts still die when their value register
// is redefined, on stores to addresses not provably distinct (only two
// distinct constants are provably distinct), and on calls into memory-
// touching callees. Soundness of the rewrite is the usual same-block
// argument: the covering access executes earlier in the same block
// through a provably equal address, so the load's value and its trap
// (if the address is bad, the earlier access faulted first) are both
// preserved.
func forwardLocal(f *Func, touches []bool, st *MemOptStats) bool {
	rewrote := false
	type aluKey struct {
		op   isa.Opcode
		a, b int
	}
	// Every value number carries a linear term (root number + constant
	// offset): constants are {root 0, c}; adding or subtracting a constant
	// shifts the offset; everything else roots at itself with offset 0.
	// Two addresses with the same root and different offsets are provably
	// distinct — int64 addition is injective in its constant addend — which
	// is what disambiguates posX[i] from posY[i] (same index root, two
	// array bases) and a[i] from a[i+1] across unrolled loop bodies.
	type term struct {
		root int
		off  int64
	}
	for _, b := range f.Blocks {
		if b == nil {
			continue
		}
		nextVN := 0
		vn := make(map[Reg]int)     // register -> number of its current value
		terms := make(map[int]term) // number -> linear decomposition
		termVN := make(map[term]int)
		aluVN := make(map[aluKey]int)
		// pairVN canonicalizes a sum or difference of two non-constant
		// values as a synthetic root, so `(r*20 + c) + 1` and `r*20 + (c+1)`
		// normalize to the same root with offsets 0 and 1 (substituted
		// induction variables in unrolled bodies keep the builder's
		// left-associated shape, so pairing one level deep is enough).
		pairVN := make(map[aluKey]int)
		facts := make(map[int]memFact) // address number -> known content
		fresh := func() int {
			nextVN++
			terms[nextVN] = term{root: nextVN}
			termVN[term{root: nextVN}] = nextVN
			return nextVN
		}
		vnFor := func(t term) int {
			if v, ok := termVN[t]; ok {
				return v
			}
			nextVN++
			terms[nextVN] = t
			termVN[t] = nextVN
			return nextVN
		}
		getVN := func(r Reg) int {
			if v, ok := vn[r]; ok {
				return v
			}
			v := fresh() // block input: opaque but stable value
			vn[r] = v
			return v
		}
		killVal := func(r Reg) {
			for k, v := range facts {
				if v.val == r {
					delete(facts, k)
				}
			}
		}
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			switch ins.Kind {
			case KConst:
				killVal(ins.Dst)
				vn[ins.Dst] = vnFor(term{root: 0, off: ins.Imm})
			case KAlu:
				av := getVN(ins.A)
				bv := av
				if ins.Op.NumInputs() == 2 {
					bv = getVN(ins.B)
				}
				ta, tb := terms[av], terms[bv]
				if ins.Op.NumInputs() == 1 {
					tb = term{root: 0} // unary ops ignore B; EvalALU takes 0
				}
				var v int
				switch {
				case ta.root == 0 && tb.root == 0:
					// All operands constant: the value is too.
					v = vnFor(term{root: 0, off: isa.EvalALU(ins.Op, ta.off, tb.off)})
				case ins.Op == isa.OpAdd && ta.root == 0:
					v = vnFor(term{root: tb.root, off: tb.off + ta.off})
				case ins.Op == isa.OpAdd && tb.root == 0:
					v = vnFor(term{root: ta.root, off: ta.off + tb.off})
				case ins.Op == isa.OpSub && tb.root == 0:
					v = vnFor(term{root: ta.root, off: ta.off - tb.off})
				case ins.Op == isa.OpAdd:
					// Sum of two non-constants: root on the canonical
					// (commutative) pair of roots, offsets add.
					ra, rb := ta.root, tb.root
					if ra > rb {
						ra, rb = rb, ra
					}
					p, ok := pairVN[aluKey{isa.OpAdd, ra, rb}]
					if !ok {
						p = fresh()
						pairVN[aluKey{isa.OpAdd, ra, rb}] = p
					}
					v = vnFor(term{root: p, off: ta.off + tb.off})
				case ins.Op == isa.OpSub:
					p, ok := pairVN[aluKey{isa.OpSub, ta.root, tb.root}]
					if !ok {
						p = fresh()
						pairVN[aluKey{isa.OpSub, ta.root, tb.root}] = p
					}
					v = vnFor(term{root: p, off: ta.off - tb.off})
				default:
					k := aluKey{ins.Op, av, bv}
					var ok bool
					if v, ok = aluVN[k]; !ok {
						v = fresh()
						aluVN[k] = v
					}
				}
				killVal(ins.Dst)
				vn[ins.Dst] = v
			case KLoad:
				av := getVN(ins.A)
				if fact, ok := facts[av]; ok && fact.val != ins.Dst {
					if fact.fromStore {
						st.StoresForwarded++
					} else {
						st.LoadsReused++
					}
					src := fact.val
					*ins = Instr{Kind: KAlu, Op: isa.OpOr, Dst: ins.Dst, A: src, B: src}
					rewrote = true
					killVal(ins.Dst)
					vn[ins.Dst] = getVN(src) // the move copies src's value
					continue
				}
				killVal(ins.Dst)
				vn[ins.Dst] = fresh()
				facts[av] = memFact{val: ins.Dst}
			case KStore:
				av := getVN(ins.A)
				ta := terms[av]
				for k := range facts {
					if k == av {
						continue // overwritten just below
					}
					if tk := terms[k]; tk.root == ta.root && tk.off != ta.off {
						continue // same root, different offset: cannot alias
					}
					delete(facts, k)
				}
				facts[av] = memFact{val: ins.B, fromStore: true}
			case KCall:
				if ins.Callee >= 0 && ins.Callee < len(touches) && touches[ins.Callee] {
					facts = make(map[int]memFact)
				}
				killVal(ins.Dst)
				vn[ins.Dst] = fresh()
			default:
				if ins.HasDst() {
					killVal(ins.Dst)
					vn[ins.Dst] = fresh()
				}
			}
		}
	}
	return rewrote
}

// entryFacts computes a block's entry fact set: the meet over predecessor
// outs (TOP preds are skipped — optimistic initialization), empty for the
// entry block and for blocks whose predecessors are all TOP.
func entryFacts(f *Func, bi int, preds []int, out []factSet) factSet {
	if bi == f.Entry || len(preds) == 0 {
		return factSet{}
	}
	var in factSet
	for _, p := range preds {
		if out[p] == nil {
			continue // TOP: identity of the meet
		}
		if in == nil {
			in = cloneFacts(out[p])
		} else {
			in = meetFacts(in, out[p])
		}
	}
	if in == nil {
		return factSet{}
	}
	return in
}

// blockOrder returns reverse postorder over reachable blocks so the
// fixpoint converges in few passes.
func blockOrder(f *Func) []int {
	seen := make([]bool, len(f.Blocks))
	var post []int
	var walk func(int)
	walk = func(bi int) {
		if bi < 0 || bi >= len(f.Blocks) || seen[bi] || f.Blocks[bi] == nil {
			return
		}
		seen[bi] = true
		for _, s := range f.Blocks[bi].Succs() {
			walk(s)
		}
		post = append(post, bi)
	}
	walk(f.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// eliminateDeadStores deletes a store when the next memory-touching event
// in its own block is another store through the same canonical address,
// with only pure non-trapping instructions between. The window is
// deliberately local: the overwriting store always executes once the dead
// one has (same block, no intervening trap source), so deletion preserves
// the final memory image, the trap schedule, and every load's value.
func eliminateDeadStores(f *Func, touches []bool, constOf map[Reg]int64, st *MemOptStats) bool {
	changed := false
	for _, b := range f.Blocks {
		if b == nil {
			continue
		}
		keep := b.Instrs[:0]
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			if in.Kind == KStore && storeIsDead(b, i, constOf) {
				st.DeadStores++
				changed = true
				continue
			}
			keep = append(keep, in)
		}
		b.Instrs = keep
	}
	return changed
}

// storeIsDead reports whether the store at b.Instrs[i] is overwritten
// before any possible observer.
func storeIsDead(b *Block, i int, constOf map[Reg]int64) bool {
	key := canonAddr(b.Instrs[i].A, constOf)
	for j := i + 1; j < len(b.Instrs); j++ {
		in := &b.Instrs[j]
		switch in.Kind {
		case KStore:
			return canonAddr(in.A, constOf) == key
		case KLoad:
			return false
		case KCall:
			return false
		}
		if in.HasDst() && !key.isConst && in.Dst == key.r {
			return false
		}
	}
	return false
}
