package cfgir

import "wavescalar/internal/isa"

// Optimize runs the standard pass pipeline on every function until it
// reaches a fixpoint (bounded by a few rounds). Passes:
//
//   - constant folding and algebraic simplification
//   - local copy propagation (through or-with-zero moves)
//   - local common-subexpression elimination
//   - branch folding (constant conditions, branches to identical targets)
//   - dead code elimination (liveness-based)
//   - unreachable-block removal and renumbering
//
// The pipeline is deliberately local-plus-liveness: the source of most
// redundancy is the builder's move-heavy lowering, which these passes clean
// up completely on straight-line code.
func (p *Program) Optimize() {
	for _, f := range p.Funcs {
		f.Compact()
		for round := 0; round < 4; round++ {
			changed := false
			for _, b := range f.Blocks {
				if foldConstants(f, b) {
					changed = true
				}
				if localCSE(b) {
					changed = true
				}
			}
			if foldBranches(f) {
				changed = true
			}
			if eliminateDeadCode(f) {
				changed = true
			}
			f.Compact()
			if !changed {
				break
			}
		}
	}
}

// foldConstants tracks registers with known constant values within a block,
// folds ALU operations over them, and simplifies algebraic identities.
// Because variable registers are multiply assigned, the constant map is
// purely local and is invalidated at redefinition.
func foldConstants(f *Func, b *Block) bool {
	changed := false
	consts := make(map[Reg]int64)
	for i := range b.Instrs {
		in := &b.Instrs[i]
		switch in.Kind {
		case KConst:
			consts[in.Dst] = in.Imm
			continue
		case KAlu:
			av, aok := consts[in.A]
			bv, bok := consts[in.B]
			unary := in.Op.NumInputs() == 1
			if aok && (unary || bok) {
				v := isa.EvalALU(in.Op, av, bv)
				*in = Instr{Kind: KConst, Dst: in.Dst, Imm: v}
				consts[in.Dst] = v
				changed = true
				continue
			}
			// Algebraic identities that turn into moves (or-with-zero) so
			// copy propagation can consume them.
			simplify := func(src Reg) {
				zero := f.NewReg()
				b.Instrs = append(b.Instrs, Instr{})
				copy(b.Instrs[i+1:], b.Instrs[i:])
				b.Instrs[i] = Instr{Kind: KConst, Dst: zero, Imm: 0}
				b.Instrs[i+1] = Instr{Kind: KAlu, Op: isa.OpOr, Dst: b.Instrs[i+1].Dst, A: src, B: zero}
				changed = true
			}
			simplified := false
			switch {
			case in.Op == isa.OpAdd && bok && bv == 0:
				simplify(in.A)
				simplified = true
			case in.Op == isa.OpAdd && aok && av == 0:
				simplify(in.B)
				simplified = true
			case in.Op == isa.OpMul && bok && bv == 1:
				simplify(in.A)
				simplified = true
			case in.Op == isa.OpMul && aok && av == 1:
				simplify(in.B)
				simplified = true
			}
			if simplified {
				// The original destination is now defined by the inserted
				// move; any constant previously recorded for it is stale.
				delete(consts, b.Instrs[i+1].Dst)
				continue
			}
		}
		if in.HasDst() {
			delete(consts, in.Dst)
		}
	}
	return changed
}

// localCSE merges repeated pure computations within a block. The value
// table keys on (op, operands) and is invalidated when an operand register
// is redefined. Loads are also merged until the next store or call.
func localCSE(b *Block) bool {
	type key struct {
		kind InstrKind
		op   isa.Opcode
		a, b Reg
		c    Reg
		imm  int64
	}
	changed := false
	avail := make(map[key]Reg)   // expression -> register holding it
	users := make(map[Reg][]key) // operand register -> keys to invalidate
	copies := make(map[Reg]Reg)  // copy propagation map (dst -> src)

	resolve := func(r Reg) Reg {
		for {
			s, ok := copies[r]
			if !ok {
				return r
			}
			r = s
		}
	}
	invalidate := func(r Reg) {
		// Expressions that read r are stale.
		for _, k := range users[r] {
			delete(avail, k)
		}
		delete(users, r)
		// Expressions whose cached value lives in r are stale too (variable
		// registers are multiply assigned).
		for k, v := range avail {
			if v == r {
				delete(avail, k)
			}
		}
		delete(copies, r)
		// Any copy that resolves through r is stale.
		for d, s := range copies {
			if s == r {
				delete(copies, d)
			}
		}
	}

	for i := range b.Instrs {
		in := &b.Instrs[i]
		// Rewrite operands through the copy map first.
		switch in.Kind {
		case KAlu:
			na, nb := resolve(in.A), resolve(in.B)
			if na != in.A || (in.Op.NumInputs() == 2 && nb != in.B) {
				in.A = na
				if in.Op.NumInputs() == 2 {
					in.B = nb
				}
				changed = true
			}
		case KLoad:
			if na := resolve(in.A); na != in.A {
				in.A = na
				changed = true
			}
		case KStore:
			na, nb := resolve(in.A), resolve(in.B)
			if na != in.A || nb != in.B {
				in.A, in.B = na, nb
				changed = true
			}
		case KSelect:
			na, nb, nc := resolve(in.A), resolve(in.B), resolve(in.C)
			if na != in.A || nb != in.B || nc != in.C {
				in.A, in.B, in.C = na, nb, nc
				changed = true
			}
		case KCall:
			for j, a := range in.Args {
				if na := resolve(a); na != a {
					in.Args[j] = na
					changed = true
				}
			}
		}

		var k key
		cacheable := false
		switch in.Kind {
		case KConst:
			k = key{kind: KConst, imm: in.Imm}
			cacheable = true
		case KAlu:
			k = key{kind: KAlu, op: in.Op, a: in.A, b: in.B}
			if in.Op.NumInputs() == 1 {
				k.b = NoReg
			}
			cacheable = true
		case KLoad:
			k = key{kind: KLoad, a: in.A}
			cacheable = true
		case KSelect:
			k = key{kind: KSelect, a: in.A, b: in.B, c: in.C}
			cacheable = true
		case KStore, KCall:
			// Memory is clobbered: drop all cached loads.
			for kk := range avail {
				if kk.kind == KLoad {
					delete(avail, kk)
				}
			}
		}

		if in.HasDst() {
			invalidate(in.Dst)
		}

		if cacheable {
			if prev, ok := avail[k]; ok && prev != in.Dst {
				// Replace with a copy; later iterations propagate it.
				dst := in.Dst
				*in = Instr{Kind: KAlu, Op: isa.OpOr, Dst: dst, A: prev, B: prev}
				copies[dst] = prev
				users[prev] = append(users[prev], key{kind: KAlu, op: isa.OpOr, a: prev, b: prev})
				changed = true
				continue
			}
			avail[k] = in.Dst
			if k.a != NoReg && in.Kind != KConst {
				users[k.a] = append(users[k.a], k)
			}
			if k.b != NoReg && (in.Kind == KAlu || in.Kind == KSelect) {
				users[k.b] = append(users[k.b], k)
			}
			if k.c != NoReg && in.Kind == KSelect {
				users[k.c] = append(users[k.c], k)
			}
			// `or dst, src, zero` moves feed copy propagation when the
			// source is stable within the block.
			if in.Kind == KAlu && in.Op == isa.OpOr && in.A == in.B {
				copies[in.Dst] = in.A
			}
		}
	}
	return changed
}

// foldBranches replaces branches on constant conditions with jumps and
// collapses branches whose arms agree.
func foldBranches(f *Func) bool {
	changed := false
	for _, b := range f.Blocks {
		if b.Term.Kind != TBranch {
			continue
		}
		if b.Term.Then == b.Term.Else {
			b.Term = Term{Kind: TJump, Then: b.Term.Then}
			changed = true
			continue
		}
		// Constant condition: scan the block for the defining const.
		cond := b.Term.Cond
		known := false
		var cv int64
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.HasDst() && in.Dst == cond {
				if in.Kind == KConst {
					known, cv = true, in.Imm
				} else {
					known = false
				}
			}
		}
		if known {
			target := b.Term.Else
			if cv != 0 {
				target = b.Term.Then
			}
			b.Term = Term{Kind: TJump, Then: target}
			changed = true
		}
	}
	return changed
}

// eliminateDeadCode removes pure instructions whose results are never used.
func eliminateDeadCode(f *Func) bool {
	_, liveOut := f.Liveness()
	changed := false
	var buf []Reg
	for bi, b := range f.Blocks {
		live := liveOut[bi].Clone()
		switch b.Term.Kind {
		case TBranch:
			live.Add(b.Term.Cond)
		case TRet:
			live.Add(b.Term.Val)
		}
		keep := make([]Instr, 0, len(b.Instrs))
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if in.Pure() && !live.Has(in.Dst) {
				changed = true
				continue
			}
			if in.HasDst() {
				live.Remove(in.Dst)
			}
			buf = in.Uses(buf[:0])
			for _, r := range buf {
				live.Add(r)
			}
			keep = append(keep, in)
		}
		// keep is reversed.
		for i, j := 0, len(keep)-1; i < j; i, j = i+1, j-1 {
			keep[i], keep[j] = keep[j], keep[i]
		}
		b.Instrs = keep
	}
	return changed
}
