package cfgir

import (
	"fmt"

	"wavescalar/internal/isa"
	"wavescalar/internal/lang"
)

// Build lowers a checked wsl file into CFG IR.
func Build(file *lang.File) (*Program, error) {
	layout := lang.BuildLayout(file)
	p := &Program{
		FuncIndex: make(map[string]int),
		MemWords:  layout.Words,
	}
	for _, g := range file.Globals {
		p.Globals = append(p.Globals, isa.Global{
			Name: g.Name,
			Addr: layout.Addr[g.Name],
			Size: g.Size,
			Init: append([]int64(nil), g.Init...),
		})
	}
	for i, fn := range file.Funcs {
		p.FuncIndex[fn.Name] = i
	}
	for _, fn := range file.Funcs {
		b := &builder{prog: p, layout: layout, file: file}
		irf, err := b.buildFunc(fn)
		if err != nil {
			return nil, err
		}
		p.Funcs = append(p.Funcs, irf)
	}
	return p, nil
}

// builder lowers one function.
type builder struct {
	prog   *Program
	layout *lang.Layout
	file   *lang.File

	fn  *Func
	cur *Block

	// vars maps source variable names to their dedicated registers, as a
	// scope stack mirroring the checker's.
	vars []map[string]Reg

	// loop targets for break/continue.
	loops []loopCtx

	err error
}

type loopCtx struct {
	breakTo    int
	continueTo int
}

func (b *builder) errorf(pos lang.Pos, format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
	}
}

func (b *builder) pushScope() { b.vars = append(b.vars, make(map[string]Reg)) }
func (b *builder) popScope()  { b.vars = b.vars[:len(b.vars)-1] }

func (b *builder) declare(name string) Reg {
	r := b.fn.NewReg()
	b.vars[len(b.vars)-1][name] = r
	return r
}

func (b *builder) lookup(name string) (Reg, bool) {
	for i := len(b.vars) - 1; i >= 0; i-- {
		if r, ok := b.vars[i][name]; ok {
			return r, true
		}
	}
	return NoReg, false
}

func (b *builder) emit(in Instr) { b.cur.Instrs = append(b.cur.Instrs, in) }

func (b *builder) emitConst(v int64) Reg {
	r := b.fn.NewReg()
	b.emit(Instr{Kind: KConst, Dst: r, Imm: v})
	return r
}

func (b *builder) emitAlu(op isa.Opcode, a, bb Reg) Reg {
	r := b.fn.NewReg()
	b.emit(Instr{Kind: KAlu, Op: op, Dst: r, A: a, B: bb})
	return r
}

// copyTo emits Dst = src as an or-with-zero (the IR has no move; the
// optimizer folds these away or the backends treat them as moves).
func (b *builder) copyTo(dst, src Reg) {
	zero := b.emitConst(0)
	b.emit(Instr{Kind: KAlu, Op: isa.OpOr, Dst: dst, A: src, B: zero})
}

// terminate seals the current block and switches to next (which may be nil
// for unreachable continuations).
func (b *builder) setTerm(t Term) { b.cur.Term = t }

func (b *builder) buildFunc(fn *lang.FuncDecl) (*Func, error) {
	b.fn = &Func{Name: fn.Name}
	entry := b.fn.NewBlock()
	b.fn.Entry = entry.ID
	b.cur = entry
	b.pushScope()
	for _, pname := range fn.Params {
		b.fn.Params = append(b.fn.Params, b.declare(pname))
	}
	b.buildBlockStmt(fn.Body)
	// Implicit "return 0" on fallthrough.
	if b.cur != nil {
		zero := b.emitConst(0)
		b.setTerm(Term{Kind: TRet, Val: zero})
	}
	b.popScope()
	if b.err != nil {
		return nil, b.err
	}
	// Blocks left untermimated cannot exist: every path above seals.
	return b.fn, nil
}

func (b *builder) buildBlockStmt(blk *lang.Block) {
	b.pushScope()
	defer b.popScope()
	for _, s := range blk.Stmts {
		if b.cur == nil {
			return // unreachable code after return/break/continue
		}
		b.buildStmt(s)
	}
}

func (b *builder) buildStmt(s lang.Stmt) {
	switch s := s.(type) {
	case *lang.Block:
		b.buildBlockStmt(s)
	case *lang.VarStmt:
		var v Reg
		if s.Init != nil {
			v = b.buildExpr(s.Init)
		} else {
			v = b.emitConst(0)
		}
		r := b.declare(s.Name)
		b.copyTo(r, v)
	case *lang.AssignStmt:
		v := b.buildExpr(s.Val)
		if r, ok := b.lookup(s.Name); ok {
			b.copyTo(r, v)
			return
		}
		// Scalar global.
		addr := b.emitConst(b.layout.Addr[s.Name])
		b.emit(Instr{Kind: KStore, A: addr, B: v, Dst: NoReg})
	case *lang.StoreStmt:
		idx := b.buildExpr(s.Index)
		val := b.buildExpr(s.Val)
		addr := b.arrayAddr(s.Name, idx)
		b.emit(Instr{Kind: KStore, A: addr, B: val, Dst: NoReg})
	case *lang.IfStmt:
		cond := b.buildExpr(s.Cond)
		thenB := b.fn.NewBlock()
		var elseB *Block
		joinB := b.fn.NewBlock()
		elseTarget := joinB.ID
		if s.Else != nil {
			elseB = b.fn.NewBlock()
			elseTarget = elseB.ID
		}
		b.setTerm(Term{Kind: TBranch, Cond: cond, Then: thenB.ID, Else: elseTarget})
		b.cur = thenB
		b.buildBlockStmt(s.Then)
		if b.cur != nil {
			b.setTerm(Term{Kind: TJump, Then: joinB.ID})
		}
		if s.Else != nil {
			b.cur = elseB
			b.buildStmt(s.Else)
			if b.cur != nil {
				b.setTerm(Term{Kind: TJump, Then: joinB.ID})
			}
		}
		b.cur = joinB
	case *lang.WhileStmt:
		headB := b.fn.NewBlock()
		bodyB := b.fn.NewBlock()
		exitB := b.fn.NewBlock()
		b.setTerm(Term{Kind: TJump, Then: headB.ID})
		b.cur = headB
		cond := b.buildExpr(s.Cond)
		b.setTerm(Term{Kind: TBranch, Cond: cond, Then: bodyB.ID, Else: exitB.ID})
		b.loops = append(b.loops, loopCtx{breakTo: exitB.ID, continueTo: headB.ID})
		b.cur = bodyB
		b.buildBlockStmt(s.Body)
		if b.cur != nil {
			b.setTerm(Term{Kind: TJump, Then: headB.ID})
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = exitB
	case *lang.ForStmt:
		b.pushScope()
		defer b.popScope()
		if s.Init != nil {
			b.buildStmt(s.Init)
		}
		headB := b.fn.NewBlock()
		bodyB := b.fn.NewBlock()
		postB := b.fn.NewBlock()
		exitB := b.fn.NewBlock()
		b.setTerm(Term{Kind: TJump, Then: headB.ID})
		b.cur = headB
		if s.Cond != nil {
			cond := b.buildExpr(s.Cond)
			b.setTerm(Term{Kind: TBranch, Cond: cond, Then: bodyB.ID, Else: exitB.ID})
		} else {
			b.setTerm(Term{Kind: TJump, Then: bodyB.ID})
		}
		b.loops = append(b.loops, loopCtx{breakTo: exitB.ID, continueTo: postB.ID})
		b.cur = bodyB
		b.buildBlockStmt(s.Body)
		if b.cur != nil {
			b.setTerm(Term{Kind: TJump, Then: postB.ID})
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = postB
		if s.Post != nil {
			b.buildStmt(s.Post)
		}
		b.setTerm(Term{Kind: TJump, Then: headB.ID})
		b.cur = exitB
	case *lang.ReturnStmt:
		var v Reg
		if s.Val != nil {
			v = b.buildExpr(s.Val)
		} else {
			v = b.emitConst(0)
		}
		b.setTerm(Term{Kind: TRet, Val: v})
		b.cur = nil
	case *lang.BreakStmt:
		lc := b.loops[len(b.loops)-1]
		b.setTerm(Term{Kind: TJump, Then: lc.breakTo})
		b.cur = nil
	case *lang.ContinueStmt:
		lc := b.loops[len(b.loops)-1]
		b.setTerm(Term{Kind: TJump, Then: lc.continueTo})
		b.cur = nil
	case *lang.ExprStmt:
		b.buildExpr(s.X)
	default:
		panic(fmt.Sprintf("cfgir: unknown statement %T", s))
	}
}

// arrayAddr computes &name[idx].
func (b *builder) arrayAddr(name string, idx Reg) Reg {
	base := b.layout.Addr[name]
	if base == 0 {
		return idx
	}
	baseR := b.emitConst(base)
	return b.emitAlu(isa.OpAdd, baseR, idx)
}

func (b *builder) buildExpr(e lang.Expr) Reg {
	switch e := e.(type) {
	case *lang.IntLit:
		return b.emitConst(e.Val)
	case *lang.Ident:
		if r, ok := b.lookup(e.Name); ok {
			return r
		}
		addr := b.emitConst(b.layout.Addr[e.Name])
		r := b.fn.NewReg()
		b.emit(Instr{Kind: KLoad, Dst: r, A: addr})
		return r
	case *lang.IndexExpr:
		idx := b.buildExpr(e.Index)
		addr := b.arrayAddr(e.Name, idx)
		r := b.fn.NewReg()
		b.emit(Instr{Kind: KLoad, Dst: r, A: addr})
		return r
	case *lang.CallExpr:
		args := make([]Reg, len(e.Args))
		for i, a := range e.Args {
			args[i] = b.buildExpr(a)
		}
		r := b.fn.NewReg()
		b.emit(Instr{Kind: KCall, Dst: r, Callee: b.prog.FuncIndex[e.Name], Args: args})
		return r
	case *lang.UnaryExpr:
		x := b.buildExpr(e.X)
		switch e.Op {
		case lang.TokMinus:
			return b.emitAlu(isa.OpNeg, x, NoReg)
		case lang.TokTilde:
			return b.emitAlu(isa.OpNot, x, NoReg)
		case lang.TokBang:
			zero := b.emitConst(0)
			return b.emitAlu(isa.OpEq, x, zero)
		}
		panic(fmt.Sprintf("cfgir: unknown unary op %v", e.Op))
	case *lang.BinaryExpr:
		switch e.Op {
		case lang.TokAndAnd, lang.TokOrOr:
			return b.buildShortCircuit(e)
		}
		l := b.buildExpr(e.L)
		r := b.buildExpr(e.R)
		return b.emitAlu(lang.BinaryOpcode(e.Op), l, r)
	default:
		panic(fmt.Sprintf("cfgir: unknown expression %T", e))
	}
}

// buildShortCircuit lowers && and || to control flow writing a dedicated
// result register.
func (b *builder) buildShortCircuit(e *lang.BinaryExpr) Reg {
	result := b.fn.NewReg()
	l := b.buildExpr(e.L)
	zero := b.emitConst(0)
	lbool := b.emitAlu(isa.OpNe, l, zero)

	rhsB := b.fn.NewBlock()
	joinB := b.fn.NewBlock()

	// For &&: if lbool is false the result is 0 and we skip the RHS.
	// For ||: if lbool is true the result is 1 and we skip the RHS.
	b.copyTo(result, lbool)
	if e.Op == lang.TokAndAnd {
		b.setTerm(Term{Kind: TBranch, Cond: lbool, Then: rhsB.ID, Else: joinB.ID})
	} else {
		b.setTerm(Term{Kind: TBranch, Cond: lbool, Then: joinB.ID, Else: rhsB.ID})
	}
	b.cur = rhsB
	r := b.buildExpr(e.R)
	zero2 := b.emitConst(0)
	rbool := b.emitAlu(isa.OpNe, r, zero2)
	b.copyTo(result, rbool)
	b.setTerm(Term{Kind: TJump, Then: joinB.ID})
	b.cur = joinB
	return result
}
