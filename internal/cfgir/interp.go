package cfgir

import (
	"fmt"

	"wavescalar/internal/isa"
)

// Interp executes CFG IR directly; it is correctness oracle #2, sitting
// between the AST evaluator and the dataflow/linear backends.
type Interp struct {
	prog *Program
	mem  []int64
	fuel int64

	// Instrs counts executed IR instructions (a backend-independent work
	// metric used to size workloads).
	Instrs int64
}

// ErrInterpFuel reports that execution exceeded the instruction budget.
var ErrInterpFuel = fmt.Errorf("cfgir: interpretation exceeded instruction budget")

// NewInterp prepares an interpreter. fuel bounds executed instructions
// (0 means a default of 2G).
func NewInterp(p *Program, fuel int64) *Interp {
	if fuel == 0 {
		fuel = 2_000_000_000
	}
	return &Interp{prog: p, mem: p.InitialMemory(), fuel: fuel}
}

// Memory exposes the live memory image.
func (ip *Interp) Memory() []int64 { return ip.mem }

// Run executes main and returns its result.
func (ip *Interp) Run() (int64, error) {
	mainIdx := ip.prog.FuncByName("main")
	if mainIdx < 0 {
		return 0, fmt.Errorf("cfgir: no main function")
	}
	return ip.call(mainIdx, nil)
}

func (ip *Interp) call(fi int, args []int64) (int64, error) {
	f := ip.prog.Funcs[fi]
	regs := make([]int64, f.NumRegs)
	for i, pr := range f.Params {
		regs[pr] = args[i]
	}
	bid := f.Entry
	for {
		b := f.Blocks[bid]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			ip.Instrs++
			ip.fuel--
			if ip.fuel < 0 {
				return 0, ErrInterpFuel
			}
			switch in.Kind {
			case KConst:
				regs[in.Dst] = in.Imm
			case KAlu:
				regs[in.Dst] = isa.EvalALU(in.Op, regs[in.A], ip.operandB(regs, in))
			case KLoad:
				addr := regs[in.A]
				if addr < 0 || addr >= int64(len(ip.mem)) {
					return 0, fmt.Errorf("cfgir: %s: load address %d out of range", f.Name, addr)
				}
				regs[in.Dst] = ip.mem[addr]
			case KStore:
				addr := regs[in.A]
				if addr < 0 || addr >= int64(len(ip.mem)) {
					return 0, fmt.Errorf("cfgir: %s: store address %d out of range", f.Name, addr)
				}
				ip.mem[addr] = regs[in.B]
			case KCall:
				callArgs := make([]int64, len(in.Args))
				for j, a := range in.Args {
					callArgs[j] = regs[a]
				}
				v, err := ip.call(in.Callee, callArgs)
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = v
			case KSelect:
				if regs[in.A] != 0 {
					regs[in.Dst] = regs[in.B]
				} else {
					regs[in.Dst] = regs[in.C]
				}
			}
		}
		ip.Instrs++
		ip.fuel--
		if ip.fuel < 0 {
			return 0, ErrInterpFuel
		}
		switch b.Term.Kind {
		case TJump:
			bid = b.Term.Then
		case TBranch:
			if regs[b.Term.Cond] != 0 {
				bid = b.Term.Then
			} else {
				bid = b.Term.Else
			}
		case TRet:
			return regs[b.Term.Val], nil
		}
	}
}

func (ip *Interp) operandB(regs []int64, in *Instr) int64 {
	if in.Op.NumInputs() == 1 {
		return 0
	}
	return regs[in.B]
}
