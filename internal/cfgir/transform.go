package cfgir

// SplitCriticalEdges inserts an empty block on every edge whose source has
// multiple successors and whose target has multiple predecessors. The
// dataflow backend requires this: wave-ordered memory links every pair of
// consecutive operations through at least one statically known side, which
// holds exactly when no edge is critical.
func (f *Func) SplitCriticalEdges() {
	preds := f.Preds()
	for _, b := range f.Blocks[:len(f.Blocks):len(f.Blocks)] {
		if b.Term.Kind != TBranch {
			continue
		}
		split := func(target int) int {
			if len(preds[target]) < 2 {
				return target
			}
			m := f.NewBlock()
			m.Term = Term{Kind: TJump, Then: target}
			return m.ID
		}
		b.Term.Then = split(b.Term.Then)
		b.Term.Else = split(b.Term.Else)
	}
	f.Compact()
}

// IfConvert converts small, pure if/else diamonds (and triangles) into
// straight-line code ending in KSelect instructions — the φ instruction of
// the WaveScalar ISA. The paper discusses φ (select) versus φ⁻¹ (steer)
// control: selects remove steers and branch waves at the cost of executing
// both arms. This pass is the compiler half of that trade-off; experiment
// E9 measures it.
//
// maxArm bounds the number of instructions per converted arm.
func (f *Func) IfConvert(maxArm int) {
	for {
		if !f.ifConvertOnce(maxArm) {
			break
		}
		f.Compact()
	}
}

func (f *Func) ifConvertOnce(maxArm int) bool {
	preds := f.Preds()
	liveIn, _ := f.Liveness()

	pureArm := func(id int) bool {
		b := f.Blocks[id]
		if len(b.Instrs) > maxArm || b.Term.Kind != TJump {
			return false
		}
		if len(preds[id]) != 1 {
			return false
		}
		for i := range b.Instrs {
			if !b.Instrs[i].Pure() {
				return false
			}
		}
		return true
	}

	for _, u := range f.Blocks {
		if u.Term.Kind != TBranch {
			continue
		}
		thenID, elseID := u.Term.Then, u.Term.Else
		var join int
		thenArm, elseArm := -1, -1
		switch {
		case pureArm(thenID) && pureArm(elseID) &&
			f.Blocks[thenID].Term.Then == f.Blocks[elseID].Term.Then &&
			thenID != elseID:
			join = f.Blocks[thenID].Term.Then
			thenArm, elseArm = thenID, elseID
		case pureArm(thenID) && f.Blocks[thenID].Term.Then == elseID:
			// Triangle: u -> then -> join, u -> join.
			join = elseID
			thenArm = thenID
		case pureArm(elseID) && f.Blocks[elseID].Term.Then == thenID:
			join = thenID
			elseArm = elseID
		default:
			continue
		}
		if join == u.ID || thenArm == join || elseArm == join {
			continue
		}

		cond := u.Term.Cond
		// Inline both arms with their definitions renamed to fresh
		// registers, then select the merged values.
		type armResult struct{ lastDef map[Reg]Reg }
		inline := func(id int) armResult {
			res := armResult{lastDef: make(map[Reg]Reg)}
			if id < 0 {
				return res
			}
			rename := make(map[Reg]Reg)
			for _, in := range f.Blocks[id].Instrs {
				ni := in
				// Rewrite uses through current renames.
				sub := func(r Reg) Reg {
					if nr, ok := rename[r]; ok {
						return nr
					}
					return r
				}
				ni.A, ni.B, ni.C = sub(ni.A), sub(ni.B), sub(ni.C)
				fresh := f.NewReg()
				rename[ni.Dst] = fresh
				res.lastDef[ni.Dst] = fresh
				ni.Dst = fresh
				u.Instrs = append(u.Instrs, ni)
			}
			return res
		}
		ra := inline(thenArm)
		rb := inline(elseArm)

		// Merge every register defined by either arm that the join can see.
		merged := make(map[Reg]bool)
		for r := range ra.lastDef {
			merged[r] = true
		}
		for r := range rb.lastDef {
			merged[r] = true
		}
		// A merge is needed exactly for the registers the join block can
		// observe (liveness at the join, not at u: a register defined in an
		// arm and first used at the join is not live out of u).
		needed := liveIn[join]
		for r := range merged {
			if !needed.Has(r) {
				continue
			}
			tv, fv := r, r
			if nr, ok := ra.lastDef[r]; ok {
				tv = nr
			}
			if nr, ok := rb.lastDef[r]; ok {
				fv = nr
			}
			u.Instrs = append(u.Instrs, Instr{Kind: KSelect, Dst: r, A: cond, B: tv, C: fv})
		}
		u.Term = Term{Kind: TJump, Then: join}
		return true
	}
	return false
}
