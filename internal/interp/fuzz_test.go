package interp

import (
	"testing"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/lang"
	"wavescalar/internal/linear"
	"wavescalar/internal/ooo"
	"wavescalar/internal/placement"
	"wavescalar/internal/testprogs"
	"wavescalar/internal/wavec"
	"wavescalar/internal/wavecache"
)

// TestDifferentialFuzz generates random programs and requires every
// execution engine — AST evaluator, IR interpreter, dataflow interpreter
// (plain, optimized, if-converted, unrolled), linear emulator, WaveCache
// simulator, and superscalar model — to agree on the result and the final
// memory image. This is the repository's strongest correctness net: any
// divergence in the compiler, the wave-ordering logic, or a simulator
// surfaces as a seed-reproducible failure.
func TestDifferentialFuzz(t *testing.T) {
	seeds := int64(120)
	if testing.Short() {
		seeds = 25
	}
	checked := 0
	for seed := int64(0); seed < seeds; seed++ {
		src := testprogs.Generate(seed)
		if !testprogs.TerminatesWithin(src, 300_000) {
			continue // too long for the slow engines; filtered, not failed
		}
		checked++

		f, err := lang.ParseAndCheck(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		ev := lang.NewEvaluator(f, 0)
		want, err := ev.Run()
		if err != nil {
			t.Fatalf("seed %d: evaluator: %v", seed, err)
		}
		wantMem := ev.Memory()

		checkMem := func(engine string, mem []int64) {
			t.Helper()
			for i := range wantMem {
				if mem[i] != wantMem[i] {
					t.Fatalf("seed %d: %s memory[%d] = %d, want %d\n%s",
						seed, engine, i, mem[i], wantMem[i], src)
				}
			}
		}

		type variant struct {
			name   string
			unroll int
			opt    bool
			ifConv bool
		}
		for _, v := range []variant{
			{"plain", 1, false, false},
			{"opt", 1, true, false},
			{"opt+select", 1, true, true},
			{"opt+unroll", 4, true, false},
		} {
			f2, err := lang.ParseAndCheck(src)
			if err != nil {
				t.Fatal(err)
			}
			if v.unroll > 1 {
				lang.Unroll(f2, v.unroll)
			}
			p, err := cfgir.Build(f2)
			if err != nil {
				t.Fatalf("seed %d/%s: build: %v", seed, v.name, err)
			}
			for _, fn := range p.Funcs {
				fn.Compact()
			}
			if v.opt {
				p.Optimize()
			}

			// IR interpreter.
			ip := cfgir.NewInterp(p, 0)
			got, err := ip.Run()
			if err != nil {
				t.Fatalf("seed %d/%s: IR interp: %v\n%s", seed, v.name, err, src)
			}
			if got != want {
				t.Fatalf("seed %d/%s: IR interp = %d, want %d\n%s", seed, v.name, got, want, src)
			}
			checkMem("IR interp "+v.name, ip.Memory())

			// Linear emulator (rebuild: wavec mutates the IR).
			lp, err := linear.Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			em := linear.NewEmulator(lp, 0)
			got, err = em.Run()
			if err != nil {
				t.Fatalf("seed %d/%s: linear: %v\n%s", seed, v.name, err, src)
			}
			if got != want {
				t.Fatalf("seed %d/%s: linear = %d, want %d\n%s", seed, v.name, got, want, src)
			}
			checkMem("linear "+v.name, em.Memory())

			// Dataflow interpreter.
			wp, err := wavec.Compile(p, wavec.Options{IfConvert: v.ifConv})
			if err != nil {
				t.Fatalf("seed %d/%s: wavec: %v\n%s", seed, v.name, err, src)
			}
			m := New(wp, 0)
			got, err = m.Run()
			if err != nil {
				t.Fatalf("seed %d/%s: dataflow: %v\n%s", seed, v.name, err, src)
			}
			if got != want {
				t.Fatalf("seed %d/%s: dataflow = %d, want %d\n%s", seed, v.name, got, want, src)
			}
			checkMem("dataflow "+v.name, m.Memory())

			// Timing engines on the optimized variant only (they are slow).
			if v.name == "opt" {
				cfg := wavecache.DefaultConfig(2, 2)
				pol, err := placement.NewDynamicSnake(cfg.Machine)
				if err != nil {
					t.Fatalf("seed %d: placement: %v", seed, err)
				}
				res, mem2, err := wavecache.RunWithMemory(wp, pol, cfg)
				if err != nil {
					t.Fatalf("seed %d: wavecache: %v\n%s", seed, err, src)
				}
				if res.Value != want {
					t.Fatalf("seed %d: wavecache = %d, want %d\n%s", seed, res.Value, want, src)
				}
				checkMem("wavecache", mem2)

				ores, err := ooo.Run(lp, ooo.DefaultConfig())
				if err != nil {
					t.Fatalf("seed %d: ooo: %v\n%s", seed, err, src)
				}
				if ores.Value != want {
					t.Fatalf("seed %d: ooo = %d, want %d\n%s", seed, ores.Value, want, src)
				}
			}
		}
	}
	if checked < int(seeds)/2 {
		t.Fatalf("only %d/%d seeds usable; generator too explosive", checked, seeds)
	}
	t.Logf("differentially verified %d random programs across all engines", checked)
}
