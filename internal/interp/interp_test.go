package interp

import (
	"errors"
	"strings"
	"testing"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/isa"
	"wavescalar/internal/lang"
	"wavescalar/internal/testprogs"
	"wavescalar/internal/wavec"
)

// compileVariants builds the dataflow program under each compilation mode.
func compileVariants(t *testing.T, src string) map[string]*isa.Program {
	t.Helper()
	out := make(map[string]*isa.Program)
	for name, cfg := range map[string]struct {
		optimize  bool
		ifConvert bool
	}{
		"plain":      {false, false},
		"opt":        {true, false},
		"opt+select": {true, true},
	} {
		f, err := lang.ParseAndCheck(src)
		if err != nil {
			t.Fatalf("frontend: %v", err)
		}
		p, err := cfgir.Build(f)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		for _, fn := range p.Funcs {
			fn.Compact()
		}
		if cfg.optimize {
			p.Optimize()
		}
		wp, err := wavec.Compile(p, wavec.Options{IfConvert: cfg.ifConvert})
		if err != nil {
			t.Fatalf("%s: wavec: %v", name, err)
		}
		out[name] = wp
	}
	return out
}

// TestDataflowMatchesEvaluator is the central differential test: for every
// corpus program and every compilation mode, the dataflow machine must
// produce the AST evaluator's result and final memory image.
func TestDataflowMatchesEvaluator(t *testing.T) {
	for _, c := range testprogs.Corpus {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			f, err := lang.ParseAndCheck(c.Src)
			if err != nil {
				t.Fatal(err)
			}
			ev := lang.NewEvaluator(f, 0)
			want, err := ev.Run()
			if err != nil {
				t.Fatalf("evaluator: %v", err)
			}
			for mode, wp := range compileVariants(t, c.Src) {
				m := New(wp, 0)
				got, err := m.Run()
				if err != nil {
					t.Errorf("%s: %v", mode, err)
					continue
				}
				if got != want {
					t.Errorf("%s: result %d, want %d", mode, got, want)
				}
				wantMem := ev.Memory()
				gotMem := m.Memory()
				for i := range wantMem {
					if gotMem[i] != wantMem[i] {
						t.Errorf("%s: memory[%d] = %d, want %d", mode, i, gotMem[i], wantMem[i])
						break
					}
				}
			}
		})
	}
}

func compileOne(t *testing.T, src string) *isa.Program {
	t.Helper()
	f, err := lang.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfgir.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range p.Funcs {
		fn.Compact()
	}
	p.Optimize()
	wp, err := wavec.Compile(p, wavec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return wp
}

func TestHeavyPrograms(t *testing.T) {
	for _, c := range testprogs.Heavy {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			want, err := lang.EvalProgram(c.Src)
			if err != nil {
				t.Fatal(err)
			}
			wp := compileOne(t, c.Src)
			got, err := New(wp, 0).Run()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("got %d, want %d", got, want)
			}
		})
	}
}

func TestLoopIterationsOverlap(t *testing.T) {
	// The dataflow machine should expose loop parallelism: wave numbers let
	// iterations coexist. We check wave advances happened and that the
	// token queue grew beyond a single iteration's worth.
	src := "global a[64];\nfunc main() { for var i = 0; i < 64; i = i + 1 { a[i] = i * 7; } var s = 0; for var i = 0; i < 64; i = i + 1 { s = s + a[i]; } return s; }"
	wp := compileOne(t, src)
	m := New(wp, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.WaveAdvance == 0 {
		t.Error("no wave advances in a loopy program")
	}
	if st.Steers == 0 {
		t.Error("no steers in a branchy program")
	}
	if m.MaxQueue() < 4 {
		t.Errorf("suspiciously little parallelism: max queue %d", m.MaxQueue())
	}
}

func TestMemoryOrderingStats(t *testing.T) {
	src := "global a[4];\nfunc main() { a[0] = 1; a[1] = a[0] + 1; a[0] = a[1] + 1; return a[0] * 10 + a[1]; }"
	wp := compileOne(t, src)
	m := New(wp, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	ms := m.MemStats()
	// Loads: a[0] and a[1] feeding the stores, then a[0] and a[1] in the
	// return expression (stores in between defeat CSE). Stores: three.
	if ms.Loads != 4 || ms.Stores != 3 {
		t.Errorf("loads=%d stores=%d, want 4/3", ms.Loads, ms.Stores)
	}
	if ms.Submitted != ms.Issued {
		t.Errorf("submitted %d != issued %d", ms.Submitted, ms.Issued)
	}
	if ms.Ends == 0 {
		t.Error("no context end recorded")
	}
}

func TestProfileCollection(t *testing.T) {
	src := `func main() { var s = 0; for var i = 0; i < 8; i = i + 1 { s = s + i; } return s; }`
	wp := compileOne(t, src)
	m := New(wp, 0)
	prof := m.CollectProfile(16)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if prof.TotalFires == 0 || prof.TotalTokens == 0 {
		t.Fatal("profile is empty")
	}
	if prof.TotalFires != m.Stats().Fired {
		t.Errorf("profile fires %d != stats %d", prof.TotalFires, m.Stats().Fired)
	}
	// The loop body instructions should have fired ~8 times.
	var maxFires uint64
	for _, n := range prof.Fires {
		if n > maxFires {
			maxFires = n
		}
	}
	if maxFires < 8 {
		t.Errorf("hottest instruction fired %d times, want >= 8", maxFires)
	}
}

func TestFuelExhaustion(t *testing.T) {
	wp := compileOne(t, `func main() { var i = 0; while i < 1000000 { i = i + 1; } return i; }`)
	_, err := New(wp, 100).Run()
	if !errors.Is(err, ErrFuel) {
		t.Fatalf("got %v, want ErrFuel", err)
	}
	// The wrapped error carries the diagnostic dump for -max-cycles users.
	if !strings.Contains(err.Error(), "tokens in flight") {
		t.Errorf("fuel error lacks diagnostic context: %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	wp := compileOne(t, `func f(x) { return x + 1; } func main() { return f(f(f(0))); }`)
	m := New(wp, 0)
	got, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("result = %d", got)
	}
	st := m.Stats()
	if st.Calls != 3 {
		t.Errorf("calls = %d, want 3", st.Calls)
	}
	if st.Fired == 0 || st.Tokens < st.Fired {
		t.Errorf("fired=%d tokens=%d look wrong", st.Fired, st.Tokens)
	}
}

func TestWaveAnnotationShapes(t *testing.T) {
	// Inspect the compiled binary of a memory-heavy loop: every Load/Store
	// must carry an annotation, every function that touches memory must end
	// its returns with MemEnd, and wave numbers must be in range.
	wp := compileOne(t, "global a[8];\nfunc main() { for var i = 0; i < 8; i = i + 1 { a[i] = i; } return a[3]; }")
	f := &wp.Funcs[wp.Entry]
	if !f.TouchesMemory {
		t.Fatal("main should touch memory")
	}
	loads, stores, nops, ends := 0, 0, 0, 0
	for i := range f.Instrs {
		in := &f.Instrs[i]
		switch in.Op {
		case isa.OpLoad:
			loads++
		case isa.OpStore:
			stores++
		case isa.OpMemNop:
			nops++
		case isa.OpReturn:
			if in.Mem.Kind != isa.MemEnd {
				t.Error("return missing MemEnd")
			}
			ends++
		}
		if in.Wave < 0 || in.Wave >= f.NumWaves {
			t.Errorf("instruction %d wave %d out of range", i, in.Wave)
		}
	}
	if loads != 1 || stores != 1 {
		t.Errorf("loads=%d stores=%d, want 1/1", loads, stores)
	}
	if nops == 0 {
		t.Error("expected wave-exit / block memory nops")
	}
	if f.NumWaves < 2 {
		t.Errorf("loopy function has %d waves, want >= 2", f.NumWaves)
	}
}

func BenchmarkInterpMatmul(b *testing.B) {
	f, err := lang.ParseAndCheck(testprogs.Heavy[2].Src)
	if err != nil {
		b.Fatal(err)
	}
	p, _ := cfgir.Build(f)
	for _, fn := range p.Funcs {
		fn.Compact()
	}
	p.Optimize()
	wp, err := wavec.Compile(p, wavec.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(wp, 0).Run(); err != nil {
			b.Fatal(err)
		}
	}
}
