// Package interp is the reference tagged-token dataflow interpreter: an
// idealized WaveScalar machine with unbounded processing elements and
// unit-latency communication. It executes isa.Programs exactly as the
// paper's execution model prescribes — tokens, the dataflow firing rule,
// steers, wave advances, context allocation, and wave-ordered memory — but
// with no microarchitectural timing.
//
// It serves three roles: correctness oracle #3 (the WaveCache simulator and
// the two baseline engines must agree with it), the "ideal dataflow" limit
// machine in experiment E1, and the profile collector feeding the placement
// algorithms.
package interp

import (
	"errors"
	"fmt"

	"wavescalar/internal/isa"
	"wavescalar/internal/profile"
	"wavescalar/internal/tagtable"
	"wavescalar/internal/waveorder"
)

// Machine executes one program.
type Machine struct {
	prog *isa.Program
	mem  []int64

	engine *waveorder.Engine

	queue tokenQueue

	// opstore holds partially matched input tuples per instruction per tag.
	opstore []map[isa.Tag]*operands // indexed by global instruction index

	instrBase []int // per function, offset into opstore

	ctxMeta map[uint32]ctxInfo
	nextCtx uint32

	// cookies holds reply-routing records for in-flight loads; requests
	// carry slab indices (Cookie is an integer handle, never a boxed
	// value).
	cookies tagtable.Slab[memCookie]

	fuel     int64
	done     bool
	result   int64
	profile  *profile.Profile
	stats    Stats
	maxQueue int
}

// Stats counts interpreter activity.
type Stats struct {
	Fired       uint64 // dynamic instruction count
	Tokens      uint64 // operand deliveries
	Loads       uint64
	Stores      uint64
	WaveAdvance uint64
	Steers      uint64
	Calls       uint64
	MaxContexts int
}

type ctxInfo struct {
	callerFunc isa.FuncID
	callerTag  isa.Tag
	retPad     isa.InstrID
}

type token struct {
	fn   isa.FuncID
	dest isa.Dest
	tag  isa.Tag
	val  int64
	from profile.InstrRef // producer, for traffic profiling
}

// tokenQueue is a FIFO of in-flight tokens.
type tokenQueue struct {
	items []token
	head  int
}

func (q *tokenQueue) push(t token) { q.items = append(q.items, t) }
func (q *tokenQueue) empty() bool  { return q.head >= len(q.items) }
func (q *tokenQueue) pop() token {
	t := q.items[q.head]
	q.head++
	if q.head > 4096 && q.head*2 > len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	return t
}
func (q *tokenQueue) len() int { return len(q.items) - q.head }

// operands is the per-tag operand tuple of one instruction.
type operands struct {
	vals [3]int64
	have uint8 // bitmask of filled ports
}

// ErrFuel reports that execution exceeded the firing budget.
var ErrFuel = fmt.Errorf("interp: execution exceeded instruction budget")

// New prepares a machine. fuel bounds fired instructions (0 = 1G).
func New(p *isa.Program, fuel int64) *Machine {
	if fuel == 0 {
		fuel = 1_000_000_000
	}
	m := &Machine{
		prog:    p,
		mem:     p.InitialMemory(),
		ctxMeta: make(map[uint32]ctxInfo),
		nextCtx: 1,
		fuel:    fuel,
	}
	total := 0
	m.instrBase = make([]int, len(p.Funcs))
	for i := range p.Funcs {
		m.instrBase[i] = total
		total += len(p.Funcs[i].Instrs)
	}
	m.opstore = make([]map[isa.Tag]*operands, total)
	m.engine = waveorder.NewEngine(0, m.issueMem)
	return m
}

// CollectProfile attaches a profile (line granularity in words) to be
// filled during Run.
func (m *Machine) CollectProfile(lineWords int64) *profile.Profile {
	m.profile = profile.New(lineWords)
	return m.profile
}

// Memory exposes the live memory image.
func (m *Machine) Memory() []int64 { return m.mem }

// Stats returns execution counters.
func (m *Machine) Stats() Stats { return m.stats }

// MemStats returns the wave-ordered memory engine's counters.
func (m *Machine) MemStats() waveorder.Stats { return m.engine.Stats() }

// Run boots the entry function in context 0 and executes to completion.
func (m *Machine) Run() (int64, error) {
	entry := m.prog.Entry
	m.ctxMeta[0] = ctxInfo{callerFunc: isa.NoFunc, retPad: isa.NoInstr}
	pad0 := m.prog.Funcs[entry].Params[0]
	m.queue.push(token{fn: entry, dest: isa.Dest{Instr: pad0, Port: 0}, tag: isa.Tag{Ctx: 0, Wave: 0}})

	for !m.queue.empty() {
		if m.queue.len() > m.maxQueue {
			m.maxQueue = m.queue.len()
		}
		t := m.queue.pop()
		if err := m.deliver(t); err != nil {
			if errors.Is(err, ErrFuel) {
				// A runaway (or deadlocked-in-a-cycle) program: report the
				// stuck state like the simulators' watchdog does.
				return 0, fmt.Errorf("%w after %d fired instructions, %d tokens in flight\n%s",
					ErrFuel, m.stats.Fired, m.queue.len(), m.engine.DebugState())
			}
			return 0, err
		}
	}
	if !m.done {
		return 0, fmt.Errorf("interp: deadlock — no tokens in flight but program has not returned\n%s", m.engine.DebugState())
	}
	if m.prog.Funcs[entry].TouchesMemory && !m.engine.Done() {
		return 0, fmt.Errorf("interp: program returned but memory sequence incomplete (%d pending)\n%s",
			m.engine.Pending(), m.engine.DebugState())
	}
	return m.result, nil
}

// MaxQueue reports the high-water mark of in-flight tokens (a measure of
// exposed parallelism).
func (m *Machine) MaxQueue() int { return m.maxQueue }

func (m *Machine) globalIndex(fn isa.FuncID, id isa.InstrID) int {
	return m.instrBase[fn] + int(id)
}

// deliver lands one token on an input port and fires the instruction if the
// tuple for that tag is complete.
func (m *Machine) deliver(t token) error {
	m.stats.Tokens++
	if m.profile != nil {
		m.profile.AddTraffic(t.from, profile.InstrRef{Func: t.fn, Instr: t.dest.Instr})
	}
	gi := m.globalIndex(t.fn, t.dest.Instr)
	in := &m.prog.Funcs[t.fn].Instrs[t.dest.Instr]
	need := in.Op.NumInputs()

	store := m.opstore[gi]
	if store == nil {
		store = make(map[isa.Tag]*operands)
		m.opstore[gi] = store
	}
	ops := store[t.tag]
	if ops == nil {
		ops = &operands{have: in.ImmMask, vals: in.ImmVals}
		store[t.tag] = ops
	}
	bit := uint8(1) << t.dest.Port
	if ops.have&bit != 0 {
		return fmt.Errorf("interp: token collision at %s/i%d port %d tag %v",
			m.prog.Funcs[t.fn].Name, t.dest.Instr, t.dest.Port, t.tag)
	}
	ops.have |= bit
	ops.vals[t.dest.Port] = t.val

	if ops.have != (uint8(1)<<need)-1 {
		return nil
	}
	delete(store, t.tag)
	return m.fire(t.fn, t.dest.Instr, in, t.tag, ops.vals)
}

// send emits an output token to every destination in the list.
func (m *Machine) send(fn isa.FuncID, from isa.InstrID, dests []isa.Dest, tag isa.Tag, val int64) {
	src := profile.InstrRef{Func: fn, Instr: from}
	for _, d := range dests {
		m.queue.push(token{fn: fn, dest: d, tag: tag, val: val, from: src})
	}
}

func (m *Machine) fire(fn isa.FuncID, id isa.InstrID, in *isa.Instruction, tag isa.Tag, vals [3]int64) error {
	m.stats.Fired++
	m.fuel--
	if m.fuel < 0 {
		return ErrFuel
	}
	if m.profile != nil {
		m.profile.AddFire(profile.InstrRef{Func: fn, Instr: id})
	}

	switch {
	case in.Op == isa.OpNop:
		m.send(fn, id, in.Dests, tag, vals[0])
	case in.Op == isa.OpConst:
		m.send(fn, id, in.Dests, tag, in.Imm)
	case isa.IsALU(in.Op):
		m.send(fn, id, in.Dests, tag, isa.EvalALU(in.Op, vals[0], vals[1]))
	case in.Op == isa.OpSteer:
		m.stats.Steers++
		if vals[0] != 0 {
			m.send(fn, id, in.Dests, tag, vals[1])
		} else {
			m.send(fn, id, in.DestsFalse, tag, vals[1])
		}
	case in.Op == isa.OpSelect:
		v := vals[2]
		if vals[0] != 0 {
			v = vals[1]
		}
		m.send(fn, id, in.Dests, tag, v)
	case in.Op == isa.OpWaveAdvance:
		m.stats.WaveAdvance++
		m.send(fn, id, in.Dests, tag.Advance(), vals[0])
	case in.Op == isa.OpLoad:
		m.stats.Loads++
		if m.profile != nil {
			m.profile.AddMemAccess(profile.InstrRef{Func: fn, Instr: id}, vals[0])
		}
		return m.submitMem(fn, id, in, tag, vals[0], 0)
	case in.Op == isa.OpStore:
		m.stats.Stores++
		if m.profile != nil {
			m.profile.AddMemAccess(profile.InstrRef{Func: fn, Instr: id}, vals[0])
		}
		if err := m.submitMem(fn, id, in, tag, vals[0], vals[1]); err != nil {
			return err
		}
		// The stored value forwards immediately; ordering is the store
		// buffer's concern, not the dataflow graph's.
		m.send(fn, id, in.Dests, tag, vals[1])
	case in.Op == isa.OpMemNop:
		// Pure ordering message; the trigger forwards immediately.
		if err := m.submitMem(fn, id, in, tag, 0, 0); err != nil {
			return err
		}
		m.send(fn, id, in.Dests, tag, vals[0])
	case in.Op == isa.OpNewCtx:
		m.stats.Calls++
		ctx := m.nextCtx
		m.nextCtx++
		m.ctxMeta[ctx] = ctxInfo{callerFunc: fn, callerTag: tag, retPad: isa.InstrID(in.TargetPad)}
		if len(m.ctxMeta) > m.stats.MaxContexts {
			m.stats.MaxContexts = len(m.ctxMeta)
		}
		if in.Mem.Kind == isa.MemCall {
			if err := m.engine.Submit(&waveorder.Request{
				Ctx: tag.Ctx, Wave: tag.Wave,
				Kind: isa.MemCall, Seq: in.Mem.Seq, Pred: in.Mem.Pred, Succ: in.Mem.Succ,
				ChildCtx: ctx,
			}); err != nil {
				return err
			}
		}
		m.send(fn, id, in.Dests, tag, int64(ctx))
	case in.Op == isa.OpSendArg:
		callee := in.Target
		ctx := uint32(vals[0])
		pad := m.prog.Funcs[callee].Params[in.TargetPad]
		m.queue.push(token{
			fn:   callee,
			dest: isa.Dest{Instr: pad, Port: 0},
			tag:  isa.Tag{Ctx: ctx, Wave: 0},
			val:  vals[1],
			from: profile.InstrRef{Func: fn, Instr: id},
		})
	case in.Op == isa.OpReturn:
		meta, ok := m.ctxMeta[tag.Ctx]
		if !ok {
			return fmt.Errorf("interp: return in unknown context %d", tag.Ctx)
		}
		delete(m.ctxMeta, tag.Ctx)
		if in.Mem.Kind == isa.MemEnd {
			if err := m.engine.Submit(&waveorder.Request{
				Ctx: tag.Ctx, Wave: tag.Wave,
				Kind: isa.MemEnd, Seq: in.Mem.Seq, Pred: in.Mem.Pred, Succ: in.Mem.Succ,
			}); err != nil {
				return err
			}
		}
		if meta.retPad == isa.NoInstr {
			m.done = true
			m.result = vals[0]
			return nil
		}
		m.queue.push(token{
			fn:   meta.callerFunc,
			dest: isa.Dest{Instr: meta.retPad, Port: 0},
			tag:  meta.callerTag,
			val:  vals[0],
			from: profile.InstrRef{Func: fn, Instr: id},
		})
	default:
		return fmt.Errorf("interp: cannot execute opcode %s", in.Op)
	}
	return nil
}

// memCookie identifies the requesting instruction so load replies can be
// routed when the ordering engine issues them.
type memCookie struct {
	fn  isa.FuncID
	id  isa.InstrID
	tag isa.Tag
}

func (m *Machine) submitMem(fn isa.FuncID, id isa.InstrID, in *isa.Instruction, tag isa.Tag, addr, val int64) error {
	cookie := int64(-1)
	if in.Mem.Kind == isa.MemLoad {
		idx := m.cookies.Alloc()
		*m.cookies.At(idx) = memCookie{fn: fn, id: id, tag: tag}
		cookie = int64(idx)
	}
	return m.engine.Submit(&waveorder.Request{
		Ctx: tag.Ctx, Wave: tag.Wave,
		Kind: in.Mem.Kind, Seq: in.Mem.Seq, Pred: in.Mem.Pred, Succ: in.Mem.Succ,
		Addr: addr, Value: val,
		Cookie: cookie,
	})
}

// issueMem performs memory accesses as the ordering engine releases them in
// program order.
func (m *Machine) issueMem(r *waveorder.Request) {
	switch r.Kind {
	case isa.MemLoad:
		idx := int32(r.Cookie)
		ck := *m.cookies.At(idx)
		m.cookies.Release(idx)
		var v int64
		if r.Addr >= 0 && r.Addr < int64(len(m.mem)) {
			v = m.mem[r.Addr]
		}
		in := &m.prog.Funcs[ck.fn].Instrs[ck.id]
		m.send(ck.fn, ck.id, in.Dests, ck.tag, v)
	case isa.MemStore:
		if r.Addr >= 0 && r.Addr < int64(len(m.mem)) {
			m.mem[r.Addr] = r.Value
		}
	}
}
