package profile

import "testing"

func TestAccumulation(t *testing.T) {
	p := New(16)
	a := InstrRef{Func: 0, Instr: 1}
	b := InstrRef{Func: 0, Instr: 2}

	p.AddFire(a)
	p.AddFire(a)
	p.AddFire(b)
	if p.Fires[a] != 2 || p.Fires[b] != 1 || p.TotalFires != 3 {
		t.Errorf("fires: %v total=%d", p.Fires, p.TotalFires)
	}

	p.AddTraffic(a, b)
	p.AddTraffic(a, b)
	if p.Traffic[EdgeRef{From: a, To: b}] != 2 || p.TotalTokens != 2 {
		t.Errorf("traffic: %v total=%d", p.Traffic, p.TotalTokens)
	}
}

func TestMemAccessLineGranularity(t *testing.T) {
	p := New(16)
	r := InstrRef{Func: 0, Instr: 5}
	p.AddMemAccess(r, 0)
	p.AddMemAccess(r, 15) // same 16-word line
	p.AddMemAccess(r, 16) // next line
	lines := p.MemBlocks[r]
	if len(lines) != 2 {
		t.Fatalf("lines = %v, want 2 distinct", lines)
	}
	if lines[0] != 2 || lines[1] != 1 {
		t.Errorf("line counts = %v", lines)
	}
}

func TestDefaultLineSize(t *testing.T) {
	p := New(0)
	if p.LineWords != 16 {
		t.Errorf("default line words = %d, want 16", p.LineWords)
	}
	p2 := New(-3)
	if p2.LineWords != 16 {
		t.Errorf("negative line words not defaulted: %d", p2.LineWords)
	}
}
