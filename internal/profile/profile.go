// Package profile defines the execution profile the placement algorithms
// and the instruction-placement model consume: per-instruction execution
// counts, operand traffic between producer/consumer pairs, and the memory
// addresses each instruction touches. Profiles are collected by the
// reference dataflow interpreter and consumed by internal/placement and the
// experiment harness.
package profile

import "wavescalar/internal/isa"

// InstrRef names a static instruction in a program.
type InstrRef struct {
	Func  isa.FuncID
	Instr isa.InstrID
}

// EdgeRef names a producer/consumer operand edge.
type EdgeRef struct {
	From InstrRef
	To   InstrRef
}

// Profile aggregates dynamic execution behaviour.
type Profile struct {
	// Fires counts how many times each instruction executed.
	Fires map[InstrRef]uint64
	// Traffic counts operand tokens sent along each producer/consumer edge.
	Traffic map[EdgeRef]uint64
	// MemBlocks records, per memory-accessing instruction, the set of
	// cache-line-granular blocks it touched (line size chosen by the
	// collector).
	MemBlocks map[InstrRef]map[int64]uint64
	// LineWords is the cache-line granularity (in 64-bit words) used for
	// MemBlocks.
	LineWords int64

	// TotalFires is the dynamic instruction count.
	TotalFires uint64
	// TotalTokens is the dynamic operand count.
	TotalTokens uint64
}

// New creates an empty profile with the given line granularity in words.
func New(lineWords int64) *Profile {
	if lineWords <= 0 {
		lineWords = 16 // 128-byte lines of 8-byte words
	}
	return &Profile{
		Fires:     make(map[InstrRef]uint64),
		Traffic:   make(map[EdgeRef]uint64),
		MemBlocks: make(map[InstrRef]map[int64]uint64),
		LineWords: lineWords,
	}
}

// AddFire records one execution of an instruction.
func (p *Profile) AddFire(r InstrRef) {
	p.Fires[r]++
	p.TotalFires++
}

// AddTraffic records one operand delivery.
func (p *Profile) AddTraffic(from, to InstrRef) {
	p.Traffic[EdgeRef{From: from, To: to}]++
	p.TotalTokens++
}

// AddMemAccess records a memory access by an instruction.
func (p *Profile) AddMemAccess(r InstrRef, addr int64) {
	line := addr / p.LineWords
	m := p.MemBlocks[r]
	if m == nil {
		m = make(map[int64]uint64)
		p.MemBlocks[r] = m
	}
	m[line]++
}
