package trace

import (
	"bufio"
	"io"
	"strconv"
)

// WriteJSONL writes the recorded event stream as one JSON object per line.
// Field names are kind-specific (e.g. a token event carries "depth", a
// mem-issue event carries "stall") so the stream is greppable without a
// schema. The writer is deterministic: lines are emitted in recording
// order and numbers are rendered with strconv, so two runs with the same
// seed produce byte-identical output.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, e := range t.events {
		buf = appendEventJSON(buf[:0], e)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// fieldNames maps each kind's A/B payloads to JSON field names; empty
// means the payload is unused and omitted.
var fieldNames = [...][2]string{
	KindToken:     {"depth", ""},
	KindFire:      {"cluster", "domain"},
	KindSwap:      {"", ""},
	KindOverflow:  {"", ""},
	KindPlace:     {"func", "instr"},
	KindMemSubmit: {"pending", ""},
	KindMemIssue:  {"op", "stall"},
	KindWaveDone:  {"ctx", "wave"},
	KindRetry:     {"wait", ""},
	KindDrop:      {"", ""},
	KindKill:      {"", ""},
}

func appendEventJSON(buf []byte, e Event) []byte {
	buf = append(buf, `{"t":`...)
	buf = strconv.AppendInt(buf, e.T, 10)
	buf = append(buf, `,"ev":"`...)
	buf = append(buf, e.Kind.String()...)
	buf = append(buf, '"')
	if e.PE >= 0 {
		buf = append(buf, `,"pe":`...)
		buf = strconv.AppendInt(buf, int64(e.PE), 10)
	}
	var names [2]string
	if int(e.Kind) < len(fieldNames) {
		names = fieldNames[e.Kind]
	}
	if names[0] != "" {
		buf = append(buf, ',', '"')
		buf = append(buf, names[0]...)
		buf = append(buf, '"', ':')
		buf = strconv.AppendInt(buf, e.A, 10)
	}
	if names[1] != "" {
		buf = append(buf, ',', '"')
		buf = append(buf, names[1]...)
		buf = append(buf, '"', ':')
		buf = strconv.AppendInt(buf, e.B, 10)
	}
	return append(buf, '}')
}

// WriteChromeTrace writes the run in the Chrome trace_event JSON format
// (load the file in chrome://tracing or https://ui.perfetto.dev). The
// sampled per-cycle series become counter tracks ("ph":"C") — fires,
// tokens, mesh traffic, link and ordering stalls, queue depths — with ts
// equal to the cycle number, and discrete events (drops, retries, kills,
// swaps, placements) become instant events ("ph":"i"). Output is
// deterministic for a fixed seed.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[` + "\n"); err != nil {
		return err
	}
	first := true
	var buf []byte
	emit := func(line []byte) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.Write(line)
		return err
	}
	counter := func(ts int64, name string, value int64) error {
		buf = buf[:0]
		buf = append(buf, `{"ph":"C","pid":0,"tid":0,"ts":`...)
		buf = strconv.AppendInt(buf, ts, 10)
		buf = append(buf, `,"name":"`...)
		buf = append(buf, name...)
		buf = append(buf, `","args":{"value":`...)
		buf = strconv.AppendInt(buf, value, 10)
		buf = append(buf, `}}`...)
		return emit(buf)
	}
	for i, b := range t.buckets {
		ts := int64(i) * t.cfg.SampleInterval
		for _, c := range [...]struct {
			name string
			v    int64
		}{
			{"fires", b.Fires},
			{"tokens", b.Tokens},
			{"mesh msgs", b.MeshMsgs},
			{"link stall", b.LinkStall},
			{"mem issues", b.MemIssues},
			{"order stall", b.OrderStall},
			{"max queue depth", b.MaxQueue},
			{"max mem pending", b.MaxPending},
		} {
			if err := counter(ts, c.name, c.v); err != nil {
				return err
			}
		}
	}
	for _, e := range t.events {
		switch e.Kind {
		case KindDrop, KindRetry, KindKill, KindSwap, KindOverflow, KindPlace, KindWaveDone:
			buf = buf[:0]
			buf = append(buf, `{"ph":"i","pid":0,"tid":`...)
			tid := int64(0)
			if e.PE >= 0 {
				tid = int64(e.PE)
			}
			buf = strconv.AppendInt(buf, tid, 10)
			buf = append(buf, `,"ts":`...)
			buf = strconv.AppendInt(buf, e.T, 10)
			buf = append(buf, `,"s":"g","name":"`...)
			buf = append(buf, e.Kind.String()...)
			buf = append(buf, `"}`...)
			if err := emit(buf); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
