package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// TestDisabledTracerZeroAlloc: the disabled state is a nil *Tracer, and
// every method on it must return without allocating — the zero-cost
// contract the simulators rely on in their hot paths.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Token(10, 3, 2)
		tr.Overflow(10, 3)
		tr.Swap(11, 4)
		tr.Fire(12, 5, 0, 1)
		tr.Place(0, 7, 5)
		tr.NetMsg(13, LevelMesh)
		tr.LinkHop(13, 2, 1, 4)
		tr.MemSubmit(14, 2)
		tr.MemIssue(15, 1, 3)
		tr.WaveDone(16, 0, 2)
		tr.Retry(17, 6, 32)
		tr.Drop(17, 6)
		tr.Kill(18, 9)
		tr.Finish(100)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f per run, want 0", allocs)
	}
}

// drive feeds a deterministic synthetic event mix into tr.
func drive(tr *Tracer) {
	rng := rand.New(rand.NewSource(99))
	for cy := int64(0); cy < 500; cy++ {
		pe := rng.Intn(16)
		tr.Token(cy, pe, rng.Intn(8))
		if cy%3 == 0 {
			tr.Fire(cy, pe, pe/8, (pe/2)%4)
		}
		if cy%17 == 0 {
			tr.Swap(cy, pe)
		}
		if cy%29 == 0 {
			tr.Overflow(cy, pe)
		}
		tr.NetMsg(cy, int(cy%4))
		if cy%4 == LevelMesh {
			tr.LinkHop(cy, pe/2, int(cy)%4, cy%3)
		}
		if cy%5 == 0 {
			tr.MemSubmit(cy, rng.Intn(6))
		}
		if cy%7 == 0 {
			tr.MemIssue(cy, 1, cy%11)
		}
		if cy%31 == 0 {
			tr.Drop(cy, pe)
			tr.Retry(cy, pe, 16)
		}
		if cy == 250 {
			tr.Kill(cy, 3)
			tr.WaveDone(cy, 0, 4)
			tr.Place(0, 12, pe)
		}
	}
	tr.Finish(500)
}

// TestMetricsCounting: counters reflect the driven mix.
func TestMetricsCounting(t *testing.T) {
	tr := New(Config{Events: true})
	drive(tr)
	m := tr.Metrics()
	if m.Tokens != 500 {
		t.Errorf("Tokens = %d, want 500", m.Tokens)
	}
	if m.Fires == 0 || m.Swaps == 0 || m.Overflows == 0 {
		t.Errorf("zero fire/swap/overflow counters: %+v", m)
	}
	var sum uint64
	for _, f := range m.PEFires {
		sum += f
	}
	if sum != m.Fires {
		t.Errorf("PEFires sum %d != Fires %d", sum, m.Fires)
	}
	sum = 0
	for _, f := range m.ClusterFires {
		sum += f
	}
	if sum != m.Fires {
		t.Errorf("ClusterFires sum %d != Fires %d", sum, m.Fires)
	}
	sum = 0
	for _, f := range m.DomainFires {
		sum += f
	}
	if sum != m.Fires {
		t.Errorf("DomainFires sum %d != Fires %d", sum, m.Fires)
	}
	if m.PodMsgs+m.DomainMsgs+m.ClusterMsgs+m.MeshMsgs != 500 {
		t.Errorf("net msg level counts don't sum to 500: %+v", m)
	}
	if m.MeshHops == 0 || len(m.Links) == 0 {
		t.Errorf("no mesh link accounting: %+v", m)
	}
	if m.Drops != m.Retries || m.Drops == 0 {
		t.Errorf("Drops %d / Retries %d", m.Drops, m.Retries)
	}
	if m.PEKills != 1 || m.WavesDone != 1 || m.Placements != 1 {
		t.Errorf("kills/waves/placements: %+v", m)
	}
	if m.Runs != 1 || m.Cycles != 500 {
		t.Errorf("Finish not recorded: runs %d cycles %d", m.Runs, m.Cycles)
	}
	buckets, interval := tr.Series()
	if interval != 64 || len(buckets) == 0 {
		t.Fatalf("series: %d buckets, interval %d", len(buckets), interval)
	}
	var bt int64
	for _, b := range buckets {
		bt += b.Tokens
	}
	if bt != 500 {
		t.Errorf("bucket token sum %d, want 500", bt)
	}
}

// TestJSONLDeterministicAndValid: two identically-driven tracers export
// byte-identical JSONL, and every line is a well-formed JSON object.
func TestJSONLDeterministicAndValid(t *testing.T) {
	var a, b bytes.Buffer
	ta := New(Config{Events: true})
	tb := New(Config{Events: true})
	drive(ta)
	drive(tb)
	if err := ta.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := tb.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("empty JSONL export")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical runs exported different JSONL")
	}
	for i, line := range strings.Split(strings.TrimRight(a.String(), "\n"), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if _, ok := obj["t"]; !ok {
			t.Fatalf("line %d missing \"t\": %s", i+1, line)
		}
		if _, ok := obj["ev"]; !ok {
			t.Fatalf("line %d missing \"ev\": %s", i+1, line)
		}
	}
}

// TestChromeTraceValidJSON: the Chrome export parses as a trace_event
// JSON document with a non-empty traceEvents array.
func TestChromeTraceValidJSON(t *testing.T) {
	tr := New(Config{Events: true})
	drive(tr)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	sawCounter, sawInstant := false, false
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "C":
			sawCounter = true
		case "i":
			sawInstant = true
		}
	}
	if !sawCounter || !sawInstant {
		t.Fatalf("want both counter and instant events (counter=%v instant=%v)", sawCounter, sawInstant)
	}
}

// TestEventCapCounted: events beyond MaxEvents are dropped and the drop
// is surfaced in the metrics, never silent.
func TestEventCapCounted(t *testing.T) {
	tr := New(Config{Events: true, MaxEvents: 10})
	for i := 0; i < 50; i++ {
		tr.Token(int64(i), 0, 1)
	}
	if got := len(tr.Events()); got != 10 {
		t.Fatalf("recorded %d events, want cap 10", got)
	}
	if tr.Metrics().EventsDropped != 40 {
		t.Fatalf("EventsDropped = %d, want 40", tr.Metrics().EventsDropped)
	}
	if tr.Metrics().Tokens != 50 {
		t.Fatalf("metrics must still count capped events: Tokens = %d", tr.Metrics().Tokens)
	}
}

// TestAggregateMergeCommutative: merging run metrics in any order yields
// the same summary — the property that makes experiment summaries
// worker-count invariant.
func TestAggregateMergeCommutative(t *testing.T) {
	mk := func(seed int64) *Tracer {
		tr := New(Config{})
		rng := rand.New(rand.NewSource(seed))
		for cy := int64(0); cy < 200; cy++ {
			pe := rng.Intn(8)
			tr.Token(cy, pe, rng.Intn(5))
			tr.Fire(cy, pe, pe/4, pe%4)
			tr.LinkHop(cy, pe, pe%4, cy%2)
			tr.MemIssue(cy, 0, cy%5)
		}
		tr.Finish(200)
		return tr
	}
	a, b, c := mk(1), mk(2), mk(3)
	ag1, ag2 := NewAggregate(), NewAggregate()
	ag1.Add(a)
	ag1.Add(b)
	ag1.Add(c)
	ag2.Add(c)
	ag2.Add(a)
	ag2.Add(b)
	s1 := ag1.Summary("x").Render()
	s2 := ag2.Summary("x").Render()
	if s1 != s2 {
		t.Fatalf("merge order changed summary:\n%s\nvs\n%s", s1, s2)
	}
	if ag1.Runs() != 3 {
		t.Fatalf("Runs = %d, want 3", ag1.Runs())
	}
	ag1.Reset()
	if ag1.Runs() != 0 {
		t.Fatal("Reset did not clear the aggregate")
	}
}
