// Package trace is the structured observability layer for the WaveCache
// simulator: per-cycle counters (PE occupancy by domain and cluster,
// operand-queue depths, mesh-link utilization, store-buffer ordering
// stalls, fault-recovery retries) and an optional event stream exportable
// as JSONL or the Chrome trace_event format (chrome://tracing).
//
// The layer is zero-cost when disabled: every Tracer method is safe on a
// nil receiver and returns immediately, performing no allocation, so the
// simulators thread a possibly-nil *Tracer through their hot paths and a
// run without tracing is bit-identical to a build without the package
// (TestDisabledTracerZeroAlloc and the harness differential suites prove
// it).
//
// Determinism contract: the simulator emits trace calls in its
// discrete-event processing order, which is a pure function of (program,
// policy construction, config, fault seed). The recorded event stream and
// the metrics summary are therefore reproducible bit-for-bit for a fixed
// seed; aggregation across experiment cells (Aggregate) uses only
// commutative merges (sums, maxes, keyed additions) so summaries are also
// invariant to worker count and completion order.
package trace

import (
	"fmt"
	"sort"
	"sync"

	"wavescalar/internal/stats"
)

// Kind classifies one recorded event.
type Kind uint8

const (
	// KindToken: an operand token was delivered to a PE (A = queue depth
	// after delivery).
	KindToken Kind = iota
	// KindFire: an instruction fired at a PE (A = cluster, B = domain).
	KindFire
	// KindSwap: an instruction was demand-swapped into a PE store.
	KindSwap
	// KindOverflow: a PE matching table spilled (queue-overflow penalty).
	KindOverflow
	// KindPlace: the placement policy homed (or migrated) an instruction
	// (A = function, B = instruction; PE = assigned home).
	KindPlace
	// KindMemSubmit: a memory request reached its store buffer
	// (A = ordering-engine pending depth after arrival).
	KindMemSubmit
	// KindMemIssue: the ordering engine released a request to the cache
	// (A = memory-op kind, B = ordering stall in cycles).
	KindMemIssue
	// KindWaveDone: a dynamic wave's memory sequence completed
	// (A = context, B = wave number).
	KindWaveDone
	// KindRetry: a lost message was retransmitted (A = ack-timeout wait).
	KindRetry
	// KindDrop: a message attempt was lost in transit.
	KindDrop
	// KindKill: a PE died mid-run.
	KindKill
	// KindSpecIssue: a memory request issued speculatively past
	// unresolved wave-order predecessors (A = 1 if forwarded from the
	// versioned store buffer, B = speculative access latency).
	KindSpecIssue
	// KindSpecConflict: a speculative access failed commit-time
	// validation (A = memory-op kind).
	KindSpecConflict
	// KindSpecSquash: an epoch was squashed after its first conflict
	// (A = context, B = wave number).
	KindSpecSquash
	// KindSpecReplay: a squashed or conflicting access re-executed at
	// its wave-order commit point (A = replay latency).
	KindSpecReplay
)

var kindNames = [...]string{
	KindToken:     "token",
	KindFire:      "fire",
	KindSwap:      "swap",
	KindOverflow:  "overflow",
	KindPlace:     "place",
	KindMemSubmit: "mem-submit",
	KindMemIssue:  "mem-issue",
	KindWaveDone:  "wave-done",
	KindRetry:        "retry",
	KindDrop:         "drop",
	KindKill:         "kill",
	KindSpecIssue:    "spec-issue",
	KindSpecConflict: "spec-conflict",
	KindSpecSquash:   "spec-squash",
	KindSpecReplay:   "spec-replay",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded simulation event. A and B are kind-specific
// payloads (see the Kind constants).
type Event struct {
	T    int64
	Kind Kind
	PE   int32
	A, B int64
}

// Network levels for NetMsg.
const (
	LevelPod = iota
	LevelDomain
	LevelCluster
	LevelMesh
)

// Config parameterizes a Tracer. The zero value records metrics only.
type Config struct {
	// Events enables the event stream (JSONL / Chrome export). Metrics
	// are always collected on a non-nil Tracer.
	Events bool
	// SampleInterval is the bucket width, in cycles, of the per-cycle
	// counter series (default 64).
	SampleInterval int64
	// MaxEvents bounds the event buffer (default 1<<20); events beyond
	// it are dropped and counted in Metrics.EventsDropped — the cap is
	// never silent.
	MaxEvents int
}

func (c Config) withDefaults() Config {
	if c.SampleInterval <= 0 {
		c.SampleInterval = 64
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 1 << 20
	}
	return c
}

// Bucket is one sample of the per-cycle counter series: everything that
// happened in [i*Interval, (i+1)*Interval) cycles. Counters are sums over
// the bucket; Max* fields are high-water marks within it.
type Bucket struct {
	Fires, Tokens, Swaps, Overflows int64
	MeshMsgs, LinkStall             int64
	MemSubmits, MemIssues           int64
	OrderStall                      int64
	Retries, Drops                  int64
	MaxQueue, MaxPending            int64
}

// DomKey identifies a domain within a cluster.
type DomKey struct {
	Cluster, Domain int
}

// LinkKey identifies a directed mesh link (router index, direction 0-3:
// east, west, south, north).
type LinkKey struct {
	Router, Dir int
}

// LinkUse is per-link utilization.
type LinkUse struct {
	Msgs        uint64
	StallCycles uint64
}

// Metrics is the aggregate counter set a run (or a merged set of runs)
// produced. All fields merge commutatively, so summaries are independent
// of merge order.
type Metrics struct {
	Runs   int64
	Cycles int64 // simulated cycles, summed across runs

	// Execution.
	Fires, Tokens, Swaps, Overflows uint64
	MaxQueueDepth                   int64
	PEFires                         []uint64 // firings by PE (occupancy)
	ClusterFires                    []uint64 // firings by cluster
	DomainFires                     map[DomKey]uint64

	// Operand network.
	PodMsgs, DomainMsgs, ClusterMsgs, MeshMsgs uint64
	MeshHops                                   uint64
	LinkStallCycles                            uint64
	Links                                      map[LinkKey]LinkUse

	// Wave-ordered memory.
	MemSubmitted, MemIssued uint64
	OrderStallCycles        uint64
	MaxPending              int64
	WavesDone               uint64

	// Speculative memory (MemSpec mode only; zero elsewhere).
	SpecIssued       uint64 // requests issued past unresolved predecessors
	SpecForwards     uint64 // loads forwarded from the versioned store buffer
	SpecConflicts    uint64 // commit-time validation failures
	SpecSquashes     uint64 // epochs squashed
	SpecReplayedOps  uint64 // accesses re-executed at their commit point
	SpecCycles       int64  // cache latency of speculative accesses
	SpecReplayCycles int64  // cache latency charged again by replays

	// Fault recovery.
	Drops, Retries  uint64
	RetryWaitCycles uint64
	PEKills         uint64

	// Placement.
	Placements uint64

	// Compiler memory-optimization tier (populated at compile time by the
	// harness, never by the simulators; summed across programs).
	CompilePrograms  int64 // programs run through the tier
	StoresForwarded  int64 // loads replaced by a preceding store's value
	LoadsReused      int64 // loads replaced within a block
	LoadsPromoted    int64 // loads replaced across block boundaries
	DeadStores       int64 // stores deleted as overwritten
	MemOpsEliminated int64 // net static load/store reduction
	InstrsEliminated int64 // net static instruction reduction
	ChainSlots       int64 // wave-ordered chain slots after optimization
	ChainNops        int64 // MEMORY-NOP slots after optimization

	// EventsDropped counts events beyond Config.MaxEvents.
	EventsDropped uint64
}

// Merge folds o into m (commutative: sums, maxes, keyed additions).
func (m *Metrics) Merge(o *Metrics) {
	m.Runs += o.Runs
	m.Cycles += o.Cycles
	m.Fires += o.Fires
	m.Tokens += o.Tokens
	m.Swaps += o.Swaps
	m.Overflows += o.Overflows
	if o.MaxQueueDepth > m.MaxQueueDepth {
		m.MaxQueueDepth = o.MaxQueueDepth
	}
	m.PEFires = mergeCounts(m.PEFires, o.PEFires)
	m.ClusterFires = mergeCounts(m.ClusterFires, o.ClusterFires)
	for k, v := range o.DomainFires {
		if m.DomainFires == nil {
			m.DomainFires = make(map[DomKey]uint64)
		}
		m.DomainFires[k] += v
	}
	m.PodMsgs += o.PodMsgs
	m.DomainMsgs += o.DomainMsgs
	m.ClusterMsgs += o.ClusterMsgs
	m.MeshMsgs += o.MeshMsgs
	m.MeshHops += o.MeshHops
	m.LinkStallCycles += o.LinkStallCycles
	for k, v := range o.Links {
		if m.Links == nil {
			m.Links = make(map[LinkKey]LinkUse)
		}
		u := m.Links[k]
		u.Msgs += v.Msgs
		u.StallCycles += v.StallCycles
		m.Links[k] = u
	}
	m.MemSubmitted += o.MemSubmitted
	m.MemIssued += o.MemIssued
	m.OrderStallCycles += o.OrderStallCycles
	if o.MaxPending > m.MaxPending {
		m.MaxPending = o.MaxPending
	}
	m.WavesDone += o.WavesDone
	m.SpecIssued += o.SpecIssued
	m.SpecForwards += o.SpecForwards
	m.SpecConflicts += o.SpecConflicts
	m.SpecSquashes += o.SpecSquashes
	m.SpecReplayedOps += o.SpecReplayedOps
	m.SpecCycles += o.SpecCycles
	m.SpecReplayCycles += o.SpecReplayCycles
	m.Drops += o.Drops
	m.Retries += o.Retries
	m.RetryWaitCycles += o.RetryWaitCycles
	m.PEKills += o.PEKills
	m.Placements += o.Placements
	m.CompilePrograms += o.CompilePrograms
	m.StoresForwarded += o.StoresForwarded
	m.LoadsReused += o.LoadsReused
	m.LoadsPromoted += o.LoadsPromoted
	m.DeadStores += o.DeadStores
	m.MemOpsEliminated += o.MemOpsEliminated
	m.InstrsEliminated += o.InstrsEliminated
	m.ChainSlots += o.ChainSlots
	m.ChainNops += o.ChainNops
	m.EventsDropped += o.EventsDropped
}

func mergeCounts(dst, src []uint64) []uint64 {
	if len(src) > len(dst) {
		grown := make([]uint64, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// Summary renders the metrics as a two-column table. Map-backed rows are
// sorted so the rendering is deterministic.
func (m *Metrics) Summary(title string) *stats.Table {
	t := stats.NewTable(title, "metric", "value")
	add := func(k string, v any) { t.AddRow(k, v) }
	add("runs", m.Runs)
	add("cycles (summed)", m.Cycles)
	add("instructions fired", m.Fires)
	add("operand tokens", m.Tokens)
	add("instruction swaps", m.Swaps)
	add("queue spills", m.Overflows)
	add("max queue depth", m.MaxQueueDepth)
	add("PEs used", int64(countNonZero(m.PEFires)))
	add("clusters used", int64(countNonZero(m.ClusterFires)))
	if c, n, ok := busiestCount(m.ClusterFires); ok {
		add("busiest cluster", fmt.Sprintf("%d (%d fires)", c, n))
	}
	if k, u, ok := m.busiestDomain(); ok {
		add("busiest domain", fmt.Sprintf("c%d/d%d (%d fires)", k.Cluster, k.Domain, u))
	}
	add("net msgs pod", m.PodMsgs)
	add("net msgs domain", m.DomainMsgs)
	add("net msgs cluster", m.ClusterMsgs)
	add("net msgs mesh", m.MeshMsgs)
	add("mesh hops", m.MeshHops)
	add("link stall cycles", m.LinkStallCycles)
	add("mesh links used", int64(len(m.Links)))
	if k, u, ok := m.busiestLink(); ok {
		add("busiest link", fmt.Sprintf("router %d dir %d (%d msgs, %d stall)", k.Router, k.Dir, u.Msgs, u.StallCycles))
	}
	add("mem requests submitted", m.MemSubmitted)
	add("mem requests issued", m.MemIssued)
	add("ordering stall cycles", m.OrderStallCycles)
	add("max store-buffer pending", m.MaxPending)
	add("waves completed", m.WavesDone)
	// Speculation rows appear only for MemSpec runs, so the default
	// wave-ordered summaries are unchanged.
	if m.SpecIssued > 0 {
		add("spec: issued speculatively", m.SpecIssued)
		add("spec: store-buffer forwards", m.SpecForwards)
		add("spec: conflicts", m.SpecConflicts)
		add("spec: squashes", m.SpecSquashes)
		add("spec: replayed ops", m.SpecReplayedOps)
		add("spec: speculative cycles", m.SpecCycles)
		add("spec: replayed cycles", m.SpecReplayCycles)
		if m.SpecCycles > 0 {
			add("spec: wasted-work ratio",
				fmt.Sprintf("%.4f", float64(m.SpecReplayCycles)/float64(m.SpecCycles)))
		}
	}

	add("message drops", m.Drops)
	add("message retries", m.Retries)
	add("retry wait cycles", m.RetryWaitCycles)
	add("PE kills", m.PEKills)
	add("placements", m.Placements)
	// Compile-tier rows appear only when the harness attributed compile
	// stats, so pure simulation summaries are unchanged.
	if m.CompilePrograms > 0 {
		add("compile: programs optimized", m.CompilePrograms)
		add("compile: stores forwarded", m.StoresForwarded)
		add("compile: loads reused", m.LoadsReused)
		add("compile: loads promoted", m.LoadsPromoted)
		add("compile: dead stores", m.DeadStores)
		add("compile: mem ops eliminated", m.MemOpsEliminated)
		add("compile: instrs eliminated", m.InstrsEliminated)
		add("compile: chain slots", m.ChainSlots)
		add("compile: chain mem-nops", m.ChainNops)
	}
	if m.EventsDropped > 0 {
		add("events dropped (buffer cap)", m.EventsDropped)
	}
	return t
}

// CompileSummary renders only the compile-tier rows — for callers that
// aggregate compile statistics without any simulation runs.
func (m *Metrics) CompileSummary(title string) *stats.Table {
	t := stats.NewTable(title, "metric", "value")
	t.AddRow("programs optimized", m.CompilePrograms)
	t.AddRow("stores forwarded", m.StoresForwarded)
	t.AddRow("loads reused", m.LoadsReused)
	t.AddRow("loads promoted", m.LoadsPromoted)
	t.AddRow("dead stores", m.DeadStores)
	t.AddRow("mem ops eliminated", m.MemOpsEliminated)
	t.AddRow("instrs eliminated", m.InstrsEliminated)
	t.AddRow("chain slots", m.ChainSlots)
	t.AddRow("chain mem-nops", m.ChainNops)
	return t
}

func countNonZero(xs []uint64) int {
	n := 0
	for _, x := range xs {
		if x > 0 {
			n++
		}
	}
	return n
}

func busiestCount(xs []uint64) (idx int, n uint64, ok bool) {
	for i, x := range xs {
		if x > n {
			idx, n, ok = i, x, true
		}
	}
	return
}

func (m *Metrics) busiestDomain() (DomKey, uint64, bool) {
	keys := make([]DomKey, 0, len(m.DomainFires))
	for k := range m.DomainFires {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Cluster != keys[j].Cluster {
			return keys[i].Cluster < keys[j].Cluster
		}
		return keys[i].Domain < keys[j].Domain
	})
	var best DomKey
	var n uint64
	ok := false
	for _, k := range keys {
		if v := m.DomainFires[k]; v > n {
			best, n, ok = k, v, true
		}
	}
	return best, n, ok
}

func (m *Metrics) busiestLink() (LinkKey, LinkUse, bool) {
	keys := make([]LinkKey, 0, len(m.Links))
	for k := range m.Links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Router != keys[j].Router {
			return keys[i].Router < keys[j].Router
		}
		return keys[i].Dir < keys[j].Dir
	})
	var best LinkKey
	var u LinkUse
	ok := false
	for _, k := range keys {
		if v := m.Links[k]; v.Msgs > u.Msgs {
			best, u, ok = k, v, true
		}
	}
	return best, u, ok
}

// Tracer records events and metrics for one simulation run. Not safe for
// concurrent use: construct one per run, like a placement policy. All
// methods are no-ops on a nil receiver — a nil *Tracer is the disabled
// state and costs one predictable branch per call site.
type Tracer struct {
	cfg     Config
	lastT   int64
	events  []Event
	buckets []Bucket
	m       Metrics
}

// New builds a tracer.
func New(cfg Config) *Tracer {
	return &Tracer{cfg: cfg.withDefaults()}
}

// Metrics returns the collected counters (nil receiver: an empty set).
func (t *Tracer) Metrics() *Metrics {
	if t == nil {
		return &Metrics{}
	}
	return &t.m
}

// Events returns the recorded event stream (nil when events are off).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Series returns the per-cycle counter buckets and their width in cycles.
func (t *Tracer) Series() ([]Bucket, int64) {
	if t == nil {
		return nil, 0
	}
	return t.buckets, t.cfg.SampleInterval
}

// Merge folds another tracer's counters and sample series into t. Every
// field merges commutatively (sums for counters, maxes for high-water
// marks), so per-shard tracers can fold into the run tracer in any order
// with a result identical to sequential recording. Both tracers must use
// the same SampleInterval (shard tracers are built with the same default
// config as the run's metrics-only tracer); event streams are never
// merged — runs with an event stream are pinned sequential. Nil-safe on
// both sides.
func (t *Tracer) Merge(o *Tracer) {
	if t == nil || o == nil {
		return
	}
	t.m.Merge(&o.m)
	if o.lastT > t.lastT {
		t.lastT = o.lastT
	}
	for len(t.buckets) < len(o.buckets) {
		t.buckets = append(t.buckets, Bucket{})
	}
	for i := range o.buckets {
		b, ob := &t.buckets[i], &o.buckets[i]
		b.Fires += ob.Fires
		b.Tokens += ob.Tokens
		b.Swaps += ob.Swaps
		b.Overflows += ob.Overflows
		b.MeshMsgs += ob.MeshMsgs
		b.LinkStall += ob.LinkStall
		b.MemSubmits += ob.MemSubmits
		b.MemIssues += ob.MemIssues
		b.OrderStall += ob.OrderStall
		b.Retries += ob.Retries
		b.Drops += ob.Drops
		if ob.MaxQueue > b.MaxQueue {
			b.MaxQueue = ob.MaxQueue
		}
		if ob.MaxPending > b.MaxPending {
			b.MaxPending = ob.MaxPending
		}
	}
}

// bucket returns the sample bucket covering cycle tm, growing the series
// as simulated time advances.
func (t *Tracer) bucket(tm int64) *Bucket {
	if tm < 0 {
		tm = 0
	}
	i := int(tm / t.cfg.SampleInterval)
	for len(t.buckets) <= i {
		t.buckets = append(t.buckets, Bucket{})
	}
	return &t.buckets[i]
}

func (t *Tracer) event(tm int64, k Kind, pe int, a, b int64) {
	if !t.cfg.Events {
		return
	}
	if len(t.events) >= t.cfg.MaxEvents {
		t.m.EventsDropped++
		return
	}
	t.events = append(t.events, Event{T: tm, Kind: k, PE: int32(pe), A: a, B: b})
}

func (t *Tracer) touch(tm int64) {
	if tm > t.lastT {
		t.lastT = tm
	}
}

// Token records an operand delivery at a PE; depth is the PE's waiting
// token count after the delivery (the operand-queue depth counter).
func (t *Tracer) Token(tm int64, pe, depth int) {
	if t == nil {
		return
	}
	t.touch(tm)
	t.m.Tokens++
	if int64(depth) > t.m.MaxQueueDepth {
		t.m.MaxQueueDepth = int64(depth)
	}
	b := t.bucket(tm)
	b.Tokens++
	if int64(depth) > b.MaxQueue {
		b.MaxQueue = int64(depth)
	}
	t.event(tm, KindToken, pe, int64(depth), 0)
}

// Overflow records a matching-table spill at a PE.
func (t *Tracer) Overflow(tm int64, pe int) {
	if t == nil {
		return
	}
	t.touch(tm)
	t.m.Overflows++
	t.bucket(tm).Overflows++
	t.event(tm, KindOverflow, pe, 0, 0)
}

// Swap records a demand swap of an instruction into a PE store.
func (t *Tracer) Swap(tm int64, pe int) {
	if t == nil {
		return
	}
	t.touch(tm)
	t.m.Swaps++
	t.bucket(tm).Swaps++
	t.event(tm, KindSwap, pe, 0, 0)
}

// Fire records an instruction firing: the PE-occupancy counter, broken
// down by cluster and domain.
func (t *Tracer) Fire(tm int64, pe, cluster, domain int) {
	if t == nil {
		return
	}
	t.touch(tm)
	t.m.Fires++
	for len(t.m.PEFires) <= pe {
		t.m.PEFires = append(t.m.PEFires, 0)
	}
	t.m.PEFires[pe]++
	for len(t.m.ClusterFires) <= cluster {
		t.m.ClusterFires = append(t.m.ClusterFires, 0)
	}
	t.m.ClusterFires[cluster]++
	if t.m.DomainFires == nil {
		t.m.DomainFires = make(map[DomKey]uint64)
	}
	t.m.DomainFires[DomKey{Cluster: cluster, Domain: domain}]++
	t.bucket(tm).Fires++
	t.event(tm, KindFire, pe, int64(cluster), int64(domain))
}

// Place records a placement decision (or a post-eviction migration). The
// policy has no notion of simulated time, so the event carries the latest
// time the tracer has seen.
func (t *Tracer) Place(fn, instr, pe int) {
	if t == nil {
		return
	}
	t.m.Placements++
	t.event(t.lastT, KindPlace, pe, int64(fn), int64(instr))
}

// NetMsg records an operand-network message at one of the four hierarchy
// levels (LevelPod..LevelMesh).
func (t *Tracer) NetMsg(tm int64, level int) {
	if t == nil {
		return
	}
	t.touch(tm)
	switch level {
	case LevelPod:
		t.m.PodMsgs++
	case LevelDomain:
		t.m.DomainMsgs++
	case LevelCluster:
		t.m.ClusterMsgs++
	case LevelMesh:
		t.m.MeshMsgs++
		t.bucket(tm).MeshMsgs++
	}
}

// LinkHop records one traversal of a directed mesh link, with the cycles
// the message waited for link bandwidth.
func (t *Tracer) LinkHop(tm int64, router, dir int, stall int64) {
	if t == nil {
		return
	}
	t.touch(tm)
	t.m.MeshHops++
	t.m.LinkStallCycles += uint64(stall)
	if t.m.Links == nil {
		t.m.Links = make(map[LinkKey]LinkUse)
	}
	k := LinkKey{Router: router, Dir: dir}
	u := t.m.Links[k]
	u.Msgs++
	u.StallCycles += uint64(stall)
	t.m.Links[k] = u
	t.bucket(tm).LinkStall += stall
}

// MemSubmit records a memory request arriving at the ordering engine;
// pending is the engine's buffered-request depth after arrival (the
// store-buffer occupancy counter).
func (t *Tracer) MemSubmit(tm int64, pending int) {
	if t == nil {
		return
	}
	t.touch(tm)
	t.m.MemSubmitted++
	if int64(pending) > t.m.MaxPending {
		t.m.MaxPending = int64(pending)
	}
	b := t.bucket(tm)
	b.MemSubmits++
	if int64(pending) > b.MaxPending {
		b.MaxPending = int64(pending)
	}
	t.event(tm, KindMemSubmit, -1, int64(pending), 0)
}

// MemIssue records the ordering engine releasing a request in program
// order; stall is the cycles the request waited, buffered, for its
// ordering chain to resolve (the wave-ordered memory stall counter).
func (t *Tracer) MemIssue(tm int64, memKind int, stall int64) {
	if t == nil {
		return
	}
	t.touch(tm)
	t.m.MemIssued++
	t.m.OrderStallCycles += uint64(stall)
	b := t.bucket(tm)
	b.MemIssues++
	b.OrderStall += stall
	t.event(tm, KindMemIssue, -1, int64(memKind), stall)
}

// WaveDone records a dynamic wave's memory sequence completing.
func (t *Tracer) WaveDone(tm int64, ctx, wave uint32) {
	if t == nil {
		return
	}
	t.touch(tm)
	t.m.WavesDone++
	t.event(tm, KindWaveDone, -1, int64(ctx), int64(wave))
}

// SpecIssue records a memory request issuing speculatively past
// unresolved wave-order predecessors; forwarded marks a load satisfied
// from the versioned store buffer, lat the speculative access latency.
func (t *Tracer) SpecIssue(tm int64, forwarded bool, lat int64) {
	if t == nil {
		return
	}
	t.touch(tm)
	t.m.SpecIssued++
	fwd := int64(0)
	if forwarded {
		t.m.SpecForwards++
		fwd = 1
	} else {
		t.m.SpecCycles += lat
	}
	t.event(tm, KindSpecIssue, -1, fwd, lat)
}

// SpecConflict records one speculative access failing its commit-time
// validation.
func (t *Tracer) SpecConflict(tm int64, memKind int) {
	if t == nil {
		return
	}
	t.touch(tm)
	t.m.SpecConflicts++
	t.event(tm, KindSpecConflict, -1, int64(memKind), 0)
}

// SpecSquash records an epoch squashing after its first conflict.
func (t *Tracer) SpecSquash(tm int64, ctx, wave uint32) {
	if t == nil {
		return
	}
	t.touch(tm)
	t.m.SpecSquashes++
	t.event(tm, KindSpecSquash, -1, int64(ctx), int64(wave))
}

// SpecReplay records a conflicting or squashed access re-executing at
// its wave-order commit point, paying lat cache cycles again.
func (t *Tracer) SpecReplay(tm int64, lat int64) {
	if t == nil {
		return
	}
	t.touch(tm)
	t.m.SpecReplayedOps++
	t.m.SpecReplayCycles += lat
	t.event(tm, KindSpecReplay, -1, lat, 0)
}

// Retry records a retransmit after a lost message (wait = ack-timeout
// cycles the sender paid).
func (t *Tracer) Retry(tm int64, pe int, wait int64) {
	if t == nil {
		return
	}
	t.touch(tm)
	t.m.Retries++
	t.m.RetryWaitCycles += uint64(wait)
	t.bucket(tm).Retries++
	t.event(tm, KindRetry, pe, wait, 0)
}

// Drop records a message attempt lost in transit.
func (t *Tracer) Drop(tm int64, pe int) {
	if t == nil {
		return
	}
	t.touch(tm)
	t.m.Drops++
	t.bucket(tm).Drops++
	t.event(tm, KindDrop, pe, 0, 0)
}

// Kill records a mid-run PE death.
func (t *Tracer) Kill(tm int64, pe int) {
	if t == nil {
		return
	}
	t.touch(tm)
	t.m.PEKills++
	t.event(tm, KindKill, pe, 0, 0)
}

// Finish stamps the run's final cycle count into the metrics; the
// simulator calls it once at the end of a successful run.
func (t *Tracer) Finish(cycles int64) {
	if t == nil {
		return
	}
	t.m.Runs++
	t.m.Cycles += cycles
}

// Aggregate is a thread-safe metrics sink: experiment cells running on a
// worker pool each merge their run's tracer into it. Because Metrics
// merges are commutative, the aggregate is byte-identical at any worker
// count.
type Aggregate struct {
	mu sync.Mutex
	m  Metrics
}

// NewAggregate builds an empty sink.
func NewAggregate() *Aggregate { return &Aggregate{} }

// Add merges a run's metrics into the aggregate.
func (a *Aggregate) Add(t *Tracer) {
	if a == nil || t == nil {
		return
	}
	a.mu.Lock()
	a.m.Merge(&t.m)
	a.mu.Unlock()
}

// Merge folds an already-snapshotted Metrics into the aggregate: how a
// per-request metrics sink (a served simulation that wants its own
// counters) also contributes to a process-wide one.
func (a *Aggregate) Merge(m *Metrics) {
	if a == nil || m == nil {
		return
	}
	a.mu.Lock()
	a.m.Merge(m)
	a.mu.Unlock()
}

// Snapshot returns a deep copy of the merged metrics.
func (a *Aggregate) Snapshot() Metrics {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out Metrics
	out.Merge(&a.m)
	return out
}

// Summary renders the merged metrics as a table.
func (a *Aggregate) Summary(title string) *stats.Table {
	m := a.Snapshot()
	return m.Summary(title)
}

// Reset clears the sink (between experiments).
func (a *Aggregate) Reset() {
	a.mu.Lock()
	a.m = Metrics{}
	a.mu.Unlock()
}

// Runs reports how many runs have merged in.
func (a *Aggregate) Runs() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.m.Runs
}
