// Package linear defines the von Neumann baseline ISA: a linear, RISC-like
// instruction set with a program counter, compiled from the same CFG IR as
// the WaveScalar binaries. The out-of-order superscalar model (internal/ooo)
// executes this ISA; it is the "aggressive superscalar" the MICRO 2003
// evaluation compares the WaveCache against.
//
// The machine uses per-activation virtual register frames (register
// windows): a CALL gives the callee a fresh frame and copies argument
// registers, so no spill traffic is modeled. This idealization favors the
// baseline and is documented in DESIGN.md.
package linear

import (
	"fmt"
	"strings"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/isa"
)

// Op enumerates linear opcodes.
type Op uint8

const (
	LConst  Op = iota // rd = imm
	LAlu              // rd = ALU(ra, rb)
	LSelect           // rd = ra != 0 ? rb : rc
	LLoad             // rd = mem[ra]
	LStore            // mem[ra] = rb
	LJump             // pc = Target
	LBranch           // if ra != 0 pc = Target (else fall through)
	LCall             // rd = call Funcs[Callee](Args...)
	LRet              // return ra
)

func (o Op) String() string {
	switch o {
	case LConst:
		return "const"
	case LAlu:
		return "alu"
	case LSelect:
		return "select"
	case LLoad:
		return "load"
	case LStore:
		return "store"
	case LJump:
		return "jump"
	case LBranch:
		return "branch"
	case LCall:
		return "call"
	case LRet:
		return "ret"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one linear instruction. Register operands index the function's
// virtual frame.
type Instr struct {
	Op     Op
	Alu    isa.Opcode // LAlu
	Rd     cfgir.Reg
	Ra, Rb cfgir.Reg
	Rc     cfgir.Reg // LSelect
	Imm    int64
	Target int // LJump/LBranch: instruction index within the function
	Callee int
	Args   []cfgir.Reg
}

// String renders an instruction.
func (in *Instr) String() string {
	switch in.Op {
	case LConst:
		return fmt.Sprintf("r%d = %d", in.Rd, in.Imm)
	case LAlu:
		if in.Alu.NumInputs() == 1 {
			return fmt.Sprintf("r%d = %s r%d", in.Rd, in.Alu, in.Ra)
		}
		return fmt.Sprintf("r%d = %s r%d, r%d", in.Rd, in.Alu, in.Ra, in.Rb)
	case LSelect:
		return fmt.Sprintf("r%d = r%d ? r%d : r%d", in.Rd, in.Ra, in.Rb, in.Rc)
	case LLoad:
		return fmt.Sprintf("r%d = [r%d]", in.Rd, in.Ra)
	case LStore:
		return fmt.Sprintf("[r%d] = r%d", in.Ra, in.Rb)
	case LJump:
		return fmt.Sprintf("jump @%d", in.Target)
	case LBranch:
		return fmt.Sprintf("branch r%d @%d", in.Ra, in.Target)
	case LCall:
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = fmt.Sprintf("r%d", a)
		}
		return fmt.Sprintf("r%d = call #%d(%s)", in.Rd, in.Callee, strings.Join(parts, ", "))
	case LRet:
		return fmt.Sprintf("ret r%d", in.Ra)
	}
	return "?"
}

// Func is one linear function.
type Func struct {
	Name    string
	Params  []cfgir.Reg
	NumRegs int
	Code    []Instr
}

// Program is a compiled linear module.
type Program struct {
	Funcs    []*Func
	Entry    int
	Globals  []isa.Global
	MemWords int64
}

// InitialMemory builds the data segment.
func (p *Program) InitialMemory() []int64 {
	m := make([]int64, p.MemWords)
	for _, g := range p.Globals {
		copy(m[g.Addr:g.Addr+g.Size], g.Init)
	}
	return m
}

// Compile lowers CFG IR to linear code. Blocks are laid out in their
// (reverse postorder) numbering; branches fall through to the else side
// when possible.
func Compile(p *cfgir.Program) (*Program, error) {
	entry := p.FuncByName("main")
	if entry < 0 {
		return nil, fmt.Errorf("linear: no main function")
	}
	out := &Program{Entry: entry, Globals: p.Globals, MemWords: p.MemWords}
	for _, f := range p.Funcs {
		lf, err := compileFunc(f)
		if err != nil {
			return nil, err
		}
		out.Funcs = append(out.Funcs, lf)
	}
	return out, nil
}

func compileFunc(f *cfgir.Func) (*Func, error) {
	lf := &Func{Name: f.Name, Params: f.Params, NumRegs: f.NumRegs}
	blockStart := make([]int, len(f.Blocks))
	// First pass: emit with placeholder targets.
	type patch struct {
		at    int
		block int
	}
	var patches []patch
	for bi, b := range f.Blocks {
		blockStart[bi] = len(lf.Code)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Kind {
			case cfgir.KConst:
				lf.Code = append(lf.Code, Instr{Op: LConst, Rd: in.Dst, Imm: in.Imm})
			case cfgir.KAlu:
				lf.Code = append(lf.Code, Instr{Op: LAlu, Alu: in.Op, Rd: in.Dst, Ra: in.A, Rb: in.B})
			case cfgir.KSelect:
				lf.Code = append(lf.Code, Instr{Op: LSelect, Rd: in.Dst, Ra: in.A, Rb: in.B, Rc: in.C})
			case cfgir.KLoad:
				lf.Code = append(lf.Code, Instr{Op: LLoad, Rd: in.Dst, Ra: in.A})
			case cfgir.KStore:
				lf.Code = append(lf.Code, Instr{Op: LStore, Ra: in.A, Rb: in.B})
			case cfgir.KCall:
				lf.Code = append(lf.Code, Instr{Op: LCall, Rd: in.Dst, Callee: in.Callee,
					Args: append([]cfgir.Reg(nil), in.Args...)})
			default:
				return nil, fmt.Errorf("linear: unknown IR instruction kind %d", in.Kind)
			}
		}
		switch b.Term.Kind {
		case cfgir.TRet:
			lf.Code = append(lf.Code, Instr{Op: LRet, Ra: b.Term.Val})
		case cfgir.TJump:
			if b.Term.Then != bi+1 {
				patches = append(patches, patch{at: len(lf.Code), block: b.Term.Then})
				lf.Code = append(lf.Code, Instr{Op: LJump})
			}
		case cfgir.TBranch:
			patches = append(patches, patch{at: len(lf.Code), block: b.Term.Then})
			lf.Code = append(lf.Code, Instr{Op: LBranch, Ra: b.Term.Cond})
			if b.Term.Else != bi+1 {
				patches = append(patches, patch{at: len(lf.Code), block: b.Term.Else})
				lf.Code = append(lf.Code, Instr{Op: LJump})
			}
		}
	}
	for _, pt := range patches {
		lf.Code[pt.at].Target = blockStart[pt.block]
	}
	return lf, nil
}

// ErrFuel reports instruction-budget exhaustion.
var ErrFuel = fmt.Errorf("linear: execution exceeded instruction budget")

// Emulator executes linear programs functionally (correctness oracle #4)
// and can emit a dynamic trace for the out-of-order timing model.
type Emulator struct {
	prog *Program
	mem  []int64
	fuel int64

	// Instrs counts executed dynamic instructions.
	Instrs int64

	// Trace, when non-nil, receives every executed instruction.
	Trace func(ev TraceEvent)
}

// TraceEvent describes one dynamic instruction for the timing model.
type TraceEvent struct {
	Func  int
	PC    int
	Frame int64 // activation number (register window id)
	Instr *Instr
	// Taken reports a conditional branch's outcome.
	Taken bool
	// Addr is the effective address of loads and stores.
	Addr int64
	// CalleeFrame is the frame id created by an LCall.
	CalleeFrame int64
}

// NewEmulator prepares an emulator. fuel bounds dynamic instructions
// (0 = 2G).
func NewEmulator(p *Program, fuel int64) *Emulator {
	if fuel == 0 {
		fuel = 2_000_000_000
	}
	return &Emulator{prog: p, mem: p.InitialMemory(), fuel: fuel}
}

// Memory exposes the live memory image.
func (e *Emulator) Memory() []int64 { return e.mem }

// Run executes main.
func (e *Emulator) Run() (int64, error) {
	frames := int64(0)
	return e.call(e.prog.Entry, nil, &frames)
}

func (e *Emulator) call(fi int, args []int64, frames *int64) (int64, error) {
	f := e.prog.Funcs[fi]
	frame := *frames
	*frames++
	regs := make([]int64, f.NumRegs)
	for i, pr := range f.Params {
		regs[pr] = args[i]
	}
	pc := 0
	for {
		if pc < 0 || pc >= len(f.Code) {
			return 0, fmt.Errorf("linear: %s: pc %d out of range", f.Name, pc)
		}
		in := &f.Code[pc]
		e.Instrs++
		e.fuel--
		if e.fuel < 0 {
			return 0, ErrFuel
		}
		ev := TraceEvent{Func: fi, PC: pc, Frame: frame, Instr: in}
		next := pc + 1
		switch in.Op {
		case LConst:
			regs[in.Rd] = in.Imm
		case LAlu:
			var b int64
			if in.Alu.NumInputs() == 2 {
				b = regs[in.Rb]
			}
			regs[in.Rd] = isa.EvalALU(in.Alu, regs[in.Ra], b)
		case LSelect:
			if regs[in.Ra] != 0 {
				regs[in.Rd] = regs[in.Rb]
			} else {
				regs[in.Rd] = regs[in.Rc]
			}
		case LLoad:
			addr := regs[in.Ra]
			ev.Addr = addr
			if addr < 0 || addr >= int64(len(e.mem)) {
				return 0, fmt.Errorf("linear: %s: load address %d out of range", f.Name, addr)
			}
			regs[in.Rd] = e.mem[addr]
		case LStore:
			addr := regs[in.Ra]
			ev.Addr = addr
			if addr < 0 || addr >= int64(len(e.mem)) {
				return 0, fmt.Errorf("linear: %s: store address %d out of range", f.Name, addr)
			}
			e.mem[addr] = regs[in.Rb]
		case LJump:
			next = in.Target
		case LBranch:
			if regs[in.Ra] != 0 {
				next = in.Target
				ev.Taken = true
			}
		case LCall:
			callArgs := make([]int64, len(in.Args))
			for i, a := range in.Args {
				callArgs[i] = regs[a]
			}
			ev.CalleeFrame = *frames
			if e.Trace != nil {
				e.Trace(ev)
			}
			v, err := e.call(in.Callee, callArgs, frames)
			if err != nil {
				return 0, err
			}
			regs[in.Rd] = v
			pc = next
			continue
		case LRet:
			if e.Trace != nil {
				e.Trace(ev)
			}
			return regs[in.Ra], nil
		}
		if e.Trace != nil {
			e.Trace(ev)
		}
		pc = next
	}
}
