package linear

import (
	"testing"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/lang"
	"wavescalar/internal/testprogs"
)

// CompileSource is shared test plumbing: frontend -> IR -> optimize ->
// linear.
func compileSource(t testing.TB, src string) *Program {
	t.Helper()
	f, err := lang.ParseAndCheck(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := cfgir.Build(f)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for _, fn := range p.Funcs {
		fn.Compact()
	}
	p.Optimize()
	lp, err := Compile(p)
	if err != nil {
		t.Fatalf("linear: %v", err)
	}
	return lp
}

// TestEmulatorMatchesEvaluator runs the whole corpus through the linear
// backend and emulator, checking the result and memory image against the
// AST evaluator.
func TestEmulatorMatchesEvaluator(t *testing.T) {
	for _, c := range testprogs.Corpus {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			f, err := lang.ParseAndCheck(c.Src)
			if err != nil {
				t.Fatal(err)
			}
			ev := lang.NewEvaluator(f, 0)
			want, err := ev.Run()
			if err != nil {
				t.Fatal(err)
			}
			lp := compileSource(t, c.Src)
			em := NewEmulator(lp, 0)
			got, err := em.Run()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("emulator = %d, want %d", got, want)
			}
			wantMem, gotMem := ev.Memory(), em.Memory()
			for i := range wantMem {
				if gotMem[i] != wantMem[i] {
					t.Fatalf("memory[%d] = %d, want %d", i, gotMem[i], wantMem[i])
				}
			}
		})
	}
}

func TestTraceCoversAllInstructions(t *testing.T) {
	lp := compileSource(t, `func f(x) { return x * 2; } func main() { var s = 0; for var i = 0; i < 5; i = i + 1 { s = s + f(i); } return s; }`)
	em := NewEmulator(lp, 0)
	var events int64
	var calls, rets, branches int
	em.Trace = func(ev TraceEvent) {
		events++
		switch ev.Instr.Op {
		case LCall:
			calls++
			if ev.CalleeFrame == ev.Frame {
				t.Error("callee frame equals caller frame")
			}
		case LRet:
			rets++
		case LBranch:
			branches++
		}
	}
	if _, err := em.Run(); err != nil {
		t.Fatal(err)
	}
	if events != em.Instrs {
		t.Errorf("trace saw %d events, emulator counted %d", events, em.Instrs)
	}
	if calls != 5 || rets != 6 { // 5 calls to f + return from main
		t.Errorf("calls=%d rets=%d", calls, rets)
	}
	if branches == 0 {
		t.Error("no branch events in a loop")
	}
}

func TestFallthroughLayout(t *testing.T) {
	// A simple if/else should compile without a jump for the fallthrough
	// arm; count control instructions as a sanity check on layout quality.
	lp := compileSource(t, `func main() { var x = 1; if x { x = 2; } else { x = 3; } return x; }`)
	f := lp.Funcs[lp.Entry]
	jumps := 0
	for i := range f.Code {
		if f.Code[i].Op == LJump {
			jumps++
		}
	}
	if jumps > 2 {
		t.Errorf("layout emitted %d jumps for a diamond; expected <= 2\n%v", jumps, f.Code)
	}
}

func TestEmulatorFuel(t *testing.T) {
	lp := compileSource(t, `func main() { while 1 { } return 0; }`)
	if _, err := NewEmulator(lp, 100).Run(); err != ErrFuel {
		t.Fatalf("got %v, want ErrFuel", err)
	}
}

func TestInstrStrings(t *testing.T) {
	lp := compileSource(t, "global a[4];\nfunc main() { a[1] = 2; return a[1]; }")
	for _, f := range lp.Funcs {
		for i := range f.Code {
			if s := f.Code[i].String(); s == "?" || s == "" {
				t.Errorf("instruction %d renders %q", i, s)
			}
		}
	}
}

func TestHeavyCorpus(t *testing.T) {
	for _, c := range testprogs.Heavy {
		want, err := lang.EvalProgram(c.Src)
		if err != nil {
			t.Fatal(err)
		}
		lp := compileSource(t, c.Src)
		got, err := NewEmulator(lp, 0).Run()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if got != want {
			t.Fatalf("%s: got %d, want %d", c.Name, got, want)
		}
	}
}
