package lang

import "testing"

// unrollCases must produce identical results with and without unrolling.
var unrollCases = []string{
	`func main() { var s = 0; for var i = 0; i < 100; i = i + 1 { s = s + i; } return s; }`,
	`func main() { var s = 0; for var i = 0; i < 99; i = i + 1 { s = s + i * i; } return s; }`, // non-multiple trip count
	`func main() { var s = 0; for var i = 0; i < 3; i = i + 1 { s = s + i; } return s; }`,      // fewer than factor
	`func main() { var s = 0; for var i = 0; i < 0; i = i + 1 { s = s + i; } return s; }`,      // zero trips
	`func main() { var s = 0; for var i = 5; i < 50; i = i + 3 { s = s + i; } return s; }`,     // stride 3
	"global a[64];\nfunc main() { for var i = 0; i < 64; i = i + 1 { a[i] = i * 7; } var s = 0; for var i = 0; i < 64; i = i + 1 { s = s + a[i]; } return s; }",
	// Variable bound.
	`func main() { var n = 37; var s = 0; for var i = 0; i < n; i = i + 1 { s = s + i; } return s; }`,
	// Bound assigned inside: must NOT unroll but must stay correct.
	`func main() { var n = 20; var s = 0; for var i = 0; i < n; i = i + 1 { s = s + i; if i == 5 { n = 10; } } return s; }`,
	// Induction var assigned inside: ineligible.
	`func main() { var s = 0; for var i = 0; i < 30; i = i + 1 { s = s + i; if i == 7 { i = 20; } } return s; }`,
	// Shadowing of i inside.
	`func main() { var s = 0; for var i = 0; i < 16; i = i + 1 { var i = 3; s = s + i; } return s; }`,
	// Break/continue: ineligible.
	`func main() { var s = 0; for var i = 0; i < 40; i = i + 1 { if i == 11 { break; } s = s + i; } return s; }`,
	// Nested loops: only the innermost unrolls.
	`func main() { var s = 0; for var i = 0; i < 9; i = i + 1 { for var j = 0; j < 9; j = j + 1 { s = s + i * j; } } return s; }`,
	// Early return inside the loop.
	`func main() { var s = 0; for var i = 0; i < 100; i = i + 1 { s = s + i; if s > 50 { return s; } } return s; }`,
	// Calls with a literal bound are fine.
	"global g;\nfunc bump(v) { g = g + v; return g; }\nfunc main() { for var i = 0; i < 12; i = i + 1 { bump(i); } return g; }",
	// Calls with a variable bound: ineligible (call may write the bound).
	"global n = 8;\nfunc f(i) { n = n - 1; return i; }\nfunc main() { var s = 0; for var i = 0; i < n; i = i + 1 { s = s + f(i); } return s; }",
	// Assignment-style init.
	`func main() { var i = 0; var s = 0; for i = 2; i < 22; i = i + 2 { s = s + i; } return s + i; }`,
	// Locals declared in the body (per-copy scoping).
	`func main() { var s = 0; for var i = 0; i < 24; i = i + 1 { var t = i * 2; s = s + t; } return s; }`,
}

func TestUnrollPreservesSemantics(t *testing.T) {
	for _, factor := range []int{2, 3, 4, 8} {
		for _, src := range unrollCases {
			want, err := EvalProgram(src)
			if err != nil {
				t.Fatalf("baseline: %v for %q", err, src)
			}
			f, err := ParseAndCheck(src)
			if err != nil {
				t.Fatal(err)
			}
			Unroll(f, factor)
			if err := Check(f); err != nil {
				t.Fatalf("factor %d: unrolled program fails check: %v\n%q", factor, err, src)
			}
			got, err := NewEvaluator(f, 0).Run()
			if err != nil {
				t.Fatalf("factor %d: %v for %q", factor, err, src)
			}
			if got != want {
				t.Errorf("factor %d: %q: got %d, want %d", factor, src, got, want)
			}
		}
	}
}

func TestUnrollActuallyUnrolls(t *testing.T) {
	src := `func main() { var s = 0; for var i = 0; i < 100; i = i + 1 { s = s + i; } return s; }`
	f, err := ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	Unroll(f, 4)
	// The for loop should be gone, replaced by a block with two whiles.
	blk, ok := f.Funcs[0].Body.Stmts[1].(*Block)
	if !ok {
		t.Fatalf("statement 1 is %T, want *Block", f.Funcs[0].Body.Stmts[1])
	}
	if len(blk.Stmts) != 3 {
		t.Fatalf("unrolled block has %d statements, want 3 (init, main, residual)", len(blk.Stmts))
	}
	main, ok := blk.Stmts[1].(*WhileStmt)
	if !ok {
		t.Fatalf("main loop is %T", blk.Stmts[1])
	}
	// 4 body copies + 1 increment.
	if len(main.Body.Stmts) != 5 {
		t.Fatalf("main loop body has %d statements, want 5", len(main.Body.Stmts))
	}
}

func TestUnrollFactorOneIsNoop(t *testing.T) {
	src := `func main() { var s = 0; for var i = 0; i < 10; i = i + 1 { s = s + i; } return s; }`
	f, _ := ParseAndCheck(src)
	Unroll(f, 1)
	if _, ok := f.Funcs[0].Body.Stmts[1].(*ForStmt); !ok {
		t.Error("factor 1 should not rewrite")
	}
}

func TestUnrollIneligibleStaysForLoop(t *testing.T) {
	srcs := []string{
		`func main() { var s = 0; for var i = 0; i < 40; i = i + 1 { if i == 11 { break; } s = s + i; } return s; }`,
		`func main() { var s = 0; for var i = 10; i > 0; i = i - 1 { s = s + i; } return s; }`, // not i < b
		`func main() { var s = 0; for var i = 0; i < 30; i = i + 1 { s = s + i; i = i; } return s; }`,
	}
	for _, src := range srcs {
		f, err := ParseAndCheck(src)
		if err != nil {
			t.Fatal(err)
		}
		Unroll(f, 4)
		if _, ok := f.Funcs[0].Body.Stmts[1].(*ForStmt); !ok {
			t.Errorf("ineligible loop was rewritten: %q", src)
		}
	}
}
