package lang

import (
	"fmt"
	"strings"
)

// PrintFile renders an AST back to wsl source. The output is canonical
// (one statement per line, fully parenthesized expressions) and reparses
// to a semantically identical program — the round-trip property the
// printer tests enforce. Its main consumers are humans debugging the
// unroll and if-conversion transformations.
func PrintFile(f *File) string {
	p := &printer{}
	for _, g := range f.Globals {
		p.global(g)
	}
	for i, fn := range f.Funcs {
		if i > 0 || len(f.Globals) > 0 {
			p.b.WriteByte('\n')
		}
		p.function(fn)
	}
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("\t", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) global(g *GlobalDecl) {
	switch {
	case g.Size == 1 && len(g.Init) == 0:
		p.line("global %s;", g.Name)
	case g.Size == 1:
		p.line("global %s = %d;", g.Name, g.Init[0])
	case len(g.Init) == 0:
		p.line("global %s[%d];", g.Name, g.Size)
	default:
		vals := make([]string, len(g.Init))
		for i, v := range g.Init {
			vals[i] = fmt.Sprintf("%d", v)
		}
		p.line("global %s[%d] = {%s};", g.Name, g.Size, strings.Join(vals, ", "))
	}
}

func (p *printer) function(fn *FuncDecl) {
	p.line("func %s(%s) {", fn.Name, strings.Join(fn.Params, ", "))
	p.indent++
	for _, s := range fn.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		p.line("{")
		p.indent++
		for _, inner := range s.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *VarStmt:
		if s.Init == nil {
			p.line("var %s;", s.Name)
		} else {
			p.line("var %s = %s;", s.Name, ExprString(s.Init))
		}
	case *AssignStmt:
		p.line("%s = %s;", s.Name, ExprString(s.Val))
	case *StoreStmt:
		p.line("%s[%s] = %s;", s.Name, ExprString(s.Index), ExprString(s.Val))
	case *IfStmt:
		p.ifChain(s)
	case *WhileStmt:
		p.line("while %s {", ExprString(s.Cond))
		p.indent++
		for _, inner := range s.Body.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *ForStmt:
		init, post := "", ""
		if s.Init != nil {
			init = p.simpleString(s.Init)
		}
		if s.Post != nil {
			post = p.simpleString(s.Post)
		}
		cond := ""
		if s.Cond != nil {
			cond = " " + ExprString(s.Cond)
		}
		p.line("for %s;%s; %s {", init, cond, post)
		p.indent++
		for _, inner := range s.Body.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *ReturnStmt:
		if s.Val == nil {
			p.line("return;")
		} else {
			p.line("return %s;", ExprString(s.Val))
		}
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *ExprStmt:
		p.line("%s;", ExprString(s.X))
	default:
		panic(fmt.Sprintf("lang: cannot print %T", s))
	}
}

// ifChain prints if / else-if / else without extra nesting.
func (p *printer) ifChain(s *IfStmt) {
	p.line("if %s {", ExprString(s.Cond))
	for {
		p.indent++
		for _, inner := range s.Then.Stmts {
			p.stmt(inner)
		}
		p.indent--
		switch e := s.Else.(type) {
		case nil:
			p.line("}")
			return
		case *IfStmt:
			p.line("} else if %s {", ExprString(e.Cond))
			s = e
		case *Block:
			p.line("} else {")
			p.indent++
			for _, inner := range e.Stmts {
				p.stmt(inner)
			}
			p.indent--
			p.line("}")
			return
		default:
			panic(fmt.Sprintf("lang: cannot print else %T", s.Else))
		}
	}
}

// simpleString renders a for-clause statement without terminator.
func (p *printer) simpleString(s Stmt) string {
	switch s := s.(type) {
	case *VarStmt:
		if s.Init == nil {
			return fmt.Sprintf("var %s", s.Name)
		}
		return fmt.Sprintf("var %s = %s", s.Name, ExprString(s.Init))
	case *AssignStmt:
		return fmt.Sprintf("%s = %s", s.Name, ExprString(s.Val))
	case *StoreStmt:
		return fmt.Sprintf("%s[%s] = %s", s.Name, ExprString(s.Index), ExprString(s.Val))
	case *ExprStmt:
		return ExprString(s.X)
	default:
		panic(fmt.Sprintf("lang: cannot print for-clause %T", s))
	}
}

var tokOpText = map[TokKind]string{
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
	TokAmp: "&", TokPipe: "|", TokCaret: "^", TokShl: "<<", TokShr: ">>",
	TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokAndAnd: "&&", TokOrOr: "||", TokBang: "!", TokTilde: "~",
}

// ExprString renders an expression, fully parenthesized so precedence is
// never ambiguous.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", e.Val)
	case *Ident:
		return e.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", e.Name, ExprString(e.Index))
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
	case *UnaryExpr:
		return fmt.Sprintf("%s(%s)", tokOpText[e.Op], ExprString(e.X))
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", ExprString(e.L), tokOpText[e.Op], ExprString(e.R))
	default:
		panic(fmt.Sprintf("lang: cannot print expression %T", e))
	}
}
