package lang

import "fmt"

// Layout assigns every global an address in the flat 64-bit-word address
// space. It is shared by the evaluator and by both compiler backends so all
// engines agree on the data segment.
type Layout struct {
	Addr  map[string]int64
	Size  map[string]int64
	Words int64 // total memory size
}

// BuildLayout places globals consecutively from address 0.
func BuildLayout(f *File) *Layout {
	l := &Layout{Addr: make(map[string]int64), Size: make(map[string]int64)}
	for _, g := range f.Globals {
		l.Addr[g.Name] = l.Words
		l.Size[g.Name] = g.Size
		l.Words += g.Size
	}
	if l.Words == 0 {
		l.Words = 1 // engines want a non-empty address space
	}
	return l
}

// checker validates name resolution, arity, and statement placement.
type checker struct {
	file    *File
	globals map[string]*GlobalDecl
	funcs   map[string]*FuncDecl
	errs    []error
}

// Check performs semantic analysis on a parsed file. The returned error is
// the first problem found (all problems are collected internally).
func Check(f *File) error {
	c := &checker{
		file:    f,
		globals: make(map[string]*GlobalDecl),
		funcs:   make(map[string]*FuncDecl),
	}
	for _, g := range f.Globals {
		if _, dup := c.globals[g.Name]; dup {
			c.errorf(g.Pos, "global %q redeclared", g.Name)
			continue
		}
		c.globals[g.Name] = g
	}
	for _, fn := range f.Funcs {
		if _, dup := c.funcs[fn.Name]; dup {
			c.errorf(fn.Pos, "function %q redeclared", fn.Name)
			continue
		}
		if _, clash := c.globals[fn.Name]; clash {
			c.errorf(fn.Pos, "function %q collides with a global", fn.Name)
		}
		c.funcs[fn.Name] = fn
	}
	main, ok := c.funcs["main"]
	if !ok {
		c.errorf(Pos{1, 1}, "program has no 'main' function")
	} else if len(main.Params) != 0 {
		c.errorf(main.Pos, "'main' must take no parameters")
	}
	for _, fn := range f.Funcs {
		c.checkFunc(fn)
	}
	if len(c.errs) > 0 {
		return c.errs[0]
	}
	return nil
}

func (c *checker) errorf(pos Pos, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// scope is a stack of lexical variable scopes.
type scope struct {
	vars   []map[string]bool
	parent *FuncDecl
}

func (s *scope) push() { s.vars = append(s.vars, make(map[string]bool)) }
func (s *scope) pop()  { s.vars = s.vars[:len(s.vars)-1] }

func (s *scope) declare(name string) bool {
	top := s.vars[len(s.vars)-1]
	if top[name] {
		return false
	}
	top[name] = true
	return true
}

func (s *scope) lookup(name string) bool {
	for i := len(s.vars) - 1; i >= 0; i-- {
		if s.vars[i][name] {
			return true
		}
	}
	return false
}

func (c *checker) checkFunc(fn *FuncDecl) {
	sc := &scope{parent: fn}
	sc.push()
	for _, p := range fn.Params {
		if !sc.declare(p) {
			c.errorf(fn.Pos, "parameter %q repeated in %q", p, fn.Name)
		}
	}
	c.checkBlock(fn.Body, sc, 0)
}

func (c *checker) checkBlock(b *Block, sc *scope, loopDepth int) {
	sc.push()
	defer sc.pop()
	for _, s := range b.Stmts {
		c.checkStmt(s, sc, loopDepth)
	}
}

func (c *checker) checkStmt(s Stmt, sc *scope, loopDepth int) {
	switch s := s.(type) {
	case *Block:
		c.checkBlock(s, sc, loopDepth)
	case *VarStmt:
		if s.Init != nil {
			c.checkExpr(s.Init, sc)
		}
		if !sc.declare(s.Name) {
			c.errorf(s.Pos, "variable %q redeclared in this scope", s.Name)
		}
	case *AssignStmt:
		c.checkExpr(s.Val, sc)
		if sc.lookup(s.Name) {
			return
		}
		if g, ok := c.globals[s.Name]; ok {
			if g.Size != 1 {
				c.errorf(s.Pos, "global array %q assigned without an index", s.Name)
			}
			return
		}
		c.errorf(s.Pos, "assignment to undeclared variable %q", s.Name)
	case *StoreStmt:
		c.checkExpr(s.Index, sc)
		c.checkExpr(s.Val, sc)
		if _, ok := c.globals[s.Name]; !ok {
			c.errorf(s.Pos, "store to %q, which is not a global array", s.Name)
		} else if sc.lookup(s.Name) {
			c.errorf(s.Pos, "store to %q is shadowed by a local variable", s.Name)
		}
	case *IfStmt:
		c.checkExpr(s.Cond, sc)
		c.checkBlock(s.Then, sc, loopDepth)
		if s.Else != nil {
			c.checkStmt(s.Else, sc, loopDepth)
		}
	case *WhileStmt:
		c.checkExpr(s.Cond, sc)
		c.checkBlock(s.Body, sc, loopDepth+1)
	case *ForStmt:
		sc.push()
		defer sc.pop()
		if s.Init != nil {
			c.checkStmt(s.Init, sc, loopDepth)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, sc)
		}
		if s.Post != nil {
			if _, isVar := s.Post.(*VarStmt); isVar {
				c.errorf(s.Pos, "for-loop post clause cannot declare a variable")
			}
			c.checkStmt(s.Post, sc, loopDepth)
		}
		c.checkBlock(s.Body, sc, loopDepth+1)
	case *ReturnStmt:
		if s.Val != nil {
			c.checkExpr(s.Val, sc)
		}
	case *BreakStmt:
		if loopDepth == 0 {
			c.errorf(s.Pos, "break outside a loop")
		}
	case *ContinueStmt:
		if loopDepth == 0 {
			c.errorf(s.Pos, "continue outside a loop")
		}
	case *ExprStmt:
		c.checkExpr(s.X, sc)
	default:
		panic(fmt.Sprintf("lang: unknown statement %T", s))
	}
}

func (c *checker) checkExpr(e Expr, sc *scope) {
	switch e := e.(type) {
	case *IntLit:
	case *Ident:
		if sc.lookup(e.Name) {
			return
		}
		if g, ok := c.globals[e.Name]; ok {
			if g.Size != 1 {
				c.errorf(e.Pos, "global array %q read without an index", e.Name)
			}
			return
		}
		c.errorf(e.Pos, "undeclared variable %q", e.Name)
	case *IndexExpr:
		c.checkExpr(e.Index, sc)
		if _, ok := c.globals[e.Name]; !ok {
			c.errorf(e.Pos, "index of %q, which is not a global array", e.Name)
		} else if sc.lookup(e.Name) {
			c.errorf(e.Pos, "index of %q is shadowed by a local variable", e.Name)
		}
	case *CallExpr:
		fn, ok := c.funcs[e.Name]
		if !ok {
			c.errorf(e.Pos, "call to undeclared function %q", e.Name)
		} else if len(e.Args) != len(fn.Params) {
			c.errorf(e.Pos, "call to %q with %d arguments, want %d", e.Name, len(e.Args), len(fn.Params))
		}
		for _, a := range e.Args {
			c.checkExpr(a, sc)
		}
	case *UnaryExpr:
		c.checkExpr(e.X, sc)
	case *BinaryExpr:
		c.checkExpr(e.L, sc)
		c.checkExpr(e.R, sc)
	default:
		panic(fmt.Sprintf("lang: unknown expression %T", e))
	}
}
