package lang

import (
	"fmt"

	"wavescalar/internal/isa"
)

// Evaluator is the reference tree-walking interpreter for wsl programs. It
// is the first (and simplest) correctness oracle: every other execution
// engine in the repository must produce the same result and final memory
// image as this one.
type Evaluator struct {
	file   *File
	layout *Layout
	funcs  map[string]*FuncDecl
	mem    []int64
	fuel   int64

	// Steps counts executed statements and expressions, a crude work
	// metric useful for sanity-checking workload sizes.
	Steps int64
}

// ErrOutOfFuel is returned when execution exceeds the step budget.
var ErrOutOfFuel = fmt.Errorf("lang: evaluation exceeded step budget")

// NewEvaluator prepares an evaluator for a checked file. fuel bounds the
// number of evaluation steps (0 means a default of 500M).
func NewEvaluator(f *File, fuel int64) *Evaluator {
	if fuel == 0 {
		fuel = 500_000_000
	}
	layout := BuildLayout(f)
	mem := make([]int64, layout.Words)
	for _, g := range f.Globals {
		copy(mem[layout.Addr[g.Name]:], g.Init)
	}
	funcs := make(map[string]*FuncDecl, len(f.Funcs))
	for _, fn := range f.Funcs {
		funcs[fn.Name] = fn
	}
	return &Evaluator{file: f, layout: layout, funcs: funcs, mem: mem, fuel: fuel}
}

// Memory exposes the evaluator's memory image (live; callers may inspect it
// after Run).
func (ev *Evaluator) Memory() []int64 { return ev.mem }

// Run executes main and returns its result.
func (ev *Evaluator) Run() (int64, error) {
	return ev.call(ev.funcs["main"], nil)
}

// control-flow signals carried through the statement walker.
type ctrl uint8

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// env is a function activation's variable environment: a stack of scopes.
type env struct {
	scopes []map[string]int64
}

func (e *env) push() { e.scopes = append(e.scopes, make(map[string]int64)) }
func (e *env) pop()  { e.scopes = e.scopes[:len(e.scopes)-1] }

func (e *env) declare(name string, v int64) { e.scopes[len(e.scopes)-1][name] = v }

func (e *env) set(name string, v int64) bool {
	for i := len(e.scopes) - 1; i >= 0; i-- {
		if _, ok := e.scopes[i][name]; ok {
			e.scopes[i][name] = v
			return true
		}
	}
	return false
}

func (e *env) get(name string) (int64, bool) {
	for i := len(e.scopes) - 1; i >= 0; i-- {
		if v, ok := e.scopes[i][name]; ok {
			return v, true
		}
	}
	return 0, false
}

func (ev *Evaluator) call(fn *FuncDecl, args []int64) (int64, error) {
	en := &env{}
	en.push()
	for i, p := range fn.Params {
		en.declare(p, args[i])
	}
	c, v, err := ev.execBlock(fn.Body, en)
	if err != nil {
		return 0, err
	}
	if c == ctrlReturn {
		return v, nil
	}
	return 0, nil // falling off the end returns 0
}

func (ev *Evaluator) step() error {
	ev.Steps++
	ev.fuel--
	if ev.fuel < 0 {
		return ErrOutOfFuel
	}
	return nil
}

func (ev *Evaluator) execBlock(b *Block, en *env) (ctrl, int64, error) {
	en.push()
	defer en.pop()
	for _, s := range b.Stmts {
		c, v, err := ev.execStmt(s, en)
		if err != nil || c != ctrlNone {
			return c, v, err
		}
	}
	return ctrlNone, 0, nil
}

func (ev *Evaluator) execStmt(s Stmt, en *env) (ctrl, int64, error) {
	if err := ev.step(); err != nil {
		return ctrlNone, 0, err
	}
	switch s := s.(type) {
	case *Block:
		return ev.execBlock(s, en)
	case *VarStmt:
		var v int64
		var err error
		if s.Init != nil {
			if v, err = ev.eval(s.Init, en); err != nil {
				return ctrlNone, 0, err
			}
		}
		en.declare(s.Name, v)
	case *AssignStmt:
		v, err := ev.eval(s.Val, en)
		if err != nil {
			return ctrlNone, 0, err
		}
		if !en.set(s.Name, v) {
			ev.mem[ev.layout.Addr[s.Name]] = v // scalar global
		}
	case *StoreStmt:
		idx, err := ev.eval(s.Index, en)
		if err != nil {
			return ctrlNone, 0, err
		}
		v, err := ev.eval(s.Val, en)
		if err != nil {
			return ctrlNone, 0, err
		}
		addr, aerr := ev.address(s.Name, idx, s.Pos)
		if aerr != nil {
			return ctrlNone, 0, aerr
		}
		ev.mem[addr] = v
	case *IfStmt:
		cond, err := ev.eval(s.Cond, en)
		if err != nil {
			return ctrlNone, 0, err
		}
		if cond != 0 {
			return ev.execBlock(s.Then, en)
		}
		if s.Else != nil {
			return ev.execStmt(s.Else, en)
		}
	case *WhileStmt:
		for {
			cond, err := ev.eval(s.Cond, en)
			if err != nil {
				return ctrlNone, 0, err
			}
			if cond == 0 {
				return ctrlNone, 0, nil
			}
			c, v, err := ev.execBlock(s.Body, en)
			if err != nil {
				return ctrlNone, 0, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNone, 0, nil
			case ctrlReturn:
				return c, v, nil
			}
			if err := ev.step(); err != nil {
				return ctrlNone, 0, err
			}
		}
	case *ForStmt:
		en.push()
		defer en.pop()
		if s.Init != nil {
			if c, v, err := ev.execStmt(s.Init, en); err != nil || c != ctrlNone {
				return c, v, err
			}
		}
		for {
			if s.Cond != nil {
				cond, err := ev.eval(s.Cond, en)
				if err != nil {
					return ctrlNone, 0, err
				}
				if cond == 0 {
					return ctrlNone, 0, nil
				}
			}
			c, v, err := ev.execBlock(s.Body, en)
			if err != nil {
				return ctrlNone, 0, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNone, 0, nil
			case ctrlReturn:
				return c, v, nil
			}
			if s.Post != nil {
				if c, v, err := ev.execStmt(s.Post, en); err != nil || c != ctrlNone {
					return c, v, err
				}
			}
			if err := ev.step(); err != nil {
				return ctrlNone, 0, err
			}
		}
	case *ReturnStmt:
		var v int64
		var err error
		if s.Val != nil {
			if v, err = ev.eval(s.Val, en); err != nil {
				return ctrlNone, 0, err
			}
		}
		return ctrlReturn, v, nil
	case *BreakStmt:
		return ctrlBreak, 0, nil
	case *ContinueStmt:
		return ctrlContinue, 0, nil
	case *ExprStmt:
		if _, err := ev.eval(s.X, en); err != nil {
			return ctrlNone, 0, err
		}
	default:
		panic(fmt.Sprintf("lang: unknown statement %T", s))
	}
	return ctrlNone, 0, nil
}

func (ev *Evaluator) address(name string, idx int64, pos Pos) (int64, error) {
	base := ev.layout.Addr[name]
	size := ev.layout.Size[name]
	if idx < 0 || idx >= size {
		return 0, fmt.Errorf("%s: index %d out of range for %q (size %d)", pos, idx, name, size)
	}
	return base + idx, nil
}

func (ev *Evaluator) eval(e Expr, en *env) (int64, error) {
	if err := ev.step(); err != nil {
		return 0, err
	}
	switch e := e.(type) {
	case *IntLit:
		return e.Val, nil
	case *Ident:
		if v, ok := en.get(e.Name); ok {
			return v, nil
		}
		return ev.mem[ev.layout.Addr[e.Name]], nil
	case *IndexExpr:
		idx, err := ev.eval(e.Index, en)
		if err != nil {
			return 0, err
		}
		addr, aerr := ev.address(e.Name, idx, e.Pos)
		if aerr != nil {
			return 0, aerr
		}
		return ev.mem[addr], nil
	case *CallExpr:
		args := make([]int64, len(e.Args))
		for i, a := range e.Args {
			v, err := ev.eval(a, en)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return ev.call(ev.funcs[e.Name], args)
	case *UnaryExpr:
		v, err := ev.eval(e.X, en)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case TokMinus:
			return -v, nil
		case TokBang:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		case TokTilde:
			return ^v, nil
		}
		panic(fmt.Sprintf("lang: unknown unary op %v", e.Op))
	case *BinaryExpr:
		l, err := ev.eval(e.L, en)
		if err != nil {
			return 0, err
		}
		// Short-circuit forms.
		switch e.Op {
		case TokAndAnd:
			if l == 0 {
				return 0, nil
			}
			r, err := ev.eval(e.R, en)
			if err != nil {
				return 0, err
			}
			return boolInt(r != 0), nil
		case TokOrOr:
			if l != 0 {
				return 1, nil
			}
			r, err := ev.eval(e.R, en)
			if err != nil {
				return 0, err
			}
			return boolInt(r != 0), nil
		}
		r, err := ev.eval(e.R, en)
		if err != nil {
			return 0, err
		}
		return isa.EvalALU(BinaryOpcode(e.Op), l, r), nil
	default:
		panic(fmt.Sprintf("lang: unknown expression %T", e))
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// BinaryOpcode maps a (non-short-circuit) binary operator token to its ISA
// opcode. Shared with the compiler so AST evaluation and compiled execution
// use identical arithmetic.
func BinaryOpcode(op TokKind) isa.Opcode {
	switch op {
	case TokPlus:
		return isa.OpAdd
	case TokMinus:
		return isa.OpSub
	case TokStar:
		return isa.OpMul
	case TokSlash:
		return isa.OpDiv
	case TokPercent:
		return isa.OpRem
	case TokAmp:
		return isa.OpAnd
	case TokPipe:
		return isa.OpOr
	case TokCaret:
		return isa.OpXor
	case TokShl:
		return isa.OpShl
	case TokShr:
		return isa.OpShr
	case TokEq:
		return isa.OpEq
	case TokNe:
		return isa.OpNe
	case TokLt:
		return isa.OpLt
	case TokLe:
		return isa.OpLe
	case TokGt:
		return isa.OpGt
	case TokGe:
		return isa.OpGe
	}
	panic(fmt.Sprintf("lang: token %v is not a binary ALU operator", op))
}

// ParseAndCheck is the front door: lex, parse, and semantically check src.
func ParseAndCheck(src string) (*File, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(f); err != nil {
		return nil, err
	}
	return f, nil
}

// EvalProgram is a convenience wrapper: parse, check, and run src, returning
// the result of main.
func EvalProgram(src string) (int64, error) {
	f, err := ParseAndCheck(src)
	if err != nil {
		return 0, err
	}
	return NewEvaluator(f, 0).Run()
}
