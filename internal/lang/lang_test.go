package lang

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("func main() { var x = 0x1F + 2; } // comment")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokKind, 0, len(toks))
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []TokKind{TokFunc, TokIdent, TokLParen, TokRParen, TokLBrace,
		TokVar, TokIdent, TokAssign, TokInt, TokPlus, TokInt, TokSemi,
		TokRBrace, TokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[8].Int != 0x1F {
		t.Errorf("hex literal = %d, want 31", toks[8].Int)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := LexAll("== != <= >= << >> && || < > = ! & | ^ ~ %")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokEq, TokNe, TokLe, TokGe, TokShl, TokShr, TokAndAnd,
		TokOrOr, TokLt, TokGt, TokAssign, TokBang, TokAmp, TokPipe, TokCaret,
		TokTilde, TokPercent, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := LexAll("var x = @;"); err == nil {
		t.Error("expected error for '@'")
	}
	if _, err := LexAll("var x = 12abz;"); err == nil {
		t.Error("expected error for malformed literal")
	}
	if _, err := LexAll("var x = 99999999999999999999;"); err == nil {
		t.Error("expected error for overflowing literal")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("func\n  main")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("second token at %v, want 2:3", toks[1].Pos)
	}
}

func TestParseGlobals(t *testing.T) {
	f, err := Parse(`
		global a;
		global b = 7;
		global c = -3;
		global d[10];
		global e[4] = {1, 2, -3};
		func main() { return 0; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Globals) != 5 {
		t.Fatalf("got %d globals", len(f.Globals))
	}
	if f.Globals[1].Init[0] != 7 || f.Globals[2].Init[0] != -3 {
		t.Error("scalar initializers wrong")
	}
	if f.Globals[3].Size != 10 {
		t.Error("array size wrong")
	}
	e := f.Globals[4]
	if e.Size != 4 || len(e.Init) != 3 || e.Init[2] != -3 {
		t.Errorf("array initializer wrong: %+v", e)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"func main( { }",
		"global x[0];",
		"global x[2] = {1,2,3};",
		"func main() { if { } }",
		"func main() { var ; }",
		"wibble",
		"func main() { x = ; }",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	bad := map[string]string{
		"no main":           `func f() { return 0; }`,
		"main params":       `func main(x) { return 0; }`,
		"undeclared var":    `func main() { return x; }`,
		"undeclared assign": `func main() { x = 1; return 0; }`,
		"redeclared var":    `func main() { var x; var x; return 0; }`,
		"redeclared global": "global g;\nglobal g;\nfunc main() { return 0; }",
		"redeclared func":   `func f() { return 0; } func f() { return 1; } func main() { return 0; }`,
		"unknown func":      `func main() { return f(); }`,
		"bad arity":         `func f(a, b) { return a; } func main() { return f(1); }`,
		"array no index":    "global a[4];\nfunc main() { return a; }",
		"index non-array":   `func main() { var x; return x[0]; }`,
		"break outside":     `func main() { break; return 0; }`,
		"continue outside":  `func main() { continue; return 0; }`,
		"func/global clash": "global f;\nfunc f() { return 0; }\nfunc main() { return 0; }",
		"store non-global":  `func main() { var x; x[0] = 1; return 0; }`,
		"for post var":      `func main() { for var i = 0; i < 3; var j = 0 { } return 0; }`,
	}
	for name, src := range bad {
		if _, err := ParseAndCheck(src); err == nil {
			t.Errorf("%s: checker accepted %q", name, src)
		}
	}
}

func TestCheckAccepts(t *testing.T) {
	good := `
		global counter;
		global table[8] = {1, 1, 2, 3, 5, 8, 13, 21};

		func helper(a, b) {
			if a > b { return a - b; }
			return b - a;
		}

		func main() {
			var total = 0;
			for var i = 0; i < 8; i = i + 1 {
				total = total + table[i];
				counter = counter + 1;
			}
			var i = 0;
			while i < 3 {
				total = total + helper(total, i);
				i = i + 1;
				if total > 1000 { break; } else { continue; }
			}
			return total;
		}
	`
	if _, err := ParseAndCheck(good); err != nil {
		t.Fatalf("checker rejected valid program: %v", err)
	}
}

// evalCases drive the reference evaluator; the same table is reused by
// the compiler and simulator test suites as a differential oracle.
var evalCases = []struct {
	name string
	src  string
	want int64
}{
	{"return const", `func main() { return 42; }`, 42},
	{"arith", `func main() { return (2 + 3) * 4 - 10 / 3; }`, 17},
	{"precedence", `func main() { return 2 + 3 * 4; }`, 14},
	{"unary", `func main() { return -(3) + !0 + !7 + ~0; }`, -3},
	{"shifts", `func main() { return (1 << 10) + (-16 >> 2); }`, 1020},
	{"comparisons", `func main() { return (1 < 2) + (2 <= 2) + (3 > 4) + (4 >= 4) + (1 == 1) + (1 != 1); }`, 4},
	{"div by zero", `func main() { var z = 0; return 7 / z + 7 % z; }`, 0},
	{"if taken", `func main() { if 1 < 2 { return 10; } return 20; }`, 10},
	{"if not taken", `func main() { if 2 < 1 { return 10; } return 20; }`, 20},
	{"if else chain", `func main() { var x = 5; if x < 3 { return 1; } else if x < 7 { return 2; } else { return 3; } }`, 2},
	{"while sum", `func main() { var s = 0; var i = 0; while i < 10 { s = s + i; i = i + 1; } return s; }`, 45},
	{"for sum", `func main() { var s = 0; for var i = 1; i <= 100; i = i + 1 { s = s + i; } return s; }`, 5050},
	{"nested loops", `func main() { var s = 0; for var i = 0; i < 5; i = i + 1 { for var j = 0; j < 5; j = j + 1 { s = s + i * j; } } return s; }`, 100},
	{"break", `func main() { var i = 0; while 1 { if i >= 7 { break; } i = i + 1; } return i; }`, 7},
	{"continue", `func main() { var s = 0; for var i = 0; i < 10; i = i + 1 { if i % 2 { continue; } s = s + i; } return s; }`, 20},
	{"globals", "global g = 5;\nfunc main() { g = g + 1; return g * 2; }", 12},
	{"array rw", "global a[10];\nfunc main() { for var i = 0; i < 10; i = i + 1 { a[i] = i * i; } var s = 0; for var i = 0; i < 10; i = i + 1 { s = s + a[i]; } return s; }", 285},
	{"array init", "global a[4] = {10, 20, 30};\nfunc main() { return a[0] + a[1] + a[2] + a[3]; }", 60},
	{"call simple", `func double(x) { return x * 2; } func main() { return double(21); }`, 42},
	{"call nested", `func add(a, b) { return a + b; } func main() { return add(add(1, 2), add(3, 4)); }`, 10},
	{"recursion fib", `func fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); } func main() { return fib(12); }`, 144},
	{"recursion memory", "global seen[20];\nfunc fact(n) { seen[n] = 1; if n <= 1 { return 1; } return n * fact(n - 1); }\nfunc main() { var f = fact(6); var c = 0; for var i = 0; i < 20; i = i + 1 { c = c + seen[i]; } return f + c; }", 726},
	{"short circuit and", "global g;\nfunc bump() { g = g + 1; return 0; }\nfunc main() { var x = 0 && bump(); return g * 10 + x; }", 0},
	{"short circuit or", "global g;\nfunc bump() { g = g + 1; return 1; }\nfunc main() { var x = 1 || bump(); return g * 10 + x; }", 1},
	{"and evaluates rhs", "global g;\nfunc bump() { g = g + 1; return 5; }\nfunc main() { var x = 1 && bump(); return g * 10 + x; }", 11},
	{"implicit return", `func f() { } func main() { return f() + 3; }`, 3},
	{"return no value", `func f() { return; } func main() { return f() + 3; }`, 3},
	{"shadowing", `func main() { var x = 1; { var x = 2; x = 3; } return x; }`, 1},
	{"for loop scope", `func main() { var s = 0; for var i = 0; i < 3; i = i + 1 { s = s + i; } for var i = 0; i < 3; i = i + 1 { s = s + i; } return s; }`, 6},
	{"memory order", "global a[4];\nfunc main() { a[0] = 1; a[1] = a[0] + 1; a[0] = a[1] + 1; return a[0] * 10 + a[1]; }", 32},
	{"gcd", `func gcd(a, b) { while b != 0 { var t = b; b = a % b; a = t; } return a; } func main() { return gcd(1071, 462); }`, 21},
	{"collatz", `func main() { var n = 27; var steps = 0; while n != 1 { if n % 2 { n = 3 * n + 1; } else { n = n / 2; } steps = steps + 1; } return steps; }`, 111},
}

func TestEvaluator(t *testing.T) {
	for _, c := range evalCases {
		t.Run(c.name, func(t *testing.T) {
			got, err := EvalProgram(c.src)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Fatalf("got %d, want %d", got, c.want)
			}
		})
	}
}

func TestEvaluatorOutOfFuel(t *testing.T) {
	f, err := ParseAndCheck(`func main() { while 1 { } return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(f, 10_000)
	if _, err := ev.Run(); err != ErrOutOfFuel {
		t.Fatalf("got %v, want ErrOutOfFuel", err)
	}
}

func TestEvaluatorBoundsError(t *testing.T) {
	src := "global a[4];\nfunc main() { return a[9]; }"
	if _, err := EvalProgram(src); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("got %v, want out-of-range error", err)
	}
	src2 := "global a[4];\nfunc main() { a[-1] = 3; return 0; }"
	if _, err := EvalProgram(src2); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestEvaluatorMemoryImage(t *testing.T) {
	f, err := ParseAndCheck("global a[4];\nglobal b = 9;\nfunc main() { a[2] = 5; return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(f, 0)
	if _, err := ev.Run(); err != nil {
		t.Fatal(err)
	}
	m := ev.Memory()
	if m[2] != 5 || m[4] != 9 {
		t.Fatalf("memory image %v", m)
	}
}

func TestBuildLayout(t *testing.T) {
	f, err := Parse("global a[3];\nglobal b;\nglobal c[2];\nfunc main() { return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	l := BuildLayout(f)
	if l.Addr["a"] != 0 || l.Addr["b"] != 3 || l.Addr["c"] != 4 || l.Words != 6 {
		t.Fatalf("layout %+v", l)
	}
	empty := BuildLayout(&File{})
	if empty.Words != 1 {
		t.Error("empty layout should reserve one word")
	}
}

// TestPrintRoundTrip: printing and reparsing any program (including the
// evaluator corpus and unrolled programs) must preserve semantics.
func TestPrintRoundTrip(t *testing.T) {
	for _, c := range evalCases {
		want, err := EvalProgram(c.src)
		if err != nil {
			t.Fatal(err)
		}
		f, err := ParseAndCheck(c.src)
		if err != nil {
			t.Fatal(err)
		}
		printed := PrintFile(f)
		got, err := EvalProgram(printed)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", c.name, err, printed)
		}
		if got != want {
			t.Errorf("%s: round trip changed result %d -> %d\n%s", c.name, want, got, printed)
		}
		// Printing must be a fixpoint: print(parse(print(x))) == print(x).
		f2, err := ParseAndCheck(printed)
		if err != nil {
			t.Fatal(err)
		}
		if PrintFile(f2) != printed {
			t.Errorf("%s: printer is not a fixpoint", c.name)
		}
	}
}

func TestPrintUnrolledProgram(t *testing.T) {
	src := `func main() { var s = 0; for var i = 0; i < 50; i = i + 1 { s = s + i; } return s; }`
	want, _ := EvalProgram(src)
	f, err := ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	Unroll(f, 4)
	printed := PrintFile(f)
	got, err := EvalProgram(printed)
	if err != nil {
		t.Fatalf("printed unrolled program invalid: %v\n%s", err, printed)
	}
	if got != want {
		t.Errorf("unrolled round trip: %d -> %d", want, got)
	}
	if !strings.Contains(printed, "while") {
		t.Error("printed unrolled program should contain the rewritten while loops")
	}
}
