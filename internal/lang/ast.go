package lang

// File is a parsed wsl source file.
type File struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a global array (Size >= 1; scalars have Size 1 and are
// referenced without an index).
type GlobalDecl struct {
	Name string
	Size int64
	Init []int64
	Pos  Pos
}

// FuncDecl declares a function. All parameters and the return value are
// int64.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *Block
	Pos    Pos
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// Block is a brace-delimited statement list with its own variable scope.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// VarStmt declares (and optionally initializes) a local variable.
type VarStmt struct {
	Name string
	Init Expr // nil means zero
	Pos  Pos
}

// AssignStmt assigns to a local variable or scalar global.
type AssignStmt struct {
	Name string
	Val  Expr
	Pos  Pos
}

// StoreStmt assigns to an element of a global array: Name[Index] = Val.
type StoreStmt struct {
	Name  string
	Index Expr
	Val   Expr
	Pos   Pos
}

// IfStmt is a conditional; Else may be nil, a *Block, or another *IfStmt
// (for "else if" chains).
type IfStmt struct {
	Cond Expr
	Then *Block
	Else Stmt
	Pos  Pos
}

// WhileStmt loops while Cond is nonzero.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Pos  Pos
}

// ForStmt is the three-clause loop; any clause may be nil.
type ForStmt struct {
	Init Stmt // VarStmt, AssignStmt, or StoreStmt
	Cond Expr
	Post Stmt // AssignStmt or StoreStmt
	Body *Block
	Pos  Pos
}

// ReturnStmt returns from the enclosing function (value 0 if Val is nil).
type ReturnStmt struct {
	Val Expr
	Pos Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (*Block) stmtNode()        {}
func (*VarStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*StoreStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// Expr is implemented by all expression nodes.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct {
	Val int64
	Pos Pos
}

// Ident references a local variable or scalar global.
type Ident struct {
	Name string
	Pos  Pos
}

// IndexExpr reads an element of a global array: Name[Index].
type IndexExpr struct {
	Name  string
	Index Expr
	Pos   Pos
}

// CallExpr calls a function.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

// UnaryExpr applies -, !, or ~.
type UnaryExpr struct {
	Op  TokKind
	X   Expr
	Pos Pos
}

// BinaryExpr applies a binary operator. TokAndAnd and TokOrOr short-circuit.
type BinaryExpr struct {
	Op   TokKind
	L, R Expr
	Pos  Pos
}

func (*IntLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
