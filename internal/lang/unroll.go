package lang

// Unroll rewrites eligible innermost counted loops, replicating the body
// `factor` times with the induction variable substituted (i, i+c, i+2c, ...)
// and a strength-reduced single increment per block, plus a residual loop
// for the tail:
//
//	for var i = A; i < B; i = i + c { BODY }
//	  =>
//	{ var i = A;
//	  while i + (factor-1)*c < B { {BODY} {BODY[i+c]} ... ; i = i + factor*c; }
//	  while i < B { {BODY} i = i + c; } }
//
// This is the k-loop-bounding / unrolling transformation the paper's Alpha
// toolchain applied before translation; on WaveScalar it amortizes the
// per-iteration steer/wave-advance control chain over `factor` bodies (and
// benchmark E11 measures exactly that).
//
// A loop is eligible when: the init clause declares or assigns a scalar
// variable i; the condition is `i < bound` with bound a literal, or a
// variable that is not assigned in the loop while the body contains no
// calls (calls may write globals); the post clause is `i = i + c` with a
// positive literal c; the body contains no break/continue, no inner loops
// (innermost only), no assignment to i, and no shadowing of i.
func Unroll(f *File, factor int) {
	if factor < 2 {
		return
	}
	for _, fn := range f.Funcs {
		unrollBlock(fn.Body, factor)
	}
}

func unrollBlock(b *Block, factor int) {
	for i, s := range b.Stmts {
		b.Stmts[i] = unrollStmt(s, factor)
	}
}

func unrollStmt(s Stmt, factor int) Stmt {
	switch s := s.(type) {
	case *Block:
		unrollBlock(s, factor)
	case *IfStmt:
		unrollBlock(s.Then, factor)
		if s.Else != nil {
			s.Else = unrollStmt(s.Else, factor)
		}
	case *WhileStmt:
		unrollBlock(s.Body, factor)
	case *ForStmt:
		unrollBlock(s.Body, factor)
		if out := tryUnrollFor(s, factor); out != nil {
			return out
		}
	}
	return s
}

// tryUnrollFor returns the unrolled replacement, or nil if ineligible.
func tryUnrollFor(s *ForStmt, factor int) Stmt {
	// Induction variable from the init clause.
	var ivar string
	switch init := s.Init.(type) {
	case *VarStmt:
		ivar = init.Name
	case *AssignStmt:
		ivar = init.Name
	default:
		return nil
	}
	// Condition i < bound.
	cond, ok := s.Cond.(*BinaryExpr)
	if !ok || cond.Op != TokLt {
		return nil
	}
	lhs, ok := cond.L.(*Ident)
	if !ok || lhs.Name != ivar {
		return nil
	}
	var boundVar string
	switch b := cond.R.(type) {
	case *IntLit:
	case *Ident:
		boundVar = b.Name
	default:
		return nil
	}
	// Post i = i + c, c a positive literal.
	post, ok := s.Post.(*AssignStmt)
	if !ok || post.Name != ivar {
		return nil
	}
	add, ok := post.Val.(*BinaryExpr)
	if !ok || add.Op != TokPlus {
		return nil
	}
	addL, ok := add.L.(*Ident)
	if !ok || addL.Name != ivar {
		return nil
	}
	step, ok := add.R.(*IntLit)
	if !ok || step.Val <= 0 {
		return nil
	}

	insp := inspect(s.Body)
	if insp.hasLoop || insp.hasBreak || insp.assigns[ivar] || insp.declares[ivar] {
		return nil
	}
	if boundVar != "" && (insp.assigns[boundVar] || insp.declares[boundVar] || insp.hasCall) {
		return nil
	}

	c := step.Val
	u := int64(factor)
	pos := s.Pos

	// Guarded main loop: while i + (u-1)*c < bound { copies; i += u*c }.
	main := &WhileStmt{
		Cond: &BinaryExpr{Op: TokLt, Pos: pos,
			L: &BinaryExpr{Op: TokPlus, Pos: pos,
				L: &Ident{Name: ivar, Pos: pos},
				R: &IntLit{Val: (u - 1) * c, Pos: pos}},
			R: cloneExpr(cond.R)},
		Body: &Block{Pos: pos},
		Pos:  pos,
	}
	for k := int64(0); k < u; k++ {
		main.Body.Stmts = append(main.Body.Stmts, cloneBlockSubst(s.Body, ivar, k*c))
	}
	main.Body.Stmts = append(main.Body.Stmts, &AssignStmt{
		Name: ivar, Pos: pos,
		Val: &BinaryExpr{Op: TokPlus, Pos: pos,
			L: &Ident{Name: ivar, Pos: pos},
			R: &IntLit{Val: u * c, Pos: pos}},
	})

	// Residual loop handles the tail iterations.
	resid := &WhileStmt{
		Cond: &BinaryExpr{Op: TokLt, Pos: pos,
			L: &Ident{Name: ivar, Pos: pos}, R: cloneExpr(cond.R)},
		Body: &Block{Pos: pos, Stmts: []Stmt{
			cloneBlockSubst(s.Body, ivar, 0),
			&AssignStmt{Name: ivar, Pos: pos,
				Val: &BinaryExpr{Op: TokPlus, Pos: pos,
					L: &Ident{Name: ivar, Pos: pos}, R: &IntLit{Val: c, Pos: pos}}},
		}},
		Pos: pos,
	}

	return &Block{Pos: pos, Stmts: []Stmt{s.Init, main, resid}}
}

// inspection summarizes properties of a statement subtree.
type inspection struct {
	hasLoop  bool
	hasBreak bool // break or continue
	hasCall  bool
	assigns  map[string]bool
	declares map[string]bool
}

func inspect(b *Block) *inspection {
	in := &inspection{assigns: make(map[string]bool), declares: make(map[string]bool)}
	in.block(b)
	return in
}

func (in *inspection) block(b *Block) {
	for _, s := range b.Stmts {
		in.stmt(s)
	}
}

func (in *inspection) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		in.block(s)
	case *VarStmt:
		in.declares[s.Name] = true
		if s.Init != nil {
			in.expr(s.Init)
		}
	case *AssignStmt:
		in.assigns[s.Name] = true
		in.expr(s.Val)
	case *StoreStmt:
		in.expr(s.Index)
		in.expr(s.Val)
	case *IfStmt:
		in.expr(s.Cond)
		in.block(s.Then)
		if s.Else != nil {
			in.stmt(s.Else)
		}
	case *WhileStmt, *ForStmt:
		in.hasLoop = true
	case *ReturnStmt:
		if s.Val != nil {
			in.expr(s.Val)
		}
	case *BreakStmt, *ContinueStmt:
		in.hasBreak = true
	case *ExprStmt:
		in.expr(s.X)
	}
}

func (in *inspection) expr(e Expr) {
	switch e := e.(type) {
	case *CallExpr:
		in.hasCall = true
		for _, a := range e.Args {
			in.expr(a)
		}
	case *UnaryExpr:
		in.expr(e.X)
	case *BinaryExpr:
		in.expr(e.L)
		in.expr(e.R)
	case *IndexExpr:
		in.expr(e.Index)
	}
}

// cloneBlockSubst deep-copies a block, replacing reads of ivar with
// (ivar + offset); offset 0 still clones (copies must not alias).
func cloneBlockSubst(b *Block, ivar string, offset int64) *Block {
	out := &Block{Pos: b.Pos}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, cloneStmtSubst(s, ivar, offset))
	}
	return out
}

func cloneStmtSubst(s Stmt, ivar string, off int64) Stmt {
	sub := func(e Expr) Expr { return cloneExprSubst(e, ivar, off) }
	switch s := s.(type) {
	case *Block:
		return cloneBlockSubst(s, ivar, off)
	case *VarStmt:
		n := &VarStmt{Name: s.Name, Pos: s.Pos}
		if s.Init != nil {
			n.Init = sub(s.Init)
		}
		return n
	case *AssignStmt:
		return &AssignStmt{Name: s.Name, Val: sub(s.Val), Pos: s.Pos}
	case *StoreStmt:
		return &StoreStmt{Name: s.Name, Index: sub(s.Index), Val: sub(s.Val), Pos: s.Pos}
	case *IfStmt:
		n := &IfStmt{Cond: sub(s.Cond), Then: cloneBlockSubst(s.Then, ivar, off), Pos: s.Pos}
		if s.Else != nil {
			n.Else = cloneStmtSubst(s.Else, ivar, off)
		}
		return n
	case *ReturnStmt:
		n := &ReturnStmt{Pos: s.Pos}
		if s.Val != nil {
			n.Val = sub(s.Val)
		}
		return n
	case *ExprStmt:
		return &ExprStmt{X: sub(s.X), Pos: s.Pos}
	default:
		// Loops, break, continue were excluded by eligibility.
		panic("lang: cloneStmtSubst on ineligible statement")
	}
}

func cloneExprSubst(e Expr, ivar string, off int64) Expr {
	switch e := e.(type) {
	case *IntLit:
		return &IntLit{Val: e.Val, Pos: e.Pos}
	case *Ident:
		if e.Name == ivar {
			base := &Ident{Name: ivar, Pos: e.Pos}
			if off == 0 {
				return base
			}
			return &BinaryExpr{Op: TokPlus, L: base, R: &IntLit{Val: off, Pos: e.Pos}, Pos: e.Pos}
		}
		return &Ident{Name: e.Name, Pos: e.Pos}
	case *IndexExpr:
		return &IndexExpr{Name: e.Name, Index: cloneExprSubst(e.Index, ivar, off), Pos: e.Pos}
	case *CallExpr:
		n := &CallExpr{Name: e.Name, Pos: e.Pos}
		for _, a := range e.Args {
			n.Args = append(n.Args, cloneExprSubst(a, ivar, off))
		}
		return n
	case *UnaryExpr:
		return &UnaryExpr{Op: e.Op, X: cloneExprSubst(e.X, ivar, off), Pos: e.Pos}
	case *BinaryExpr:
		return &BinaryExpr{Op: e.Op, L: cloneExprSubst(e.L, ivar, off), R: cloneExprSubst(e.R, ivar, off), Pos: e.Pos}
	default:
		panic("lang: unknown expression in clone")
	}
}

// cloneExpr deep-copies an expression without substitution.
func cloneExpr(e Expr) Expr { return cloneExprSubst(e, "", 0) }
