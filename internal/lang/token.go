// Package lang implements the front end for wsl ("WaveScalar language"), the
// small imperative language this repository compiles to WaveScalar dataflow
// binaries and to the linear baseline ISA.
//
// wsl is a C-like subset chosen to exercise everything the WaveScalar paper
// cares about — loops, branches, function calls, recursion, and array
// memory traffic — while staying implementable from scratch:
//
//	global mem[1024];            // 64-bit word arrays in a flat address space
//	global seed = 11;            // scalar global (size-1 array)
//
//	func fib(n) {
//	    if n < 2 { return n; }
//	    return fib(n-1) + fib(n-2);
//	}
//
//	func main() {
//	    var acc = 0;
//	    for var i = 0; i < 10; i = i + 1 {
//	        mem[i] = fib(i);
//	        acc = acc ^ mem[i] * 31;
//	    }
//	    return acc;
//	}
//
// Every value is an int64. Comparisons yield 0/1; && and || short-circuit.
// The package provides the lexer, parser, AST, semantic checker, and a
// reference tree-walking evaluator used as the first correctness oracle.
package lang

import "fmt"

// TokKind classifies a lexical token.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt

	// Keywords.
	TokGlobal
	TokFunc
	TokVar
	TokIf
	TokElse
	TokWhile
	TokFor
	TokReturn
	TokBreak
	TokContinue

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi
	TokAssign
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokTilde
	TokBang
	TokShl
	TokShr
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokAndAnd
	TokOrOr
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokInt: "integer",
	TokGlobal: "'global'", TokFunc: "'func'", TokVar: "'var'", TokIf: "'if'",
	TokElse: "'else'", TokWhile: "'while'", TokFor: "'for'", TokReturn: "'return'",
	TokBreak: "'break'", TokContinue: "'continue'",
	TokLParen: "'('", TokRParen: "')'", TokLBrace: "'{'", TokRBrace: "'}'",
	TokLBracket: "'['", TokRBracket: "']'", TokComma: "','", TokSemi: "';'",
	TokAssign: "'='", TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'",
	TokSlash: "'/'", TokPercent: "'%'", TokAmp: "'&'", TokPipe: "'|'",
	TokCaret: "'^'", TokTilde: "'~'", TokBang: "'!'", TokShl: "'<<'",
	TokShr: "'>>'", TokEq: "'=='", TokNe: "'!='", TokLt: "'<'", TokLe: "'<='",
	TokGt: "'>'", TokGe: "'>='", TokAndAnd: "'&&'", TokOrOr: "'||'",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

var keywords = map[string]TokKind{
	"global": TokGlobal, "func": TokFunc, "var": TokVar, "if": TokIf,
	"else": TokElse, "while": TokWhile, "for": TokFor, "return": TokReturn,
	"break": TokBreak, "continue": TokContinue,
}

// Pos locates a token in the source text.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical unit.
type Token struct {
	Kind TokKind
	Text string
	Int  int64
	Pos  Pos
}

// Lexer converts source text into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	err  error
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Err returns the first lexical error encountered.
func (l *Lexer) Err() error { return l.err }

func (l *Lexer) errorf(p Pos, format string, args ...any) {
	if l.err == nil {
		l.err = fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...))
	}
}

func (l *Lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) nextByte() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case isSpace(c):
			l.nextByte()
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.nextByte()
			}
		default:
			return
		}
	}
}

// Next returns the next token. After an error or at end of input it returns
// TokEOF forever.
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	pos := Pos{Line: l.line, Col: l.col}
	if l.off >= len(l.src) || l.err != nil {
		return Token{Kind: TokEOF, Pos: pos}
	}
	c := l.nextByte()
	switch {
	case isLetter(c):
		start := l.off - 1
		for l.off < len(l.src) && (isLetter(l.peekByte()) || isDigit(l.peekByte())) {
			l.nextByte()
		}
		text := l.src[start:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}
	case isDigit(c):
		start := l.off - 1
		for l.off < len(l.src) && (isDigit(l.peekByte()) || isLetter(l.peekByte())) {
			l.nextByte()
		}
		text := l.src[start:l.off]
		var v int64
		var ok bool
		if len(text) > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X') {
			v, ok = parseUint(text[2:], 16)
		} else {
			v, ok = parseUint(text, 10)
		}
		if !ok {
			l.errorf(pos, "malformed integer literal %q", text)
			return Token{Kind: TokEOF, Pos: pos}
		}
		return Token{Kind: TokInt, Text: text, Int: v, Pos: pos}
	}

	two := func(next byte, yes, no TokKind) TokKind {
		if l.peekByte() == next {
			l.nextByte()
			return yes
		}
		return no
	}
	var k TokKind
	switch c {
	case '(':
		k = TokLParen
	case ')':
		k = TokRParen
	case '{':
		k = TokLBrace
	case '}':
		k = TokRBrace
	case '[':
		k = TokLBracket
	case ']':
		k = TokRBracket
	case ',':
		k = TokComma
	case ';':
		k = TokSemi
	case '+':
		k = TokPlus
	case '-':
		k = TokMinus
	case '*':
		k = TokStar
	case '/':
		k = TokSlash
	case '%':
		k = TokPercent
	case '^':
		k = TokCaret
	case '~':
		k = TokTilde
	case '=':
		k = two('=', TokEq, TokAssign)
	case '!':
		k = two('=', TokNe, TokBang)
	case '<':
		if l.peekByte() == '<' {
			l.nextByte()
			k = TokShl
		} else {
			k = two('=', TokLe, TokLt)
		}
	case '>':
		if l.peekByte() == '>' {
			l.nextByte()
			k = TokShr
		} else {
			k = two('=', TokGe, TokGt)
		}
	case '&':
		k = two('&', TokAndAnd, TokAmp)
	case '|':
		k = two('|', TokOrOr, TokPipe)
	default:
		l.errorf(pos, "unexpected character %q", string(c))
		return Token{Kind: TokEOF, Pos: pos}
	}
	return Token{Kind: k, Pos: pos}
}

func parseUint(s string, base int64) (int64, bool) {
	if s == "" {
		return 0, false
	}
	var v int64
	for i := 0; i < len(s); i++ {
		var d int64
		c := s[i]
		switch {
		case isDigit(c):
			d = int64(c - '0')
		case c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			return 0, false
		}
		if d >= base {
			return 0, false
		}
		v = v*base + d
		if v < 0 {
			return 0, false // overflow
		}
	}
	return v, true
}

// LexAll tokenizes the whole input, returning the tokens (terminated by a
// TokEOF entry) or the first lexical error.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == TokEOF {
			break
		}
	}
	return toks, l.Err()
}
