package lang

import "fmt"

// Parser builds a File from source text. It is a hand-written recursive
// descent parser with one token of lookahead and precedence-climbing
// expression parsing.
type Parser struct {
	toks []Token
	pos  int
	errs []error
}

// Parse parses a complete source file.
func Parse(src string) (*File, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	f := p.parseFile()
	if len(p.errs) > 0 {
		return nil, p.errs[0]
	}
	return f, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.advance(); return t }

func (p *Parser) advance() {
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
}

func (p *Parser) errorf(pos Pos, format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
	// Error recovery: skip to the next statement boundary.
	for p.cur().Kind != TokEOF && p.cur().Kind != TokSemi && p.cur().Kind != TokRBrace {
		p.advance()
	}
	if p.cur().Kind == TokSemi {
		p.advance()
	}
}

func (p *Parser) expect(k TokKind) Token {
	t := p.cur()
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t.Kind)
		return Token{Kind: k, Pos: t.Pos}
	}
	p.advance()
	return t
}

func (p *Parser) parseFile() *File {
	f := &File{}
	for p.cur().Kind != TokEOF {
		switch p.cur().Kind {
		case TokGlobal:
			if g := p.parseGlobal(); g != nil {
				f.Globals = append(f.Globals, g)
			}
		case TokFunc:
			if fn := p.parseFunc(); fn != nil {
				f.Funcs = append(f.Funcs, fn)
			}
		default:
			p.errorf(p.cur().Pos, "expected 'global' or 'func' at top level, found %s", p.cur().Kind)
			if p.cur().Kind == TokEOF {
				return f
			}
			p.advance()
		}
		if len(p.errs) > 8 {
			break // too many errors; stop digging
		}
	}
	return f
}

// parseGlobal parses:
//
//	global name ;                      (scalar, zero)
//	global name = 7 ;                  (scalar, initialized)
//	global name [ 64 ] ;               (array, zeroed)
//	global name [ 4 ] = { 1, 2, 3 } ;  (array, partially initialized)
func (p *Parser) parseGlobal() *GlobalDecl {
	kw := p.expect(TokGlobal)
	name := p.expect(TokIdent)
	g := &GlobalDecl{Name: name.Text, Size: 1, Pos: kw.Pos}
	if p.cur().Kind == TokLBracket {
		p.advance()
		sz := p.expect(TokInt)
		g.Size = sz.Int
		if g.Size < 1 {
			p.errorf(sz.Pos, "array %q must have positive size", g.Name)
			return nil
		}
		p.expect(TokRBracket)
	}
	if p.cur().Kind == TokAssign {
		p.advance()
		if p.cur().Kind == TokLBrace {
			p.advance()
			for p.cur().Kind != TokRBrace && p.cur().Kind != TokEOF {
				neg := false
				if p.cur().Kind == TokMinus {
					neg = true
					p.advance()
				}
				v := p.expect(TokInt)
				val := v.Int
				if neg {
					val = -val
				}
				g.Init = append(g.Init, val)
				if p.cur().Kind != TokComma {
					break
				}
				p.advance()
			}
			p.expect(TokRBrace)
			if int64(len(g.Init)) > g.Size {
				p.errorf(name.Pos, "global %q has %d initializers for size %d", g.Name, len(g.Init), g.Size)
				return nil
			}
		} else {
			neg := false
			if p.cur().Kind == TokMinus {
				neg = true
				p.advance()
			}
			v := p.expect(TokInt)
			val := v.Int
			if neg {
				val = -val
			}
			g.Init = []int64{val}
		}
	}
	p.expect(TokSemi)
	return g
}

func (p *Parser) parseFunc() *FuncDecl {
	kw := p.expect(TokFunc)
	name := p.expect(TokIdent)
	fn := &FuncDecl{Name: name.Text, Pos: kw.Pos}
	p.expect(TokLParen)
	for p.cur().Kind == TokIdent {
		fn.Params = append(fn.Params, p.next().Text)
		if p.cur().Kind != TokComma {
			break
		}
		p.advance()
	}
	p.expect(TokRParen)
	fn.Body = p.parseBlock()
	return fn
}

func (p *Parser) parseBlock() *Block {
	lb := p.expect(TokLBrace)
	b := &Block{Pos: lb.Pos}
	for p.cur().Kind != TokRBrace && p.cur().Kind != TokEOF {
		before := p.pos
		if s := p.parseStmt(); s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		if p.pos == before {
			p.advance() // guarantee progress on malformed input
		}
	}
	p.expect(TokRBrace)
	return b
}

func (p *Parser) parseStmt() Stmt {
	switch p.cur().Kind {
	case TokVar:
		s := p.parseVar()
		p.expect(TokSemi)
		return s
	case TokIf:
		return p.parseIf()
	case TokWhile:
		kw := p.next()
		cond := p.parseExpr()
		body := p.parseBlock()
		return &WhileStmt{Cond: cond, Body: body, Pos: kw.Pos}
	case TokFor:
		return p.parseFor()
	case TokReturn:
		kw := p.next()
		var val Expr
		if p.cur().Kind != TokSemi {
			val = p.parseExpr()
		}
		p.expect(TokSemi)
		return &ReturnStmt{Val: val, Pos: kw.Pos}
	case TokBreak:
		kw := p.next()
		p.expect(TokSemi)
		return &BreakStmt{Pos: kw.Pos}
	case TokContinue:
		kw := p.next()
		p.expect(TokSemi)
		return &ContinueStmt{Pos: kw.Pos}
	case TokLBrace:
		return p.parseBlock()
	default:
		s := p.parseSimple()
		p.expect(TokSemi)
		return s
	}
}

// parseVar parses a 'var' declaration without the trailing semicolon.
func (p *Parser) parseVar() Stmt {
	kw := p.expect(TokVar)
	name := p.expect(TokIdent)
	s := &VarStmt{Name: name.Text, Pos: kw.Pos}
	if p.cur().Kind == TokAssign {
		p.advance()
		s.Init = p.parseExpr()
	}
	return s
}

// parseSimple parses an assignment, array store, or expression statement
// without the trailing semicolon (shared by statements and for-clauses).
func (p *Parser) parseSimple() Stmt {
	if p.cur().Kind == TokIdent {
		id := p.cur()
		nextKind := p.toks[p.pos+1].Kind
		switch nextKind {
		case TokAssign:
			p.advance()
			p.advance()
			return &AssignStmt{Name: id.Text, Val: p.parseExpr(), Pos: id.Pos}
		case TokLBracket:
			// Could be a store (a[i] = v) or a read used as an expression
			// statement; disambiguate by scanning for '=' after the
			// matching bracket.
			save := p.pos
			p.advance()
			p.advance()
			idx := p.parseExpr()
			p.expect(TokRBracket)
			if p.cur().Kind == TokAssign {
				p.advance()
				return &StoreStmt{Name: id.Text, Index: idx, Val: p.parseExpr(), Pos: id.Pos}
			}
			p.pos = save
		}
	}
	e := p.parseExpr()
	return &ExprStmt{X: e, Pos: p.cur().Pos}
}

func (p *Parser) parseIf() Stmt {
	kw := p.expect(TokIf)
	cond := p.parseExpr()
	then := p.parseBlock()
	s := &IfStmt{Cond: cond, Then: then, Pos: kw.Pos}
	if p.cur().Kind == TokElse {
		p.advance()
		if p.cur().Kind == TokIf {
			s.Else = p.parseIf()
		} else {
			s.Else = p.parseBlock()
		}
	}
	return s
}

func (p *Parser) parseFor() Stmt {
	kw := p.expect(TokFor)
	s := &ForStmt{Pos: kw.Pos}
	if p.cur().Kind != TokSemi {
		if p.cur().Kind == TokVar {
			s.Init = p.parseVar()
		} else {
			s.Init = p.parseSimple()
		}
	}
	p.expect(TokSemi)
	if p.cur().Kind != TokSemi {
		s.Cond = p.parseExpr()
	}
	p.expect(TokSemi)
	if p.cur().Kind != TokLBrace {
		s.Post = p.parseSimple()
	}
	s.Body = p.parseBlock()
	return s
}

// Binary operator precedence, loosest first.
var binPrec = map[TokKind]int{
	TokOrOr:   1,
	TokAndAnd: 2,
	TokPipe:   3,
	TokCaret:  4,
	TokAmp:    5,
	TokEq:     6, TokNe: 6,
	TokLt: 7, TokLe: 7, TokGt: 7, TokGe: 7,
	TokShl: 8, TokShr: 8,
	TokPlus: 9, TokMinus: 9,
	TokStar: 10, TokSlash: 10, TokPercent: 10,
}

func (p *Parser) parseExpr() Expr { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) Expr {
	left := p.parseUnary()
	for {
		op := p.cur().Kind
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return left
		}
		pos := p.cur().Pos
		p.advance()
		right := p.parseBinary(prec + 1)
		left = &BinaryExpr{Op: op, L: left, R: right, Pos: pos}
	}
}

func (p *Parser) parseUnary() Expr {
	switch p.cur().Kind {
	case TokMinus, TokBang, TokTilde:
		t := p.next()
		return &UnaryExpr{Op: t.Kind, X: p.parseUnary(), Pos: t.Pos}
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.advance()
		return &IntLit{Val: t.Int, Pos: t.Pos}
	case TokIdent:
		p.advance()
		switch p.cur().Kind {
		case TokLParen:
			p.advance()
			call := &CallExpr{Name: t.Text, Pos: t.Pos}
			for p.cur().Kind != TokRParen && p.cur().Kind != TokEOF {
				call.Args = append(call.Args, p.parseExpr())
				if p.cur().Kind != TokComma {
					break
				}
				p.advance()
			}
			p.expect(TokRParen)
			return call
		case TokLBracket:
			p.advance()
			idx := p.parseExpr()
			p.expect(TokRBracket)
			return &IndexExpr{Name: t.Text, Index: idx, Pos: t.Pos}
		}
		return &Ident{Name: t.Text, Pos: t.Pos}
	case TokLParen:
		p.advance()
		e := p.parseExpr()
		p.expect(TokRParen)
		return e
	default:
		p.errorf(t.Pos, "expected expression, found %s", t.Kind)
		return &IntLit{Val: 0, Pos: t.Pos}
	}
}
