package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallConfig(n int) SystemConfig {
	return SystemConfig{
		NumL1s:           n,
		L1:               CacheConfig{SizeWords: 64, LineWords: 4, Ways: 2},
		L2:               CacheConfig{SizeWords: 1024, LineWords: 16, Ways: 4},
		L1Latency:        1,
		L2Latency:        20,
		MemLatency:       1000,
		CoherencePenalty: 8,
	}
}

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{SizeWords: 64, LineWords: 4, Ways: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Lines() != 16 || good.Sets() != 8 {
		t.Errorf("lines=%d sets=%d", good.Lines(), good.Sets())
	}
	bad := []CacheConfig{
		{SizeWords: 0, LineWords: 4, Ways: 1},
		{SizeWords: 63, LineWords: 4, Ways: 1},
		{SizeWords: 64, LineWords: 4, Ways: 3},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	s, err := NewSystem(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	r1 := s.Access(0, 100, false)
	if r1.L1Hit {
		t.Error("cold access hit")
	}
	if r1.Latency <= 20 {
		t.Errorf("cold miss latency %d should include DRAM", r1.Latency)
	}
	r2 := s.Access(0, 101, false) // same line
	if !r2.L1Hit || r2.Latency != 1 {
		t.Errorf("same-line access: hit=%v latency=%d", r2.L1Hit, r2.Latency)
	}
	st := s.Stats()
	if st.L1Hits != 1 || st.L1Misses != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestL2CatchesL1Evictions(t *testing.T) {
	s, _ := NewSystem(smallConfig(1))
	// Touch enough distinct lines to overflow L1 (16 lines) but not L2.
	for a := int64(0); a < 64*4; a += 4 {
		s.Access(0, a, false)
	}
	// Re-touch the first line: should be an L1 miss but L2 hit.
	r := s.Access(0, 0, false)
	if r.L1Hit {
		t.Error("line survived certain eviction")
	}
	if !r.L2Hit {
		t.Error("L2 did not retain evicted line")
	}
	if r.Latency != 1+20 {
		t.Errorf("L2 hit latency = %d, want 21", r.Latency)
	}
}

func TestLRUWithinSet(t *testing.T) {
	s, _ := NewSystem(smallConfig(1))
	// The L1 has 8 sets, 2 ways, lines of 4 words: lines mapping to set 0
	// are line numbers 0, 8, 16, ... i.e. addresses 0, 32, 64.
	s.Access(0, 0, false)  // line 0 -> set 0
	s.Access(0, 32, false) // line 8 -> set 0
	s.Access(0, 0, false)  // touch line 0 (now MRU)
	s.Access(0, 64, false) // line 16 -> evicts line 8 (LRU)
	if r := s.Access(0, 0, false); !r.L1Hit {
		t.Error("MRU line was evicted")
	}
	if r := s.Access(0, 32, false); r.L1Hit {
		t.Error("LRU line was not evicted")
	}
}

func TestCoherenceInvalidation(t *testing.T) {
	s, _ := NewSystem(smallConfig(4))
	// Both L1s read the same line.
	s.Access(0, 10, false)
	r := s.Access(1, 10, false)
	if !r.Coherence {
		t.Error("peer fetch not flagged as coherence traffic")
	}
	// L1 0 writes: L1 1's copy must be invalidated.
	w := s.Access(0, 10, true)
	if !w.Coherence {
		t.Error("upgrade write not flagged")
	}
	// L1 1 reads again: must be a miss serviced by a transfer.
	r2 := s.Access(1, 10, false)
	if r2.L1Hit {
		t.Error("stale copy read after invalidation")
	}
	st := s.Stats()
	if st.Invals == 0 || st.Transfers == 0 {
		t.Errorf("stats %+v: expected invalidations and transfers", st)
	}
}

func TestMigratorySharing(t *testing.T) {
	// The SPAA'06 model assumes migratory sharing: a line written by
	// cluster after cluster transfers ownership once per cluster. Verify
	// each handoff costs exactly one transfer + invalidation.
	s, _ := NewSystem(smallConfig(4))
	s.Access(0, 20, true)
	before := s.Stats()
	s.Access(1, 20, true)
	after := s.Stats()
	if after.Transfers != before.Transfers+1 {
		t.Errorf("transfers %d -> %d, want +1", before.Transfers, after.Transfers)
	}
	if after.Invals != before.Invals+1 {
		t.Errorf("invals %d -> %d, want +1", before.Invals, after.Invals)
	}
}

func TestPerL1Stats(t *testing.T) {
	s, _ := NewSystem(smallConfig(2))
	s.Access(0, 0, false)
	s.Access(0, 1, false)
	s.Access(1, 100, false)
	if s.L1Stats(0).Accesses != 2 || s.L1Stats(1).Accesses != 1 {
		t.Errorf("per-L1 accesses: %d, %d", s.L1Stats(0).Accesses, s.L1Stats(1).Accesses)
	}
}

func TestStatsConservation(t *testing.T) {
	// Property: hits + misses == accesses, regardless of access pattern.
	prop := func(seed int64) bool {
		s, _ := NewSystem(smallConfig(4))
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			s.Access(rng.Intn(4), int64(rng.Intn(2000)), rng.Intn(2) == 0)
		}
		st := s.Stats()
		return st.L1Hits+st.L1Misses == st.Accesses &&
			st.L2Hits+st.L2Misses+st.Transfers >= st.L1Misses-st.Transfers
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleL1NeverCoheres(t *testing.T) {
	prop := func(seed int64) bool {
		s, _ := NewSystem(smallConfig(1))
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			r := s.Access(0, int64(rng.Intn(500)), rng.Intn(2) == 0)
			if r.Coherence {
				return false
			}
		}
		return s.Stats().Invals == 0 && s.Stats().Transfers == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNewSystemRejectsBadConfig(t *testing.T) {
	cfg := smallConfig(0)
	if _, err := NewSystem(cfg); err == nil {
		t.Error("accepted 0 L1s")
	}
	cfg = smallConfig(1)
	cfg.L1.Ways = 3
	if _, err := NewSystem(cfg); err == nil {
		t.Error("accepted bad L1 geometry")
	}
}

func TestDefaultSystemConfig(t *testing.T) {
	cfg := DefaultSystemConfig(4)
	if err := cfg.L1.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := cfg.L2.Validate(); err != nil {
		t.Fatal(err)
	}
	// 32 KB of 8-byte words = 4096 words; 128 B lines = 16 words.
	if cfg.L1.SizeWords != 4096 || cfg.L1.LineWords != 16 {
		t.Errorf("L1 geometry %+v", cfg.L1)
	}
	if _, err := NewSystem(cfg); err != nil {
		t.Fatal(err)
	}
}
