// Package mem models the WaveScalar processor's memory hierarchy for timing
// purposes: per-cluster L1 data caches kept coherent by a directory-based
// MESI-like protocol, a shared L2, and main memory.
//
// The model is a timing and statistics model only. Functional memory
// correctness is owned by the execution engines (which operate on a single
// flat memory image in program order, as guaranteed by wave-ordered
// memory); this package answers "how long does this access take and what
// coherence traffic does it cause?". This mirrors how the paper's own
// simulator separates ordering (store buffers) from timing (caches).
package mem

import "fmt"

// CacheConfig describes one cache level. All sizes are in 64-bit words.
type CacheConfig struct {
	SizeWords int64
	LineWords int64
	Ways      int64
}

// Lines returns the number of lines the cache holds.
func (c CacheConfig) Lines() int64 { return c.SizeWords / c.LineWords }

// Sets returns the number of sets.
func (c CacheConfig) Sets() int64 { return c.Lines() / c.Ways }

// Validate checks the geometry.
func (c CacheConfig) Validate() error {
	if c.SizeWords <= 0 || c.LineWords <= 0 || c.Ways <= 0 {
		return fmt.Errorf("mem: non-positive cache geometry %+v", c)
	}
	if c.SizeWords%c.LineWords != 0 {
		return fmt.Errorf("mem: size %d not a multiple of line %d", c.SizeWords, c.LineWords)
	}
	if c.Lines()%c.Ways != 0 {
		return fmt.Errorf("mem: lines %d not a multiple of ways %d", c.Lines(), c.Ways)
	}
	return nil
}

// SystemConfig describes the whole hierarchy. Latencies are in cycles.
// Defaults mirror the published WaveScalar processor parameters: 32 KB
// 4-way L1s with 128-byte lines, a 16 MB 4-way L2 at 20 cycles, and
// 1000-cycle main memory.
type SystemConfig struct {
	NumL1s     int
	L1         CacheConfig
	L2         CacheConfig
	L1Latency  int64 // L1 hit
	L2Latency  int64 // additional cycles for an L2 hit
	MemLatency int64 // additional cycles for a DRAM access
	// CoherencePenalty is the added latency when the directory must
	// invalidate or fetch a line from a peer L1.
	CoherencePenalty int64
}

// DefaultSystemConfig returns the paper-parameter hierarchy for n L1s.
func DefaultSystemConfig(n int) SystemConfig {
	return SystemConfig{
		NumL1s:           n,
		L1:               CacheConfig{SizeWords: 4096, LineWords: 16, Ways: 4},     // 32 KB, 128 B lines
		L2:               CacheConfig{SizeWords: 2097152, LineWords: 128, Ways: 4}, // 16 MB, 1 KB lines
		L1Latency:        1,
		L2Latency:        20,
		MemLatency:       1000,
		CoherencePenalty: 8,
	}
}

// cache is a tag-only set-associative array with LRU replacement.
type cache struct {
	cfg  CacheConfig
	tags [][]int64 // per set, per way; -1 = invalid
	lru  [][]int64 // per set, per way; higher = more recent
	tick int64
}

func newCache(cfg CacheConfig) *cache {
	sets := cfg.Sets()
	c := &cache{cfg: cfg}
	c.tags = make([][]int64, sets)
	c.lru = make([][]int64, sets)
	for i := range c.tags {
		c.tags[i] = make([]int64, cfg.Ways)
		c.lru[i] = make([]int64, cfg.Ways)
		for w := range c.tags[i] {
			c.tags[i][w] = -1
		}
	}
	return c
}

// reset empties the cache, keeping its arrays.
func (c *cache) reset() {
	c.tick = 0
	for i := range c.tags {
		for w := range c.tags[i] {
			c.tags[i][w] = -1
			c.lru[i][w] = 0
		}
	}
}

// lookup probes for a line, touching LRU on hit.
func (c *cache) lookup(line int64) bool {
	set := line % c.cfg.Sets()
	for w, t := range c.tags[set] {
		if t == line {
			c.tick++
			c.lru[set][w] = c.tick
			return true
		}
	}
	return false
}

// insert fills a line, evicting LRU; returns the evicted line or -1.
func (c *cache) insert(line int64) int64 {
	set := line % c.cfg.Sets()
	victim, oldest := 0, int64(1)<<62
	for w, t := range c.tags[set] {
		if t == -1 {
			victim = w
			oldest = -1
			break
		}
		if c.lru[set][w] < oldest {
			victim, oldest = w, c.lru[set][w]
		}
	}
	evicted := c.tags[set][victim]
	c.tags[set][victim] = line
	c.tick++
	c.lru[set][victim] = c.tick
	return evicted
}

// invalidate removes a line if present.
func (c *cache) invalidate(line int64) {
	set := line % c.cfg.Sets()
	for w, t := range c.tags[set] {
		if t == line {
			c.tags[set][w] = -1
		}
	}
}

// dirState is the directory's view of one line.
type dirState struct {
	sharers uint64 // bitmask of L1s holding the line
	owner   int    // exclusive/modified owner, or -1
}

// Stats counts hierarchy activity.
type Stats struct {
	Accesses  uint64
	L1Hits    uint64
	L1Misses  uint64
	L2Hits    uint64
	L2Misses  uint64
	Transfers uint64 // coherence ownership transfers / peer fetches
	Invals    uint64 // coherence invalidations
	Evictions uint64
	// Speculative counts the subset of Accesses issued ahead of the
	// wave-order commit point (MemSpec mode). A replayed access after a
	// squash is a plain Access, so Accesses - Speculative is the
	// committed-path traffic.
	Speculative uint64
}

// AccessResult reports one access's timing.
type AccessResult struct {
	Latency   int64
	L1Hit     bool
	L2Hit     bool
	Coherence bool // the directory had to act
}

// System is the coherent hierarchy.
type System struct {
	cfg SystemConfig
	l1s []*cache
	l2  *cache

	// dir is the coherence directory, indexed densely by L1 line number;
	// an entry with sharers == 0 is absent. The execution engines clamp
	// every address to the program's memory image, so the line space is
	// small and bounded and a flat slice beats a map on the access path.
	// Grown lazily by dirEnsure.
	dir []dirState

	stats  Stats
	perL1  []Stats
	lineSz int64
}

// NewSystem builds a hierarchy.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.NumL1s < 1 || cfg.NumL1s > 64 {
		return nil, fmt.Errorf("mem: NumL1s %d out of range [1,64]", cfg.NumL1s)
	}
	if err := cfg.L1.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.L2.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:    cfg,
		l2:     newCache(cfg.L2),
		perL1:  make([]Stats, cfg.NumL1s),
		lineSz: cfg.L1.LineWords,
	}
	for i := 0; i < cfg.NumL1s; i++ {
		s.l1s = append(s.l1s, newCache(cfg.L1))
	}
	return s, nil
}

// Reset returns the hierarchy to its post-NewSystem state under cfg,
// reusing the cache arrays and the directory slice when the shape (L1
// count, cache geometries) is unchanged; a shape change rebuilds the
// arrays. Identical behaviour to a fresh NewSystem either way.
func (s *System) Reset(cfg SystemConfig) error {
	sameShape := cfg.NumL1s == s.cfg.NumL1s && cfg.L1 == s.cfg.L1 && cfg.L2 == s.cfg.L2
	if !sameShape {
		fresh, err := NewSystem(cfg)
		if err != nil {
			return err
		}
		fresh.dir = s.dir
		clear(fresh.dir)
		*s = *fresh
		return nil
	}
	s.cfg = cfg
	s.lineSz = cfg.L1.LineWords
	s.stats = Stats{}
	for i := range s.perL1 {
		s.perL1[i] = Stats{}
	}
	s.l2.reset()
	for _, c := range s.l1s {
		c.reset()
	}
	clear(s.dir)
	return nil
}

// dirAt returns the directory entry for a line, or nil if the line is
// untracked (no L1 holds it).
func (s *System) dirAt(line int64) *dirState {
	if line < int64(len(s.dir)) {
		if d := &s.dir[line]; d.sharers != 0 {
			return d
		}
	}
	return nil
}

// dirEnsure grows the directory to cover a line and returns its entry,
// initialized to the unowned state.
func (s *System) dirEnsure(line int64) *dirState {
	if line >= int64(len(s.dir)) {
		grown := make([]dirState, max(line+1, int64(2*len(s.dir))))
		copy(grown, s.dir)
		s.dir = grown
	}
	d := &s.dir[line]
	*d = dirState{owner: -1}
	return d
}

// Stats returns aggregate counters.
func (s *System) Stats() Stats { return s.stats }

// L1Stats returns the counters of one L1.
func (s *System) L1Stats(i int) Stats { return s.perL1[i] }

// LineOf maps a word address to its L1 line number.
func (s *System) LineOf(addr int64) int64 { return addr / s.lineSz }

// AccessSpeculative performs one timed access on behalf of a memory
// request that has not yet reached its wave-order turn. The hierarchy
// state evolves exactly as for Access (the line is fetched and the
// directory acts — hardware cannot undo a cache fill either); the access
// is additionally tallied under Stats.Speculative.
func (s *System) AccessSpeculative(l1 int, addr int64, write bool) AccessResult {
	s.stats.Speculative++
	s.perL1[l1].Speculative++
	return s.Access(l1, addr, write)
}

// Access performs one timed access from L1 number l1 and returns its
// latency and classification.
func (s *System) Access(l1 int, addr int64, write bool) AccessResult {
	line := s.LineOf(addr)
	s.stats.Accesses++
	s.perL1[l1].Accesses++

	res := AccessResult{Latency: s.cfg.L1Latency}
	d := s.dirAt(line)

	if s.l1s[l1].lookup(line) {
		// L1 hit; a write to a shared line still needs the directory to
		// invalidate the other sharers (upgrade miss).
		s.stats.L1Hits++
		s.perL1[l1].L1Hits++
		if write && d != nil && (d.sharers&^(1<<uint(l1)) != 0) {
			s.invalidatePeers(d, l1, line)
			d.owner = l1
			d.sharers = 1 << uint(l1)
			res.Coherence = true
			res.Latency += s.cfg.CoherencePenalty
		}
		if write && d != nil {
			d.owner = l1
		}
		res.L1Hit = true
		return res
	}

	// L1 miss.
	s.stats.L1Misses++
	s.perL1[l1].L1Misses++

	if d != nil && d.sharers != 0 && d.sharers != 1<<uint(l1) {
		// Some peer holds the line: fetch it from there (dirty transfer if
		// exclusively owned) instead of going to L2/DRAM.
		res.Coherence = true
		res.Latency += s.cfg.CoherencePenalty
		s.stats.Transfers++
		s.perL1[l1].Transfers++
		if write {
			s.invalidatePeers(d, l1, line)
			d.sharers = 0
		}
	} else if s.l2.lookup(line / (s.cfg.L2.LineWords / s.cfg.L1.LineWords)) {
		res.L2Hit = true
		res.Latency += s.cfg.L2Latency
		s.stats.L2Hits++
		s.perL1[l1].L2Hits++
	} else {
		res.Latency += s.cfg.L2Latency + s.cfg.MemLatency
		s.stats.L2Misses++
		s.perL1[l1].L2Misses++
		if ev := s.l2.insert(line / (s.cfg.L2.LineWords / s.cfg.L1.LineWords)); ev != -1 {
			s.stats.Evictions++
		}
	}

	// Fill into the requesting L1.
	if ev := s.l1s[l1].insert(line); ev != -1 {
		s.stats.Evictions++
		if de := s.dirAt(ev); de != nil {
			de.sharers &^= 1 << uint(l1)
			if de.owner == l1 {
				de.owner = -1
			}
		}
	}
	if d == nil {
		d = s.dirEnsure(line)
	}
	d.sharers |= 1 << uint(l1)
	if write {
		d.owner = l1
	} else if d.owner != l1 {
		d.owner = -1 // demoted to shared
	}
	return res
}

func (s *System) invalidatePeers(d *dirState, except int, line int64) {
	for i := 0; i < s.cfg.NumL1s; i++ {
		if i == except {
			continue
		}
		if d.sharers&(1<<uint(i)) != 0 {
			s.l1s[i].invalidate(line)
			s.stats.Invals++
			s.perL1[i].Invals++
		}
	}
}
