package testprogs

import (
	"testing"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/lang"
)

// TestGeneratedProgramsAreValid: every generated program must lex, parse,
// check, build, and evaluate within a modest fuel budget.
func TestGeneratedProgramsAreValid(t *testing.T) {
	skipped := 0
	for seed := int64(0); seed < 300; seed++ {
		src := Generate(seed)
		f, err := lang.ParseAndCheck(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		ev := lang.NewEvaluator(f, 5_000_000)
		if _, err := ev.Run(); err != nil {
			// Nested loops occasionally compound into very long runs;
			// those seeds are filtered, not failures — but they must be
			// rare.
			if err == lang.ErrOutOfFuel {
				skipped++
				continue
			}
			t.Fatalf("seed %d: evaluator: %v\n%s", seed, err, src)
		}
		p, err := cfgir.Build(f)
		if err != nil {
			t.Fatalf("seed %d: build: %v\n%s", seed, err, src)
		}
		for _, fn := range p.Funcs {
			fn.Compact()
		}
		p.Optimize()
	}
	if skipped > 30 {
		t.Fatalf("%d/300 seeds exceeded the step budget; generator bounds too loose", skipped)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	if Generate(42) != Generate(42) {
		t.Fatal("generator is not deterministic")
	}
	if Generate(1) == Generate(2) {
		t.Fatal("distinct seeds produced identical programs")
	}
}

func TestGenerateWithBounds(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.MaxFuncs = 0
	src := GenerateWith(7, cfg)
	if want := "func main"; !contains(src, want) {
		t.Fatalf("generated program missing %q:\n%s", want, src)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
