package testprogs

import (
	"fmt"
	"math/rand"
	"strings"

	"wavescalar/internal/lang"
)

// GenConfig bounds the random program generator.
type GenConfig struct {
	MaxFuncs     int // besides main
	MaxGlobals   int
	MaxArraySize int64
	MaxStmts     int // per block
	MaxDepth     int // statement nesting
	MaxExprDepth int
}

// DefaultGenConfig produces small but structurally rich programs.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		MaxFuncs:     3,
		MaxGlobals:   3,
		MaxArraySize: 16,
		MaxStmts:     4,
		MaxDepth:     2,
		MaxExprDepth: 3,
	}
}

// Generate produces a random, well-formed wsl program. Programs always
// terminate: every loop is a bounded counted loop, and recursion is
// excluded by only calling previously generated functions. Array indexes
// are masked into range with %, so no engine faults on bounds.
//
// The generator is the engine of the differential fuzz tests: every
// generated program must produce identical results on all six execution
// engines.
func Generate(seed int64) string {
	return GenerateWith(seed, DefaultGenConfig())
}

// GenerateWith generates with explicit bounds.
func GenerateWith(seed int64, cfg GenConfig) string {
	g := &gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	return g.program()
}

type gen struct {
	rng *rand.Rand
	cfg GenConfig
	b   strings.Builder

	globals []genGlobal // name + size
	funcs   []genFunc
	indent  int

	// vars is the scope stack of visible local variables.
	vars [][]string
	// loopVars are induction variables that must not be reassigned (so the
	// loops stay bounded).
	loopVars map[string]bool
	nextVar  int
}

type genGlobal struct {
	name string
	size int64
}

type genFunc struct {
	name   string
	params int
}

func (g *gen) program() string {
	nGlobals := 1 + g.rng.Intn(g.cfg.MaxGlobals)
	for i := 0; i < nGlobals; i++ {
		size := int64(1)
		if g.rng.Intn(2) == 0 {
			size = 2 + g.rng.Int63n(g.cfg.MaxArraySize-1)
		}
		gl := genGlobal{name: fmt.Sprintf("g%d", i), size: size}
		g.globals = append(g.globals, gl)
		if size == 1 {
			fmt.Fprintf(&g.b, "global %s = %d;\n", gl.name, g.rng.Intn(100))
		} else {
			fmt.Fprintf(&g.b, "global %s[%d];\n", gl.name, size)
		}
	}

	nFuncs := g.rng.Intn(g.cfg.MaxFuncs + 1)
	for i := 0; i < nFuncs; i++ {
		g.fn(fmt.Sprintf("f%d", i), 1+g.rng.Intn(3))
	}
	g.fn("main", 0)
	return g.b.String()
}

func (g *gen) fn(name string, params int) {
	g.loopVars = make(map[string]bool)
	g.vars = nil
	g.pushScope()
	var ps []string
	for i := 0; i < params; i++ {
		p := fmt.Sprintf("p%d", i)
		ps = append(ps, p)
		g.declare(p)
	}
	fmt.Fprintf(&g.b, "func %s(%s) {\n", name, strings.Join(ps, ", "))
	g.indent = 1
	g.block(g.cfg.MaxDepth)
	g.line("return %s;", g.expr(g.cfg.MaxExprDepth))
	g.b.WriteString("}\n")
	g.popScope()
	g.funcs = append(g.funcs, genFunc{name: name, params: params})
}

func (g *gen) pushScope() { g.vars = append(g.vars, nil) }
func (g *gen) popScope()  { g.vars = g.vars[:len(g.vars)-1] }

func (g *gen) declare(name string) {
	g.vars[len(g.vars)-1] = append(g.vars[len(g.vars)-1], name)
}

func (g *gen) freshVar() string {
	v := fmt.Sprintf("v%d", g.nextVar)
	g.nextVar++
	return v
}

func (g *gen) visibleVars() []string {
	var out []string
	for _, scope := range g.vars {
		out = append(out, scope...)
	}
	return out
}

// assignableVars excludes loop induction variables.
func (g *gen) assignableVars() []string {
	var out []string
	for _, v := range g.visibleVars() {
		if !g.loopVars[v] {
			out = append(out, v)
		}
	}
	return out
}

func (g *gen) line(format string, args ...any) {
	g.b.WriteString(strings.Repeat("\t", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *gen) block(depth int) {
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(depth)
	}
}

func (g *gen) stmt(depth int) {
	choices := 6
	if depth <= 0 {
		choices = 3 // only flat statements
	}
	switch g.rng.Intn(choices) {
	case 0: // var decl
		v := g.freshVar()
		g.line("var %s = %s;", v, g.expr(g.cfg.MaxExprDepth))
		g.declare(v)
	case 1: // assignment (var or scalar global or array store)
		g.assignStmt()
	case 2: // expression statement (call if possible, else assignment)
		if len(g.funcs) > 0 && g.rng.Intn(2) == 0 {
			g.line("%s;", g.call())
		} else {
			g.assignStmt()
		}
	case 3: // if / if-else
		g.line("if %s {", g.expr(2))
		g.indent++
		g.pushScope()
		g.block(depth - 1)
		g.popScope()
		g.indent--
		if g.rng.Intn(2) == 0 {
			g.line("} else {")
			g.indent++
			g.pushScope()
			g.block(depth - 1)
			g.popScope()
			g.indent--
		}
		g.line("}")
	case 4: // bounded for loop
		iv := g.freshVar()
		bound := 1 + g.rng.Intn(5)
		step := 1 + g.rng.Intn(2)
		g.line("for var %s = 0; %s < %d; %s = %s + %d {", iv, iv, bound, iv, iv, step)
		g.indent++
		g.pushScope()
		g.declare(iv)
		g.loopVars[iv] = true
		g.block(depth - 1)
		// Occasional break/continue guarded by the induction variable.
		if g.rng.Intn(4) == 0 {
			kw := "break"
			if g.rng.Intn(2) == 0 {
				kw = "continue"
			}
			g.line("if %s == %d { %s; }", iv, g.rng.Intn(bound), kw)
		}
		g.popScope()
		delete(g.loopVars, iv)
		g.indent--
		g.line("}")
	case 5: // bounded while loop (explicit counter)
		iv := g.freshVar()
		bound := 1 + g.rng.Intn(6)
		g.line("var %s = 0;", iv)
		g.declare(iv)
		g.loopVars[iv] = true
		g.line("while %s < %d {", iv, bound)
		g.indent++
		g.pushScope()
		g.block(depth - 1)
		g.popScope()
		g.loopVars[iv] = false
		g.line("%s = %s + 1;", iv, iv)
		g.indent--
		g.line("}")
		g.loopVars[iv] = true // stays unassignable afterwards (harmless)
	}
}

func (g *gen) assignStmt() {
	vars := g.assignableVars()
	arrays := g.arrays()
	switch {
	case len(arrays) > 0 && g.rng.Intn(3) == 0:
		a := arrays[g.rng.Intn(len(arrays))]
		g.line("%s[%s] = %s;", a.name, g.index(a), g.expr(g.cfg.MaxExprDepth))
	case len(vars) > 0 && g.rng.Intn(4) != 0:
		v := vars[g.rng.Intn(len(vars))]
		g.line("%s = %s;", v, g.expr(g.cfg.MaxExprDepth))
	default:
		if sc := g.scalars(); len(sc) > 0 {
			s := sc[g.rng.Intn(len(sc))]
			g.line("%s = %s;", s.name, g.expr(g.cfg.MaxExprDepth))
			return
		}
		v := g.freshVar()
		g.line("var %s = %s;", v, g.expr(2))
		g.declare(v)
	}
}

func (g *gen) arrays() []genGlobal {
	var out []genGlobal
	for _, gl := range g.globals {
		if gl.size > 1 {
			out = append(out, gl)
		}
	}
	return out
}

func (g *gen) scalars() []genGlobal {
	var out []genGlobal
	for _, gl := range g.globals {
		if gl.size == 1 {
			out = append(out, gl)
		}
	}
	return out
}

// index produces an always-in-range index expression: (expr % size + size) % size
// folded to a simpler non-negative form.
func (g *gen) index(a genGlobal) string {
	e := g.expr(2)
	// ((e) % size + size) % size is safely in [0, size).
	return fmt.Sprintf("(((%s) %% %d) + %d) %% %d", e, a.size, a.size, a.size)
}

var binOps = []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
	"==", "!=", "<", "<=", ">", ">=", "&&", "||"}

func (g *gen) expr(depth int) string {
	if depth <= 0 {
		return g.atom()
	}
	switch g.rng.Intn(6) {
	case 0:
		return g.atom()
	case 1:
		op := []string{"-", "!", "~"}[g.rng.Intn(3)]
		return fmt.Sprintf("%s(%s)", op, g.expr(depth-1))
	case 2:
		if len(g.funcs) > 0 {
			return g.call()
		}
		return g.atom()
	case 3:
		if arrays := g.arrays(); len(arrays) > 0 {
			a := arrays[g.rng.Intn(len(arrays))]
			return fmt.Sprintf("%s[%s]", a.name, g.index(a))
		}
		return g.atom()
	default:
		op := binOps[g.rng.Intn(len(binOps))]
		l := g.expr(depth - 1)
		r := g.expr(depth - 1)
		if op == "<<" || op == ">>" {
			// Keep shift counts small so values stay comparable across
			// engines (they would anyway, but smaller magnitudes make
			// failures readable).
			r = fmt.Sprintf("(%s & 7)", g.atom())
		}
		return fmt.Sprintf("(%s %s %s)", l, op, r)
	}
}

func (g *gen) atom() string {
	vars := g.visibleVars()
	switch {
	case len(vars) > 0 && g.rng.Intn(2) == 0:
		return vars[g.rng.Intn(len(vars))]
	case len(g.scalars()) > 0 && g.rng.Intn(3) == 0:
		sc := g.scalars()
		return sc[g.rng.Intn(len(sc))].name
	default:
		return fmt.Sprintf("%d", g.rng.Intn(200)-100)
	}
}

// call invokes a previously generated function (no recursion, so programs
// terminate).
func (g *gen) call() string {
	f := g.funcs[g.rng.Intn(len(g.funcs))]
	args := make([]string, f.params)
	for i := range args {
		args[i] = g.expr(1)
	}
	return fmt.Sprintf("%s(%s)", f.name, strings.Join(args, ", "))
}

// TerminatesWithin reports whether the program parses, checks, and
// finishes within maxSteps evaluator steps; fuzz harnesses use it to
// filter out the rare generated program whose nested loops compound into
// an impractically long run.
func TerminatesWithin(src string, maxSteps int64) bool {
	f, err := lang.ParseAndCheck(src)
	if err != nil {
		return false
	}
	_, err = lang.NewEvaluator(f, maxSteps).Run()
	return err == nil
}
