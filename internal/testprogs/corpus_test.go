package testprogs

import (
	"testing"

	"wavescalar/internal/cfgir"
	"wavescalar/internal/lang"
)

// TestCorpusFamilyValidity: every family × 200 seeds must parse,
// type-check, build through the IR pipeline, and terminate within a
// bounded evaluator budget — the generator-side half of the corpus
// guarantee (the harness corpus tests add the ten-engine agreement
// half).
func TestCorpusFamilyValidity(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 200; seed++ {
				spec := CorpusSpec{Family: fam, Seed: mixSeed(77, seed), Size: 1}
				src, err := GenerateSpec(spec)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				f, err := lang.ParseAndCheck(src)
				if err != nil {
					t.Fatalf("seed %d: %v\n%s", seed, err, src)
				}
				if _, err := lang.NewEvaluator(f, 2*mixedStepBudget).Run(); err != nil {
					t.Fatalf("seed %d: evaluator: %v\n%s", seed, err, src)
				}
				p, err := cfgir.Build(f)
				if err != nil {
					t.Fatalf("seed %d: build: %v\n%s", seed, err, src)
				}
				for _, fn := range p.Funcs {
					fn.Compact()
				}
				p.Optimize()
			}
		})
	}
}

// TestGenerateSpecDeterministic: a spec reproduces its program
// bit-for-bit, and distinct seeds diverge.
func TestGenerateSpecDeterministic(t *testing.T) {
	for _, fam := range Families() {
		a, err := GenerateSpec(CorpusSpec{Family: fam, Seed: 42, Size: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := GenerateSpec(CorpusSpec{Family: fam, Seed: 42, Size: 1})
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: seed 42 not reproducible", fam)
		}
		c, err := GenerateSpec(CorpusSpec{Family: fam, Seed: 43, Size: 1})
		if err != nil {
			t.Fatal(err)
		}
		if a == c {
			t.Errorf("%s: seeds 42 and 43 produced identical programs", fam)
		}
	}
	if _, err := GenerateSpec(CorpusSpec{Family: "no-such-family", Seed: 1}); err == nil {
		t.Error("unknown family accepted")
	}
}

// TestCorpusSpecsShape: the derived corpus is family-balanced, seeded
// reproducibly, and sensitive to the base seed.
func TestCorpusSpecsShape(t *testing.T) {
	specs := CorpusSpecs(10, 1)
	if len(specs) != 10 {
		t.Fatalf("got %d specs", len(specs))
	}
	fams := Families()
	for i, s := range specs {
		if s.Family != fams[i%len(fams)] {
			t.Errorf("spec %d: family %q, want %q", i, s.Family, fams[i%len(fams)])
		}
	}
	again := CorpusSpecs(10, 1)
	for i := range specs {
		if specs[i] != again[i] {
			t.Fatalf("CorpusSpecs not reproducible at %d", i)
		}
	}
	other := CorpusSpecs(10, 2)
	if specs[0].Seed == other[0].Seed {
		t.Error("base seed has no effect on derived seeds")
	}
}

func TestSpecNameRoundTrip(t *testing.T) {
	cases := []CorpusSpec{
		{Family: "pointer", Seed: 42, Size: 1},
		{Family: "mixed", Seed: -7, Size: 1},
		{Family: "pipeline", Seed: 123456789, Size: 3},
	}
	for _, want := range cases {
		got, ok := ParseSpecName(want.Name())
		if !ok {
			t.Fatalf("ParseSpecName(%q) failed", want.Name())
		}
		if got != want {
			t.Errorf("round trip %q: got %+v want %+v", want.Name(), got, want)
		}
	}
	for _, bad := range []string{"", "gen", "gen:pointer", "gen:nope:1", "lu",
		"gen:pointer:x", "gen:pointer:1:9", "gen:pointer:1:2:3"} {
		if _, ok := ParseSpecName(bad); ok {
			t.Errorf("ParseSpecName(%q) accepted", bad)
		}
	}
	if name := (CorpusSpec{Family: "pointer", Seed: 5}).Name(); name != "gen:pointer:5" {
		t.Errorf("size-1 name %q should omit the size", name)
	}
}
