package testprogs

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// This file grows the toy statement generator (generate.go) into a seeded
// corpus of workload *families*: structured program shapes that stress the
// memory system and control machinery of the simulated WaveCache in
// distinct, tunable ways. Every family emits valid wsl source with
// statically bounded loop trip counts and recursion depths, so every
// generated program terminates by construction — the property the
// corpus-scale differential sweeps (harness.RunCorpus, FuzzDifferential)
// rely on. A CorpusSpec reproduces any program bit-for-bit.

// CorpusSpec identifies one generated program: a family, the seed that
// drives every random choice inside it, and a size knob scaling trip
// counts. Generation is a pure function of the spec, so a spec is a
// complete, content-addressable name for its program.
type CorpusSpec struct {
	Family string `json:"family"`
	Seed   int64  `json:"seed"`
	// Size scales dynamic work (1 = default; clamped to [1, 4]).
	Size int `json:"size"`
}

// Name renders the spec as a workload name, "gen:family:seed[:size]"
// (size omitted when 1). workloads.ByName understands these names and
// synthesizes the workload on demand.
func (s CorpusSpec) Name() string {
	if s.size() != 1 {
		return fmt.Sprintf("gen:%s:%d:%d", s.Family, s.Seed, s.size())
	}
	return fmt.Sprintf("gen:%s:%d", s.Family, s.Seed)
}

func (s CorpusSpec) size() int {
	switch {
	case s.Size < 1:
		return 1
	case s.Size > 4:
		return 4
	}
	return s.Size
}

// ParseSpecName parses a "gen:family:seed[:size]" name back into a spec.
func ParseSpecName(name string) (CorpusSpec, bool) {
	parts := strings.Split(name, ":")
	if len(parts) < 3 || len(parts) > 4 || parts[0] != "gen" {
		return CorpusSpec{}, false
	}
	if !isFamily(parts[1]) {
		return CorpusSpec{}, false
	}
	seed, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return CorpusSpec{}, false
	}
	spec := CorpusSpec{Family: parts[1], Seed: seed, Size: 1}
	if len(parts) == 4 {
		size, err := strconv.Atoi(parts[3])
		if err != nil || size < 1 || size > 4 {
			return CorpusSpec{}, false
		}
		spec.Size = size
	}
	return spec, true
}

// families is ordered; CorpusSpecs round-robins it, so order is part of
// the reproducibility contract.
var families = []string{"pointer", "recursion", "pipeline", "contention", "mixed"}

// Families lists the workload family names in their round-robin order.
func Families() []string {
	out := make([]string, len(families))
	copy(out, families)
	return out
}

func isFamily(name string) bool {
	for _, f := range families {
		if f == name {
			return true
		}
	}
	return false
}

// CorpusSpecs derives n reproducible specs from a base seed, round-robin
// across the families so every prefix of the corpus is family-balanced
// (shard k/n slicing stays balanced too).
func CorpusSpecs(n int, baseSeed int64) []CorpusSpec {
	out := make([]CorpusSpec, n)
	for i := range out {
		out[i] = CorpusSpec{
			Family: families[i%len(families)],
			Seed:   mixSeed(baseSeed, int64(i)),
			Size:   1,
		}
	}
	return out
}

// mixSeed is a splitmix64-style hash: spec seeds must decorrelate from
// consecutive corpus indexes, or every family would see near-identical
// programs along the sweep.
func mixSeed(parts ...int64) int64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		x := uint64(p) ^ h
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		h = x + 0x9e3779b97f4a7c15
	}
	return int64(h &^ (1 << 63))
}

// GenerateSpec produces the program a spec names. It is deterministic:
// the same spec yields byte-identical source forever (the corpus cache
// and fuzz seed corpus depend on this).
func GenerateSpec(s CorpusSpec) (string, error) {
	var famHash int64
	for _, ch := range s.Family {
		famHash = famHash*131 + int64(ch)
	}
	r := rand.New(rand.NewSource(mixSeed(s.Seed, famHash)))
	size := s.size()
	switch s.Family {
	case "pointer":
		return genPointer(r, size), nil
	case "recursion":
		return genRecursion(r, size), nil
	case "pipeline":
		return genPipeline(r, size), nil
	case "contention":
		return genContention(r, size), nil
	case "mixed":
		return genMixed(r, size), nil
	}
	return "", fmt.Errorf("testprogs: unknown corpus family %q", s.Family)
}

// genPointer emits irregular pointer-chasing over memory: a scrambled
// next[] graph walked with data-dependent loads (and occasional stores
// back into the chase path) that defeat any static memory-ordering
// shortcut — every load depends on the previous one.
func genPointer(r *rand.Rand, size int) string {
	n := 8 + r.Intn(25)            // nodes
	steps := (20 + r.Intn(60)) * size
	a := 2*r.Intn(16) + 3          // odd stride keeps the graph well mixed
	b := r.Intn(n)
	c := 3 + r.Intn(29)
	m := 64 + r.Intn(448)
	mask := []int{1, 3, 7}[r.Intn(3)]
	twoChains := r.Intn(2) == 0

	var sb strings.Builder
	fmt.Fprintf(&sb, "global next[%d];\nglobal val[%d];\n\n", n, n)
	sb.WriteString("func main() {\n")
	fmt.Fprintf(&sb, "\tfor var i = 0; i < %d; i = i + 1 {\n", n)
	fmt.Fprintf(&sb, "\t\tnext[i] = (i * %d + %d) %% %d;\n", a, b, n)
	fmt.Fprintf(&sb, "\t\tval[i] = (i * %d + %d) %% %d;\n", c, r.Intn(m), m)
	sb.WriteString("\t}\n")
	fmt.Fprintf(&sb, "\tvar p = %d;\n", r.Intn(n))
	if twoChains {
		fmt.Fprintf(&sb, "\tvar q = %d;\n", r.Intn(n))
	}
	sb.WriteString("\tvar s = 0;\n")
	fmt.Fprintf(&sb, "\tfor var i = 0; i < %d; i = i + 1 {\n", steps)
	sb.WriteString("\t\ts = s + val[p];\n")
	fmt.Fprintf(&sb, "\t\tif (s & %d) == 0 { val[p] = (s + i) %% %d; }\n", mask, m)
	sb.WriteString("\t\tp = next[p];\n")
	if twoChains {
		sb.WriteString("\t\ts = s + val[q] * 3;\n")
		sb.WriteString("\t\tq = next[next[q]];\n")
	}
	sb.WriteString("\t}\n")
	fmt.Fprintf(&sb, "\tfor var i = 0; i < %d; i = i + 1 { s = s * 31 + val[i]; }\n", n)
	sb.WriteString("\treturn s;\n}\n")
	return sb.String()
}

// genRecursion emits deep, tree, or mutual recursion — call-heavy
// workloads where each frame may touch shared memory, stressing the
// wave-ordered store path across call boundaries. Depths are static.
func genRecursion(r *rand.Rand, size int) string {
	var sb strings.Builder
	switch r.Intn(3) {
	case 0: // deep linear recursion threading an accumulator through memory
		d := 4 + r.Intn(8)
		depth := (8 + r.Intn(25)) * size
		k := 1 + r.Intn(9)
		j := 1 + r.Intn(7)
		fmt.Fprintf(&sb, "global trail[%d];\n\n", d)
		sb.WriteString("func down(n, acc) {\n\tif n <= 0 { return acc; }\n")
		fmt.Fprintf(&sb, "\ttrail[n %% %d] = (acc + n) %% 1000;\n", d)
		fmt.Fprintf(&sb, "\treturn down(n - 1, acc + n * %d + trail[(n * %d) %% %d]);\n}\n\n", k, j, d)
		sb.WriteString("func main() {\n")
		fmt.Fprintf(&sb, "\tvar s = down(%d, %d);\n", depth, r.Intn(50))
		fmt.Fprintf(&sb, "\tfor var i = 0; i < %d; i = i + 1 { s = s * 31 + trail[i]; }\n", d)
		sb.WriteString("\treturn s;\n}\n")
	case 1: // mutual recursion with distinct per-parity arithmetic
		depth := (6 + r.Intn(20)) * size
		e := 1 + r.Intn(9)
		o := 1 + r.Intn(9)
		mod := 1009 + r.Intn(99000)
		fmt.Fprintf(&sb, "func even(n, acc) {\n\tif n <= 0 { return acc; }\n\treturn odd(n - 1, acc + %d);\n}\n\n", e)
		fmt.Fprintf(&sb, "func odd(n, acc) {\n\tif n <= 0 { return acc + 1; }\n\treturn even(n - 1, (acc * 3) %% %d + %d);\n}\n\n", mod, o)
		sb.WriteString("func main() {\n")
		fmt.Fprintf(&sb, "\treturn even(%d, %d) * 100 + odd(%d, %d);\n}\n",
			depth, r.Intn(20), 5+r.Intn(15)*size, r.Intn(20))
	default: // tree recursion with a global side-effect counter
		n := 5 + r.Intn(5) + size // fib-like: keep the call tree modest
		if n > 11 {
			n = 11
		}
		w := r.Intn(5)
		fmt.Fprintf(&sb, "global cnt;\n\n")
		sb.WriteString("func tree(n) {\n\tcnt = cnt + 1;\n")
		fmt.Fprintf(&sb, "\tif n < 2 { return n + %d; }\n", w)
		fmt.Fprintf(&sb, "\treturn tree(n - 1) + tree(n - 2) * %d;\n}\n\n", 1+r.Intn(3))
		sb.WriteString("func main() {\n")
		fmt.Fprintf(&sb, "\treturn tree(%d) * 1000 + cnt;\n}\n", n)
	}
	return sb.String()
}

// genPipeline emits a producer/consumer pipeline: an LCG producer fills a
// buffer, a randomized chain of transform stages maps buffer to buffer
// (each with its own stride and operator), and a filtering consumer
// reduces — with the accumulator fed back into the next round's producer
// so the rounds serialize through memory.
func genPipeline(r *rand.Rand, size int) string {
	n := 8 + r.Intn(17)
	stages := 1 + r.Intn(3)
	rounds := (1 + r.Intn(3)) * size
	m := 128 + r.Intn(896)
	ops := []string{"+", "-", "^", "|", "&"}

	var sb strings.Builder
	for s := 0; s <= stages; s++ {
		fmt.Fprintf(&sb, "global q%d[%d];\n", s, n)
	}
	sb.WriteString("\nfunc main() {\n")
	fmt.Fprintf(&sb, "\tvar seed = %d;\n", 1+r.Intn(1000))
	sb.WriteString("\tvar s = 0;\n")
	fmt.Fprintf(&sb, "\tfor var round = 0; round < %d; round = round + 1 {\n", rounds)
	fmt.Fprintf(&sb, "\t\tfor var i = 0; i < %d; i = i + 1 {\n", n)
	sb.WriteString("\t\t\tseed = (seed * 48271 + round) % 2147483647;\n")
	fmt.Fprintf(&sb, "\t\t\tq0[i] = seed %% %d;\n", m)
	sb.WriteString("\t\t}\n")
	for st := 1; st <= stages; st++ {
		off := 1 + r.Intn(n-1)
		op := ops[r.Intn(len(ops))]
		c := r.Intn(64)
		fmt.Fprintf(&sb, "\t\tfor var i = 0; i < %d; i = i + 1 {\n", n)
		fmt.Fprintf(&sb, "\t\t\tq%d[i] = (q%d[i] %s q%d[(i + %d) %% %d]) + %d;\n",
			st, st-1, op, st-1, off, n, c)
		sb.WriteString("\t\t}\n")
	}
	fm := 2 + r.Intn(5)
	fmt.Fprintf(&sb, "\t\tfor var i = 0; i < %d; i = i + 1 {\n", n)
	fmt.Fprintf(&sb, "\t\t\tvar x = q%d[i];\n", stages)
	fmt.Fprintf(&sb, "\t\t\tif ((x %% %d) + %d) %% %d == %d { s = s + x; } else { s = s * 3 + 1; }\n",
		fm, fm, fm, r.Intn(fm))
	sb.WriteString("\t\t}\n")
	sb.WriteString("\t\tseed = (seed + (s % 65536) + 65536) % 2147483647;\n")
	sb.WriteString("\t}\n")
	sb.WriteString("\treturn s;\n}\n")
	return sb.String()
}

// genContention emits a memory-contention stressor: a handful of hot
// cells hammered with read-modify-write updates from a helper function
// and from conditional stores in the main loop, plus a log array whose
// writes interleave with the hot traffic — a worst case for the
// wave-ordered store buffers.
func genContention(r *rand.Rand, size int) string {
	h := 2 + r.Intn(7)  // hot set size
	l := 4 + r.Intn(13) // log size
	steps := (16 + r.Intn(48)) * size
	a := 1 + r.Intn(7)
	k := r.Intn(64)
	m := 128 + r.Intn(384)

	var sb strings.Builder
	fmt.Fprintf(&sb, "global hot[%d];\nglobal log[%d];\n\n", h, l)
	fmt.Fprintf(&sb, "func bump(i, v) {\n\thot[i] = hot[i] + v;\n\treturn hot[(i + 1) %% %d];\n}\n\n", h)
	sb.WriteString("func main() {\n\tvar s = 0;\n")
	fmt.Fprintf(&sb, "\tfor var i = 0; i < %d; i = i + 1 {\n", steps)
	fmt.Fprintf(&sb, "\t\tvar x = bump((i * %d) %% %d, (i ^ %d) %% 64);\n", a, h, k)
	sb.WriteString("\t\ts = s + x;\n")
	fmt.Fprintf(&sb, "\t\tif x & 1 { hot[((x %% %d) + %d) %% %d] = ((s + i) %% %d + %d) %% %d; }\n",
		h, h, h, m, m, m)
	fmt.Fprintf(&sb, "\t\tlog[i %% %d] = ((s %% 256) + 256) %% 256;\n", l)
	sb.WriteString("\t}\n")
	fmt.Fprintf(&sb, "\tfor var i = 0; i < %d; i = i + 1 { s = s * 17 + hot[i]; }\n", h)
	fmt.Fprintf(&sb, "\tfor var i = 0; i < %d; i = i + 1 { s = s + log[i]; }\n", l)
	sb.WriteString("\treturn s;\n}\n")
	return sb.String()
}

// mixedStepBudget bounds the evaluator steps a mixed-family program may
// take; generation rejection-samples against it so corpus sweeps never
// pick up a seed whose nested loops compound into an impractically long
// simulation.
const mixedStepBudget = 300_000

// genMixed wraps the free-form statement generator (generate.go) as a
// corpus family. Unlike the structured families its loop nesting can
// compound, so it rejection-samples deterministically: derived seeds are
// tried in order until one terminates within the step budget, falling
// back to a pointer-chase program if none does (never observed, but the
// family must be total).
func genMixed(r *rand.Rand, size int) string {
	cfg := DefaultGenConfig()
	cfg.MaxStmts = 3 + size
	base := r.Int63()
	for attempt := int64(0); attempt < 16; attempt++ {
		src := GenerateWith(mixSeed(base, attempt), cfg)
		if TerminatesWithin(src, mixedStepBudget) {
			return src
		}
	}
	return genPointer(rand.New(rand.NewSource(base)), size)
}
