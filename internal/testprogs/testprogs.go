// Package testprogs holds the shared corpus of wsl programs used for
// differential testing across every execution engine in the repository.
// The expected result of each program is computed at test time by the AST
// evaluator (the simplest oracle), so the corpus stores only sources.
package testprogs

// Case is one corpus program.
type Case struct {
	Name string
	Src  string
}

// Corpus is ordered roughly by difficulty; every engine test iterates it.
var Corpus = []Case{
	{"return_const", `func main() { return 42; }`},
	{"arith", `func main() { return (2 + 3) * 4 - 10 / 3; }`},
	{"unary", `func main() { return -(3) + !0 + !7 + ~0; }`},
	{"shifts", `func main() { return (1 << 10) + (-16 >> 2); }`},
	{"comparisons", `func main() { return (1 < 2) + (2 <= 2) + (3 > 4) + (4 >= 4) + (1 == 1) + (1 != 1); }`},
	{"div_by_zero", `func main() { var z = 0; return 7 / z + 7 % z; }`},
	{"if_taken", `func main() { if 1 < 2 { return 10; } return 20; }`},
	{"if_not_taken", `func main() { if 2 < 1 { return 10; } return 20; }`},
	{"if_else_chain", `func main() { var x = 5; if x < 3 { return 1; } else if x < 7 { return 2; } else { return 3; } }`},
	{"if_join", `func main() { var x = 0; if 1 { x = 3; } else { x = 4; } return x + 1; }`},
	{"both_return", `func main() { if 1 { return 4; } else { return 5; } }`},
	{"while_sum", `func main() { var s = 0; var i = 0; while i < 10 { s = s + i; i = i + 1; } return s; }`},
	{"for_sum", `func main() { var s = 0; for var i = 1; i <= 100; i = i + 1 { s = s + i; } return s; }`},
	{"nested_loops", `func main() { var s = 0; for var i = 0; i < 5; i = i + 1 { for var j = 0; j < 5; j = j + 1 { s = s + i * j; } } return s; }`},
	{"break", `func main() { var i = 0; while 1 { if i >= 7 { break; } i = i + 1; } return i; }`},
	{"continue", `func main() { var s = 0; for var i = 0; i < 10; i = i + 1 { if i % 2 { continue; } s = s + i; } return s; }`},
	{"loop_branch_mix", `func main() { var a = 0; var b = 0; for var i = 0; i < 20; i = i + 1 { if i % 3 == 0 { a = a + i; } else if i % 3 == 1 { b = b + i; } else { a = a + 1; b = b + 1; } } return a * 1000 + b; }`},
	{"globals", "global g = 5;\nfunc main() { g = g + 1; return g * 2; }"},
	{"array_rw", "global a[10];\nfunc main() { for var i = 0; i < 10; i = i + 1 { a[i] = i * i; } var s = 0; for var i = 0; i < 10; i = i + 1 { s = s + a[i]; } return s; }"},
	{"array_init", "global a[4] = {10, 20, 30};\nfunc main() { return a[0] + a[1] + a[2] + a[3]; }"},
	{"mem_raw_order", "global a[4];\nfunc main() { a[0] = 1; a[1] = a[0] + 1; a[0] = a[1] + 1; return a[0] * 10 + a[1]; }"},
	{"mem_in_branches", "global a[8];\nfunc main() { for var i = 0; i < 8; i = i + 1 { if i % 2 { a[i] = i; } else { a[i] = i * 10; } } var s = 0; for var i = 0; i < 8; i = i + 1 { s = s * 3 + a[i]; } return s; }"},
	{"mem_loop_carried", "global a[16];\nfunc main() { a[0] = 1; for var i = 1; i < 16; i = i + 1 { a[i] = a[i-1] * 2 + 1; } return a[15]; }"},
	{"mem_silent_paths", "global a[4];\nfunc main() { var s = 0; for var i = 0; i < 12; i = i + 1 { if i % 4 == 0 { a[i % 4] = i; } else { s = s + 1; } } return s * 100 + a[0] + a[1] + a[2] + a[3]; }"},
	{"call_simple", `func double(x) { return x * 2; } func main() { return double(21); }`},
	{"call_nested", `func add(a, b) { return a + b; } func main() { return add(add(1, 2), add(3, 4)); }`},
	{"call_in_loop", `func sq(x) { return x * x; } func main() { var s = 0; for var i = 0; i < 10; i = i + 1 { s = s + sq(i); } return s; }`},
	{"call_zero_args", "global g = 7;\nfunc get() { return g; }\nfunc main() { return get() + get(); }"},
	{"recursion_fib", `func fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); } func main() { return fib(10); }`},
	{"recursion_memory", "global seen[20];\nfunc fact(n) { seen[n] = 1; if n <= 1 { return 1; } return n * fact(n - 1); }\nfunc main() { var f = fact(6); var c = 0; for var i = 0; i < 20; i = i + 1 { c = c + seen[i]; } return f + c; }"},
	{"mutual_recursion", `func isEven(n) { if n == 0 { return 1; } return isOdd(n - 1); } func isOdd(n) { if n == 0 { return 0; } return isEven(n - 1); } func main() { return isEven(10) * 10 + isOdd(7); }`},
	{"call_memory_interleave", "global log[32];\nglobal pos;\nfunc record(v) { log[pos] = v; pos = pos + 1; return v; }\nfunc main() { record(3); log[pos] = 99; pos = pos + 1; record(5); var s = 0; for var i = 0; i < pos; i = i + 1 { s = s * 10 + log[i]; } return s; }"},
	{"short_circuit_and", "global g;\nfunc bump() { g = g + 1; return 0; }\nfunc main() { var x = 0 && bump(); return g * 10 + x; }"},
	{"short_circuit_or", "global g;\nfunc bump() { g = g + 1; return 1; }\nfunc main() { var x = 1 || bump(); return g * 10 + x; }"},
	{"and_evaluates_rhs", "global g;\nfunc bump() { g = g + 1; return 5; }\nfunc main() { var x = 1 && bump(); return g * 10 + x; }"},
	{"shadowing", `func main() { var x = 1; { var x = 2; x = 3; } return x; }`},
	{"gcd", `func gcd(a, b) { while b != 0 { var t = b; b = a % b; a = t; } return a; } func main() { return gcd(1071, 462); }`},
	{"collatz", `func main() { var n = 27; var steps = 0; while n != 1 { if n % 2 { n = 3 * n + 1; } else { n = n / 2; } steps = steps + 1; } return steps; }`},
	{"bubble_sort", "global a[12] = {9, 2, 7, 4, 1, 8, 3, 12, 6, 5, 11, 10};\nfunc main() { for var i = 0; i < 12; i = i + 1 { for var j = 0; j < 11 - i; j = j + 1 { if a[j] > a[j+1] { var t = a[j]; a[j] = a[j+1]; a[j+1] = t; } } } var s = 0; for var i = 0; i < 12; i = i + 1 { s = s * 13 + a[i]; } return s; }"},
	{"binary_search", "global a[16] = {1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 29, 31};\nfunc find(x) { var lo = 0; var hi = 15; while lo <= hi { var mid = (lo + hi) / 2; if a[mid] == x { return mid; } if a[mid] < x { lo = mid + 1; } else { hi = mid - 1; } } return -1; }\nfunc main() { return find(21) * 100 + find(1) * 10 + (find(22) + 1); }"},
	{"matrix_mult_small", "global a[16];\nglobal b[16];\nglobal c[16];\nfunc main() { for var i = 0; i < 16; i = i + 1 { a[i] = i + 1; b[i] = 16 - i; } for var i = 0; i < 4; i = i + 1 { for var j = 0; j < 4; j = j + 1 { var s = 0; for var k = 0; k < 4; k = k + 1 { s = s + a[i*4+k] * b[k*4+j]; } c[i*4+j] = s; } } var h = 0; for var i = 0; i < 16; i = i + 1 { h = h * 31 + c[i]; } return h; }"},
	{"string_hash", "global data[64];\nfunc main() { var x = 1; for var i = 0; i < 64; i = i + 1 { x = (x * 1103515245 + 12345) % 2147483648; data[i] = x % 256; } var h = 5381; for var i = 0; i < 64; i = i + 1 { h = (h * 33 + data[i]) % 1000000007; } return h; }"},
	{"pointer_chase", "global next[32];\nglobal val[32];\nfunc main() { for var i = 0; i < 32; i = i + 1 { next[i] = (i * 17 + 5) % 32; val[i] = i * 3; } var p = 0; var s = 0; for var i = 0; i < 100; i = i + 1 { s = s + val[p]; p = next[p]; } return s; }"},
	{"ackermann_tiny", `func ack(m, n) { if m == 0 { return n + 1; } if n == 0 { return ack(m - 1, 1); } return ack(m - 1, ack(m, n - 1)); } func main() { return ack(2, 3); }`},
	{"deep_expression", `func main() { var a = 1; var b = 2; var c = 3; var d = 4; return ((a + b) * (c + d) - (a * b + c * d)) * ((d - a) * (c - b) + (a + d) * (b + c)); }`},
	{"empty_loops", `func main() { for var i = 0; i < 10; i = i + 1 { } var j = 0; while j > 100 { j = j + 1; } return 5; }`},
	{"nested_calls_memory", "global buf[8];\nfunc w(i, v) { buf[i] = v; return 0; }\nfunc r(i) { return buf[i]; }\nfunc main() { w(0, 5); w(1, r(0) + 1); w(2, r(0) + r(1)); return r(2) * 100 + r(1) * 10 + r(0); }"},
}

// Heavy holds longer-running programs used by the timing simulators and
// benchmark harness tests (kept out of Corpus so fast suites stay fast).
var Heavy = []Case{
	{"fib_15", `func fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); } func main() { return fib(15); }`},
	{"sort_64", "global a[64];\nfunc main() { var x = 7; for var i = 0; i < 64; i = i + 1 { x = (x * 75 + 74) % 65537; a[i] = x % 1000; } for var i = 0; i < 64; i = i + 1 { for var j = 0; j < 63; j = j + 1 { if a[j] > a[j+1] { var t = a[j]; a[j] = a[j+1]; a[j+1] = t; } } } var s = 0; for var i = 0; i < 64; i = i + 1 { s = s * 7 + a[i]; } return s; }"},
	{"matmul_8", "global a[64];\nglobal b[64];\nglobal c[64];\nfunc main() { for var i = 0; i < 64; i = i + 1 { a[i] = i % 9 + 1; b[i] = (i * 3) % 11; } for var i = 0; i < 8; i = i + 1 { for var j = 0; j < 8; j = j + 1 { var s = 0; for var k = 0; k < 8; k = k + 1 { s = s + a[i*8+k] * b[k*8+j]; } c[i*8+j] = s; } } var h = 0; for var i = 0; i < 64; i = i + 1 { h = (h * 31 + c[i]) % 1000000007; } return h; }"},
}
