// Corpus-scale differential fuzzing lives in an external test package:
// it drives the full engine table from internal/harness, which itself
// imports testprogs — an in-package fuzz target would be an import cycle.
package testprogs_test

import (
	"testing"

	"wavescalar/internal/harness"
	"wavescalar/internal/testprogs"
)

// FuzzDifferential: any (seed, family, size) triple must generate a valid
// program on which all ten engines agree. The fuzzer explores raw int64
// inputs; the target folds them into the spec domain, so every input is
// meaningful and the committed seed corpus (testdata/fuzz/FuzzDifferential)
// stays human-readable. Run with:
//
//	go test -fuzz=FuzzDifferential -fuzztime=20s ./internal/testprogs
func FuzzDifferential(f *testing.F) {
	fams := testprogs.Families()
	for i := range fams {
		f.Add(int64(i+1), int64(i), int64(1))
	}
	f.Add(int64(-7), int64(17), int64(3))

	copts := harness.DefaultCompileOptions()
	copts.Workers = 1
	m := harness.DefaultCorpusMachine()
	m.Workers = 1
	engines := harness.Engines(m)

	f.Fuzz(func(t *testing.T, seed, fam, size int64) {
		n := int64(len(fams))
		spec := testprogs.CorpusSpec{
			Family: fams[((fam%n)+n)%n],
			Seed:   seed,
			Size:   int(((size%4)+4)%4) + 1,
		}
		src, err := testprogs.GenerateSpec(spec)
		if err != nil {
			t.Fatalf("%s: generate: %v", spec.Name(), err)
		}
		// Every input is exercised at both optimizer tiers: the memory
		// tier must be checksum-invisible, so O0 and O1 binaries both
		// have to agree with the full engine table (and, transitively,
		// with each other).
		for opt := 0; opt <= 1; opt++ {
			o := copts
			o.OptLevel = opt
			c, err := harness.CompileSource(spec.Name(), src, o)
			if err != nil {
				t.Fatalf("%s: compile at -O%d: %v\n%s", spec.Name(), opt, err, src)
			}
			d := harness.RunDifferential(c, engines)
			if !d.Pass() {
				t.Fatalf("%s at -O%d: engines disagree: %v\n%s", spec.Name(), opt, d.Mismatches(), src)
			}
		}
	})
}
